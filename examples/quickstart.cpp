// Quickstart: build a Cliffhanger-managed cache server, feed it a Zipfian
// workload with demand-fill, and inspect the statistics.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/quickstart
#include <cstdio>

#include "core/cache_server.h"
#include "util/rng.h"
#include "workload/zipf.h"

using namespace cliffhanger;

int main() {
  // A server running the full Cliffhanger algorithm (hill climbing across
  // slab classes + cliff scaling inside each class).
  ServerConfig config;
  config.allocation = AllocationMode::kCliffhanger;
  config.eviction = EvictionScheme::kLru;
  CacheServer server(config);

  // One tenant with an 8 MiB reservation.
  constexpr uint32_t kAppId = 1;
  server.AddApp(kAppId, 8ULL << 20);

  // Mixed-size Zipf workload: small hot items plus larger lukewarm items
  // (two slab classes — the hill climber balances memory between them).
  Rng rng(7);
  ZipfTable hot(20000, 1.1);
  ZipfTable warm(5000, 0.9);
  uint64_t gets = 0, hits = 0;
  for (int i = 0; i < 2000000; ++i) {
    ItemMeta item;
    if (rng.NextBernoulli(0.7)) {
      item = {hot.Sample(rng), 14, 60};           // ~class 1
    } else {
      item = {1u << 20 | warm.Sample(rng), 14, 900};  // ~class 4
    }
    ++gets;
    const Outcome out = server.Get(kAppId, item);
    if (out.hit) {
      ++hits;
    } else if (out.cacheable) {
      server.Set(kAppId, item);  // demand fill from the "database"
    }
  }

  std::printf("requests: %llu  hit rate: %.2f%%\n",
              static_cast<unsigned long long>(gets),
              100.0 * static_cast<double>(hits) / static_cast<double>(gets));
  const AppCache* app = server.app(kAppId);
  for (const auto& info : app->ClassInfos()) {
    std::printf("  slab class %d: capacity %.2f MiB, hit rate %.2f%%\n",
                info.slab_class,
                static_cast<double>(info.capacity_bytes) / (1 << 20),
                100.0 * info.stats.hit_rate());
  }
  std::printf("shadow-queue overhead: %.1f KiB (paper bound: <500 KiB)\n",
              static_cast<double>(app->shadow_overhead_bytes()) / 1024.0);
  return 0;
}
