// Cliff rescue: a queue stuck below a performance cliff (cyclic scan larger
// than the cache) and how the cliff-scaling algorithm recovers part of the
// concave hull, compared against a plain LRU queue and the offline Talus
// oracle.
#include <cstdio>

#include "analysis/hit_rate_curve.h"
#include "analysis/stack_distance.h"
#include "analysis/talus.h"
#include "core/cliff_scaler.h"
#include "util/hashing.h"
#include "workload/generators.h"

using namespace cliffhanger;

int main() {
  constexpr uint64_t kCapacityItems = 8000;
  // App-19-like class-0 mixture: hot Zipf head + ramped scan + background.
  StreamSpec zipf_spec;
  zipf_spec.kind = StreamKind::kZipf;
  zipf_spec.universe = 2500;
  zipf_spec.zipf_alpha = 1.2;
  StreamSpec scan_spec;
  scan_spec.kind = StreamKind::kScan;
  scan_spec.universe = 13000;
  scan_spec.scan_ramp = 0.75;
  StreamSpec uniform_spec;
  uniform_spec.kind = StreamKind::kUniform;
  uniform_spec.universe = 40000;

  const auto run = [&](bool scaling_enabled) {
    PartitionConfig pc;
    pc.queue.chunk_size = 64;
    PartitionedSlabQueue queue(pc);
    queue.SetCapacityBytes(kCapacityItems * 64);
    CliffScalerConfig scaler_config;
    scaler_config.stable_accesses_to_engage = 0;  // standalone queue
    CliffScaler scaler(&queue, scaler_config);
    KeyStream zipf(zipf_spec), scan(scan_spec), uniform(uniform_spec);
    Rng rng(5);
    uint64_t gets = 0, hits = 0;
    for (uint64_t i = 0; i < 8000000; ++i) {
      const double u = rng.NextDouble();
      ItemMeta item;
      item.key_size = 14;
      item.value_size = 12;
      if (u < 0.30) {
        item.key = HashCombine(0, zipf.Next(rng, i));
      } else if (u < 0.80) {
        item.key = HashCombine(1, scan.Next(rng, i));
      } else {
        item.key = HashCombine(2, uniform.Next(rng, i));
      }
      ++gets;
      const GetResult r = queue.Get(item);
      if (r.hit) ++hits;
      if (scaling_enabled) scaler.OnAccess(r);
      if (!r.hit) {
        if (scaling_enabled) scaler.OnMiss();
        queue.Fill(item);
      }
    }
    std::printf("  %-22s hit rate %.2f%%  (on cliff: %s, ratio %.2f)\n",
                scaling_enabled ? "with cliff scaling" : "plain LRU",
                100.0 * static_cast<double>(hits) / static_cast<double>(gets),
                scaler.on_cliff() ? "yes" : "no", queue.ratio());
    return static_cast<double>(hits) / static_cast<double>(gets);
  };

  std::printf("queue capacity: %llu items, scan universe: %llu keys\n",
              static_cast<unsigned long long>(kCapacityItems),
              static_cast<unsigned long long>(scan_spec.universe));
  run(false);
  run(true);

  // Offline oracle: what would Talus do with the exact curve?
  StackDistanceAnalyzer analyzer;
  KeyStream zipf(zipf_spec), scan(scan_spec), uniform(uniform_spec);
  Rng rng(5);
  uint64_t gets = 0;
  for (uint64_t i = 0; i < 3000000; ++i) {
    const double u = rng.NextDouble();
    uint64_t key;
    if (u < 0.30) {
      key = HashCombine(0, zipf.Next(rng, i));
    } else if (u < 0.80) {
      key = HashCombine(1, scan.Next(rng, i));
    } else {
      key = HashCombine(2, uniform.Next(rng, i));
    }
    ++gets;
    analyzer.Record(key);
  }
  const PiecewiseCurve curve = CurveFromHistogram(
      analyzer.histogram(), analyzer.total_accesses(), 1 << 20);
  const TalusSplit split =
      ComputeTalusSplit(curve, static_cast<double>(kCapacityItems));
  std::printf("  %-22s hit rate %.2f%%  (anchors %.0f / %.0f)\n",
              "Talus oracle (hull)", 100.0 * split.expected_hit_rate,
              split.left_simulated, split.right_simulated);
  return 0;
}
