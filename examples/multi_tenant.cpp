// Multi-tenant example: several Memcachier-like applications share one
// server; cross-application hill climbing re-divides their reservations
// (§3.3 of the paper).
#include <cstdio>

#include "sim/simulator.h"
#include "workload/memcachier_suite.h"

using namespace cliffhanger;

int main() {
  MemcachierSuite suite(/*scale=*/0.5);
  const std::vector<int> ids{1, 2, 3, 4, 5};
  const Trace trace = suite.GenerateMixedTrace(ids, 2000000, /*seed=*/11);

  ServerConfig config;
  config.allocation = AllocationMode::kCliffhanger;
  config.knobs.cross_app = true;  // climb across tenants too
  CacheServer server(config);
  for (const int id : ids) {
    server.AddApp(static_cast<uint32_t>(id), suite.app(id).reservation);
  }

  const SimResult result = Replay(server, trace);
  std::printf("%-6s %-14s %-14s %-10s\n", "app", "reserved", "final",
              "hit rate");
  for (const int id : ids) {
    const AppCache* app = server.app(static_cast<uint32_t>(id));
    std::printf("%-6d %10.2f MiB %10.2f MiB %8.2f%%\n", id,
                static_cast<double>(suite.app(id).reservation) / (1 << 20),
                static_cast<double>(app->reservation()) / (1 << 20),
                100.0 * result.app_hit_rate(static_cast<uint32_t>(id)));
  }
  std::printf("overall hit rate: %.2f%%\n", 100.0 * result.hit_rate());
  return 0;
}
