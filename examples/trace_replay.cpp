// Trace replay CLI: load a request trace from CSV (or synthesize one from
// the Memcachier-like suite) and replay it under a chosen policy.
//
//   trace_replay [--policy fcfs|cliffhanger|hill|cliff|arc|log]
//                [--trace file.csv | --app N] [--requests N]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "sim/experiment.h"
#include "workload/memcachier_suite.h"

using namespace cliffhanger;

int main(int argc, char** argv) {
  std::string policy = "cliffhanger";
  std::string trace_path;
  int app_id = 5;
  uint64_t requests = 1000000;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--policy") policy = argv[i + 1];
    else if (flag == "--trace") trace_path = argv[i + 1];
    else if (flag == "--app") app_id = std::atoi(argv[i + 1]);
    else if (flag == "--requests") requests = std::atoll(argv[i + 1]);
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 1;
    }
  }

  Trace trace;
  MemcachierSuite suite;
  if (!trace_path.empty()) {
    bool ok = false;
    trace = Trace::LoadCsv(trace_path, &ok);
    if (!ok) {
      std::fprintf(stderr, "failed to load %s\n", trace_path.c_str());
      return 1;
    }
  } else {
    trace = suite.GenerateAppTrace(app_id, requests, 42);
  }

  ServerConfig config = DefaultServerConfig();
  if (policy == "cliffhanger") config = CliffhangerServerConfig();
  else if (policy == "hill") config = HillClimbingOnlyConfig();
  else if (policy == "cliff") config = CliffScalingOnlyConfig();
  else if (policy == "arc") config.eviction = EvictionScheme::kArc;
  else if (policy == "log") config.eviction = EvictionScheme::kGlobalLog;
  else if (policy != "fcfs") {
    std::fprintf(stderr, "unknown policy %s\n", policy.c_str());
    return 1;
  }

  // Register every app the trace references.
  std::map<uint32_t, bool> seen;
  CacheServer server(config);
  for (const Request& r : trace) {
    if (!seen[r.app_id]) {
      seen[r.app_id] = true;
      const uint64_t reservation =
          (r.app_id >= 1 && r.app_id <= 20)
              ? suite.app(static_cast<int>(r.app_id)).reservation
              : (8ULL << 20);
      server.AddApp(r.app_id, reservation);
    }
  }

  const SimResult result = Replay(server, trace);
  std::printf("policy=%s requests=%zu hit rate=%.3f%% misses=%llu\n",
              policy.c_str(), trace.size(), 100.0 * result.hit_rate(),
              static_cast<unsigned long long>(result.total.misses()));
  for (const auto& [id, app] : result.apps) {
    std::printf("  app %u: gets=%llu hit rate=%.3f%%\n", id,
                static_cast<unsigned long long>(app.total.gets),
                100.0 * app.total.hit_rate());
  }
  return 0;
}
