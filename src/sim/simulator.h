// Trace replay through a CacheServer with demand-fill semantics and optional
// time-series sampling (Figures 8 and 9 are produced from these samples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/cache_server.h"
#include "util/timeseries.h"
#include "workload/trace.h"

namespace cliffhanger {

struct SimOptions {
  // A GET miss inserts the item (the application re-fetches from the
  // database and stores it in the cache) — standard web-cache behaviour and
  // how the paper replays the Memcachier traces.
  bool demand_fill = true;
  // Sample every N requests (0 disables sampling).
  uint64_t sample_interval = 0;
  // Record per-slab-class capacity series for this app (Figure 8).
  std::optional<uint32_t> track_capacity_app;
  // Record a windowed hit-rate series for (app, slab class) (Figure 9).
  // slab_class == -1 tracks the app's overall hit rate.
  std::optional<std::pair<uint32_t, int>> track_hit_rate;
};

struct AppResult {
  ClassStats total;
  std::map<int, AppCache::ClassInfo> classes;
  uint64_t reservation = 0;
  uint64_t allocated = 0;
};

struct SimResult {
  ClassStats total;
  std::map<uint32_t, AppResult> apps;
  // Capacity series keyed by "slab<k>" name; hit-rate series named "hitrate".
  std::vector<TimeSeries> series;

  [[nodiscard]] double hit_rate() const { return total.hit_rate(); }
  [[nodiscard]] double app_hit_rate(uint32_t app_id) const {
    const auto it = apps.find(app_id);
    return it == apps.end() ? 0.0 : it->second.total.hit_rate();
  }
  [[nodiscard]] uint64_t app_misses(uint32_t app_id) const {
    const auto it = apps.find(app_id);
    return it == apps.end() ? 0 : it->second.total.misses();
  }
};

// Replays `trace` through `server` (which must already contain the apps the
// trace references) and collects results.
[[nodiscard]] SimResult Replay(CacheServer& server, const Trace& trace,
                               const SimOptions& options = {});

}  // namespace cliffhanger
