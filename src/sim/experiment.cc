#include "sim/experiment.h"

#include <algorithm>

#include "analysis/hit_rate_curve.h"
#include "analysis/mimir.h"
#include "analysis/stack_distance.h"
#include "util/slab_geometry.h"

namespace cliffhanger {

ServerConfig DefaultServerConfig() {
  ServerConfig config;
  config.allocation = AllocationMode::kFcfs;
  config.eviction = EvictionScheme::kLru;
  return config;
}

ServerConfig CliffhangerServerConfig() {
  ServerConfig config;
  config.allocation = AllocationMode::kCliffhanger;
  config.eviction = EvictionScheme::kLru;
  config.knobs.hill_climbing = true;
  config.knobs.cliff_scaling = true;
  return config;
}

ServerConfig HillClimbingOnlyConfig() {
  ServerConfig config = CliffhangerServerConfig();
  config.knobs.cliff_scaling = false;
  return config;
}

ServerConfig CliffScalingOnlyConfig() {
  ServerConfig config = CliffhangerServerConfig();
  config.knobs.hill_climbing = false;
  return config;
}

ProfileResult ProfileTrace(const Trace& trace, uint32_t app_id, bool exact,
                           size_t mimir_buckets) {
  ProfileResult result;
  std::map<int, StackDistanceAnalyzer> exact_analyzers;
  std::map<int, MimirEstimator> mimir_estimators;

  for (const Request& r : trace) {
    if (r.app_id != app_id || r.op != Op::kGet) continue;
    const int slab_class =
        SlabClassFor(ExactFootprint(r.key_size, r.value_size));
    if (slab_class < 0) continue;
    ++result.total_gets;
    ++result.gets_per_class[slab_class];
    if (exact) {
      exact_analyzers.try_emplace(slab_class).first->second.Record(r.key);
    } else {
      mimir_estimators.try_emplace(slab_class, mimir_buckets)
          .first->second.Record(r.key);
    }
  }

  for (const auto& [slab_class, gets] : result.gets_per_class) {
    const std::vector<uint64_t>* histogram = nullptr;
    if (exact) {
      histogram = &exact_analyzers.at(slab_class).histogram();
    } else {
      histogram = &mimir_estimators.at(slab_class).histogram();
    }
    // x in items -> x in bytes (one chunk per item).
    PiecewiseCurve items_curve = CurveFromHistogram(*histogram, gets, 2048);
    result.curves[slab_class] = ScaleCurveX(
        items_curve, static_cast<double>(ChunkSize(slab_class)));
  }
  return result;
}

std::map<int, uint64_t> SolveAppAllocation(const ProfileResult& profile,
                                           uint64_t reservation,
                                           CurveTransform transform) {
  std::vector<SolverQueueInput> inputs;
  std::vector<int> class_ids;
  for (const auto& [slab_class, curve] : profile.curves) {
    SolverQueueInput in;
    // Move-assign from a fresh copy: plain copy-assignment into the
    // default-constructed member trips a GCC 12 -Wnonnull false positive.
    in.curve = PiecewiseCurve(curve);
    in.request_share =
        profile.total_gets == 0
            ? 0.0
            : static_cast<double>(profile.gets_per_class.at(slab_class)) /
                  static_cast<double>(profile.total_gets);
    in.min_bytes = kPageSize;
    inputs.push_back(std::move(in));
    class_ids.push_back(slab_class);
  }
  SolverConfig config;
  config.total_bytes = reservation;
  config.step_bytes = kPageSize;
  config.transform = transform;
  const SolverResult solved = SolveAllocation(inputs, config);

  std::map<int, uint64_t> allocation;
  for (size_t i = 0; i < class_ids.size(); ++i) {
    allocation[class_ids[i]] = solved.allocation_bytes[i];
  }
  return allocation;
}

std::map<uint32_t, std::map<int, uint64_t>> SolveCrossAppAllocation(
    const Trace& trace, const std::vector<uint32_t>& app_ids,
    uint64_t total_bytes, CurveTransform transform, bool exact) {
  std::vector<SolverQueueInput> inputs;
  std::vector<std::pair<uint32_t, int>> ids;
  uint64_t server_gets = 0;
  std::vector<ProfileResult> profiles;
  profiles.reserve(app_ids.size());
  for (const uint32_t app_id : app_ids) {
    profiles.push_back(ProfileTrace(trace, app_id, exact));
    server_gets += profiles.back().total_gets;
  }
  for (size_t a = 0; a < app_ids.size(); ++a) {
    const ProfileResult& profile = profiles[a];
    for (const auto& [slab_class, curve] : profile.curves) {
      SolverQueueInput in;
      in.curve =
          PiecewiseCurve(curve);  // see SolveAppAllocation: GCC 12 -Wnonnull
      in.request_share =
          server_gets == 0
              ? 0.0
              : static_cast<double>(profile.gets_per_class.at(slab_class)) /
                    static_cast<double>(server_gets);
      in.min_bytes = kPageSize;
      inputs.push_back(std::move(in));
      ids.emplace_back(app_ids[a], slab_class);
    }
  }
  SolverConfig config;
  config.total_bytes = total_bytes;
  config.step_bytes = kPageSize;
  config.transform = transform;
  const SolverResult solved = SolveAllocation(inputs, config);

  std::map<uint32_t, std::map<int, uint64_t>> allocation;
  for (size_t i = 0; i < ids.size(); ++i) {
    allocation[ids[i].first][ids[i].second] = solved.allocation_bytes[i];
  }
  return allocation;
}

SimResult RunApp(const SuiteApp& app, const Trace& trace,
                 const ServerConfig& config, double capacity_fraction,
                 const std::map<int, uint64_t>* static_alloc,
                 const SimOptions& options) {
  CacheServer server(config);
  const auto reservation = static_cast<uint64_t>(
      static_cast<double>(app.reservation) * capacity_fraction);
  AppCache& cache =
      server.AddApp(static_cast<uint32_t>(app.id), reservation);
  if (static_alloc != nullptr) {
    cache.SetStaticAllocation(*static_alloc);
  }
  return Replay(server, trace, options);
}

SimResult RunAppWithSolver(const SuiteApp& app, const Trace& trace,
                           CurveTransform transform, bool exact_profile) {
  const ProfileResult profile =
      ProfileTrace(trace, static_cast<uint32_t>(app.id), exact_profile);
  const std::map<int, uint64_t> allocation =
      SolveAppAllocation(profile, app.reservation, transform);
  ServerConfig config = DefaultServerConfig();
  config.allocation = AllocationMode::kStatic;
  return RunApp(app, trace, config, 1.0, &allocation);
}

double FindCapacityFractionForHitRate(const SuiteApp& app, const Trace& trace,
                                      const ServerConfig& config,
                                      double target_hit_rate,
                                      const std::vector<double>& fractions) {
  for (const double fraction : fractions) {
    if (fraction >= 1.0) break;
    const SimResult result = RunApp(app, trace, config, fraction);
    if (result.app_hit_rate(static_cast<uint32_t>(app.id)) >=
        target_hit_rate) {
      return fraction;
    }
  }
  return 1.0;
}

}  // namespace cliffhanger
