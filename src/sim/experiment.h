// Experiment pipeline helpers shared by the bench drivers and integration
// tests: server-config presets, the offline solver pipeline (profile ->
// curves -> allocation -> replay), and the memory-savings search of
// Figure 7.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "analysis/dynacache_solver.h"
#include "sim/simulator.h"
#include "workload/memcachier_suite.h"

namespace cliffhanger {

// --- Server config presets ---

// Memcached default: FCFS slab allocation, LRU eviction.
[[nodiscard]] ServerConfig DefaultServerConfig();
// Full Cliffhanger (hill climbing + cliff scaling).
[[nodiscard]] ServerConfig CliffhangerServerConfig();
// Ablations (Table 4).
[[nodiscard]] ServerConfig HillClimbingOnlyConfig();
[[nodiscard]] ServerConfig CliffScalingOnlyConfig();

// --- Offline (Dynacache-style) solver pipeline ---

struct ProfileResult {
  // Per slab class: estimated hit-rate curve with x in bytes.
  std::map<int, PiecewiseCurve> curves;
  std::map<int, uint64_t> gets_per_class;
  uint64_t total_gets = 0;
};

// One profiling pass over an app's GETs. `exact` selects the Mattson
// analyzer (ground truth); otherwise the Mimir bucket estimator is used, as
// in Dynacache (paper §2.1, 100 buckets).
[[nodiscard]] ProfileResult ProfileTrace(const Trace& trace, uint32_t app_id,
                                         bool exact = false,
                                         size_t mimir_buckets = 100);

// Runs the solver on a profile; returns bytes per slab class.
[[nodiscard]] std::map<int, uint64_t> SolveAppAllocation(
    const ProfileResult& profile, uint64_t reservation,
    CurveTransform transform = CurveTransform::kConcaveRegression);

// Cross-application variant (Table 3): profiles each app and jointly
// allocates `total_bytes` over every (app, class) queue. Returns per-app
// class allocations; per-app totals are the sums.
[[nodiscard]] std::map<uint32_t, std::map<int, uint64_t>>
SolveCrossAppAllocation(const Trace& trace,
                        const std::vector<uint32_t>& app_ids,
                        uint64_t total_bytes,
                        CurveTransform transform,
                        bool exact = false);

// --- Single-app experiment runners ---

// Builds a server with one app at `capacity_fraction` of its reservation,
// optionally installing a static allocation, then replays the trace.
[[nodiscard]] SimResult RunApp(const SuiteApp& app, const Trace& trace,
                               const ServerConfig& config,
                               double capacity_fraction = 1.0,
                               const std::map<int, uint64_t>* static_alloc =
                                   nullptr,
                               const SimOptions& options = {});

// Two-pass solver experiment: profile at full reservation, solve, replay
// with the static allocation.
[[nodiscard]] SimResult RunAppWithSolver(
    const SuiteApp& app, const Trace& trace,
    CurveTransform transform = CurveTransform::kConcaveRegression,
    bool exact_profile = false);

// Smallest capacity fraction (from `fractions`, ascending) at which
// `config` reaches `target_hit_rate` on this app; returns 1.0 when only the
// full reservation suffices (or none does). Implements the "Memory Saved by
// Cliffhanger" series of Figure 7.
[[nodiscard]] double FindCapacityFractionForHitRate(
    const SuiteApp& app, const Trace& trace, const ServerConfig& config,
    double target_hit_rate, const std::vector<double>& fractions);

}  // namespace cliffhanger
