#include "sim/simulator.h"

#include <string>

namespace cliffhanger {

namespace {

ItemMeta ToMeta(const Request& r) {
  ItemMeta m;
  m.key = r.key;
  m.key_size = r.key_size;
  m.value_size = r.value_size;
  m.expiry_s = r.expiry_s;
  // The trace's virtual time doubles as the expiry clock, so TTL-bearing
  // traces replay deterministically with no wall clock anywhere.
  m.now_s = static_cast<uint32_t>(r.time_us / 1000000);
  return m;
}

}  // namespace

SimResult Replay(CacheServer& server, const Trace& trace,
                 const SimOptions& options) {
  SimResult result;

  // Sampling state.
  std::map<int, TimeSeries> capacity_series;
  TimeSeries hit_rate_series("hitrate");
  uint64_t window_gets = 0;
  uint64_t window_hits = 0;
  uint64_t last_window_gets = 0;
  uint64_t last_window_hits = 0;

  const auto sample = [&](uint64_t time_us) {
    const double t = static_cast<double>(time_us) / 1e6;  // seconds
    if (options.track_capacity_app) {
      const AppCache* app = server.app(*options.track_capacity_app);
      if (app != nullptr) {
        for (const auto& info : app->ClassInfos()) {
          auto [it, inserted] = capacity_series.try_emplace(
              info.slab_class,
              TimeSeries("slab" + std::to_string(info.slab_class)));
          it->second.Push(t, static_cast<double>(info.capacity_bytes) /
                                 (1024.0 * 1024.0));
        }
      }
    }
    if (options.track_hit_rate) {
      const uint64_t gets = window_gets - last_window_gets;
      const uint64_t hits = window_hits - last_window_hits;
      if (gets > 0) {
        hit_rate_series.Push(t, static_cast<double>(hits) /
                                    static_cast<double>(gets));
      }
      last_window_gets = window_gets;
      last_window_hits = window_hits;
    }
  };

  uint64_t processed = 0;
  for (const Request& r : trace) {
    const ItemMeta meta = ToMeta(r);
    switch (r.op) {
      case Op::kGet: {
        const Outcome outcome = server.Get(r.app_id, meta);
        if (options.track_hit_rate &&
            r.app_id == options.track_hit_rate->first &&
            (options.track_hit_rate->second < 0 ||
             outcome.slab_class == options.track_hit_rate->second)) {
          ++window_gets;
          window_hits += outcome.hit ? 1 : 0;
        }
        if (!outcome.hit && outcome.cacheable && options.demand_fill) {
          server.Set(r.app_id, meta);
        }
        break;
      }
      case Op::kSet:
      case Op::kCas:
      case Op::kAppend:
      case Op::kPrepend:
        // Value-level conditionality lives with whoever owns the payload
        // (net::CacheAdapter); at the residency core every store lands as
        // a fill at the request's (new) value_size.
        server.Set(r.app_id, meta);
        break;
      case Op::kTouch:
        // Expiry refresh + recency bump, no get/set statistics (see
        // CacheServer::Touch).
        server.Mutate(r.app_id, MutateOp::kTouch, meta);
        break;
      case Op::kIncr:
      case Op::kDecr: {
        // Size-preserving value rewrite: recency moves, the stored TTL
        // does not — a replay row cannot know the item's live expiry, and
        // stamping the row's (usually 0) expiry would silently clear it.
        ItemMeta keep = meta;
        keep.expiry_s = kKeepExpiry;
        server.Mutate(r.app_id, MutateOp::kTouch, keep);
        break;
      }
      case Op::kDelete:
        server.Delete(r.app_id, meta);
        break;
    }
    ++processed;
    if (options.sample_interval > 0 &&
        processed % options.sample_interval == 0) {
      sample(r.time_us);
    }
  }

  result.total = server.TotalStats();
  for (const uint32_t app_id : server.app_ids()) {
    const AppCache* app = server.app(app_id);
    AppResult ar;
    ar.total = app->TotalStats();
    ar.reservation = app->reservation();
    ar.allocated = app->allocated_bytes();
    for (const auto& info : app->ClassInfos()) {
      ar.classes.emplace(info.slab_class, info);
    }
    result.apps.emplace(app_id, std::move(ar));
  }
  for (auto& [slab_class, series] : capacity_series) {
    result.series.push_back(std::move(series));
  }
  if (options.track_hit_rate && !hit_rate_series.empty()) {
    result.series.push_back(std::move(hit_rate_series));
  }
  return result;
}

}  // namespace cliffhanger
