// A small blocking memcached ASCII client: one TCP connection, buffered
// line reader, typed helpers for every command cliffhangerd speaks. Used by
// the end-to-end protocol tests and by bench/table8_netperf (closed-loop
// load generation) — and usable against a real memcached for the commands
// both implement.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cliffhanger {
namespace net {

class AsciiClient {
 public:
  AsciiClient() = default;
  ~AsciiClient();
  AsciiClient(const AsciiClient&) = delete;
  AsciiClient& operator=(const AsciiClient&) = delete;
  AsciiClient(AsciiClient&& other) noexcept { *this = std::move(other); }
  AsciiClient& operator=(AsciiClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      buf_ = std::move(other.buf_);
      buf_offset_ = other.buf_offset_;
      error_ = std::move(other.error_);
    }
    return *this;
  }

  // Connects (IPv4). timeout_ms guards every subsequent receive so a server
  // bug fails the caller instead of hanging it; 0 = no timeout.
  bool Connect(const std::string& host, uint16_t port,
               int timeout_ms = 30000);
  void Close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  struct Value {
    std::string data;
    uint32_t flags = 0;
    uint64_t cas = 0;  // populated by Gets only
  };
  // Single-key get; nullopt on miss (or protocol/connection failure, see
  // last_error()).
  std::optional<Value> Get(std::string_view key);
  std::optional<Value> Gets(std::string_view key);
  // Multi-key get: returns key->value for every hit.
  std::map<std::string, Value> MultiGet(
      const std::vector<std::string>& keys);

  // kExists / kNotFound are produced by Cas (EXISTS = version mismatch,
  // NOT_FOUND = no such item); the plain stores only see the first three.
  enum class StoreResult : uint8_t {
    kStored,
    kNotStored,
    kExists,
    kNotFound,
    kError,
  };
  StoreResult Set(std::string_view key, std::string_view value,
                  uint32_t flags = 0, int64_t exptime = 0,
                  bool noreply = false);
  StoreResult Add(std::string_view key, std::string_view value,
                  uint32_t flags = 0, int64_t exptime = 0,
                  bool noreply = false);
  StoreResult Replace(std::string_view key, std::string_view value,
                      uint32_t flags = 0, int64_t exptime = 0,
                      bool noreply = false);
  StoreResult Append(std::string_view key, std::string_view value,
                     uint32_t flags = 0, int64_t exptime = 0,
                     bool noreply = false);
  StoreResult Prepend(std::string_view key, std::string_view value,
                      uint32_t flags = 0, int64_t exptime = 0,
                      bool noreply = false);
  // Compare-and-swap against a version from Gets.
  StoreResult Cas(std::string_view key, std::string_view value, uint64_t cas,
                  uint32_t flags = 0, int64_t exptime = 0,
                  bool noreply = false);

  // incr/decr: the new value on success; nullopt on NOT_FOUND (last_error
  // empty, like a Get miss) or on an error line / dead stream (last_error
  // says which). With noreply the server sends no reply, so the result is
  // UNKNOWN: the call returns nullopt with last_error empty even though
  // the operation was dispatched — never use noreply where a nullopt
  // would be interpreted as a miss.
  std::optional<uint64_t> Incr(std::string_view key, uint64_t delta,
                               bool noreply = false);
  std::optional<uint64_t> Decr(std::string_view key, uint64_t delta,
                               bool noreply = false);

  // true = TOUCHED, false = NOT_FOUND (or error; see last_error()).
  bool Touch(std::string_view key, int64_t exptime, bool noreply = false);

  // flush_all [delay]; true = OK.
  bool FlushAll(int64_t delay = 0, bool noreply = false);

  // true = DELETED, false = NOT_FOUND (or error; see last_error()).
  bool Delete(std::string_view key, bool noreply = false);

  std::map<std::string, std::string> Stats();
  std::string Version();
  void Quit();  // sends quit and closes

  // Raw access for protocol tests: send bytes verbatim / read one CRLF line
  // (returned without the terminator) / read exactly n bytes.
  bool SendRaw(std::string_view bytes);
  // Half-close: FIN the write side (the printf-pipe pattern); reads still
  // drain whatever the server sends back.
  void ShutdownWrite();
  bool ReadLine(std::string* line);
  bool ReadBytes(size_t n, std::string* data);

  [[nodiscard]] const std::string& last_error() const { return error_; }

 private:
  std::optional<Value> RetrieveOne(std::string_view verb,
                                   std::string_view key);
  StoreResult StoreCommand(std::string_view verb, std::string_view key,
                           std::string_view value, uint32_t flags,
                           int64_t exptime, const uint64_t* cas,
                           bool noreply);
  std::optional<uint64_t> ArithCommand(std::string_view verb,
                                       std::string_view key, uint64_t delta,
                                       bool noreply);
  // Reads VALUE/END lines into *out until END; false on stream error.
  bool ReadValues(std::map<std::string, Value>* out);
  bool FillBuffer();  // one recv into buf_

  int fd_ = -1;
  std::string buf_;      // received-but-unconsumed bytes
  size_t buf_offset_ = 0;
  std::string error_;
};

}  // namespace net
}  // namespace cliffhanger
