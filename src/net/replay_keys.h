// Client-side canonical encoding for replaying simulator traces over the
// wire: a Request's 64-bit key id becomes a 16-char lowercase-hex text key
// (whose length equals the canonical ZipfTraceSpec key_size of 16, so the
// on-the-wire key_size matches the trace's), and value bytes are a
// deterministic function of (key id, size) so any hit's payload can be
// verified byte-for-byte. Used by tests/net_e2e_test.cc and
// bench/table8_netperf.cc; the server needs no knowledge of this scheme.
#pragma once

#include <cstdint>
#include <string>

#include "util/hashing.h"

namespace cliffhanger {
namespace net {

inline std::string ReplayKeyString(uint64_t key_id) {
  static const char kHex[] = "0123456789abcdef";
  std::string key(16, '0');
  for (int i = 15; i >= 0; --i) {
    key[static_cast<size_t>(i)] = kHex[key_id & 0xF];
    key_id >>= 4;
  }
  return key;
}

inline std::string ReplayValueBytes(uint64_t key_id, uint32_t size) {
  std::string value(size, '\0');
  uint64_t state = Mix64(key_id ^ 0x5eedf00dULL);
  for (uint32_t i = 0; i < size; ++i) {
    if (i % 8 == 0) state = Mix64(state + 1);
    value[i] = static_cast<char>('a' + ((state >> (8 * (i % 8))) & 0xF));
  }
  return value;
}

}  // namespace net
}  // namespace cliffhanger
