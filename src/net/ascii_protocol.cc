#include "net/ascii_protocol.h"

#include <algorithm>

#include "util/argparse.h"

namespace cliffhanger {
namespace net {

namespace {

// Strict unsigned decimal (digits only, no sign, overflow rejected):
// memcached treats any deviation as a malformed command line. One grammar
// shared with the CLI flag parsing, so the two can never drift.
bool ParseU64(std::string_view token, uint64_t* value) {
  return ParseDecimalU64(token, value);
}

bool ParseU32(std::string_view token, uint32_t* value) {
  uint64_t v = 0;
  if (!ParseU64(token, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

// exptime is signed in the protocol (-1 = already expired).
bool ParseI64(std::string_view token, int64_t* value) {
  const bool negative = !token.empty() && token.front() == '-';
  if (negative) token.remove_prefix(1);
  uint64_t magnitude = 0;
  if (!ParseU64(token, &magnitude)) return false;
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) return false;
  *value = negative ? -static_cast<int64_t>(magnitude)
                    : static_cast<int64_t>(magnitude);
  return true;
}

// Splits on runs of spaces (memcached tolerates repeated separators).
void Tokenize(std::string_view line, std::vector<std::string_view>* tokens) {
  tokens->clear();
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) tokens->push_back(line.substr(start, pos - start));
  }
}

void SetError(Command* out, std::string_view error) {
  out->type = CommandType::kProtocolError;
  out->error = error;
}

bool ValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyBytes) return false;
  // memcached keys are printable non-space bytes: control characters
  // (notably a bare '\r' mid-line) would otherwise be echoed verbatim
  // into VALUE response lines and desync CRLF-based readers.
  for (const char c : key) {
    if (static_cast<unsigned char>(c) <= ' ' ||
        static_cast<unsigned char>(c) == 0x7f) {
      return false;
    }
  }
  return true;
}

}  // namespace

ParseStatus AsciiParser::Next(std::string_view buffer, size_t* consumed,
                              Command* out) {
  // Reset fields in place (keys keeps its capacity): together with the
  // tokens_ scratch below, a warm connection parses commands without any
  // heap allocation — the same no-per-item-allocation rule the cache hot
  // path follows.
  *consumed = 0;
  out->type = CommandType::kProtocolError;
  out->keys.clear();
  out->flags = 0;
  out->exptime = 0;
  out->cas_unique = 0;
  out->delta = 0;
  out->noreply = false;
  out->data = {};
  out->error = {};

  // Resync state 1: a rejected data block is being discarded byte-for-byte
  // (no memory of it is kept, so a hostile "bytes" value costs nothing).
  if (swallow_data_remaining_ > 0) {
    const uint64_t n =
        std::min<uint64_t>(swallow_data_remaining_, buffer.size());
    swallow_data_remaining_ -= n;
    *consumed = static_cast<size_t>(n);
    return ParseStatus::kNeedMore;
  }

  const size_t newline = buffer.find('\n');

  // Resync state 2: discarding the tail of an oversized request line.
  if (swallow_line_) {
    if (newline == std::string_view::npos) {
      *consumed = buffer.size();
      return ParseStatus::kNeedMore;
    }
    swallow_line_ = false;
    *consumed = newline + 1;
    return ParseStatus::kNeedMore;
  }

  if (newline == std::string_view::npos) {
    if (buffer.size() > kMaxLineBytes) {
      // Bound the read buffer against newline-free garbage: reject the line
      // now and discard the rest of it as it arrives.
      swallow_line_ = true;
      *consumed = buffer.size();
      SetError(out, kErrLineTooLong);
      return ParseStatus::kCommand;
    }
    return ParseStatus::kNeedMore;
  }

  const size_t line_end = newline + 1;  // one past '\n'
  if (newline > kMaxLineBytes) {
    // Enforce the cap even when the newline is already buffered, so a
    // too-long line gets the same single error no matter how TCP
    // segmented it (split-invariance contract).
    *consumed = line_end;
    SetError(out, kErrLineTooLong);
    return ParseStatus::kCommand;
  }
  std::string_view line = buffer.substr(0, newline);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  Tokenize(line, &tokens_);
  const std::vector<std::string_view>& tokens = tokens_;

  if (tokens.empty()) {
    *consumed = line_end;
    SetError(out, kErrError);
    return ParseStatus::kCommand;
  }

  const std::string_view word = tokens.front();

  // --- retrieval -------------------------------------------------------
  if (word == "get" || word == "gets") {
    if (tokens.size() < 2) {
      *consumed = line_end;
      SetError(out, kErrError);
      return ParseStatus::kCommand;
    }
    if (tokens.size() - 1 > kMaxKeysPerGet) {
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (!ValidKey(tokens[i])) {
        *consumed = line_end;
        SetError(out, kErrBadLine);
        return ParseStatus::kCommand;
      }
    }
    out->type = word == "get" ? CommandType::kGet : CommandType::kGets;
    out->keys.assign(tokens.begin() + 1, tokens.end());
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  // --- storage ---------------------------------------------------------
  const bool is_cas = word == "cas";
  if (word == "set" || word == "add" || word == "replace" || is_cas ||
      word == "append" || word == "prepend") {
    uint32_t flags = 0;
    int64_t exptime = 0;
    uint64_t bytes = 0;
    uint64_t cas_unique = 0;
    bool noreply = false;
    // cas carries one extra field (the compare version) before noreply.
    const size_t base_tokens = is_cas ? 6 : 5;
    const bool arity_ok =
        tokens.size() == base_tokens || tokens.size() == base_tokens + 1;
    bool fields_ok = arity_ok && ValidKey(tokens[1]) &&
                     ParseU32(tokens[2], &flags) &&
                     ParseI64(tokens[3], &exptime) &&
                     ParseU64(tokens[4], &bytes);
    if (is_cas && fields_ok) fields_ok = ParseU64(tokens[5], &cas_unique);
    if (tokens.size() == base_tokens + 1) {
      if (tokens[base_tokens] == "noreply") {
        noreply = true;
      } else if (fields_ok) {
        *consumed = line_end;
        SetError(out, kErrBadLine);
        return ParseStatus::kCommand;
      }
    }
    if (!fields_ok) {
      // The data length is unknown, so nothing can be swallowed: the
      // client's data block (if any) will re-enter as command lines and
      // produce further errors, exactly as memcached behaves.
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    if (bytes > kMaxValueBytes) {
      // Reject now but keep the stream in sync by discarding the declared
      // block and its terminator as they arrive. Saturate the add: a
      // declared size near UINT64_MAX must not wrap into a tiny swallow
      // and desynchronize the stream (the connection just drains garbage
      // until the client gives up).
      swallow_data_remaining_ =
          bytes > UINT64_MAX - 2 ? UINT64_MAX : bytes + 2;
      *consumed = line_end;
      SetError(out, kErrTooLarge);
      // The line parsed cleanly, so noreply is known and honoured: like
      // memcached, a noreply command gets no response — not even an error
      // — or a pipelining client would misattribute every later reply.
      out->noreply = noreply;
      return ParseStatus::kCommand;
    }
    // Zero-copy constraint: line and data block must be in the buffer
    // together before the command can be emitted.
    const uint64_t frame_end = static_cast<uint64_t>(line_end) + bytes + 2;
    if (buffer.size() < frame_end) return ParseStatus::kNeedMore;
    if (buffer[line_end + bytes] != '\r' ||
        buffer[line_end + bytes + 1] != '\n') {
      // Client framing is off; drop the declared block and resync at the
      // next newline.
      swallow_line_ = true;
      *consumed = line_end + static_cast<size_t>(bytes);
      SetError(out, kErrBadChunk);
      out->noreply = noreply;  // known: the command line parsed cleanly
      return ParseStatus::kCommand;
    }
    out->type = word == "set"       ? CommandType::kSet
                : word == "add"     ? CommandType::kAdd
                : word == "replace" ? CommandType::kReplace
                : is_cas            ? CommandType::kCas
                : word == "append"  ? CommandType::kAppend
                                    : CommandType::kPrepend;
    out->keys.push_back(tokens[1]);
    out->flags = flags;
    out->exptime = exptime;
    out->cas_unique = cas_unique;
    out->noreply = noreply;
    out->data = buffer.substr(line_end, static_cast<size_t>(bytes));
    *consumed = static_cast<size_t>(frame_end);
    return ParseStatus::kCommand;
  }

  // --- arithmetic ------------------------------------------------------
  if (word == "incr" || word == "decr") {
    const bool arity_ok = tokens.size() == 3 || tokens.size() == 4;
    const bool noreply = tokens.size() == 4 && tokens[3] == "noreply";
    if (!arity_ok || (tokens.size() == 4 && !noreply) ||
        !ValidKey(tokens[1])) {
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    uint64_t delta = 0;
    if (!ParseU64(tokens[2], &delta)) {
      // Line shape is fine but the operand is not a 64-bit decimal: the
      // dedicated memcached error, with noreply honoured (the line parsed
      // cleanly enough to know it).
      *consumed = line_end;
      SetError(out, kErrBadDelta);
      out->noreply = noreply;
      return ParseStatus::kCommand;
    }
    out->type = word == "incr" ? CommandType::kIncr : CommandType::kDecr;
    out->keys.push_back(tokens[1]);
    out->delta = delta;
    out->noreply = noreply;
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  // --- touch -----------------------------------------------------------
  if (word == "touch") {
    const bool arity_ok = tokens.size() == 3 || tokens.size() == 4;
    const bool noreply = tokens.size() == 4 && tokens[3] == "noreply";
    if (!arity_ok || (tokens.size() == 4 && !noreply) ||
        !ValidKey(tokens[1])) {
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    int64_t exptime = 0;
    if (!ParseI64(tokens[2], &exptime)) {
      *consumed = line_end;
      SetError(out, kErrBadExptime);
      out->noreply = noreply;
      return ParseStatus::kCommand;
    }
    out->type = CommandType::kTouch;
    out->keys.push_back(tokens[1]);
    out->exptime = exptime;
    out->noreply = noreply;
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  // --- flush_all -------------------------------------------------------
  if (word == "flush_all") {
    // flush_all [delay] [noreply] — the delay defaults to 0 (immediate).
    int64_t delay = 0;
    bool noreply = false;
    bool ok = tokens.size() <= 3;
    if (ok && tokens.size() > 1 && tokens.back() == "noreply") {
      noreply = true;
    }
    const size_t args = tokens.size() - 1 - (noreply ? 1 : 0);
    ok = ok && args <= 1;
    if (ok && args == 1) {
      ok = ParseI64(tokens[1], &delay) && delay >= 0;
    }
    if (!ok) {
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    out->type = CommandType::kFlushAll;
    out->exptime = delay;
    out->noreply = noreply;
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  // --- delete ----------------------------------------------------------
  if (word == "delete") {
    const bool arity_ok = tokens.size() == 2 || tokens.size() == 3;
    const bool noreply = tokens.size() == 3 && tokens[2] == "noreply";
    if (!arity_ok || (tokens.size() == 3 && !noreply) ||
        !ValidKey(tokens[1])) {
      *consumed = line_end;
      SetError(out, kErrBadLine);
      return ParseStatus::kCommand;
    }
    out->type = CommandType::kDelete;
    out->keys.push_back(tokens[1]);
    out->noreply = noreply;
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  // --- administrative --------------------------------------------------
  if (word == "stats" || word == "version" || word == "quit") {
    if (tokens.size() != 1) {
      // `stats <unknown-subcommand>` is ERROR in memcached too.
      *consumed = line_end;
      SetError(out, kErrError);
      return ParseStatus::kCommand;
    }
    out->type = word == "stats"     ? CommandType::kStats
                : word == "version" ? CommandType::kVersion
                                    : CommandType::kQuit;
    *consumed = line_end;
    return ParseStatus::kCommand;
  }

  *consumed = line_end;
  SetError(out, kErrError);
  return ParseStatus::kCommand;
}

// --- Serializers ----------------------------------------------------------

namespace {
void AppendU64(std::string* out, uint64_t v) {
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  out->append(p, static_cast<size_t>(buf + sizeof(buf) - p));
}
}  // namespace

void AppendValueHeader(std::string* out, std::string_view key, uint32_t flags,
                       uint64_t bytes) {
  out->append("VALUE ");
  out->append(key);
  out->push_back(' ');
  AppendU64(out, flags);
  out->push_back(' ');
  AppendU64(out, bytes);
  out->append(kCrlf);
}

void AppendValueHeaderCas(std::string* out, std::string_view key,
                          uint32_t flags, uint64_t bytes, uint64_t cas) {
  out->append("VALUE ");
  out->append(key);
  out->push_back(' ');
  AppendU64(out, flags);
  out->push_back(' ');
  AppendU64(out, bytes);
  out->push_back(' ');
  AppendU64(out, cas);
  out->append(kCrlf);
}

void AppendValueResponse(std::string* out, std::string_view key,
                         uint32_t flags, std::string_view data) {
  AppendValueHeader(out, key, flags, data.size());
  out->append(data);
  out->append(kCrlf);
}

void AppendValueResponseCas(std::string* out, std::string_view key,
                            uint32_t flags, std::string_view data,
                            uint64_t cas) {
  AppendValueHeaderCas(out, key, flags, data.size(), cas);
  out->append(data);
  out->append(kCrlf);
}

void AppendErrorLine(std::string* out, std::string_view error) {
  out->append(error);
  out->append(kCrlf);
}

void AppendNumericLine(std::string* out, uint64_t v) {
  AppendU64(out, v);
  out->append(kCrlf);
}

void AppendStat(std::string* out, std::string_view name, std::string_view v) {
  out->append("STAT ");
  out->append(name);
  out->push_back(' ');
  out->append(v);
  out->append(kCrlf);
}

void AppendStat(std::string* out, std::string_view name, uint64_t v) {
  out->append("STAT ");
  out->append(name);
  out->push_back(' ');
  AppendU64(out, v);
  out->append(kCrlf);
}

}  // namespace net
}  // namespace cliffhanger
