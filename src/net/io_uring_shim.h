// Minimal io_uring wrapper over raw syscalls — no liburing dependency.
//
// The container toolchain ships <linux/io_uring.h> (the kernel ABI) but not
// liburing, so this shim does the small amount liburing would: io_uring_setup
// + the two ring mmaps, SQE acquisition with the identity-filled index array,
// submission via io_uring_enter, CQE reaping with the acquire/release fences
// the shared rings require, and the register/probe calls the runtime support
// check needs. Single-threaded by design: one UringQueue per worker thread,
// no SQPOLL, no locking.
//
// Compile-gated: on platforms without the kernel header the shim collapses
// to CLIFFHANGER_HAS_IO_URING == 0 and the socket server's kUring backend
// falls back to epoll at Start() (see SocketServer::Start).
#pragma once

#if defined(__linux__) && defined(__has_include)
#if __has_include(<linux/io_uring.h>)
#define CLIFFHANGER_HAS_IO_URING 1
#endif
#endif
#ifndef CLIFFHANGER_HAS_IO_URING
#define CLIFFHANGER_HAS_IO_URING 0
#endif

#if CLIFFHANGER_HAS_IO_URING

#include <linux/io_uring.h>

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace cliffhanger {
namespace net {

class UringQueue {
 public:
  UringQueue() = default;
  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  // Creates the ring with at least `entries` SQ slots (the kernel rounds up
  // to a power of two and sizes the CQ at 2x). Returns false with *error
  // set ("io_uring_setup: <reason>") when the kernel or a seccomp policy
  // denies io_uring — the caller treats that as "fall back to epoll".
  bool Init(unsigned entries, std::string* error);
  void Close();
  [[nodiscard]] bool ok() const { return ring_fd_ >= 0; }

  // Next free SQE, zeroed, or nullptr when the SQ is full (Submit() first,
  // then retry). The slot stays owned by this queue until Submit().
  io_uring_sqe* GetSqe();
  [[nodiscard]] unsigned pending_sqes() const {
    return sqe_tail_ - kernel_sq_head();
  }

  // Submits every prepared SQE. Returns the number submitted, or -errno.
  int Submit() { return Enter(0, 0); }
  // Submits every prepared SQE and blocks until >= min_complete CQEs are
  // available. One syscall (IORING_ENTER_GETEVENTS).
  int SubmitAndWait(unsigned min_complete) { return Enter(min_complete, IORING_ENTER_GETEVENTS); }
  // Blocks for completions without submitting (EINTR is retried).
  int Wait(unsigned min_complete);

  // Copies up to `max` completions into `out`, advancing the CQ head.
  // Returns the number copied (0 = none pending).
  unsigned ReapCqes(io_uring_cqe* out, unsigned max);

  // True when the kernel supports every opcode in `ops`
  // (IORING_REGISTER_PROBE); on failure *missing names the first gap or the
  // register error.
  bool SupportsOps(std::initializer_list<uint8_t> ops, std::string* missing);

  // IORING_REGISTER_FILES: fixed-file table for IOSQE_FIXED_FILE SQEs
  // (the worker registers its wake eventfd at slot 0). Returns 0 or -errno.
  int RegisterFiles(const int* fds, unsigned count);

  // Test hooks: how many io_uring_enter calls carried submissions, and how
  // many SQEs they carried in total. The batching proof asserts
  // sqes >> submits for pipelined bursts. Atomic because tests read them
  // from another thread while workers run.
  [[nodiscard]] uint64_t submit_calls() const {
    return submit_calls_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t submitted_sqes() const {
    return submitted_sqes_.load(std::memory_order_relaxed);
  }

 private:
  int Enter(unsigned min_complete, unsigned flags);
  [[nodiscard]] unsigned kernel_sq_head() const;

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;

  // SQ ring mmap (head/tail/mask/array live inside) + the SQE array mmap.
  void* sq_ring_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;  // == sq_ring_ under IORING_FEAT_SINGLE_MMAP
  size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_bytes_ = 0;

  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  unsigned sqe_tail_ = 0;  // local: SQEs handed out, not yet all submitted

  std::atomic<uint64_t> submit_calls_{0};
  std::atomic<uint64_t> submitted_sqes_{0};
};

}  // namespace net
}  // namespace cliffhanger

#endif  // CLIFFHANGER_HAS_IO_URING
