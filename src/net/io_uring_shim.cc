#include "net/io_uring_shim.h"

#if CLIFFHANGER_HAS_IO_URING

#include <errno.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>

// The syscall numbers are identical across every 64-bit Linux ABI that has
// io_uring; the fallbacks only matter if <sys/syscall.h> predates 5.1.
#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#ifndef __NR_io_uring_register
#define __NR_io_uring_register 427
#endif

namespace cliffhanger {
namespace net {

namespace {

int SysSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysEnter(int fd, unsigned to_submit, unsigned min_complete,
             unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysRegister(int fd, unsigned opcode, const void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg,
                                    nr_args));
}

// The ring head/tail words are shared with the kernel: loads of the other
// side's word need acquire (so the data it guards is visible), stores of
// our word need release (so the data we prepared is visible first).
unsigned LoadAcquire(const unsigned* p) {
  return __atomic_load_n(p, __ATOMIC_ACQUIRE);
}

void StoreRelease(unsigned* p, unsigned v) {
  __atomic_store_n(p, v, __ATOMIC_RELEASE);
}

}  // namespace

UringQueue::~UringQueue() { Close(); }

void UringQueue::Close() {
  if (sqes_ != nullptr) {
    ::munmap(sqes_, sqes_bytes_);
    sqes_ = nullptr;
  }
  if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) {
    ::munmap(cq_ring_, cq_ring_bytes_);
  }
  cq_ring_ = nullptr;
  if (sq_ring_ != nullptr) {
    ::munmap(sq_ring_, sq_ring_bytes_);
    sq_ring_ = nullptr;
  }
  if (ring_fd_ >= 0) {
    ::close(ring_fd_);
    ring_fd_ = -1;
  }
  sqe_tail_ = 0;
}

bool UringQueue::Init(unsigned entries, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    Close();
    return false;
  };
  io_uring_params p;
  memset(&p, 0, sizeof(p));
  ring_fd_ = SysSetup(entries, &p);
  if (ring_fd_ < 0) return fail("io_uring_setup");
  sq_entries_ = p.sq_entries;
  cq_entries_ = p.cq_entries;

  sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_,
                                               cq_ring_bytes_);
  }
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  if (sq_ring_ == MAP_FAILED) {
    sq_ring_ = nullptr;
    return fail("mmap(sq_ring)");
  }
  if (single_mmap) {
    cq_ring_ = sq_ring_;
  } else {
    cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_,
                      IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) {
      cq_ring_ = nullptr;
      return fail("mmap(cq_ring)");
    }
  }
  sqes_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
  sqes_ = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
  if (sqes_ == MAP_FAILED) {
    sqes_ = nullptr;
    return fail("mmap(sqes)");
  }

  char* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  char* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  cqes_ = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);

  // Identity-fill the SQ index array once: slot i of the ring always names
  // SQE i, so submission is just a tail bump.
  for (unsigned i = 0; i < sq_entries_; ++i) sq_array_[i] = i;
  sqe_tail_ = *sq_tail_;
  return true;
}

unsigned UringQueue::kernel_sq_head() const { return LoadAcquire(sq_head_); }

io_uring_sqe* UringQueue::GetSqe() {
  if (sqe_tail_ - kernel_sq_head() >= sq_entries_) return nullptr;  // SQ full
  io_uring_sqe* sqe = &sqes_[sqe_tail_ & sq_mask_];
  ++sqe_tail_;
  memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

int UringQueue::Enter(unsigned min_complete, unsigned flags) {
  // Publish every prepared SQE, then tell the kernel how many are new.
  StoreRelease(sq_tail_, sqe_tail_);
  const unsigned to_submit = sqe_tail_ - kernel_sq_head();
  int submitted = 0;
  while (true) {
    const int rc = SysEnter(ring_fd_, to_submit - submitted,
                            min_complete, flags);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return -errno;
    }
    submitted += rc;
    // Without SQPOLL the kernel consumes everything it was asked to in one
    // call; the loop guards the theoretical short-submit case.
    if (static_cast<unsigned>(submitted) >= to_submit) break;
  }
  if (to_submit > 0) {
    submit_calls_.fetch_add(1, std::memory_order_relaxed);
    submitted_sqes_.fetch_add(to_submit, std::memory_order_relaxed);
  }
  return submitted;
}

int UringQueue::Wait(unsigned min_complete) {
  while (true) {
    const int rc = SysEnter(ring_fd_, 0, min_complete,
                            IORING_ENTER_GETEVENTS);
    if (rc >= 0) return rc;
    if (errno != EINTR) return -errno;
  }
}

unsigned UringQueue::ReapCqes(io_uring_cqe* out, unsigned max) {
  const unsigned head = *cq_head_;  // we are the only consumer
  const unsigned tail = LoadAcquire(cq_tail_);
  unsigned n = std::min(tail - head, max);
  for (unsigned i = 0; i < n; ++i) {
    out[i] = cqes_[(head + i) & cq_mask_];
  }
  if (n > 0) StoreRelease(cq_head_, head + n);
  return n;
}

bool UringQueue::SupportsOps(std::initializer_list<uint8_t> ops,
                             std::string* missing) {
  constexpr unsigned kProbeOps = 256;
  const size_t bytes =
      sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op);
  void* raw = ::calloc(1, bytes);
  if (raw == nullptr) {
    if (missing != nullptr) *missing = "probe allocation failed";
    return false;
  }
  auto* probe = static_cast<io_uring_probe*>(raw);
  const int rc = SysRegister(ring_fd_, IORING_REGISTER_PROBE, probe,
                             kProbeOps);
  if (rc < 0) {
    if (missing != nullptr) {
      *missing = std::string("IORING_REGISTER_PROBE: ") + strerror(errno);
    }
    ::free(raw);
    return false;
  }
  for (const uint8_t op : ops) {
    if (op > probe->last_op ||
        (probe->ops[op].flags & IO_URING_OP_SUPPORTED) == 0) {
      if (missing != nullptr) {
        *missing = "opcode " + std::to_string(op) + " unsupported";
      }
      ::free(raw);
      return false;
    }
  }
  ::free(raw);
  return true;
}

int UringQueue::RegisterFiles(const int* fds, unsigned count) {
  const int rc = SysRegister(ring_fd_, IORING_REGISTER_FILES, fds, count);
  return rc < 0 ? -errno : 0;
}

}  // namespace net
}  // namespace cliffhanger

#endif  // CLIFFHANGER_HAS_IO_URING
