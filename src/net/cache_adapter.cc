#include "net/cache_adapter.h"

#include <time.h>

#include <algorithm>

#include "util/argparse.h"
#include "util/hashing.h"

namespace cliffhanger {
namespace net {

namespace {

// "app<digits>:<rest>" -> app id. Returns false when the key does not use
// the namespace convention (including overflowing ids).
bool ParseAppPrefix(std::string_view key, uint32_t* app_id) {
  if (key.size() < 5 || key.compare(0, 3, "app") != 0) return false;
  uint64_t id = 0;
  size_t pos = 3;
  while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
    id = id * 10 + static_cast<uint64_t>(key[pos] - '0');
    if (id > UINT32_MAX) return false;
    ++pos;
  }
  if (pos == 3 || pos >= key.size() || key[pos] != ':') return false;
  *app_id = static_cast<uint32_t>(id);
  return true;
}

}  // namespace

uint32_t AbsoluteExpiry(int64_t exptime, uint32_t now_s) {
  // Clamp below kKeepExpiry so a protocol exptime can never alias the
  // Touch keep-the-stored-expiry sentinel (cache/types.h).
  constexpr uint32_t kMaxExpiry = kKeepExpiry - 1;
  if (exptime == 0) return 0;
  if (exptime < 0) {
    // Already expired (memcached's -1): any stored second <= now reads as
    // expired; max(1, now) also covers a (contractually forbidden) now==0.
    return std::max<uint32_t>(1, now_s);
  }
  if (exptime <= kRelativeExptimeCutoff) {
    const uint64_t absolute = static_cast<uint64_t>(now_s) +
                              static_cast<uint64_t>(exptime);
    return absolute > kMaxExpiry ? kMaxExpiry
                                 : static_cast<uint32_t>(absolute);
  }
  return exptime > static_cast<int64_t>(kMaxExpiry)
             ? kMaxExpiry
             : static_cast<uint32_t>(exptime);
}

// One key's full memcached state: the payload bytes plus ItemAttrs (flags,
// absolute expiry, cas version) and the store time flush_all compares
// against. value_size survives reclamation so later core probes stay in
// the right slab class (the determinism contract).
struct CacheAdapter::Entry {
  std::string value;        // cleared lazily after an observed core miss
  uint32_t value_size = 0;  // survives reclamation: keeps GETs in class
  uint32_t stored_s = 0;    // store time; compared against the flush point
  ItemAttrs attrs;
  bool live = false;
};

// Value-byte side table, sharded by the same key routing as the core so a
// store shard's working set mirrors a cache shard's.
//
// Lock order: a store-shard mutex is held ACROSS the core call for the
// same key (store mutex -> core shard mutex / core rebalance locks), which
// serializes same-key operations from different connections — the side
// table can never disagree with the core about a key's slab class or
// liveness. This nests safely because the core never calls back into the
// adapter and no thread ever takes a store mutex while holding a core
// lock (stats readers take core locks only).
struct CacheAdapter::StoreShard {
  std::mutex mu;
  std::unordered_map<uint64_t, Entry> map;
};

CacheAdapter::CacheAdapter(ShardedCacheServer* server,
                           const CacheAdapterConfig& config)
    : server_(server), config_(config), app_ids_(server->app_ids()) {
  if (!config_.clock) {
    config_.clock = [] { return static_cast<uint32_t>(::time(nullptr)); };
  }
  std::sort(app_ids_.begin(), app_ids_.end());
  store_.reserve(server_->num_shards());
  for (size_t i = 0; i < server_->num_shards(); ++i) {
    store_.push_back(std::make_unique<StoreShard>());
  }
}

CacheAdapter::~CacheAdapter() = default;

CacheAdapter::RoutedKey CacheAdapter::Route(std::string_view key) const {
  RoutedKey rk;
  rk.key_id = Fnv1a64(key);
  rk.app_id = config_.default_app_id;
  if (config_.parse_app_prefix) {
    uint32_t prefixed = 0;
    if (ParseAppPrefix(key, &prefixed)) rk.app_id = prefixed;
  }
  rk.app_known = std::binary_search(app_ids_.begin(), app_ids_.end(),
                                    rk.app_id);
  return rk;
}

bool CacheAdapter::EntryValid(const Entry& entry, uint32_t now_s) const {
  if (!entry.live) return false;
  if (ExpiredAt(entry.attrs.expiry_s, now_s)) return false;
  const uint32_t flush_at = flush_at_s_.load(std::memory_order_relaxed);
  return flush_at == 0 || now_s < flush_at || entry.stored_s >= flush_at;
}

// Pre: shard lock held. The one place the byte-accounting invariant
// (bytes_stored_ tracks live value bytes) is released: frees the payload,
// keeps the size metadata, marks the entry dead.
void CacheAdapter::ReleaseValueLocked(Entry* entry) {
  bytes_stored_.fetch_sub(entry->value.size(), std::memory_order_relaxed);
  std::string().swap(entry->value);
  entry->live = false;
}

void CacheAdapter::ReclaimLocked(CoreRef core, Entry* entry,
                                 const RoutedKey& rk, uint32_t key_size) {
  ReleaseValueLocked(entry);
  // Erase from the core too (physical and shadow): an invalidated item
  // must not keep earning shadow credit an unexpired refill would not.
  core.Delete(rk.app_id, ItemMeta{rk.key_id, key_size, entry->value_size});
}

CacheAdapter::Lookup CacheAdapter::LookupLocked(CoreRef core,
                                                StoreShard& shard,
                                                const RoutedKey& rk,
                                                uint32_t key_size,
                                                uint32_t now_s) {
  Lookup lk;
  const auto it = shard.map.find(rk.key_id);
  if (it == shard.map.end()) return lk;
  lk.entry = &it->second;
  lk.valid = EntryValid(it->second, now_s);
  if (it->second.live && !lk.valid) {
    ReclaimLocked(core, lk.entry, rk, key_size);
    lk.reclaimed = true;
  }
  return lk;
}

bool CacheAdapter::RewriteValueLocked(CoreRef core, Entry* entry,
                                      const RoutedKey& rk, uint32_t key_size,
                                      std::string_view new_value,
                                      uint32_t now_s) {
  const uint32_t old_size = entry->value_size;
  const auto new_size = static_cast<uint32_t>(new_value.size());
  ItemMeta item{rk.key_id, key_size, new_size};
  item.expiry_s = entry->attrs.expiry_s;
  item.now_s = now_s;
  if (new_size != old_size) {
    // Re-slab: the size change moves the item between slab classes, and
    // the per-class accounting the climbers feed on must see the move.
    core.Delete(rk.app_id, ItemMeta{rk.key_id, key_size, old_size});
    if (!core.Set(rk.app_id, item)) {
      // No slab class fits the rewritten value: the old incarnation is
      // already gone from the core, so drop it here too.
      ReleaseValueLocked(entry);
      return false;
    }
  } else {
    // Same footprint: the rewrite is an access, not a re-fill — promote
    // recency without minting phantom set statistics.
    core.Touch(rk.app_id, item);
  }
  bytes_stored_.fetch_add(new_value.size(), std::memory_order_relaxed);
  bytes_stored_.fetch_sub(entry->value.size(), std::memory_order_relaxed);
  entry->value.assign(new_value.data(), new_value.size());
  entry->value_size = new_size;
  entry->stored_s = now_s;
  entry->attrs.cas = NextCas();
  return true;
}

void CacheAdapter::GetKeyLocked(CoreRef core, StoreShard& shard,
                                std::string_view key, const RoutedKey& rk,
                                uint32_t now_s, bool with_cas,
                                std::string* out) {
  const auto it = shard.map.find(rk.key_id);
  const bool was_live = it != shard.map.end() && it->second.live;

  // flush_all is enforced here (the core has no store times): a flushed
  // entry is reclaimed and erased from the core before any probe.
  if (was_live && !EntryValid(it->second, now_s) &&
      !ExpiredAt(it->second.attrs.expiry_s, now_s)) {
    ReclaimLocked(core, &it->second, rk, static_cast<uint32_t>(key.size()));
    get_misses_.fetch_add(1, std::memory_order_relaxed);
    get_expired_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // The stored value_size keeps the core probe in the right slab class
  // even for keys the core has evicted. now_s arms the core's lazy
  // expiration: an expired item comes back as a clean miss.
  const uint32_t value_size =
      it == shard.map.end() ? 0 : it->second.value_size;
  ItemMeta item{rk.key_id, static_cast<uint32_t>(key.size()), value_size};
  item.now_s = now_s;
  const Outcome outcome = core.Get(rk.app_id, item);

  if (outcome.hit && was_live) {
    get_hits_.fetch_add(1, std::memory_order_relaxed);
    // Serialize straight from the entry — *out is connection-local (or a
    // dedicated response slot), so no intermediate copy of the value bytes
    // is needed.
    if (with_cas) {
      AppendValueResponseCas(out, key, it->second.attrs.flags,
                             it->second.value, it->second.attrs.cas);
    } else {
      AppendValueResponse(out, key, it->second.attrs.flags,
                          it->second.value);
    }
    return;
  }
  get_misses_.fetch_add(1, std::memory_order_relaxed);
  if (!outcome.hit && was_live) {
    // The core evicted or lazily expired this key: the value bytes can
    // never be served again (only a new SET restores residency), so
    // reclaim them now. No core Delete — eviction legitimately leaves
    // shadow state, and expiry already erased everything.
    if (ExpiredAt(it->second.attrs.expiry_s, now_s)) {
      get_expired_.fetch_add(1, std::memory_order_relaxed);
    }
    ReleaseValueLocked(&it->second);
  }
}

void CacheAdapter::HandleGet(const Command& cmd, std::string* out,
                             bool with_cas) {
  const uint32_t now = Now();
  for (const std::string_view key : cmd.keys) {
    cmd_get_.fetch_add(1, std::memory_order_relaxed);
    const RoutedKey rk = Route(key);
    if (!rk.app_known) {
      get_misses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];

    // One shard lock around the side-table read, the core probe and the
    // response/reclaim: concurrent operations on the same key from other
    // connections are serialized, so the side table can never disagree
    // with the core about this key (see the lock-order note on StoreShard).
    std::lock_guard<std::mutex> lock(shard.mu);
    GetKeyLocked(CoreRef{server_, nullptr}, shard, key, rk, now, with_cas,
                 out);
  }
  out->append(kEndLine);
}

bool CacheAdapter::CountAndAdmit(const Command& cmd, const RoutedKey& rk,
                                 std::string* out) {
  switch (cmd.type) {
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
    case CommandType::kAppend:
    case CommandType::kPrepend:
      cmd_set_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      store_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (cmd.type == CommandType::kCas) {
        cas_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!cmd.noreply) {
        AppendErrorLine(out, "SERVER_ERROR unknown application");
      }
      return false;
    case CommandType::kIncr:
    case CommandType::kDecr:
      if (rk.app_known) return true;
      (cmd.type == CommandType::kIncr ? incr_misses_ : decr_misses_)
          .fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    case CommandType::kTouch:
      cmd_touch_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      touch_misses_.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    case CommandType::kDelete:
      cmd_delete_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    default:
      return true;
  }
}

void CacheAdapter::StoreLocked(CoreRef core, StoreShard& shard,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, std::string* out) {
  const bool is_cas = cmd.type == CommandType::kCas;
  const std::string_view key = cmd.key();
  // The conditional verbs treat an expired/flushed entry as absent; its
  // value bytes are reclaimed on this touch-point rather than lingering.
  const Lookup lk =
      LookupLocked(core, shard, rk, static_cast<uint32_t>(key.size()), now_s);
  const bool exists = lk.entry != nullptr;
  const uint32_t old_size = exists ? lk.entry->value_size : 0;

  if ((cmd.type == CommandType::kAdd && lk.valid) ||
      (cmd.type == CommandType::kReplace && !lk.valid)) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotStoredLine);
    return;
  }
  if (is_cas) {
    if (!lk.valid) {
      cas_misses_.fetch_add(1, std::memory_order_relaxed);
      store_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotFoundLine);
      return;
    }
    if (lk.entry->attrs.cas != cmd.cas_unique) {
      cas_badval_.fetch_add(1, std::memory_order_relaxed);
      store_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kExistsLine);
      return;
    }
  }

  const auto key_size = static_cast<uint32_t>(key.size());
  const auto new_size = static_cast<uint32_t>(cmd.data.size());
  // A size change moves the item to a different slab class; the core's
  // Fill only replaces within one class, so evict the old incarnation
  // explicitly or it would linger in the old class's queue. (LookupLocked
  // already erased a just-invalidated entry from the core.)
  if (exists && !lk.reclaimed && old_size != new_size) {
    core.Delete(rk.app_id, ItemMeta{rk.key_id, key_size, old_size});
  }
  ItemMeta item{rk.key_id, key_size, new_size};
  item.expiry_s = AbsoluteExpiry(cmd.exptime, now_s);
  item.now_s = now_s;
  const bool admitted = core.Set(rk.app_id, item);
  if (!admitted) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (exists) {
      if (lk.entry->live) ReleaseValueLocked(lk.entry);
      shard.map.erase(rk.key_id);
    }
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }

  Entry& entry = shard.map[rk.key_id];
  const size_t old_bytes = entry.live ? entry.value.size() : 0;
  bytes_stored_.fetch_add(cmd.data.size() - old_bytes,
                          std::memory_order_relaxed);
  entry.value.assign(cmd.data.data(), cmd.data.size());
  entry.value_size = new_size;
  entry.stored_s = now_s;
  entry.attrs.flags = cmd.flags;
  entry.attrs.expiry_s = item.expiry_s;
  entry.attrs.cas = NextCas();
  entry.live = true;
  if (is_cas) cas_hits_.fetch_add(1, std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kStoredLine);
}

void CacheAdapter::HandleStore(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];
  // Held across presence check, core Delete/Set and side-table update:
  // without it, two same-key SETs of different sizes could both delete the
  // old incarnation and then leave the key resident in two slab classes.
  std::lock_guard<std::mutex> lock(shard.mu);
  StoreLocked(CoreRef{server_, nullptr}, shard, cmd, rk, now, out);
}

// append/prepend: splice onto an existing value. The command line's flags
// and exptime are parsed but ignored (memcached semantics); only existence
// gates the store, and the result re-slabs through the core.
void CacheAdapter::ConcatLocked(CoreRef core, StoreShard& shard,
                                const Command& cmd, const RoutedKey& rk,
                                uint32_t now_s, std::string* out) {
  const std::string_view key = cmd.key();
  const Lookup lk =
      LookupLocked(core, shard, rk, static_cast<uint32_t>(key.size()), now_s);
  if (!lk.valid) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotStoredLine);
    return;
  }
  Entry& entry = *lk.entry;
  const uint64_t combined_size =
      static_cast<uint64_t>(entry.value.size()) + cmd.data.size();
  if (combined_size > kMaxValueBytes) {
    // Reject the splice but keep the original item intact, as memcached
    // does when the concatenated object no longer fits.
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  std::string combined;
  combined.reserve(static_cast<size_t>(combined_size));
  if (cmd.type == CommandType::kAppend) {
    combined.append(entry.value);
    combined.append(cmd.data.data(), cmd.data.size());
  } else {
    combined.append(cmd.data.data(), cmd.data.size());
    combined.append(entry.value);
  }
  if (!RewriteValueLocked(core, &entry, rk,
                          static_cast<uint32_t>(key.size()), combined,
                          now_s)) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  if (!cmd.noreply) out->append(kStoredLine);
}

void CacheAdapter::HandleConcat(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ConcatLocked(CoreRef{server_, nullptr}, shard, cmd, rk, now, out);
}

void CacheAdapter::ArithLocked(CoreRef core, StoreShard& shard,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, bool increment,
                               std::string* out) {
  auto& hits = increment ? incr_hits_ : decr_hits_;
  auto& misses = increment ? incr_misses_ : decr_misses_;
  const std::string_view key = cmd.key();
  const Lookup lk =
      LookupLocked(core, shard, rk, static_cast<uint32_t>(key.size()), now_s);
  if (!lk.valid) {
    misses.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotFoundLine);
    return;
  }
  Entry& entry = *lk.entry;
  uint64_t value = 0;
  if (!ParseDecimalU64(entry.value, &value)) {
    // Neither a hit nor a miss in memcached's books: the key exists but
    // its payload is not a 64-bit decimal.
    if (!cmd.noreply) AppendErrorLine(out, kErrNonNumeric);
    return;
  }
  // memcached arithmetic: incr wraps modulo 2^64, decr saturates at 0.
  const uint64_t result = increment
                              ? value + cmd.delta
                              : (value < cmd.delta ? 0 : value - cmd.delta);
  char buf[20];
  char* p = buf + sizeof(buf);
  uint64_t v = result;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  const std::string_view new_value(p,
                                   static_cast<size_t>(buf + sizeof(buf) - p));
  if (!RewriteValueLocked(core, &entry, rk,
                          static_cast<uint32_t>(key.size()), new_value,
                          now_s)) {
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  hits.fetch_add(1, std::memory_order_relaxed);
  if (!cmd.noreply) AppendNumericLine(out, result);
}

void CacheAdapter::HandleArith(const Command& cmd, std::string* out,
                               bool increment) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ArithLocked(CoreRef{server_, nullptr}, shard, cmd, rk, now, increment, out);
}

void CacheAdapter::TouchLocked(CoreRef core, StoreShard& shard,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, std::string* out) {
  const std::string_view key = cmd.key();
  const Lookup lk =
      LookupLocked(core, shard, rk, static_cast<uint32_t>(key.size()), now_s);
  if (!lk.valid) {
    touch_misses_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotFoundLine);
    return;
  }
  Entry& entry = *lk.entry;
  entry.attrs.expiry_s = AbsoluteExpiry(cmd.exptime, now_s);
  ItemMeta item{rk.key_id, static_cast<uint32_t>(key.size()),
                entry.value_size};
  item.expiry_s = entry.attrs.expiry_s;
  item.now_s = now_s;
  // Refresh the core's stored expiry and the item's recency standing; no
  // GET statistics move (memcached counts touches separately, and so does
  // the core — not at all).
  core.Touch(rk.app_id, item);
  touch_hits_.fetch_add(1, std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kTouchedLine);
}

void CacheAdapter::HandleTouch(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  TouchLocked(CoreRef{server_, nullptr}, shard, cmd, rk, now, out);
}

void CacheAdapter::DeleteLocked(CoreRef core, StoreShard& shard,
                                const Command& cmd, const RoutedKey& rk,
                                uint32_t now_s, std::string* out) {
  const std::string_view key = cmd.key();
  bool valid = false;
  const auto it = shard.map.find(rk.key_id);
  uint32_t value_size = 0;
  if (it != shard.map.end()) {
    // An expired/flushed entry deletes as NOT_FOUND, like memcached.
    valid = EntryValid(it->second, now_s);
    value_size = it->second.value_size;
    if (it->second.live) {
      bytes_stored_.fetch_sub(it->second.value.size(),
                              std::memory_order_relaxed);
    }
    shard.map.erase(it);
  }
  // Forward under the same lock (same-key serialization as the other
  // handlers): even a not-live key may still occupy a shadow segment,
  // and the core's Delete is a no-op for absent keys.
  core.Delete(rk.app_id, ItemMeta{rk.key_id,
                                  static_cast<uint32_t>(key.size()),
                                  value_size});
  if (valid) {
    delete_hits_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kDeletedLine);
  } else {
    if (!cmd.noreply) out->append(kNotFoundLine);
  }
}

void CacheAdapter::HandleDelete(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  DeleteLocked(CoreRef{server_, nullptr}, shard, cmd, rk, now, out);
}

void CacheAdapter::HandleFlushAll(const Command& cmd, std::string* out) {
  cmd_flush_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t now = Now();
  const uint64_t at = static_cast<uint64_t>(now) +
                      static_cast<uint64_t>(cmd.exptime);
  // Entries with stored_s < flush point are dead once now reaches it; the
  // reclaim is lazy (first access), O(1) per key, no sweeper. Items stored
  // at or after the flush point — including later in the same second —
  // survive. A later flush_all overwrites an earlier one, as memcached's
  // single oldest_live does.
  flush_at_s_.store(at > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(at),
                    std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kOkLine);
}

void CacheAdapter::HandleStats(std::string* out) {
  AppendStat(out, "version", kServerVersion);
  AppendStat(out, "pointer_size", static_cast<uint64_t>(8 * sizeof(void*)));
  AppendStat(out, "num_shards", static_cast<uint64_t>(server_->num_shards()));

  const Counters c = counters();
  AppendStat(out, "cmd_get", c.cmd_get);
  AppendStat(out, "get_hits", c.get_hits);
  AppendStat(out, "get_misses", c.get_misses);
  AppendStat(out, "get_expired", c.get_expired);
  AppendStat(out, "cmd_set", c.cmd_set);
  AppendStat(out, "store_rejected", c.store_rejected);
  AppendStat(out, "cas_hits", c.cas_hits);
  AppendStat(out, "cas_misses", c.cas_misses);
  AppendStat(out, "cas_badval", c.cas_badval);
  AppendStat(out, "incr_hits", c.incr_hits);
  AppendStat(out, "incr_misses", c.incr_misses);
  AppendStat(out, "decr_hits", c.decr_hits);
  AppendStat(out, "decr_misses", c.decr_misses);
  AppendStat(out, "cmd_touch", c.cmd_touch);
  AppendStat(out, "touch_hits", c.touch_hits);
  AppendStat(out, "touch_misses", c.touch_misses);
  AppendStat(out, "cmd_flush", c.cmd_flush);
  AppendStat(out, "cmd_delete", c.cmd_delete);
  AppendStat(out, "delete_hits", c.delete_hits);
  AppendStat(out, "protocol_errors", c.protocol_errors);
  AppendStat(out, "bytes_stored", c.bytes_stored);

  // The paper's signals, straight from the core (exact snapshot: MergedStats
  // holds every shard lock at once).
  const ClassStats core = server_->MergedStats();
  AppendStat(out, "cliffhanger_gets", core.gets);
  AppendStat(out, "cliffhanger_hits", core.hits);
  AppendStat(out, "cliffhanger_sets", core.sets);
  AppendStat(out, "cliffhanger_tail_hits", core.tail_hits);
  AppendStat(out, "cliffhanger_cliff_shadow_hits", core.cliff_shadow_hits);
  AppendStat(out, "cliffhanger_hill_shadow_hits", core.hill_shadow_hits);
  AppendStat(out, "cliffhanger_rebalances", server_->rebalance_count());
  for (const uint32_t app_id : app_ids_) {
    std::string name = "app_" + std::to_string(app_id) + "_reservation_bytes";
    AppendStat(out, name, server_->AppReservation(app_id));
  }
  out->append(kEndLine);
}

// ---------------------------------------------------------------------------
// Burst path (epoll backend): per-shard op batching
// ---------------------------------------------------------------------------

// One shard-routed operation of a burst, bound to its response slot. A
// multiget expands into one BurstOp per key (plus a pre-filled END slot), so
// reassembling the slots in index order reproduces the sequential byte
// stream exactly.
struct CacheAdapter::BurstOp {
  const Command* cmd;
  size_t key_idx;  // which key of a multiget; 0 for single-key verbs
  size_t slot;     // response segment index
  uint32_t now_s;  // stamped at collection, in command order (clock contract)
  RoutedKey rk;
  size_t shard;
};

namespace {

// Commands whose effects are confined to one key's shard. Everything else
// (stats/version/flush_all/quit/protocol errors) acts as a barrier and goes
// through the sequential Handle() in stream order.
bool IsShardable(CommandType type) {
  switch (type) {
    case CommandType::kGet:
    case CommandType::kGets:
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
    case CommandType::kAppend:
    case CommandType::kPrepend:
    case CommandType::kIncr:
    case CommandType::kDecr:
    case CommandType::kTouch:
    case CommandType::kDelete:
      return true;
    default:
      return false;
  }
}

}  // namespace

void CacheAdapter::ExecuteOpLocked(CoreRef core, StoreShard& shard,
                                   const BurstOp& op, std::string* out) {
  const Command& cmd = *op.cmd;
  switch (cmd.type) {
    case CommandType::kGet:
    case CommandType::kGets:
      GetKeyLocked(core, shard, cmd.keys[op.key_idx], op.rk, op.now_s,
                   /*with_cas=*/cmd.type == CommandType::kGets, out);
      break;
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
      StoreLocked(core, shard, cmd, op.rk, op.now_s, out);
      break;
    case CommandType::kAppend:
    case CommandType::kPrepend:
      ConcatLocked(core, shard, cmd, op.rk, op.now_s, out);
      break;
    case CommandType::kIncr:
    case CommandType::kDecr:
      ArithLocked(core, shard, cmd, op.rk, op.now_s,
                  /*increment=*/cmd.type == CommandType::kIncr, out);
      break;
    case CommandType::kTouch:
      TouchLocked(core, shard, cmd, op.rk, op.now_s, out);
      break;
    case CommandType::kDelete:
      DeleteLocked(core, shard, cmd, op.rk, op.now_s, out);
      break;
    default:
      break;  // unreachable: only shardable ops are collected
  }
}

void CacheAdapter::ExecuteShardedRun(const Command* cmds, size_t count,
                                     std::vector<std::string>* segments) {
  // Collection: expand commands into shard-routed ops and pre-create their
  // response slots in stream order. Admission (unknown app) and the
  // command counters run here, before any lock, exactly as the sequential
  // handlers do; Now() is read once per command, in command order.
  std::vector<BurstOp> ops;
  ops.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const Command& cmd = cmds[c];
    const uint32_t now = Now();
    if (cmd.type == CommandType::kGet || cmd.type == CommandType::kGets) {
      for (size_t k = 0; k < cmd.keys.size(); ++k) {
        cmd_get_.fetch_add(1, std::memory_order_relaxed);
        segments->emplace_back();
        const RoutedKey rk = Route(cmd.keys[k]);
        if (!rk.app_known) {
          get_misses_.fetch_add(1, std::memory_order_relaxed);
          continue;  // slot stays empty, like the sequential loop
        }
        ops.push_back(BurstOp{&cmd, k, segments->size() - 1, now, rk,
                              server_->ShardForKey(rk.key_id)});
      }
      // The terminator's content is known now; giving it its own slot keeps
      // every VALUE block independently writev-able.
      segments->emplace_back(kEndLine);
      continue;
    }
    segments->emplace_back();
    const RoutedKey rk = Route(cmd.key());
    if (!CountAndAdmit(cmd, rk, &segments->back())) continue;
    ops.push_back(BurstOp{&cmd, 0, segments->size() - 1, now, rk,
                          server_->ShardForKey(rk.key_id)});
  }

  // Group by shard; the stable sort preserves same-shard (and therefore
  // same-key) op order, which is what makes the grouped execution
  // equivalent to the sequential stream — including read-your-write for a
  // pipelined `set k` ... `get k` in one burst.
  std::stable_sort(ops.begin(), ops.end(),
                   [](const BurstOp& a, const BurstOp& b) {
                     return a.shard < b.shard;
                   });

  // Execution: one store-shard lock + one core ShardBatch per shard per
  // run. The store shard and core shard share the key routing, so each run
  // touches exactly one of each; lock order (store shard -> core shard) is
  // the same as every sequential handler's.
  size_t i = 0;
  while (i < ops.size()) {
    const size_t shard_index = ops[i].shard;
    StoreShard& shard = *store_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    ShardedCacheServer::ShardBatch batch = server_->BeginBatch(shard_index);
    CoreRef core{server_, &batch};
    for (; i < ops.size() && ops[i].shard == shard_index; ++i) {
      ExecuteOpLocked(core, shard, ops[i], &(*segments)[ops[i].slot]);
    }
    // ~ShardBatch publishes the counter deltas and bumps the rebalance
    // cadence after the core lock is released (still under the store lock,
    // like the sequential path's own in-handler core calls).
  }
}

bool CacheAdapter::HandleBatch(const Command* cmds, size_t count,
                               std::vector<std::string>* segments) {
  size_t i = 0;
  while (i < count) {
    if (!IsShardable(cmds[i].type)) {
      segments->emplace_back();
      if (!Handle(cmds[i], &segments->back())) return false;
      ++i;
      continue;
    }
    size_t run_end = i + 1;
    while (run_end < count && IsShardable(cmds[run_end].type)) ++run_end;
    ExecuteShardedRun(cmds + i, run_end - i, segments);
    i = run_end;
  }
  return true;
}

bool CacheAdapter::Handle(const Command& cmd, std::string* out) {
  switch (cmd.type) {
    case CommandType::kGet:
      HandleGet(cmd, out, /*with_cas=*/false);
      return true;
    case CommandType::kGets:
      HandleGet(cmd, out, /*with_cas=*/true);
      return true;
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
      HandleStore(cmd, out);
      return true;
    case CommandType::kAppend:
    case CommandType::kPrepend:
      HandleConcat(cmd, out);
      return true;
    case CommandType::kIncr:
      HandleArith(cmd, out, /*increment=*/true);
      return true;
    case CommandType::kDecr:
      HandleArith(cmd, out, /*increment=*/false);
      return true;
    case CommandType::kTouch:
      HandleTouch(cmd, out);
      return true;
    case CommandType::kDelete:
      HandleDelete(cmd, out);
      return true;
    case CommandType::kFlushAll:
      HandleFlushAll(cmd, out);
      return true;
    case CommandType::kStats:
      HandleStats(out);
      return true;
    case CommandType::kVersion:
      out->append("VERSION ");
      out->append(kServerVersion);
      out->append(kCrlf);
      return true;
    case CommandType::kQuit:
      return false;
    case CommandType::kProtocolError:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      // noreply is set only when the rejected command's line parsed
      // cleanly enough to carry it; like memcached, such a command gets
      // no reply at all — an unexpected error line would desync clients
      // that count one response per non-noreply command.
      if (!cmd.noreply) AppendErrorLine(out, cmd.error);
      return true;
  }
  return true;
}

CacheAdapter::Counters CacheAdapter::counters() const {
  Counters c;
  c.cmd_get = cmd_get_.load(std::memory_order_relaxed);
  c.get_hits = get_hits_.load(std::memory_order_relaxed);
  c.get_misses = get_misses_.load(std::memory_order_relaxed);
  c.get_expired = get_expired_.load(std::memory_order_relaxed);
  c.cmd_set = cmd_set_.load(std::memory_order_relaxed);
  c.store_rejected = store_rejected_.load(std::memory_order_relaxed);
  c.cas_hits = cas_hits_.load(std::memory_order_relaxed);
  c.cas_misses = cas_misses_.load(std::memory_order_relaxed);
  c.cas_badval = cas_badval_.load(std::memory_order_relaxed);
  c.incr_hits = incr_hits_.load(std::memory_order_relaxed);
  c.incr_misses = incr_misses_.load(std::memory_order_relaxed);
  c.decr_hits = decr_hits_.load(std::memory_order_relaxed);
  c.decr_misses = decr_misses_.load(std::memory_order_relaxed);
  c.cmd_touch = cmd_touch_.load(std::memory_order_relaxed);
  c.touch_hits = touch_hits_.load(std::memory_order_relaxed);
  c.touch_misses = touch_misses_.load(std::memory_order_relaxed);
  c.cmd_flush = cmd_flush_.load(std::memory_order_relaxed);
  c.cmd_delete = cmd_delete_.load(std::memory_order_relaxed);
  c.delete_hits = delete_hits_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.bytes_stored = bytes_stored_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace net
}  // namespace cliffhanger
