#include "net/cache_adapter.h"

#include <algorithm>

#include "util/hashing.h"

namespace cliffhanger {
namespace net {

namespace {

// "app<digits>:<rest>" -> app id. Returns false when the key does not use
// the namespace convention (including overflowing ids).
bool ParseAppPrefix(std::string_view key, uint32_t* app_id) {
  if (key.size() < 5 || key.compare(0, 3, "app") != 0) return false;
  uint64_t id = 0;
  size_t pos = 3;
  while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
    id = id * 10 + static_cast<uint64_t>(key[pos] - '0');
    if (id > UINT32_MAX) return false;
    ++pos;
  }
  if (pos == 3 || pos >= key.size() || key[pos] != ':') return false;
  *app_id = static_cast<uint32_t>(id);
  return true;
}

}  // namespace

// Value-byte side table, sharded by the same key routing as the core so a
// store shard's working set mirrors a cache shard's.
//
// Lock order: a store-shard mutex is held ACROSS the core call for the
// same key (store mutex -> core shard mutex / core rebalance locks), which
// serializes same-key operations from different connections — the side
// table can never disagree with the core about a key's slab class or
// liveness. This nests safely because the core never calls back into the
// adapter and no thread ever takes a store mutex while holding a core
// lock (stats readers take core locks only).
struct CacheAdapter::StoreShard {
  struct Entry {
    std::string value;        // cleared lazily after an observed core miss
    uint32_t value_size = 0;  // survives reclamation: keeps GETs in class
    uint32_t flags = 0;
    uint64_t cas = 0;
    bool live = false;
  };
  std::mutex mu;
  std::unordered_map<uint64_t, Entry> map;
};

CacheAdapter::CacheAdapter(ShardedCacheServer* server,
                           const CacheAdapterConfig& config)
    : server_(server), config_(config), app_ids_(server->app_ids()) {
  std::sort(app_ids_.begin(), app_ids_.end());
  store_.reserve(server_->num_shards());
  for (size_t i = 0; i < server_->num_shards(); ++i) {
    store_.push_back(std::make_unique<StoreShard>());
  }
}

CacheAdapter::~CacheAdapter() = default;

CacheAdapter::RoutedKey CacheAdapter::Route(std::string_view key) const {
  RoutedKey rk;
  rk.key_id = Fnv1a64(key);
  rk.app_id = config_.default_app_id;
  if (config_.parse_app_prefix) {
    uint32_t prefixed = 0;
    if (ParseAppPrefix(key, &prefixed)) rk.app_id = prefixed;
  }
  rk.app_known = std::binary_search(app_ids_.begin(), app_ids_.end(),
                                    rk.app_id);
  return rk;
}

void CacheAdapter::HandleGet(const Command& cmd, std::string* out,
                             bool with_cas) {
  for (const std::string_view key : cmd.keys) {
    cmd_get_.fetch_add(1, std::memory_order_relaxed);
    const RoutedKey rk = Route(key);
    if (!rk.app_known) {
      get_misses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];

    // One shard lock around the side-table read, the core probe and the
    // response/reclaim: concurrent operations on the same key from other
    // connections are serialized, so the side table can never disagree
    // with the core about this key (see the lock-order note on StoreShard).
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(rk.key_id);
    // The stored value_size keeps the core probe in the right slab class
    // even for keys the core has evicted.
    const uint32_t value_size =
        it == shard.map.end() ? 0 : it->second.value_size;
    const ItemMeta item{rk.key_id, static_cast<uint32_t>(key.size()),
                        value_size};
    const Outcome outcome = server_->Get(rk.app_id, item);

    if (outcome.hit && it != shard.map.end() && it->second.live) {
      get_hits_.fetch_add(1, std::memory_order_relaxed);
      // Serialize straight from the entry — *out is connection-local, so
      // no intermediate copy of the value bytes is needed.
      if (with_cas) {
        AppendValueResponseCas(out, key, it->second.flags, it->second.value,
                               it->second.cas);
      } else {
        AppendValueResponse(out, key, it->second.flags, it->second.value);
      }
      continue;
    }
    get_misses_.fetch_add(1, std::memory_order_relaxed);
    if (!outcome.hit && it != shard.map.end() && it->second.live) {
      // The core evicted this key: the value bytes can never be served
      // again (only a new SET restores residency), so reclaim them now.
      bytes_stored_.fetch_sub(it->second.value.size(),
                              std::memory_order_relaxed);
      std::string().swap(it->second.value);
      it->second.live = false;
    }
  }
  out->append(kEndLine);
}

void CacheAdapter::HandleStore(const Command& cmd, std::string* out) {
  cmd_set_.fetch_add(1, std::memory_order_relaxed);
  const std::string_view key = cmd.key();
  const RoutedKey rk = Route(key);
  if (!rk.app_known) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, "SERVER_ERROR unknown application");
    return;
  }
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];

  // Held across presence check, core Delete/Set and side-table update:
  // without it, two same-key SETs of different sizes could both delete the
  // old incarnation and then leave the key resident in two slab classes.
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.map.find(rk.key_id);
  const bool exists = it != shard.map.end();
  const bool live = exists && it->second.live;
  const uint32_t old_size = exists ? it->second.value_size : 0;

  if ((cmd.type == CommandType::kAdd && live) ||
      (cmd.type == CommandType::kReplace && !live)) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotStoredLine);
    return;
  }

  const auto key_size = static_cast<uint32_t>(key.size());
  const auto new_size = static_cast<uint32_t>(cmd.data.size());
  // A size change moves the item to a different slab class; the core's
  // Fill only replaces within one class, so evict the old incarnation
  // explicitly or it would linger in the old class's queue.
  if (exists && old_size != new_size) {
    server_->Delete(rk.app_id, ItemMeta{rk.key_id, key_size, old_size});
  }
  const bool admitted =
      server_->Set(rk.app_id, ItemMeta{rk.key_id, key_size, new_size});
  if (!admitted) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (exists) {
      if (live) {
        bytes_stored_.fetch_sub(it->second.value.size(),
                                std::memory_order_relaxed);
      }
      shard.map.erase(it);
    }
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }

  const uint64_t cas = cas_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  StoreShard::Entry& entry = shard.map[rk.key_id];
  const size_t old_bytes = entry.live ? entry.value.size() : 0;
  bytes_stored_.fetch_add(cmd.data.size() - old_bytes,
                          std::memory_order_relaxed);
  entry.value.assign(cmd.data.data(), cmd.data.size());
  entry.value_size = new_size;
  entry.flags = cmd.flags;
  entry.cas = cas;
  entry.live = true;
  if (!cmd.noreply) out->append(kStoredLine);
}

void CacheAdapter::HandleDelete(const Command& cmd, std::string* out) {
  cmd_delete_.fetch_add(1, std::memory_order_relaxed);
  const std::string_view key = cmd.key();
  const RoutedKey rk = Route(key);
  if (!rk.app_known) {
    if (!cmd.noreply) out->append(kNotFoundLine);
    return;
  }
  StoreShard& shard = *store_[server_->ShardForKey(rk.key_id)];

  bool live = false;
  uint32_t value_size = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(rk.key_id);
    if (it != shard.map.end()) {
      live = it->second.live;
      value_size = it->second.value_size;
      if (it->second.live) {
        bytes_stored_.fetch_sub(it->second.value.size(),
                                std::memory_order_relaxed);
      }
      shard.map.erase(it);
    }
    // Forward under the same lock (same-key serialization as the other
    // handlers): even a not-live key may still occupy a shadow segment,
    // and the core's Delete is a no-op for absent keys.
    server_->Delete(rk.app_id, ItemMeta{rk.key_id,
                                        static_cast<uint32_t>(key.size()),
                                        value_size});
  }
  if (live) {
    delete_hits_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kDeletedLine);
  } else {
    if (!cmd.noreply) out->append(kNotFoundLine);
  }
}

void CacheAdapter::HandleStats(std::string* out) {
  AppendStat(out, "version", kServerVersion);
  AppendStat(out, "pointer_size", static_cast<uint64_t>(8 * sizeof(void*)));
  AppendStat(out, "num_shards", static_cast<uint64_t>(server_->num_shards()));

  AppendStat(out, "cmd_get", cmd_get_.load(std::memory_order_relaxed));
  AppendStat(out, "get_hits", get_hits_.load(std::memory_order_relaxed));
  AppendStat(out, "get_misses", get_misses_.load(std::memory_order_relaxed));
  AppendStat(out, "cmd_set", cmd_set_.load(std::memory_order_relaxed));
  AppendStat(out, "store_rejected",
             store_rejected_.load(std::memory_order_relaxed));
  AppendStat(out, "cmd_delete", cmd_delete_.load(std::memory_order_relaxed));
  AppendStat(out, "delete_hits",
             delete_hits_.load(std::memory_order_relaxed));
  AppendStat(out, "protocol_errors",
             protocol_errors_.load(std::memory_order_relaxed));
  AppendStat(out, "bytes_stored",
             bytes_stored_.load(std::memory_order_relaxed));

  // The paper's signals, straight from the core (exact snapshot: MergedStats
  // holds every shard lock at once).
  const ClassStats core = server_->MergedStats();
  AppendStat(out, "cliffhanger_gets", core.gets);
  AppendStat(out, "cliffhanger_hits", core.hits);
  AppendStat(out, "cliffhanger_sets", core.sets);
  AppendStat(out, "cliffhanger_tail_hits", core.tail_hits);
  AppendStat(out, "cliffhanger_cliff_shadow_hits", core.cliff_shadow_hits);
  AppendStat(out, "cliffhanger_hill_shadow_hits", core.hill_shadow_hits);
  AppendStat(out, "cliffhanger_rebalances", server_->rebalance_count());
  for (const uint32_t app_id : app_ids_) {
    std::string name = "app_" + std::to_string(app_id) + "_reservation_bytes";
    AppendStat(out, name, server_->AppReservation(app_id));
  }
  out->append(kEndLine);
}

bool CacheAdapter::Handle(const Command& cmd, std::string* out) {
  switch (cmd.type) {
    case CommandType::kGet:
      HandleGet(cmd, out, /*with_cas=*/false);
      return true;
    case CommandType::kGets:
      HandleGet(cmd, out, /*with_cas=*/true);
      return true;
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
      HandleStore(cmd, out);
      return true;
    case CommandType::kDelete:
      HandleDelete(cmd, out);
      return true;
    case CommandType::kStats:
      HandleStats(out);
      return true;
    case CommandType::kVersion:
      out->append("VERSION ");
      out->append(kServerVersion);
      out->append(kCrlf);
      return true;
    case CommandType::kQuit:
      return false;
    case CommandType::kProtocolError:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      // noreply is set only when the rejected command's line parsed
      // cleanly enough to carry it; like memcached, such a command gets
      // no reply at all — an unexpected error line would desync clients
      // that count one response per non-noreply command.
      if (!cmd.noreply) AppendErrorLine(out, cmd.error);
      return true;
  }
  return true;
}

CacheAdapter::Counters CacheAdapter::counters() const {
  Counters c;
  c.cmd_get = cmd_get_.load(std::memory_order_relaxed);
  c.get_hits = get_hits_.load(std::memory_order_relaxed);
  c.get_misses = get_misses_.load(std::memory_order_relaxed);
  c.cmd_set = cmd_set_.load(std::memory_order_relaxed);
  c.store_rejected = store_rejected_.load(std::memory_order_relaxed);
  c.cmd_delete = cmd_delete_.load(std::memory_order_relaxed);
  c.delete_hits = delete_hits_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.bytes_stored = bytes_stored_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace net
}  // namespace cliffhanger
