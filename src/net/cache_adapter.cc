#include "net/cache_adapter.h"

#include <time.h>

#include <algorithm>
#include <cassert>

#include "util/argparse.h"
#include "util/hashing.h"
#include "util/slab_geometry.h"

namespace cliffhanger {
namespace net {

namespace {

// "app<digits>:<rest>" -> app id. Returns false when the key does not use
// the namespace convention (including overflowing ids).
bool ParseAppPrefix(std::string_view key, uint32_t* app_id) {
  if (key.size() < 5 || key.compare(0, 3, "app") != 0) return false;
  uint64_t id = 0;
  size_t pos = 3;
  while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
    id = id * 10 + static_cast<uint64_t>(key[pos] - '0');
    if (id > UINT32_MAX) return false;
    ++pos;
  }
  if (pos == 3 || pos >= key.size() || key[pos] != ':') return false;
  *app_id = static_cast<uint32_t>(id);
  return true;
}

// Claims the next response slot, recycling a caller-Reset() element when
// one is available and growing the vector otherwise (see the HandleBatch
// contract in socket_server.h: the steady-state burst cycle reuses slots
// and their string capacities, so it does not touch the allocator).
ResponseSegment& ClaimSlot(std::vector<ResponseSegment>* segments,
                           size_t* used) {
  if (*used == segments->size()) segments->emplace_back();
  return (*segments)[(*used)++];
}

// ShardBatches pinned by a pure-GET burst: they keep the shard locks — and
// therefore the borrowed arena payload spans in the response segments —
// alive until ReleaseBurstPins() runs after the flush. Thread-local
// because each epoll worker runs its own bursts; the socket server calls
// HandleBatch and ReleaseBurstPins on the same thread, back to back.
thread_local std::vector<ShardedCacheServer::ShardBatch> t_burst_pins;

}  // namespace

uint32_t AbsoluteExpiry(int64_t exptime, uint32_t now_s) {
  // Clamp below kKeepExpiry so a protocol exptime can never alias the
  // Touch keep-the-stored-expiry sentinel (cache/types.h).
  constexpr uint32_t kMaxExpiry = kKeepExpiry - 1;
  if (exptime == 0) return 0;
  if (exptime < 0) {
    // Already expired (memcached's -1): any stored second <= now reads as
    // expired; max(1, now) also covers a (contractually forbidden) now==0.
    return std::max<uint32_t>(1, now_s);
  }
  if (exptime <= kRelativeExptimeCutoff) {
    const uint64_t absolute = static_cast<uint64_t>(now_s) +
                              static_cast<uint64_t>(exptime);
    return absolute > kMaxExpiry ? kMaxExpiry
                                 : static_cast<uint32_t>(absolute);
  }
  return exptime > static_cast<int64_t>(kMaxExpiry)
             ? kMaxExpiry
             : static_cast<uint32_t>(exptime);
}

CacheAdapter::CacheAdapter(ShardedCacheServer* server,
                           const CacheAdapterConfig& config)
    : server_(server), config_(config) {
  if (!config_.clock) {
    config_.clock = [] { return static_cast<uint32_t>(::time(nullptr)); };
  }
  auto ids = std::make_shared<std::vector<uint32_t>>(server->app_ids());
  std::sort(ids->begin(), ids->end());
  std::atomic_store_explicit(
      &app_ids_,
      std::shared_ptr<const std::vector<uint32_t>>(std::move(ids)),
      std::memory_order_release);
}

CacheAdapter::~CacheAdapter() = default;

void CacheAdapter::AddApp(uint32_t app_id, uint64_t reservation) {
  // Core first, snapshot second: a command must never route to an app the
  // shards have not registered yet.
  server_->AddApp(app_id, reservation);
  auto next = std::make_shared<std::vector<uint32_t>>(*AppSnapshot());
  next->insert(std::lower_bound(next->begin(), next->end(), app_id), app_id);
  std::atomic_store_explicit(
      &app_ids_,
      std::shared_ptr<const std::vector<uint32_t>>(std::move(next)),
      std::memory_order_release);
}

bool CacheAdapter::RemoveApp(uint32_t app_id) {
  // Snapshot first, core second: withdraw the app from routing so new
  // commands soft-fail at admission, then tear it down. Commands that
  // routed against the old snapshot soft-fail inside the core instead.
  auto next = std::make_shared<std::vector<uint32_t>>(*AppSnapshot());
  const auto it = std::lower_bound(next->begin(), next->end(), app_id);
  if (it == next->end() || *it != app_id) return false;
  next->erase(it);
  std::atomic_store_explicit(
      &app_ids_,
      std::shared_ptr<const std::vector<uint32_t>>(std::move(next)),
      std::memory_order_release);
  return server_->RemoveApp(app_id);
}

CacheAdapter::RoutedKey CacheAdapter::Route(std::string_view key) const {
  RoutedKey rk;
  rk.key_id = Fnv1a64(key);
  rk.app_id = config_.default_app_id;
  if (config_.parse_app_prefix) {
    uint32_t prefixed = 0;
    if (ParseAppPrefix(key, &prefixed)) rk.app_id = prefixed;
  }
  const auto ids = AppSnapshot();
  rk.app_known = std::binary_search(ids->begin(), ids->end(), rk.app_id);
  return rk;
}

void CacheAdapter::GetKeyLocked(ShardedCacheServer::ShardBatch& core,
                                std::string_view key, const RoutedKey& rk,
                                uint32_t now_s, bool with_cas,
                                std::string* out, ResponseSegment* zc) {
  const ValueOutcome vo = core.GetValue(
      rk.app_id, rk.key_id, static_cast<uint32_t>(key.size()), now_s,
      FlushAt());
  if (vo.flush_reclaimed) {
    // flush_all invalidation, reclaimed on this access without touching
    // the core statistics (the probe never ran).
    get_misses_.fetch_add(1, std::memory_order_relaxed);
    get_expired_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (vo.valid) {
    get_hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(vo.view.size, std::memory_order_relaxed);
    if (zc != nullptr) {
      // Zero-copy: the VALUE header goes into the segment text, the
      // payload piece borrows the arena bytes (stable while the caller
      // keeps `core` pinned), and the terminating CRLF is the trailer.
      if (with_cas) {
        AppendValueHeaderCas(&zc->text, key, vo.view.flags, vo.view.size,
                             vo.view.cas);
      } else {
        AppendValueHeader(&zc->text, key, vo.view.flags, vo.view.size);
      }
      zc->payload = vo.view.data;
      zc->payload_size = vo.view.size;
      zc->trailer.append(kCrlf);
    } else {
      // Copy path (poll backend, mixed bursts): the batch dies before the
      // response is written, so the payload must move into the text.
      const std::string_view data(vo.view.data, vo.view.size);
      if (with_cas) {
        AppendValueResponseCas(out, key, vo.view.flags, data, vo.view.cas);
      } else {
        AppendValueResponse(out, key, vo.view.flags, data);
      }
    }
    return;
  }
  get_misses_.fetch_add(1, std::memory_order_relaxed);
  if (vo.expired) {
    get_expired_.fetch_add(1, std::memory_order_relaxed);
  }
}

void CacheAdapter::HandleGet(const Command& cmd, std::string* out,
                             bool with_cas) {
  const uint32_t now = Now();
  for (const std::string_view key : cmd.keys) {
    cmd_get_.fetch_add(1, std::memory_order_relaxed);
    const RoutedKey rk = Route(key);
    if (!rk.app_known) {
      get_misses_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // One shard lock around the probe and the response serialization:
    // concurrent same-key operations from other connections are
    // serialized, and the borrowed view is copied out before the batch
    // (and the lock) is released.
    ShardedCacheServer::ShardBatch batch =
        server_->BeginBatch(server_->ShardForKey(rk.key_id));
    GetKeyLocked(batch, key, rk, now, with_cas, out, /*zc=*/nullptr);
  }
  out->append(kEndLine);
}

bool CacheAdapter::CountAndAdmit(const Command& cmd, const RoutedKey& rk,
                                 std::string* out) {
  switch (cmd.type) {
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
    case CommandType::kAppend:
    case CommandType::kPrepend:
      cmd_set_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      store_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (cmd.type == CommandType::kCas) {
        cas_misses_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!cmd.noreply) {
        AppendErrorLine(out, "SERVER_ERROR unknown application");
      }
      return false;
    case CommandType::kIncr:
    case CommandType::kDecr:
      if (rk.app_known) return true;
      (cmd.type == CommandType::kIncr ? incr_misses_ : decr_misses_)
          .fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    case CommandType::kTouch:
      cmd_touch_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      touch_misses_.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    case CommandType::kDelete:
      cmd_delete_.fetch_add(1, std::memory_order_relaxed);
      if (rk.app_known) return true;
      if (!cmd.noreply) out->append(kNotFoundLine);
      return false;
    default:
      return true;
  }
}

void CacheAdapter::StoreLocked(ShardedCacheServer::ShardBatch& core,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, std::string* out) {
  const bool is_cas = cmd.type == CommandType::kCas;
  const std::string_view key = cmd.key();
  const auto key_size = static_cast<uint32_t>(key.size());

  // The conditional verbs decide presence from the core directly
  // (resident, unexpired, unflushed) — a statistics-neutral peek that also
  // lazily reclaims an expired/flushed incarnation on this touch-point.
  if (cmd.type == CommandType::kAdd || cmd.type == CommandType::kReplace ||
      is_cas) {
    const ValueOutcome peek =
        core.PeekValue(rk.app_id, rk.key_id, now_s, FlushAt());
    if ((cmd.type == CommandType::kAdd && peek.valid) ||
        (cmd.type == CommandType::kReplace && !peek.valid)) {
      store_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (!cmd.noreply) out->append(kNotStoredLine);
      return;
    }
    if (is_cas) {
      if (!peek.valid) {
        cas_misses_.fetch_add(1, std::memory_order_relaxed);
        store_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (!cmd.noreply) out->append(kNotFoundLine);
        return;
      }
      if (peek.view.cas != cmd.cas_unique) {
        cas_badval_.fetch_add(1, std::memory_order_relaxed);
        store_rejected_.fetch_add(1, std::memory_order_relaxed);
        if (!cmd.noreply) out->append(kExistsLine);
        return;
      }
    }
  }

  const auto new_size = static_cast<uint32_t>(cmd.data.size());
  ItemMeta item{rk.key_id, key_size, new_size};
  item.expiry_s = AbsoluteExpiry(cmd.exptime, now_s);
  item.now_s = now_s;
  if (SlabClassFor(ExactFootprint(key_size, new_size)) < 0) {
    // No slab class fits. SetValue still runs to drop any old incarnation
    // (memcached erases the key on an oversized store attempt); no cas is
    // minted for a rejected store, keeping the cas stream identical to the
    // success-only sequence.
    core.SetValue(rk.app_id, item, cmd.data.data(), cmd.flags, 0);
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  const uint64_t cas = NextCas();
  const bool admitted =
      core.SetValue(rk.app_id, item, cmd.data.data(), cmd.flags, cas);
  assert(admitted);
  (void)admitted;
  bytes_read_.fetch_add(cmd.data.size(), std::memory_order_relaxed);
  if (is_cas) cas_hits_.fetch_add(1, std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kStoredLine);
}

void CacheAdapter::HandleStore(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  // Held across the presence peek and the store: without it, two same-key
  // SETs of different sizes could interleave their cross-class moves.
  ShardedCacheServer::ShardBatch batch =
      server_->BeginBatch(server_->ShardForKey(rk.key_id));
  StoreLocked(batch, cmd, rk, now, out);
}

// append/prepend: splice onto an existing value. The command line's flags
// and exptime are parsed but ignored (memcached semantics); only existence
// gates the store, and the result re-slabs through the core when the size
// leaves the slab class.
void CacheAdapter::ConcatLocked(ShardedCacheServer::ShardBatch& core,
                                const Command& cmd, const RoutedKey& rk,
                                uint32_t now_s, std::string* out) {
  const std::string_view key = cmd.key();
  const auto key_size = static_cast<uint32_t>(key.size());
  const ValueOutcome peek =
      core.PeekValue(rk.app_id, rk.key_id, now_s, FlushAt());
  if (!peek.valid) {
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotStoredLine);
    return;
  }
  const uint64_t combined_size =
      static_cast<uint64_t>(peek.view.size) + cmd.data.size();
  if (combined_size > kMaxValueBytes) {
    // Reject the splice but keep the original item intact, as memcached
    // does when the concatenated object no longer fits.
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  // The splice copies by necessity; the view stays stable while `core`
  // holds the shard lock.
  std::string combined;
  combined.reserve(static_cast<size_t>(combined_size));
  if (cmd.type == CommandType::kAppend) {
    combined.append(peek.view.data, peek.view.size);
    combined.append(cmd.data.data(), cmd.data.size());
  } else {
    combined.append(cmd.data.data(), cmd.data.size());
    combined.append(peek.view.data, peek.view.size);
  }
  const auto new_size = static_cast<uint32_t>(combined.size());
  if (SlabClassFor(ExactFootprint(key_size, new_size)) < 0) {
    // Under kMaxValueBytes but over the largest chunk once the key and
    // item overhead are added: the old incarnation dies (ReplaceValue
    // deletes it before failing), no cas is minted.
    core.ReplaceValue(rk.app_id, rk.key_id, key_size, combined.data(),
                      new_size, 0, now_s);
    store_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) AppendErrorLine(out, kErrTooLarge);
    return;
  }
  const uint64_t cas = NextCas();
  const ReplaceResult r = core.ReplaceValue(
      rk.app_id, rk.key_id, key_size, combined.data(), new_size, cas, now_s);
  assert(r != ReplaceResult::kFailed);
  (void)r;
  bytes_read_.fetch_add(cmd.data.size(), std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kStoredLine);
}

void CacheAdapter::HandleConcat(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  ShardedCacheServer::ShardBatch batch =
      server_->BeginBatch(server_->ShardForKey(rk.key_id));
  ConcatLocked(batch, cmd, rk, now, out);
}

void CacheAdapter::ArithLocked(ShardedCacheServer::ShardBatch& core,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, bool increment,
                               std::string* out) {
  auto& hits = increment ? incr_hits_ : decr_hits_;
  auto& misses = increment ? incr_misses_ : decr_misses_;
  const std::string_view key = cmd.key();
  const ValueOutcome peek =
      core.PeekValue(rk.app_id, rk.key_id, now_s, FlushAt());
  if (!peek.valid) {
    misses.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotFoundLine);
    return;
  }
  uint64_t value = 0;
  if (!ParseDecimalU64(std::string_view(peek.view.data, peek.view.size),
                       &value)) {
    // Neither a hit nor a miss in memcached's books: the key exists but
    // its payload is not a 64-bit decimal.
    if (!cmd.noreply) AppendErrorLine(out, kErrNonNumeric);
    return;
  }
  // memcached arithmetic: incr wraps modulo 2^64, decr saturates at 0.
  const uint64_t result = increment
                              ? value + cmd.delta
                              : (value < cmd.delta ? 0 : value - cmd.delta);
  char buf[20];
  char* p = buf + sizeof(buf);
  uint64_t v = result;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v > 0);
  const auto new_size = static_cast<size_t>(buf + sizeof(buf) - p);
  // A <=20-byte decimal always fits a slab class next to a protocol-legal
  // key, so the rewrite cannot fail.
  const uint64_t cas = NextCas();
  const ReplaceResult r = core.ReplaceValue(
      rk.app_id, rk.key_id, static_cast<uint32_t>(key.size()), p,
      static_cast<uint32_t>(new_size), cas, now_s);
  assert(r != ReplaceResult::kFailed);
  (void)r;
  bytes_read_.fetch_add(new_size, std::memory_order_relaxed);
  hits.fetch_add(1, std::memory_order_relaxed);
  if (!cmd.noreply) AppendNumericLine(out, result);
}

void CacheAdapter::HandleArith(const Command& cmd, std::string* out,
                               bool increment) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  ShardedCacheServer::ShardBatch batch =
      server_->BeginBatch(server_->ShardForKey(rk.key_id));
  ArithLocked(batch, cmd, rk, now, increment, out);
}

void CacheAdapter::TouchLocked(ShardedCacheServer::ShardBatch& core,
                               const Command& cmd, const RoutedKey& rk,
                               uint32_t now_s, std::string* out) {
  const std::string_view key = cmd.key();
  // Refreshes the stored expiry and the item's recency standing; no GET
  // statistics move (memcached counts touches separately, and so does the
  // core — not at all). An expired/flushed item touches as NOT_FOUND and
  // is reclaimed on this access.
  const bool ok = core.TouchValue(
      rk.app_id, rk.key_id, static_cast<uint32_t>(key.size()),
      AbsoluteExpiry(cmd.exptime, now_s), now_s, FlushAt());
  if (ok) {
    touch_hits_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kTouchedLine);
  } else {
    touch_misses_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kNotFoundLine);
  }
}

void CacheAdapter::HandleTouch(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  ShardedCacheServer::ShardBatch batch =
      server_->BeginBatch(server_->ShardForKey(rk.key_id));
  TouchLocked(batch, cmd, rk, now, out);
}

void CacheAdapter::DeleteLocked(ShardedCacheServer::ShardBatch& core,
                                const Command& cmd, const RoutedKey& rk,
                                uint32_t now_s, std::string* out) {
  // The core reports whether a live, unexpired, unflushed item existed
  // (memcached's DELETED/NOT_FOUND split) and erases every trace either
  // way — including shadow state, which must not keep earning credit an
  // explicit delete revoked.
  const bool valid = core.DeleteValue(rk.app_id, rk.key_id, now_s, FlushAt());
  if (valid) {
    delete_hits_.fetch_add(1, std::memory_order_relaxed);
    if (!cmd.noreply) out->append(kDeletedLine);
  } else {
    if (!cmd.noreply) out->append(kNotFoundLine);
  }
}

void CacheAdapter::HandleDelete(const Command& cmd, std::string* out) {
  const RoutedKey rk = Route(cmd.key());
  if (!CountAndAdmit(cmd, rk, out)) return;
  const uint32_t now = Now();
  ShardedCacheServer::ShardBatch batch =
      server_->BeginBatch(server_->ShardForKey(rk.key_id));
  DeleteLocked(batch, cmd, rk, now, out);
}

void CacheAdapter::HandleFlushAll(const Command& cmd, std::string* out) {
  cmd_flush_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t now = Now();
  const uint64_t at = static_cast<uint64_t>(now) +
                      static_cast<uint64_t>(cmd.exptime);
  // Items with stored_s < flush point are dead once now reaches it; the
  // reclaim is lazy (first access), O(1) per key, no sweeper. Items stored
  // at or after the flush point — including later in the same second —
  // survive. A later flush_all overwrites an earlier one, as memcached's
  // single oldest_live does.
  flush_at_s_.store(at > UINT32_MAX ? UINT32_MAX : static_cast<uint32_t>(at),
                    std::memory_order_relaxed);
  if (!cmd.noreply) out->append(kOkLine);
}

void CacheAdapter::HandleStats(std::string* out) {
  AppendStat(out, "version", kServerVersion);
  AppendStat(out, "pointer_size", static_cast<uint64_t>(8 * sizeof(void*)));
  AppendStat(out, "num_shards", static_cast<uint64_t>(server_->num_shards()));

  const Counters c = counters();
  AppendStat(out, "cmd_get", c.cmd_get);
  AppendStat(out, "get_hits", c.get_hits);
  AppendStat(out, "get_misses", c.get_misses);
  AppendStat(out, "get_expired", c.get_expired);
  AppendStat(out, "cmd_set", c.cmd_set);
  AppendStat(out, "store_rejected", c.store_rejected);
  AppendStat(out, "cas_hits", c.cas_hits);
  AppendStat(out, "cas_misses", c.cas_misses);
  AppendStat(out, "cas_badval", c.cas_badval);
  AppendStat(out, "incr_hits", c.incr_hits);
  AppendStat(out, "incr_misses", c.incr_misses);
  AppendStat(out, "decr_hits", c.decr_hits);
  AppendStat(out, "decr_misses", c.decr_misses);
  AppendStat(out, "cmd_touch", c.cmd_touch);
  AppendStat(out, "touch_hits", c.touch_hits);
  AppendStat(out, "touch_misses", c.touch_misses);
  AppendStat(out, "cmd_flush", c.cmd_flush);
  AppendStat(out, "cmd_delete", c.cmd_delete);
  AppendStat(out, "delete_hits", c.delete_hits);
  AppendStat(out, "protocol_errors", c.protocol_errors);

  // Real memory accounting, straight from the value arenas (a mutually
  // consistent snapshot: MergedValueStats holds every shard lock at once).
  // `bytes` is live payload bytes (what memcached reports for stored
  // data); bytes_stored keeps the pre-0.6 name for the same quantity;
  // bytes_read/bytes_written count payload bytes accepted by stores and
  // served by get hits.
  const ShardedCacheServer::ValueStats vs = server_->MergedValueStats();
  AppendStat(out, "bytes_stored", vs.value_bytes);
  AppendStat(out, "bytes", vs.value_bytes);
  AppendStat(out, "bytes_read", c.bytes_read);
  AppendStat(out, "bytes_written", c.bytes_written);

  // The paper's signals, straight from the core (exact snapshot: MergedStats
  // holds every shard lock at once).
  const ClassStats core = server_->MergedStats();
  AppendStat(out, "cliffhanger_gets", core.gets);
  AppendStat(out, "cliffhanger_hits", core.hits);
  AppendStat(out, "cliffhanger_sets", core.sets);
  AppendStat(out, "cliffhanger_tail_hits", core.tail_hits);
  AppendStat(out, "cliffhanger_cliff_shadow_hits", core.cliff_shadow_hits);
  AppendStat(out, "cliffhanger_hill_shadow_hits", core.hill_shadow_hits);
  AppendStat(out, "cliffhanger_rebalances", server_->rebalance_count());

  // Per-class arena occupancy (memcached's `stats slabs` shape, inlined
  // into the general stats block): chunk geometry and chunks in use.
  for (const auto& [cls, use] : vs.classes) {
    const std::string prefix = "slabs:" + std::to_string(cls);
    AppendStat(out, prefix + ":chunk_size",
               static_cast<uint64_t>(use.chunk_size));
    AppendStat(out, prefix + ":used_chunks", use.used_chunks);
  }
  for (const uint32_t app_id : *AppSnapshot()) {
    std::string name = "app_" + std::to_string(app_id) + "_reservation_bytes";
    AppendStat(out, name, server_->AppReservation(app_id));
  }
  out->append(kEndLine);
}

// ---------------------------------------------------------------------------
// Burst path (epoll backend): per-shard op batching, zero-copy GET
// ---------------------------------------------------------------------------

// One shard-routed operation of a burst, bound to its response slot. A
// multiget expands into one BurstOp per key (plus a pre-filled END slot), so
// reassembling the slots in index order reproduces the sequential byte
// stream exactly.
struct CacheAdapter::BurstOp {
  const Command* cmd;
  size_t key_idx;  // which key of a multiget; 0 for single-key verbs
  size_t slot;     // response segment index
  uint32_t now_s;  // stamped at collection, in command order (clock contract)
  RoutedKey rk;
  size_t shard;
};

namespace {

// Commands whose effects are confined to one key's shard. Everything else
// (stats/version/flush_all/quit/protocol errors) acts as a barrier and goes
// through the sequential Handle() in stream order.
bool IsShardable(CommandType type) {
  switch (type) {
    case CommandType::kGet:
    case CommandType::kGets:
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
    case CommandType::kAppend:
    case CommandType::kPrepend:
    case CommandType::kIncr:
    case CommandType::kDecr:
    case CommandType::kTouch:
    case CommandType::kDelete:
      return true;
    default:
      return false;
  }
}

}  // namespace

void CacheAdapter::ExecuteOpLocked(ShardedCacheServer::ShardBatch& core,
                                   const BurstOp& op, ResponseSegment* seg,
                                   bool pinned) {
  const Command& cmd = *op.cmd;
  switch (cmd.type) {
    case CommandType::kGet:
    case CommandType::kGets:
      // In a pinned (pure-GET) burst the segment borrows the payload from
      // the arena; otherwise the batch dies before the flush, so copy.
      GetKeyLocked(core, cmd.keys[op.key_idx], op.rk, op.now_s,
                   /*with_cas=*/cmd.type == CommandType::kGets, &seg->text,
                   pinned ? seg : nullptr);
      break;
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
      StoreLocked(core, cmd, op.rk, op.now_s, &seg->text);
      break;
    case CommandType::kAppend:
    case CommandType::kPrepend:
      ConcatLocked(core, cmd, op.rk, op.now_s, &seg->text);
      break;
    case CommandType::kIncr:
    case CommandType::kDecr:
      ArithLocked(core, cmd, op.rk, op.now_s,
                  /*increment=*/cmd.type == CommandType::kIncr, &seg->text);
      break;
    case CommandType::kTouch:
      TouchLocked(core, cmd, op.rk, op.now_s, &seg->text);
      break;
    case CommandType::kDelete:
      DeleteLocked(core, cmd, op.rk, op.now_s, &seg->text);
      break;
    default:
      break;  // unreachable: only shardable ops are collected
  }
}

void CacheAdapter::ExecuteShardedRun(const Command* cmds, size_t count,
                                     std::vector<ResponseSegment>* segments,
                                     size_t* used, bool pinned) {
  // Collection: expand commands into shard-routed ops and claim their
  // response slots in stream order. Admission (unknown app) and the
  // command counters run here, before any lock, exactly as the sequential
  // handlers do; Now() is read once per command, in command order.
  // Thread-local so the steady-state burst cycle reuses its capacity and
  // stays off the allocator (each worker runs its own bursts).
  static thread_local std::vector<BurstOp> ops;
  ops.clear();
  ops.reserve(count);
  for (size_t c = 0; c < count; ++c) {
    const Command& cmd = cmds[c];
    const uint32_t now = Now();
    if (cmd.type == CommandType::kGet || cmd.type == CommandType::kGets) {
      for (size_t k = 0; k < cmd.keys.size(); ++k) {
        cmd_get_.fetch_add(1, std::memory_order_relaxed);
        ClaimSlot(segments, used);
        const RoutedKey rk = Route(cmd.keys[k]);
        if (!rk.app_known) {
          get_misses_.fetch_add(1, std::memory_order_relaxed);
          continue;  // slot stays empty, like the sequential loop
        }
        ops.push_back(BurstOp{&cmd, k, *used - 1, now, rk,
                              server_->ShardForKey(rk.key_id)});
      }
      // The terminator's content is known now; giving it its own slot keeps
      // every VALUE block independently writev-able.
      ClaimSlot(segments, used).text.append(kEndLine);
      continue;
    }
    ResponseSegment& seg = ClaimSlot(segments, used);
    const RoutedKey rk = Route(cmd.key());
    if (!CountAndAdmit(cmd, rk, &seg.text)) continue;
    ops.push_back(BurstOp{&cmd, 0, *used - 1, now, rk,
                          server_->ShardForKey(rk.key_id)});
  }

  // Group by shard; the stable sort preserves same-shard (and therefore
  // same-key) op order, which is what makes the grouped execution
  // equivalent to the sequential stream — including read-your-write for a
  // pipelined `set k` ... `get k` in one burst.
  std::stable_sort(ops.begin(), ops.end(),
                   [](const BurstOp& a, const BurstOp& b) {
                     return a.shard < b.shard;
                   });

  // Execution: one core ShardBatch (shard lock) per shard per run. In a
  // pinned run the batches are parked — in ascending shard order, which
  // keeps concurrent pinning workers deadlock-free — so the zero-copy
  // payload spans stay valid until ReleaseBurstPins(); otherwise
  // ~ShardBatch publishes the counter deltas and bumps the rebalance
  // cadence here, exactly like the sequential path.
  size_t i = 0;
  while (i < ops.size()) {
    const size_t shard_index = ops[i].shard;
    ShardedCacheServer::ShardBatch batch = server_->BeginBatch(shard_index);
    for (; i < ops.size() && ops[i].shard == shard_index; ++i) {
      ExecuteOpLocked(batch, ops[i], &(*segments)[ops[i].slot], pinned);
    }
    if (pinned) t_burst_pins.push_back(std::move(batch));
  }
}

bool CacheAdapter::HandleBatch(const Command* cmds, size_t count,
                               std::vector<ResponseSegment>* segments) {
  size_t used = 0;
  // Zero-copy is only safe when the whole burst is get/gets: pinning shard
  // locks across a burst that also runs barrier commands (stats takes every
  // shard lock) or store verbs on the same shard would self-deadlock.
  bool pure_get = count > 0;
  for (size_t i = 0; i < count && pure_get; ++i) {
    pure_get = cmds[i].type == CommandType::kGet ||
               cmds[i].type == CommandType::kGets;
  }
  size_t i = 0;
  while (i < count) {
    if (!IsShardable(cmds[i].type)) {
      ResponseSegment& seg = ClaimSlot(segments, &used);
      if (!Handle(cmds[i], &seg.text)) return false;
      ++i;
      continue;
    }
    size_t run_end = i + 1;
    while (run_end < count && IsShardable(cmds[run_end].type)) ++run_end;
    ExecuteShardedRun(cmds + i, run_end - i, segments, &used, pure_get);
    i = run_end;
  }
  // Slots beyond `used` were Reset by the caller and flush as zero bytes.
  return true;
}

void CacheAdapter::ReleaseBurstPins() {
  // Unlock every pinned batch before destroying any: a destructor may
  // publish deltas and fire Rebalance(), which takes all shard locks.
  for (ShardedCacheServer::ShardBatch& batch : t_burst_pins) batch.Unlock();
  t_burst_pins.clear();
}

bool CacheAdapter::Handle(const Command& cmd, std::string* out) {
  switch (cmd.type) {
    case CommandType::kGet:
      HandleGet(cmd, out, /*with_cas=*/false);
      return true;
    case CommandType::kGets:
      HandleGet(cmd, out, /*with_cas=*/true);
      return true;
    case CommandType::kSet:
    case CommandType::kAdd:
    case CommandType::kReplace:
    case CommandType::kCas:
      HandleStore(cmd, out);
      return true;
    case CommandType::kAppend:
    case CommandType::kPrepend:
      HandleConcat(cmd, out);
      return true;
    case CommandType::kIncr:
      HandleArith(cmd, out, /*increment=*/true);
      return true;
    case CommandType::kDecr:
      HandleArith(cmd, out, /*increment=*/false);
      return true;
    case CommandType::kTouch:
      HandleTouch(cmd, out);
      return true;
    case CommandType::kDelete:
      HandleDelete(cmd, out);
      return true;
    case CommandType::kFlushAll:
      HandleFlushAll(cmd, out);
      return true;
    case CommandType::kStats:
      HandleStats(out);
      return true;
    case CommandType::kVersion:
      out->append("VERSION ");
      out->append(kServerVersion);
      out->append(kCrlf);
      return true;
    case CommandType::kQuit:
      return false;
    case CommandType::kProtocolError:
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      // noreply is set only when the rejected command's line parsed
      // cleanly enough to carry it; like memcached, such a command gets
      // no reply at all — an unexpected error line would desync clients
      // that count one response per non-noreply command.
      if (!cmd.noreply) AppendErrorLine(out, cmd.error);
      return true;
  }
  return true;
}

CacheAdapter::Counters CacheAdapter::counters() const {
  Counters c;
  c.cmd_get = cmd_get_.load(std::memory_order_relaxed);
  c.get_hits = get_hits_.load(std::memory_order_relaxed);
  c.get_misses = get_misses_.load(std::memory_order_relaxed);
  c.get_expired = get_expired_.load(std::memory_order_relaxed);
  c.cmd_set = cmd_set_.load(std::memory_order_relaxed);
  c.store_rejected = store_rejected_.load(std::memory_order_relaxed);
  c.cas_hits = cas_hits_.load(std::memory_order_relaxed);
  c.cas_misses = cas_misses_.load(std::memory_order_relaxed);
  c.cas_badval = cas_badval_.load(std::memory_order_relaxed);
  c.incr_hits = incr_hits_.load(std::memory_order_relaxed);
  c.incr_misses = incr_misses_.load(std::memory_order_relaxed);
  c.decr_hits = decr_hits_.load(std::memory_order_relaxed);
  c.decr_misses = decr_misses_.load(std::memory_order_relaxed);
  c.cmd_touch = cmd_touch_.load(std::memory_order_relaxed);
  c.touch_hits = touch_hits_.load(std::memory_order_relaxed);
  c.touch_misses = touch_misses_.load(std::memory_order_relaxed);
  c.cmd_flush = cmd_flush_.load(std::memory_order_relaxed);
  c.cmd_delete = cmd_delete_.load(std::memory_order_relaxed);
  c.delete_hits = delete_hits_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  // Live value bytes come from the arenas themselves — the accounting is
  // the storage, so it cannot drift.
  c.bytes_stored = server_->MergedValueStats().value_bytes;
  c.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  c.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace net
}  // namespace cliffhanger
