// Shared partial-write bookkeeping for response-segment flushes.
//
// Every backend flushes a burst the same way: scatter-gather the queued
// write-buffer tail plus each ResponseSegment's up-to-three pieces (protocol
// text, borrowed zero-copy payload span, trailer), and — when the socket
// stops taking bytes — spill everything unsent into the connection's write
// buffer, copying the payload bytes because the arena borrow ends when the
// flush returns. The cursor arithmetic (segment index, piece index, offset
// within the piece) and the spill are identical whether the bytes move via
// writev(2) (poll/epoll backends) or an io_uring SENDMSG completion (uring
// backend), so they live here once, templated on the write primitive, and
// are unit-tested for mid-segment resume without a socket in sight
// (tests/segment_flush_test.cc).
#pragma once

#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "net/socket_server.h"

namespace cliffhanger {
namespace net {

// iovec slots per gather-write call — well under any IOV_MAX; larger bursts
// just take another call.
constexpr int kMaxFlushIov = 64;

// The p-th write piece of one response segment (0 = text, 1 = borrowed
// payload, 2 = trailer). Empty pieces are skipped by the cursor logic.
inline std::pair<const char*, size_t> SegmentPiece(const ResponseSegment& seg,
                                                   size_t p) {
  switch (p) {
    case 0:
      return {seg.text.data(), seg.text.size()};
    case 1:
      return {seg.payload, seg.payload_size};
    default:
      return {seg.trailer.data(), seg.trailer.size()};
  }
}

// Flushes the queued write buffer (*wr beyond *wr_offset) followed by the
// first `count` response segments through `write_some`, a callable with the
// writev contract: ssize_t write_some(const iovec* iov, int iov_count),
// returning the bytes it moved (> 0), or -errno. -EAGAIN (and a 0 return)
// mean "socket full": every unsent byte — payload spans included, their
// borrow is over — is appended to *wr and the flush reports success with
// the spill queued; any other negative return is a dead socket.
//
// Returns false only on a dead socket. On true, either everything was
// written (wr left empty) or the unsent remainder sits in *wr.
template <typename WriteFn>
bool FlushSegmentsVia(WriteFn&& write_some, std::string* wr,
                      size_t* wr_offset, const ResponseSegment* segments,
                      size_t count) {
  size_t seg_i = 0;    // first segment with unsent bytes
  size_t piece_i = 0;  // piece cursor within segments[seg_i]
  size_t off = 0;      // sent prefix of that piece
  const auto advance = [&] {
    off = 0;
    if (++piece_i == 3) {
      piece_i = 0;
      ++seg_i;
    }
  };
  while (true) {
    // Skip fully-sent and empty pieces.
    while (seg_i < count) {
      const auto [ptr, len] = SegmentPiece(segments[seg_i], piece_i);
      (void)ptr;
      if (off < len) break;
      advance();
    }
    iovec iov[kMaxFlushIov];
    int iov_count = 0;
    if (*wr_offset < wr->size()) {
      iov[iov_count++] = {const_cast<char*>(wr->data()) + *wr_offset,
                          wr->size() - *wr_offset};
    }
    for (size_t s = seg_i, p = piece_i, o = off;
         s < count && iov_count < kMaxFlushIov;) {
      const auto [ptr, len] = SegmentPiece(segments[s], p);
      if (o < len) {
        iov[iov_count++] = {const_cast<char*>(ptr) + o, len - o};
      }
      o = 0;
      if (++p == 3) {
        p = 0;
        ++s;
      }
    }
    if (iov_count == 0) {
      wr->clear();
      *wr_offset = 0;
      return true;  // everything flushed
    }
    const ssize_t n = write_some(iov, iov_count);
    if (n <= 0) {
      if (n < 0 && n != -EAGAIN && n != -EWOULDBLOCK) {
        return false;  // peer gone
      }
      // Socket full: queue the unsent bytes (payloads included — the
      // borrow is over) behind the wr tail.
      for (size_t s = seg_i, p = piece_i, o = off; s < count;) {
        const auto [ptr, len] = SegmentPiece(segments[s], p);
        if (o < len) wr->append(ptr + o, len - o);
        o = 0;
        if (++p == 3) {
          p = 0;
          ++s;
        }
      }
      return true;
    }
    size_t left = static_cast<size_t>(n);
    if (*wr_offset < wr->size()) {
      const size_t take = std::min(left, wr->size() - *wr_offset);
      *wr_offset += take;
      left -= take;
      if (*wr_offset == wr->size()) {
        wr->clear();
        *wr_offset = 0;
      }
    }
    while (left > 0) {
      const auto [ptr, len] = SegmentPiece(segments[seg_i], piece_i);
      (void)ptr;
      const size_t take = std::min(left, len - off);
      off += take;
      left -= take;
      if (off >= len) advance();
    }
  }
}

}  // namespace net
}  // namespace cliffhanger
