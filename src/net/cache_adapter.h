// Maps memcached ASCII commands onto a ShardedCacheServer.
//
// Since the core grew in-arena value storage (ServerConfig::store_values,
// cache/value_store.h), the adapter is a thin protocol shim: value bytes,
// item attributes (flags, cas, store time) and presence all live in the
// core's per-shard ValueStore, and every verb below is one or two core
// value-verb calls under the owning shard's lock. There is no side table,
// no lazy reclamation, and no per-key metadata retained after eviction —
// when the core evicts an item, its value slot is freed eagerly via the
// eviction listener, and the adapter learns nothing and needs nothing.
//
//  - Key mapping. A text key maps to the core's 64-bit key id via Fnv1a64
//    over the full key string (stable, process-independent). 64-bit FNV
//    collisions alias two text keys to one cache slot (last writer wins);
//    at memcached-realistic key counts the probability is negligible.
//  - App routing. Keys of the form "app<digits>:<rest>" route to that
//    registered application; everything else goes to the default app (the
//    listen port's tenant). Ops for unregistered apps fail softly (miss /
//    SERVER_ERROR) rather than mutating anything.
//  - Presence. add/replace/cas/incr/decr/append/prepend/touch decide
//    presence from the core directly (PeekValue: resident, unexpired,
//    unflushed — statistics-neutral). There is no window between an
//    eviction and the next GET where the adapter believes a dead key is
//    alive: eviction frees the slot synchronously.
//  - Zero-copy GET. A hit hands back a ValueView borrowing the payload
//    bytes straight from the value arena, valid until the owning shard
//    next mutates. On the epoll burst path, a burst consisting solely of
//    get/gets pins the touched shards' ShardBatch objects (ascending
//    shard order) until the response segments are flushed, so the writev
//    scatter-gathers directly from arena memory — the value bytes are
//    never copied. Mixed bursts and the poll backend copy the payload
//    into the response text instead (the batch cannot outlive the call).
//  - Time. Every core operation is stamped with `now` from an injectable
//    clock (CacheAdapterConfig::clock; defaults to the wall clock), so
//    expiry is lazy and fully deterministic under test. Expiry is
//    enforced by the core queues; `flush_all` keeps its cutoff second
//    here and passes it into every core value verb, which compares it
//    against the slot's stored_s. Both are O(1) per access; there is no
//    background sweeper thread.
//  - Arithmetic and re-slabbing. incr/decr rewrite the decimal value
//    (incr wraps mod 2^64, decr saturates at 0); append/prepend splice
//    bytes. The core's ReplaceValue rewrites in place when the new value
//    stays in the same slab class (recency moves, statistics do not) and
//    re-slabs through a Delete + counted Set when it does not, so the
//    paper's per-class accounting (and the climbers feeding on it) stays
//    truthful.
//
// Determinism contract (relied on by the e2e test): for a single
// connection, the sequence of core value-verb calls — including the
// ItemMeta sizes — is a pure function of the command stream and the
// injected clock. GET probes the stored size when the key is resident and
// the class-for-size-0 footprint otherwise; a store whose size moves the
// item across slab classes deletes the old incarnation first.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sharded_server.h"
#include "net/socket_server.h"

namespace cliffhanger {
namespace net {

inline constexpr std::string_view kServerVersion = "cliffhanger-0.6.0";

// memcached's relative/absolute exptime boundary: a positive exptime up to
// 30 days is relative to now; anything larger is an absolute unix second.
inline constexpr int64_t kRelativeExptimeCutoff = 60 * 60 * 24 * 30;

struct CacheAdapterConfig {
  uint32_t default_app_id = 1;
  // Recognize the "app<digits>:" key-namespace prefix for app routing.
  bool parse_app_prefix = true;
  // Injectable second-resolution clock for expiry/flush determinism under
  // test. Must never report 0 (second 0 means "no expiry evaluation" in
  // the cache layers); the default wall clock cannot. Called outside the
  // shard locks, once per command.
  std::function<uint32_t()> clock;
};

// Resolves a protocol exptime against `now` into the absolute expiry
// second stored with the item: 0 stays 0 (never), a negative value means
// already expired, values up to kRelativeExptimeCutoff are relative to
// now, larger values are absolute unix seconds (clamped to uint32).
[[nodiscard]] uint32_t AbsoluteExpiry(int64_t exptime, uint32_t now_s);

class CacheAdapter final : public CommandHandler {
 public:
  // `server` must be constructed with ServerConfig::store_values = true
  // and outlive the adapter; its apps must be registered before traffic
  // starts (same contract as ShardedCacheServer::AddApp).
  CacheAdapter(ShardedCacheServer* server, const CacheAdapterConfig& config);
  ~CacheAdapter() override;
  CacheAdapter(const CacheAdapter&) = delete;
  CacheAdapter& operator=(const CacheAdapter&) = delete;

  bool Handle(const Command& cmd, std::string* out) override;
  // Burst entry point (epoll backend): consecutive shardable commands are
  // grouped by shard and executed under ONE core ShardBatch per shard per
  // run, instead of one lock acquisition per op. Response slots are
  // claimed in command/key order, so the segment sequence is
  // byte-identical to sequential handling: ops on different shards touch
  // disjoint state, and same-key ops always hash to the same shard, where
  // the stable grouping preserves their order (read-your-write within a
  // pipelined burst included). A burst that is entirely get/gets keeps
  // its ShardBatches pinned until ReleaseBurstPins() so the response
  // segments can borrow the payload bytes from the value arena (zero-copy
  // writev). Barrier commands (stats/version/flush_all/quit/errors) fall
  // back to Handle() in place.
  bool HandleBatch(const Command* cmds, size_t count,
                   std::vector<ResponseSegment>* segments) override;
  // Unlocks and destroys the ShardBatches pinned by a pure-GET burst.
  // Must run on the thread that called HandleBatch, after the segments
  // are flushed (the socket server's burst cycle guarantees both).
  void ReleaseBurstPins() override;

  // Tenant lifecycle on the daemon path. AddApp registers the app on the
  // core server and publishes it to the routing snapshot; RemoveApp
  // withdraws it from routing first, then tears it down in the core (the
  // core's routed verbs soft-fail any op that already routed). Both swap
  // the immutable app-id snapshot atomically, so concurrent connection
  // threads keep routing against a consistent list with no locks on the
  // hot path. Serialize lifecycle calls themselves (one admin caller).
  void AddApp(uint32_t app_id, uint64_t reservation);
  bool RemoveApp(uint32_t app_id);

  // Protocol-level counters (what `stats` reports, memcached names).
  struct Counters {
    uint64_t cmd_get = 0;        // keys requested via get/gets
    uint64_t get_hits = 0;
    uint64_t get_misses = 0;
    uint64_t get_expired = 0;    // misses caused by expiry/flush reclaim
    uint64_t cmd_set = 0;        // set/add/replace/cas/append/prepend
    uint64_t store_rejected = 0; // NOT_STORED + SERVER_ERROR outcomes
    uint64_t cas_hits = 0;
    uint64_t cas_misses = 0;
    uint64_t cas_badval = 0;     // EXISTS outcomes
    uint64_t incr_hits = 0;
    uint64_t incr_misses = 0;
    uint64_t decr_hits = 0;
    uint64_t decr_misses = 0;
    uint64_t cmd_touch = 0;
    uint64_t touch_hits = 0;
    uint64_t touch_misses = 0;
    uint64_t cmd_flush = 0;
    uint64_t cmd_delete = 0;
    uint64_t delete_hits = 0;
    uint64_t protocol_errors = 0;
    uint64_t bytes_stored = 0;   // live value bytes in the core arenas
    uint64_t bytes_read = 0;     // payload bytes accepted by stores
    uint64_t bytes_written = 0;  // payload bytes served by get hits
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct BurstOp;
  struct RoutedKey {
    uint32_t app_id = 0;
    uint64_t key_id = 0;
    bool app_known = false;
  };

  [[nodiscard]] RoutedKey Route(std::string_view key) const;
  [[nodiscard]] uint32_t Now() const { return config_.clock(); }
  [[nodiscard]] uint64_t NextCas() {
    return cas_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  [[nodiscard]] uint32_t FlushAt() const {
    return flush_at_s_.load(std::memory_order_relaxed);
  }

  // Counts the command and, when its app is unknown, emits the verb's
  // soft-failure response (shared by the single-op and burst paths, which
  // both run it before taking any lock). Returns true when the command
  // should proceed to its shard op.
  bool CountAndAdmit(const Command& cmd, const RoutedKey& rk,
                     std::string* out);

  // Locked per-op executors: the memcached semantics of one operation,
  // expressed over the core value verbs through an open ShardBatch (the
  // single-op path opens a one-op batch; the burst path shares one per
  // shard per run). Pre for all: rk.app_known true, CountAndAdmit (or the
  // per-key get admission) already ran, `core` targets rk's shard.
  //
  // GetKeyLocked serves a hit either zero-copy (`zc` non-null: the VALUE
  // header goes into zc->text and the payload span borrows the arena
  // bytes — only legal when the caller keeps the batch pinned until the
  // segments are flushed) or by copying the payload into *out.
  void GetKeyLocked(ShardedCacheServer::ShardBatch& core,
                    std::string_view key, const RoutedKey& rk,
                    uint32_t now_s, bool with_cas, std::string* out,
                    ResponseSegment* zc);
  void StoreLocked(ShardedCacheServer::ShardBatch& core, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ConcatLocked(ShardedCacheServer::ShardBatch& core, const Command& cmd,
                    const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ArithLocked(ShardedCacheServer::ShardBatch& core, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, bool increment,
                   std::string* out);
  void TouchLocked(ShardedCacheServer::ShardBatch& core, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, std::string* out);
  void DeleteLocked(ShardedCacheServer::ShardBatch& core, const Command& cmd,
                    const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ExecuteOpLocked(ShardedCacheServer::ShardBatch& core,
                       const BurstOp& op, ResponseSegment* seg, bool pinned);
  // The burst engine: expands a run of shardable commands into per-key ops
  // with pre-claimed response slots, groups the ops by shard (stable), and
  // executes each group under one core ShardBatch. With `pinned`, the
  // batches are parked (ascending shard order) for ReleaseBurstPins
  // instead of being destroyed, keeping the zero-copy payload spans alive
  // through the flush.
  void ExecuteShardedRun(const Command* cmds, size_t count,
                         std::vector<ResponseSegment>* segments,
                         size_t* used, bool pinned);

  void HandleGet(const Command& cmd, std::string* out, bool with_cas);
  void HandleStore(const Command& cmd, std::string* out);
  void HandleConcat(const Command& cmd, std::string* out);
  void HandleArith(const Command& cmd, std::string* out, bool increment);
  void HandleTouch(const Command& cmd, std::string* out);
  void HandleDelete(const Command& cmd, std::string* out);
  void HandleFlushAll(const Command& cmd, std::string* out);
  void HandleStats(std::string* out);

  // The registered-app list as an immutable, atomically swapped snapshot:
  // Route() loads it lock-free per command; AddApp/RemoveApp publish a new
  // sorted vector. (std::atomic_load/store on shared_ptr — the tools this
  // toolchain's libstdc++ offers; atomic<shared_ptr> is C++20.)
  [[nodiscard]] std::shared_ptr<const std::vector<uint32_t>> AppSnapshot()
      const {
    return std::atomic_load_explicit(&app_ids_, std::memory_order_acquire);
  }

  ShardedCacheServer* server_;
  CacheAdapterConfig config_;
  std::shared_ptr<const std::vector<uint32_t>> app_ids_;  // sorted

  std::atomic<uint64_t> cas_counter_{0};
  // flush_all point: items stored before it are dead once now reaches it.
  // 0 = no flush scheduled.
  std::atomic<uint32_t> flush_at_s_{0};

  std::atomic<uint64_t> cmd_get_{0};
  std::atomic<uint64_t> get_hits_{0};
  std::atomic<uint64_t> get_misses_{0};
  std::atomic<uint64_t> get_expired_{0};
  std::atomic<uint64_t> cmd_set_{0};
  std::atomic<uint64_t> store_rejected_{0};
  std::atomic<uint64_t> cas_hits_{0};
  std::atomic<uint64_t> cas_misses_{0};
  std::atomic<uint64_t> cas_badval_{0};
  std::atomic<uint64_t> incr_hits_{0};
  std::atomic<uint64_t> incr_misses_{0};
  std::atomic<uint64_t> decr_hits_{0};
  std::atomic<uint64_t> decr_misses_{0};
  std::atomic<uint64_t> cmd_touch_{0};
  std::atomic<uint64_t> touch_hits_{0};
  std::atomic<uint64_t> touch_misses_{0};
  std::atomic<uint64_t> cmd_flush_{0};
  std::atomic<uint64_t> cmd_delete_{0};
  std::atomic<uint64_t> delete_hits_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace net
}  // namespace cliffhanger
