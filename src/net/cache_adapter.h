// Maps memcached ASCII commands onto a ShardedCacheServer.
//
// The core server is a cache *simulation*: it tracks residency, eviction
// and the Cliffhanger signals for (key hash, key_size, value_size) tuples —
// it does not hold value bytes. The adapter supplies the missing pieces so
// a real client sees real memcached semantics:
//
//  - Key mapping. A text key maps to the core's 64-bit key id via Fnv1a64
//    over the full key string (stable, process-independent). 64-bit FNV
//    collisions alias two text keys to one cache slot (last writer wins);
//    at memcached-realistic key counts the probability is negligible.
//  - App routing. Keys of the form "app<digits>:<rest>" route to that
//    registered application; everything else goes to the default app (the
//    listen port's tenant). Ops for unregistered apps fail softly (miss /
//    SERVER_ERROR) rather than mutating anything.
//  - Value store. Value bytes, flags and cas live in a sharded side table.
//    The core decides hit/miss; the table only serves the payload. Because
//    the core evicts internally without callbacks, a dead value is
//    reclaimed *lazily*: the first GET that the core answers with a miss
//    frees the value bytes. The per-key size metadata is kept (~32 B per
//    unique key ever stored) so later GETs for the key keep probing the
//    correct slab class — which is exactly what makes a socket replay
//    bit-identical to a library replay (tests/net_e2e_test.cc).
//  - add/replace presence. Decided from the value store's live flag (the
//    adapter's best knowledge of residency without issuing a statistics-
//    mutating core lookup). An eviction is noticed at the next GET, so an
//    `add` in the narrow window between eviction and that GET can return
//    NOT_STORED where real memcached would store.
//
// Determinism contract (relied on by the e2e test): for a single
// connection, the sequence of core Get/Set/Delete calls — including the
// ItemMeta sizes — is a pure function of the command stream. GET uses the
// stored value_size when the key is known and 0 otherwise; SET deletes the
// old item first when the value size changed (slab-class move); DELETE
// always forwards to the core with the best-known size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sharded_server.h"
#include "net/socket_server.h"

namespace cliffhanger {
namespace net {

inline constexpr std::string_view kServerVersion = "cliffhanger-0.4.0";

struct CacheAdapterConfig {
  uint32_t default_app_id = 1;
  // Recognize the "app<digits>:" key-namespace prefix for app routing.
  bool parse_app_prefix = true;
};

class CacheAdapter final : public CommandHandler {
 public:
  // `server` must outlive the adapter; its apps must be registered before
  // traffic starts (same contract as ShardedCacheServer::AddApp).
  CacheAdapter(ShardedCacheServer* server, const CacheAdapterConfig& config);
  ~CacheAdapter() override;
  CacheAdapter(const CacheAdapter&) = delete;
  CacheAdapter& operator=(const CacheAdapter&) = delete;

  bool Handle(const Command& cmd, std::string* out) override;

  // Protocol-level counters (what `stats` reports as cmd_*/get_*).
  struct Counters {
    uint64_t cmd_get = 0;        // keys requested via get/gets
    uint64_t get_hits = 0;
    uint64_t get_misses = 0;
    uint64_t cmd_set = 0;        // set/add/replace commands
    uint64_t store_rejected = 0; // NOT_STORED + SERVER_ERROR outcomes
    uint64_t cmd_delete = 0;
    uint64_t delete_hits = 0;
    uint64_t protocol_errors = 0;
    uint64_t bytes_stored = 0;   // live value bytes in the side table
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct StoreShard;
  struct RoutedKey {
    uint32_t app_id = 0;
    uint64_t key_id = 0;
    bool app_known = false;
  };

  [[nodiscard]] RoutedKey Route(std::string_view key) const;

  void HandleGet(const Command& cmd, std::string* out, bool with_cas);
  void HandleStore(const Command& cmd, std::string* out);
  void HandleDelete(const Command& cmd, std::string* out);
  void HandleStats(std::string* out);

  ShardedCacheServer* server_;
  CacheAdapterConfig config_;
  std::vector<uint32_t> app_ids_;  // registered apps, snapshot at ctor

  std::vector<std::unique_ptr<StoreShard>> store_;
  std::atomic<uint64_t> cas_counter_{0};

  std::atomic<uint64_t> cmd_get_{0};
  std::atomic<uint64_t> get_hits_{0};
  std::atomic<uint64_t> get_misses_{0};
  std::atomic<uint64_t> cmd_set_{0};
  std::atomic<uint64_t> store_rejected_{0};
  std::atomic<uint64_t> cmd_delete_{0};
  std::atomic<uint64_t> delete_hits_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_stored_{0};
};

}  // namespace net
}  // namespace cliffhanger
