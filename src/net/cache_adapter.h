// Maps memcached ASCII commands onto a ShardedCacheServer.
//
// The core server is a cache *simulation*: it tracks residency, eviction
// and the Cliffhanger signals for (key hash, key_size, value_size) tuples —
// it does not hold value bytes. The adapter supplies the missing pieces so
// a real client sees real memcached semantics:
//
//  - Key mapping. A text key maps to the core's 64-bit key id via Fnv1a64
//    over the full key string (stable, process-independent). 64-bit FNV
//    collisions alias two text keys to one cache slot (last writer wins);
//    at memcached-realistic key counts the probability is negligible.
//  - App routing. Keys of the form "app<digits>:<rest>" route to that
//    registered application; everything else goes to the default app (the
//    listen port's tenant). Ops for unregistered apps fail softly (miss /
//    SERVER_ERROR) rather than mutating anything.
//  - Value store. Value bytes and the full memcached item attributes
//    (ItemAttrs: flags, absolute expiry, cas version) live in a sharded
//    side table. The core decides hit/miss; the table serves the payload
//    and enforces the conditional verbs (add/replace/cas/append/prepend/
//    incr/decr). Because the core evicts internally without callbacks, a
//    dead value is reclaimed *lazily*: the first GET that the core answers
//    with a miss frees the value bytes. The per-key size metadata is kept
//    (~40 B per unique key ever stored) so later GETs for the key keep
//    probing the correct slab class — which is exactly what makes a socket
//    replay bit-identical to a library replay (tests/net_e2e_test.cc).
//  - add/replace/cas/arith presence. Decided from the value store's live
//    flag plus the expiry/flush check (the adapter's best knowledge of
//    residency without issuing a statistics-mutating core lookup). An
//    eviction is noticed at the next GET, so an `add` in the narrow window
//    between eviction and that GET can return NOT_STORED where real
//    memcached would store.
//  - Time. Every core operation is stamped with `now` from an injectable
//    clock (CacheAdapterConfig::clock; defaults to the wall clock), so
//    expiry is lazy at both layers and fully deterministic under test.
//    Expiry itself is enforced by the core queues (a stored item carries
//    its absolute expiry; an expired access is a core miss and the adapter
//    reclaims the bytes), while `flush_all` is enforced here: the adapter
//    keeps the flush point and an entry's stored_s, since the core does
//    not know store times. Both paths are O(1) per access; there is no
//    background sweeper thread.
//  - Arithmetic and re-slabbing. incr/decr rewrite the decimal value
//    (incr wraps mod 2^64, decr saturates at 0); append/prepend splice
//    bytes. Whenever the value size changes, the adapter deletes the old
//    incarnation from the core and re-fills at the new size, so the item
//    migrates slab classes and the paper's per-class accounting (and the
//    climbers feeding on it) stays truthful. A same-size rewrite issues a
//    core Touch instead: recency moves, statistics do not.
//
// Determinism contract (relied on by the e2e test): for a single
// connection, the sequence of core Get/Set/Touch/Delete calls — including
// the ItemMeta sizes — is a pure function of the command stream and the
// injected clock. GET uses the stored value_size when the key is known and
// 0 otherwise; SET deletes the old item first when the value size changed
// (slab-class move); DELETE always forwards to the core with the
// best-known size.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/sharded_server.h"
#include "net/socket_server.h"

namespace cliffhanger {
namespace net {

inline constexpr std::string_view kServerVersion = "cliffhanger-0.5.0";

// memcached's relative/absolute exptime boundary: a positive exptime up to
// 30 days is relative to now; anything larger is an absolute unix second.
inline constexpr int64_t kRelativeExptimeCutoff = 60 * 60 * 24 * 30;

struct CacheAdapterConfig {
  uint32_t default_app_id = 1;
  // Recognize the "app<digits>:" key-namespace prefix for app routing.
  bool parse_app_prefix = true;
  // Injectable second-resolution clock for expiry/flush determinism under
  // test. Must never report 0 (second 0 means "no expiry evaluation" in
  // the cache layers); the default wall clock cannot. Called outside the
  // store-shard locks, once per command.
  std::function<uint32_t()> clock;
};

// Resolves a protocol exptime against `now` into the absolute expiry
// second stored in ItemAttrs: 0 stays 0 (never), a negative value means
// already expired, values up to kRelativeExptimeCutoff are relative to
// now, larger values are absolute unix seconds (clamped to uint32).
[[nodiscard]] uint32_t AbsoluteExpiry(int64_t exptime, uint32_t now_s);

class CacheAdapter final : public CommandHandler {
 public:
  // `server` must outlive the adapter; its apps must be registered before
  // traffic starts (same contract as ShardedCacheServer::AddApp).
  CacheAdapter(ShardedCacheServer* server, const CacheAdapterConfig& config);
  ~CacheAdapter() override;
  CacheAdapter(const CacheAdapter&) = delete;
  CacheAdapter& operator=(const CacheAdapter&) = delete;

  bool Handle(const Command& cmd, std::string* out) override;
  // Burst entry point (epoll backend): consecutive shardable commands are
  // grouped by shard and executed with ONE store-shard lock plus ONE core
  // ShardBatch per shard per run, instead of one lock pair per op. Response
  // slots are pre-created in command/key order, so the segment sequence is
  // byte-identical to sequential handling: ops on different shards touch
  // disjoint state, and same-key ops always hash to the same shard, where
  // the stable grouping preserves their order (read-your-write within a
  // pipelined burst included). Barrier commands (stats/version/flush_all/
  // quit/errors) fall back to Handle() in place.
  bool HandleBatch(const Command* cmds, size_t count,
                   std::vector<std::string>* segments) override;

  // Protocol-level counters (what `stats` reports, memcached names).
  struct Counters {
    uint64_t cmd_get = 0;        // keys requested via get/gets
    uint64_t get_hits = 0;
    uint64_t get_misses = 0;
    uint64_t get_expired = 0;    // misses caused by expiry/flush reclaim
    uint64_t cmd_set = 0;        // set/add/replace/cas/append/prepend
    uint64_t store_rejected = 0; // NOT_STORED + SERVER_ERROR outcomes
    uint64_t cas_hits = 0;
    uint64_t cas_misses = 0;
    uint64_t cas_badval = 0;     // EXISTS outcomes
    uint64_t incr_hits = 0;
    uint64_t incr_misses = 0;
    uint64_t decr_hits = 0;
    uint64_t decr_misses = 0;
    uint64_t cmd_touch = 0;
    uint64_t touch_hits = 0;
    uint64_t touch_misses = 0;
    uint64_t cmd_flush = 0;
    uint64_t cmd_delete = 0;
    uint64_t delete_hits = 0;
    uint64_t protocol_errors = 0;
    uint64_t bytes_stored = 0;   // live value bytes in the side table
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct StoreShard;
  struct Entry;
  struct BurstOp;
  struct RoutedKey {
    uint32_t app_id = 0;
    uint64_t key_id = 0;
    bool app_known = false;
  };
  // Routes core calls either straight to the server (single-op path) or
  // through an open ShardBatch (burst path: one core-lock acquisition per
  // shard per burst). Everything below the store-shard lock goes through
  // this seam, so both paths share one implementation of the memcached
  // semantics — they cannot drift apart.
  struct CoreRef {
    ShardedCacheServer* server;
    ShardedCacheServer::ShardBatch* batch;  // nullptr = unbatched
    Outcome Get(uint32_t app_id, const ItemMeta& item) {
      return batch != nullptr ? batch->Get(app_id, item)
                              : server->Get(app_id, item);
    }
    bool Set(uint32_t app_id, const ItemMeta& item) {
      return batch != nullptr ? batch->Set(app_id, item)
                              : server->Set(app_id, item);
    }
    bool Touch(uint32_t app_id, const ItemMeta& item) {
      return batch != nullptr ? batch->Touch(app_id, item)
                              : server->Touch(app_id, item);
    }
    void Delete(uint32_t app_id, const ItemMeta& item) {
      if (batch != nullptr) {
        batch->Delete(app_id, item);
      } else {
        server->Delete(app_id, item);
      }
    }
  };

  [[nodiscard]] RoutedKey Route(std::string_view key) const;
  [[nodiscard]] uint32_t Now() const { return config_.clock(); }
  [[nodiscard]] uint64_t NextCas() {
    return cas_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  // True when `entry` is live and neither expired nor flushed at now_s.
  [[nodiscard]] bool EntryValid(const Entry& entry, uint32_t now_s) const;
  // Pre: shard lock held. Frees the value bytes and marks the entry dead
  // (size metadata survives); the single owner of the bytes_stored_
  // accounting invariant on the release side.
  void ReleaseValueLocked(Entry* entry);
  // Pre: the owning shard's mutex is held. Frees the value bytes of a
  // dead-but-still-live entry (size metadata survives) and erases the key
  // from the core so shadow state cannot linger past invalidation.
  void ReclaimLocked(CoreRef core, Entry* entry, const RoutedKey& rk,
                     uint32_t key_size);
  // Pre: shard lock held. The shared lookup kernel of every conditional
  // verb (store/concat/arith/touch): finds the entry, lazily reclaims it
  // when live-but-invalid (expired/flushed), and reports what remains.
  // Keeping this in ONE place is what keeps the verbs' presence semantics
  // in lockstep.
  struct Lookup {
    Entry* entry = nullptr;  // nullptr = key never stored
    bool valid = false;      // live && unexpired && unflushed after reclaim
    bool reclaimed = false;  // this call reclaimed a stale entry
  };
  Lookup LookupLocked(CoreRef core, StoreShard& shard, const RoutedKey& rk,
                      uint32_t key_size, uint32_t now_s);
  // Replace an entry's value in place: re-slab through the core when the
  // size changed (Delete old + Set new), core-Touch when it did not (the
  // rewrite is an access; statistics must not count a phantom set). Pre:
  // shard lock held; entry live and valid. Returns false when the core
  // rejected the new size (the entry was erased, memcached's SERVER_ERROR
  // path).
  bool RewriteValueLocked(CoreRef core, Entry* entry, const RoutedKey& rk,
                          uint32_t key_size, std::string_view new_value,
                          uint32_t now_s);

  // Counts the command and, when its app is unknown, emits the verb's
  // soft-failure response (shared by the single-op and burst paths, which
  // both run it before taking any lock). Returns true when the command
  // should proceed to its shard op.
  bool CountAndAdmit(const Command& cmd, const RoutedKey& rk,
                     std::string* out);

  // Locked per-op executors: the memcached semantics of one operation,
  // below the store-shard lock, core access through the CoreRef seam.
  // Pre for all: the shard's mutex held, rk.app_known true, CountAndAdmit
  // (or the per-key get admission) already ran.
  void GetKeyLocked(CoreRef core, StoreShard& shard, std::string_view key,
                    const RoutedKey& rk, uint32_t now_s, bool with_cas,
                    std::string* out);
  void StoreLocked(CoreRef core, StoreShard& shard, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ConcatLocked(CoreRef core, StoreShard& shard, const Command& cmd,
                    const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ArithLocked(CoreRef core, StoreShard& shard, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, bool increment,
                   std::string* out);
  void TouchLocked(CoreRef core, StoreShard& shard, const Command& cmd,
                   const RoutedKey& rk, uint32_t now_s, std::string* out);
  void DeleteLocked(CoreRef core, StoreShard& shard, const Command& cmd,
                    const RoutedKey& rk, uint32_t now_s, std::string* out);
  void ExecuteOpLocked(CoreRef core, StoreShard& shard, const BurstOp& op,
                       std::string* out);
  // The burst engine: expands a run of shardable commands into per-key ops
  // with pre-ordered response slots, groups the ops by shard (stable), and
  // executes each group under one store-lock + core-batch pair.
  void ExecuteShardedRun(const Command* cmds, size_t count,
                         std::vector<std::string>* segments);

  void HandleGet(const Command& cmd, std::string* out, bool with_cas);
  void HandleStore(const Command& cmd, std::string* out);
  void HandleConcat(const Command& cmd, std::string* out);
  void HandleArith(const Command& cmd, std::string* out, bool increment);
  void HandleTouch(const Command& cmd, std::string* out);
  void HandleDelete(const Command& cmd, std::string* out);
  void HandleFlushAll(const Command& cmd, std::string* out);
  void HandleStats(std::string* out);

  ShardedCacheServer* server_;
  CacheAdapterConfig config_;
  std::vector<uint32_t> app_ids_;  // registered apps, snapshot at ctor

  std::vector<std::unique_ptr<StoreShard>> store_;
  std::atomic<uint64_t> cas_counter_{0};
  // flush_all point: entries stored before it are dead once now reaches
  // it. 0 = no flush scheduled.
  std::atomic<uint32_t> flush_at_s_{0};

  std::atomic<uint64_t> cmd_get_{0};
  std::atomic<uint64_t> get_hits_{0};
  std::atomic<uint64_t> get_misses_{0};
  std::atomic<uint64_t> get_expired_{0};
  std::atomic<uint64_t> cmd_set_{0};
  std::atomic<uint64_t> store_rejected_{0};
  std::atomic<uint64_t> cas_hits_{0};
  std::atomic<uint64_t> cas_misses_{0};
  std::atomic<uint64_t> cas_badval_{0};
  std::atomic<uint64_t> incr_hits_{0};
  std::atomic<uint64_t> incr_misses_{0};
  std::atomic<uint64_t> decr_hits_{0};
  std::atomic<uint64_t> decr_misses_{0};
  std::atomic<uint64_t> cmd_touch_{0};
  std::atomic<uint64_t> touch_hits_{0};
  std::atomic<uint64_t> touch_misses_{0};
  std::atomic<uint64_t> cmd_flush_{0};
  std::atomic<uint64_t> cmd_delete_{0};
  std::atomic<uint64_t> delete_hits_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> bytes_stored_{0};
};

}  // namespace net
}  // namespace cliffhanger
