#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

#include <cstdio>

#include "net/io_uring_shim.h"
#include "net/segment_flush.h"

#if CLIFFHANGER_HAS_IO_URING
#include <linux/time_types.h>
#include <sys/eventfd.h>
#endif

namespace cliffhanger {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
// epoll_wait batch size per wakeup (not a connection limit: remaining ready
// fds are returned by the next wait immediately).
constexpr int kEpollEvents = 64;

// Writing to a peer that already closed must surface as EPIPE, not a
// process-killing SIGPIPE; done once, process-wide, on first Start().
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void DrainWakePipe(int fd) {
  char drain[64];
  while (::read(fd, drain, sizeof(drain)) > 0) {
  }
}

}  // namespace

// One TCP connection, owned by exactly one worker thread.
struct SocketServer::Connection {
  int fd = -1;
  size_t index = 0;     // slot in Worker::conns, maintained on swap-remove
  std::string rd;       // unconsumed inbound bytes (parser input)
  size_t rd_offset = 0; // parsed prefix of rd, compacted after the drain loop
  std::string wr;       // pending outbound bytes
  size_t wr_offset = 0;
  AsciiParser parser;
  uint32_t armed = 0;     // epoll backend: currently registered event mask
  bool closing = false;   // quit/abuse: stop parsing, flush wr, close
  bool peer_eof = false;  // FIN seen: stop reading, but keep parsing and
                          // answering the frames already buffered — even
                          // across write-backpressure pauses
  // --- uring backend state. A connection with SQEs in flight must outlive
  // them (its pointer is the CQE user_data and its fd must not be recycled),
  // so teardown marks it dead and frees only once inflight drains to zero.
  uint8_t inflight = 0;         // armed SQEs referencing this connection
  bool read_armed = false;      // a RECV SQE is waiting for data
  bool write_inflight = false;  // async SEND of wr is in flight (wr pinned:
                                // no burst may touch wr until its CQE)
  bool dead = false;            // torn down; free when inflight hits zero
};

struct SocketServer::Worker {
  std::thread thread;
  int wake_rd = -1;  // poll/epoll backends; uring workers wake via eventfd
  int wake_wr = -1;
  int epfd = -1;  // epoll backend only; -1 under kPoll/kUring
  // Queued-plus-open connection count: bumped by the acceptor at dispatch,
  // dropped at close. The acceptor routes each new fd to the worker with
  // the smallest load.
  std::atomic<size_t> load{0};
  std::mutex mu;
  std::vector<int> mailbox;  // fds accepted for this worker
  std::vector<std::unique_ptr<Connection>> conns;
  std::unique_ptr<UringState> uring;  // kUring backend only
};

#if CLIFFHANGER_HAS_IO_URING

// Per-ring io_uring state. Workers get a ring plus the wake eventfd and the
// provided-buffer pool; the acceptor's instance uses only the ring, the
// wake-pipe read buffer and the backoff timespec.
struct SocketServer::UringState {
  UringQueue ring;
  int event_fd = -1;       // worker wake; registered as fixed file 0
  uint64_t event_buf = 0;  // eventfd read target (must outlive the SQE)
  char wake_buf[64];       // acceptor wake-pipe read target
  // Provided-buffer pool: buffer id i starts at buffers[i * buffer_bytes].
  // The kernel hands ids back in read CQEs; each is re-provided in the same
  // drain that copies it out, so the pool covers completing reads, not
  // armed connections.
  unsigned buffer_count = 0;
  unsigned buffer_bytes = 0;
  std::vector<char> buffers;
  std::vector<Connection*> starved;    // reads that completed -ENOBUFS
  std::vector<io_uring_cqe> deferred;  // foreign CQEs reaped mid-burst
  msghdr msg{};                        // scratch for the inline burst SENDMSG
  __kernel_timespec backoff_ts{};      // acceptor EMFILE backoff
  ~UringState() {
    if (event_fd >= 0) ::close(event_fd);
  }
};

#else

struct SocketServer::UringState {};

#endif  // CLIFFHANGER_HAS_IO_URING

SocketServer::SocketServer(const SocketServerConfig& config,
                           CommandHandler* handler)
    : config_(config), handler_(handler) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    Stop();
    return false;
  };
  if (running_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  stopping_.store(false);
  accept_stalled_.store(false);
  IgnoreSigpipeOnce();

  // Non-blocking listen socket: the acceptor drains accept4 until EAGAIN,
  // which must never block (it would wedge Stop's join behind a blocking
  // accept that no wake-pipe byte can interrupt).
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  // Enforce, don't assume: verify O_NONBLOCK actually landed and set it
  // explicitly if not (a platform/emulation layer that ignores the socket()
  // flag would otherwise produce a server that runs fine but wedges on
  // Stop — the worst kind of footgun, invisible until shutdown).
  const int fl = ::fcntl(listen_fd_, F_GETFL, 0);
  if (fl < 0) return fail("fcntl(F_GETFL)");
  if ((fl & O_NONBLOCK) == 0 &&
      ::fcntl(listen_fd_, F_SETFL, fl | O_NONBLOCK) != 0) {
    return fail("fcntl(F_SETFL, O_NONBLOCK)");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe2(accept_wake_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return fail("pipe2");
  }

  // Resolve the effective backend. kUring needs kernel support: probe with
  // a throwaway ring at the configured depth (so RLIMIT_MEMLOCK failures
  // surface here, not per worker) plus an opcode check for everything the
  // backend arms. Any gap falls back to epoll with a logged reason —
  // restricted kernels, seccomp policies and old containers still serve.
  effective_backend_ = config_.backend;
  fallback_reason_.clear();
  if (config_.backend == SocketBackend::kUring) {
#if CLIFFHANGER_HAS_IO_URING
    std::string reason;
    UringQueue probe;
    if (!probe.Init(std::max(1u, config_.uring_sq_entries), &reason) ||
        !probe.SupportsOps(
            {IORING_OP_READ, IORING_OP_RECV, IORING_OP_SEND,
             IORING_OP_SENDMSG, IORING_OP_ACCEPT, IORING_OP_PROVIDE_BUFFERS,
             IORING_OP_ASYNC_CANCEL, IORING_OP_TIMEOUT},
            &reason)) {
      fallback_reason_ = reason;
    }
#else
    fallback_reason_ = "built without <linux/io_uring.h>";
#endif
    if (!fallback_reason_.empty()) {
      effective_backend_ = SocketBackend::kEpoll;
      std::fprintf(stderr,
                   "cliffhanger/net: io_uring unavailable (%s); falling back "
                   "to epoll\n",
                   fallback_reason_.c_str());
    }
  }

  const size_t n_workers = std::max<size_t>(1, config_.num_workers);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    auto worker = std::make_unique<Worker>();
#if CLIFFHANGER_HAS_IO_URING
    if (effective_backend_ == SocketBackend::kUring) {
      // Uring workers wake via an eventfd read armed through the ring — no
      // wake pipe. Registered as fixed file 0 so the permanently re-armed
      // read SQE goes through the ring's file table.
      worker->uring = std::make_unique<UringState>();
      UringState* u = worker->uring.get();
      u->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (u->event_fd < 0) {
        workers_.push_back(std::move(worker));
        return fail("eventfd");
      }
      std::string err;
      if (!u->ring.Init(std::max(1u, config_.uring_sq_entries), &err)) {
        workers_.push_back(std::move(worker));
        if (error != nullptr) *error = "io_uring worker ring: " + err;
        Stop();
        return false;
      }
      if (u->ring.RegisterFiles(&u->event_fd, 1) != 0) {
        workers_.push_back(std::move(worker));
        return fail("io_uring_register(files)");
      }
      u->buffer_count = std::max(1u, config_.uring_read_buffers);
      u->buffer_bytes = std::max(4096u, config_.uring_buffer_bytes);
      u->buffers.resize(static_cast<size_t>(u->buffer_count) *
                        u->buffer_bytes);
      workers_.push_back(std::move(worker));
      continue;
    }
#endif
    int wake[2];
    if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) return fail("pipe2");
    worker->wake_rd = wake[0];
    worker->wake_wr = wake[1];
    if (effective_backend_ == SocketBackend::kEpoll) {
      worker->epfd = ::epoll_create1(EPOLL_CLOEXEC);
      if (worker->epfd < 0) return fail("epoll_create1");
      // The wake pipe is the one permanent registration; data.ptr == nullptr
      // distinguishes it from connections.
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = nullptr;
      if (::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, worker->wake_rd, &ev) !=
          0) {
        return fail("epoll_ctl(wake)");
      }
    }
    workers_.push_back(std::move(worker));
  }
#if CLIFFHANGER_HAS_IO_URING
  if (effective_backend_ == SocketBackend::kUring) {
    // The acceptor's own small ring: one multishot accept SQE plus the wake
    // pipe read; 16 entries leaves room for the backoff timeout and re-arms.
    accept_uring_ = std::make_unique<UringState>();
    std::string err;
    if (!accept_uring_->ring.Init(16, &err)) {
      if (error != nullptr) *error = "io_uring acceptor ring: " + err;
      Stop();
      return false;
    }
    accept_uring_->backoff_ts.tv_nsec = 50 * 1000 * 1000;  // 50ms, as epoll
  }
#endif
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    switch (effective_backend_) {
      case SocketBackend::kUring:
        w->thread = std::thread([this, w] { WorkerLoopUring(w); });
        break;
      case SocketBackend::kEpoll:
        w->thread = std::thread([this, w] { WorkerLoopEpoll(w); });
        break;
      case SocketBackend::kPoll:
        w->thread = std::thread([this, w] { WorkerLoop(w); });
        break;
    }
  }
  acceptor_ = std::thread([this] {
    if (effective_backend_ == SocketBackend::kUring) {
      AcceptLoopUring();
    } else {
      AcceptLoop();
    }
  });
  return true;
}

void SocketServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake everyone: the acceptor and each worker re-check stopping_ and exit.
  if (accept_wake_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(accept_wake_[1], &b, 1);
  }
  for (auto& worker : workers_) WakeWorker(worker.get());
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    for (auto& conn : worker->conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    worker->conns.clear();
    for (const int fd : worker->mailbox) ::close(fd);
    worker->mailbox.clear();
    if (worker->epfd >= 0) ::close(worker->epfd);
    if (worker->wake_rd >= 0) ::close(worker->wake_rd);
    if (worker->wake_wr >= 0) ::close(worker->wake_wr);
  }
  workers_.clear();  // UringState dtors close rings + eventfds
  accept_uring_.reset();
  for (int& fd : accept_wake_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  active_connections_.store(0);
  running_.store(false);
}

void SocketServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {accept_wake_[0], POLLIN, 0};
  std::vector<int> batch;
  while (!stopping_.load()) {
    const int rc = ::poll(fds, 2, -1);
    acceptor_iterations_.fetch_add(1, std::memory_order_relaxed);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Drain the wake pipe so a wake byte is a level change, not a permanent
    // readable state. (Harmless to leave under level-triggered poll with an
    // infinite timeout — every loop also checks stopping_ — but any finite
    // timeout or edge-triggered reuse of this pipe would spin or wedge.)
    if (fds[1].revents & POLLIN) DrainWakePipe(accept_wake_[0]);
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    // Batch: drain accept4 until EAGAIN, then dispatch the whole batch with
    // one mailbox lock + wake byte per worker touched.
    batch.clear();
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          // EMFILE/ENFILE and friends: the pending connection keeps the
          // listen fd readable, so an unconditional re-poll would spin a
          // core. Back off — but on the wake pipe, so Stop() interrupts
          // immediately and a worker freeing an fd (CloseConnection writes
          // a wake byte while accept_stalled_) retries at once instead of
          // waiting out the backoff.
          accept_stalled_.store(true);
          pollfd wake = {accept_wake_[0], POLLIN, 0};
          if (::poll(&wake, 1, 50) > 0 && (wake.revents & POLLIN)) {
            DrainWakePipe(accept_wake_[0]);
          }
          accept_stalled_.store(false);
          if (stopping_.load()) return;
        }
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      batch.push_back(fd);
    }
    if (!batch.empty()) DispatchAccepted(&batch);
  }
}

void SocketServer::DispatchAccepted(std::vector<int>* fds) {
  const size_t n_workers = workers_.size();
  // Snapshot the loads once, then assign greedily against local estimates:
  // the whole batch lands least-loaded without re-reading atomics per fd.
  std::vector<size_t> load(n_workers);
  std::vector<std::vector<int>> assigned(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    load[i] = workers_[i]->load.load(std::memory_order_relaxed);
  }
  for (const int fd : *fds) {
    const size_t w = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    ++load[w];
    assigned[w].push_back(fd);
  }
  for (size_t i = 0; i < n_workers; ++i) {
    if (assigned[i].empty()) continue;
    Worker* w = workers_[i].get();
    w->load.fetch_add(assigned[i].size(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->mailbox.insert(w->mailbox.end(), assigned[i].begin(),
                        assigned[i].end());
    }
    WakeWorker(w);
  }
  total_connections_.fetch_add(fds->size(), std::memory_order_relaxed);
  fds->clear();
}

void SocketServer::AdoptIncoming(Worker* worker) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    incoming.swap(worker->mailbox);
  }
  for (const int fd : incoming) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->index = worker->conns.size();
    if (worker->epfd >= 0) {
      // Registered exactly once; later interest changes go through
      // EPOLL_CTL_MOD in UpdateEpollInterest.
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        worker->load.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      conn->armed = EPOLLIN;
    }
    worker->conns.push_back(std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SocketServer::DrainCommands(Connection* conn) {
  bool backpressured = false;
  Command cmd;  // hoisted: Next resets it in place, keys keeps capacity
  while (true) {
    if (conn->wr.size() - conn->wr_offset >= config_.max_write_buffer) {
      // Stop producing responses until the peer drains some; any complete
      // frames still in rd are picked up after the next flush.
      backpressured = true;
      break;
    }
    const std::string_view unparsed(conn->rd.data() + conn->rd_offset,
                                    conn->rd.size() - conn->rd_offset);
    size_t consumed = 0;
    const ParseStatus status = conn->parser.Next(unparsed, &consumed, &cmd);
    conn->rd_offset += consumed;
    if (status == ParseStatus::kCommand) {
      if (!handler_->Handle(cmd, &conn->wr)) return false;
      continue;
    }
    if (consumed > 0) continue;  // resync progress; try again on this buffer
    break;                       // genuinely need more bytes
  }
  // Compact: discard the parsed prefix once per drain, not per command.
  if (conn->rd_offset > 0) {
    conn->rd.erase(0, conn->rd_offset);
    conn->rd_offset = 0;
  }
  if (backpressured) return true;  // rd may legitimately hold whole frames
  // A frame that cannot complete within the cap means a broken or hostile
  // client; cut it off rather than buffering without bound.
  return conn->rd.size() <= config_.max_read_buffer;
}

size_t SocketServer::CollectBurst(Connection* conn,
                                  std::vector<Command>* cmds) {
  size_t frames = 0;
  // A burst is bounded in frames AND in key-operations: one multiget counts
  // each of its keys, so a burst's worst-case response volume stays at the
  // single-command bound (kMaxKeysPerGet × kMaxValueBytes) the write cap
  // documents. The key-op check runs after parsing (a frame cannot be
  // un-parsed), so one command may overshoot the budget — bounded overshoot.
  size_t key_ops = 0;
  while (frames < config_.max_burst_frames && key_ops < kMaxKeysPerGet) {
    if (cmds->size() == frames) cmds->emplace_back();
    Command& cmd = (*cmds)[frames];
    const std::string_view unparsed(conn->rd.data() + conn->rd_offset,
                                    conn->rd.size() - conn->rd_offset);
    size_t consumed = 0;
    const ParseStatus status = conn->parser.Next(unparsed, &consumed, &cmd);
    conn->rd_offset += consumed;
    if (status == ParseStatus::kCommand) {
      key_ops += std::max<size_t>(1, cmd.keys.size());
      ++frames;
      continue;
    }
    if (consumed > 0) continue;  // resync progress; try again on this buffer
    break;                       // genuinely need more bytes
  }
  return frames;
}

bool SocketServer::FlushWrites(Connection* conn) {
  while (conn->wr_offset < conn->wr.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wr.data() + conn->wr_offset,
               conn->wr.size() - conn->wr_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wr_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn->wr.clear();
  conn->wr_offset = 0;
  return true;
}

bool SocketServer::FlushSegments(Connection* conn,
                                 const std::vector<ResponseSegment>& segments,
                                 size_t count) {
  // Scatter-gather straight from the response segments: any queued write-
  // buffer tail goes first (response order), then each segment's up to
  // three pieces — protocol text, the borrowed payload span (pointing into
  // the cache's value arena: this is the zero-copy GET path), trailer.
  // Whatever the socket does not take is spilled into wr — copying the
  // payload bytes, since the borrow ends when this function returns — so
  // the normal flush/backpressure machinery owns it from there. The cursor
  // and spill bookkeeping live in FlushSegmentsVia, shared with the uring
  // backend's ring-submitted flush.
  const int fd = conn->fd;
  const auto write_some = [fd](const iovec* iov, int iov_count) -> ssize_t {
    while (true) {
      const ssize_t n = ::writev(fd, iov, iov_count);
      if (n >= 0) return n;
      if (errno == EINTR) continue;
      return -errno;
    }
  };
  return FlushSegmentsVia(write_some, &conn->wr, &conn->wr_offset,
                          segments.data(), count);
}

void SocketServer::MaybeReleaseBuffers(Connection* conn) {
  const size_t threshold = config_.buffer_shrink_threshold;
  if (threshold == 0) return;
  // swap-with-empty, not shrink_to_fit: the latter is a non-binding request.
  if (conn->rd.empty() && conn->rd.capacity() > threshold) {
    std::string().swap(conn->rd);
    buffer_releases_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn->wr.empty() && conn->wr.capacity() > threshold) {
    std::string().swap(conn->wr);
    buffer_releases_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::CloseConnection(Worker* worker, size_t index) {
  // Swap-remove keeps close O(1); safe inside the poll backend's backwards
  // sweep because the element moved down came from a higher slot that was
  // already visited, and safe for epoll because events carry stable
  // Connection pointers, not indexes.
  ::close(worker->conns[index]->fd);
  if (index + 1 < worker->conns.size()) {
    worker->conns[index] = std::move(worker->conns.back());
    worker->conns[index]->index = index;
  }
  worker->conns.pop_back();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  worker->load.fetch_sub(1, std::memory_order_relaxed);
  // An acceptor stalled on EMFILE/ENFILE is waiting for exactly this fd;
  // interrupt its backoff so it retries now.
  if (accept_stalled_.load(std::memory_order_relaxed) &&
      accept_wake_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(accept_wake_[1], &b, 1);
  }
}

void SocketServer::WorkerLoop(Worker* worker) {
  std::vector<pollfd> fds;
  std::vector<char> read_buf(kReadChunk);
  while (!stopping_.load()) {
    fds.clear();
    fds.push_back({worker->wake_rd, POLLIN, 0});
    for (const auto& conn : worker->conns) {
      // Stop arming POLLIN once the read buffer is full (it can only be
      // full while write-backpressured — otherwise DrainCommands already
      // closed the connection): reading further would grow rd without
      // bound on a client that pipelines but never drains responses.
      // No stall: rd-full implies wr non-empty, so POLLOUT stays armed
      // and the parse cycle resumes after every flush.
      short events = 0;
      if (!conn->closing && !conn->peer_eof &&
          conn->rd.size() <= config_.max_read_buffer) {
        events |= POLLIN;
      }
      if (!conn->wr.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;

    if (fds[0].revents & POLLIN) {
      DrainWakePipe(worker->wake_rd);
      AdoptIncoming(worker);
    }

    // Iterate backwards so CloseConnection's swap-remove cannot skip an
    // entry. fds[i + 1] corresponds to conns[i] for the pre-mailbox prefix.
    const size_t polled = fds.size() - 1;
    for (size_t i = polled; i-- > 0;) {
      if (i >= worker->conns.size()) continue;
      Connection* conn = worker->conns[i].get();
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(worker, i);
        continue;
      }
      bool alive = true;
      if (!conn->closing && !conn->peer_eof &&
          (revents & (POLLIN | POLLHUP)) &&
          conn->rd.size() <= config_.max_read_buffer) {
        while (true) {
          const ssize_t n = ::recv(conn->fd, read_buf.data(),
                                   read_buf.size(), 0);
          if (n > 0) {
            conn->rd.append(read_buf.data(), static_cast<size_t>(n));
            if (conn->rd.size() > config_.max_read_buffer) break;
            continue;
          }
          if (n == 0) {
            conn->peer_eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          alive = false;
          break;
        }
      }
      if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
      // Parse → respond → flush until no complete frame remains or write
      // backpressure holds (POLLOUT resumes the cycle on a later event).
      // Runs even after EOF — including EOF seen during an earlier,
      // backpressured iteration: a client may pipeline its whole session
      // and FIN immediately (printf | nc); every buffered command still
      // deserves its response before the close below.
      while (alive && !conn->closing &&
             conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
        const size_t rd_before = conn->rd.size();
        if (!DrainCommands(conn)) conn->closing = true;
        if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
        if (conn->rd.size() == rd_before) break;  // nothing consumable left
      }
      MaybeReleaseBuffers(conn);
      // peer_eof close only fires once wr is fully flushed, and the cycle
      // above only leaves wr empty when no complete frame remains — so no
      // buffered command is ever dropped.
      if (!alive ||
          ((conn->closing || conn->peer_eof) && conn->wr.empty())) {
        CloseConnection(worker, i);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Epoll burst backend
// ---------------------------------------------------------------------------

void SocketServer::UpdateEpollInterest(Worker* worker, Connection* conn,
                                       uint32_t desired) {
  if (desired == conn->armed) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.ptr = conn;
  if (::epoll_ctl(worker->epfd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed = desired;
  }
}

void SocketServer::ServiceConnection(Worker* worker, Connection* conn,
                                     uint32_t revents,
                                     std::vector<char>* read_buf,
                                     std::vector<Command>* cmds,
                                     std::vector<ResponseSegment>* segments) {
  if (revents & EPOLLERR) {
    CloseConnection(worker, conn->index);
    return;
  }
  bool alive = true;
  // Drain the socket. EPOLLHUP can coexist with readable data (the peer
  // closed both directions after pipelining), so it gates like POLLIN; the
  // recv() == 0 below records the EOF.
  if (!conn->closing && !conn->peer_eof &&
      (revents & (EPOLLIN | EPOLLHUP)) &&
      conn->rd.size() <= config_.max_read_buffer) {
    while (true) {
      const ssize_t n = ::recv(conn->fd, read_buf->data(),
                               read_buf->size(), 0);
      if (n > 0) {
        conn->rd.append(read_buf->data(), static_cast<size_t>(n));
        if (conn->rd.size() > config_.max_read_buffer) break;
        continue;
      }
      if (n == 0) {
        conn->peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      alive = false;
      break;
    }
  }
  // Push out any bytes a previous wakeup left queued before generating more.
  if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
  // Burst cycle: parse a burst, hand it to the handler as one batch (one
  // shard-lock acquisition per shard per burst downstream), writev the
  // response segments, repeat until the buffered frames are gone or write
  // backpressure holds (EPOLLOUT resumes the cycle on a later event). The
  // parsed Commands alias rd, so compaction waits until the cycle ends.
  // Like the poll loop, this runs even after EOF: pipelined sessions that
  // FIN immediately still get every buffered response.
  while (alive && !conn->closing &&
         conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
    const size_t frames = CollectBurst(conn, cmds);
    if (frames == 0) break;
    // Reset in place (not clear+emplace) so the segments — and their inner
    // string capacities — are reused across bursts: the steady-state burst
    // cycle must not touch the allocator. The handler decides the segment
    // count (a multiget emits several per command), growing the vector if
    // the recycled slots run out; unused tail slots stay empty and flush
    // as zero bytes.
    for (ResponseSegment& seg : *segments) seg.Reset();
    if (!handler_->HandleBatch(cmds->data(), frames, segments)) {
      conn->closing = true;  // quit: flush what was produced, then close
    }
    if (alive) alive = FlushSegments(conn, *segments, segments->size());
    // The borrowed payload spans are now either on the wire or copied into
    // wr; a handler that pinned shard locks to keep them alive lets go.
    handler_->ReleaseBurstPins();
  }
  if (conn->rd_offset > 0) {
    conn->rd.erase(0, conn->rd_offset);
    conn->rd_offset = 0;
  }
  // Abuse guard, same rule as DrainCommands: a frame that cannot complete
  // within the read cap — and is not merely waiting out write
  // backpressure — means a broken or hostile client.
  if (alive && !conn->closing &&
      conn->wr.size() - conn->wr_offset < config_.max_write_buffer &&
      conn->rd.size() > config_.max_read_buffer) {
    conn->closing = true;
  }
  MaybeReleaseBuffers(conn);
  if (!alive || ((conn->closing || conn->peer_eof) && conn->wr.empty())) {
    CloseConnection(worker, conn->index);
    return;
  }
  uint32_t desired = 0;
  if (!conn->closing && !conn->peer_eof &&
      conn->rd.size() <= config_.max_read_buffer) {
    desired |= EPOLLIN;
  }
  if (conn->wr_offset < conn->wr.size()) desired |= EPOLLOUT;
  UpdateEpollInterest(worker, conn, desired);
}

void SocketServer::WorkerLoopEpoll(Worker* worker) {
  std::vector<char> read_buf(kReadChunk);
  std::vector<Command> cmds;                // reused across bursts
  std::vector<ResponseSegment> segments;    // reused across bursts
  epoll_event events[kEpollEvents];
  while (!stopping_.load()) {
    const int rc = ::epoll_wait(worker->epfd, events, kEpollEvents, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    for (int e = 0; e < rc; ++e) {
      if (events[e].data.ptr == nullptr) {
        // Wake pipe: drain it (it must stay level-clean) and adopt any
        // mailbox fds. Stop() is handled by the loop condition.
        DrainWakePipe(worker->wake_rd);
        AdoptIncoming(worker);
        continue;
      }
      // Servicing may close other slots only via this very event, never a
      // different connection, and epoll reports each fd at most once per
      // wait — so the Connection pointers in events[] stay valid.
      auto* conn = static_cast<Connection*>(events[e].data.ptr);
      ServiceConnection(worker, conn, events[e].events, &read_buf, &cmds,
                        &segments);
    }
  }
}

// ---------------------------------------------------------------------------
// io_uring burst backend
// ---------------------------------------------------------------------------

void SocketServer::WakeWorker(Worker* worker) {
#if CLIFFHANGER_HAS_IO_URING
  if (worker->uring != nullptr && worker->uring->event_fd >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(worker->uring->event_fd, &one, sizeof(one));
    return;
  }
#endif
  if (worker->wake_wr >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(worker->wake_wr, &b, 1);
  }
}

uint64_t SocketServer::uring_submit_calls() const {
#if CLIFFHANGER_HAS_IO_URING
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    if (worker->uring != nullptr) total += worker->uring->ring.submit_calls();
  }
  if (accept_uring_ != nullptr) total += accept_uring_->ring.submit_calls();
  return total;
#else
  return 0;
#endif
}

uint64_t SocketServer::uring_submitted_sqes() const {
#if CLIFFHANGER_HAS_IO_URING
  uint64_t total = 0;
  for (const auto& worker : workers_) {
    if (worker->uring != nullptr) {
      total += worker->uring->ring.submitted_sqes();
    }
  }
  if (accept_uring_ != nullptr) total += accept_uring_->ring.submitted_sqes();
  return total;
#else
  return 0;
#endif
}

#if CLIFFHANGER_HAS_IO_URING

namespace {

// CQE routing: user_data carries the owning Connection pointer (heap
// allocated, so at least 8-aligned) with the op kind in the low 3 bits.
// Ring-global ops (wake, buffer returns, cancels, accept, timeout) carry
// only the tag.
constexpr uint64_t kUringTagMask = 0x7;
constexpr uint64_t kUringTagRead = 1;
constexpr uint64_t kUringTagWrite = 2;
constexpr uint64_t kUringTagWake = 3;
constexpr uint64_t kUringTagProvide = 4;
constexpr uint64_t kUringTagCancel = 5;
constexpr uint64_t kUringTagAccept = 6;
constexpr uint64_t kUringTagTimeout = 7;

uint64_t TagConn(const void* conn, uint64_t tag) {
  return reinterpret_cast<uint64_t>(conn) | tag;
}

// Multishot accept rides sqe->ioprio; the value is kernel ABI, stable since
// 5.19 — defined here for older userspace headers (the -EINVAL fallback in
// AcceptLoopUring handles kernels that don't know it).
#ifndef IORING_ACCEPT_MULTISHOT
#define IORING_ACCEPT_MULTISHOT (1U << 0)
#endif

// Next free SQE; when the SQ is full, submits the backlog first. The retry
// cannot fail to find a slot — io_uring_enter consumes every submitted SQE
// within the call — unless the ring itself is broken, which callers treat
// as a can't-happen no-op.
io_uring_sqe* GetSqeOrFlush(UringQueue* ring) {
  io_uring_sqe* sqe = ring->GetSqe();
  if (sqe == nullptr) {
    ring->Submit();
    sqe = ring->GetSqe();
  }
  return sqe;
}

}  // namespace

void SocketServer::ArmUringRead(UringState* u, Connection* conn) {
  io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_RECV;
  sqe->fd = conn->fd;
  sqe->len = u->buffer_bytes;  // max take; the kernel picks the buffer
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = 0;
  sqe->user_data = TagConn(conn, kUringTagRead);
  conn->read_armed = true;
  ++conn->inflight;
}

void SocketServer::ArmUringWrite(UringState* u, Connection* conn) {
  io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
  if (sqe == nullptr) return;
  // Async SEND of the wr tail. wr is stable memory (no burst runs while
  // write_inflight, so nothing reallocates it under the kernel) — unlike
  // the burst flush, whose borrowed payload spans must resolve inline.
  sqe->opcode = IORING_OP_SEND;
  sqe->fd = conn->fd;
  sqe->addr = reinterpret_cast<uint64_t>(conn->wr.data() + conn->wr_offset);
  sqe->len = static_cast<uint32_t>(conn->wr.size() - conn->wr_offset);
  sqe->msg_flags = MSG_NOSIGNAL;
  sqe->user_data = TagConn(conn, kUringTagWrite);
  conn->write_inflight = true;
  ++conn->inflight;
}

void SocketServer::ArmUringWake(UringState* u) {
  io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_READ;
  sqe->fd = 0;  // fixed-file slot 0: the registered wake eventfd
  sqe->flags = IOSQE_FIXED_FILE;
  sqe->addr = reinterpret_cast<uint64_t>(&u->event_buf);
  sqe->len = sizeof(u->event_buf);
  sqe->user_data = kUringTagWake;
}

void SocketServer::ProvideUringBuffer(UringState* u, unsigned bid) {
  io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
  sqe->fd = 1;  // one buffer
  sqe->addr = reinterpret_cast<uint64_t>(
      u->buffers.data() + static_cast<size_t>(bid) * u->buffer_bytes);
  sqe->len = u->buffer_bytes;
  sqe->buf_group = 0;
  sqe->off = bid;
  sqe->user_data = kUringTagProvide;
}

void SocketServer::QueueUringCancel(UringState* u, uint64_t target) {
  io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
  if (sqe == nullptr) return;
  sqe->opcode = IORING_OP_ASYNC_CANCEL;
  sqe->addr = target;
  sqe->user_data = kUringTagCancel;
}

void SocketServer::AdoptIncomingUring(Worker* worker) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    incoming.swap(worker->mailbox);
  }
  for (const int fd : incoming) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->index = worker->conns.size();
    ArmUringRead(worker->uring.get(), conn.get());
    worker->conns.push_back(std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::CloseConnectionUring(Worker* worker, Connection* conn) {
  UringState* u = worker->uring.get();
  if (!conn->dead) {
    conn->dead = true;
    conn->closing = true;
    // Cancel armed ops so the in-flight count drains promptly; an op that
    // already completed makes the cancel a harmless -ENOENT.
    if (conn->read_armed) QueueUringCancel(u, TagConn(conn, kUringTagRead));
    if (conn->write_inflight) {
      QueueUringCancel(u, TagConn(conn, kUringTagWrite));
    }
  }
  // The fd must stay open until every armed SQE has completed: closing it
  // now would let the kernel recycle the descriptor and route stale
  // completions at a new peer. The last completion's dispatch frees us.
  if (conn->inflight > 0) return;
  u->starved.erase(std::remove(u->starved.begin(), u->starved.end(), conn),
                   u->starved.end());
  CloseConnection(worker, conn->index);
}

bool SocketServer::UringFlushBurst(Worker* worker, Connection* conn,
                                   const std::vector<ResponseSegment>& segments,
                                   size_t count) {
  UringState* u = worker->uring.get();
  const auto ring_write = [this, u, conn](const iovec* iov,
                                          int iov_count) -> ssize_t {
    io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
    if (sqe == nullptr) return -EIO;
    memset(&u->msg, 0, sizeof(u->msg));
    u->msg.msg_iov = const_cast<iovec*>(iov);
    u->msg.msg_iovlen = static_cast<size_t>(iov_count);
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->fd = conn->fd;
    sqe->addr = reinterpret_cast<uint64_t>(&u->msg);
    sqe->len = 1;
    sqe->msg_flags = MSG_DONTWAIT | MSG_NOSIGNAL;
    sqe->user_data = TagConn(conn, kUringTagWrite);
    ++conn->inflight;
    // The submit below is where the batching lands: one io_uring_enter
    // carries this write plus every SQE queued before it (read re-arms,
    // buffer returns, cancels). MSG_DONTWAIT makes the completion
    // immediate — the op never poll-arms — so waiting for it here cannot
    // block on the peer, and the arena payload borrow ends inside this
    // call exactly as it does with the epoll backend's writev.
    while (true) {
      const int rc = u->ring.SubmitAndWait(1);
      if (rc < 0) {
        // Enter failed wholesale; whether the op was consumed is unknown.
        // Report a dead socket — teardown waits out inflight either way.
        return rc;
      }
      io_uring_cqe cqe{};
      while (u->ring.ReapCqes(&cqe, 1) == 1) {
        if (cqe.user_data == TagConn(conn, kUringTagWrite)) {
          --conn->inflight;
          return cqe.res;
        }
        // Foreign completion (another connection's op, a wake): the main
        // pump processes it after this burst. Never this connection's
        // async SEND — the burst cycle only runs while !write_inflight.
        u->deferred.push_back(cqe);
      }
    }
  };
  return FlushSegmentsVia(ring_write, &conn->wr, &conn->wr_offset,
                          segments.data(), count);
}

void SocketServer::ServiceConnectionUring(
    Worker* worker, Connection* conn, std::vector<Command>* cmds,
    std::vector<ResponseSegment>* segments) {
  UringState* u = worker->uring.get();
  // Burst cycle — identical to the epoll backend's, with the flush going
  // through the ring. Paused while an async SEND has wr pinned: the burst
  // flush (and any spill) would mutate wr under the kernel.
  if (!conn->write_inflight) {
    while (!conn->closing &&
           conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
      const size_t frames = CollectBurst(conn, cmds);
      if (frames == 0) break;
      for (ResponseSegment& seg : *segments) seg.Reset();
      if (!handler_->HandleBatch(cmds->data(), frames, segments)) {
        conn->closing = true;  // quit: flush what was produced, then close
      }
      const bool alive =
          UringFlushBurst(worker, conn, *segments, segments->size());
      // The borrowed payload spans are now either on the wire or copied
      // into wr; a handler that pinned shard locks lets go.
      handler_->ReleaseBurstPins();
      if (!alive) {
        CloseConnectionUring(worker, conn);
        return;
      }
    }
    if (conn->rd_offset > 0) {
      conn->rd.erase(0, conn->rd_offset);
      conn->rd_offset = 0;
    }
    // Abuse guard, same rule as the epoll backend.
    if (!conn->closing &&
        conn->wr.size() - conn->wr_offset < config_.max_write_buffer &&
        conn->rd.size() > config_.max_read_buffer) {
      conn->closing = true;
    }
    MaybeReleaseBuffers(conn);
  }
  const bool wr_empty = conn->wr_offset >= conn->wr.size();
  if ((conn->closing || conn->peer_eof) && wr_empty &&
      !conn->write_inflight) {
    CloseConnectionUring(worker, conn);
    return;
  }
  if (!conn->closing && !conn->peer_eof && !conn->read_armed &&
      conn->rd.size() <= config_.max_read_buffer) {
    ArmUringRead(u, conn);
  }
  if (!wr_empty && !conn->write_inflight) ArmUringWrite(u, conn);
}

void SocketServer::DispatchUringCqe(Worker* worker, uint64_t user_data,
                                    int32_t res, uint32_t flags,
                                    std::vector<Command>* cmds,
                                    std::vector<ResponseSegment>* segments) {
  UringState* u = worker->uring.get();
  switch (user_data & kUringTagMask) {
    case kUringTagWake: {
      if (stopping_.load()) return;
      AdoptIncomingUring(worker);
      ArmUringWake(u);  // re-arm for the next mailbox wake
      return;
    }
    case kUringTagProvide:
    case kUringTagCancel:
      return;  // failures (if any) surface on the ops themselves
    case kUringTagRead: {
      auto* conn = reinterpret_cast<Connection*>(user_data & ~kUringTagMask);
      // Return the kernel-selected buffer in this same drain — EOF, error
      // and dead completions included: a selected buffer never re-provided
      // is leaked from the group.
      if ((flags & IORING_CQE_F_BUFFER) != 0) {
        const unsigned bid = flags >> IORING_CQE_BUFFER_SHIFT;
        if (res > 0 && !conn->dead) {
          conn->rd.append(
              u->buffers.data() + static_cast<size_t>(bid) * u->buffer_bytes,
              static_cast<size_t>(res));
        }
        ProvideUringBuffer(u, bid);
      }
      conn->read_armed = false;
      --conn->inflight;
      if (conn->dead) {
        CloseConnectionUring(worker, conn);  // frees once inflight drains
        return;
      }
      if (res == 0) {
        conn->peer_eof = true;
      } else if (res < 0) {
        if (res == -ENOBUFS) {
          // Pool momentarily exhausted by concurrently completing reads;
          // the pump retries after this drain returns their buffers.
          u->starved.push_back(conn);
          return;
        }
        if (res != -EAGAIN && res != -EINTR && res != -ECANCELED) {
          CloseConnectionUring(worker, conn);  // dead socket
          return;
        }
      }
      ServiceConnectionUring(worker, conn, cmds, segments);
      return;
    }
    case kUringTagWrite: {
      // Only the async SEND lands here: the burst flush's inline SENDMSG
      // CQEs are reaped inside UringFlushBurst.
      auto* conn = reinterpret_cast<Connection*>(user_data & ~kUringTagMask);
      conn->write_inflight = false;
      --conn->inflight;
      if (conn->dead) {
        CloseConnectionUring(worker, conn);
        return;
      }
      if (res < 0) {
        if (res != -EAGAIN && res != -EINTR && res != -ECANCELED) {
          CloseConnectionUring(worker, conn);
          return;
        }
      } else {
        conn->wr_offset += static_cast<size_t>(res);
        if (conn->wr_offset >= conn->wr.size()) {
          conn->wr.clear();
          conn->wr_offset = 0;
        }
      }
      ServiceConnectionUring(worker, conn, cmds, segments);
      return;
    }
    default:
      return;
  }
}

void SocketServer::WorkerLoopUring(Worker* worker) {
  UringState* u = worker->uring.get();
  {
    // Provide the whole buffer pool in one SQE before serving.
    io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_PROVIDE_BUFFERS;
    sqe->fd = static_cast<int>(u->buffer_count);
    sqe->addr = reinterpret_cast<uint64_t>(u->buffers.data());
    sqe->len = u->buffer_bytes;  // each
    sqe->buf_group = 0;
    sqe->off = 0;  // first buffer id
    sqe->user_data = kUringTagProvide;
    if (u->ring.SubmitAndWait(1) < 0) return;
    io_uring_cqe cqe{};
    if (u->ring.ReapCqes(&cqe, 1) != 1 || cqe.res < 0) {
      std::fprintf(stderr,
                   "cliffhanger/net: IORING_OP_PROVIDE_BUFFERS failed (%d); "
                   "uring worker exiting\n",
                   cqe.res);
      return;
    }
  }
  ArmUringWake(u);
  std::vector<Command> cmds;              // reused across bursts
  std::vector<ResponseSegment> segments;  // reused across bursts
  std::vector<io_uring_cqe> batch(kEpollEvents);
  std::vector<io_uring_cqe> local;
  std::vector<Connection*> retry;
  while (!stopping_.load()) {
    // One enter submits every queued SQE (read re-arms, buffer returns,
    // cancels, the wake re-arm) and sleeps until the next completion.
    if (u->ring.SubmitAndWait(1) < 0) break;
    if (stopping_.load()) break;
    bool progress = true;
    while (progress && !stopping_.load()) {
      progress = false;
      // Foreign CQEs reaped during an inline burst wait come first: they
      // arrived before anything still sitting in the CQ.
      if (!u->deferred.empty()) {
        local.clear();
        local.swap(u->deferred);
        for (const io_uring_cqe& cqe : local) {
          DispatchUringCqe(worker, cqe.user_data, cqe.res, cqe.flags, &cmds,
                           &segments);
        }
        progress = true;
      }
      const unsigned n = u->ring.ReapCqes(
          batch.data(), static_cast<unsigned>(batch.size()));
      for (unsigned i = 0; i < n; ++i) {
        DispatchUringCqe(worker, batch[i].user_data, batch[i].res,
                         batch[i].flags, &cmds, &segments);
      }
      if (n > 0) progress = true;
    }
    if (stopping_.load()) break;
    // Reads that lost the buffer race (-ENOBUFS) retry now: the drain above
    // queued every completed read's buffer return ahead of these re-arms in
    // the SQ, so the retry cannot starve against the same completions.
    if (!u->starved.empty()) {
      retry.clear();
      retry.swap(u->starved);
      for (Connection* conn : retry) {
        if (!conn->dead && !conn->read_armed && !conn->closing &&
            !conn->peer_eof && conn->rd.size() <= config_.max_read_buffer) {
          ArmUringRead(u, conn);
        }
      }
    }
  }
}

void SocketServer::AcceptLoopUring() {
  UringState* u = accept_uring_.get();
  bool multishot_ok = true;
  bool accept_armed = false;
  bool stalled = false;
  const auto arm_accept = [&] {
    io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_ACCEPT;
    sqe->fd = listen_fd_;
    sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
    // One armed SQE, one CQE per connection; IORING_CQE_F_MORE clear on a
    // CQE means the kernel stopped the series and we re-arm.
    if (multishot_ok) sqe->ioprio = IORING_ACCEPT_MULTISHOT;
    sqe->user_data = kUringTagAccept;
    accept_armed = true;
  };
  const auto arm_wake = [&] {
    io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_READ;
    sqe->fd = accept_wake_[0];
    sqe->addr = reinterpret_cast<uint64_t>(u->wake_buf);
    sqe->len = sizeof(u->wake_buf);  // drains burst wake bytes in one read
    sqe->user_data = kUringTagWake;
  };
  const auto arm_backoff = [&] {
    io_uring_sqe* sqe = GetSqeOrFlush(&u->ring);
    if (sqe == nullptr) return;
    sqe->opcode = IORING_OP_TIMEOUT;
    sqe->addr = reinterpret_cast<uint64_t>(&u->backoff_ts);
    sqe->len = 1;
    sqe->user_data = kUringTagTimeout;
  };
  arm_accept();
  arm_wake();
  std::vector<int> batch;
  io_uring_cqe cqe{};
  while (!stopping_.load()) {
    if (u->ring.SubmitAndWait(1) < 0) break;
    acceptor_iterations_.fetch_add(1, std::memory_order_relaxed);
    if (stopping_.load()) break;
    batch.clear();
    bool rearm_wake = false;
    bool unstall = false;
    while (u->ring.ReapCqes(&cqe, 1) == 1) {
      switch (cqe.user_data) {
        case kUringTagWake:
          rearm_wake = true;
          unstall = true;  // a worker freed an fd (or Stop): retry accept
          break;
        case kUringTagTimeout:
          unstall = true;
          break;
        case kUringTagAccept: {
          if (cqe.res >= 0) {
            const int fd = static_cast<int>(cqe.res);
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            batch.push_back(fd);
            if ((cqe.flags & IORING_CQE_F_MORE) == 0) accept_armed = false;
            break;
          }
          accept_armed = false;
          if (cqe.res == -EINVAL && multishot_ok) {
            // Kernel predates multishot accept: degrade to one-shot.
            multishot_ok = false;
          } else if (cqe.res == -EMFILE || cqe.res == -ENFILE ||
                     cqe.res == -ENOMEM || cqe.res == -ENOBUFS) {
            // Out of fds: re-arming now would complete-fail in a tight
            // loop (the pending connection keeps the backlog non-empty).
            // Back off on a ring timeout; a worker freeing an fd
            // (CloseConnection's wake byte while accept_stalled_) or
            // Stop() interrupts sooner via the wake read.
            stalled = true;
            accept_stalled_.store(true);
            arm_backoff();
          }
          // -ECANCELED/-EINTR and other transients: re-armed below.
          break;
        }
        default:
          break;
      }
    }
    if (stopping_.load()) break;
    if (!batch.empty()) DispatchAccepted(&batch);
    if (rearm_wake) arm_wake();
    if (stalled && unstall) {
      stalled = false;
      accept_stalled_.store(false);
    }
    if (!accept_armed && !stalled) arm_accept();
  }
}

#else  // !CLIFFHANGER_HAS_IO_URING

// Without <linux/io_uring.h> the kUring paths are unreachable (Start()
// falls back before any thread spawns); these stubs only satisfy the
// linker for the references in Start()'s dispatch.
void SocketServer::WorkerLoopUring(Worker*) {}
void SocketServer::AcceptLoopUring() {}
void SocketServer::DispatchUringCqe(Worker*, uint64_t, int32_t, uint32_t,
                                    std::vector<Command>*,
                                    std::vector<ResponseSegment>*) {}
void SocketServer::ServiceConnectionUring(Worker*, Connection*,
                                          std::vector<Command>*,
                                          std::vector<ResponseSegment>*) {}
bool SocketServer::UringFlushBurst(Worker*, Connection*,
                                   const std::vector<ResponseSegment>&,
                                   size_t) {
  return false;
}
void SocketServer::CloseConnectionUring(Worker*, Connection*) {}
void SocketServer::AdoptIncomingUring(Worker*) {}
void SocketServer::ArmUringRead(UringState*, Connection*) {}
void SocketServer::ArmUringWrite(UringState*, Connection*) {}
void SocketServer::ArmUringWake(UringState*) {}
void SocketServer::ProvideUringBuffer(UringState*, unsigned) {}
void SocketServer::QueueUringCancel(UringState*, uint64_t) {}

#endif  // CLIFFHANGER_HAS_IO_URING

}  // namespace net
}  // namespace cliffhanger
