#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>

namespace cliffhanger {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;
// epoll_wait batch size per wakeup (not a connection limit: remaining ready
// fds are returned by the next wait immediately).
constexpr int kEpollEvents = 64;
// iovec slots per writev call — well under any IOV_MAX; larger bursts just
// take another writev.
constexpr int kMaxIov = 64;

// Writing to a peer that already closed must surface as EPIPE, not a
// process-killing SIGPIPE; done once, process-wide, on first Start().
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

void DrainWakePipe(int fd) {
  char drain[64];
  while (::read(fd, drain, sizeof(drain)) > 0) {
  }
}

}  // namespace

// One TCP connection, owned by exactly one worker thread.
struct SocketServer::Connection {
  int fd = -1;
  size_t index = 0;     // slot in Worker::conns, maintained on swap-remove
  std::string rd;       // unconsumed inbound bytes (parser input)
  size_t rd_offset = 0; // parsed prefix of rd, compacted after the drain loop
  std::string wr;       // pending outbound bytes
  size_t wr_offset = 0;
  AsciiParser parser;
  uint32_t armed = 0;     // epoll backend: currently registered event mask
  bool closing = false;   // quit/abuse: stop parsing, flush wr, close
  bool peer_eof = false;  // FIN seen: stop reading, but keep parsing and
                          // answering the frames already buffered — even
                          // across write-backpressure pauses
};

struct SocketServer::Worker {
  std::thread thread;
  int wake_rd = -1;
  int wake_wr = -1;
  int epfd = -1;  // epoll backend only; -1 under kPoll
  // Queued-plus-open connection count: bumped by the acceptor at dispatch,
  // dropped at close. The acceptor routes each new fd to the worker with
  // the smallest load.
  std::atomic<size_t> load{0};
  std::mutex mu;
  std::vector<int> mailbox;  // fds accepted for this worker
  std::vector<std::unique_ptr<Connection>> conns;
};

SocketServer::SocketServer(const SocketServerConfig& config,
                           CommandHandler* handler)
    : config_(config), handler_(handler) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    Stop();
    return false;
  };
  if (running_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  stopping_.store(false);
  accept_stalled_.store(false);
  IgnoreSigpipeOnce();

  // Non-blocking listen socket: the acceptor drains accept4 until EAGAIN,
  // which must never block (it would wedge Stop's join behind a blocking
  // accept that no wake-pipe byte can interrupt).
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  // Enforce, don't assume: verify O_NONBLOCK actually landed and set it
  // explicitly if not (a platform/emulation layer that ignores the socket()
  // flag would otherwise produce a server that runs fine but wedges on
  // Stop — the worst kind of footgun, invisible until shutdown).
  const int fl = ::fcntl(listen_fd_, F_GETFL, 0);
  if (fl < 0) return fail("fcntl(F_GETFL)");
  if ((fl & O_NONBLOCK) == 0 &&
      ::fcntl(listen_fd_, F_SETFL, fl | O_NONBLOCK) != 0) {
    return fail("fcntl(F_SETFL, O_NONBLOCK)");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe2(accept_wake_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return fail("pipe2");
  }

  const size_t n_workers = std::max<size_t>(1, config_.num_workers);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    int wake[2];
    if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) return fail("pipe2");
    worker->wake_rd = wake[0];
    worker->wake_wr = wake[1];
    if (config_.backend == SocketBackend::kEpoll) {
      worker->epfd = ::epoll_create1(EPOLL_CLOEXEC);
      if (worker->epfd < 0) return fail("epoll_create1");
      // The wake pipe is the one permanent registration; data.ptr == nullptr
      // distinguishes it from connections.
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = nullptr;
      if (::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, worker->wake_rd, &ev) !=
          0) {
        return fail("epoll_ctl(wake)");
      }
    }
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    if (config_.backend == SocketBackend::kEpoll) {
      w->thread = std::thread([this, w] { WorkerLoopEpoll(w); });
    } else {
      w->thread = std::thread([this, w] { WorkerLoop(w); });
    }
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SocketServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake everyone: the acceptor and each worker re-check stopping_ and exit.
  if (accept_wake_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(accept_wake_[1], &b, 1);
  }
  for (auto& worker : workers_) {
    if (worker->wake_wr >= 0) {
      const char b = 'x';
      [[maybe_unused]] ssize_t n = ::write(worker->wake_wr, &b, 1);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    for (auto& conn : worker->conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    worker->conns.clear();
    for (const int fd : worker->mailbox) ::close(fd);
    worker->mailbox.clear();
    if (worker->epfd >= 0) ::close(worker->epfd);
    if (worker->wake_rd >= 0) ::close(worker->wake_rd);
    if (worker->wake_wr >= 0) ::close(worker->wake_wr);
  }
  workers_.clear();
  for (int& fd : accept_wake_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  active_connections_.store(0);
  running_.store(false);
}

void SocketServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {accept_wake_[0], POLLIN, 0};
  std::vector<int> batch;
  while (!stopping_.load()) {
    const int rc = ::poll(fds, 2, -1);
    acceptor_iterations_.fetch_add(1, std::memory_order_relaxed);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Drain the wake pipe so a wake byte is a level change, not a permanent
    // readable state. (Harmless to leave under level-triggered poll with an
    // infinite timeout — every loop also checks stopping_ — but any finite
    // timeout or edge-triggered reuse of this pipe would spin or wedge.)
    if (fds[1].revents & POLLIN) DrainWakePipe(accept_wake_[0]);
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    // Batch: drain accept4 until EAGAIN, then dispatch the whole batch with
    // one mailbox lock + wake byte per worker touched.
    batch.clear();
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          // EMFILE/ENFILE and friends: the pending connection keeps the
          // listen fd readable, so an unconditional re-poll would spin a
          // core. Back off — but on the wake pipe, so Stop() interrupts
          // immediately and a worker freeing an fd (CloseConnection writes
          // a wake byte while accept_stalled_) retries at once instead of
          // waiting out the backoff.
          accept_stalled_.store(true);
          pollfd wake = {accept_wake_[0], POLLIN, 0};
          if (::poll(&wake, 1, 50) > 0 && (wake.revents & POLLIN)) {
            DrainWakePipe(accept_wake_[0]);
          }
          accept_stalled_.store(false);
          if (stopping_.load()) return;
        }
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      batch.push_back(fd);
    }
    if (!batch.empty()) DispatchAccepted(&batch);
  }
}

void SocketServer::DispatchAccepted(std::vector<int>* fds) {
  const size_t n_workers = workers_.size();
  // Snapshot the loads once, then assign greedily against local estimates:
  // the whole batch lands least-loaded without re-reading atomics per fd.
  std::vector<size_t> load(n_workers);
  std::vector<std::vector<int>> assigned(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    load[i] = workers_[i]->load.load(std::memory_order_relaxed);
  }
  for (const int fd : *fds) {
    const size_t w = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    ++load[w];
    assigned[w].push_back(fd);
  }
  for (size_t i = 0; i < n_workers; ++i) {
    if (assigned[i].empty()) continue;
    Worker* w = workers_[i].get();
    w->load.fetch_add(assigned[i].size(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->mailbox.insert(w->mailbox.end(), assigned[i].begin(),
                        assigned[i].end());
    }
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(w->wake_wr, &b, 1);
  }
  total_connections_.fetch_add(fds->size(), std::memory_order_relaxed);
  fds->clear();
}

void SocketServer::AdoptIncoming(Worker* worker) {
  std::vector<int> incoming;
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    incoming.swap(worker->mailbox);
  }
  for (const int fd : incoming) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->index = worker->conns.size();
    if (worker->epfd >= 0) {
      // Registered exactly once; later interest changes go through
      // EPOLL_CTL_MOD in UpdateEpollInterest.
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.ptr = conn.get();
      if (::epoll_ctl(worker->epfd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        worker->load.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
      conn->armed = EPOLLIN;
    }
    worker->conns.push_back(std::move(conn));
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool SocketServer::DrainCommands(Connection* conn) {
  bool backpressured = false;
  Command cmd;  // hoisted: Next resets it in place, keys keeps capacity
  while (true) {
    if (conn->wr.size() - conn->wr_offset >= config_.max_write_buffer) {
      // Stop producing responses until the peer drains some; any complete
      // frames still in rd are picked up after the next flush.
      backpressured = true;
      break;
    }
    const std::string_view unparsed(conn->rd.data() + conn->rd_offset,
                                    conn->rd.size() - conn->rd_offset);
    size_t consumed = 0;
    const ParseStatus status = conn->parser.Next(unparsed, &consumed, &cmd);
    conn->rd_offset += consumed;
    if (status == ParseStatus::kCommand) {
      if (!handler_->Handle(cmd, &conn->wr)) return false;
      continue;
    }
    if (consumed > 0) continue;  // resync progress; try again on this buffer
    break;                       // genuinely need more bytes
  }
  // Compact: discard the parsed prefix once per drain, not per command.
  if (conn->rd_offset > 0) {
    conn->rd.erase(0, conn->rd_offset);
    conn->rd_offset = 0;
  }
  if (backpressured) return true;  // rd may legitimately hold whole frames
  // A frame that cannot complete within the cap means a broken or hostile
  // client; cut it off rather than buffering without bound.
  return conn->rd.size() <= config_.max_read_buffer;
}

size_t SocketServer::CollectBurst(Connection* conn,
                                  std::vector<Command>* cmds) {
  size_t frames = 0;
  // A burst is bounded in frames AND in key-operations: one multiget counts
  // each of its keys, so a burst's worst-case response volume stays at the
  // single-command bound (kMaxKeysPerGet × kMaxValueBytes) the write cap
  // documents. The key-op check runs after parsing (a frame cannot be
  // un-parsed), so one command may overshoot the budget — bounded overshoot.
  size_t key_ops = 0;
  while (frames < config_.max_burst_frames && key_ops < kMaxKeysPerGet) {
    if (cmds->size() == frames) cmds->emplace_back();
    Command& cmd = (*cmds)[frames];
    const std::string_view unparsed(conn->rd.data() + conn->rd_offset,
                                    conn->rd.size() - conn->rd_offset);
    size_t consumed = 0;
    const ParseStatus status = conn->parser.Next(unparsed, &consumed, &cmd);
    conn->rd_offset += consumed;
    if (status == ParseStatus::kCommand) {
      key_ops += std::max<size_t>(1, cmd.keys.size());
      ++frames;
      continue;
    }
    if (consumed > 0) continue;  // resync progress; try again on this buffer
    break;                       // genuinely need more bytes
  }
  return frames;
}

bool SocketServer::FlushWrites(Connection* conn) {
  while (conn->wr_offset < conn->wr.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wr.data() + conn->wr_offset,
               conn->wr.size() - conn->wr_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wr_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn->wr.clear();
  conn->wr_offset = 0;
  return true;
}

namespace {

// The p-th writev piece of one response segment (0 = text, 1 = borrowed
// payload, 2 = trailer). Empty pieces are skipped by the cursor logic.
inline std::pair<const char*, size_t> SegmentPiece(const ResponseSegment& seg,
                                                   size_t p) {
  switch (p) {
    case 0:
      return {seg.text.data(), seg.text.size()};
    case 1:
      return {seg.payload, seg.payload_size};
    default:
      return {seg.trailer.data(), seg.trailer.size()};
  }
}

}  // namespace

bool SocketServer::FlushSegments(Connection* conn,
                                 const std::vector<ResponseSegment>& segments,
                                 size_t count) {
  // Scatter-gather straight from the response segments: any queued write-
  // buffer tail goes first (response order), then each segment's up to
  // three pieces — protocol text, the borrowed payload span (pointing into
  // the cache's value arena: this is the zero-copy GET path), trailer.
  // Whatever the socket does not take is spilled into wr — copying the
  // payload bytes, since the borrow ends when this function returns — so
  // the normal flush/backpressure machinery owns it from there.
  size_t seg_i = 0;    // first segment with unsent bytes
  size_t piece_i = 0;  // piece cursor within segments[seg_i]
  size_t off = 0;      // sent prefix of that piece
  const auto advance = [&] {
    off = 0;
    if (++piece_i == 3) {
      piece_i = 0;
      ++seg_i;
    }
  };
  while (true) {
    // Skip fully-sent and empty pieces.
    while (seg_i < count) {
      const auto [ptr, len] = SegmentPiece(segments[seg_i], piece_i);
      (void)ptr;
      if (off < len) break;
      advance();
    }
    iovec iov[kMaxIov];
    int iov_count = 0;
    if (conn->wr_offset < conn->wr.size()) {
      iov[iov_count++] = {
          const_cast<char*>(conn->wr.data()) + conn->wr_offset,
          conn->wr.size() - conn->wr_offset};
    }
    for (size_t s = seg_i, p = piece_i, o = off;
         s < count && iov_count < kMaxIov;) {
      const auto [ptr, len] = SegmentPiece(segments[s], p);
      if (o < len) {
        iov[iov_count++] = {const_cast<char*>(ptr) + o, len - o};
      }
      o = 0;
      if (++p == 3) {
        p = 0;
        ++s;
      }
    }
    if (iov_count == 0) {
      conn->wr.clear();
      conn->wr_offset = 0;
      return true;  // everything flushed
    }
    const ssize_t n = ::writev(conn->fd, iov, iov_count);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        return false;  // peer gone
      }
      // Socket full: queue the unsent bytes (payloads included — the
      // borrow is over) behind the wr tail.
      for (size_t s = seg_i, p = piece_i, o = off; s < count;) {
        const auto [ptr, len] = SegmentPiece(segments[s], p);
        if (o < len) conn->wr.append(ptr + o, len - o);
        o = 0;
        if (++p == 3) {
          p = 0;
          ++s;
        }
      }
      return true;
    }
    size_t left = static_cast<size_t>(n);
    if (conn->wr_offset < conn->wr.size()) {
      const size_t take = std::min(left, conn->wr.size() - conn->wr_offset);
      conn->wr_offset += take;
      left -= take;
      if (conn->wr_offset == conn->wr.size()) {
        conn->wr.clear();
        conn->wr_offset = 0;
      }
    }
    while (left > 0) {
      const auto [ptr, len] = SegmentPiece(segments[seg_i], piece_i);
      (void)ptr;
      const size_t take = std::min(left, len - off);
      off += take;
      left -= take;
      if (off >= len) advance();
    }
  }
}

void SocketServer::MaybeReleaseBuffers(Connection* conn) {
  const size_t threshold = config_.buffer_shrink_threshold;
  if (threshold == 0) return;
  // swap-with-empty, not shrink_to_fit: the latter is a non-binding request.
  if (conn->rd.empty() && conn->rd.capacity() > threshold) {
    std::string().swap(conn->rd);
    buffer_releases_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn->wr.empty() && conn->wr.capacity() > threshold) {
    std::string().swap(conn->wr);
    buffer_releases_.fetch_add(1, std::memory_order_relaxed);
  }
}

void SocketServer::CloseConnection(Worker* worker, size_t index) {
  // Swap-remove keeps close O(1); safe inside the poll backend's backwards
  // sweep because the element moved down came from a higher slot that was
  // already visited, and safe for epoll because events carry stable
  // Connection pointers, not indexes.
  ::close(worker->conns[index]->fd);
  if (index + 1 < worker->conns.size()) {
    worker->conns[index] = std::move(worker->conns.back());
    worker->conns[index]->index = index;
  }
  worker->conns.pop_back();
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  worker->load.fetch_sub(1, std::memory_order_relaxed);
  // An acceptor stalled on EMFILE/ENFILE is waiting for exactly this fd;
  // interrupt its backoff so it retries now.
  if (accept_stalled_.load(std::memory_order_relaxed) &&
      accept_wake_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(accept_wake_[1], &b, 1);
  }
}

void SocketServer::WorkerLoop(Worker* worker) {
  std::vector<pollfd> fds;
  std::vector<char> read_buf(kReadChunk);
  while (!stopping_.load()) {
    fds.clear();
    fds.push_back({worker->wake_rd, POLLIN, 0});
    for (const auto& conn : worker->conns) {
      // Stop arming POLLIN once the read buffer is full (it can only be
      // full while write-backpressured — otherwise DrainCommands already
      // closed the connection): reading further would grow rd without
      // bound on a client that pipelines but never drains responses.
      // No stall: rd-full implies wr non-empty, so POLLOUT stays armed
      // and the parse cycle resumes after every flush.
      short events = 0;
      if (!conn->closing && !conn->peer_eof &&
          conn->rd.size() <= config_.max_read_buffer) {
        events |= POLLIN;
      }
      if (!conn->wr.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;

    if (fds[0].revents & POLLIN) {
      DrainWakePipe(worker->wake_rd);
      AdoptIncoming(worker);
    }

    // Iterate backwards so CloseConnection's swap-remove cannot skip an
    // entry. fds[i + 1] corresponds to conns[i] for the pre-mailbox prefix.
    const size_t polled = fds.size() - 1;
    for (size_t i = polled; i-- > 0;) {
      if (i >= worker->conns.size()) continue;
      Connection* conn = worker->conns[i].get();
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(worker, i);
        continue;
      }
      bool alive = true;
      if (!conn->closing && !conn->peer_eof &&
          (revents & (POLLIN | POLLHUP)) &&
          conn->rd.size() <= config_.max_read_buffer) {
        while (true) {
          const ssize_t n = ::recv(conn->fd, read_buf.data(),
                                   read_buf.size(), 0);
          if (n > 0) {
            conn->rd.append(read_buf.data(), static_cast<size_t>(n));
            if (conn->rd.size() > config_.max_read_buffer) break;
            continue;
          }
          if (n == 0) {
            conn->peer_eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          alive = false;
          break;
        }
      }
      if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
      // Parse → respond → flush until no complete frame remains or write
      // backpressure holds (POLLOUT resumes the cycle on a later event).
      // Runs even after EOF — including EOF seen during an earlier,
      // backpressured iteration: a client may pipeline its whole session
      // and FIN immediately (printf | nc); every buffered command still
      // deserves its response before the close below.
      while (alive && !conn->closing &&
             conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
        const size_t rd_before = conn->rd.size();
        if (!DrainCommands(conn)) conn->closing = true;
        if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
        if (conn->rd.size() == rd_before) break;  // nothing consumable left
      }
      MaybeReleaseBuffers(conn);
      // peer_eof close only fires once wr is fully flushed, and the cycle
      // above only leaves wr empty when no complete frame remains — so no
      // buffered command is ever dropped.
      if (!alive ||
          ((conn->closing || conn->peer_eof) && conn->wr.empty())) {
        CloseConnection(worker, i);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Epoll burst backend
// ---------------------------------------------------------------------------

void SocketServer::UpdateEpollInterest(Worker* worker, Connection* conn,
                                       uint32_t desired) {
  if (desired == conn->armed) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.ptr = conn;
  if (::epoll_ctl(worker->epfd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed = desired;
  }
}

void SocketServer::ServiceConnection(Worker* worker, Connection* conn,
                                     uint32_t revents,
                                     std::vector<char>* read_buf,
                                     std::vector<Command>* cmds,
                                     std::vector<ResponseSegment>* segments) {
  if (revents & EPOLLERR) {
    CloseConnection(worker, conn->index);
    return;
  }
  bool alive = true;
  // Drain the socket. EPOLLHUP can coexist with readable data (the peer
  // closed both directions after pipelining), so it gates like POLLIN; the
  // recv() == 0 below records the EOF.
  if (!conn->closing && !conn->peer_eof &&
      (revents & (EPOLLIN | EPOLLHUP)) &&
      conn->rd.size() <= config_.max_read_buffer) {
    while (true) {
      const ssize_t n = ::recv(conn->fd, read_buf->data(),
                               read_buf->size(), 0);
      if (n > 0) {
        conn->rd.append(read_buf->data(), static_cast<size_t>(n));
        if (conn->rd.size() > config_.max_read_buffer) break;
        continue;
      }
      if (n == 0) {
        conn->peer_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      alive = false;
      break;
    }
  }
  // Push out any bytes a previous wakeup left queued before generating more.
  if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
  // Burst cycle: parse a burst, hand it to the handler as one batch (one
  // shard-lock acquisition per shard per burst downstream), writev the
  // response segments, repeat until the buffered frames are gone or write
  // backpressure holds (EPOLLOUT resumes the cycle on a later event). The
  // parsed Commands alias rd, so compaction waits until the cycle ends.
  // Like the poll loop, this runs even after EOF: pipelined sessions that
  // FIN immediately still get every buffered response.
  while (alive && !conn->closing &&
         conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
    const size_t frames = CollectBurst(conn, cmds);
    if (frames == 0) break;
    // Reset in place (not clear+emplace) so the segments — and their inner
    // string capacities — are reused across bursts: the steady-state burst
    // cycle must not touch the allocator. The handler decides the segment
    // count (a multiget emits several per command), growing the vector if
    // the recycled slots run out; unused tail slots stay empty and flush
    // as zero bytes.
    for (ResponseSegment& seg : *segments) seg.Reset();
    if (!handler_->HandleBatch(cmds->data(), frames, segments)) {
      conn->closing = true;  // quit: flush what was produced, then close
    }
    if (alive) alive = FlushSegments(conn, *segments, segments->size());
    // The borrowed payload spans are now either on the wire or copied into
    // wr; a handler that pinned shard locks to keep them alive lets go.
    handler_->ReleaseBurstPins();
  }
  if (conn->rd_offset > 0) {
    conn->rd.erase(0, conn->rd_offset);
    conn->rd_offset = 0;
  }
  // Abuse guard, same rule as DrainCommands: a frame that cannot complete
  // within the read cap — and is not merely waiting out write
  // backpressure — means a broken or hostile client.
  if (alive && !conn->closing &&
      conn->wr.size() - conn->wr_offset < config_.max_write_buffer &&
      conn->rd.size() > config_.max_read_buffer) {
    conn->closing = true;
  }
  MaybeReleaseBuffers(conn);
  if (!alive || ((conn->closing || conn->peer_eof) && conn->wr.empty())) {
    CloseConnection(worker, conn->index);
    return;
  }
  uint32_t desired = 0;
  if (!conn->closing && !conn->peer_eof &&
      conn->rd.size() <= config_.max_read_buffer) {
    desired |= EPOLLIN;
  }
  if (conn->wr_offset < conn->wr.size()) desired |= EPOLLOUT;
  UpdateEpollInterest(worker, conn, desired);
}

void SocketServer::WorkerLoopEpoll(Worker* worker) {
  std::vector<char> read_buf(kReadChunk);
  std::vector<Command> cmds;                // reused across bursts
  std::vector<ResponseSegment> segments;    // reused across bursts
  epoll_event events[kEpollEvents];
  while (!stopping_.load()) {
    const int rc = ::epoll_wait(worker->epfd, events, kEpollEvents, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    for (int e = 0; e < rc; ++e) {
      if (events[e].data.ptr == nullptr) {
        // Wake pipe: drain it (it must stay level-clean) and adopt any
        // mailbox fds. Stop() is handled by the loop condition.
        DrainWakePipe(worker->wake_rd);
        AdoptIncoming(worker);
        continue;
      }
      // Servicing may close other slots only via this very event, never a
      // different connection, and epoll reports each fd at most once per
      // wait — so the Connection pointers in events[] stay valid.
      auto* conn = static_cast<Connection*>(events[e].data.ptr);
      ServiceConnection(worker, conn, events[e].events, &read_buf, &cmds,
                        &segments);
    }
  }
}

}  // namespace net
}  // namespace cliffhanger
