#include "net/socket_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace cliffhanger {
namespace net {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

// Writing to a peer that already closed must surface as EPIPE, not a
// process-killing SIGPIPE; done once, process-wide, on first Start().
void IgnoreSigpipeOnce() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

}  // namespace

// One TCP connection, owned by exactly one worker thread.
struct SocketServer::Connection {
  int fd = -1;
  std::string rd;       // unconsumed inbound bytes (parser input)
  size_t rd_offset = 0; // parsed prefix of rd, compacted after the drain loop
  std::string wr;       // pending outbound bytes
  size_t wr_offset = 0;
  AsciiParser parser;
  bool closing = false;   // quit/abuse: stop parsing, flush wr, close
  bool peer_eof = false;  // FIN seen: stop reading, but keep parsing and
                          // answering the frames already buffered — even
                          // across write-backpressure pauses
};

struct SocketServer::Worker {
  std::thread thread;
  int wake_rd = -1;
  int wake_wr = -1;
  std::mutex mu;
  std::vector<int> mailbox;  // fds accepted for this worker
  std::vector<std::unique_ptr<Connection>> conns;
};

SocketServer::SocketServer(const SocketServerConfig& config,
                           CommandHandler* handler)
    : config_(config), handler_(handler) {}

SocketServer::~SocketServer() { Stop(); }

bool SocketServer::Start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + strerror(errno);
    }
    Stop();
    return false;
  };
  if (running_.exchange(true)) {
    if (error != nullptr) *error = "already started";
    return false;
  }
  stopping_.store(false);
  IgnoreSigpipeOnce();

  // Non-blocking listen socket: the acceptor drains accept4 until EAGAIN,
  // which must never block (it would wedge Stop's join behind a blocking
  // accept that no wake-pipe byte can interrupt).
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  // Enforce, don't assume: verify O_NONBLOCK actually landed and set it
  // explicitly if not (a platform/emulation layer that ignores the socket()
  // flag would otherwise produce a server that runs fine but wedges on
  // Stop — the worst kind of footgun, invisible until shutdown).
  const int fl = ::fcntl(listen_fd_, F_GETFL, 0);
  if (fl < 0) return fail("fcntl(F_GETFL)");
  if ((fl & O_NONBLOCK) == 0 &&
      ::fcntl(listen_fd_, F_SETFL, fl | O_NONBLOCK) != 0) {
    return fail("fcntl(F_SETFL, O_NONBLOCK)");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, config_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  if (::pipe2(accept_wake_, O_NONBLOCK | O_CLOEXEC) != 0) {
    return fail("pipe2");
  }

  const size_t n_workers = std::max<size_t>(1, config_.num_workers);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    int wake[2];
    if (::pipe2(wake, O_NONBLOCK | O_CLOEXEC) != 0) return fail("pipe2");
    worker->wake_rd = wake[0];
    worker->wake_wr = wake[1];
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(w); });
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SocketServer::Stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  // Wake everyone: the acceptor and each worker re-check stopping_ and exit.
  if (accept_wake_[1] >= 0) {
    const char b = 'x';
    [[maybe_unused]] ssize_t n = ::write(accept_wake_[1], &b, 1);
  }
  for (auto& worker : workers_) {
    if (worker->wake_wr >= 0) {
      const char b = 'x';
      [[maybe_unused]] ssize_t n = ::write(worker->wake_wr, &b, 1);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& worker : workers_) {
    for (auto& conn : worker->conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    worker->conns.clear();
    for (const int fd : worker->mailbox) ::close(fd);
    worker->mailbox.clear();
    if (worker->wake_rd >= 0) ::close(worker->wake_rd);
    if (worker->wake_wr >= 0) ::close(worker->wake_wr);
  }
  workers_.clear();
  for (int& fd : accept_wake_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  active_connections_.store(0);
  running_.store(false);
}

void SocketServer::AcceptLoop() {
  pollfd fds[2];
  fds[0] = {listen_fd_, POLLIN, 0};
  fds[1] = {accept_wake_[0], POLLIN, 0};
  while (!stopping_.load()) {
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK) {
          // EMFILE/ENFILE and friends: the pending connection keeps the
          // listen fd readable, so poll would return immediately and spin
          // a core. Back off briefly before polling again.
          ::poll(nullptr, 0, 50);
        }
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Worker* w = workers_[next_worker_].get();
      next_worker_ = (next_worker_ + 1) % workers_.size();
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->mailbox.push_back(fd);
      }
      const char b = 'x';
      [[maybe_unused]] ssize_t n = ::write(w->wake_wr, &b, 1);
      total_connections_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool SocketServer::DrainCommands(Connection* conn) {
  bool backpressured = false;
  Command cmd;  // hoisted: Next resets it in place, keys keeps capacity
  while (true) {
    if (conn->wr.size() - conn->wr_offset >= config_.max_write_buffer) {
      // Stop producing responses until the peer drains some; any complete
      // frames still in rd are picked up after the next flush.
      backpressured = true;
      break;
    }
    const std::string_view unparsed(conn->rd.data() + conn->rd_offset,
                                    conn->rd.size() - conn->rd_offset);
    size_t consumed = 0;
    const ParseStatus status = conn->parser.Next(unparsed, &consumed, &cmd);
    conn->rd_offset += consumed;
    if (status == ParseStatus::kCommand) {
      if (!handler_->Handle(cmd, &conn->wr)) return false;
      continue;
    }
    if (consumed > 0) continue;  // resync progress; try again on this buffer
    break;                       // genuinely need more bytes
  }
  // Compact: discard the parsed prefix once per drain, not per command.
  if (conn->rd_offset > 0) {
    conn->rd.erase(0, conn->rd_offset);
    conn->rd_offset = 0;
  }
  if (backpressured) return true;  // rd may legitimately hold whole frames
  // A frame that cannot complete within the cap means a broken or hostile
  // client; cut it off rather than buffering without bound.
  return conn->rd.size() <= config_.max_read_buffer;
}

bool SocketServer::FlushWrites(Connection* conn) {
  while (conn->wr_offset < conn->wr.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->wr.data() + conn->wr_offset,
               conn->wr.size() - conn->wr_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->wr_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;  // peer gone
  }
  conn->wr.clear();
  conn->wr_offset = 0;
  return true;
}

void SocketServer::CloseConnection(Worker* worker, size_t index) {
  ::close(worker->conns[index]->fd);
  worker->conns.erase(worker->conns.begin() +
                      static_cast<ptrdiff_t>(index));
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void SocketServer::WorkerLoop(Worker* worker) {
  std::vector<pollfd> fds;
  std::vector<char> read_buf(kReadChunk);
  while (!stopping_.load()) {
    fds.clear();
    fds.push_back({worker->wake_rd, POLLIN, 0});
    for (const auto& conn : worker->conns) {
      // Stop arming POLLIN once the read buffer is full (it can only be
      // full while write-backpressured — otherwise DrainCommands already
      // closed the connection): reading further would grow rd without
      // bound on a client that pipelines but never drains responses.
      // No stall: rd-full implies wr non-empty, so POLLOUT stays armed
      // and the parse cycle resumes after every flush.
      short events = 0;
      if (!conn->closing && !conn->peer_eof &&
          conn->rd.size() <= config_.max_read_buffer) {
        events |= POLLIN;
      }
      if (!conn->wr.empty()) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (stopping_.load()) break;

    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(worker->wake_rd, drain, sizeof(drain)) > 0) {
      }
      std::vector<int> incoming;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        incoming.swap(worker->mailbox);
      }
      for (const int fd : incoming) {
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        worker->conns.push_back(std::move(conn));
        active_connections_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    // Iterate backwards so CloseConnection's erase cannot skip an entry.
    // fds[i + 1] corresponds to conns[i] for the pre-mailbox prefix.
    const size_t polled = fds.size() - 1;
    for (size_t i = polled; i-- > 0;) {
      if (i >= worker->conns.size()) continue;
      Connection* conn = worker->conns[i].get();
      const short revents = fds[i + 1].revents;
      if (revents == 0) continue;
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(worker, i);
        continue;
      }
      bool alive = true;
      if (!conn->closing && !conn->peer_eof &&
          (revents & (POLLIN | POLLHUP)) &&
          conn->rd.size() <= config_.max_read_buffer) {
        while (true) {
          const ssize_t n = ::recv(conn->fd, read_buf.data(),
                                   read_buf.size(), 0);
          if (n > 0) {
            conn->rd.append(read_buf.data(), static_cast<size_t>(n));
            if (conn->rd.size() > config_.max_read_buffer) break;
            continue;
          }
          if (n == 0) {
            conn->peer_eof = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          alive = false;
          break;
        }
      }
      if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
      // Parse → respond → flush until no complete frame remains or write
      // backpressure holds (POLLOUT resumes the cycle on a later event).
      // Runs even after EOF — including EOF seen during an earlier,
      // backpressured iteration: a client may pipeline its whole session
      // and FIN immediately (printf | nc); every buffered command still
      // deserves its response before the close below.
      while (alive && !conn->closing &&
             conn->wr.size() - conn->wr_offset < config_.max_write_buffer) {
        const size_t rd_before = conn->rd.size();
        if (!DrainCommands(conn)) conn->closing = true;
        if (alive && !conn->wr.empty()) alive = FlushWrites(conn);
        if (conn->rd.size() == rd_before) break;  // nothing consumable left
      }
      // peer_eof close only fires once wr is fully flushed, and the cycle
      // above only leaves wr empty when no complete frame remains — so no
      // buffered command is ever dropped.
      if (!alive ||
          ((conn->closing || conn->peer_eof) && conn->wr.empty())) {
        CloseConnection(worker, i);
      }
    }
  }
}

}  // namespace net
}  // namespace cliffhanger
