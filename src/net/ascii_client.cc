#include "net/ascii_client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "net/ascii_protocol.h"
#include "util/argparse.h"

namespace cliffhanger {
namespace net {

namespace {
constexpr size_t kRecvChunk = 64 * 1024;
}

AsciiClient::~AsciiClient() { Close(); }

bool AsciiClient::Connect(const std::string& host, uint16_t port,
                          int timeout_ms) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    error_ = "inet_pton: invalid address " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("connect: ") + strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  buf_.clear();
  buf_offset_ = 0;
  error_.clear();
  return true;
}

void AsciiClient::ShutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void AsciiClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool AsciiClient::SendRaw(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      error_ = std::string("send: ") + strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool AsciiClient::FillBuffer() {
  char chunk[kRecvChunk];
  while (true) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<size_t>(n));
      return true;
    }
    if (n == 0) {
      error_ = "connection closed by server";
      return false;
    }
    if (errno == EINTR) continue;
    error_ = std::string("recv: ") + strerror(errno);
    return false;
  }
}

bool AsciiClient::ReadLine(std::string* line) {
  while (true) {
    const size_t pos = buf_.find("\r\n", buf_offset_);
    if (pos != std::string::npos) {
      line->assign(buf_, buf_offset_, pos - buf_offset_);
      buf_offset_ = pos + 2;
      if (buf_offset_ == buf_.size()) {
        buf_.clear();
        buf_offset_ = 0;
      }
      return true;
    }
    if (!FillBuffer()) return false;
  }
}

bool AsciiClient::ReadBytes(size_t n, std::string* data) {
  while (buf_.size() - buf_offset_ < n) {
    if (!FillBuffer()) return false;
  }
  data->assign(buf_, buf_offset_, n);
  buf_offset_ += n;
  if (buf_offset_ == buf_.size()) {
    buf_.clear();
    buf_offset_ = 0;
  }
  return true;
}

bool AsciiClient::ReadValues(std::map<std::string, Value>* out) {
  std::string line;
  while (true) {
    if (!ReadLine(&line)) return false;
    if (line == "END") return true;
    // "VALUE <key> <flags> <bytes>[ <cas>]"
    char key[256];
    unsigned long long flags = 0;
    unsigned long long bytes = 0;
    unsigned long long cas = 0;
    const int fields = std::sscanf(line.c_str(), "VALUE %255s %llu %llu %llu",
                                   key, &flags, &bytes, &cas);
    if (fields < 3) {
      error_ = "unexpected response line: " + line;
      return false;
    }
    if (bytes > kMaxValueBytes) {
      // Never trust a declared size past the protocol limit: a corrupt or
      // hostile server must not make the client buffer without bound.
      error_ = "VALUE size exceeds protocol limit: " + line;
      return false;
    }
    Value v;
    v.flags = static_cast<uint32_t>(flags);
    v.cas = cas;
    if (!ReadBytes(static_cast<size_t>(bytes), &v.data)) return false;
    std::string crlf;
    if (!ReadLine(&crlf) || !crlf.empty()) {
      error_ = "data block not CRLF-terminated";
      return false;
    }
    (*out)[key] = std::move(v);
  }
}

std::optional<AsciiClient::Value> AsciiClient::RetrieveOne(
    std::string_view verb, std::string_view key) {
  error_.clear();  // last_error() always describes the current call
  std::string req(verb);
  req.push_back(' ');
  req.append(key);
  req.append("\r\n");
  if (!SendRaw(req)) return std::nullopt;
  std::map<std::string, Value> values;
  if (!ReadValues(&values)) return std::nullopt;
  const auto it = values.find(std::string(key));
  if (it == values.end()) return std::nullopt;
  return std::move(it->second);
}

std::optional<AsciiClient::Value> AsciiClient::Get(std::string_view key) {
  return RetrieveOne("get", key);
}

std::optional<AsciiClient::Value> AsciiClient::Gets(std::string_view key) {
  return RetrieveOne("gets", key);
}

std::map<std::string, AsciiClient::Value> AsciiClient::MultiGet(
    const std::vector<std::string>& keys) {
  std::map<std::string, Value> values;
  error_.clear();
  // Batch to the server's per-command key cap AND its request-line cap, so
  // any number of keys of any legal length succeeds. On a stream error the
  // partial result is returned and last_error() says what broke (an empty
  // map with empty last_error() means every key missed).
  size_t begin = 0;
  while (begin < keys.size()) {
    std::string req = "get";
    size_t batched = 0;
    while (begin + batched < keys.size() && batched < kMaxKeysPerGet &&
           req.size() + 1 + keys[begin + batched].size() + 2 <=
               kMaxLineBytes) {
      req.push_back(' ');
      req.append(keys[begin + batched]);
      ++batched;
    }
    if (batched == 0) {  // single key longer than any legal line
      error_ = "key too long for a request line: " + keys[begin];
      break;
    }
    req.append("\r\n");
    if (!SendRaw(req) || !ReadValues(&values)) break;
    begin += batched;
  }
  return values;
}

AsciiClient::StoreResult AsciiClient::StoreCommand(
    std::string_view verb, std::string_view key, std::string_view value,
    uint32_t flags, int64_t exptime, const uint64_t* cas, bool noreply) {
  error_.clear();
  std::string req;
  req.reserve(key.size() + value.size() + 64);
  req.append(verb);
  req.push_back(' ');
  req.append(key);
  char meta[112];
  if (cas != nullptr) {
    std::snprintf(meta, sizeof(meta), " %u %lld %zu %llu", flags,
                  static_cast<long long>(exptime), value.size(),
                  static_cast<unsigned long long>(*cas));
  } else {
    std::snprintf(meta, sizeof(meta), " %u %lld %zu", flags,
                  static_cast<long long>(exptime), value.size());
  }
  req.append(meta);
  if (noreply) req.append(" noreply");
  req.append("\r\n");
  req.append(value);
  req.append("\r\n");
  if (!SendRaw(req)) return StoreResult::kError;
  if (noreply) return StoreResult::kStored;
  std::string line;
  if (!ReadLine(&line)) return StoreResult::kError;
  if (line == "STORED") return StoreResult::kStored;
  if (line == "NOT_STORED") return StoreResult::kNotStored;
  if (line == "EXISTS") return StoreResult::kExists;
  if (line == "NOT_FOUND") return StoreResult::kNotFound;
  error_ = "store response: " + line;
  return StoreResult::kError;
}

AsciiClient::StoreResult AsciiClient::Set(std::string_view key,
                                          std::string_view value,
                                          uint32_t flags, int64_t exptime,
                                          bool noreply) {
  return StoreCommand("set", key, value, flags, exptime, nullptr, noreply);
}

AsciiClient::StoreResult AsciiClient::Add(std::string_view key,
                                          std::string_view value,
                                          uint32_t flags, int64_t exptime,
                                          bool noreply) {
  return StoreCommand("add", key, value, flags, exptime, nullptr, noreply);
}

AsciiClient::StoreResult AsciiClient::Replace(std::string_view key,
                                              std::string_view value,
                                              uint32_t flags, int64_t exptime,
                                              bool noreply) {
  return StoreCommand("replace", key, value, flags, exptime, nullptr,
                      noreply);
}

AsciiClient::StoreResult AsciiClient::Append(std::string_view key,
                                             std::string_view value,
                                             uint32_t flags, int64_t exptime,
                                             bool noreply) {
  return StoreCommand("append", key, value, flags, exptime, nullptr,
                      noreply);
}

AsciiClient::StoreResult AsciiClient::Prepend(std::string_view key,
                                              std::string_view value,
                                              uint32_t flags, int64_t exptime,
                                              bool noreply) {
  return StoreCommand("prepend", key, value, flags, exptime, nullptr,
                      noreply);
}

AsciiClient::StoreResult AsciiClient::Cas(std::string_view key,
                                          std::string_view value,
                                          uint64_t cas, uint32_t flags,
                                          int64_t exptime, bool noreply) {
  return StoreCommand("cas", key, value, flags, exptime, &cas, noreply);
}

std::optional<uint64_t> AsciiClient::ArithCommand(std::string_view verb,
                                                  std::string_view key,
                                                  uint64_t delta,
                                                  bool noreply) {
  error_.clear();
  std::string req(verb);
  req.push_back(' ');
  req.append(key);
  char meta[32];
  std::snprintf(meta, sizeof(meta), " %llu",
                static_cast<unsigned long long>(delta));
  req.append(meta);
  if (noreply) req.append(" noreply");
  req.append("\r\n");
  if (!SendRaw(req)) return std::nullopt;
  if (noreply) return std::nullopt;
  std::string line;
  if (!ReadLine(&line)) return std::nullopt;
  if (line == "NOT_FOUND") return std::nullopt;  // clean miss: error_ empty
  uint64_t value = 0;
  if (ParseDecimalU64(line, &value)) return value;
  error_ = "arithmetic response: " + line;
  return std::nullopt;
}

std::optional<uint64_t> AsciiClient::Incr(std::string_view key,
                                          uint64_t delta, bool noreply) {
  return ArithCommand("incr", key, delta, noreply);
}

std::optional<uint64_t> AsciiClient::Decr(std::string_view key,
                                          uint64_t delta, bool noreply) {
  return ArithCommand("decr", key, delta, noreply);
}

bool AsciiClient::Touch(std::string_view key, int64_t exptime,
                        bool noreply) {
  error_.clear();
  std::string req = "touch ";
  req.append(key);
  char meta[32];
  std::snprintf(meta, sizeof(meta), " %lld", static_cast<long long>(exptime));
  req.append(meta);
  if (noreply) req.append(" noreply");
  req.append("\r\n");
  if (!SendRaw(req)) return false;
  if (noreply) return true;
  std::string line;
  if (!ReadLine(&line)) return false;
  if (line == "TOUCHED") return true;
  if (line != "NOT_FOUND") error_ = "touch response: " + line;
  return false;
}

bool AsciiClient::FlushAll(int64_t delay, bool noreply) {
  error_.clear();
  std::string req = "flush_all";
  if (delay != 0) {
    char meta[32];
    std::snprintf(meta, sizeof(meta), " %lld", static_cast<long long>(delay));
    req.append(meta);
  }
  if (noreply) req.append(" noreply");
  req.append("\r\n");
  if (!SendRaw(req)) return false;
  if (noreply) return true;
  std::string line;
  if (!ReadLine(&line)) return false;
  if (line == "OK") return true;
  error_ = "flush_all response: " + line;
  return false;
}

bool AsciiClient::Delete(std::string_view key, bool noreply) {
  error_.clear();
  std::string req = "delete ";
  req.append(key);
  if (noreply) req.append(" noreply");
  req.append("\r\n");
  if (!SendRaw(req)) return false;
  if (noreply) return true;
  std::string line;
  if (!ReadLine(&line)) return false;
  return line == "DELETED";
}

std::map<std::string, std::string> AsciiClient::Stats() {
  std::map<std::string, std::string> stats;
  error_.clear();
  if (!SendRaw("stats\r\n")) return stats;
  std::string line;
  while (ReadLine(&line)) {
    if (line == "END") break;
    // "STAT <name> <value>"
    if (line.compare(0, 5, "STAT ") != 0) break;
    const size_t space = line.find(' ', 5);
    if (space == std::string::npos) break;
    stats[line.substr(5, space - 5)] = line.substr(space + 1);
  }
  return stats;
}

std::string AsciiClient::Version() {
  error_.clear();
  if (!SendRaw("version\r\n")) return "";
  std::string line;
  if (!ReadLine(&line)) return "";
  if (line.compare(0, 8, "VERSION ") == 0) return line.substr(8);
  return line;
}

void AsciiClient::Quit() {
  if (fd_ >= 0) SendRaw("quit\r\n");
  Close();
}

}  // namespace net
}  // namespace cliffhanger
