// The memcached ASCII protocol, as pure functions over byte buffers: an
// incremental zero-copy frame parser and the response serializers. Nothing
// in this header touches a socket — the connection layer owns the buffers,
// and every test in tests/ascii_protocol_test.cc / ascii_fuzz_test.cc runs
// against in-memory byte streams.
//
// Supported commands:
//   get <key>+            gets <key>+
//   set|add|replace|append|prepend <key> <flags> <exptime> <bytes>
//       [noreply]\r\n<data>\r\n
//   cas <key> <flags> <exptime> <bytes> <cas unique> [noreply]\r\n<data>\r\n
//   incr|decr <key> <delta> [noreply]
//   touch <key> <exptime> [noreply]
//   delete <key> [noreply]
//   flush_all [delay] [noreply]
//   stats                 version                quit
//
// Error model (matching memcached's observable behaviour):
//   unknown command / empty line / stats with arguments  ->  "ERROR"
//   malformed storage line, key > 250 bytes, bad numbers ->
//       "CLIENT_ERROR bad command line format"
//   incr/decr with a non-numeric delta                   ->
//       "CLIENT_ERROR invalid numeric delta argument"
//   touch with a non-numeric exptime                     ->
//       "CLIENT_ERROR invalid exptime argument"
//   data block not terminated by \r\n                    ->
//       "CLIENT_ERROR bad data chunk" (then resync at the next newline)
//   declared bytes > kMaxValueBytes                      ->
//       "SERVER_ERROR object too large for cache" (the declared data block
//       is swallowed so the stream stays in sync)
//   request line longer than kMaxLineBytes               ->
//       "CLIENT_ERROR line too long" (the rest of the line is discarded)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cliffhanger {
namespace net {

// memcached's limits: 250-byte keys, 1 MiB values. The line cap bounds the
// connection read buffer against newline-free garbage streams. The
// keys-per-retrieval cap bounds response amplification: without it a 2 KiB
// `get k k k ...` line could demand ~1000 maximal values (~1 GiB) in one
// command, sailing past the connection layer's between-commands write cap.
// kMaxKeysPerGet × kMaxValueBytes is the hard per-command response bound.
inline constexpr size_t kMaxKeyBytes = 250;
inline constexpr size_t kMaxLineBytes = 2048;
inline constexpr uint64_t kMaxValueBytes = 1ULL << 20;
inline constexpr size_t kMaxKeysPerGet = 64;

enum class CommandType : uint8_t {
  kGet,
  kGets,
  kSet,
  kAdd,
  kReplace,
  kCas,
  kAppend,
  kPrepend,
  kIncr,
  kDecr,
  kTouch,
  kDelete,
  kFlushAll,
  kStats,
  kVersion,
  kQuit,
  // A protocol violation; `error` holds the full response line (no CRLF).
  kProtocolError,
};

// One parsed command. All string_views point into the buffer passed to
// AsciiParser::Next and are valid only until the consumed prefix is
// discarded — handle the command before compacting the read buffer.
struct Command {
  CommandType type = CommandType::kProtocolError;
  // get/gets: every requested key; storage/arith/touch/delete: one entry.
  std::vector<std::string_view> keys;
  uint32_t flags = 0;
  int64_t exptime = 0;     // touch: the new exptime; flush_all: the delay
  uint64_t cas_unique = 0; // cas: the compare version
  uint64_t delta = 0;      // incr/decr: the operand
  bool noreply = false;
  std::string_view data;   // storage commands: the value block
  std::string_view error;  // kProtocolError: response line (static storage)

  [[nodiscard]] std::string_view key() const {
    return keys.empty() ? std::string_view{} : keys.front();
  }
};

enum class ParseStatus : uint8_t {
  kCommand,   // *out holds one command; discard *consumed bytes after use
  kNeedMore,  // no complete frame yet; *consumed bytes of garbage may still
              // need discarding (resync states make progress without
              // emitting a command)
};

// Incremental parser. Holds no buffered bytes of its own — only the resync
// state that survives between reads (how much of a discarded data block is
// still owed, whether the tail of an oversized line is still owed), so a
// command split across any byte boundary parses identically to the same
// bytes arriving at once.
class AsciiParser {
 public:
  // Tries to parse one command from the front of `buffer` (the unconsumed
  // connection read buffer). Always sets *consumed (possibly 0); the caller
  // must discard exactly that prefix before the next call. On kCommand the
  // views in *out alias `buffer`.
  ParseStatus Next(std::string_view buffer, size_t* consumed, Command* out);

  // True when the parser is mid-resync (discarding a rejected data block or
  // an oversized line). Exposed for tests.
  [[nodiscard]] bool resyncing() const {
    return swallow_data_remaining_ > 0 || swallow_line_;
  }

 private:
  uint64_t swallow_data_remaining_ = 0;
  bool swallow_line_ = false;
  // Scratch for line tokenization, reused across calls so the per-command
  // hot path allocates nothing once capacities are warm.
  std::vector<std::string_view> tokens_;
};

// --- Response serializers -------------------------------------------------

inline constexpr std::string_view kCrlf = "\r\n";
inline constexpr std::string_view kEndLine = "END\r\n";
inline constexpr std::string_view kStoredLine = "STORED\r\n";
inline constexpr std::string_view kNotStoredLine = "NOT_STORED\r\n";
inline constexpr std::string_view kExistsLine = "EXISTS\r\n";
inline constexpr std::string_view kDeletedLine = "DELETED\r\n";
inline constexpr std::string_view kNotFoundLine = "NOT_FOUND\r\n";
inline constexpr std::string_view kTouchedLine = "TOUCHED\r\n";
inline constexpr std::string_view kOkLine = "OK\r\n";

// Error lines (no CRLF; AppendErrorLine adds it). Static storage so Command
// can reference them from anywhere.
inline constexpr std::string_view kErrError = "ERROR";
inline constexpr std::string_view kErrBadLine =
    "CLIENT_ERROR bad command line format";
inline constexpr std::string_view kErrBadChunk = "CLIENT_ERROR bad data chunk";
inline constexpr std::string_view kErrLineTooLong =
    "CLIENT_ERROR line too long";
inline constexpr std::string_view kErrTooLarge =
    "SERVER_ERROR object too large for cache";
inline constexpr std::string_view kErrBadDelta =
    "CLIENT_ERROR invalid numeric delta argument";
inline constexpr std::string_view kErrBadExptime =
    "CLIENT_ERROR invalid exptime argument";
inline constexpr std::string_view kErrNonNumeric =
    "CLIENT_ERROR cannot increment or decrement non-numeric value";

// "VALUE <key> <flags> <bytes>[ <cas>]\r\n<data>\r\n". with_cas selects the
// gets-form.
void AppendValueResponse(std::string* out, std::string_view key,
                         uint32_t flags, std::string_view data);
void AppendValueResponseCas(std::string* out, std::string_view key,
                            uint32_t flags, std::string_view data,
                            uint64_t cas);
// Header line only — "VALUE <key> <flags> <bytes>[ <cas>]\r\n" — for the
// zero-copy GET path, where the payload bytes and trailing CRLF travel as
// separate writev pieces borrowed from the value arena.
void AppendValueHeader(std::string* out, std::string_view key, uint32_t flags,
                       uint64_t bytes);
void AppendValueHeaderCas(std::string* out, std::string_view key,
                          uint32_t flags, uint64_t bytes, uint64_t cas);

void AppendErrorLine(std::string* out, std::string_view error);

// incr/decr success reply: the bare decimal value, CRLF-terminated.
void AppendNumericLine(std::string* out, uint64_t v);

// "STAT <name> <value>\r\n"
void AppendStat(std::string* out, std::string_view name, std::string_view v);
void AppendStat(std::string* out, std::string_view name, uint64_t v);

}  // namespace net
}  // namespace cliffhanger
