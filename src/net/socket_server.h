// Poll-based TCP front: one acceptor thread plus N worker threads, each
// worker owning its connections outright (read buffer, write buffer, parser
// state), so no connection state is ever shared between threads. The layer
// knows nothing about caches — it feeds parsed Commands to a CommandHandler
// and writes back whatever the handler appended.
//
// Connection lifecycle:
//  - The acceptor poll()s the listen socket, accepts, sets O_NONBLOCK +
//    TCP_NODELAY, and hands the fd to a worker round-robin via a mutexed
//    mailbox + wake pipe.
//  - A worker poll()s its wake pipe and every connection (POLLIN always,
//    POLLOUT while the write buffer is non-empty). Reads append to the
//    connection's read buffer; the parse loop then drains every complete
//    pipelined frame, calling the handler per command. Partial frames stay
//    buffered; partial writes stay queued.
//  - `quit` (handler returns false) flushes the pending write buffer and
//    closes. A read buffer driven past its cap without completing a frame
//    closes the connection (protocol abuse guard).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/ascii_protocol.h"

namespace cliffhanger {
namespace net {

class CommandHandler {
 public:
  virtual ~CommandHandler() = default;
  // Appends the response for `cmd` (if any) to *out. Returns false to close
  // the connection after *out is flushed (quit).
  virtual bool Handle(const Command& cmd, std::string* out) = 0;
};

struct SocketServerConfig {
  uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after Start
  size_t num_workers = 2;
  int backlog = 128;
  // Read-buffer cap: must fit a full storage frame (line + max value + 2).
  size_t max_read_buffer = kMaxLineBytes + kMaxValueBytes + 16;
  // Write-buffer cap: once this many response bytes are pending, the
  // worker stops parsing further pipelined commands until the peer drains
  // some (a non-reading client must not balloon server memory). Parsing
  // resumes automatically after a flush makes room. The check runs between
  // commands, so the true per-connection bound is this cap plus one
  // command's worst-case response — kMaxKeysPerGet × kMaxValueBytes for a
  // multiget of maximal values.
  size_t max_write_buffer = 4 * (1 << 20);
};

class SocketServer {
 public:
  SocketServer(const SocketServerConfig& config, CommandHandler* handler);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens and spawns the threads. Returns false (with *error set)
  // if the socket setup fails. Calling Start twice is an error.
  bool Start(std::string* error);
  // Stops accepting, closes every connection, joins all threads. Idempotent.
  void Stop();

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }
  // Connections currently open across all workers (tests/stats).
  [[nodiscard]] size_t active_connections() const {
    return active_connections_.load();
  }
  [[nodiscard]] uint64_t total_connections() const {
    return total_connections_.load();
  }

 private:
  struct Connection;
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker* worker);
  // Parse + handle complete frames in the read buffer until none remain or
  // the write buffer hits its cap (backpressure; complete frames may stay
  // buffered and are resumed after a flush). Returns false when the
  // connection must close (quit or protocol abuse).
  bool DrainCommands(Connection* conn);
  // Non-blocking flush of the write buffer. Returns false on a dead socket.
  static bool FlushWrites(Connection* conn);
  void CloseConnection(Worker* worker, size_t index);

  SocketServerConfig config_;
  CommandHandler* handler_;

  int listen_fd_ = -1;
  int accept_wake_[2] = {-1, -1};
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> total_connections_{0};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  size_t next_worker_ = 0;
};

}  // namespace net
}  // namespace cliffhanger
