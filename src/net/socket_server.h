// TCP front: one acceptor thread plus N worker threads, each worker owning
// its connections outright (read buffer, write buffer, parser state), so no
// connection state is ever shared between threads. The layer knows nothing
// about caches — it feeds parsed Commands to a CommandHandler and writes
// back whatever the handler appended.
//
// Three event-loop backends, selected by SocketServerConfig::backend:
//  - kEpoll (default): each worker owns an epoll instance; connections are
//    registered once at adoption, and interest (EPOLLIN/EPOLLOUT) is only
//    re-armed via EPOLL_CTL_MOD when it actually changes — no per-iteration
//    fd-set rebuild. Each wakeup runs a run-to-completion burst: drain the
//    socket, parse up to max_burst_frames pipelined frames, hand the whole
//    burst to CommandHandler::HandleBatch (one per-shard lock per burst
//    downstream), then flush the response segments with writev scatter-
//    gather straight from the handler's segments — no concatenation copy.
//  - kUring: the same burst model with the syscalls submerged into io_uring.
//    Reads complete into a provided-buffer group the kernel picks from (no
//    recv syscall, no dedicated buffer per armed connection), each burst's
//    responses leave as one batched SENDMSG SQE, read re-arms and buffer
//    returns ride the same io_uring_submit, the mailbox wake is a
//    registered eventfd read, and the acceptor arms one multishot accept
//    SQE instead of calling accept4 per connection. Requires kernel
//    support, probed at Start(); otherwise falls back to kEpoll with a
//    logged reason so restricted kernels/containers still serve.
//  - kPoll: the original poll(2) loop, kept as the A/B baseline; it rebuilds
//    its pollfd array per wakeup and calls Handle() per command.
//
// Connection lifecycle (both backends):
//  - The acceptor poll()s the listen socket, drains accept4 until EAGAIN in
//    batches, sets O_NONBLOCK + TCP_NODELAY, and hands each fd to the
//    least-loaded worker via a mutexed mailbox + wake pipe. On EMFILE or
//    ENFILE it backs off polling the wake pipe (so Stop() and fd-freeing
//    closes interrupt the backoff instead of waiting out a sleep).
//  - Reads append to the connection's read buffer; the parse loop drains
//    every complete pipelined frame. Partial frames stay buffered; partial
//    writes stay queued. Buffers that ballooned past
//    buffer_shrink_threshold release their capacity once they empty.
//  - `quit` (handler returns false) flushes the pending write buffer and
//    closes. A read buffer driven past its cap without completing a frame
//    closes the connection (protocol abuse guard).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/ascii_protocol.h"

namespace cliffhanger {
namespace net {

// One command's response, in up to three writev-able pieces: protocol text,
// an optional borrowed payload span (zero-copy GET: the bytes live in the
// cache's value arena, not in this struct), and an optional trailer (the
// CRLF/END bytes that follow a payload). The payload pointer must stay
// valid until the server has either written it to the socket or spilled it
// into the connection's write buffer — i.e. through the FlushSegments call
// for the burst that produced it, after which ReleaseBurstPins() runs.
struct ResponseSegment {
  std::string text;
  const char* payload = nullptr;
  size_t payload_size = 0;
  std::string trailer;

  void Reset() {
    text.clear();
    payload = nullptr;
    payload_size = 0;
    trailer.clear();
  }
};

class CommandHandler {
 public:
  virtual ~CommandHandler() = default;
  // Appends the response for `cmd` (if any) to *out. Returns false to close
  // the connection after *out is flushed (quit).
  virtual bool Handle(const Command& cmd, std::string* out) = 0;
  // Handles a burst of pipelined commands, filling response segments so the
  // caller can writev them without concatenating. A command may produce
  // zero segments (noreply) or several (a multiget emits one segment per
  // key plus one END segment), so the segment count is the handler's to
  // decide: the caller Reset()s every existing element of *segments before
  // the call, the handler fills elements front-to-back — growing the
  // vector when it runs out of recycled slots — and leaves any unused tail
  // elements empty. The caller flushes the entire vector; empty elements
  // contribute no bytes. Segment order must match command order (pipelined
  // clients rely on response order and read-your-write within a burst).
  // Returns false to close the connection after the segments filled so far
  // are flushed; remaining commands are dropped, matching the sequential
  // quit semantics. The default forwards to Handle() one command at a
  // time; handlers with a cheaper batched path (per-shard lock
  // amortization, zero-copy payloads) override it.
  virtual bool HandleBatch(const Command* cmds, size_t count,
                           std::vector<ResponseSegment>* segments) {
    for (size_t i = 0; i < count; ++i) {
      if (segments->size() == i) segments->emplace_back();
      if (!Handle(cmds[i], &(*segments)[i].text)) return false;
    }
    return true;
  }
  // Called after every FlushSegments for a burst whose segments this
  // handler produced — the borrowed payload spans are dead from here on.
  // Handlers that pinned shard locks to keep those spans alive release
  // them now; the default has nothing to release.
  virtual void ReleaseBurstPins() {}
};

enum class SocketBackend : uint8_t {
  kPoll,   // original poll(2) loop: pollfd rebuild per wakeup, per-command
           // Handle() — the A/B baseline
  kEpoll,  // epoll + burst batching: register-once, HandleBatch, writev
  kUring,  // io_uring: same burst model, but reads complete into a
           // kernel-selected provided-buffer group, burst responses go out
           // as one batched SENDMSG SQE, and re-arms ride the same submit —
           // steady-state GET/SET costs no per-op syscall beyond it. Falls
           // back to kEpoll at Start() (with a logged reason) when the
           // kernel or a seccomp policy denies io_uring.
};

struct SocketServerConfig {
  uint16_t port = 0;  // 0 = ephemeral; the bound port is port() after Start
  size_t num_workers = 2;
  int backlog = 128;
  SocketBackend backend = SocketBackend::kEpoll;
  // Read-buffer cap: must fit a full storage frame (line + max value + 2).
  size_t max_read_buffer = kMaxLineBytes + kMaxValueBytes + 16;
  // Write-buffer cap: once this many response bytes are pending, the
  // worker stops parsing further pipelined commands until the peer drains
  // some (a non-reading client must not balloon server memory). Parsing
  // resumes automatically after a flush makes room. The check runs between
  // commands (poll) or bursts (epoll), so the true per-connection bound is
  // this cap plus one command's or burst's worst-case response — both
  // bounded by kMaxKeysPerGet × kMaxValueBytes (a burst is capped at
  // kMaxKeysPerGet key-ops, see max_burst_frames).
  size_t max_write_buffer = 4 * (1 << 20);
  // Epoll backend: max pipelined frames handed to one HandleBatch call.
  // A burst is additionally capped at kMaxKeysPerGet key-operations (a
  // multiget counts each key), so a burst's worst-case response volume
  // never exceeds the single-command worst case the write cap documents.
  size_t max_burst_frames = 64;
  // A connection buffer whose capacity grew beyond this releases its
  // memory once it empties (per-connection high-water-mark bloat would
  // otherwise persist for the connection's lifetime — at 10k connections
  // one large burst each would pin gigabytes). 0 disables shrinking.
  size_t buffer_shrink_threshold = 256 * 1024;
  // Uring backend: submission-queue depth per worker ring. Bounds how many
  // SQEs (read re-arms, buffer returns, the burst write) one submit can
  // carry; the kernel rounds up to a power of two and sizes the CQ at 2x.
  unsigned uring_sq_entries = 256;
  // Uring backend: provided-buffer group per worker — the pool kernel-side
  // recv completions draw from. The pool only has to cover *completing*
  // reads within one CQE drain (buffers are returned as soon as each
  // completion is copied out), not armed connections, so it stays small
  // even under the 1k-connection soak. -ENOBUFS completions are re-armed
  // after the drain returns the buffers.
  unsigned uring_read_buffers = 64;
  // Uring backend: size of each provided buffer (one recv's max take).
  unsigned uring_buffer_bytes = 64 * 1024;
};

class SocketServer {
 public:
  SocketServer(const SocketServerConfig& config, CommandHandler* handler);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds, listens and spawns the threads. Returns false (with *error set)
  // if the socket setup fails. Calling Start twice is an error.
  bool Start(std::string* error);
  // Stops accepting, closes every connection, joins all threads. Idempotent.
  void Stop();

  [[nodiscard]] uint16_t port() const { return port_; }
  [[nodiscard]] bool running() const { return running_.load(); }
  // The backend actually serving after Start(): differs from the configured
  // one exactly when kUring was requested but the runtime probe (ring init
  // + opcode check) failed and the server fell back to epoll.
  [[nodiscard]] SocketBackend effective_backend() const {
    return effective_backend_;
  }
  // Non-empty exactly when a kUring request fell back to epoll; the same
  // text is logged to stderr at Start().
  [[nodiscard]] const std::string& backend_fallback_reason() const {
    return fallback_reason_;
  }
  // Connections currently open across all workers (tests/stats).
  [[nodiscard]] size_t active_connections() const {
    return active_connections_.load();
  }
  [[nodiscard]] uint64_t total_connections() const {
    return total_connections_.load();
  }
  // Test hooks. acceptor_loop_iterations counts acceptor wakeups (a spin
  // regression shows up as an unbounded rate); buffer_releases counts
  // connection buffers whose capacity was returned to the allocator.
  [[nodiscard]] uint64_t acceptor_loop_iterations() const {
    return acceptor_iterations_.load();
  }
  [[nodiscard]] uint64_t buffer_releases() const {
    return buffer_releases_.load();
  }
  // Uring backend test hooks: total io_uring_enter calls that carried
  // submissions, and total SQEs they carried, summed over every worker ring
  // and the acceptor ring. The batching proof asserts submits stays far
  // below the op count (reads, writes, and re-arms share submits) while
  // sqes_per_submit > 1. Both are 0 under poll/epoll or after fallback.
  [[nodiscard]] uint64_t uring_submit_calls() const;
  [[nodiscard]] uint64_t uring_submitted_sqes() const;

 private:
  struct Connection;
  struct Worker;
  struct UringState;

  void AcceptLoop();
  // io_uring acceptor: multishot accept on the acceptor ring (one armed SQE
  // produces a CQE per connection) plus the wake pipe read armed through
  // the same ring; EMFILE backoff is an IORING_OP_TIMEOUT instead of a
  // blocking poll.
  void AcceptLoopUring();
  // Distributes a batch of accepted fds to the least-loaded workers (one
  // mailbox lock and one wake byte per worker touched, not per fd).
  void DispatchAccepted(std::vector<int>* fds);
  void WorkerLoop(Worker* worker);        // poll(2) backend
  void WorkerLoopEpoll(Worker* worker);   // epoll burst backend
  // io_uring burst backend: a CQE pump. Reads complete into the worker's
  // provided-buffer group (zero syscalls per read), each completed read
  // runs the same CollectBurst → HandleBatch → flush cycle, burst
  // responses go out as one MSG_DONTWAIT SENDMSG SQE reaped inline (so the
  // arena payload borrow ends inside the burst, exactly like epoll), spill
  // drains via an async SEND of the stable write buffer, and every re-arm
  // rides the next submit.
  void WorkerLoopUring(Worker* worker);
  // Moves mailbox fds into owned connections (registering them with the
  // worker's epoll instance when it has one).
  void AdoptIncoming(Worker* worker);
  // Epoll backend: full service of one connection event — drain reads,
  // flush, run the burst cycle (CollectBurst → HandleBatch →
  // FlushSegments), then close or re-arm interest.
  void ServiceConnection(Worker* worker, Connection* conn, uint32_t revents,
                         std::vector<char>* read_buf,
                         std::vector<Command>* cmds,
                         std::vector<ResponseSegment>* segments);
  // Parses up to max_burst_frames complete frames (capped at kMaxKeysPerGet
  // key-ops) from the read buffer into *cmds. The parsed Commands alias the
  // read buffer; the caller compacts it only after the burst is handled.
  size_t CollectBurst(Connection* conn, std::vector<Command>* cmds);
  // Re-arms the connection's epoll interest via EPOLL_CTL_MOD, only when
  // the desired event set differs from what is currently armed.
  static void UpdateEpollInterest(Worker* worker, Connection* conn,
                                  uint32_t desired);
  // Parse + handle complete frames in the read buffer until none remain or
  // the write buffer hits its cap (backpressure; complete frames may stay
  // buffered and are resumed after a flush). Returns false when the
  // connection must close (quit or protocol abuse). Poll backend only.
  bool DrainCommands(Connection* conn);
  // Non-blocking flush of the write buffer. Returns false on a dead socket.
  static bool FlushWrites(Connection* conn);
  // Non-blocking writev of the queued write buffer plus the first `count`
  // response segments (each up to three iovecs: text, borrowed payload,
  // trailer), scatter-gather, no concatenation. Empty segments are skipped.
  // Unsent bytes — including borrowed payload bytes, which must not be
  // referenced after this call — spill into the write buffer. Returns
  // false on a dead socket.
  static bool FlushSegments(Connection* conn,
                            const std::vector<ResponseSegment>& segments,
                            size_t count);
  // Releases a drained connection buffer's capacity once it exceeds
  // buffer_shrink_threshold (counted in buffer_releases_).
  void MaybeReleaseBuffers(Connection* conn);
  void CloseConnection(Worker* worker, size_t index);

  // --- uring backend helpers (no-ops unless effective_backend_ == kUring).
  // Dispatches one completion: wake, read, write, buffer-return or cancel.
  void DispatchUringCqe(Worker* worker, uint64_t user_data, int32_t res,
                        uint32_t flags, std::vector<Command>* cmds,
                        std::vector<ResponseSegment>* segments);
  // The burst cycle + re-arm tail shared by read and write completions.
  void ServiceConnectionUring(Worker* worker, Connection* conn,
                              std::vector<Command>* cmds,
                              std::vector<ResponseSegment>* segments);
  // One burst's flush: batched SENDMSG SQE (MSG_DONTWAIT | MSG_NOSIGNAL),
  // submitted with any queued re-arms and reaped inline — foreign CQEs
  // surfacing during the wait are deferred to the main pump. Returns false
  // on a dead socket.
  bool UringFlushBurst(Worker* worker, Connection* conn,
                       const std::vector<ResponseSegment>& segments,
                       size_t count);
  // Begins teardown: cancels armed SQEs and frees the connection once its
  // in-flight count drains to zero (the fd must stay open until then — a
  // recycled descriptor would route stale completions to a new peer).
  void CloseConnectionUring(Worker* worker, Connection* conn);
  void AdoptIncomingUring(Worker* worker);
  // SQE preparation helpers (queue only — nothing hits the kernel until the
  // next submit): provided-buffer RECV arm, async SEND of the wr tail,
  // eventfd wake read (fixed file 0), single-buffer return, async cancel.
  static void ArmUringRead(UringState* u, Connection* conn);
  static void ArmUringWrite(UringState* u, Connection* conn);
  static void ArmUringWake(UringState* u);
  static void ProvideUringBuffer(UringState* u, unsigned bid);
  static void QueueUringCancel(UringState* u, uint64_t target);
  // Backend-appropriate worker wake: an 8-byte eventfd write (uring) or a
  // wake-pipe byte (poll/epoll).
  static void WakeWorker(Worker* worker);

  SocketServerConfig config_;
  CommandHandler* handler_;
  // Set by Start(): config_.backend, unless a kUring request failed the
  // runtime probe and fell back to kEpoll.
  SocketBackend effective_backend_ = SocketBackend::kEpoll;
  std::string fallback_reason_;

  int listen_fd_ = -1;
  int accept_wake_[2] = {-1, -1};
  uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // True while the acceptor is backing off on EMFILE/ENFILE; closes write a
  // wake byte so the acceptor retries as soon as an fd is actually free.
  std::atomic<bool> accept_stalled_{false};
  std::atomic<size_t> active_connections_{0};
  std::atomic<uint64_t> total_connections_{0};
  std::atomic<uint64_t> acceptor_iterations_{0};
  std::atomic<uint64_t> buffer_releases_{0};

  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread acceptor_;
  // Uring backend: the acceptor's own small ring (multishot accept + wake
  // pipe read + EMFILE backoff timeout). Null under poll/epoll or fallback.
  std::unique_ptr<UringState> accept_uring_;
};

}  // namespace net
}  // namespace cliffhanger
