// cliffhangerd — a memcached-ASCII-protocol TCP server over a
// ShardedCacheServer running the paper's incremental algorithms.
//
//   ./cliffhangerd --port 11311 --workers 4 --shards 8
//       --mode cliffhanger --app 1:64 --app 2:32
//
// Talk to it with any memcached ASCII client, or:
//   printf 'set k 0 0 5\r\nhello\r\nget k\r\nstats\r\nquit\r\n'
//       | nc 127.0.0.1 11311
//
// Speaks the full storage/retrieval verb set — get/gets, set/add/replace,
// cas, append/prepend, incr/decr, touch, delete, flush_all — with
// memcached expiry semantics (relative/absolute exptime, lazy O(1)
// expiration, no sweeper thread).
//
// Keys "app<id>:..." route to that registered app; everything else goes to
// the default app (the first registered, or --default-app).
#include <signal.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/cache_adapter.h"
#include "net/socket_server.h"
#include "sim/experiment.h"
#include "util/argparse.h"

namespace cliffhanger {
namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int) { g_stop.store(true); }

struct AppSpec {
  uint32_t app_id = 1;
  uint64_t reservation_mb = 64;
};

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --port N          listen port (default 11311; 0 = ephemeral)\n"
      "  --workers N       connection worker threads (default 2)\n"
      "  --backend B       epoll | poll | uring event loop (default epoll;\n"
      "                    uring falls back to epoll if the kernel denies\n"
      "                    io_uring — the banner reports what runs)\n"
      "  --shards N        cache shards (default 4)\n"
      "  --mode M          default | cliffhanger (default cliffhanger)\n"
      "  --eviction E      lru | midpoint (default lru; arc/lfu are\n"
      "                    simulation-only — no in-arena value storage)\n"
      "  --app ID:MB       register app ID with MB MiB (repeatable;\n"
      "                    default 1:64)\n"
      "  --default-app ID  app for un-prefixed keys (default: first --app)\n"
      "  --rebalance-ops N shard rebalance interval (default 100000)\n",
      argv0);
}

int Main(int argc, char** argv) {
  uint16_t port = 11311;
  size_t workers = 2;
  net::SocketBackend backend = net::SocketBackend::kEpoll;
  size_t shards = 4;
  bool cliffhanger_mode = true;
  EvictionScheme eviction = EvictionScheme::kLru;
  uint64_t rebalance_ops = 100000;
  std::vector<AppSpec> apps;
  uint32_t default_app = 0;
  bool default_app_set = false;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]), 1;
      if (!ParsePort(v, /*allow_zero=*/true, &port)) {
        std::fprintf(stderr, "--port %s is not a port (0-65535)\n", v);
        return 1;
      }
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      const char* v = next();
      uint64_t parsed = 0;
      if (v == nullptr || !ParseUint(v, &parsed) || parsed == 0) {
        return Usage(argv[0]), 1;
      }
      workers = parsed;
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]), 1;
      if (std::strcmp(v, "epoll") == 0) {
        backend = net::SocketBackend::kEpoll;
      } else if (std::strcmp(v, "poll") == 0) {
        backend = net::SocketBackend::kPoll;
      } else if (std::strcmp(v, "uring") == 0) {
        backend = net::SocketBackend::kUring;
      } else {
        return Usage(argv[0]), 1;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = next();
      uint64_t parsed = 0;
      if (v == nullptr || !ParseUint(v, &parsed) || parsed == 0) {
        return Usage(argv[0]), 1;
      }
      shards = parsed;
    } else if (std::strcmp(argv[i], "--mode") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]), 1;
      if (std::strcmp(v, "default") == 0) {
        cliffhanger_mode = false;
      } else if (std::strcmp(v, "cliffhanger") == 0) {
        cliffhanger_mode = true;
      } else {
        return Usage(argv[0]), 1;
      }
    } else if (std::strcmp(argv[i], "--eviction") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]), 1;
      if (std::strcmp(v, "lru") == 0) {
        eviction = EvictionScheme::kLru;
      } else if (std::strcmp(v, "midpoint") == 0) {
        eviction = EvictionScheme::kMidpoint;
      } else if (std::strcmp(v, "arc") == 0 || std::strcmp(v, "lfu") == 0) {
        // The ARC/LFU queues are simulation-only: they never grew the
        // value-storage hooks (residency listener, PeekPhysical), so a
        // daemon serving real bytes cannot run them.
        std::fprintf(stderr,
                     "--eviction %s is simulation-only; the daemon stores "
                     "real values and needs lru or midpoint\n",
                     v);
        return 1;
      } else {
        return Usage(argv[0]), 1;
      }
    } else if (std::strcmp(argv[i], "--app") == 0) {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]), 1;
      AppSpec spec;
      // Both halves of ID:MB go through the strict ParseUint grammar.
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) return Usage(argv[0]), 1;
      const std::string id_str(v, static_cast<size_t>(colon - v));
      uint64_t id = 0;
      if (!ParseUint(id_str.c_str(), &id) || id > UINT32_MAX) {
        return Usage(argv[0]), 1;
      }
      spec.app_id = static_cast<uint32_t>(id);
      // The << 20 below must not wrap: bound the MiB count accordingly.
      if (!ParseUint(colon + 1, &spec.reservation_mb) ||
          spec.reservation_mb == 0 ||
          spec.reservation_mb > (UINT64_MAX >> 20)) {
        return Usage(argv[0]), 1;
      }
      for (const AppSpec& existing : apps) {
        if (existing.app_id == spec.app_id) {
          std::fprintf(stderr, "duplicate --app id %u\n", spec.app_id);
          return 1;
        }
      }
      apps.push_back(spec);
    } else if (std::strcmp(argv[i], "--default-app") == 0) {
      const char* v = next();
      uint64_t parsed = 0;
      if (v == nullptr || !ParseUint(v, &parsed) || parsed > UINT32_MAX) {
        return Usage(argv[0]), 1;
      }
      default_app = static_cast<uint32_t>(parsed);
      default_app_set = true;
    } else if (std::strcmp(argv[i], "--rebalance-ops") == 0) {
      const char* v = next();
      if (v == nullptr || !ParseUint(v, &rebalance_ops)) {
        return Usage(argv[0]), 1;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      Usage(argv[0]);
      return 1;
    }
  }
  if (apps.empty()) apps.push_back(AppSpec{});
  if (!default_app_set) {
    default_app = apps.front().app_id;
  } else {
    const bool registered =
        std::any_of(apps.begin(), apps.end(), [&](const AppSpec& spec) {
          return spec.app_id == default_app;
        });
    if (!registered) {
      // Fail fast: otherwise every un-prefixed key would be rejected by a
      // daemon that looks perfectly healthy at startup.
      std::fprintf(stderr, "--default-app %u is not a registered --app id\n",
                   default_app);
      return 1;
    }
  }

  ShardedServerConfig config;
  config.server =
      cliffhanger_mode ? CliffhangerServerConfig() : DefaultServerConfig();
  config.server.eviction = eviction;
  // The daemon serves real bytes: values live in the core's per-shard
  // arenas (zero-copy GET), not in an adapter side table.
  config.server.store_values = true;
  config.num_shards = shards;
  config.rebalance_interval_ops = rebalance_ops;
  ShardedCacheServer server(config);
  for (const AppSpec& spec : apps) {
    server.AddApp(spec.app_id, spec.reservation_mb << 20);
  }

  net::CacheAdapterConfig adapter_config;
  adapter_config.default_app_id = default_app;
  net::CacheAdapter adapter(&server, adapter_config);

  net::SocketServerConfig net_config;
  net_config.port = port;
  net_config.num_workers = workers;
  net_config.backend = backend;
  net::SocketServer socket_server(net_config, &adapter);
  std::string error;
  if (!socket_server.Start(&error)) {
    std::fprintf(stderr, "cliffhangerd: %s\n", error.c_str());
    return 1;
  }

  ::signal(SIGINT, OnSignal);
  ::signal(SIGTERM, OnSignal);

  // Banner reports the backend that actually runs (the io_uring probe may
  // have downgraded a uring request; SocketServer already logged why).
  const char* backend_name = "poll";
  switch (socket_server.effective_backend()) {
    case net::SocketBackend::kPoll:
      backend_name = "poll";
      break;
    case net::SocketBackend::kEpoll:
      backend_name = "epoll";
      break;
    case net::SocketBackend::kUring:
      backend_name = "uring";
      break;
  }
  std::fprintf(stderr,
               "cliffhangerd listening on port %u (%zu workers, %zu shards, "
               "%s backend, %s mode, %zu app%s)\n",
               socket_server.port(), workers, shards, backend_name,
               cliffhanger_mode ? "cliffhanger" : "default", apps.size(),
               apps.size() == 1 ? "" : "s");
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "cliffhangerd: shutting down\n");
  socket_server.Stop();
  return 0;
}

}  // namespace
}  // namespace cliffhanger

int main(int argc, char** argv) { return cliffhanger::Main(argc, argv); }
