// Algorithm 1 — shadow-queue hill climbing.
//
//   1: if request ∈ shadowQueue(i) then
//   2:   queue(i).size += credit
//   3:   chosenQueue = pickRandom({queues} - {queue(i)})
//   4:   chosenQueue.size -= credit
//   5: end if
//
// The rate of hits in queue i's hill shadow approximates f_i * h_i'(m_i)
// (the request-weighted local gradient of its hit-rate curve), so in
// equilibrium the normalized gradients equalize across queues — the
// optimality condition of Equation 1 (paper §4.1).
//
// Credits accumulate per queue; once a queue's balance reaches the transfer
// quantum, memory physically moves from a negative-balance queue ("Once a
// queue reaches a certain amount of credits, it is allocated additional
// memory at the expense of another queue"). With quantum == credit (the
// default) every shadow hit moves memory immediately.
//
// Cross-application climbing (§3.3) registers one ClimbableQueue per app
// and feeds OnShadowHit with a gradient weight: when the hitting app's
// operating point sits on a cliff, its raw shadow hit rate understates the
// concave hull's slope (the cliff scaler is serving the hull, not the raw
// curve), so the caller amplifies the credit accordingly. Per-queue (slab
// class) climbing always passes weight 1.0 — the split queues' shadows
// already sample the hull anchors directly.
//
// Tenant lifecycle: queues may also be removed (RemoveQueue). Removal
// tombstones the slot — indices handed out by AddQueue stay stable for the
// surviving queues — and a later AddQueue reuses the lowest freed slot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cliffhanger {

// Capacity-control surface the climber drives. Implemented by adapters around
// slab-class queues (within-app climbing) and around whole applications
// (cross-app climbing).
class ClimbableQueue {
 public:
  virtual ~ClimbableQueue() = default;
  [[nodiscard]] virtual uint64_t capacity_bytes() const = 0;
  virtual void SetCapacityBytes(uint64_t bytes) = 0;
  // Floor below which the climber will not shrink this queue.
  [[nodiscard]] virtual uint64_t min_capacity_bytes() const = 0;
};

struct HillClimberConfig {
  uint64_t credit_bytes = 4096;    // paper §5.3: 1-4 KB works best
  uint64_t quantum_bytes = 4096;   // transfer granularity
  // Bound on a queue's POSITIVE credit balance, in quanta; 0 = unbounded.
  // Positive credit is a pending physical transfer; without a bound it
  // accumulates freely while every donor sits at its min floor, and the
  // instant one donor frees up the whole backlog drains as a burst of
  // transfers. The clamp caps that burst. Negative balances are
  // deliberately unbounded: they only rank donor preference and never
  // convert into transfers directly.
  //
  // Default 0: the paper-replay goldens (fig6/fig7/table4) pin the
  // historical unbounded within-app dynamics bit-exactly, so the within-app
  // climber cannot turn this on by default. The cross-app climber — which
  // has no such pin — enables it via
  // CliffhangerKnobs::cross_app_max_credit_quanta.
  uint64_t max_credit_quanta = 0;
};

class HillClimber {
 public:
  explicit HillClimber(const HillClimberConfig& config, uint64_t seed = 1);

  // Registers a queue; returns its index. Queues may be added lazily as
  // slab classes materialize. Reuses the lowest index freed by RemoveQueue.
  size_t AddQueue(ClimbableQueue* queue);
  // Forgets queue i: its slot is tombstoned (never picked as hitter,
  // victim, or donor again) and its credit balance is discarded. The
  // caller redistributes the departing queue's capacity; the climber only
  // stops steering it. Other queues' indices are unaffected.
  void RemoveQueue(size_t i);

  // Called when queue i's hill shadow received a hit. `weight` scales the
  // credit (and the matching debit): 1.0 for a raw gradient sample, more
  // when the caller knows the sample understates the effective (hull)
  // slope — see the cross-app notes above.
  void OnShadowHit(size_t i, double weight = 1.0);

  [[nodiscard]] size_t num_queues() const { return live_count_; }
  [[nodiscard]] bool has_queue(size_t i) const {
    return i < queues_.size() && queues_[i] != nullptr;
  }
  [[nodiscard]] int64_t credits(size_t i) const { return credits_[i]; }
  [[nodiscard]] uint64_t total_transfers() const { return transfers_; }
  [[nodiscard]] uint64_t transferred_bytes() const {
    return transferred_bytes_;
  }

 private:
  // Move up to `quantum_bytes` into queue i from a random donor with spare
  // capacity. Returns true when memory moved.
  bool TryTransfer(size_t i);

  HillClimberConfig config_;
  Rng rng_;
  std::vector<ClimbableQueue*> queues_;  // nullptr = tombstoned slot
  std::vector<int64_t> credits_;
  std::vector<size_t> free_slots_;  // kept sorted descending; reuse lowest
  size_t live_count_ = 0;
  uint64_t transfers_ = 0;
  uint64_t transferred_bytes_ = 0;
};

}  // namespace cliffhanger
