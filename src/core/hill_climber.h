// Algorithm 1 — shadow-queue hill climbing.
//
//   1: if request ∈ shadowQueue(i) then
//   2:   queue(i).size += credit
//   3:   chosenQueue = pickRandom({queues} - {queue(i)})
//   4:   chosenQueue.size -= credit
//   5: end if
//
// The rate of hits in queue i's hill shadow approximates f_i * h_i'(m_i)
// (the request-weighted local gradient of its hit-rate curve), so in
// equilibrium the normalized gradients equalize across queues — the
// optimality condition of Equation 1 (paper §4.1).
//
// Credits accumulate per queue; once a queue's balance reaches the transfer
// quantum, memory physically moves from a negative-balance queue ("Once a
// queue reaches a certain amount of credits, it is allocated additional
// memory at the expense of another queue"). With quantum == credit (the
// default) every shadow hit moves memory immediately.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace cliffhanger {

// Capacity-control surface the climber drives. Implemented by adapters around
// slab-class queues (within-app climbing) and around whole applications
// (cross-app climbing).
class ClimbableQueue {
 public:
  virtual ~ClimbableQueue() = default;
  [[nodiscard]] virtual uint64_t capacity_bytes() const = 0;
  virtual void SetCapacityBytes(uint64_t bytes) = 0;
  // Floor below which the climber will not shrink this queue.
  [[nodiscard]] virtual uint64_t min_capacity_bytes() const = 0;
};

struct HillClimberConfig {
  uint64_t credit_bytes = 4096;    // paper §5.3: 1-4 KB works best
  uint64_t quantum_bytes = 4096;   // transfer granularity
};

class HillClimber {
 public:
  explicit HillClimber(const HillClimberConfig& config, uint64_t seed = 1);

  // Registers a queue; returns its index. Queues may be added lazily as
  // slab classes materialize.
  size_t AddQueue(ClimbableQueue* queue);

  // Called when queue i's hill shadow received a hit.
  void OnShadowHit(size_t i);

  [[nodiscard]] size_t num_queues() const { return queues_.size(); }
  [[nodiscard]] int64_t credits(size_t i) const { return credits_[i]; }
  [[nodiscard]] uint64_t total_transfers() const { return transfers_; }
  [[nodiscard]] uint64_t transferred_bytes() const {
    return transferred_bytes_;
  }

 private:
  // Move up to `quantum_bytes` into queue i from a random donor with spare
  // capacity. Returns true when memory moved.
  bool TryTransfer(size_t i);

  HillClimberConfig config_;
  Rng rng_;
  std::vector<ClimbableQueue*> queues_;
  std::vector<int64_t> credits_;
  uint64_t transfers_ = 0;
  uint64_t transferred_bytes_ = 0;
};

}  // namespace cliffhanger
