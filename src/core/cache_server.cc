#include "core/cache_server.h"

#include <algorithm>
#include <cassert>

#include "cache/arc_queue.h"
#include "cache/global_log_queue.h"
#include "cache/lfu_queue.h"
#include "cache/slab_class_queue.h"
#include "util/hashing.h"

namespace cliffhanger {

// --- AppCache internals ---

struct AppCache::ClassEntry {
  int slab_class = 0;
  std::unique_ptr<ClassQueue> queue;
  // Non-null only for the LRU/midpoint slab queue (shadow-capable).
  PartitionedSlabQueue* partitioned = nullptr;
  std::unique_ptr<CliffScaler> scaler;
  std::unique_ptr<ClassAdapter> adapter;
  size_t climber_index = 0;
  bool in_climber = false;
  ClassStats stats;
};

// Climber control surface for one slab-class queue: resizing also informs
// the class's cliff scaler so it can re-derive its partition.
class AppCache::ClassAdapter final : public ClimbableQueue {
 public:
  ClassAdapter(ClassEntry* entry, uint64_t min_bytes)
      : entry_(entry), min_bytes_(min_bytes) {}

  [[nodiscard]] uint64_t capacity_bytes() const override {
    return entry_->queue->capacity_bytes();
  }
  void SetCapacityBytes(uint64_t bytes) override {
    entry_->queue->SetCapacityBytes(bytes);
    if (entry_->scaler) entry_->scaler->OnCapacityChanged();
  }
  [[nodiscard]] uint64_t min_capacity_bytes() const override {
    return min_bytes_;
  }

 private:
  ClassEntry* entry_;
  uint64_t min_bytes_;
};

AppCache::AppCache(uint32_t app_id, uint64_t reservation,
                   const ServerConfig& config, CacheServer* server)
    : app_id_(app_id),
      reservation_(reservation),
      registered_bytes_(reservation),
      free_bytes_(reservation),
      config_(config),
      server_(server) {
  if (config_.allocation == AllocationMode::kCliffhanger &&
      config_.knobs.hill_climbing) {
    climber_ = std::make_unique<HillClimber>(
        config_.knobs.climber, HashCombine(config_.seed, app_id));
  }
  if (config_.store_values) {
    // Value residency is driven by the partitioned queues' eviction
    // listener; the other schemes have no shadow/demotion callbacks.
    assert(config_.eviction == EvictionScheme::kLru ||
           config_.eviction == EvictionScheme::kMidpoint);
    value_store_ = std::make_unique<ValueStore>();
  }
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    // The log owns the whole reservation outright (100% utilization).
    auto& entry = GetOrCreateEntry(0);
    entry.queue->SetCapacityBytes(reservation_);
    free_bytes_ = 0;
  }
}

AppCache::~AppCache() = default;

AppCache::ClassEntry& AppCache::GetOrCreateEntry(int slab_class) {
  auto it = classes_.find(slab_class);
  if (it != classes_.end()) return *it->second;

  auto entry = std::make_unique<ClassEntry>();
  entry->slab_class = slab_class;
  const uint32_t chunk = ChunkSize(slab_class);

  switch (config_.eviction) {
    case EvictionScheme::kArc:
      entry->queue = std::make_unique<ArcQueue>(chunk);
      break;
    case EvictionScheme::kLfu:
      entry->queue = std::make_unique<LfuQueue>(chunk);
      break;
    case EvictionScheme::kGlobalLog:
      entry->queue = std::make_unique<GlobalLogQueue>(0);
      break;
    case EvictionScheme::kLru:
    case EvictionScheme::kMidpoint: {
      PartitionConfig pc;
      pc.queue.chunk_size = chunk;
      pc.queue.policy = config_.eviction == EvictionScheme::kMidpoint
                            ? InsertionPolicy::kMidpoint
                            : InsertionPolicy::kLru;
      pc.queue.tail_items = config_.tail_items;
      pc.queue.cliff_shadow_items = config_.cliff_shadow_items;
      pc.queue.hill_shadow_bytes = config_.hill_shadow_bytes;
      auto partitioned = std::make_unique<PartitionedSlabQueue>(pc);
      entry->partitioned = partitioned.get();
      if (value_store_) partitioned->SetListener(value_store_.get());
      entry->queue = std::move(partitioned);
      break;
    }
  }

  if (config_.allocation == AllocationMode::kCliffhanger &&
      entry->partitioned != nullptr) {
    if (config_.knobs.cliff_scaling) {
      entry->scaler = std::make_unique<CliffScaler>(entry->partitioned,
                                                    config_.knobs.scaler);
    }
    if (climber_) {
      const uint64_t min_bytes =
          std::max<uint64_t>(config_.page_size, 4ULL * chunk);
      entry->adapter = std::make_unique<ClassAdapter>(entry.get(), min_bytes);
      entry->climber_index = climber_->AddQueue(entry->adapter.get());
      entry->in_climber = true;
    }
  }

  auto [inserted, ok] = classes_.emplace(slab_class, std::move(entry));
  (void)ok;
  return *inserted->second;
}

void AppCache::EnsureCapacityFor(ClassEntry& entry, uint64_t needed_bytes) {
  if (config_.allocation == AllocationMode::kStatic) return;
  if (config_.eviction == EvictionScheme::kGlobalLog) return;
  // FCFS page grants: grow the class while the app still has free memory
  // and the queue cannot hold the incoming item. Deliberately page-by-page
  // — the scaler's OnCapacityChanged advances its cliff-exit hysteresis
  // per call, so batching a multi-page grant (chunk_size > page_size
  // classes) into one capacity step would change controller dynamics.
  // Per-page resizes are cheap now: the arena/index reserve underneath
  // grows geometrically, never by a page's worth of copying.
  while (entry.queue->used_bytes() + needed_bytes >
             entry.queue->capacity_bytes() &&
         free_bytes_ >= config_.page_size) {
    free_bytes_ -= config_.page_size;
    entry.queue->SetCapacityBytes(entry.queue->capacity_bytes() +
                                  config_.page_size);
    if (entry.scaler) entry.scaler->OnCapacityChanged();
  }
}

Outcome AppCache::Get(const ItemMeta& item) {
  Outcome outcome;
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    auto& entry = GetOrCreateEntry(0);
    ++entry.stats.gets;
    const GetResult r = entry.queue->Get(item);
    entry.stats.hits += r.hit ? 1 : 0;
    outcome.hit = r.hit;
    outcome.slab_class = 0;
    outcome.region = r.region;
    return outcome;
  }

  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  return GetAtClass(slab_class, item);
}

Outcome AppCache::GetAtClass(int slab_class, const ItemMeta& item) {
  Outcome outcome;
  outcome.slab_class = slab_class;
  if (slab_class < 0) {
    outcome.cacheable = false;
    return outcome;
  }
  auto& entry = GetOrCreateEntry(slab_class);
  ++entry.stats.gets;

  // ARC admits on miss inside Get(); make sure it has room to do so.
  if (config_.eviction == EvictionScheme::kArc) {
    EnsureCapacityFor(entry, ChunkSize(slab_class));
  }

  const GetResult r = entry.queue->Get(item);
  outcome.hit = r.hit;
  outcome.region = r.region;
  outcome.expired = r.expired;
  if (r.hit) {
    ++entry.stats.hits;
    if (r.region == HitRegion::kPhysicalTail) ++entry.stats.tail_hits;
  } else if (r.region == HitRegion::kCliffShadow) {
    ++entry.stats.cliff_shadow_hits;
  } else if (r.region == HitRegion::kHillShadow) {
    ++entry.stats.hill_shadow_hits;
  }

  if (config_.allocation == AllocationMode::kCliffhanger) {
    if (r.region == HitRegion::kHillShadow) {
      if (climber_) climber_->OnShadowHit(entry.climber_index);
      if (config_.knobs.cross_app && server_ != nullptr) {
        server_->OnAppShadowHit(cross_index_, HillGradientWeight(entry));
      }
    }
    if (entry.scaler) {
      entry.scaler->OnAccess(r);
      if (!r.hit) entry.scaler->OnMiss();
    }
  }
  return outcome;
}

double AppCache::HillGradientWeight(const ClassEntry& entry) const {
  const CliffScaler* scaler = entry.scaler.get();
  if (scaler == nullptr || !scaler->on_cliff()) return 1.0;
  // On a cliff the scaler serves the concave hull between its two pointers,
  // whose slope exceeds the raw curve gradient the hill shadow samples by
  // roughly (pointer span) / (operating point) — the hull bridges that many
  // extra items' worth of rise per marginal item. Clamp: the pointers can
  // run far ahead of the operating point while the hull is still forming.
  const auto operating_items = static_cast<double>(
      entry.partitioned != nullptr ? entry.partitioned->capacity_items() : 0);
  if (operating_items <= 0.0) return 1.0;
  const double span = scaler->right_pointer() - scaler->left_pointer();
  if (span <= 0.0) return 1.0;
  return std::min(1.0 + span / operating_items,
                  config_.knobs.cross_app_max_gradient_weight);
}

bool AppCache::Set(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    auto& entry = GetOrCreateEntry(0);
    ++entry.stats.sets;
    entry.queue->Fill(item);
    return true;
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return false;  // uncacheable
  auto& entry = GetOrCreateEntry(slab_class);
  ++entry.stats.sets;
  EnsureCapacityFor(entry, ChunkSize(slab_class));
  entry.queue->Fill(item);
  return true;
}

bool AppCache::Touch(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    return GetOrCreateEntry(0).queue->Touch(item);
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return false;
  // Like Delete, never materializes a class: touching an absent key must
  // not allocate queue state.
  const auto it = classes_.find(slab_class);
  return it != classes_.end() && it->second->queue->Touch(item);
}

Outcome AppCache::Mutate(MutateOp op, const ItemMeta& item) {
  Outcome outcome;
  switch (op) {
    case MutateOp::kFill:
      outcome.cacheable = Set(item);
      break;
    case MutateOp::kTouch:
      outcome.hit = Touch(item);
      break;
    case MutateOp::kErase:
      Delete(item);
      break;
  }
  return outcome;
}

void AppCache::Delete(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    GetOrCreateEntry(0).queue->Delete(item.key);
    return;
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return;
  const auto it = classes_.find(slab_class);
  if (it != classes_.end()) it->second->queue->Delete(item.key);
}

// --- Value-mode verbs ---

PartitionedSlabQueue* AppCache::PartitionedFor(int slab_class) const {
  const auto it = classes_.find(slab_class);
  return it == classes_.end() ? nullptr : it->second->partitioned;
}

void AppCache::RegisterStoredValue(uint64_t key, int slab_class,
                                   const void* data, uint32_t size,
                                   uint32_t flags, uint64_t cas,
                                   uint32_t stored_s) {
  PartitionedSlabQueue* q = PartitionedFor(slab_class);
  if (q == nullptr) return;
  switch (q->ResidencyOf(key)) {
    case Residency::kPhysical:
      value_store_->StorePhysical(key, slab_class, data, size, flags, cas,
                                  stored_s);
      break;
    case Residency::kShadow:
      value_store_->RegisterShadow(key, slab_class);
      break;
    case Residency::kAbsent:
      break;
  }
}

ValueOutcome AppCache::GetByKey(uint64_t key, uint32_t key_size,
                                uint32_t now_s, uint32_t flush_at_s) {
  assert(value_store_);
  ValueOutcome vo;
  const ValueStore::Ref ref = value_store_->Find(key);
  // Unknown keys probe the class a zero-byte value of this key would land
  // in — the smallest class that fits the key itself.
  const int slab_class = ref.found
                             ? ref.slab_class
                             : SlabClassFor(ExactFootprint(key_size, 0));

  // flush_all enforcement happens before the counted probe, and reclaims
  // without statistics: the old adapter's flush reclamation was likewise
  // invisible to the core. Entries that are ALSO past their own expiry are
  // left for the counted lazy-expiry path below so get_expired stays
  // truthful.
  if (ref.has_slot() && flush_at_s != 0 && now_s >= flush_at_s) {
    PartitionedSlabQueue* q = PartitionedFor(ref.slab_class);
    uint32_t expiry_s = 0;
    if (q != nullptr && q->PeekPhysical(key, &expiry_s) &&
        !ExpiredAt(expiry_s, now_s) &&
        value_store_->Header(ref).stored_s < flush_at_s) {
      q->Delete(key);  // the listener frees the slot and forgets the key
      vo.flush_reclaimed = true;
      vo.outcome.slab_class = ref.slab_class;
      vo.outcome.cacheable = false;
      return vo;
    }
  }

  ItemMeta item;
  item.key = key;
  item.key_size = key_size;
  item.value_size = 0;
  item.now_s = now_s;
  vo.outcome = GetAtClass(slab_class, item);
  vo.expired = vo.outcome.expired;
  if (vo.outcome.hit) {
    // Residency invariant: a queue hit implies a live slot (shadow entries
    // can only re-enter the physical segments through Fill).
    const ValueStore::Ref hit_ref = value_store_->Find(key);
    if (hit_ref.has_slot()) {
      value_store_->FillView(hit_ref, &vo.view);
      uint32_t expiry_s = 0;
      PartitionedSlabQueue* q = PartitionedFor(hit_ref.slab_class);
      if (q != nullptr) (void)q->PeekPhysical(key, &expiry_s);
      vo.view.expiry_s = expiry_s;
      vo.valid = true;
    }
  }
  return vo;
}

ValueOutcome AppCache::PeekByKey(uint64_t key, uint32_t now_s,
                                 uint32_t flush_at_s) {
  assert(value_store_);
  ValueOutcome vo;
  const ValueStore::Ref ref = value_store_->Find(key);
  if (!ref.has_slot()) return vo;  // absent or shadow-only: nothing resident
  PartitionedSlabQueue* q = PartitionedFor(ref.slab_class);
  uint32_t expiry_s = 0;
  if (q == nullptr || !q->PeekPhysical(key, &expiry_s)) return vo;
  if (ExpiredAt(expiry_s, now_s)) {
    q->Delete(key);
    vo.expired = true;
    return vo;
  }
  if (flush_at_s != 0 && now_s >= flush_at_s &&
      value_store_->Header(ref).stored_s < flush_at_s) {
    q->Delete(key);
    vo.flush_reclaimed = true;
    return vo;
  }
  value_store_->FillView(ref, &vo.view);
  vo.view.expiry_s = expiry_s;
  vo.valid = true;
  vo.outcome.slab_class = ref.slab_class;
  return vo;
}

bool AppCache::SetValue(const ItemMeta& item, const void* data,
                        uint32_t flags, uint64_t cas) {
  assert(value_store_);
  const int new_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  const ValueStore::Ref old = value_store_->Find(item.key);
  if (new_class < 0) {
    // Too large for any class: memcached drops the old incarnation
    // entirely. Uncounted, exactly like the metadata Set's false return.
    if (old.found) {
      PartitionedSlabQueue* q = PartitionedFor(old.slab_class);
      if (q != nullptr) q->Delete(item.key);
    }
    return false;
  }
  if (old.found && old.slab_class != new_class) {
    // The key changes slab class: evict the old incarnation explicitly.
    // (Same-class replacement needs nothing here — Fill erases first, and
    // the listener's OnKeyGone frees the old slot.)
    PartitionedSlabQueue* q = PartitionedFor(old.slab_class);
    if (q != nullptr) q->Delete(item.key);
  }
  const bool admitted = Set(item);
  assert(admitted);  // new_class >= 0
  (void)admitted;
  RegisterStoredValue(item.key, new_class, data, item.value_size, flags, cas,
                      item.now_s);
  return true;
}

ReplaceResult AppCache::ReplaceValue(uint64_t key, uint32_t key_size,
                                     const void* data, uint32_t size,
                                     uint64_t cas, uint32_t now_s) {
  assert(value_store_);
  const ValueStore::Ref ref = value_store_->Find(key);
  if (!ref.has_slot()) return ReplaceResult::kFailed;
  const int new_class = SlabClassFor(ExactFootprint(key_size, size));
  PartitionedSlabQueue* old_q = PartitionedFor(ref.slab_class);
  if (new_class < 0) {
    // The rewritten object fits no class: the old incarnation dies (the
    // adapter surfaces SERVER_ERROR for the rewrite itself).
    if (old_q != nullptr) old_q->Delete(key);
    return ReplaceResult::kFailed;
  }
  if (new_class == ref.slab_class) {
    // Same footprint class: overwrite the slot and refresh recency without
    // minting phantom set statistics. Flags survive the rewrite.
    const uint32_t flags = value_store_->Header(ref).flags;
    value_store_->RewriteInPlace(ref, data, size, flags, cas, now_s);
    ItemMeta item;
    item.key = key;
    item.key_size = key_size;
    item.value_size = size;
    item.expiry_s = kKeepExpiry;
    item.now_s = now_s;
    Touch(item);
    return ReplaceResult::kInPlace;
  }
  // Re-slab: preserve the stored expiry and flags across the move. This is
  // a real re-fill, counted like a Set.
  uint32_t expiry_s = 0;
  if (old_q != nullptr) (void)old_q->PeekPhysical(key, &expiry_s);
  const uint32_t flags = value_store_->Header(ref).flags;
  if (old_q != nullptr) old_q->Delete(key);  // frees the old slot
  ItemMeta item;
  item.key = key;
  item.key_size = key_size;
  item.value_size = size;
  item.expiry_s = expiry_s;
  item.now_s = now_s;
  const bool admitted = Set(item);
  assert(admitted);  // new_class >= 0
  (void)admitted;
  RegisterStoredValue(key, new_class, data, size, flags, cas, now_s);
  return ReplaceResult::kReSlabbed;
}

bool AppCache::TouchByKey(uint64_t key, uint32_t key_size, uint32_t expiry_s,
                          uint32_t now_s, uint32_t flush_at_s) {
  assert(value_store_);
  const ValueStore::Ref ref = value_store_->Find(key);
  if (!ref.has_slot()) return false;
  PartitionedSlabQueue* q = PartitionedFor(ref.slab_class);
  uint32_t stored_expiry_s = 0;
  if (q == nullptr || !q->PeekPhysical(key, &stored_expiry_s)) return false;
  if (ExpiredAt(stored_expiry_s, now_s)) {
    q->Delete(key);
    return false;
  }
  const ValueArena::SlotHeader& h = value_store_->Header(ref);
  if (flush_at_s != 0 && now_s >= flush_at_s && h.stored_s < flush_at_s) {
    q->Delete(key);
    return false;
  }
  ItemMeta item;
  item.key = key;
  item.key_size = key_size;
  item.value_size = h.value_size;
  item.expiry_s = expiry_s;
  item.now_s = now_s;
  return Touch(item);
}

bool AppCache::DeleteByKey(uint64_t key, uint32_t now_s,
                           uint32_t flush_at_s) {
  assert(value_store_);
  const ValueStore::Ref ref = value_store_->Find(key);
  // No index entry means no queue state either (every Fill registers), so
  // an unknown key is a pure no-op.
  if (!ref.found) return false;
  PartitionedSlabQueue* q = PartitionedFor(ref.slab_class);
  bool valid = false;
  if (ref.has_slot() && q != nullptr) {
    uint32_t expiry_s = 0;
    if (q->PeekPhysical(key, &expiry_s) && !ExpiredAt(expiry_s, now_s)) {
      const uint32_t stored_s = value_store_->Header(ref).stored_s;
      valid =
          flush_at_s == 0 || now_s < flush_at_s || stored_s >= flush_at_s;
    }
  }
  if (q != nullptr) q->Delete(key);  // physical or shadow; listener cleans up
  return valid;
}

void AppCache::SetStaticAllocation(
    const std::map<int, uint64_t>& bytes_per_class) {
  uint64_t total = 0;
  for (const auto& [slab_class, bytes] : bytes_per_class) {
    auto& entry = GetOrCreateEntry(slab_class);
    entry.queue->SetCapacityBytes(bytes);
    if (entry.scaler) entry.scaler->OnCapacityChanged();
    total += bytes;
  }
  free_bytes_ = total >= reservation_ ? 0 : reservation_ - total;
}

uint64_t AppCache::allocated_bytes() const {
  uint64_t total = 0;
  for (const auto& [slab_class, entry] : classes_) {
    total += entry->queue->capacity_bytes();
  }
  return total;
}

uint64_t AppCache::shadow_overhead_bytes() const {
  uint64_t total = 0;
  for (const auto& [slab_class, entry] : classes_) {
    if (entry->partitioned != nullptr) {
      total += entry->partitioned->shadow_overhead_bytes();
    }
  }
  return total;
}

void AppCache::ShrinkProportionally(uint64_t deficit) {
  const uint64_t allocated = allocated_bytes();
  if (allocated == 0 || deficit == 0) return;
  uint64_t remaining = deficit;
  for (auto& [slab_class, entry] : classes_) {
    if (remaining == 0) break;
    const uint64_t cap = entry->queue->capacity_bytes();
    uint64_t cut = static_cast<uint64_t>(
        static_cast<double>(cap) / static_cast<double>(allocated) *
        static_cast<double>(deficit));
    cut = std::min({cut, cap, remaining});
    entry->queue->SetCapacityBytes(cap - cut);
    if (entry->scaler) entry->scaler->OnCapacityChanged();
    remaining -= cut;
  }
  // Rounding leftovers: take from the largest queue.
  while (remaining > 0) {
    ClassEntry* largest = nullptr;
    for (auto& [slab_class, entry] : classes_) {
      if (largest == nullptr ||
          entry->queue->capacity_bytes() > largest->queue->capacity_bytes()) {
        largest = entry.get();
      }
    }
    if (largest == nullptr || largest->queue->capacity_bytes() == 0) break;
    const uint64_t cut =
        std::min(remaining, largest->queue->capacity_bytes());
    largest->queue->SetCapacityBytes(largest->queue->capacity_bytes() - cut);
    if (largest->scaler) largest->scaler->OnCapacityChanged();
    remaining -= cut;
  }
}

void AppCache::SetReservation(uint64_t bytes) {
  if (bytes >= reservation_) {
    free_bytes_ += bytes - reservation_;
    reservation_ = bytes;
    return;
  }
  uint64_t deficit = reservation_ - bytes;
  const uint64_t from_free = std::min(free_bytes_, deficit);
  free_bytes_ -= from_free;
  deficit -= from_free;
  ShrinkProportionally(deficit);
  reservation_ = bytes;
}

void AppCache::ResizeReservation(uint64_t bytes) {
  registered_bytes_ = bytes;
  SetReservation(bytes);
}

bool AppCache::CheckInvariants() const {
  for (const auto& [slab_class, entry] : classes_) {
    if (entry->partitioned != nullptr &&
        !entry->partitioned->CheckInvariants()) {
      return false;
    }
  }
  if (value_store_ && !value_store_->CheckInvariants()) return false;
  // Conservation: FCFS/Cliffhanger grants and climber transfers only move
  // bytes between free_bytes_ and class capacities. kStatic allocations and
  // the global log are pinned independently of the reservation.
  if (config_.allocation != AllocationMode::kStatic &&
      config_.eviction != EvictionScheme::kGlobalLog &&
      allocated_bytes() + free_bytes_ != reservation_) {
    return false;
  }
  return true;
}

std::vector<AppCache::ClassInfo> AppCache::ClassInfos() const {
  std::vector<ClassInfo> infos;
  infos.reserve(classes_.size());
  for (const auto& [slab_class, entry] : classes_) {
    ClassInfo info;
    info.slab_class = slab_class;
    info.capacity_bytes = entry->queue->capacity_bytes();
    info.used_bytes = entry->queue->used_bytes();
    info.stats = entry->stats;
    infos.push_back(info);
  }
  return infos;
}

ClassStats AppCache::TotalStats() const {
  ClassStats total;
  for (const auto& [slab_class, entry] : classes_) total += entry->stats;
  return total;
}

ClassStats AppCache::StatsForClass(int slab_class) const {
  const auto it = classes_.find(slab_class);
  return it == classes_.end() ? ClassStats{} : it->second->stats;
}

// --- CacheServer ---

// Climber surface for a whole application (cross-app mode): "queue size" is
// the app's reservation. The floor is computed live from the registered
// (administrative) reservation, so an admin resize through ResizeReservation
// moves the floor with it — a frozen construction-time floor goes stale the
// first time a tenant is resized.
class CacheServer::AppAdapter final : public ClimbableQueue {
 public:
  AppAdapter(AppCache* app, uint64_t page_size)
      : app_(app), page_size_(page_size) {}
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return app_->reservation();
  }
  void SetCapacityBytes(uint64_t bytes) override {
    app_->SetReservation(bytes);
  }
  [[nodiscard]] uint64_t min_capacity_bytes() const override {
    // A tenant may never be squeezed below a handful of pages or an eighth
    // of its paid reservation, whichever is larger.
    return std::max<uint64_t>(4 * page_size_,
                              app_->registered_reservation() / 8);
  }

 private:
  AppCache* app_;
  uint64_t page_size_;
};

CacheServer::CacheServer(const ServerConfig& config) : config_(config) {
  if (config_.allocation == AllocationMode::kCliffhanger &&
      config_.knobs.cross_app) {
    HillClimberConfig cross = config_.knobs.climber;
    cross.max_credit_quanta = config_.knobs.cross_app_max_credit_quanta;
    cross_climber_ = std::make_unique<HillClimber>(
        cross, HashCombine(config_.seed, 0xA99ULL));
  }
}

CacheServer::~CacheServer() = default;

AppCache& CacheServer::AddApp(uint32_t app_id, uint64_t reservation) {
  assert(apps_.find(app_id) == apps_.end());
  auto app = std::make_unique<AppCache>(app_id, reservation, config_, this);
  AppCache* raw = app.get();
  apps_.emplace(app_id, std::move(app));
  if (cross_climber_) {
    auto adapter = std::make_unique<AppAdapter>(raw, config_.page_size);
    const size_t index = cross_climber_->AddQueue(adapter.get());
    raw->cross_index_ = index;  // cached for the hot GET path
    if (index == app_adapters_.size()) {
      app_adapters_.push_back(std::move(adapter));
    } else {
      // The climber handed back a slot freed by RemoveApp.
      assert(index < app_adapters_.size() && app_adapters_[index] == nullptr);
      app_adapters_[index] = std::move(adapter);
    }
  }
  return *raw;
}

bool CacheServer::RemoveApp(uint32_t app_id) {
  const auto it = apps_.find(app_id);
  if (it == apps_.end()) return false;
  AppCache* departing = it->second.get();
  const uint64_t freed = departing->reservation();
  if (cross_climber_) {
    const size_t index = departing->cross_index_;
    cross_climber_->RemoveQueue(index);
    app_adapters_[index] = nullptr;
  }
  // Destroying the AppCache tears down every class queue (physical + shadow
  // nodes) and the value store's arenas — the departing tenant's memory is
  // reclaimed eagerly, not lazily via eviction pressure.
  apps_.erase(it);
  // In cross-app mode the server-wide total is the paper's fixed memory
  // budget, so the departing tenant's share flows to the survivors.
  if (cross_climber_) RedistributeReservation(freed);
  return true;
}

void CacheServer::RedistributeReservation(uint64_t bytes) {
  if (bytes == 0 || apps_.empty()) return;
  uint64_t total = 0;
  for (const auto& [id, app] : apps_) total += app->reservation();

  // Largest-remainder split proportional to current reservations: grants
  // sum to exactly `bytes`, and the (remainder desc, app_id asc) ordering
  // keeps the split deterministic.
  struct Share {
    uint32_t app_id;
    AppCache* app;
    uint64_t grant;
    uint64_t remainder;
  };
  std::vector<Share> shares;
  shares.reserve(apps_.size());
  uint64_t granted = 0;
  for (auto& [id, app] : apps_) {
    Share s;
    s.app_id = id;
    s.app = app.get();
    if (total == 0) {
      s.grant = bytes / apps_.size();
      s.remainder = 0;  // resolve ties purely by app_id below
    } else {
      const auto numer = static_cast<unsigned __int128>(bytes) *
                         static_cast<unsigned __int128>(app->reservation());
      s.grant = static_cast<uint64_t>(numer / total);
      s.remainder = static_cast<uint64_t>(numer % total);
    }
    granted += s.grant;
    shares.push_back(s);
  }
  uint64_t leftover = bytes - granted;
  std::sort(shares.begin(), shares.end(), [](const Share& a, const Share& b) {
    if (a.remainder != b.remainder) return a.remainder > b.remainder;
    return a.app_id < b.app_id;
  });
  for (auto& s : shares) {
    if (leftover == 0) break;
    ++s.grant;
    --leftover;
  }
  for (const auto& s : shares) {
    if (s.grant > 0) s.app->SetReservation(s.app->reservation() + s.grant);
  }
}

AppCache* CacheServer::app(uint32_t app_id) {
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : it->second.get();
}

const AppCache* CacheServer::app(uint32_t app_id) const {
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : it->second.get();
}

// Routed verbs soft-fail on an unknown app: the response reads as an
// uncacheable miss / failed store, never queue state. See the header note
// on the RemoveApp race with in-flight daemon ops.

Outcome CacheServer::Get(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  if (a == nullptr) {
    Outcome o;
    o.cacheable = false;
    return o;
  }
  return a->Get(item);
}

bool CacheServer::Set(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  return a != nullptr && a->Set(item);
}

bool CacheServer::Touch(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  return a != nullptr && a->Touch(item);
}

void CacheServer::Delete(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  if (a != nullptr) a->Delete(item);
}

Outcome CacheServer::Mutate(uint32_t app_id, MutateOp op,
                            const ItemMeta& item) {
  AppCache* a = app(app_id);
  if (a == nullptr) {
    Outcome o;
    o.cacheable = false;
    return o;
  }
  return a->Mutate(op, item);
}

ValueOutcome CacheServer::GetByKey(uint32_t app_id, uint64_t key,
                                   uint32_t key_size, uint32_t now_s,
                                   uint32_t flush_at_s) {
  AppCache* a = app(app_id);
  if (a == nullptr) {
    ValueOutcome vo;
    vo.outcome.cacheable = false;
    return vo;
  }
  return a->GetByKey(key, key_size, now_s, flush_at_s);
}

ValueOutcome CacheServer::PeekByKey(uint32_t app_id, uint64_t key,
                                    uint32_t now_s, uint32_t flush_at_s) {
  AppCache* a = app(app_id);
  if (a == nullptr) {
    ValueOutcome vo;
    vo.outcome.cacheable = false;
    return vo;
  }
  return a->PeekByKey(key, now_s, flush_at_s);
}

bool CacheServer::SetValue(uint32_t app_id, const ItemMeta& item,
                           const void* data, uint32_t flags, uint64_t cas) {
  AppCache* a = app(app_id);
  return a != nullptr && a->SetValue(item, data, flags, cas);
}

ReplaceResult CacheServer::ReplaceValue(uint32_t app_id, uint64_t key,
                                        uint32_t key_size, const void* data,
                                        uint32_t size, uint64_t cas,
                                        uint32_t now_s) {
  AppCache* a = app(app_id);
  if (a == nullptr) return ReplaceResult::kFailed;
  return a->ReplaceValue(key, key_size, data, size, cas, now_s);
}

bool CacheServer::TouchByKey(uint32_t app_id, uint64_t key, uint32_t key_size,
                             uint32_t expiry_s, uint32_t now_s,
                             uint32_t flush_at_s) {
  AppCache* a = app(app_id);
  return a != nullptr &&
         a->TouchByKey(key, key_size, expiry_s, now_s, flush_at_s);
}

bool CacheServer::DeleteByKey(uint32_t app_id, uint64_t key, uint32_t now_s,
                              uint32_t flush_at_s) {
  AppCache* a = app(app_id);
  return a != nullptr && a->DeleteByKey(key, now_s, flush_at_s);
}

void CacheServer::OnAppShadowHit(size_t app_index, double weight) {
  if (cross_climber_) cross_climber_->OnShadowHit(app_index, weight);
}

ClassStats CacheServer::TotalStats() const {
  ClassStats total;
  for (const auto& [id, app] : apps_) total += app->TotalStats();
  return total;
}

std::vector<uint32_t> CacheServer::app_ids() const {
  std::vector<uint32_t> ids;
  ids.reserve(apps_.size());
  for (const auto& [id, app] : apps_) ids.push_back(id);
  return ids;
}

uint64_t CacheServer::total_reservation() const {
  uint64_t total = 0;
  for (const auto& [id, app] : apps_) total += app->reservation();
  return total;
}

bool CacheServer::CheckInvariants() const {
  for (const auto& [id, app] : apps_) {
    if (!app->CheckInvariants()) return false;
  }
  return true;
}

}  // namespace cliffhanger
