#include "core/cache_server.h"

#include <algorithm>
#include <cassert>

#include "cache/arc_queue.h"
#include "cache/global_log_queue.h"
#include "cache/lfu_queue.h"
#include "util/hashing.h"

namespace cliffhanger {

// --- AppCache internals ---

struct AppCache::ClassEntry {
  int slab_class = 0;
  std::unique_ptr<ClassQueue> queue;
  // Non-null only for the LRU/midpoint slab queue (shadow-capable).
  PartitionedSlabQueue* partitioned = nullptr;
  std::unique_ptr<CliffScaler> scaler;
  std::unique_ptr<ClassAdapter> adapter;
  size_t climber_index = 0;
  bool in_climber = false;
  ClassStats stats;
};

// Climber control surface for one slab-class queue: resizing also informs
// the class's cliff scaler so it can re-derive its partition.
class AppCache::ClassAdapter final : public ClimbableQueue {
 public:
  ClassAdapter(ClassEntry* entry, uint64_t min_bytes)
      : entry_(entry), min_bytes_(min_bytes) {}

  [[nodiscard]] uint64_t capacity_bytes() const override {
    return entry_->queue->capacity_bytes();
  }
  void SetCapacityBytes(uint64_t bytes) override {
    entry_->queue->SetCapacityBytes(bytes);
    if (entry_->scaler) entry_->scaler->OnCapacityChanged();
  }
  [[nodiscard]] uint64_t min_capacity_bytes() const override {
    return min_bytes_;
  }

 private:
  ClassEntry* entry_;
  uint64_t min_bytes_;
};

AppCache::AppCache(uint32_t app_id, uint64_t reservation,
                   const ServerConfig& config, CacheServer* server)
    : app_id_(app_id),
      reservation_(reservation),
      free_bytes_(reservation),
      config_(config),
      server_(server) {
  if (config_.allocation == AllocationMode::kCliffhanger &&
      config_.knobs.hill_climbing) {
    climber_ = std::make_unique<HillClimber>(
        config_.knobs.climber, HashCombine(config_.seed, app_id));
  }
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    // The log owns the whole reservation outright (100% utilization).
    auto& entry = GetOrCreateEntry(0);
    entry.queue->SetCapacityBytes(reservation_);
    free_bytes_ = 0;
  }
}

AppCache::~AppCache() = default;

AppCache::ClassEntry& AppCache::GetOrCreateEntry(int slab_class) {
  auto it = classes_.find(slab_class);
  if (it != classes_.end()) return *it->second;

  auto entry = std::make_unique<ClassEntry>();
  entry->slab_class = slab_class;
  const uint32_t chunk = ChunkSize(slab_class);

  switch (config_.eviction) {
    case EvictionScheme::kArc:
      entry->queue = std::make_unique<ArcQueue>(chunk);
      break;
    case EvictionScheme::kLfu:
      entry->queue = std::make_unique<LfuQueue>(chunk);
      break;
    case EvictionScheme::kGlobalLog:
      entry->queue = std::make_unique<GlobalLogQueue>(0);
      break;
    case EvictionScheme::kLru:
    case EvictionScheme::kMidpoint: {
      PartitionConfig pc;
      pc.queue.chunk_size = chunk;
      pc.queue.policy = config_.eviction == EvictionScheme::kMidpoint
                            ? InsertionPolicy::kMidpoint
                            : InsertionPolicy::kLru;
      pc.queue.tail_items = config_.tail_items;
      pc.queue.cliff_shadow_items = config_.cliff_shadow_items;
      pc.queue.hill_shadow_bytes = config_.hill_shadow_bytes;
      auto partitioned = std::make_unique<PartitionedSlabQueue>(pc);
      entry->partitioned = partitioned.get();
      entry->queue = std::move(partitioned);
      break;
    }
  }

  if (config_.allocation == AllocationMode::kCliffhanger &&
      entry->partitioned != nullptr) {
    if (config_.knobs.cliff_scaling) {
      entry->scaler = std::make_unique<CliffScaler>(entry->partitioned,
                                                    config_.knobs.scaler);
    }
    if (climber_) {
      const uint64_t min_bytes =
          std::max<uint64_t>(config_.page_size, 4ULL * chunk);
      entry->adapter = std::make_unique<ClassAdapter>(entry.get(), min_bytes);
      entry->climber_index = climber_->AddQueue(entry->adapter.get());
      entry->in_climber = true;
    }
  }

  auto [inserted, ok] = classes_.emplace(slab_class, std::move(entry));
  (void)ok;
  return *inserted->second;
}

void AppCache::EnsureCapacityFor(ClassEntry& entry, uint64_t needed_bytes) {
  if (config_.allocation == AllocationMode::kStatic) return;
  if (config_.eviction == EvictionScheme::kGlobalLog) return;
  // FCFS page grants: grow the class while the app still has free memory
  // and the queue cannot hold the incoming item. Deliberately page-by-page
  // — the scaler's OnCapacityChanged advances its cliff-exit hysteresis
  // per call, so batching a multi-page grant (chunk_size > page_size
  // classes) into one capacity step would change controller dynamics.
  // Per-page resizes are cheap now: the arena/index reserve underneath
  // grows geometrically, never by a page's worth of copying.
  while (entry.queue->used_bytes() + needed_bytes >
             entry.queue->capacity_bytes() &&
         free_bytes_ >= config_.page_size) {
    free_bytes_ -= config_.page_size;
    entry.queue->SetCapacityBytes(entry.queue->capacity_bytes() +
                                  config_.page_size);
    if (entry.scaler) entry.scaler->OnCapacityChanged();
  }
}

Outcome AppCache::Get(const ItemMeta& item) {
  Outcome outcome;
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    auto& entry = GetOrCreateEntry(0);
    ++entry.stats.gets;
    const GetResult r = entry.queue->Get(item);
    entry.stats.hits += r.hit ? 1 : 0;
    outcome.hit = r.hit;
    outcome.slab_class = 0;
    outcome.region = r.region;
    return outcome;
  }

  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  outcome.slab_class = slab_class;
  if (slab_class < 0) {
    outcome.cacheable = false;
    return outcome;
  }
  auto& entry = GetOrCreateEntry(slab_class);
  ++entry.stats.gets;

  // ARC admits on miss inside Get(); make sure it has room to do so.
  if (config_.eviction == EvictionScheme::kArc) {
    EnsureCapacityFor(entry, ChunkSize(slab_class));
  }

  const GetResult r = entry.queue->Get(item);
  outcome.hit = r.hit;
  outcome.region = r.region;
  if (r.hit) {
    ++entry.stats.hits;
    if (r.region == HitRegion::kPhysicalTail) ++entry.stats.tail_hits;
  } else if (r.region == HitRegion::kCliffShadow) {
    ++entry.stats.cliff_shadow_hits;
  } else if (r.region == HitRegion::kHillShadow) {
    ++entry.stats.hill_shadow_hits;
  }

  if (config_.allocation == AllocationMode::kCliffhanger) {
    if (r.region == HitRegion::kHillShadow) {
      if (climber_) climber_->OnShadowHit(entry.climber_index);
      if (config_.knobs.cross_app && server_ != nullptr) {
        server_->OnAppShadowHit(server_->app_index_.at(app_id_));
      }
    }
    if (entry.scaler) {
      entry.scaler->OnAccess(r);
      if (!r.hit) entry.scaler->OnMiss();
    }
  }
  return outcome;
}

bool AppCache::Set(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    auto& entry = GetOrCreateEntry(0);
    ++entry.stats.sets;
    entry.queue->Fill(item);
    return true;
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return false;  // uncacheable
  auto& entry = GetOrCreateEntry(slab_class);
  ++entry.stats.sets;
  EnsureCapacityFor(entry, ChunkSize(slab_class));
  entry.queue->Fill(item);
  return true;
}

bool AppCache::Touch(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    return GetOrCreateEntry(0).queue->Touch(item);
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return false;
  // Like Delete, never materializes a class: touching an absent key must
  // not allocate queue state.
  const auto it = classes_.find(slab_class);
  return it != classes_.end() && it->second->queue->Touch(item);
}

Outcome AppCache::Mutate(MutateOp op, const ItemMeta& item) {
  Outcome outcome;
  switch (op) {
    case MutateOp::kFill:
      outcome.cacheable = Set(item);
      break;
    case MutateOp::kTouch:
      outcome.hit = Touch(item);
      break;
    case MutateOp::kErase:
      Delete(item);
      break;
  }
  return outcome;
}

void AppCache::Delete(const ItemMeta& item) {
  if (config_.eviction == EvictionScheme::kGlobalLog) {
    GetOrCreateEntry(0).queue->Delete(item.key);
    return;
  }
  const int slab_class =
      SlabClassFor(ExactFootprint(item.key_size, item.value_size));
  if (slab_class < 0) return;
  const auto it = classes_.find(slab_class);
  if (it != classes_.end()) it->second->queue->Delete(item.key);
}

void AppCache::SetStaticAllocation(
    const std::map<int, uint64_t>& bytes_per_class) {
  uint64_t total = 0;
  for (const auto& [slab_class, bytes] : bytes_per_class) {
    auto& entry = GetOrCreateEntry(slab_class);
    entry.queue->SetCapacityBytes(bytes);
    if (entry.scaler) entry.scaler->OnCapacityChanged();
    total += bytes;
  }
  free_bytes_ = total >= reservation_ ? 0 : reservation_ - total;
}

uint64_t AppCache::allocated_bytes() const {
  uint64_t total = 0;
  for (const auto& [slab_class, entry] : classes_) {
    total += entry->queue->capacity_bytes();
  }
  return total;
}

uint64_t AppCache::shadow_overhead_bytes() const {
  uint64_t total = 0;
  for (const auto& [slab_class, entry] : classes_) {
    if (entry->partitioned != nullptr) {
      total += entry->partitioned->shadow_overhead_bytes();
    }
  }
  return total;
}

void AppCache::ShrinkProportionally(uint64_t deficit) {
  const uint64_t allocated = allocated_bytes();
  if (allocated == 0 || deficit == 0) return;
  uint64_t remaining = deficit;
  for (auto& [slab_class, entry] : classes_) {
    if (remaining == 0) break;
    const uint64_t cap = entry->queue->capacity_bytes();
    uint64_t cut = static_cast<uint64_t>(
        static_cast<double>(cap) / static_cast<double>(allocated) *
        static_cast<double>(deficit));
    cut = std::min({cut, cap, remaining});
    entry->queue->SetCapacityBytes(cap - cut);
    if (entry->scaler) entry->scaler->OnCapacityChanged();
    remaining -= cut;
  }
  // Rounding leftovers: take from the largest queue.
  while (remaining > 0) {
    ClassEntry* largest = nullptr;
    for (auto& [slab_class, entry] : classes_) {
      if (largest == nullptr ||
          entry->queue->capacity_bytes() > largest->queue->capacity_bytes()) {
        largest = entry.get();
      }
    }
    if (largest == nullptr || largest->queue->capacity_bytes() == 0) break;
    const uint64_t cut =
        std::min(remaining, largest->queue->capacity_bytes());
    largest->queue->SetCapacityBytes(largest->queue->capacity_bytes() - cut);
    if (largest->scaler) largest->scaler->OnCapacityChanged();
    remaining -= cut;
  }
}

void AppCache::SetReservation(uint64_t bytes) {
  if (bytes >= reservation_) {
    free_bytes_ += bytes - reservation_;
    reservation_ = bytes;
    return;
  }
  uint64_t deficit = reservation_ - bytes;
  const uint64_t from_free = std::min(free_bytes_, deficit);
  free_bytes_ -= from_free;
  deficit -= from_free;
  ShrinkProportionally(deficit);
  reservation_ = bytes;
}

std::vector<AppCache::ClassInfo> AppCache::ClassInfos() const {
  std::vector<ClassInfo> infos;
  infos.reserve(classes_.size());
  for (const auto& [slab_class, entry] : classes_) {
    ClassInfo info;
    info.slab_class = slab_class;
    info.capacity_bytes = entry->queue->capacity_bytes();
    info.used_bytes = entry->queue->used_bytes();
    info.stats = entry->stats;
    infos.push_back(info);
  }
  return infos;
}

ClassStats AppCache::TotalStats() const {
  ClassStats total;
  for (const auto& [slab_class, entry] : classes_) total += entry->stats;
  return total;
}

ClassStats AppCache::StatsForClass(int slab_class) const {
  const auto it = classes_.find(slab_class);
  return it == classes_.end() ? ClassStats{} : it->second->stats;
}

// --- CacheServer ---

// Climber surface for a whole application (cross-app mode): "queue size" is
// the app's reservation.
class CacheServer::AppAdapter final : public ClimbableQueue {
 public:
  AppAdapter(AppCache* app, uint64_t min_bytes)
      : app_(app), min_bytes_(min_bytes) {}
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return app_->reservation();
  }
  void SetCapacityBytes(uint64_t bytes) override {
    app_->SetReservation(bytes);
  }
  [[nodiscard]] uint64_t min_capacity_bytes() const override {
    return min_bytes_;
  }

 private:
  AppCache* app_;
  uint64_t min_bytes_;
};

CacheServer::CacheServer(const ServerConfig& config) : config_(config) {
  if (config_.allocation == AllocationMode::kCliffhanger &&
      config_.knobs.cross_app) {
    cross_climber_ = std::make_unique<HillClimber>(
        config_.knobs.climber, HashCombine(config_.seed, 0xA99ULL));
  }
}

CacheServer::~CacheServer() = default;

AppCache& CacheServer::AddApp(uint32_t app_id, uint64_t reservation) {
  assert(apps_.find(app_id) == apps_.end());
  auto app = std::make_unique<AppCache>(app_id, reservation, config_, this);
  AppCache* raw = app.get();
  apps_.emplace(app_id, std::move(app));
  if (cross_climber_) {
    app_index_[app_id] = app_adapters_.size();
    // A tenant may never be squeezed below a handful of pages or an eighth
    // of its paid reservation, whichever is larger.
    const uint64_t min_bytes =
        std::max<uint64_t>(4 * config_.page_size, reservation / 8);
    app_adapters_.push_back(std::make_unique<AppAdapter>(raw, min_bytes));
    cross_climber_->AddQueue(app_adapters_.back().get());
  } else {
    app_index_[app_id] = app_index_.size();
  }
  return *raw;
}

AppCache* CacheServer::app(uint32_t app_id) {
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : it->second.get();
}

const AppCache* CacheServer::app(uint32_t app_id) const {
  const auto it = apps_.find(app_id);
  return it == apps_.end() ? nullptr : it->second.get();
}

Outcome CacheServer::Get(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  assert(a != nullptr);
  return a->Get(item);
}

bool CacheServer::Set(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  assert(a != nullptr);
  return a->Set(item);
}

bool CacheServer::Touch(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  assert(a != nullptr);
  return a->Touch(item);
}

void CacheServer::Delete(uint32_t app_id, const ItemMeta& item) {
  AppCache* a = app(app_id);
  assert(a != nullptr);
  a->Delete(item);
}

Outcome CacheServer::Mutate(uint32_t app_id, MutateOp op,
                            const ItemMeta& item) {
  AppCache* a = app(app_id);
  assert(a != nullptr);
  return a->Mutate(op, item);
}

void CacheServer::OnAppShadowHit(size_t app_index) {
  if (cross_climber_) cross_climber_->OnShadowHit(app_index);
}

ClassStats CacheServer::TotalStats() const {
  ClassStats total;
  for (const auto& [id, app] : apps_) total += app->TotalStats();
  return total;
}

std::vector<uint32_t> CacheServer::app_ids() const {
  std::vector<uint32_t> ids;
  ids.reserve(apps_.size());
  for (const auto& [id, app] : apps_) ids.push_back(id);
  return ids;
}

}  // namespace cliffhanger
