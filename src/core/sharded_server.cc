#include "core/sharded_server.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace cliffhanger {

// Mirror of ClassStats with relaxed atomic fields, one per shard, padded to
// a cache line so two shards' hot counters never share one (false sharing
// would serialize otherwise independent shards).
struct alignas(64) ShardedCacheServer::Shard {
  mutable std::mutex mu;
  std::unique_ptr<CacheServer> server;  // guarded by mu
  // Hill-shadow hit totals per app at the last rebalance (guarded by mu).
  std::map<uint32_t, uint64_t> shadow_baseline;

  // Lock-free-read statistics mirror; updated outside the shard lock.
  std::atomic<uint64_t> ops{0};  // rebalance trigger (all op kinds)
  std::atomic<uint64_t> gets{0};
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> sets{0};
  std::atomic<uint64_t> tail_hits{0};
  std::atomic<uint64_t> cliff_shadow_hits{0};
  std::atomic<uint64_t> hill_shadow_hits{0};

  [[nodiscard]] ClassStats CounterSnapshot() const {
    ClassStats s;
    s.gets = gets.load(std::memory_order_relaxed);
    s.hits = hits.load(std::memory_order_relaxed);
    s.sets = sets.load(std::memory_order_relaxed);
    s.tail_hits = tail_hits.load(std::memory_order_relaxed);
    s.cliff_shadow_hits = cliff_shadow_hits.load(std::memory_order_relaxed);
    s.hill_shadow_hits = hill_shadow_hits.load(std::memory_order_relaxed);
    return s;
  }
};

namespace {

// The single definition of how a Get outcome maps onto the lock-free
// counter mirror; both the routed Get and ShardBatch::Get fold through it
// so the two paths can never drift apart.
void MirrorGetOutcome(const Outcome& outcome, ClassStats* delta) {
  if (!outcome.cacheable) return;
  ++delta->gets;
  if (outcome.hit) {
    ++delta->hits;
    if (outcome.region == HitRegion::kPhysicalTail) ++delta->tail_hits;
  } else if (outcome.region == HitRegion::kCliffShadow) {
    ++delta->cliff_shadow_hits;
  } else if (outcome.region == HitRegion::kHillShadow) {
    ++delta->hill_shadow_hits;
  }
}

}  // namespace

ShardedCacheServer::ShardedCacheServer(const ShardedServerConfig& config)
    : config_(config), num_shards_(std::max<size_t>(1, config.num_shards)) {
  config_.num_shards = num_shards_;  // keep config() consistent when 0 passed
  shards_.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    auto shard = std::make_unique<Shard>();
    ServerConfig shard_config = config_.server;
    // Decorrelate the shards' controller RNG streams (Algorithm 1 picks
    // random victims; identical streams would move memory in lockstep).
    shard_config.seed = HashCombine(config_.server.seed, 0x5AD0000 + i);
    shard->server = std::make_unique<CacheServer>(shard_config);
    shards_.push_back(std::move(shard));
  }
}

ShardedCacheServer::~ShardedCacheServer() = default;

void ShardedCacheServer::AddApp(uint32_t app_id, uint64_t reservation) {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  assert(app_totals_.find(app_id) == app_totals_.end());
  app_totals_[app_id] = reservation;
  // Largest-remainder split: every shard gets floor(total/N), the first
  // (total % N) shards one byte more, so the shares sum to the total.
  const uint64_t base = reservation / num_shards_;
  const uint64_t remainder = reservation % num_shards_;
  for (size_t i = 0; i < num_shards_; ++i) {
    const uint64_t share = base + (i < remainder ? 1 : 0);
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    shards_[i]->server->AddApp(app_id, share);
    shards_[i]->shadow_baseline[app_id] = 0;
  }
}

bool ShardedCacheServer::RemoveApp(uint32_t app_id) {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  const auto it = app_totals_.find(app_id);
  if (it == app_totals_.end()) return false;
  app_totals_.erase(it);
  const auto locks = LockAllShards();
  for (const auto& shard : shards_) {
    shard->server->RemoveApp(app_id);
    shard->shadow_baseline.erase(app_id);
  }
  // Each shard just redistributed the departing share to its survivors
  // (cross-app mode); fold those windfalls into the registered totals so
  // the next Rebalance re-divides what the apps actually hold.
  if (config_.server.allocation == AllocationMode::kCliffhanger &&
      config_.server.knobs.cross_app) {
    RefreshAppTotalsLocked();
  }
  return true;
}

Outcome ShardedCacheServer::Get(uint32_t app_id, const ItemMeta& item) {
  Shard& shard = *shards_[ShardForKey(item.key)];
  Outcome outcome;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    outcome = shard.server->Get(app_id, item);
  }
  ClassStats delta;
  MirrorGetOutcome(outcome, &delta);
  PublishDelta(shard, delta);
  BumpOpCount(shard);
  return outcome;
}

bool ShardedCacheServer::Set(uint32_t app_id, const ItemMeta& item) {
  Shard& shard = *shards_[ShardForKey(item.key)];
  bool counted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    counted = shard.server->Set(app_id, item);
  }
  // Mirror exactly what the shard's own statistics counted, so the
  // lock-free TotalStats() stays equal to MergedStats() at quiescence.
  if (counted) shard.sets.fetch_add(1, std::memory_order_relaxed);
  BumpOpCount(shard);
  return counted;
}

bool ShardedCacheServer::Touch(uint32_t app_id, const ItemMeta& item) {
  Shard& shard = *shards_[ShardForKey(item.key)];
  bool resident;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    resident = shard.server->Touch(app_id, item);
  }
  // Touch mutates no per-class statistics, so there is nothing to mirror
  // into the lock-free counters; it still advances the rebalance cadence.
  BumpOpCount(shard);
  return resident;
}

void ShardedCacheServer::Delete(uint32_t app_id, const ItemMeta& item) {
  Shard& shard = *shards_[ShardForKey(item.key)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.server->Delete(app_id, item);
  }
  BumpOpCount(shard);
}

Outcome ShardedCacheServer::Mutate(uint32_t app_id, MutateOp op,
                                   const ItemMeta& item) {
  // Delegate to the routed verbs so every op shares their locking and
  // counter-mirroring discipline exactly.
  Outcome outcome;
  switch (op) {
    case MutateOp::kFill:
      outcome.cacheable = Set(app_id, item);
      break;
    case MutateOp::kTouch:
      outcome.hit = Touch(app_id, item);
      break;
    case MutateOp::kErase:
      Delete(app_id, item);
      break;
  }
  return outcome;
}

ValueOutcome ShardedCacheServer::GetValue(uint32_t app_id, uint64_t key,
                                          uint32_t key_size, uint32_t now_s,
                                          uint32_t flush_at_s) {
  Shard& shard = *shards_[ShardForKey(key)];
  ValueOutcome vo;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    vo = shard.server->GetByKey(app_id, key, key_size, now_s, flush_at_s);
  }
  ClassStats delta;
  MirrorGetOutcome(vo.outcome, &delta);  // flush-reclaim is uncacheable
  PublishDelta(shard, delta);
  BumpOpCount(shard);
  return vo;
}

ValueOutcome ShardedCacheServer::PeekValue(uint32_t app_id, uint64_t key,
                                           uint32_t now_s,
                                           uint32_t flush_at_s) {
  Shard& shard = *shards_[ShardForKey(key)];
  ValueOutcome vo;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    vo = shard.server->PeekByKey(app_id, key, now_s, flush_at_s);
  }
  // Peeks move no statistics; they still advance the rebalance cadence.
  BumpOpCount(shard);
  return vo;
}

bool ShardedCacheServer::SetValue(uint32_t app_id, const ItemMeta& item,
                                  const void* data, uint32_t flags,
                                  uint64_t cas) {
  Shard& shard = *shards_[ShardForKey(item.key)];
  bool counted;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    counted = shard.server->SetValue(app_id, item, data, flags, cas);
  }
  if (counted) shard.sets.fetch_add(1, std::memory_order_relaxed);
  BumpOpCount(shard);
  return counted;
}

ReplaceResult ShardedCacheServer::ReplaceValue(uint32_t app_id, uint64_t key,
                                               uint32_t key_size,
                                               const void* data,
                                               uint32_t size, uint64_t cas,
                                               uint32_t now_s) {
  Shard& shard = *shards_[ShardForKey(key)];
  ReplaceResult result;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    result = shard.server->ReplaceValue(app_id, key, key_size, data, size,
                                        cas, now_s);
  }
  // Only a re-slab runs a counted Set inside the shard; mirror exactly that.
  if (result == ReplaceResult::kReSlabbed) {
    shard.sets.fetch_add(1, std::memory_order_relaxed);
  }
  BumpOpCount(shard);
  return result;
}

bool ShardedCacheServer::TouchValue(uint32_t app_id, uint64_t key,
                                    uint32_t key_size, uint32_t expiry_s,
                                    uint32_t now_s, uint32_t flush_at_s) {
  Shard& shard = *shards_[ShardForKey(key)];
  bool resident;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    resident = shard.server->TouchByKey(app_id, key, key_size, expiry_s,
                                        now_s, flush_at_s);
  }
  BumpOpCount(shard);
  return resident;
}

bool ShardedCacheServer::DeleteValue(uint32_t app_id, uint64_t key,
                                     uint32_t now_s, uint32_t flush_at_s) {
  Shard& shard = *shards_[ShardForKey(key)];
  bool was_valid;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    was_valid = shard.server->DeleteByKey(app_id, key, now_s, flush_at_s);
  }
  BumpOpCount(shard);
  return was_valid;
}

// ---------------------------------------------------------------------------
// ShardBatch: one lock acquisition amortized over a burst of same-shard ops.
// ---------------------------------------------------------------------------

ShardedCacheServer::ShardBatch::ShardBatch(ShardedCacheServer* owner,
                                           size_t shard_index)
    : owner_(owner),
      shard_(owner->shards_[shard_index].get()),
      shard_index_(shard_index),
      lock_(shard_->mu) {}

ShardedCacheServer::ShardBatch::ShardBatch(ShardBatch&& other) noexcept
    : owner_(other.owner_),
      shard_(other.shard_),
      shard_index_(other.shard_index_),
      lock_(std::move(other.lock_)),
      delta_(other.delta_),
      ops_(other.ops_) {
  other.owner_ = nullptr;
}

ShardedCacheServer::ShardBatch::~ShardBatch() {
  if (owner_ == nullptr) return;
  // Same ordering as the single-op verbs: release the shard lock, then
  // publish the counter deltas, then advance the rebalance cadence (which
  // may run Rebalance() — it takes apps_mu_ plus every shard lock, so it
  // must never run while this batch still holds one).
  if (lock_.owns_lock()) lock_.unlock();
  owner_->PublishDelta(*shard_, delta_);
  owner_->BumpOpCount(*shard_, ops_);
}

void ShardedCacheServer::ShardBatch::Unlock() {
  if (lock_.owns_lock()) lock_.unlock();
}

Outcome ShardedCacheServer::ShardBatch::Get(uint32_t app_id,
                                            const ItemMeta& item) {
  assert(owner_->ShardForKey(item.key) == shard_index_);
  const Outcome outcome = shard_->server->Get(app_id, item);
  MirrorGetOutcome(outcome, &delta_);
  ++ops_;
  return outcome;
}

bool ShardedCacheServer::ShardBatch::Set(uint32_t app_id,
                                         const ItemMeta& item) {
  assert(owner_->ShardForKey(item.key) == shard_index_);
  const bool counted = shard_->server->Set(app_id, item);
  if (counted) ++delta_.sets;
  ++ops_;
  return counted;
}

bool ShardedCacheServer::ShardBatch::Touch(uint32_t app_id,
                                           const ItemMeta& item) {
  assert(owner_->ShardForKey(item.key) == shard_index_);
  const bool resident = shard_->server->Touch(app_id, item);
  ++ops_;
  return resident;
}

void ShardedCacheServer::ShardBatch::Delete(uint32_t app_id,
                                            const ItemMeta& item) {
  assert(owner_->ShardForKey(item.key) == shard_index_);
  shard_->server->Delete(app_id, item);
  ++ops_;
}

Outcome ShardedCacheServer::ShardBatch::Mutate(uint32_t app_id, MutateOp op,
                                               const ItemMeta& item) {
  Outcome outcome;
  switch (op) {
    case MutateOp::kFill:
      outcome.cacheable = Set(app_id, item);
      break;
    case MutateOp::kTouch:
      outcome.hit = Touch(app_id, item);
      break;
    case MutateOp::kErase:
      Delete(app_id, item);
      break;
  }
  return outcome;
}

ValueOutcome ShardedCacheServer::ShardBatch::GetValue(uint32_t app_id,
                                                      uint64_t key,
                                                      uint32_t key_size,
                                                      uint32_t now_s,
                                                      uint32_t flush_at_s) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(key) == shard_index_);
  const ValueOutcome vo =
      shard_->server->GetByKey(app_id, key, key_size, now_s, flush_at_s);
  MirrorGetOutcome(vo.outcome, &delta_);
  ++ops_;
  return vo;
}

ValueOutcome ShardedCacheServer::ShardBatch::PeekValue(uint32_t app_id,
                                                       uint64_t key,
                                                       uint32_t now_s,
                                                       uint32_t flush_at_s) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(key) == shard_index_);
  const ValueOutcome vo =
      shard_->server->PeekByKey(app_id, key, now_s, flush_at_s);
  ++ops_;
  return vo;
}

bool ShardedCacheServer::ShardBatch::SetValue(uint32_t app_id,
                                              const ItemMeta& item,
                                              const void* data,
                                              uint32_t flags, uint64_t cas) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(item.key) == shard_index_);
  const bool counted =
      shard_->server->SetValue(app_id, item, data, flags, cas);
  if (counted) ++delta_.sets;
  ++ops_;
  return counted;
}

ReplaceResult ShardedCacheServer::ShardBatch::ReplaceValue(
    uint32_t app_id, uint64_t key, uint32_t key_size, const void* data,
    uint32_t size, uint64_t cas, uint32_t now_s) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(key) == shard_index_);
  const ReplaceResult result = shard_->server->ReplaceValue(
      app_id, key, key_size, data, size, cas, now_s);
  if (result == ReplaceResult::kReSlabbed) ++delta_.sets;
  ++ops_;
  return result;
}

bool ShardedCacheServer::ShardBatch::TouchValue(uint32_t app_id, uint64_t key,
                                                uint32_t key_size,
                                                uint32_t expiry_s,
                                                uint32_t now_s,
                                                uint32_t flush_at_s) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(key) == shard_index_);
  const bool resident = shard_->server->TouchByKey(app_id, key, key_size,
                                                   expiry_s, now_s,
                                                   flush_at_s);
  ++ops_;
  return resident;
}

bool ShardedCacheServer::ShardBatch::DeleteValue(uint32_t app_id,
                                                 uint64_t key, uint32_t now_s,
                                                 uint32_t flush_at_s) {
  assert(lock_.owns_lock());
  assert(owner_->ShardForKey(key) == shard_index_);
  const bool was_valid =
      shard_->server->DeleteByKey(app_id, key, now_s, flush_at_s);
  ++ops_;
  return was_valid;
}

ShardedCacheServer::ShardBatch ShardedCacheServer::BeginBatch(
    size_t shard_index) {
  assert(shard_index < num_shards_);
  return ShardBatch(this, shard_index);
}

// Shard-grouped execution: a stable sort keeps same-shard ops in their
// original relative order, and ops on different shards touch disjoint cache
// state, so the result is identical to routing the array sequentially —
// with one lock acquisition per shard touched instead of one per op.
void ShardedCacheServer::GetBatch(const BatchGet* ops, size_t count,
                                  Outcome* outcomes) {
  std::vector<size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ShardForKey(ops[a].item.key) < ShardForKey(ops[b].item.key);
  });
  size_t i = 0;
  while (i < count) {
    const size_t shard = ShardForKey(ops[order[i]].item.key);
    ShardBatch batch = BeginBatch(shard);
    for (; i < count && ShardForKey(ops[order[i]].item.key) == shard; ++i) {
      const size_t idx = order[i];
      outcomes[idx] = batch.Get(ops[idx].app_id, ops[idx].item);
    }
  }
}

void ShardedCacheServer::MutateBatch(const BatchMutation* ops, size_t count,
                                     Outcome* outcomes) {
  std::vector<size_t> order(count);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ShardForKey(ops[a].item.key) < ShardForKey(ops[b].item.key);
  });
  size_t i = 0;
  while (i < count) {
    const size_t shard = ShardForKey(ops[order[i]].item.key);
    ShardBatch batch = BeginBatch(shard);
    for (; i < count && ShardForKey(ops[order[i]].item.key) == shard; ++i) {
      const size_t idx = order[i];
      outcomes[idx] = batch.Mutate(ops[idx].app_id, ops[idx].op, ops[idx].item);
    }
  }
}

ClassStats ShardedCacheServer::TotalStats() const {
  ClassStats total;
  for (const auto& shard : shards_) total += shard->CounterSnapshot();
  return total;
}

std::vector<std::unique_lock<std::mutex>> ShardedCacheServer::LockAllShards()
    const {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (const auto& shard : shards_) locks.emplace_back(shard->mu);
  return locks;
}

ClassStats ShardedCacheServer::MergedStats() const {
  const auto locks = LockAllShards();
  ClassStats total;
  for (const auto& shard : shards_) total += shard->server->TotalStats();
  return total;
}

ClassStats ShardedCacheServer::ShardStats(size_t shard) const {
  assert(shard < num_shards_);
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  return shards_[shard]->server->TotalStats();
}

ShardedCacheServer::ValueStats ShardedCacheServer::MergedValueStats() const {
  const auto locks = LockAllShards();
  ValueStats total;
  for (const auto& shard : shards_) {
    for (const uint32_t app_id : shard->server->app_ids()) {
      const AppCache* app = shard->server->app(app_id);
      const ValueStore* store = app->value_store();
      if (store == nullptr) continue;
      total.value_bytes += store->value_bytes();
      total.tracked_keys += store->tracked_keys();
      for (const ValueStore::ClassOccupancy& o : store->Occupancy()) {
        ClassUse& use = total.classes[o.slab_class];
        use.chunk_size = o.chunk_size;
        use.used_chunks += o.used_chunks;
        use.resident_bytes += o.resident_bytes;
      }
    }
  }
  return total;
}

ClassStats ShardedCacheServer::AppStats(uint32_t app_id) const {
  const auto locks = LockAllShards();
  ClassStats total;
  for (const auto& shard : shards_) {
    const AppCache* app = shard->server->app(app_id);
    if (app != nullptr) total += app->TotalStats();
  }
  return total;
}

// The registered total, read under apps_mu_ alone — monitoring callers must
// not stall all N shards for a value AddApp records and Rebalance conserves
// by construction. The conservation invariant itself (per-shard shares sum
// to this) is what sharded_server_test checks via AppShardReservation.
uint64_t ShardedCacheServer::AppReservation(uint32_t app_id) const {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  const auto it = app_totals_.find(app_id);
  return it == app_totals_.end() ? 0 : it->second;
}

uint64_t ShardedCacheServer::AppShardReservation(uint32_t app_id,
                                                 size_t shard) const {
  assert(shard < num_shards_);
  std::lock_guard<std::mutex> lock(shards_[shard]->mu);
  const AppCache* app = shards_[shard]->server->app(app_id);
  return app == nullptr ? 0 : app->reservation();
}

std::vector<uint32_t> ShardedCacheServer::app_ids() const {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  std::vector<uint32_t> ids;
  ids.reserve(app_totals_.size());
  for (const auto& [id, total] : app_totals_) ids.push_back(id);
  return ids;
}

uint64_t ShardedCacheServer::rebalance_count() const {
  return rebalances_.load(std::memory_order_relaxed);
}

// Counted on the shard's own padded line so the hot path never contends on
// a process-global counter; the busiest shard drives the cadence. For a
// batch of n ops the trigger fires when the count crosses an interval
// boundary — for n == 1 that reduces to the classic "every interval-th op"
// modulo check, so batched and unbatched traffic share one cadence.
void ShardedCacheServer::BumpOpCount(Shard& shard, uint64_t n) {
  const uint64_t interval = config_.rebalance_interval_ops;
  if (interval == 0 || n == 0) return;
  const uint64_t prev = shard.ops.fetch_add(n, std::memory_order_relaxed);
  if ((prev + n) / interval != prev / interval) {
    Rebalance();
  }
}

void ShardedCacheServer::PublishDelta(Shard& shard, const ClassStats& delta) {
  if (delta.gets) shard.gets.fetch_add(delta.gets, std::memory_order_relaxed);
  if (delta.hits) shard.hits.fetch_add(delta.hits, std::memory_order_relaxed);
  if (delta.sets) shard.sets.fetch_add(delta.sets, std::memory_order_relaxed);
  if (delta.tail_hits) {
    shard.tail_hits.fetch_add(delta.tail_hits, std::memory_order_relaxed);
  }
  if (delta.cliff_shadow_hits) {
    shard.cliff_shadow_hits.fetch_add(delta.cliff_shadow_hits,
                                      std::memory_order_relaxed);
  }
  if (delta.hill_shadow_hits) {
    shard.hill_shadow_hits.fetch_add(delta.hill_shadow_hits,
                                     std::memory_order_relaxed);
  }
}

void ShardedCacheServer::Rebalance() {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  const auto locks = LockAllShards();
  if (config_.server.allocation == AllocationMode::kCliffhanger &&
      config_.server.knobs.cross_app) {
    // The cross-app climbers have been trading memory between apps inside
    // each shard since the last rebalance; re-divide what each app holds
    // now, not its stale registered total.
    RefreshAppTotalsLocked();
  }
  for (const auto& [app_id, total] : app_totals_) {
    RebalanceAppLocked(app_id, total);
  }
  rebalances_.fetch_add(1, std::memory_order_relaxed);
}

void ShardedCacheServer::RefreshAppTotalsLocked() {
  for (auto& [app_id, total] : app_totals_) {
    uint64_t sum = 0;
    for (const auto& shard : shards_) {
      const AppCache* app = shard->server->app(app_id);
      if (app != nullptr) sum += app->reservation();
    }
    total = sum;
  }
}

uint64_t ShardedCacheServer::TotalReservation() const {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  const auto locks = LockAllShards();
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->server->total_reservation();
  }
  return total;
}

bool ShardedCacheServer::CheckInvariants() const {
  std::lock_guard<std::mutex> apps_lock(apps_mu_);
  const auto locks = LockAllShards();
  for (const auto& shard : shards_) {
    if (!shard->server->CheckInvariants()) return false;
  }
  const bool cross_app =
      config_.server.allocation == AllocationMode::kCliffhanger &&
      config_.server.knobs.cross_app;
  if (!cross_app) {
    // Static per-app totals: every app's shard shares must sum to its
    // registered reservation (AddApp splits it; Rebalance conserves it).
    for (const auto& [app_id, total] : app_totals_) {
      uint64_t sum = 0;
      for (const auto& shard : shards_) {
        const AppCache* app = shard->server->app(app_id);
        if (app != nullptr) sum += app->reservation();
      }
      if (sum != total) return false;
    }
  }
  return true;
}

// Pre: apps_mu_ and every shard lock held.
//
// Each shard's hill-shadow hits since the last rebalance estimate how much
// that shard's slice of the app would gain from more memory (§3.4: the
// shadow hit rate approximates the request-weighted hit-rate-curve
// gradient). The app's total moves a `rebalance_step` fraction toward the
// shadow-share target; with no signal anywhere the +1 smoothing makes the
// target an even split, so a skewed initial division decays geometrically.
void ShardedCacheServer::RebalanceAppLocked(uint32_t app_id,
                                            uint64_t total_reservation) {
  const size_t n = num_shards_;
  if (n <= 1 || total_reservation == 0) return;

  std::vector<uint64_t> current(n, 0);
  std::vector<double> weight(n, 0.0);
  double weight_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    AppCache* app = shards_[i]->server->app(app_id);
    if (app == nullptr) return;
    current[i] = app->reservation();
    const uint64_t shadow = app->TotalStats().hill_shadow_hits;
    uint64_t& baseline = shards_[i]->shadow_baseline[app_id];
    const uint64_t delta = shadow - baseline;
    baseline = shadow;
    weight[i] = 1.0 + static_cast<double>(delta);
    weight_sum += weight[i];
  }

  // Blend toward the shadow-share target, then integerize with the
  // largest-remainder method so the shares sum to the total exactly.
  const double step = std::clamp(config_.rebalance_step, 0.0, 1.0);
  const double total = static_cast<double>(total_reservation);
  std::vector<double> desired(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    desired[i] = (1.0 - step) * static_cast<double>(current[i]) +
                 step * total * (weight[i] / weight_sum);
  }
  std::vector<uint64_t> next(n, 0);
  std::vector<std::pair<double, size_t>> fractions;
  fractions.reserve(n);
  uint64_t assigned = 0;
  for (size_t i = 0; i < n; ++i) {
    const double floored = std::floor(desired[i]);
    next[i] = static_cast<uint64_t>(std::max(0.0, floored));
    assigned += next[i];
    fractions.emplace_back(desired[i] - floored, i);
  }
  std::sort(fractions.begin(), fractions.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  size_t cursor = 0;
  while (assigned < total_reservation && cursor < fractions.size()) {
    ++next[fractions[cursor++].second];
    ++assigned;
  }
  // Defensive: absorb any residual rounding drift into shard 0 so the
  // invariant sum(next) == total_reservation always holds.
  if (assigned < total_reservation) next[0] += total_reservation - assigned;
  while (assigned > total_reservation) {
    for (size_t i = 0; i < n && assigned > total_reservation; ++i) {
      if (next[i] > 0) {
        --next[i];
        --assigned;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (next[i] != current[i]) {
      shards_[i]->server->app(app_id)->SetReservation(next[i]);
    }
  }
}

}  // namespace cliffhanger
