#include "core/cliff_scaler.h"

#include <algorithm>
#include <cmath>

namespace cliffhanger {

CliffScaler::CliffScaler(PartitionedSlabQueue* queue,
                         const CliffScalerConfig& config)
    : queue_(queue), config_(config) {
  MaybeToggleActive();
}

double CliffScaler::CreditItems() const {
  return std::max(1.0, static_cast<double>(config_.credit_bytes) /
                           static_cast<double>(queue_->chunk_size()));
}

void CliffScaler::ResetPointers() {
  // INIT (Algorithm 2): both pointers start at the operating point.
  left_ptr_ = right_ptr_ = static_cast<double>(QueueItems());
  resize_staged_ = false;
  on_cliff_ = false;
  low_right_count_ = 0;
}

void CliffScaler::MaybeToggleActive() {
  const bool should_activate = QueueItems() > config_.min_active_items;
  if (should_activate == active_) return;
  active_ = should_activate;
  if (active_) {
    ResetPointers();
  } else if (queue_->partition_enabled()) {
    queue_->EnablePartition(false);
    on_cliff_ = false;
  }
}

void CliffScaler::ClampPointers() {
  const auto q = static_cast<double>(QueueItems());
  const auto min_ptr = static_cast<double>(config_.min_pointer_items);
  left_ptr_ = std::clamp(left_ptr_, min_ptr, q);
  right_ptr_ = std::clamp(right_ptr_, q, q * config_.max_right_multiple);
}

void CliffScaler::OnAccess(const GetResult& result) {
  if (!active_) return;
  ++stable_accesses_;
  const double q = static_cast<double>(QueueItems());
  const double credit = CreditItems();
  bool updated = false;

  if (!queue_->partition_enabled()) {
    // Detection phase: the queue is still whole (two evenly split queues
    // behave identically to one queue — §4.2 — so until a cliff is found we
    // keep the single queue and read both pointers' signals off its own
    // tail and shadow). A shadow hit means mass just beyond the operating
    // point: the right pointer climbs and the left anchor loosens; a tail
    // hit means mass just inside: both pull home.
    if (result.region == HitRegion::kCliffShadow) {
      right_ptr_ += credit;
      left_ptr_ -= credit;
      updated = true;
    } else if (result.region == HitRegion::kPhysicalTail) {
      if (right_ptr_ > q) {
        right_ptr_ -= credit;
        updated = true;
      }
      if (left_ptr_ < q) {
        left_ptr_ += credit;
        updated = true;
      }
    }
  } else if (result.side == Side::kRight) {
    if (result.region == HitRegion::kCliffShadow) {
      // Hit right of the right pointer: still convex there, climb higher.
      right_ptr_ += credit;
      updated = true;
    } else if (result.region == HitRegion::kPhysicalTail) {
      // Hits just left of the pointer: overshot the cliff top, back off.
      // Even when the guard pins the pointer at the operating point the
      // event still feeds the exit bookkeeping (liveness: a pinned pointer
      // must be able to dissolve the cliff state).
      if (right_ptr_ > q) right_ptr_ -= credit;
      updated = true;
    }
  } else {
    if (result.region == HitRegion::kCliffShadow) {
      // Hits right of the left pointer: inside the convex region, move the
      // anchor further left toward the cliff bottom.
      left_ptr_ -= credit;
      updated = true;
    } else if (result.region == HitRegion::kPhysicalTail) {
      // Hits just inside the left anchor: curve still concave here, the
      // anchor can move back toward the operating point.
      if (left_ptr_ < q) left_ptr_ += credit;
      updated = true;
    }
  }

  if (updated) {
    ClampPointers();
    ComputeRatioAndStage();
  }
}

void CliffScaler::ComputeRatioAndStage() {
  const double q = static_cast<double>(QueueItems());
  const double dist_right = right_ptr_ - q;
  const double dist_left = q - left_ptr_;
  const double credit = CreditItems();

  // Cliff detection with hysteresis: pointer excursions smaller than a few
  // credits (or a small fraction of the queue) are indistinguishable from
  // concave-curve noise and must not split the queue (paper §4.2: on
  // concave curves the pointers stay at the operating point).
  const double enter = std::max(config_.enter_cliff_credits * credit,
                                config_.enter_cliff_fraction * q);
  const double exit = std::max(config_.exit_cliff_credits * credit,
                               config_.exit_cliff_fraction * q);
  const bool was_on_cliff = on_cliff_;
  if (!on_cliff_) {
    on_cliff_ = dist_right > enter && dist_left > enter &&
                stable_accesses_ >= config_.stable_accesses_to_engage;
  } else if (dist_right < exit && dist_left < exit) {
    // Both pointers back at the operating point means the cliff evidence
    // has evaporated (e.g. the queue grew past the cliff top). Demand
    // several consecutive confirmations so a transient wobble does not
    // collapse a healthy split.
    if (++low_right_count_ >= config_.exit_confirmations) {
      on_cliff_ = false;
    }
  } else {
    low_right_count_ = 0;
  }

  if (!on_cliff_) {
    if (was_on_cliff && queue_->partition_enabled()) {
      // Collapse back to a single queue.
      queue_->EnablePartition(false);
    }
    resize_staged_ = false;
    return;
  }
  if (!was_on_cliff) {
    // Lazy partitioning: split only once a cliff is confirmed.
    queue_->EnablePartition(true);
  }

  const double ratio = (dist_right + dist_left) > 0.0
                           ? dist_right / (dist_right + dist_left)
                           : 0.5;
  queue_->SetRatio(ratio);

  // UPDATEPHYSICALQUEUES: left = leftPtr * ratio, right = rightPtr * (1 -
  // ratio); keep the sum exactly at the operating point by deriving the
  // right size from the remainder. Both sides keep at least a sensing
  // minimum (tail + shadows must exist, or the side stops producing the
  // events that would let its pointer recover — an absorbing state).
  const double min_side =
      std::min(q / 2.0, std::max(static_cast<double>(
                                     config_.min_pointer_items) * 2.0,
                                 q / 16.0));
  staged_left_ = static_cast<uint64_t>(
      std::llround(std::clamp(left_ptr_ * ratio, min_side, q - min_side)));
  staged_right_ = QueueItems() - staged_left_;
  resize_staged_ = true;
}

void CliffScaler::OnMiss() {
  if (!active_ || !resize_staged_ || !queue_->partition_enabled()) return;
  // Resize quantum: moving a partition boundary flushes the demoted items
  // through the shadows, so micro-adjustments cost more than they gain.
  const auto current_left =
      static_cast<double>(queue_->left().capacity_items());
  const double delta =
      std::abs(static_cast<double>(staged_left_) - current_left);
  const double quantum =
      std::max(CreditItems(), static_cast<double>(QueueItems()) *
                                  config_.min_resize_fraction);
  if (delta < quantum) return;
  queue_->SetPartitionItems(staged_left_, staged_right_);
  resize_staged_ = false;
}

void CliffScaler::OnCapacityChanged() {
  MaybeToggleActive();
  if (!active_) return;
  if (!on_cliff_) {
    // No confirmed cliff: re-anchor at the new operating point rather than
    // carrying stale pointer gaps into the new regime (the hill climber
    // moves capacity constantly; leftover gaps would masquerade as cliff
    // evidence).
    left_ptr_ = right_ptr_ = static_cast<double>(QueueItems());
    resize_staged_ = false;
    stable_accesses_ = 0;
    return;
  }
  ClampPointers();
  ComputeRatioAndStage();
}

}  // namespace cliffhanger
