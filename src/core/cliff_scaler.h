// Algorithms 2 and 3 — incremental cliff scaling with shadow queues.
//
// The queue is split into left and right physical queues (Talus-style). Two
// pointers track the simulated sizes that should anchor the concave hull:
//
//   * a hit in the right queue's appended shadow ("right half") means the
//     curve still rises beyond the right pointer -> move it right, toward
//     the top of the cliff;
//   * a hit in the right queue's tail ("left half", the last 128 items of
//     its physical queue) while the pointer is above the operating point
//     -> move it back left;
//   * a hit in the left queue's appended shadow -> the region right of the
//     left pointer still gets hits, so the pointer is inside the convex
//     region: move it left, toward the bottom of the cliff;
//   * a hit in the left queue's tail while the pointer is below the
//     operating point -> move it right.
//
// ComputeRatio (Algorithm 3) then turns the pointers into a request-split
// ratio and physical queue sizes:
//   ratio = distRight / (distRight + distLeft)      (0.5 when not on a cliff)
//   left.size  = leftPointer  * ratio
//   right.size = rightPointer * (1 - ratio)
// whose sum equals the operating point. On a concave curve both pointers
// stay at the operating point, the queue stays evenly split, and behaviour
// is identical to a single queue (paper §4.2).
//
// Anti-thrashing (§5.1): physical sizes are only re-applied on a miss; the
// scaler is active only for queues larger than `min_active_items`.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cache/slab_class_queue.h"

namespace cliffhanger {

struct CliffScalerConfig {
  uint64_t credit_bytes = 4096;
  uint64_t min_active_items = 1000;  // §5.1: only large queues
  uint64_t min_pointer_items = 64;   // keep anchors meaningfully sized
  double max_right_multiple = 16.0;  // sanity cap on the right pointer

  // Noise control. On a concave curve the paper argues the pointers "will
  // not move from their starting points"; under stochastic hit arrivals
  // they in fact random-walk a few credits around the operating point, and
  // Algorithm 3's ratio dr/(dr+dl) amplifies that noise into violent
  // partition swings (each swing flushes physical items into the shadows).
  // We therefore treat the queue as sitting on a cliff only when BOTH
  // pointer distances exceed enter_cliff_credits credits (with hysteresis
  // via exit_cliff_credits), and we apply a staged resize only when it
  // moves a partition by at least max(credit, capacity * min_resize_
  // fraction) items.
  // Thresholds are the max of a credit count and a fraction of the queue:
  // the credit floor matters for small queues, the fraction for large ones
  // (a 4-credit excursion on a 12k-item queue is ~1% — pure noise, while a
  // genuine cliff pulls a pointer tens of percent away).
  double enter_cliff_credits = 4.0;
  double exit_cliff_credits = 2.0;
  double enter_cliff_fraction = 0.06;
  double exit_cliff_fraction = 0.03;
  double min_resize_fraction = 1.0 / 64.0;
  // Leave the cliff state only after this many consecutive observations of
  // the right pointer at the operating point: a genuinely-reached cliff top
  // pins the pointer (exit), while ordinary wobble bounces it (stay).
  int exit_confirmations = 8;
  // Engage only at a stable operating point: this many accesses must pass
  // since the last capacity change before the queue may be declared
  // on-cliff. While the hill climber is actively re-balancing, pointer
  // excursions reflect the moving target, not curve shape.
  uint64_t stable_accesses_to_engage = 20000;
};

class CliffScaler {
 public:
  CliffScaler(PartitionedSlabQueue* queue, const CliffScalerConfig& config);

  // Feed every GET outcome on this queue (tail and cliff-shadow regions
  // drive the pointers; other regions are ignored).
  void OnAccess(const GetResult& result);
  // Apply any staged resize — call on every miss on this queue.
  void OnMiss();
  // The hill climber (or the server) changed the queue's total capacity.
  void OnCapacityChanged();

  [[nodiscard]] bool active() const { return active_; }
  // True when the pointer distances say the queue sits on a cliff (the
  // partition is skewed; otherwise it stays evenly split).
  [[nodiscard]] bool on_cliff() const { return on_cliff_; }
  [[nodiscard]] double left_pointer() const { return left_ptr_; }
  [[nodiscard]] double right_pointer() const { return right_ptr_; }
  [[nodiscard]] double ratio() const { return queue_->ratio(); }

 private:
  [[nodiscard]] uint64_t QueueItems() const {
    return queue_->capacity_items();
  }
  [[nodiscard]] double CreditItems() const;
  void MaybeToggleActive();
  void ResetPointers();
  void ClampPointers();
  // Algorithm 3: recompute ratio (applied immediately — it only affects
  // request routing) and stage the physical sizes for the next miss.
  void ComputeRatioAndStage();

  PartitionedSlabQueue* queue_;
  CliffScalerConfig config_;
  bool active_ = false;
  bool on_cliff_ = false;
  double left_ptr_ = 0.0;
  double right_ptr_ = 0.0;
  bool resize_staged_ = false;
  int low_right_count_ = 0;
  uint64_t stable_accesses_ = 0;
  uint64_t staged_left_ = 0;
  uint64_t staged_right_ = 0;
};

}  // namespace cliffhanger
