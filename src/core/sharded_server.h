// ShardedCacheServer: a thread-safe front over N independent CacheServer
// shards, selected by key hash (ShardIndexForKey). Each shard owns the full
// §4.3 controller state (hill climber, cliff scalers) for its slice of every
// application's key space, behind one per-shard mutex, so the paper's
// incremental algorithms keep running unmodified under concurrent traffic.
//
// Concurrency model:
//  - Get/Set/Delete lock only the shard the key hashes to.
//  - Aggregate statistics are mirrored into per-shard cache-line-padded
//    atomic counters, so TotalStats() is a lock-free read; MergedStats()
//    and the per-app accessors take every shard lock (in index order) for
//    an exact, mutually consistent snapshot.
//  - An application's reservation is split across shards (largest-remainder,
//    so the split always sums to the registered total). A periodic rebalance
//    re-divides each app's total in proportion to the shards' hill-shadow
//    hit rates — the same signal Algorithm 1 uses — so static hash
//    partitioning cannot starve a shard that would profit from more memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/cache_server.h"
#include "util/hashing.h"

namespace cliffhanger {

struct ShardedServerConfig {
  // Template for every shard; each shard's RNG seed is decorrelated by
  // hashing the shard index into `server.seed`.
  ServerConfig server;
  size_t num_shards = 4;
  // A rebalance triggers whenever any single shard has processed this many
  // operations since its last trigger (counted per shard so the hot path
  // never touches a shared counter line). 0 = only explicit Rebalance().
  uint64_t rebalance_interval_ops = 0;
  // Fraction of the gap between a shard's current reservation and its
  // shadow-signal target that one rebalance closes. Small steps keep the
  // split stable against noisy shadow hits (same spirit as §5.1).
  double rebalance_step = 0.25;
};

class ShardedCacheServer {
 public:
  explicit ShardedCacheServer(const ShardedServerConfig& config);
  ~ShardedCacheServer();
  ShardedCacheServer(const ShardedCacheServer&) = delete;
  ShardedCacheServer& operator=(const ShardedCacheServer&) = delete;

  // Registers the app on every shard, splitting `reservation` across them.
  // Not safe to call concurrently with traffic for the same app: finish
  // registration before serving it (as with CacheServer::AddApp).
  void AddApp(uint32_t app_id, uint64_t reservation);

  // Thread-safe routed operations; the app must have been added. Set
  // returns true when the item was cacheable (same as CacheServer::Set).
  // Touch refreshes expiry + recency of a resident item (no statistics
  // mutation); Mutate is the op-based surface (kFill/kTouch/kErase, see
  // cache/types.h) for drivers carrying an op stream.
  Outcome Get(uint32_t app_id, const ItemMeta& item);
  bool Set(uint32_t app_id, const ItemMeta& item);
  bool Touch(uint32_t app_id, const ItemMeta& item);
  void Delete(uint32_t app_id, const ItemMeta& item);
  Outcome Mutate(uint32_t app_id, MutateOp op, const ItemMeta& item);

  [[nodiscard]] size_t num_shards() const { return num_shards_; }
  [[nodiscard]] size_t ShardForKey(uint64_t key) const {
    return ShardIndexForKey(key, num_shards_);
  }
  [[nodiscard]] const ShardedServerConfig& config() const { return config_; }

  // Lock-free aggregate snapshot from the padded per-shard counters. Exact
  // once writers are quiescent; during traffic it may trail in-flight
  // operations by a few counts (each op updates its counters after
  // releasing the shard lock).
  [[nodiscard]] ClassStats TotalStats() const;
  // Exact snapshots straight from the shards' own statistics. MergedStats
  // holds every shard lock at once, so the merge is mutually consistent.
  [[nodiscard]] ClassStats MergedStats() const;
  [[nodiscard]] ClassStats ShardStats(size_t shard) const;

  // Per-app views. AppStats holds every shard lock for a consistent
  // cross-shard sum; AppReservation is the registered total (O(1), no
  // shard locks — rebalancing conserves it by construction);
  // AppShardReservation reads one shard's current share.
  [[nodiscard]] ClassStats AppStats(uint32_t app_id) const;
  [[nodiscard]] uint64_t AppReservation(uint32_t app_id) const;
  [[nodiscard]] uint64_t AppShardReservation(uint32_t app_id,
                                             size_t shard) const;
  [[nodiscard]] std::vector<uint32_t> app_ids() const;

  // Re-divides every app's total reservation across shards toward each
  // shard's share of hill-shadow hits since the previous rebalance. Also
  // runs automatically every `rebalance_interval_ops` operations.
  void Rebalance();
  [[nodiscard]] uint64_t rebalance_count() const;

 private:
  struct Shard;

  void BumpOpCount(Shard& shard);
  void RebalanceAppLocked(uint32_t app_id, uint64_t total_reservation);
  // Acquires every shard mutex in ascending index order (the lock-order
  // rule); all whole-server snapshots and the rebalancer go through this.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> LockAllShards()
      const;

  ShardedServerConfig config_;
  size_t num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Lock order: apps_mu_ first, then shard mutexes in ascending index order.
  mutable std::mutex apps_mu_;
  std::map<uint32_t, uint64_t> app_totals_;  // registered reservation per app

  std::atomic<uint64_t> rebalances_{0};
};

}  // namespace cliffhanger
