// ShardedCacheServer: a thread-safe front over N independent CacheServer
// shards, selected by key hash (ShardIndexForKey). Each shard owns the full
// §4.3 controller state (hill climber, cliff scalers) for its slice of every
// application's key space, behind one per-shard mutex, so the paper's
// incremental algorithms keep running unmodified under concurrent traffic.
//
// Concurrency model:
//  - Get/Set/Delete lock only the shard the key hashes to.
//  - A ShardBatch (BeginBatch) holds one shard's lock across a whole burst
//    of operations, amortizing the acquisition; GetBatch/MutateBatch group
//    an op array by shard and take one lock per shard touched. Ops on
//    different shards act on disjoint cache state and same-key ops always
//    hash to the same shard, so shard-grouped execution that preserves the
//    per-shard op order yields the same cache state as sequential routing.
//  - Aggregate statistics are mirrored into per-shard cache-line-padded
//    atomic counters, so TotalStats() is a lock-free read; MergedStats()
//    and the per-app accessors take every shard lock (in index order) for
//    an exact, mutually consistent snapshot.
//  - An application's reservation is split across shards (largest-remainder,
//    so the split always sums to the registered total). A periodic rebalance
//    re-divides each app's total in proportion to the shards' hill-shadow
//    hit rates — the same signal Algorithm 1 uses — so static hash
//    partitioning cannot starve a shard that would profit from more memory.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/cache_server.h"
#include "util/hashing.h"

namespace cliffhanger {

struct ShardedServerConfig {
  // Template for every shard; each shard's RNG seed is decorrelated by
  // hashing the shard index into `server.seed`.
  ServerConfig server;
  size_t num_shards = 4;
  // A rebalance triggers whenever any single shard has processed this many
  // operations since its last trigger (counted per shard so the hot path
  // never touches a shared counter line). 0 = only explicit Rebalance().
  uint64_t rebalance_interval_ops = 0;
  // Fraction of the gap between a shard's current reservation and its
  // shadow-signal target that one rebalance closes. Small steps keep the
  // split stable against noisy shadow hits (same spirit as §5.1).
  double rebalance_step = 0.25;
};

class ShardedCacheServer {
 private:
  struct Shard;  // declared up front: the public ShardBatch refers to it

 public:
  explicit ShardedCacheServer(const ShardedServerConfig& config);
  ~ShardedCacheServer();
  ShardedCacheServer(const ShardedCacheServer&) = delete;
  ShardedCacheServer& operator=(const ShardedCacheServer&) = delete;

  // Registers the app on every shard, splitting `reservation` across them.
  // Not safe to call concurrently with traffic for the same app: finish
  // registration before serving it (as with CacheServer::AddApp).
  void AddApp(uint32_t app_id, uint64_t reservation);

  // Tenant departure: removes the app from every shard (queues, shadow
  // nodes and value slots are reclaimed eagerly by the per-shard
  // CacheServer::RemoveApp). Safe to call concurrently with traffic —
  // in-flight ops that already routed to the app soft-fail once the shard
  // lock serializes them behind the removal. In cross-app mode each shard
  // redistributes the departing share to its surviving tenants (conserving
  // the shard total) and the registered app totals are refreshed from the
  // live shard sums so the next Rebalance cannot claw the windfall back.
  // Returns false for an unknown app.
  bool RemoveApp(uint32_t app_id);

  // Thread-safe routed operations; the app must have been added. Set
  // returns true when the item was cacheable (same as CacheServer::Set).
  // Touch refreshes expiry + recency of a resident item (no statistics
  // mutation); Mutate is the op-based surface (kFill/kTouch/kErase, see
  // cache/types.h) for drivers carrying an op stream.
  Outcome Get(uint32_t app_id, const ItemMeta& item);
  bool Set(uint32_t app_id, const ItemMeta& item);
  bool Touch(uint32_t app_id, const ItemMeta& item);
  void Delete(uint32_t app_id, const ItemMeta& item);
  Outcome Mutate(uint32_t app_id, MutateOp op, const ItemMeta& item);

  // Value-mode routed verbs (ServerConfig::store_values; see the AppCache
  // declarations for semantics). NOTE on GetValue/PeekValue lifetimes: the
  // returned ValueOutcome::view borrows arena memory guarded by the shard
  // lock — with the routed verbs the lock is already released on return, so
  // the view is only safe if no other thread can mutate the shard. Callers
  // needing a stable span across concurrent traffic must go through a
  // ShardBatch and keep it alive while reading the view.
  ValueOutcome GetValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                        uint32_t now_s, uint32_t flush_at_s);
  ValueOutcome PeekValue(uint32_t app_id, uint64_t key, uint32_t now_s,
                         uint32_t flush_at_s);
  bool SetValue(uint32_t app_id, const ItemMeta& item, const void* data,
                uint32_t flags, uint64_t cas);
  ReplaceResult ReplaceValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                             const void* data, uint32_t size, uint64_t cas,
                             uint32_t now_s);
  bool TouchValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                  uint32_t expiry_s, uint32_t now_s, uint32_t flush_at_s);
  bool DeleteValue(uint32_t app_id, uint64_t key, uint32_t now_s,
                   uint32_t flush_at_s);

  // Holds one shard's lock for a burst of operations, so a caller that has
  // already grouped its ops by shard pays one lock acquisition per burst
  // instead of one per op. Every key passed to a batch method MUST hash to
  // the batch's shard (asserted in debug builds). Statistics mirroring and
  // the rebalance cadence are deferred to the destructor, which publishes
  // the accumulated deltas after releasing the shard lock — exactly the
  // ordering the single-op verbs use — and may fire Rebalance().
  class ShardBatch {
   public:
    ~ShardBatch();
    ShardBatch(ShardBatch&& other) noexcept;
    ShardBatch(const ShardBatch&) = delete;
    ShardBatch& operator=(const ShardBatch&) = delete;
    ShardBatch& operator=(ShardBatch&&) = delete;

    // Same semantics and counting discipline as the routed verbs above.
    Outcome Get(uint32_t app_id, const ItemMeta& item);
    bool Set(uint32_t app_id, const ItemMeta& item);
    bool Touch(uint32_t app_id, const ItemMeta& item);
    void Delete(uint32_t app_id, const ItemMeta& item);
    Outcome Mutate(uint32_t app_id, MutateOp op, const ItemMeta& item);

    // Value-mode batch verbs. A ValueOutcome::view returned here stays
    // valid for exactly as long as this batch holds the shard lock AND no
    // further mutating call is made through it — the natural pattern for a
    // zero-copy GET burst: collect views, write them out, then destroy (or
    // Unlock()) the batch.
    ValueOutcome GetValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                          uint32_t now_s, uint32_t flush_at_s);
    ValueOutcome PeekValue(uint32_t app_id, uint64_t key, uint32_t now_s,
                           uint32_t flush_at_s);
    bool SetValue(uint32_t app_id, const ItemMeta& item, const void* data,
                  uint32_t flags, uint64_t cas);
    ReplaceResult ReplaceValue(uint32_t app_id, uint64_t key,
                               uint32_t key_size, const void* data,
                               uint32_t size, uint64_t cas, uint32_t now_s);
    bool TouchValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                    uint32_t expiry_s, uint32_t now_s, uint32_t flush_at_s);
    bool DeleteValue(uint32_t app_id, uint64_t key, uint32_t now_s,
                     uint32_t flush_at_s);

    // Releases the shard lock early, before destruction. Borrowed views
    // die here. Required when a caller pins several batches at once and a
    // destructor side effect (PublishDelta -> BumpOpCount -> Rebalance,
    // which takes every shard lock) could otherwise run while sibling
    // batches still hold theirs: Unlock() all pins first, then let the
    // destructors run lock-free. Idempotent; no further ops are legal.
    void Unlock();

    [[nodiscard]] size_t shard_index() const { return shard_index_; }

   private:
    friend class ShardedCacheServer;
    ShardBatch(ShardedCacheServer* owner, size_t shard_index);

    ShardedCacheServer* owner_;  // nullptr after move-from: dtor is a no-op
    Shard* shard_;
    size_t shard_index_;
    std::unique_lock<std::mutex> lock_;
    ClassStats delta_;   // counter mirror, published on destruction
    uint64_t ops_ = 0;   // rebalance-cadence contribution
  };

  // Opens a batch on one shard (locks it until the ShardBatch dies).
  [[nodiscard]] ShardBatch BeginBatch(size_t shard_index);

  // Array-based conveniences over ShardBatch: group the ops by shard
  // (stable, so same-shard — and therefore same-key — order is preserved)
  // and execute each group under a single lock acquisition. `outcomes`
  // receives one entry per op, in the original array order.
  struct BatchGet {
    uint32_t app_id;
    ItemMeta item;
  };
  struct BatchMutation {
    uint32_t app_id;
    MutateOp op;
    ItemMeta item;
  };
  void GetBatch(const BatchGet* ops, size_t count, Outcome* outcomes);
  void MutateBatch(const BatchMutation* ops, size_t count, Outcome* outcomes);

  [[nodiscard]] size_t num_shards() const { return num_shards_; }
  [[nodiscard]] size_t ShardForKey(uint64_t key) const {
    return ShardIndexForKey(key, num_shards_);
  }
  [[nodiscard]] const ShardedServerConfig& config() const { return config_; }

  // Lock-free aggregate snapshot from the padded per-shard counters. Exact
  // once writers are quiescent; during traffic it may trail in-flight
  // operations by a few counts (each op updates its counters after
  // releasing the shard lock).
  [[nodiscard]] ClassStats TotalStats() const;
  // Exact snapshots straight from the shards' own statistics. MergedStats
  // holds every shard lock at once, so the merge is mutually consistent.
  [[nodiscard]] ClassStats MergedStats() const;
  [[nodiscard]] ClassStats ShardStats(size_t shard) const;

  // Per-app views. AppStats holds every shard lock for a consistent
  // cross-shard sum; AppReservation is the registered total (O(1), no
  // shard locks — rebalancing conserves it by construction);
  // AppShardReservation reads one shard's current share.
  // Real value-memory occupancy summed across every shard and app, taken
  // under all shard locks for a mutually consistent snapshot (the `stats`
  // command's `bytes` / `stats slabs` surface). Empty when the shards were
  // not built with store_values.
  struct ClassUse {
    uint32_t chunk_size = 0;
    uint64_t used_chunks = 0;
    uint64_t resident_bytes = 0;
  };
  struct ValueStats {
    uint64_t value_bytes = 0;   // live payload bytes across all slots
    uint64_t tracked_keys = 0;  // index entries (resident + shadow)
    std::map<int, ClassUse> classes;
  };
  [[nodiscard]] ValueStats MergedValueStats() const;

  [[nodiscard]] ClassStats AppStats(uint32_t app_id) const;
  [[nodiscard]] uint64_t AppReservation(uint32_t app_id) const;
  [[nodiscard]] uint64_t AppShardReservation(uint32_t app_id,
                                             size_t shard) const;
  [[nodiscard]] std::vector<uint32_t> app_ids() const;

  // Re-divides every app's total reservation across shards toward each
  // shard's share of hill-shadow hits since the previous rebalance. Also
  // runs automatically every `rebalance_interval_ops` operations. In
  // cross-app mode the per-app totals are first refreshed from the live
  // shard sums (the cross-app climber moves memory between apps inside
  // each shard, so the registered totals go stale between rebalances).
  void Rebalance();
  [[nodiscard]] uint64_t rebalance_count() const;

  // Sum of the live reservations across every shard and app, under all
  // locks. Conserved by climber transfers, rebalances, and cross-app
  // removals (while at least one tenant survives).
  [[nodiscard]] uint64_t TotalReservation() const;

  // Runs every shard's CacheServer::CheckInvariants under all locks; with
  // cross_app off additionally checks that each app's shard shares sum to
  // its registered total. Test/debug only.
  [[nodiscard]] bool CheckInvariants() const;

 private:
  // Adds `n` to the shard's op counter and fires Rebalance() when the count
  // crosses a rebalance_interval_ops boundary (for n == 1 this is exactly
  // the classic "every interval-th op" trigger).
  void BumpOpCount(Shard& shard, uint64_t n = 1);
  // fetch_adds the non-zero fields of `delta` into the shard's lock-free
  // counter mirror. Call after releasing the shard lock.
  void PublishDelta(Shard& shard, const ClassStats& delta);
  void RebalanceAppLocked(uint32_t app_id, uint64_t total_reservation);
  // Pre: apps_mu_ and every shard lock held. Re-reads each app's live
  // cross-shard reservation sum into app_totals_.
  void RefreshAppTotalsLocked();
  // Acquires every shard mutex in ascending index order (the lock-order
  // rule); all whole-server snapshots and the rebalancer go through this.
  [[nodiscard]] std::vector<std::unique_lock<std::mutex>> LockAllShards()
      const;

  ShardedServerConfig config_;
  size_t num_shards_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Lock order: apps_mu_ first, then shard mutexes in ascending index order.
  mutable std::mutex apps_mu_;
  std::map<uint32_t, uint64_t> app_totals_;  // registered reservation per app

  std::atomic<uint64_t> rebalances_{0};
};

}  // namespace cliffhanger
