#include "core/hill_climber.h"

#include <algorithm>

namespace cliffhanger {

HillClimber::HillClimber(const HillClimberConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {}

size_t HillClimber::AddQueue(ClimbableQueue* queue) {
  queues_.push_back(queue);
  credits_.push_back(0);
  return queues_.size() - 1;
}

void HillClimber::OnShadowHit(size_t i) {
  if (queues_.size() < 2) return;  // nothing to trade against

  // Algorithm 1 lines 2-4: credit the hitting queue, debit a random other.
  const auto credit = static_cast<int64_t>(config_.credit_bytes);
  credits_[i] += credit;
#ifdef CLIFFHANGER_PERTURB_CLIMBER
  // Metrics-gate self-test only (-DCLIFFHANGER_PERTURB_CLIMBER=ON): claw
  // back half the credit, the canonical "quiet controller bug" — nothing
  // crashes and throughput barely moves, only hit rates drift. CI builds
  // with this flag and asserts the exact-match golden gate fails.
  credits_[i] -= credit / 2;
#endif
  size_t victim = rng_.NextBounded(queues_.size() - 1);
  if (victim >= i) ++victim;
  credits_[victim] -= credit;

  // Convert accumulated credits into physical memory in quantum units.
  while (credits_[i] >= static_cast<int64_t>(config_.quantum_bytes)) {
    if (!TryTransfer(i)) break;
    credits_[i] -= static_cast<int64_t>(config_.quantum_bytes);
  }
}

bool HillClimber::TryTransfer(size_t i) {
  // Prefer the queue with the most negative balance that can still donate;
  // it is the one the random debits have judged least deserving. Fall back
  // to any queue with spare capacity so a transfer happens whenever one is
  // possible at all.
  const uint64_t quantum = config_.quantum_bytes;
  size_t best = queues_.size();
  int64_t best_credits = 0;
  for (size_t j = 0; j < queues_.size(); ++j) {
    if (j == i) continue;
    ClimbableQueue* q = queues_[j];
    if (q->capacity_bytes() < q->min_capacity_bytes() + quantum) continue;
    if (best == queues_.size() || credits_[j] < best_credits) {
      best = j;
      best_credits = credits_[j];
    }
  }
  if (best == queues_.size()) return false;

  ClimbableQueue* donor = queues_[best];
  ClimbableQueue* winner = queues_[i];
  donor->SetCapacityBytes(donor->capacity_bytes() - quantum);
  winner->SetCapacityBytes(winner->capacity_bytes() + quantum);
  credits_[best] += static_cast<int64_t>(quantum);
  ++transfers_;
  transferred_bytes_ += quantum;
  return true;
}

}  // namespace cliffhanger
