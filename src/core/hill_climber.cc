#include "core/hill_climber.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cliffhanger {

HillClimber::HillClimber(const HillClimberConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {}

size_t HillClimber::AddQueue(ClimbableQueue* queue) {
  assert(queue != nullptr);
  ++live_count_;
  if (!free_slots_.empty()) {
    const size_t slot = free_slots_.back();  // lowest freed index
    free_slots_.pop_back();
    queues_[slot] = queue;
    credits_[slot] = 0;
    return slot;
  }
  queues_.push_back(queue);
  credits_.push_back(0);
  return queues_.size() - 1;
}

void HillClimber::RemoveQueue(size_t i) {
  assert(has_queue(i));
  queues_[i] = nullptr;
  credits_[i] = 0;
  --live_count_;
  // Keep descending so back() is always the lowest free slot: reuse fills
  // the table front-to-back, the same order fresh AddQueue calls would.
  free_slots_.insert(
      std::upper_bound(free_slots_.begin(), free_slots_.end(), i,
                       std::greater<size_t>()),
      i);
}

void HillClimber::OnShadowHit(size_t i, double weight) {
  assert(has_queue(i));
  if (live_count_ < 2) return;  // nothing to trade against
  if (!(weight > 0.0)) return;

  // Algorithm 1 lines 2-4: credit the hitting queue, debit a random other.
  // The weight scales both sides, so total credit stays zero-sum. With
  // weight == 1.0 (per-queue climbing, and cross-app off-cliff) this is
  // exactly the paper's integer credit.
  const auto credit = static_cast<int64_t>(
      std::llround(static_cast<double>(config_.credit_bytes) * weight));
  if (credit <= 0) return;
  credits_[i] += credit;
#ifdef CLIFFHANGER_PERTURB_CLIMBER
  // Metrics-gate self-test only (-DCLIFFHANGER_PERTURB_CLIMBER=ON): claw
  // back half the credit, the canonical "quiet controller bug" — nothing
  // crashes and throughput barely moves, only hit rates drift. CI builds
  // with this flag and asserts the exact-match golden gate fails.
  credits_[i] -= credit / 2;
#endif
  // Bound the pending-transfer backlog: while every donor sits at its min
  // floor, TryTransfer fails and the balance would otherwise grow without
  // limit — and then drain as one violent burst the moment a donor frees
  // up. The clamp caps that burst at max_credit_quanta transfers.
  if (config_.max_credit_quanta > 0) {
    const auto bound = static_cast<int64_t>(config_.max_credit_quanta *
                                            config_.quantum_bytes);
    credits_[i] = std::min(credits_[i], bound);
  }

  // Pick the victim uniformly among the other live queues. When the slot
  // table is dense this selects exactly the index the pre-lifecycle code
  // drew (k-th other queue == k, skipping past i), so replays without
  // tenant churn are bit-identical.
  size_t k = rng_.NextBounded(live_count_ - 1);
  size_t victim = queues_.size();
  for (size_t j = 0; j < queues_.size(); ++j) {
    if (queues_[j] == nullptr || j == i) continue;
    if (k == 0) {
      victim = j;
      break;
    }
    --k;
  }
  assert(victim < queues_.size());
  credits_[victim] -= credit;

  // Convert accumulated credits into physical memory in quantum units.
  while (credits_[i] >= static_cast<int64_t>(config_.quantum_bytes)) {
    if (!TryTransfer(i)) break;
    credits_[i] -= static_cast<int64_t>(config_.quantum_bytes);
  }
}

bool HillClimber::TryTransfer(size_t i) {
  // Prefer the queue with the most negative balance that can still donate;
  // it is the one the random debits have judged least deserving. Fall back
  // to any queue with spare capacity so a transfer happens whenever one is
  // possible at all.
  const uint64_t quantum = config_.quantum_bytes;
  size_t best = queues_.size();
  int64_t best_credits = 0;
  for (size_t j = 0; j < queues_.size(); ++j) {
    if (j == i || queues_[j] == nullptr) continue;
    ClimbableQueue* q = queues_[j];
    if (q->capacity_bytes() < q->min_capacity_bytes() + quantum) continue;
    if (best == queues_.size() || credits_[j] < best_credits) {
      best = j;
      best_credits = credits_[j];
    }
  }
  if (best == queues_.size()) return false;

  ClimbableQueue* donor = queues_[best];
  ClimbableQueue* winner = queues_[i];
  donor->SetCapacityBytes(donor->capacity_bytes() - quantum);
  winner->SetCapacityBytes(winner->capacity_bytes() + quantum);
  credits_[best] += static_cast<int64_t>(quantum);
  ++transfers_;
  transferred_bytes_ += quantum;
  return true;
}

}  // namespace cliffhanger
