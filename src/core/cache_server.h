// CacheServer: a multi-tenant memcached-style server with pluggable memory
// allocation (FCFS default / static / Cliffhanger) and eviction schemes
// (LRU, Facebook midpoint, ARC, LFU, log-structured global LRU).
//
// This is the library's top-level public API: add applications with memory
// reservations, feed Get/Set/Delete operations, and inspect per-class and
// per-app statistics. With AllocationMode::kCliffhanger the server runs the
// paper's combined algorithm (§4.3): hill climbing across the slab-class
// queues of each application (and optionally across applications), plus a
// cliff scaler per sufficiently large queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/types.h"
#include "core/cliff_scaler.h"
#include "core/hill_climber.h"
#include "util/slab_geometry.h"

namespace cliffhanger {

enum class AllocationMode : uint8_t {
  kFcfs,        // memcached default: slabs grab pages first-come-first-serve
  kStatic,      // fixed per-class allocation (e.g. from the Dynacache solver)
  kCliffhanger  // FCFS growth + hill climbing (+ cliff scaling)
};

enum class EvictionScheme : uint8_t {
  kLru,        // memcached default
  kMidpoint,   // Facebook's hybrid insertion (§5.5)
  kArc,        // ARC per slab class (§5.5)
  kLfu,        // LFU per slab class
  kGlobalLog,  // one global LRU per app at 100% utilization (Table 2)
};

struct CliffhangerKnobs {
  bool hill_climbing = true;
  bool cliff_scaling = true;
  // Also run Algorithm 1 across applications (§3.3 / Table 3), using each
  // app's aggregate shadow hits to resize reservations.
  bool cross_app = false;
  HillClimberConfig climber;
  CliffScalerConfig scaler;
};

struct ServerConfig {
  AllocationMode allocation = AllocationMode::kFcfs;
  EvictionScheme eviction = EvictionScheme::kLru;
  CliffhangerKnobs knobs;
  // Per-queue layout defaults; chunk_size/policy are set per class.
  uint32_t tail_items = 128;
  uint32_t cliff_shadow_items = 128;
  uint64_t hill_shadow_bytes = 1 << 20;
  uint64_t page_size = kPageSize;
  uint64_t seed = 0xC11FF;
};

struct ClassStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t sets = 0;
  uint64_t tail_hits = 0;
  uint64_t cliff_shadow_hits = 0;
  uint64_t hill_shadow_hits = 0;
  [[nodiscard]] uint64_t misses() const { return gets - hits; }
  [[nodiscard]] double hit_rate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / gets;
  }
  ClassStats& operator+=(const ClassStats& other) {
    gets += other.gets;
    hits += other.hits;
    sets += other.sets;
    tail_hits += other.tail_hits;
    cliff_shadow_hits += other.cliff_shadow_hits;
    hill_shadow_hits += other.hill_shadow_hits;
    return *this;
  }
};

struct Outcome {
  bool hit = false;
  bool cacheable = true;
  int slab_class = -1;
  HitRegion region = HitRegion::kMiss;
};

class CacheServer;

// One tenant: its reservation, its per-slab-class queues, and (when enabled)
// its Cliffhanger controller state.
class AppCache {
 public:
  AppCache(uint32_t app_id, uint64_t reservation, const ServerConfig& config,
           CacheServer* server);
  ~AppCache();
  AppCache(const AppCache&) = delete;
  AppCache& operator=(const AppCache&) = delete;

  Outcome Get(const ItemMeta& item);
  // Returns true when the SET was admitted and counted in the per-class
  // statistics; false when no slab class fits the item. (kGlobalLog packs
  // items contiguously, so it admits any size and always returns true.)
  bool Set(const ItemMeta& item);
  // memcached `touch`: refresh item.expiry_s and the item's recency
  // standing. True only for a physically resident, unexpired item; does
  // not mutate the GET statistics or the shadow signals.
  bool Touch(const ItemMeta& item);
  void Delete(const ItemMeta& item);

  // Op-based mutation surface (see MutateOp in cache/types.h): kFill maps
  // to Set (Outcome::cacheable = admitted), kTouch to Touch (Outcome::hit
  // = resident), kErase to Delete. One entry point for drivers that carry
  // an op stream rather than calling the verbs directly.
  Outcome Mutate(MutateOp op, const ItemMeta& item);

  // Fixed allocation for AllocationMode::kStatic (bytes per slab class).
  void SetStaticAllocation(const std::map<int, uint64_t>& bytes_per_class);
  // Cross-app climbing resizes reservations through this.
  void SetReservation(uint64_t bytes);

  [[nodiscard]] uint32_t app_id() const { return app_id_; }
  [[nodiscard]] uint64_t reservation() const { return reservation_; }
  [[nodiscard]] uint64_t free_bytes() const { return free_bytes_; }
  [[nodiscard]] uint64_t allocated_bytes() const;
  [[nodiscard]] uint64_t shadow_overhead_bytes() const;

  struct ClassInfo {
    int slab_class = 0;
    uint64_t capacity_bytes = 0;
    uint64_t used_bytes = 0;
    ClassStats stats;
  };
  [[nodiscard]] std::vector<ClassInfo> ClassInfos() const;
  [[nodiscard]] ClassStats TotalStats() const;
  // Convenience for experiment drivers.
  [[nodiscard]] ClassStats StatsForClass(int slab_class) const;

 private:
  friend class CacheServer;
  struct ClassEntry;
  class ClassAdapter;

  ClassEntry& GetOrCreateEntry(int slab_class);
  void EnsureCapacityFor(ClassEntry& entry, uint64_t needed_bytes);
  void ShrinkProportionally(uint64_t deficit);

  uint32_t app_id_;
  uint64_t reservation_;
  uint64_t free_bytes_;
  // Value copy, not a reference into the owning server, so the tenant's
  // config can never dangle regardless of how the caller constructed the
  // ServerConfig it passed in (e.g. a temporary, or a per-shard copy).
  // The server_ back-pointer is safe by ownership: AppCache lives inside
  // its CacheServer and cannot outlive it.
  ServerConfig config_;
  CacheServer* server_;

  std::map<int, std::unique_ptr<ClassEntry>> classes_;
  std::unique_ptr<HillClimber> climber_;  // within-app (slab class) climbing
};

class CacheServer {
 public:
  explicit CacheServer(const ServerConfig& config);
  ~CacheServer();
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  AppCache& AddApp(uint32_t app_id, uint64_t reservation);
  [[nodiscard]] AppCache* app(uint32_t app_id);
  [[nodiscard]] const AppCache* app(uint32_t app_id) const;

  // Routed operations (dispatch on item/app ids). Set returns true when the
  // item was cacheable (counted in the per-class statistics).
  Outcome Get(uint32_t app_id, const ItemMeta& item);
  bool Set(uint32_t app_id, const ItemMeta& item);
  bool Touch(uint32_t app_id, const ItemMeta& item);
  void Delete(uint32_t app_id, const ItemMeta& item);
  Outcome Mutate(uint32_t app_id, MutateOp op, const ItemMeta& item);

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] ClassStats TotalStats() const;
  [[nodiscard]] std::vector<uint32_t> app_ids() const;

 private:
  friend class AppCache;
  class AppAdapter;
  // Aggregate per-app shadow signal feeding the cross-app climber.
  void OnAppShadowHit(size_t app_index);

  ServerConfig config_;
  std::map<uint32_t, std::unique_ptr<AppCache>> apps_;
  std::unique_ptr<HillClimber> cross_climber_;
  std::vector<std::unique_ptr<AppAdapter>> app_adapters_;
  std::map<uint32_t, size_t> app_index_;
};

}  // namespace cliffhanger
