// CacheServer: a multi-tenant memcached-style server with pluggable memory
// allocation (FCFS default / static / Cliffhanger) and eviction schemes
// (LRU, Facebook midpoint, ARC, LFU, log-structured global LRU).
//
// This is the library's top-level public API: add applications with memory
// reservations, feed Get/Set/Delete operations, and inspect per-class and
// per-app statistics. With AllocationMode::kCliffhanger the server runs the
// paper's combined algorithm (§4.3): hill climbing across the slab-class
// queues of each application (and optionally across applications), plus a
// cliff scaler per sufficiently large queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cache/types.h"
#include "cache/value_store.h"
#include "core/cliff_scaler.h"
#include "core/hill_climber.h"
#include "util/slab_geometry.h"

namespace cliffhanger {

class PartitionedSlabQueue;

enum class AllocationMode : uint8_t {
  kFcfs,        // memcached default: slabs grab pages first-come-first-serve
  kStatic,      // fixed per-class allocation (e.g. from the Dynacache solver)
  kCliffhanger  // FCFS growth + hill climbing (+ cliff scaling)
};

enum class EvictionScheme : uint8_t {
  kLru,        // memcached default
  kMidpoint,   // Facebook's hybrid insertion (§5.5)
  kArc,        // ARC per slab class (§5.5)
  kLfu,        // LFU per slab class
  kGlobalLog,  // one global LRU per app at 100% utilization (Table 2)
};

struct CliffhangerKnobs {
  bool hill_climbing = true;
  bool cliff_scaling = true;
  // Also run Algorithm 1 across applications (§3.3 / Table 3), using each
  // app's aggregate shadow hits to resize reservations.
  bool cross_app = false;
  // Cap on the cliff-aware gradient amplification fed to the cross-app
  // climber. When the class a hill-shadow hit came from sits on a cliff,
  // the raw shadow hit rate samples the depressed gradient at the cliff
  // edges while the app actually operates on the concave hull, whose slope
  // across the cliff is steeper; the per-hit credit is scaled by
  // 1 + (right_ptr - left_ptr) / operating_point, clamped to this cap, so
  // on-cliff apps are not starved by the very cliffs the scaler bridges.
  double cross_app_max_gradient_weight = 8.0;
  // Credit clamp (HillClimberConfig::max_credit_quanta) for the CROSS-APP
  // climber: bounds the transfer burst a tenant can unleash after its
  // donors unfloor. The within-app climber keeps `climber.max_credit_quanta`
  // (default unbounded — the paper-replay goldens pin those dynamics).
  uint64_t cross_app_max_credit_quanta = 4;
  HillClimberConfig climber;
  CliffScalerConfig scaler;
};

struct ServerConfig {
  AllocationMode allocation = AllocationMode::kFcfs;
  EvictionScheme eviction = EvictionScheme::kLru;
  CliffhangerKnobs knobs;
  // Per-queue layout defaults; chunk_size/policy are set per class.
  uint32_t tail_items = 128;
  uint32_t cliff_shadow_items = 128;
  uint64_t hill_shadow_bytes = 1 << 20;
  uint64_t page_size = kPageSize;
  uint64_t seed = 0xC11FF;
  // In-arena value storage: every AppCache owns a ValueStore, and the
  // *ByKey/SetValue verbs below carry real payload bytes through slab-class
  // slot arenas (value bytes count against the reservation's queues and are
  // reclaimed eagerly on eviction). Requires kLru or kMidpoint eviction
  // (the shadow-capable partitioned queues drive the eviction listener).
  // Off by default: simulation/replay drivers keep the metadata-only paths
  // bit-identical.
  bool store_values = false;
};

struct ClassStats {
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t sets = 0;
  uint64_t tail_hits = 0;
  uint64_t cliff_shadow_hits = 0;
  uint64_t hill_shadow_hits = 0;
  [[nodiscard]] uint64_t misses() const { return gets - hits; }
  [[nodiscard]] double hit_rate() const {
    return gets == 0 ? 0.0 : static_cast<double>(hits) / gets;
  }
  ClassStats& operator+=(const ClassStats& other) {
    gets += other.gets;
    hits += other.hits;
    sets += other.sets;
    tail_hits += other.tail_hits;
    cliff_shadow_hits += other.cliff_shadow_hits;
    hill_shadow_hits += other.hill_shadow_hits;
    return *this;
  }
};

struct Outcome {
  bool hit = false;
  bool cacheable = true;
  int slab_class = -1;
  HitRegion region = HitRegion::kMiss;
  // The probe found the key but its expiry had passed, so it was lazily
  // erased and the access counted as a miss (memcached's get_expired).
  bool expired = false;
};

// Result of a value-mode access (ServerConfig::store_values). `outcome`
// carries the usual statistics view; `view` is a borrowed span into the
// app's value arena, valid only while the owning shard stays unmutated
// (see ShardBatch in core/sharded_server.h for the lifetime rule).
struct ValueOutcome {
  Outcome outcome;
  // The entry was invalidated by flush_all and reclaimed on this access
  // without touching the statistics (outcome.cacheable == false).
  bool flush_reclaimed = false;
  bool expired = false;  // lazily reclaimed as expired on this access
  bool valid = false;    // `view` is filled and serveable
  ValueView view;
};

enum class ReplaceResult : uint8_t {
  kFailed,    // no longer resident, or rewrite no longer fits any class
  kInPlace,   // same slab class: payload rewritten in its slot (uncounted)
  kReSlabbed  // class changed: old slot freed, counted re-fill in new class
};

class CacheServer;

// One tenant: its reservation, its per-slab-class queues, and (when enabled)
// its Cliffhanger controller state.
class AppCache {
 public:
  AppCache(uint32_t app_id, uint64_t reservation, const ServerConfig& config,
           CacheServer* server);
  ~AppCache();
  AppCache(const AppCache&) = delete;
  AppCache& operator=(const AppCache&) = delete;

  Outcome Get(const ItemMeta& item);
  // Returns true when the SET was admitted and counted in the per-class
  // statistics; false when no slab class fits the item. (kGlobalLog packs
  // items contiguously, so it admits any size and always returns true.)
  bool Set(const ItemMeta& item);
  // memcached `touch`: refresh item.expiry_s and the item's recency
  // standing. True only for a physically resident, unexpired item; does
  // not mutate the GET statistics or the shadow signals.
  bool Touch(const ItemMeta& item);
  void Delete(const ItemMeta& item);

  // Op-based mutation surface (see MutateOp in cache/types.h): kFill maps
  // to Set (Outcome::cacheable = admitted), kTouch to Touch (Outcome::hit
  // = resident), kErase to Delete. One entry point for drivers that carry
  // an op stream rather than calling the verbs directly.
  Outcome Mutate(MutateOp op, const ItemMeta& item);

  // --- Value-mode verbs (ServerConfig::store_values only) ---
  //
  // These carry real payload bytes through the per-class ValueStore while
  // reusing the metadata verbs above for every statistics/shadow/eviction
  // decision, so the Cliffhanger signals are identical whether or not
  // values are stored.

  // Counted lookup. Statistics move exactly as Get() would for the key's
  // resident class (or the class a zero-byte value of this key would land
  // in, when the key is unknown). On a serveable hit `valid` is true and
  // `view` points at the stored bytes.
  ValueOutcome GetByKey(uint64_t key, uint32_t key_size, uint32_t now_s,
                        uint32_t flush_at_s);
  // Uncounted validity probe for the read-before-write verbs (add/replace/
  // cas/append/incr/touch/delete). Performs lazy expiry/flush reclamation
  // but moves no statistics and no recency.
  ValueOutcome PeekByKey(uint64_t key, uint32_t now_s, uint32_t flush_at_s);
  // Unconditional store. Returns false (uncounted, old incarnation dropped)
  // when no slab class fits; otherwise counted exactly like Set().
  bool SetValue(const ItemMeta& item, const void* data, uint32_t flags,
                uint64_t cas);
  // Rewrite an existing resident value (append/prepend/incr/decr). The
  // caller must have just Peeked it valid under the same shard lock.
  // Preserves stored flags and expiry across the rewrite.
  ReplaceResult ReplaceValue(uint64_t key, uint32_t key_size,
                             const void* data, uint32_t size, uint64_t cas,
                             uint32_t now_s);
  // memcached `touch`/`delete` against the value store, with peek-style
  // validity (lazy expiry/flush reclamation, no statistics).
  bool TouchByKey(uint64_t key, uint32_t key_size, uint32_t expiry_s,
                  uint32_t now_s, uint32_t flush_at_s);
  bool DeleteByKey(uint64_t key, uint32_t now_s, uint32_t flush_at_s);

  // Null unless store_values.
  [[nodiscard]] const ValueStore* value_store() const {
    return value_store_.get();
  }

  // Fixed allocation for AllocationMode::kStatic (bytes per slab class).
  void SetStaticAllocation(const std::map<int, uint64_t>& bytes_per_class);
  // Cross-app climbing resizes reservations through this.
  void SetReservation(uint64_t bytes);
  // Administrative resize: updates the *registered* (paid) reservation —
  // the basis of the climber floor — and the live reservation together.
  // SetReservation alone is a climber-side windfall/squeeze that leaves the
  // registered size (and thus the floor) unchanged.
  void ResizeReservation(uint64_t bytes);

  // Structural self-check: per-class queue invariants, value-store
  // consistency, and (outside kStatic / kGlobalLog) conservation of the
  // reservation: allocated + free == reservation. Test/debug only.
  [[nodiscard]] bool CheckInvariants() const;

  [[nodiscard]] uint32_t app_id() const { return app_id_; }
  [[nodiscard]] uint64_t reservation() const { return reservation_; }
  // The administratively assigned reservation (AddApp / ResizeReservation).
  // The live reservation() drifts from it under cross-app climbing.
  [[nodiscard]] uint64_t registered_reservation() const {
    return registered_bytes_;
  }
  [[nodiscard]] uint64_t free_bytes() const { return free_bytes_; }
  [[nodiscard]] uint64_t allocated_bytes() const;
  [[nodiscard]] uint64_t shadow_overhead_bytes() const;

  struct ClassInfo {
    int slab_class = 0;
    uint64_t capacity_bytes = 0;
    uint64_t used_bytes = 0;
    ClassStats stats;
  };
  [[nodiscard]] std::vector<ClassInfo> ClassInfos() const;
  [[nodiscard]] ClassStats TotalStats() const;
  // Convenience for experiment drivers.
  [[nodiscard]] ClassStats StatsForClass(int slab_class) const;

 private:
  friend class CacheServer;
  struct ClassEntry;
  class ClassAdapter;

  ClassEntry& GetOrCreateEntry(int slab_class);
  void EnsureCapacityFor(ClassEntry& entry, uint64_t needed_bytes);
  void ShrinkProportionally(uint64_t deficit);
  // The counted probe body shared by Get() and GetByKey(): statistics,
  // shadow signals, climber/scaler feedback — everything after the slab
  // class is known. Declared inline deliberately: letting the optimizer
  // outline this (both callers live in cache_server.cc) costs ~10% on the
  // GET-hit microbenchmark, which the bench-regression gate treats as
  // real.
  inline Outcome GetAtClass(int slab_class, const ItemMeta& item);
  // Cliff-aware gradient weight for a hill-shadow hit in `entry` (cross-app
  // climbing only): 1.0 off-cliff; on a cliff the hull slope the scaler is
  // actually serving is steeper than the raw shadow sample, by roughly the
  // pointer span over the operating point.
  [[nodiscard]] double HillGradientWeight(const ClassEntry& entry) const;
  // The partitioned queue for an already-materialized class, or nullptr.
  [[nodiscard]] PartitionedSlabQueue* PartitionedFor(int slab_class) const;
  // Re-register `key` with the value store according to what Fill actually
  // produced (a tiny class can demote a fresh item straight into shadow).
  void RegisterStoredValue(uint64_t key, int slab_class, const void* data,
                           uint32_t size, uint32_t flags, uint64_t cas,
                           uint32_t stored_s);

  uint32_t app_id_;
  uint64_t reservation_;
  uint64_t registered_bytes_;  // administrative reservation; floors derive
                               // from this, not from climber windfalls
  uint64_t free_bytes_;
  // Slot in the server's cross-app climber/adapters table (cross_app only).
  // Cached here so the hot GET path never does a map lookup.
  size_t cross_index_ = 0;
  // Value copy, not a reference into the owning server, so the tenant's
  // config can never dangle regardless of how the caller constructed the
  // ServerConfig it passed in (e.g. a temporary, or a per-shard copy).
  // The server_ back-pointer is safe by ownership: AppCache lives inside
  // its CacheServer and cannot outlive it.
  ServerConfig config_;
  CacheServer* server_;

  std::map<int, std::unique_ptr<ClassEntry>> classes_;
  std::unique_ptr<HillClimber> climber_;  // within-app (slab class) climbing
  // Non-null iff config_.store_values: owns the payload bytes and listens
  // to every class queue's evictions.
  std::unique_ptr<ValueStore> value_store_;
};

class CacheServer {
 public:
  explicit CacheServer(const ServerConfig& config);
  ~CacheServer();
  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  AppCache& AddApp(uint32_t app_id, uint64_t reservation);
  // Tenant departure: tears down the app's queues, shadow nodes and value
  // slots eagerly (their destructors release everything), removes it from
  // the cross-app climber, and — in cross-app mode — redistributes its
  // current reservation to the surviving apps proportionally to theirs, so
  // the server-wide total is conserved. Returns false for an unknown app.
  bool RemoveApp(uint32_t app_id);
  [[nodiscard]] AppCache* app(uint32_t app_id);
  [[nodiscard]] const AppCache* app(uint32_t app_id) const;

  // Routed operations (dispatch on item/app ids). Set returns true when the
  // item was cacheable (counted in the per-class statistics). All routed
  // verbs soft-fail on an unknown app (miss / not-admitted / no-op): on the
  // daemon path an in-flight op can race a RemoveApp, and by the time the
  // shard lock serializes it the tenant may already be gone.
  Outcome Get(uint32_t app_id, const ItemMeta& item);
  bool Set(uint32_t app_id, const ItemMeta& item);
  bool Touch(uint32_t app_id, const ItemMeta& item);
  void Delete(uint32_t app_id, const ItemMeta& item);
  Outcome Mutate(uint32_t app_id, MutateOp op, const ItemMeta& item);

  // Value-mode verbs, routed by app id (ServerConfig::store_values only).
  ValueOutcome GetByKey(uint32_t app_id, uint64_t key, uint32_t key_size,
                        uint32_t now_s, uint32_t flush_at_s);
  ValueOutcome PeekByKey(uint32_t app_id, uint64_t key, uint32_t now_s,
                         uint32_t flush_at_s);
  bool SetValue(uint32_t app_id, const ItemMeta& item, const void* data,
                uint32_t flags, uint64_t cas);
  ReplaceResult ReplaceValue(uint32_t app_id, uint64_t key, uint32_t key_size,
                             const void* data, uint32_t size, uint64_t cas,
                             uint32_t now_s);
  bool TouchByKey(uint32_t app_id, uint64_t key, uint32_t key_size,
                  uint32_t expiry_s, uint32_t now_s, uint32_t flush_at_s);
  bool DeleteByKey(uint32_t app_id, uint64_t key, uint32_t now_s,
                   uint32_t flush_at_s);

  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] ClassStats TotalStats() const;
  [[nodiscard]] std::vector<uint32_t> app_ids() const;
  [[nodiscard]] size_t num_apps() const { return apps_.size(); }
  // Sum of the live reservations across all apps.
  [[nodiscard]] uint64_t total_reservation() const;
  // Runs every app's CheckInvariants. Test/debug only.
  [[nodiscard]] bool CheckInvariants() const;

 private:
  friend class AppCache;
  class AppAdapter;
  // Aggregate per-app shadow signal feeding the cross-app climber. `weight`
  // is the cliff-aware gradient amplification (1.0 off-cliff).
  void OnAppShadowHit(size_t app_index, double weight);
  // Split `bytes` across the surviving apps proportionally to their current
  // reservations (largest-remainder; deterministic app_id tiebreak).
  void RedistributeReservation(uint64_t bytes);

  ServerConfig config_;
  std::map<uint32_t, std::unique_ptr<AppCache>> apps_;
  std::unique_ptr<HillClimber> cross_climber_;
  // Indexed by HillClimber slot; tombstoned (nullptr) after RemoveApp until
  // a later AddApp reuses the slot.
  std::vector<std::unique_ptr<AppAdapter>> app_adapters_;
};

}  // namespace cliffhanger
