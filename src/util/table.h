// Fixed-width table printer used by the bench drivers to emit the paper's
// tables, plus a small CSV writer for figure series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace cliffhanger {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  TablePrinter& AddRow(std::vector<std::string> cells);
  // Convenience cell formatters.
  [[nodiscard]] static std::string Pct(double fraction, int decimals = 1);
  [[nodiscard]] static std::string Num(double value, int decimals = 2);
  [[nodiscard]] static std::string Bytes(uint64_t bytes);

  void Print(std::ostream& out) const;
  [[nodiscard]] std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Print "x,y" pairs under a named header comment — the bench drivers emit
// figure data in this form so it can be plotted directly.
void PrintCsvSeries(std::ostream& out, const std::string& title,
                    const std::string& x_label, const std::string& y_label,
                    const std::vector<double>& xs,
                    const std::vector<double>& ys, size_t max_rows = 200);

}  // namespace cliffhanger
