// Small descriptive-statistics helpers shared by tests and bench drivers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cliffhanger {

[[nodiscard]] double Mean(const std::vector<double>& xs);
[[nodiscard]] double StdDev(const std::vector<double>& xs);
// Nearest-rank percentile; p in [0, 100]. Sorts a copy.
[[nodiscard]] double Percentile(std::vector<double> xs, double p);
// Pearson correlation; 0 when undefined.
[[nodiscard]] double Correlation(const std::vector<double>& xs,
                                 const std::vector<double>& ys);

// Streaming counter for hit-rate style ratios.
class RatioCounter {
 public:
  void Add(bool success) {
    ++total_;
    if (success) ++hits_;
  }
  [[nodiscard]] uint64_t hits() const { return hits_; }
  [[nodiscard]] uint64_t misses() const { return total_ - hits_; }
  [[nodiscard]] uint64_t total() const { return total_; }
  [[nodiscard]] double Rate() const {
    return total_ == 0 ? 0.0 : static_cast<double>(hits_) / total_;
  }
  void Reset() { hits_ = total_ = 0; }

 private:
  uint64_t hits_ = 0;
  uint64_t total_ = 0;
};

}  // namespace cliffhanger
