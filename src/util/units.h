// Byte-size literals and shared constants.
#pragma once

#include <cstdint>

namespace cliffhanger {

constexpr uint64_t kKiB = 1024ULL;
constexpr uint64_t kMiB = 1024ULL * kKiB;
constexpr uint64_t kGiB = 1024ULL * kMiB;

namespace literals {
constexpr uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

}  // namespace cliffhanger
