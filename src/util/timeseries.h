// Sampled time series used to record hit rates and memory allocations over
// (virtual) time — Figures 8 and 9 of the paper are regenerated from these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cliffhanger {

class TimeSeries {
 public:
  struct Sample {
    double t = 0.0;  // virtual time (seconds or request count)
    double v = 0.0;
  };

  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void Push(double t, double v) { samples_.push_back({t, v}); }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] size_t size() const { return samples_.size(); }
  void Clear() { samples_.clear(); }

  // Mean of v over all samples (0 when empty).
  [[nodiscard]] double Mean() const;
  // Last value (0 when empty).
  [[nodiscard]] double Last() const;
  // Earliest time t at which v reaches `threshold` and never drops below
  // `threshold - slack` afterwards. Returns -1 when never stabilized.
  // Used to measure convergence time (paper: "takes about 30 minutes to
  // stabilize", Figure 9).
  [[nodiscard]] double StabilizationTime(double threshold,
                                         double slack = 0.02) const;

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

// Writes multiple aligned series as CSV rows "t,name1,name2,..." to a string.
// Series need not share timestamps; values are carried forward (step
// interpolation), which matches how allocations evolve in the simulator.
[[nodiscard]] std::string SeriesToCsv(const std::vector<TimeSeries>& series);

}  // namespace cliffhanger
