// Strict argv numeric parsing shared by the CLI binaries (cliffhangerd,
// the bench drivers): full-string parses only, so trailing garbage
// ("113l1", "two") is an error instead of a silent truncation to the
// digits seen so far — the strtoul failure mode that sends a daemon to
// the wrong port.
#pragma once

#include <cstdint>
#include <string_view>

namespace cliffhanger {

// The one strict unsigned-decimal grammar, shared by CLI flags and the
// wire-protocol parser (net/ascii_protocol): digits only — no sign, no
// whitespace, no trailing garbage — and overflow rejected.
inline bool ParseDecimalU64(std::string_view token, uint64_t* value) {
  if (token.empty()) return false;
  uint64_t v = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *value = v;
  return true;
}

inline bool ParseUint(const char* s, uint64_t* out) {
  return s != nullptr && ParseDecimalU64(s, out);
}

// TCP port: full-string numeric and within range. allow_zero admits the
// "pick an ephemeral port" convention.
inline bool ParsePort(const char* s, bool allow_zero, uint16_t* out) {
  uint64_t v = 0;
  if (!ParseUint(s, &v) || v > 65535 || (v == 0 && !allow_zero)) {
    return false;
  }
  *out = static_cast<uint16_t>(v);
  return true;
}

}  // namespace cliffhanger
