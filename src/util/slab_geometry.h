// Memcached-style slab-class geometry: geometric chunk sizes starting at
// 64 B with growth factor 2, at most 15 classes (paper §5.7: "Memcachier
// applications have 15 slab classes at most").
//
// An item of total size s (key + value + item metadata) is stored in the
// smallest class whose chunk size is >= s; the whole chunk is charged to the
// class (internal fragmentation is modelled, as in memcached).
#pragma once

#include <cstdint>

namespace cliffhanger {

constexpr uint32_t kMinChunkSize = 64;
constexpr int kMaxSlabClasses = 15;
// Fixed per-item metadata overhead (struct item header in memcached).
constexpr uint32_t kItemOverhead = 32;
// Default page size used by the FCFS slab allocator.
constexpr uint64_t kPageSize = 64 * 1024;

// Chunk size of class k: 64 << k.
constexpr uint32_t ChunkSize(int slab_class) {
  return kMinChunkSize << slab_class;
}

// Smallest class whose chunk fits `total_item_bytes`; -1 if it exceeds the
// largest class (such items are uncacheable, as in memcached).
constexpr int SlabClassFor(uint64_t total_item_bytes) {
  for (int k = 0; k < kMaxSlabClasses; ++k) {
    if (total_item_bytes <= ChunkSize(k)) return k;
  }
  return -1;
}

// Total in-cache footprint of an item (one chunk of its class).
constexpr uint64_t ItemFootprint(uint32_t key_size, uint32_t value_size) {
  const int k = SlabClassFor(uint64_t{key_size} + value_size + kItemOverhead);
  return k < 0 ? 0 : ChunkSize(k);
}

// Exact (unfragmented) footprint, used by the log-structured global queue
// which packs items contiguously at 100% utilization (paper Table 2).
constexpr uint64_t ExactFootprint(uint32_t key_size, uint32_t value_size) {
  return uint64_t{key_size} + value_size + kItemOverhead;
}

}  // namespace cliffhanger
