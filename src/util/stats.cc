#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace cliffhanger {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double acc = 0.0;
  for (const double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double t = rank - static_cast<double>(lo);
  return xs[lo] + t * (xs[hi] - xs[lo]);
}

double Correlation(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace cliffhanger
