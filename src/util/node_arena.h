// NodeArena: a contiguous slab-of-nodes pool addressed by 32-bit indexes,
// with an intrusive free-list, plus IntrusiveChain: a doubly-linked list
// threaded through arena nodes.
//
// These are the hot-path memory primitives shared by every queue structure
// (SegmentedLru, ArcQueue, LfuQueue): instead of one heap allocation per
// item (std::list node) plus one per hash entry (std::unordered_map
// bucket), all nodes of a queue live in one std::vector and link to each
// other by index. Index links are half the size of pointers, survive pool
// growth (a vector reallocation moves the slab but indexes stay valid), and
// keep neighbouring nodes in neighbouring cache lines. Freed nodes are
// recycled LIFO through the free-list, so a steady-state cache — where
// every insert is preceded by an eviction — performs zero heap
// allocations.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cliffhanger {

// Null link / "no node" sentinel shared by all arena users.
inline constexpr uint32_t kNullNode = UINT32_MAX;

// NodeT must expose a public `uint32_t next` member: live nodes use it for
// their chain, freed nodes for the free-list (no extra memory either way).
template <typename NodeT>
class NodeArena {
 public:
  // Returns the index of a node to (re)initialize: recycled from the
  // free-list when possible, freshly grown otherwise. Growth is geometric
  // (std::vector), never per item.
  uint32_t Allocate() {
    if (free_head_ != kNullNode) {
      const uint32_t idx = free_head_;
      free_head_ = nodes_[idx].next;
      --free_count_;
      return idx;
    }
    assert(nodes_.size() < kNullNode);
    nodes_.emplace_back();
    return static_cast<uint32_t>(nodes_.size() - 1);
  }

  void Free(uint32_t idx) {
    assert(idx < nodes_.size());
    nodes_[idx].next = free_head_;
    free_head_ = idx;
    ++free_count_;
  }

  NodeT& operator[](uint32_t idx) {
    assert(idx < nodes_.size());
    return nodes_[idx];
  }
  const NodeT& operator[](uint32_t idx) const {
    assert(idx < nodes_.size());
    return nodes_[idx];
  }

  // Capacity hint: pre-size the pool for `n` live nodes so mid-replay
  // growth never reallocates. Only ever grows, and never by less than 2x:
  // a plain vector::reserve(n) reallocates to exactly n, so a stream of
  // slowly-increasing hints (FCFS page grants) would copy the whole slab
  // per page — O(n^2). Rounding the growth up keeps hints amortized O(n)
  // while still honoring one big up-front reservation exactly.
  void Reserve(size_t n) {
    if (n <= nodes_.capacity()) return;
    nodes_.reserve(std::max(n, nodes_.capacity() * 2));
  }

  [[nodiscard]] size_t pool_size() const { return nodes_.size(); }
  [[nodiscard]] size_t free_count() const { return free_count_; }
  [[nodiscard]] size_t live_count() const {
    return nodes_.size() - free_count_;
  }

  // Free-list integrity: every free index in range, no cycles, no
  // double-free (duplicate), and chain length == free_count() — together
  // with a caller-side live count check this proves live + free == pool.
  [[nodiscard]] bool CheckFreeList() const {
    std::vector<bool> seen(nodes_.size(), false);
    size_t n = 0;
    for (uint32_t idx = free_head_; idx != kNullNode; idx = nodes_[idx].next) {
      if (idx >= nodes_.size() || seen[idx]) return false;
      seen[idx] = true;
      if (++n > free_count_) return false;
    }
    return n == free_count_;
  }

 private:
  std::vector<NodeT> nodes_;
  uint32_t free_head_ = kNullNode;
  size_t free_count_ = 0;
};

// A doubly-linked chain threaded through arena nodes. NodeT must expose
// public `uint32_t prev, next` members. The chain does not own the nodes:
// callers allocate/free through the arena and use this for O(1) linking —
// moving a node between chains (LRU promotion, cascade demotion, ARC list
// transitions) is pure relinking, with no allocation and no copying.
template <typename NodeT>
struct IntrusiveChain {
  uint32_t head = kNullNode;
  uint32_t tail = kNullNode;
  size_t count = 0;

  [[nodiscard]] bool empty() const { return count == 0; }

  void PushFront(NodeArena<NodeT>& arena, uint32_t idx) {
    NodeT& n = arena[idx];
    n.prev = kNullNode;
    n.next = head;
    if (head != kNullNode) {
      arena[head].prev = idx;
    } else {
      tail = idx;
    }
    head = idx;
    ++count;
  }

  // Insert `idx` immediately after `pos` (pos == kNullNode: at the front).
  void InsertAfter(NodeArena<NodeT>& arena, uint32_t pos, uint32_t idx) {
    if (pos == kNullNode) {
      PushFront(arena, idx);
      return;
    }
    NodeT& n = arena[idx];
    NodeT& p = arena[pos];
    n.prev = pos;
    n.next = p.next;
    if (p.next != kNullNode) {
      arena[p.next].prev = idx;
    } else {
      tail = idx;
    }
    p.next = idx;
    ++count;
  }

  void Remove(NodeArena<NodeT>& arena, uint32_t idx) {
    NodeT& n = arena[idx];
    if (n.prev != kNullNode) {
      arena[n.prev].next = n.next;
    } else {
      head = n.next;
    }
    if (n.next != kNullNode) {
      arena[n.next].prev = n.prev;
    } else {
      tail = n.prev;
    }
    --count;
  }
};

}  // namespace cliffhanger
