// Deterministic, fast pseudo-random number generation for workload synthesis
// and randomized algorithms (e.g. Algorithm 1's random victim pick).
//
// We deliberately avoid std::mt19937 for the hot paths: xoshiro256** is
// several times faster and has well-understood statistical quality, and the
// simulator draws billions of variates across a full experiment run.
#pragma once

#include <cstdint>
#include <limits>

namespace cliffhanger {

// SplitMix64: used to seed xoshiro and as a standalone stateless mixer.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (OOPSLA'14).
constexpr uint64_t SplitMix64Step(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256**. Satisfies UniformRandomBitGenerator so it can also be used
// with <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  explicit constexpr Rng(uint64_t seed = 0x1234abcdULL) { Seed(seed); }

  constexpr void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Step(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  constexpr uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  constexpr double NextDouble() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). Lemire's multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound) {
    if (bound <= 1) return 0;
    // Multiply-high approach; the bias for bound << 2^64 is negligible for
    // simulation purposes but we still debias with one rejection round.
    uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    return lo + NextBounded(hi - lo + 1);
  }

  // true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace cliffhanger
