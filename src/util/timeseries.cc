#include "util/timeseries.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace cliffhanger {

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : samples_) sum += s.v;
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::Last() const {
  return samples_.empty() ? 0.0 : samples_.back().v;
}

double TimeSeries::StabilizationTime(double threshold, double slack) const {
  // Scan backwards to find the suffix that stays above threshold - slack,
  // then return the first time within that suffix where v >= threshold.
  if (samples_.empty()) return -1.0;
  size_t suffix_start = samples_.size();
  for (size_t i = samples_.size(); i-- > 0;) {
    if (samples_[i].v < threshold - slack) break;
    suffix_start = i;
  }
  for (size_t i = suffix_start; i < samples_.size(); ++i) {
    if (samples_[i].v >= threshold) return samples_[i].t;
  }
  return -1.0;
}

std::string SeriesToCsv(const std::vector<TimeSeries>& series) {
  std::ostringstream out;
  out << "t";
  for (const TimeSeries& s : series) out << "," << s.name();
  out << "\n";

  std::set<double> times;
  for (const TimeSeries& s : series)
    for (const auto& sample : s.samples()) times.insert(sample.t);

  std::vector<size_t> cursor(series.size(), 0);
  std::vector<double> value(series.size(), 0.0);
  for (const double t : times) {
    for (size_t i = 0; i < series.size(); ++i) {
      const auto& samples = series[i].samples();
      while (cursor[i] < samples.size() && samples[cursor[i]].t <= t) {
        value[i] = samples[cursor[i]].v;
        ++cursor[i];
      }
    }
    out << t;
    for (const double v : value) out << "," << v;
    out << "\n";
  }
  return out.str();
}

}  // namespace cliffhanger
