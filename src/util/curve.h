// Piecewise-linear curves and the concavity machinery used throughout the
// analysis layer: hit-rate curves h(m), their upper concave hulls (Talus),
// and least-squares concave regression (the Dynacache solver's concavity
// assumption, implemented with pool-adjacent-violators on curve increments).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace cliffhanger {

// A sampled function y = f(x) with monotonically increasing x, evaluated
// between samples by linear interpolation and clamped at the ends.
//
// For hit-rate curves, x is capacity (bytes or items) and y is hit rate in
// [0, 1]; x = 0, y = 0 is implied unless a sample at x = 0 is present.
class PiecewiseCurve {
 public:
  PiecewiseCurve() = default;
  // xs must be strictly increasing; xs.size() == ys.size().
  PiecewiseCurve(std::vector<double> xs, std::vector<double> ys);

  [[nodiscard]] double Eval(double x) const;
  // First derivative estimated from the segment containing x (right-sided at
  // sample points). Zero outside the sampled domain.
  [[nodiscard]] double Gradient(double x) const;

  [[nodiscard]] size_t size() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] const std::vector<double>& xs() const { return xs_; }
  [[nodiscard]] const std::vector<double>& ys() const { return ys_; }
  [[nodiscard]] double max_x() const { return xs_.empty() ? 0.0 : xs_.back(); }
  [[nodiscard]] double max_y() const { return ys_.empty() ? 0.0 : ys_.back(); }

  void AddPoint(double x, double y);  // x must exceed the current max_x().

  // True iff the curve (including the implied origin) has non-increasing
  // segment slopes within `tolerance` — i.e. no performance cliff.
  [[nodiscard]] bool IsConcave(double tolerance = 1e-9) const;

 private:
  std::vector<double> xs_;
  std::vector<double> ys_;
};

// Upper concave hull of a curve, anchored at the origin. This is the curve
// Talus can realize by partitioning a queue in two (HPCA'15): every point on
// the hull is a convex combination of two achievable points.
[[nodiscard]] PiecewiseCurve UpperConcaveHull(const PiecewiseCurve& curve);

// Least-squares concave (and non-decreasing) regression of ys over uniformly
// meaningful xs, via pool-adjacent-violators on the per-segment slopes.
// Returns fitted ys, same size as the input. This is how the Dynacache solver
// "assumes the hit rate curves are concave": a cliff gets smeared across the
// preceding plateau, misstating the true curve around the cliff (paper §3.5).
[[nodiscard]] std::vector<double> ConcaveRegression(
    const std::vector<double>& xs, const std::vector<double>& ys);

// Convenience: apply ConcaveRegression to a curve.
[[nodiscard]] PiecewiseCurve ConcavifyCurve(const PiecewiseCurve& curve);

}  // namespace cliffhanger
