#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace cliffhanger {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TablePrinter& TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string TablePrinter::Pct(double fraction, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return out.str();
}

std::string TablePrinter::Num(double value, int decimals) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(decimals) << value;
  return out.str();
}

std::string TablePrinter::Bytes(uint64_t bytes) {
  std::ostringstream out;
  const char* suffix = "B";
  double v = static_cast<double>(bytes);
  if (bytes >= 1024ULL * 1024 * 1024) {
    v /= 1024.0 * 1024 * 1024;
    suffix = "GiB";
  } else if (bytes >= 1024ULL * 1024) {
    v /= 1024.0 * 1024;
    suffix = "MiB";
  } else if (bytes >= 1024ULL) {
    v /= 1024.0;
    suffix = "KiB";
  }
  out << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << suffix;
  return out.str();
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> width(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_sep = [&] {
    out << "+";
    for (const size_t w : width) out << std::string(w + 2, '-') << "+";
    out << "\n";
  };
  const auto print_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (size_t c = 0; c < cells.size(); ++c)
      out << " " << std::setw(static_cast<int>(width[c])) << std::left
          << cells[c] << " |";
    out << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::ToString() const {
  std::ostringstream out;
  Print(out);
  return out.str();
}

void PrintCsvSeries(std::ostream& out, const std::string& title,
                    const std::string& x_label, const std::string& y_label,
                    const std::vector<double>& xs,
                    const std::vector<double>& ys, size_t max_rows) {
  out << "# " << title << "\n";
  out << x_label << "," << y_label << "\n";
  const size_t n = std::min(xs.size(), ys.size());
  const size_t stride = n > max_rows ? (n + max_rows - 1) / max_rows : 1;
  for (size_t i = 0; i < n; i += stride) {
    out << xs[i] << "," << ys[i] << "\n";
  }
  if (n > 0 && (n - 1) % stride != 0) {
    out << xs[n - 1] << "," << ys[n - 1] << "\n";
  }
}

}  // namespace cliffhanger
