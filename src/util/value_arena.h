// ValueArena: a page-based pool of fixed-stride value slots for one slab
// class — the in-cache home of real payload bytes (ISSUE 8 / ROADMAP
// "in-arena value storage").
//
// Each slot is one slab-class chunk: a 24-byte SlotHeader (cas, size,
// flags, store time) followed by the value payload. The stride equals the
// class's chunk size, so `live_slots() * chunk_size` is the class's true
// resident footprint — the same quantity the paper's per-class accounting
// charges. Slots live inside kPageSize pages (one slot per page for
// chunk sizes above the page size) that are allocated once and never
// moved or released, so a pointer into a slot's payload is stable for the
// arena's lifetime; whether the *contents* are still meaningful is the
// caller's residency question (see cache/value_store.h).
//
// The free-list is threaded through SlotHeader::free_next — deliberately
// NOT through the payload bytes. A reader may hold a borrowed span into a
// slot that a concurrent-burst mutation has already freed-but-not-reused
// (the span contract in core/sharded_server.h makes this impossible for
// correct callers, but keeping freed payload bytes intact until genuine
// reuse turns a lifetime bug into stale data instead of heap-structure
// corruption). Steady-state churn (every allocate preceded by a free)
// touches the heap zero times.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/slab_geometry.h"

namespace cliffhanger {

class ValueArena {
 public:
  static constexpr uint32_t kNullSlot = UINT32_MAX;

  struct SlotHeader {
    uint64_t cas = 0;
    uint32_t value_size = 0;
    uint32_t flags = 0;
    uint32_t stored_s = 0;
    uint32_t free_next = kNullSlot;  // free-list link; kNullSlot when live
  };
  static constexpr size_t kHeaderBytes = sizeof(SlotHeader);
  static_assert(sizeof(SlotHeader) == 24, "slot layout is part of the API");

  explicit ValueArena(uint32_t chunk_size)
      : stride_(chunk_size),
        slots_per_page_(std::max<uint64_t>(1, kPageSize / chunk_size)) {
    assert(chunk_size > kHeaderBytes);
  }
  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  // Bytes of payload a slot can hold. Every admitted item fits: the slab
  // geometry guarantees key_size + value_size + kItemOverhead(32) <= chunk,
  // and the header (24) is smaller than key_size + kItemOverhead.
  [[nodiscard]] uint32_t payload_capacity() const {
    return stride_ - static_cast<uint32_t>(kHeaderBytes);
  }
  [[nodiscard]] uint32_t chunk_size() const { return stride_; }

  // Returns a slot to (re)initialize: recycled LIFO from the free-list
  // when possible, carved from the last page otherwise (growing by one
  // page when full). Headers are caller-initialized; payload bytes of a
  // recycled slot keep their previous contents until overwritten.
  uint32_t Allocate() {
    if (free_head_ != kNullSlot) {
      const uint32_t slot = free_head_;
      free_head_ = header(slot)->free_next;
      header(slot)->free_next = kNullSlot;
      ++live_slots_;
      return slot;
    }
    const uint64_t pool = pool_slots_;
    if (pool == pages_.size() * slots_per_page_) {
      pages_.push_back(std::make_unique<char[]>(slots_per_page_ * stride_));
    }
    assert(pool < kNullSlot);
    ++pool_slots_;
    ++live_slots_;
    const auto slot = static_cast<uint32_t>(pool);
    *header(slot) = SlotHeader{};
    return slot;
  }

  void Free(uint32_t slot) {
    assert(slot < pool_slots_);
    SlotHeader* h = header(slot);
    assert(h->free_next == kNullSlot);
    h->free_next = free_head_;
    free_head_ = slot;
    assert(live_slots_ > 0);
    --live_slots_;
  }

  [[nodiscard]] SlotHeader* header(uint32_t slot) {
    return reinterpret_cast<SlotHeader*>(SlotBase(slot));
  }
  [[nodiscard]] const SlotHeader* header(uint32_t slot) const {
    return reinterpret_cast<const SlotHeader*>(SlotBase(slot));
  }
  [[nodiscard]] char* payload(uint32_t slot) {
    return SlotBase(slot) + kHeaderBytes;
  }
  [[nodiscard]] const char* payload(uint32_t slot) const {
    return SlotBase(slot) + kHeaderBytes;
  }

  [[nodiscard]] uint64_t live_slots() const { return live_slots_; }
  [[nodiscard]] uint64_t pool_slots() const { return pool_slots_; }
  [[nodiscard]] size_t pages() const { return pages_.size(); }
  [[nodiscard]] uint64_t resident_bytes() const {
    return pages_.size() * slots_per_page_ * stride_;
  }

  // Free-list integrity: every free slot in range, no cycles, and the
  // chain length matches pool - live (no leak, no double-free).
  [[nodiscard]] bool CheckFreeList() const {
    std::vector<bool> seen(pool_slots_, false);
    uint64_t n = 0;
    for (uint32_t s = free_head_; s != kNullSlot; s = header(s)->free_next) {
      if (s >= pool_slots_ || seen[s]) return false;
      seen[s] = true;
      if (++n > pool_slots_ - live_slots_) return false;
    }
    return n == pool_slots_ - live_slots_;
  }

 private:
  [[nodiscard]] char* SlotBase(uint32_t slot) {
    assert(slot < pool_slots_);
    return pages_[slot / slots_per_page_].get() +
           (slot % slots_per_page_) * stride_;
  }
  [[nodiscard]] const char* SlotBase(uint32_t slot) const {
    assert(slot < pool_slots_);
    return pages_[slot / slots_per_page_].get() +
           (slot % slots_per_page_) * stride_;
  }

  uint64_t stride_;
  uint64_t slots_per_page_;
  std::vector<std::unique_ptr<char[]>> pages_;
  uint32_t free_head_ = kNullSlot;
  uint64_t pool_slots_ = 0;
  uint64_t live_slots_ = 0;
};

}  // namespace cliffhanger
