#include "util/curve.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace cliffhanger {

PiecewiseCurve::PiecewiseCurve(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  assert(xs_.size() == ys_.size());
  assert(std::is_sorted(xs_.begin(), xs_.end()));
}

double PiecewiseCurve::Eval(double x) const {
  if (xs_.empty()) return 0.0;
  if (x <= xs_.front()) {
    // Interpolate from the implied origin when the first sample is positive.
    if (xs_.front() <= 0.0 || x <= 0.0) return x < xs_.front() ? 0.0 : ys_.front();
    return ys_.front() * (x / xs_.front());
  }
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const size_t hi = static_cast<size_t>(it - xs_.begin());
  const size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseCurve::Gradient(double x) const {
  if (xs_.empty() || x >= xs_.back()) return 0.0;
  if (x < xs_.front()) {
    if (xs_.front() <= 0.0) return 0.0;
    return ys_.front() / xs_.front();
  }
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const size_t hi = static_cast<size_t>(it - xs_.begin());
  const size_t lo = hi - 1;
  const double dx = xs_[hi] - xs_[lo];
  return dx > 0.0 ? (ys_[hi] - ys_[lo]) / dx : 0.0;
}

void PiecewiseCurve::AddPoint(double x, double y) {
  assert(xs_.empty() || x > xs_.back());
  xs_.push_back(x);
  ys_.push_back(y);
}

bool PiecewiseCurve::IsConcave(double tolerance) const {
  if (xs_.size() < 2) return true;
  double prev_slope = std::numeric_limits<double>::infinity();
  double prev_x = 0.0;
  double prev_y = 0.0;
  size_t start = 0;
  if (xs_.front() <= 0.0) {
    prev_x = xs_.front();
    prev_y = ys_.front();
    start = 1;
  }
  for (size_t i = start; i < xs_.size(); ++i) {
    const double dx = xs_[i] - prev_x;
    if (dx <= 0.0) continue;
    const double slope = (ys_[i] - prev_y) / dx;
    if (slope > prev_slope + tolerance) return false;
    prev_slope = slope;
    prev_x = xs_[i];
    prev_y = ys_[i];
  }
  return true;
}

PiecewiseCurve UpperConcaveHull(const PiecewiseCurve& curve) {
  if (curve.empty()) return curve;
  // Andrew-monotone-chain style scan keeping only points whose inclusion
  // preserves non-increasing slopes, starting from the origin.
  struct Pt {
    double x, y;
  };
  std::vector<Pt> hull;
  hull.push_back({0.0, 0.0});
  const auto& xs = curve.xs();
  const auto& ys = curve.ys();
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0.0) continue;
    Pt p{xs[i], ys[i]};
    // Pop points that fall below the chord from the new point backwards
    // (cross-product test for a right turn).
    while (hull.size() >= 2) {
      const Pt& b = hull[hull.size() - 1];
      const Pt& a = hull[hull.size() - 2];
      const double cross =
          (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
      if (cross >= 0.0) {
        hull.pop_back();
      } else {
        break;
      }
    }
    // Drop dominated points (lower y at higher x can never be on the upper
    // hull of a hit-rate curve that we clamp to be non-decreasing).
    if (p.y >= hull.back().y || hull.size() == 1) hull.push_back(p);
  }
  std::vector<double> hx, hy;
  hx.reserve(hull.size());
  hy.reserve(hull.size());
  for (const Pt& p : hull) {
    hx.push_back(p.x);
    hy.push_back(p.y);
  }
  return PiecewiseCurve(std::move(hx), std::move(hy));
}

std::vector<double> ConcaveRegression(const std::vector<double>& xs,
                                      const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return ys;

  // Work on per-segment slopes (including the segment from the origin) and
  // enforce a non-increasing sequence with pool-adjacent-violators, weighting
  // each slope by its segment width. The integrated result is the L2-optimal
  // concave non-decreasing fit through the origin.
  struct Block {
    double slope_sum;   // weighted slope sum
    double weight;      // total width
    size_t first, last; // segment index range [first, last]
    [[nodiscard]] double slope() const { return slope_sum / weight; }
  };
  std::vector<double> seg_slope(n);
  std::vector<double> seg_width(n);
  double px = 0.0, py = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - px;
    seg_width[i] = dx > 0.0 ? dx : 1e-12;
    double slope = (ys[i] - py) / seg_width[i];
    seg_slope[i] = std::max(slope, 0.0);  // non-decreasing fit
    px = xs[i];
    py = ys[i];
  }

  std::vector<Block> blocks;
  blocks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    blocks.push_back({seg_slope[i] * seg_width[i], seg_width[i], i, i});
    // Merge while the slope sequence violates non-increasing order.
    while (blocks.size() >= 2 &&
           blocks[blocks.size() - 2].slope() <
               blocks[blocks.size() - 1].slope()) {
      Block top = blocks.back();
      blocks.pop_back();
      Block& prev = blocks.back();
      prev.slope_sum += top.slope_sum;
      prev.weight += top.weight;
      prev.last = top.last;
    }
  }

  std::vector<double> fitted(n);
  double acc = 0.0;
  size_t seg = 0;
  for (const Block& b : blocks) {
    for (size_t i = b.first; i <= b.last; ++i, ++seg) {
      acc += b.slope() * seg_width[i];
      fitted[i] = acc;
    }
  }
  return fitted;
}

PiecewiseCurve ConcavifyCurve(const PiecewiseCurve& curve) {
  return PiecewiseCurve(curve.xs(), ConcaveRegression(curve.xs(), curve.ys()));
}

}  // namespace cliffhanger
