// Key hashing used by the cache hash index and by the Talus request router.
//
// The router maps a key to a stable point in [0, 1); the same key must land on
// the same point across the lifetime of the queue so that moving the split
// ratio migrates only keys near the boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cliffhanger {

// Stateless 64-bit finalizer (Murmur3 fmix64 variant). Good avalanche; used
// to decorrelate sequential key ids produced by the trace generators.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Combine two 64-bit values (app id + key id -> global key).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// FNV-1a for string keys (used by the trace CSV reader when keys are text).
constexpr uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Map a key to a stable uniform double in [0, 1) for partition routing.
// A second mix round keeps router points independent of hash-index buckets.
constexpr double KeyToUnitInterval(uint64_t key) {
  return static_cast<double>(Mix64(key ^ 0xa0761d6478bd642fULL) >> 11) *
         0x1.0p-53;
}

// Route a key to one of `num_shards` server shards. The dedicated salt keeps
// shard routing independent of the hash-index buckets and the Talus router
// points above; multiply-shift range reduction avoids modulo bias and is
// stable for the lifetime of the process (same key -> same shard, always).
constexpr size_t ShardIndexForKey(uint64_t key, size_t num_shards) {
  return num_shards <= 1
             ? 0
             : static_cast<size_t>(
                   (static_cast<__uint128_t>(
                        Mix64(key ^ 0x5ca1ab1e0ddba11ULL)) *
                    num_shards) >>
                   64);
}

}  // namespace cliffhanger
