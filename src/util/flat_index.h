// FlatIndex: an open-addressing hash index from uint64 keys to 32-bit
// arena node indexes — the replacement for the per-queue
// std::unordered_map<uint64_t, Locator>.
//
// Linear probing over two parallel flat arrays (keys, values), power-of-two
// slot counts, Mix64 avalanche hashing, and backward-shift deletion (no
// tombstones, so probe lengths never degrade under churn). A slot is empty
// iff its value is kNotFound — node indexes never take that value because
// the arena reserves it as kNullNode. At the default max load factor of
// 0.7 a lookup touches ~1–2 consecutive cache lines; the map equivalent
// chases at least two cold pointers (bucket, node).
//
// Capacity hints (`Reserve`) size the table up front from the queue's
// reservation so a replay never rehashes mid-stream; without a hint the
// table doubles geometrically, never per item.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hashing.h"

namespace cliffhanger {

class FlatIndex {
 public:
  static constexpr uint32_t kNotFound = UINT32_MAX;
  // Per-slot footprint of the parallel arrays (key + value), exported for
  // the shadow-queue memory-overhead accounting (§5.7).
  static constexpr size_t kSlotBytes = sizeof(uint64_t) + sizeof(uint32_t);

  explicit FlatIndex(size_t expected_entries = 0) {
    Rehash(SlotCountFor(expected_entries));
  }

  [[nodiscard]] uint32_t Find(uint64_t key) const {
    size_t i = Mix64(key) & mask_;
    while (values_[i] != kNotFound) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  [[nodiscard]] bool Contains(uint64_t key) const {
    return Find(key) != kNotFound;
  }

  // `key` must be absent; `value` must not be kNotFound.
  void Insert(uint64_t key, uint32_t value) {
    assert(value != kNotFound);
    if ((size_ + 1) * 10 > (mask_ + 1) * 7) Rehash((mask_ + 1) * 2);
    size_t i = Mix64(key) & mask_;
    while (values_[i] != kNotFound) {
      assert(keys_[i] != key);
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = value;
    ++size_;
  }

  // Overwrite the value stored for `key`; returns false when absent.
  // `value` must not be kNotFound.
  bool Replace(uint64_t key, uint32_t value) {
    assert(value != kNotFound);
    size_t i = Mix64(key) & mask_;
    while (values_[i] != kNotFound) {
      if (keys_[i] == key) {
        values_[i] = value;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  // Remove `key`; returns false when absent. Backward-shift deletion: the
  // vacated slot is refilled with any displaced successor in the probe run,
  // so no tombstones accumulate.
  bool Erase(uint64_t key) {
    size_t i = Mix64(key) & mask_;
    while (values_[i] != kNotFound && keys_[i] != key) {
      i = (i + 1) & mask_;
    }
    if (values_[i] == kNotFound) return false;
    size_t hole = i;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (values_[j] == kNotFound) break;
      const size_t home = Mix64(keys_[j]) & mask_;
      // j's element may fill the hole iff the hole lies within its probe
      // run, i.e. cyclically between home and j.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        keys_[hole] = keys_[j];
        values_[hole] = values_[j];
        hole = j;
      }
    }
    values_[hole] = kNotFound;
    --size_;
    return true;
  }

  // Capacity hint for `n` live entries; grows only (never shrinks).
  void Reserve(size_t n) {
    const size_t target = SlotCountFor(n);
    if (target > mask_ + 1) Rehash(target);
  }

  [[nodiscard]] size_t size() const { return size_; }
  [[nodiscard]] size_t slot_count() const { return mask_ + 1; }
  [[nodiscard]] size_t memory_bytes() const {
    return slot_count() * kSlotBytes;
  }

  // Visit every (key, value) pair; order is unspecified.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i <= mask_; ++i) {
      if (values_[i] != kNotFound) fn(keys_[i], values_[i]);
    }
  }

 private:
  // Smallest power-of-two slot count holding `n` entries at <= 0.7 load.
  [[nodiscard]] static size_t SlotCountFor(size_t n) {
    size_t slots = 16;
    while (slots * 7 < n * 10) slots *= 2;
    return slots;
  }

  void Rehash(size_t new_slots) {
    assert((new_slots & (new_slots - 1)) == 0);
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(new_slots, 0);
    values_.assign(new_slots, kNotFound);
    mask_ = new_slots - 1;
    for (size_t i = 0; i < old_values.size(); ++i) {
      if (old_values[i] == kNotFound) continue;
      size_t j = Mix64(old_keys[i]) & mask_;
      while (values_[j] != kNotFound) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace cliffhanger
