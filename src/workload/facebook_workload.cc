#include "workload/facebook_workload.h"

#include <algorithm>
#include <cmath>

#include "util/hashing.h"

namespace cliffhanger {

namespace {

// Atikoglu/Mutilate parameters.
constexpr double kKeyMu = 30.7;
constexpr double kKeySigma = 8.20;
constexpr double kKeyXi = 0.078;
constexpr double kValueSigma = 214.476;
constexpr double kValueXi = 0.348;

// Inverse-CDF sampling given u in (0, 1).
uint32_t GevKeySize(double u) {
  // GEV quantile: mu + sigma * ((-ln u)^-xi - 1) / xi
  const double q =
      kKeyMu + kKeySigma * (std::pow(-std::log(u), -kKeyXi) - 1.0) / kKeyXi;
  return static_cast<uint32_t>(std::clamp(q, 1.0, 250.0));
}

uint32_t GpValueSize(double u) {
  // Generalized Pareto quantile (theta = 0): sigma * ((1-u)^-xi - 1) / xi
  const double q = kValueSigma * (std::pow(1.0 - u, -kValueXi) - 1.0) / kValueXi;
  return static_cast<uint32_t>(std::clamp(q, 1.0, 1024.0 * 1024.0 - 1.0));
}

}  // namespace

FacebookWorkload::FacebookWorkload(const FacebookWorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (!config_.all_miss) {
    zipf_ = ZipfTable::Get(config_.universe, config_.zipf_alpha);
  }
}

uint32_t FacebookWorkload::SampleKeySize(Rng& rng) {
  // Avoid u == 0 / u == 1 singularities.
  const double u = std::clamp(rng.NextDouble(), 1e-12, 1.0 - 1e-12);
  return GevKeySize(u);
}

uint32_t FacebookWorkload::SampleValueSize(Rng& rng) {
  const double u = std::clamp(rng.NextDouble(), 1e-12, 1.0 - 1e-12);
  return GpValueSize(u);
}

uint32_t FacebookWorkload::KeySizeForKey(uint64_t key) {
  const double u = std::clamp(
      static_cast<double>(Mix64(key ^ 0x6b79ULL) >> 11) * 0x1.0p-53, 1e-12,
      1.0 - 1e-12);
  return GevKeySize(u);
}

uint32_t FacebookWorkload::ValueSizeForKey(uint64_t key) {
  const double u = std::clamp(
      static_cast<double>(Mix64(key ^ 0x76616cULL) >> 11) * 0x1.0p-53, 1e-12,
      1.0 - 1e-12);
  return GpValueSize(u);
}

Request FacebookWorkload::Next() {
  Request r;
  r.app_id = config_.app_id;
  r.time_us = counter_;
  uint64_t rank;
  if (config_.all_miss) {
    rank = 0x7000000000000000ULL + counter_;  // unique key per request
  } else {
    rank = zipf_->Sample(rng_);
  }
  ++counter_;
  r.key = HashCombine(config_.app_id + 0xFB00ULL, rank);
  if (config_.all_miss) r.key = rank;  // keep uniqueness exact
  r.key_size = KeySizeForKey(r.key);
  r.value_size = ValueSizeForKey(r.key);
  r.op = rng_.NextBernoulli(config_.get_fraction) ? Op::kGet : Op::kSet;
  return r;
}

Trace FacebookWorkload::GenerateTrace(uint64_t num_requests) {
  Trace trace;
  trace.Reserve(num_requests);
  for (uint64_t i = 0; i < num_requests; ++i) trace.Append(Next());
  return trace;
}

}  // namespace cliffhanger
