// The synthetic 20-application "Memcachier-like" workload suite.
//
// The paper evaluates on a week-long proprietary trace of the top 20
// applications on one Memcachier server. We cannot ship that trace, so this
// module reconstructs a suite with the same *structural* properties the
// paper reports (see docs/ARCHITECTURE.md for the substitution argument):
//
//   * applications 1, 7, 10, 11, 18, 19 have performance cliffs (the paper's
//     asterisked apps) built from cyclic sequential scans;
//   * applications 4 and 6 exhibit the large-vs-small slab-class imbalance
//     of Table 1 (a churn/large class starves a hot small class under FCFS);
//   * application 5 shifts request weight across six slab classes over the
//     week (Figure 8);
//   * application 9 has working-set drift, defeating one-shot offline
//     solvers (§5.2: "Cliffhanger significantly outperforms the Dynacache
//     solver ... because it is an incremental algorithm");
//   * application 19 has cliffs in both of its slab classes plus a
//     phase burst, reproducing Figure 4/9 and Table 4;
//   * the remaining applications have concave Zipf/hotspot curves at
//     varying provisioning levels.
//
// Virtual time spans one week (604800 s) regardless of trace length, so the
// time axes of Figures 8/9 are comparable with the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace cliffhanger {

// One key stream feeding one slab class of an application. Multiple streams
// may target the same slab class (e.g. a Zipf head plus a scan in class 0 of
// application 19).
struct SuiteStream {
  StreamSpec stream;
  uint32_t value_size = 64;  // fixed representative value size
  double weight = 1.0;       // share of the app's requests (pre-burst)
  // Optional burst window, as a fraction of the app's trace: within
  // [burst_start, burst_end) the stream weight is multiplied by burst_mult.
  double burst_start = 0.0;
  double burst_end = 0.0;
  double burst_mult = 1.0;
};

struct SuiteApp {
  int id = 0;
  std::string name;
  bool has_cliff = false;      // the paper's asterisk
  uint64_t reservation = 0;    // memory reserved on the server (bytes)
  double request_share = 0.0;  // share of server traffic
  std::vector<SuiteStream> streams;
};

// Stateful per-app request generator. Deterministic given (spec, seed).
class AppTraceBuilder {
 public:
  AppTraceBuilder(const SuiteApp& app, uint64_t expected_requests,
                  uint64_t seed);

  [[nodiscard]] Request Next();
  [[nodiscard]] const SuiteApp& app() const { return app_; }

 private:
  [[nodiscard]] size_t PickStream();

  SuiteApp app_;
  uint64_t expected_requests_;
  Rng rng_;
  std::vector<KeyStream> streams_;
  uint64_t counter_ = 0;
};

constexpr uint64_t kWeekUs = 604800ULL * 1000 * 1000;

class MemcachierSuite {
 public:
  // `scale` multiplies universes and reservations, letting tests run the
  // same structure at a fraction of the cost. Default is full scale.
  explicit MemcachierSuite(double scale = 1.0);

  [[nodiscard]] const std::vector<SuiteApp>& apps() const { return apps_; }
  [[nodiscard]] const SuiteApp& app(int id) const;  // 1-based, as in paper
  [[nodiscard]] static int num_apps() { return 20; }

  // Single-application trace of `num_requests` requests; virtual time spans
  // one week.
  [[nodiscard]] Trace GenerateAppTrace(int id, uint64_t num_requests,
                                       uint64_t seed = 42) const;

  // Interleaved multi-application trace; apps picked by request share.
  [[nodiscard]] Trace GenerateMixedTrace(const std::vector<int>& ids,
                                         uint64_t num_requests,
                                         uint64_t seed = 42) const;

  // Total memory reserved by a set of apps (server provisioning helper).
  [[nodiscard]] uint64_t TotalReservation(const std::vector<int>& ids) const;

 private:
  std::vector<SuiteApp> apps_;
};

}  // namespace cliffhanger
