// Key-stream generators: the building blocks for synthetic application
// workloads. Each stream produces key *ranks* in [0, universe); the suite
// maps ranks to namespaced 64-bit keys and assigns deterministic sizes.
//
// Stream kinds and the hit-rate-curve shapes they induce under LRU:
//  - kZipf     : concave curve (steep head, long tail)                — §3.4
//  - kScan     : cliff at `universe` items (sequential re-scan)       — §3.5
//  - kHotspot  : concave with a knee at the hot-set size
//  - kUniform  : near-linear curve up to the universe size
//  - kOneHit   : compulsory misses only (every key unique, hit rate 0)
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {

enum class StreamKind : uint8_t { kZipf, kScan, kHotspot, kUniform, kOneHit };

struct StreamSpec {
  StreamKind kind = StreamKind::kZipf;
  uint64_t universe = 10000;  // number of distinct ranks (ignored by kOneHit)
  double zipf_alpha = 0.9;    // kZipf only
  double hot_fraction = 0.1;  // kHotspot: fraction of universe that is hot
  double hot_prob = 0.9;      // kHotspot: probability a request is hot
  // kScan: width of the convex onset ramp as a fraction of the universe.
  // Each scan cycle covers a random prefix of length in
  // [universe*(1-ramp), universe], biased quadratically toward the full
  // length, so reuse distances ramp up convexly toward the cliff top —
  // the shape of the paper's measured cliffs (Figures 3/4), as opposed to
  // the mathematical step of a fixed-length scan. 0 = pure step.
  double scan_ramp = 0.0;
  // Working-set drift: the rank->key mapping shifts by `drift_per_request`
  // keys per request, emulating applications whose hot set changes over the
  // week (these defeat one-shot offline solvers; Cliffhanger adapts). The
  // drift applies to kZipf and kHotspot streams.
  double drift_per_request = 0.0;
};

// Canonical two-slab-class Zipf trace shared by the smoke/determinism
// tests and the throughput benchmark: Zipf keys, 16-byte key size, value
// size 64 or 400 by key parity (so at least two slab classes compete),
// GETs with an optional explicit-SET fraction. One definition so the
// "same workload shape" claims across tests/benches cannot drift apart.
struct ZipfTraceSpec {
  uint64_t requests = 0;
  uint64_t universe = 30000;
  double zipf_alpha = 0.9;
  uint64_t seed = 2026;
  uint32_t app_id = 1;
  // Fraction of requests that are GETs; the rest are explicit SETs.
  // Exactly 1.0 draws no per-request op variate (bit-compatible with the
  // pure-GET traces the tests were seeded with).
  double get_fraction = 1.0;
  uint32_t key_size = 16;
  uint32_t small_value_size = 64;   // even keys
  uint32_t large_value_size = 400;  // odd keys
};

// Defined in workload/trace.h; forward-declared here to keep this header
// light.
class Trace;
[[nodiscard]] Trace MakeZipfMixTrace(const ZipfTraceSpec& spec);

// Stateful rank stream. Not thread-safe; one instance per (class, trace).
class KeyStream {
 public:
  explicit KeyStream(const StreamSpec& spec);

  // Produces the next key rank. `request_index` is the global position in
  // the app trace (drives scan position and drift).
  [[nodiscard]] uint64_t Next(Rng& rng, uint64_t request_index);

  [[nodiscard]] const StreamSpec& spec() const { return spec_; }

 private:
  StreamSpec spec_;
  std::shared_ptr<const ZipfTable> zipf_;
  uint64_t scan_pos_ = 0;
  uint64_t scan_cycle_len_ = 0;
  uint64_t one_hit_counter_ = 0;
};

}  // namespace cliffhanger
