#include "workload/memcachier_suite.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/hashing.h"
#include "util/units.h"

namespace cliffhanger {

namespace {

using literals::operator""_MiB;
using literals::operator""_KiB;

// Representative value sizes per slab class (key 10-18 B + 32 B overhead
// keeps the total inside one class).
constexpr uint32_t kV0 = 12;      // class 0, chunk 64
constexpr uint32_t kV1 = 70;      // class 1, chunk 128
constexpr uint32_t kV2 = 180;     // class 2, chunk 256
constexpr uint32_t kV3 = 420;     // class 3, chunk 512
constexpr uint32_t kV4 = 900;     // class 4, chunk 1K
constexpr uint32_t kV5 = 1900;    // class 5, chunk 2K
constexpr uint32_t kV6 = 3900;    // class 6, chunk 4K
constexpr uint32_t kV7 = 7900;    // class 7, chunk 8K
constexpr uint32_t kV8 = 15800;   // class 8, chunk 16K
constexpr uint32_t kV9 = 31000;   // class 9, chunk 32K

SuiteStream Zipf(uint32_t value, double weight, uint64_t universe,
                 double alpha, double drift = 0.0) {
  SuiteStream s;
  s.stream.kind = StreamKind::kZipf;
  s.stream.universe = universe;
  s.stream.zipf_alpha = alpha;
  s.stream.drift_per_request = drift;
  s.value_size = value;
  s.weight = weight;
  return s;
}

SuiteStream Scan(uint32_t value, double weight, uint64_t universe,
                 double ramp = 0.0) {
  SuiteStream s;
  s.stream.kind = StreamKind::kScan;
  s.stream.universe = universe;
  s.stream.scan_ramp = ramp;
  s.value_size = value;
  s.weight = weight;
  return s;
}

SuiteStream Hotspot(uint32_t value, double weight, uint64_t universe,
                    double hot_fraction, double hot_prob) {
  SuiteStream s;
  s.stream.kind = StreamKind::kHotspot;
  s.stream.universe = universe;
  s.stream.hot_fraction = hot_fraction;
  s.stream.hot_prob = hot_prob;
  s.value_size = value;
  s.weight = weight;
  return s;
}

SuiteStream Uniform(uint32_t value, double weight, uint64_t universe) {
  SuiteStream s;
  s.stream.kind = StreamKind::kUniform;
  s.stream.universe = universe;
  s.value_size = value;
  s.weight = weight;
  return s;
}

SuiteStream OneHit(uint32_t value, double weight) {
  SuiteStream s;
  s.stream.kind = StreamKind::kOneHit;
  s.stream.universe = 1;
  s.value_size = value;
  s.weight = weight;
  return s;
}

SuiteStream Burst(SuiteStream s, double start, double end, double mult) {
  s.burst_start = start;
  s.burst_end = end;
  s.burst_mult = mult;
  return s;
}

}  // namespace

MemcachierSuite::MemcachierSuite(double scale) {
  assert(scale > 0.0);
  const auto U = [scale](uint64_t universe) {
    return std::max<uint64_t>(16, static_cast<uint64_t>(
                                      std::llround(universe * scale)));
  };
  const auto R = [scale](uint64_t bytes) {
    return std::max<uint64_t>(256 * 1024,
                              static_cast<uint64_t>(std::llround(
                                  static_cast<double>(bytes) * scale)));
  };
  apps_.resize(21);  // 1-based

  // App 1*: the largest tenant; an under-provisioned Zipf class plus a scan
  // cliff. (Table 3: ~81% of top-5 memory, hit rate ~68%.)
  apps_[1] = {1,
              "app01",
              /*has_cliff=*/true,
              R(28_MiB),
              0.17,
              {Zipf(kV3, 0.85, U(220000), 0.70), Scan(kV5, 0.15, U(12000), 0.40)}};

  // App 2: badly under-provisioned Zipf app (Table 3 gives it more memory
  // under cross-app optimization: 27.5% -> 38.6% hit rate).
  apps_[2] = {2,
              "app02",
              false,
              R(4_MiB),
              0.10,
              {Zipf(kV2, 1.0, U(150000), 0.85)}};

  // App 3: small, hot, highly concave; a large-value class plus a hot small
  // class. Source of Figure 1's concave curve (its slab class 9).
  apps_[3] = {3,
              "app03",
              false,
              R(8_MiB),
              0.08,
              {Zipf(kV1, 0.70, U(30000), 1.10), Zipf(kV9, 0.30, U(900), 1.20)}};

  // App 4 (Table 1): small hot class 0 fully fits by default; the large
  // class 1 (91% of GETs) carries all misses; the solver shaves a few
  // percent by shifting class-0 tail memory to class 1.
  apps_[4] = {4,
              "app04",
              false,
              R(8_MiB),
              0.08,
              {Zipf(kV0, 0.09, U(20000), 1.00), Zipf(kV1, 0.91, U(120000), 0.97)}};

  // App 5 (Figure 8): six slab classes (4-9) whose request weights shift
  // over the week, so the hill climber visibly re-balances memory.
  apps_[5] = {5,
              "app05",
              false,
              R(20_MiB),
              0.07,
              {Zipf(kV4, 0.25, U(6000), 1.05),
               Zipf(kV5, 0.20, U(3000), 1.05),
               Burst(Zipf(kV6, 0.15, U(1600), 1.10), 0.5, 1.0, 2.0),
               Zipf(kV7, 0.15, U(700), 1.10),
               Burst(Zipf(kV8, 0.15, U(350), 1.10), 0.0, 0.4, 1.5),
               Burst(Zipf(kV9, 0.10, U(220), 1.15), 0.6, 1.0, 3.0)}};

  // App 6 (Table 1): a churn class (every key unique, pure compulsory
  // misses) grabs pages under FCFS and starves the hot class 2; workload-
  // aware allocation reduces misses by ~90%.
  apps_[6] = {6,
              "app06",
              false,
              R(10_MiB),
              0.06,
              {Zipf(kV0, 0.01, U(8000), 1.10), Zipf(kV2, 0.70, U(30000), 1.00),
               OneHit(kV5, 0.29)}};

  // App 7*: cliff app, moderately provisioned.
  apps_[7] = {7,
              "app07",
              true,
              R(7_MiB),
              0.05,
              {Zipf(kV1, 0.55, U(60000), 0.95), Scan(kV6, 0.37, U(3400), 0.40),
               Uniform(kV6, 0.08, U(12000))}};

  // App 8: well-provisioned single concave class.
  apps_[8] = {8,
              "app08",
              false,
              R(8_MiB),
              0.05,
              {Zipf(kV3, 1.0, U(14000), 1.05)}};

  // App 9: working-set drift; weekly-aggregate curves mislead the offline
  // solver while Cliffhanger tracks the drift (§5.2).
  apps_[9] = {9,
              "app09",
              false,
              R(8_MiB),
              0.05,
              {Burst(Zipf(kV2, 0.55, U(25000), 1.00, /*drift=*/0.02), 0.0,
                     0.5, 3.0),
               Burst(Zipf(kV4, 0.45, U(7000), 1.00, /*drift=*/0.008), 0.5,
                     1.0, 3.0)}};

  // App 10*: cliff in the smallest class plus a concave class.
  apps_[10] = {10,
               "app10",
               true,
               R(3584_KiB),
               0.04,
               {Zipf(kV0, 0.40, U(10000), 1.10), Scan(kV0, 0.35, U(35000), 0.40),
                Zipf(kV3, 0.25, U(9000), 0.90)}};

  // App 11* (Figure 3): a steep cliff in slab class 6 — hit rate is a few
  // percent below the cliff and ~0.8 above it.
  apps_[11] = {11,
               "app11",
               true,
               R(20_MiB),
               0.04,
               {Scan(kV6, 0.72, U(4500), 0.35), Zipf(kV6, 0.05, U(200), 1.20),
                OneHit(kV6, 0.13), Uniform(kV6, 0.10, U(15000))}};

  // App 12: moderately provisioned, low-alpha Zipf (flat-ish concave curve).
  apps_[12] = {12,
               "app12",
               false,
               R(6_MiB),
               0.035,
               {Zipf(kV1, 1.0, U(80000), 0.80)}};

  // App 13: two balanced concave classes; solver and Cliffhanger tie (§5.2).
  apps_[13] = {13,
               "app13",
               false,
               R(10_MiB),
               0.03,
               {Zipf(kV2, 0.5, U(40000), 0.95), Zipf(kV4, 0.5, U(9000), 0.95)}};

  // App 14: churn class starving a hot class — large solver win.
  apps_[14] = {14,
               "app14",
               false,
               R(8_MiB),
               0.03,
               {OneHit(kV7, 0.25), Zipf(kV1, 0.75, U(45000), 1.05)}};

  // App 15: hotspot workload (concave with a sharp knee).
  apps_[15] = {15,
               "app15",
               false,
               R(6_MiB),
               0.025,
               {Hotspot(kV3, 1.0, U(30000), 0.05, 0.95)}};

  // App 16: a huge flat large-value class crowds out a hot tiny class.
  apps_[16] = {16,
               "app16",
               false,
               R(8_MiB),
               0.025,
               {Zipf(kV8, 0.30, U(2500), 0.60), Zipf(kV0, 0.70, U(60000), 1.05)}};

  // App 17: churn + hot class, like 14 but smaller.
  apps_[17] = {17,
               "app17",
               false,
               R(7_MiB),
               0.02,
               {OneHit(kV5, 0.20), Zipf(kV2, 0.80, U(35000), 1.10)}};

  // App 18*: cliff class that bait-and-switches the concavified solver: the
  // solver's concave fit of the scan ramp under-prices the cliff top, it
  // allocates just below the cliff, and misses explode (paper: 13.6x).
  apps_[18] = {18,
               "app18",
               true,
               R(10_MiB),
               0.02,
               {Scan(kV3, 0.55, U(16000), 0.30), Zipf(kV3, 0.05, U(3000), 1.20),
                Zipf(kV1, 0.40, U(15000), 0.95)}};

  // App 19* (Figures 4 and 9, Table 4): cliffs in both classes; class 1
  // arrives as a mid-week burst so hill climbing between the classes also
  // matters.
  apps_[19] = {19,
               "app19",
               true,
               R(1152_KiB),
               0.02,
               {Zipf(kV0, 0.34, U(1800), 1.30), Scan(kV0, 0.43, U(13000), 0.45),
                Uniform(kV0, 0.07, U(20000)),
                Burst(Zipf(kV2, 0.06, U(1200), 1.20), 0.60, 0.75, 4.0),
                Burst(Scan(kV2, 0.10, U(4500), 0.40), 0.60, 0.75, 4.0)}};

  // App 20: small, comfortably provisioned.
  apps_[20] = {20,
               "app20",
               false,
               R(2_MiB),
               0.015,
               {Zipf(kV1, 1.0, U(12000), 1.00)}};
}

const SuiteApp& MemcachierSuite::app(int id) const {
  if (id < 1 || id > 20) throw std::out_of_range("suite app id");
  return apps_[static_cast<size_t>(id)];
}

AppTraceBuilder::AppTraceBuilder(const SuiteApp& app,
                                 uint64_t expected_requests, uint64_t seed)
    : app_(app),
      expected_requests_(std::max<uint64_t>(1, expected_requests)),
      rng_(HashCombine(seed, static_cast<uint64_t>(app.id))) {
  streams_.reserve(app_.streams.size());
  for (const SuiteStream& s : app_.streams) streams_.emplace_back(s.stream);
}

size_t AppTraceBuilder::PickStream() {
  const double progress =
      static_cast<double>(counter_) / static_cast<double>(expected_requests_);
  double total = 0.0;
  // Small stream counts (<= 5) make a linear weighted pick cheap.
  double weights[16];
  const size_t n = app_.streams.size();
  for (size_t i = 0; i < n; ++i) {
    const SuiteStream& s = app_.streams[i];
    double w = s.weight;
    if (progress >= s.burst_start && progress < s.burst_end) w *= s.burst_mult;
    weights[i] = w;
    total += w;
  }
  double u = rng_.NextDouble() * total;
  for (size_t i = 0; i < n; ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return n - 1;
}

Request AppTraceBuilder::Next() {
  const size_t idx = PickStream();
  const SuiteStream& spec = app_.streams[idx];
  const uint64_t rank = streams_[idx].Next(rng_, counter_);

  Request r;
  r.app_id = static_cast<uint32_t>(app_.id);
  // Namespace keys by (app, stream) so streams sharing a slab class remain
  // distinct key populations.
  r.key = HashCombine((static_cast<uint64_t>(app_.id) << 8) | idx, rank);
  r.key_size = 10 + static_cast<uint32_t>(Mix64(r.key) % 9);  // 10..18, ~14 avg
  r.value_size = spec.value_size;
  r.op = Op::kGet;
  r.time_us = static_cast<uint64_t>(
      static_cast<double>(counter_) /
      static_cast<double>(expected_requests_) * static_cast<double>(kWeekUs));
  ++counter_;
  return r;
}

Trace MemcachierSuite::GenerateAppTrace(int id, uint64_t num_requests,
                                        uint64_t seed) const {
  AppTraceBuilder builder(app(id), num_requests, seed);
  Trace trace;
  trace.Reserve(num_requests);
  for (uint64_t i = 0; i < num_requests; ++i) trace.Append(builder.Next());
  return trace;
}

Trace MemcachierSuite::GenerateMixedTrace(const std::vector<int>& ids,
                                          uint64_t num_requests,
                                          uint64_t seed) const {
  double total_share = 0.0;
  for (const int id : ids) total_share += app(id).request_share;

  std::vector<AppTraceBuilder> builders;
  std::vector<double> shares;
  builders.reserve(ids.size());
  for (const int id : ids) {
    const SuiteApp& a = app(id);
    const double share = a.request_share / total_share;
    builders.emplace_back(
        a, static_cast<uint64_t>(share * static_cast<double>(num_requests)),
        seed);
    shares.push_back(share);
  }

  Rng rng(HashCombine(seed, 0x5347454eULL));
  Trace trace;
  trace.Reserve(num_requests);
  for (uint64_t i = 0; i < num_requests; ++i) {
    double u = rng.NextDouble();
    size_t pick = builders.size() - 1;
    for (size_t j = 0; j < shares.size(); ++j) {
      u -= shares[j];
      if (u <= 0.0) {
        pick = j;
        break;
      }
    }
    Request r = builders[pick].Next();
    // Mixed traces share the server's clock.
    r.time_us = static_cast<uint64_t>(
        static_cast<double>(i) / static_cast<double>(num_requests) *
        static_cast<double>(kWeekUs));
    trace.Append(r);
  }
  return trace;
}

uint64_t MemcachierSuite::TotalReservation(const std::vector<int>& ids) const {
  uint64_t total = 0;
  for (const int id : ids) total += app(id).reservation;
  return total;
}

}  // namespace cliffhanger
