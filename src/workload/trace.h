// In-memory traces plus CSV persistence, mirroring the role of the
// (proprietary) Memcachier trace files in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "workload/request.h"

namespace cliffhanger {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<Request> requests)
      : requests_(std::move(requests)) {}

  void Append(const Request& r) { requests_.push_back(r); }
  void Reserve(size_t n) { requests_.reserve(n); }

  [[nodiscard]] size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] const Request& operator[](size_t i) const {
    return requests_[i];
  }
  [[nodiscard]] const std::vector<Request>& requests() const {
    return requests_;
  }
  [[nodiscard]] auto begin() const { return requests_.begin(); }
  [[nodiscard]] auto end() const { return requests_.end(); }

  // Subset containing only requests for one application.
  [[nodiscard]] Trace FilterApp(uint32_t app_id) const;

  // Summary statistics useful for workload validation.
  struct Stats {
    uint64_t gets = 0;
    uint64_t sets = 0;     // all store-shaped ops: set/cas/append/prepend
    uint64_t deletes = 0;
    uint64_t touches = 0;  // touch/incr/decr (size-preserving mutations)
    uint64_t unique_keys = 0;
    uint64_t total_value_bytes = 0;
    uint64_t max_value_size = 0;
  };
  [[nodiscard]] Stats ComputeStats() const;

  // CSV format: "app_id,op,key,key_size,value_size,time_us[,expiry_s]"
  // with one header line; the expiry column is optional on load (legacy
  // six-column files read as expiry 0) and always written on save. Op
  // tokens: GET SET DEL TOU INC DEC CAS APP PRE. Returns false on I/O
  // failure.
  [[nodiscard]] bool SaveCsv(const std::string& path) const;
  [[nodiscard]] static Trace LoadCsv(const std::string& path, bool* ok);

 private:
  std::vector<Request> requests_;
};

}  // namespace cliffhanger
