// Facebook ETC-like workload generator — our substitute for the Mutilate
// load generator used by the paper's micro-benchmarks (§5.1, Tables 6-7).
//
// Distributions follow Atikoglu et al., "Workload Analysis of a Large-Scale
// Key-Value Store" (SIGMETRICS'12), as popularized by Mutilate:
//   key size   ~ Generalized Extreme Value (mu = 30.7, sigma = 8.20,
//                k = 0.078), clamped to [1, 250] bytes
//   value size ~ Generalized Pareto (theta = 0, sigma = 214.476, k = 0.348),
//                clamped to [1, 1 MiB)
//   op mix     ~ 96.7% GET / 3.3% SET by default (ETC pool)
//   popularity ~ Zipf(0.99) over the configured universe
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/rng.h"
#include "workload/request.h"
#include "workload/trace.h"
#include "workload/zipf.h"

namespace cliffhanger {

struct FacebookWorkloadConfig {
  uint64_t universe = 1 << 20;
  double get_fraction = 0.967;
  double zipf_alpha = 0.99;
  uint32_t app_id = 0;
  // When true every GET key is unique so that every request misses — the
  // paper's worst-case overhead scenario ("synthetic trace where all keys
  // are unique and all queries miss the cache", §5.6).
  bool all_miss = false;
  uint64_t seed = 0xFBFBFBFBULL;
};

class FacebookWorkload {
 public:
  explicit FacebookWorkload(const FacebookWorkloadConfig& config);

  // Generates the next request. Value sizes are a deterministic function of
  // the key, so refills after a miss are self-consistent.
  [[nodiscard]] Request Next();

  [[nodiscard]] Trace GenerateTrace(uint64_t num_requests);

  // Size samplers exposed for tests.
  [[nodiscard]] static uint32_t SampleKeySize(Rng& rng);
  [[nodiscard]] static uint32_t SampleValueSize(Rng& rng);
  // Deterministic per-key sizes (hash-seeded sampling).
  [[nodiscard]] static uint32_t KeySizeForKey(uint64_t key);
  [[nodiscard]] static uint32_t ValueSizeForKey(uint64_t key);

 private:
  FacebookWorkloadConfig config_;
  Rng rng_;
  std::shared_ptr<const ZipfTable> zipf_;
  uint64_t counter_ = 0;
};

}  // namespace cliffhanger
