#include "workload/zipf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <mutex>

namespace cliffhanger {

ZipfTable::ZipfTable(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += std::pow(static_cast<double>(k + 1), -alpha);
    cdf_[k] = acc;
  }
  const double norm = 1.0 / acc;
  for (double& c : cdf_) c *= norm;
  cdf_.back() = 1.0;
}

uint64_t ZipfTable::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfTable::Pmf(uint64_t rank) const {
  if (rank >= n_) return 0.0;
  const double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

std::shared_ptr<const ZipfTable> ZipfTable::Get(uint64_t n, double alpha) {
  // Keyed by (n, alpha scaled to fixed point) — a handful of configurations
  // recur across the 20-app suite, so sharing saves both time and memory.
  static std::mutex mu;
  static std::map<std::pair<uint64_t, int64_t>,
                  std::weak_ptr<const ZipfTable>>
      cache;
  const std::pair<uint64_t, int64_t> key{
      n, static_cast<int64_t>(std::lround(alpha * 10000.0))};
  std::lock_guard<std::mutex> lock(mu);
  if (auto found = cache[key].lock()) return found;
  auto table = std::make_shared<const ZipfTable>(n, alpha);
  cache[key] = table;
  return table;
}

}  // namespace cliffhanger
