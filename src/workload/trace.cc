#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

namespace cliffhanger {

namespace {

const char* OpToToken(Op op) {
  switch (op) {
    case Op::kGet:
      return "GET";
    case Op::kSet:
      return "SET";
    case Op::kDelete:
      return "DEL";
  }
  return "GET";
}

bool TokenToOp(const char* token, Op* op) {
  if (token[0] == 'G') {
    *op = Op::kGet;
    return true;
  }
  if (token[0] == 'S') {
    *op = Op::kSet;
    return true;
  }
  if (token[0] == 'D') {
    *op = Op::kDelete;
    return true;
  }
  return false;
}

}  // namespace

Trace Trace::FilterApp(uint32_t app_id) const {
  Trace out;
  for (const Request& r : requests_) {
    if (r.app_id == app_id) out.Append(r);
  }
  return out;
}

Trace::Stats Trace::ComputeStats() const {
  Stats s;
  std::unordered_set<uint64_t> keys;
  keys.reserve(requests_.size() / 4 + 1);
  for (const Request& r : requests_) {
    switch (r.op) {
      case Op::kGet:
        ++s.gets;
        break;
      case Op::kSet:
        ++s.sets;
        break;
      case Op::kDelete:
        ++s.deletes;
        break;
    }
    keys.insert(r.key);
    s.total_value_bytes += r.value_size;
    s.max_value_size = std::max<uint64_t>(s.max_value_size, r.value_size);
  }
  s.unique_keys = keys.size();
  return s;
}

bool Trace::SaveCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("app_id,op,key,key_size,value_size,time_us\n", f);
  for (const Request& r : requests_) {
    std::fprintf(f, "%u,%s,%llu,%u,%u,%llu\n", r.app_id, OpToToken(r.op),
                 static_cast<unsigned long long>(r.key), r.key_size,
                 r.value_size, static_cast<unsigned long long>(r.time_us));
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

Trace Trace::LoadCsv(const std::string& path, bool* ok) {
  *ok = false;
  Trace out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Tolerate CRLF files and trailing blank lines: strip the line ending,
    // skip lines that are empty once stripped. (A blank line is not data —
    // editors and `echo >>` routinely add one at EOF.)
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) continue;  // before the header skip: a leading blank
                             // line must not swallow the real header
    if (first) {
      first = false;  // skip header (the first non-blank line)
      continue;
    }
    unsigned app_id = 0;
    char op_token[8] = {};
    unsigned long long key = 0;
    unsigned key_size = 0;
    unsigned value_size = 0;
    unsigned long long time_us = 0;
    const int fields =
        std::sscanf(line, "%u,%3[A-Z],%llu,%u,%u,%llu", &app_id, op_token,
                    &key, &key_size, &value_size, &time_us);
    if (fields != 6) {
      std::fclose(f);
      return out;
    }
    Request r;
    r.app_id = app_id;
    if (!TokenToOp(op_token, &r.op)) {
      std::fclose(f);
      return out;
    }
    r.key = key;
    r.key_size = key_size;
    r.value_size = value_size;
    r.time_us = time_us;
    out.Append(r);
  }
  std::fclose(f);
  *ok = true;
  return out;
}

}  // namespace cliffhanger
