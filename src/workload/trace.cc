#include "workload/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

namespace cliffhanger {

namespace {

const char* OpToToken(Op op) {
  switch (op) {
    case Op::kGet:
      return "GET";
    case Op::kSet:
      return "SET";
    case Op::kDelete:
      return "DEL";
    case Op::kTouch:
      return "TOU";
    case Op::kIncr:
      return "INC";
    case Op::kDecr:
      return "DEC";
    case Op::kCas:
      return "CAS";
    case Op::kAppend:
      return "APP";
    case Op::kPrepend:
      return "PRE";
  }
  return "GET";
}

bool TokenToOp(const char* token, Op* op) {
  // Full-token matches: DEL and DEC share a prefix, so first-letter
  // dispatch is no longer enough.
  struct Mapping {
    const char* token;
    Op op;
  };
  static constexpr Mapping kMappings[] = {
      {"GET", Op::kGet},    {"SET", Op::kSet},    {"DEL", Op::kDelete},
      {"TOU", Op::kTouch},  {"INC", Op::kIncr},   {"DEC", Op::kDecr},
      {"CAS", Op::kCas},    {"APP", Op::kAppend}, {"PRE", Op::kPrepend},
  };
  for (const Mapping& m : kMappings) {
    if (std::strcmp(token, m.token) == 0) {
      *op = m.op;
      return true;
    }
  }
  return false;
}

}  // namespace

Trace Trace::FilterApp(uint32_t app_id) const {
  Trace out;
  for (const Request& r : requests_) {
    if (r.app_id == app_id) out.Append(r);
  }
  return out;
}

Trace::Stats Trace::ComputeStats() const {
  Stats s;
  std::unordered_set<uint64_t> keys;
  keys.reserve(requests_.size() / 4 + 1);
  for (const Request& r : requests_) {
    switch (r.op) {
      case Op::kGet:
        ++s.gets;
        break;
      case Op::kSet:
      case Op::kCas:
      case Op::kAppend:
      case Op::kPrepend:
        ++s.sets;
        break;
      case Op::kDelete:
        ++s.deletes;
        break;
      case Op::kTouch:
      case Op::kIncr:
      case Op::kDecr:
        ++s.touches;
        break;
    }
    keys.insert(r.key);
    s.total_value_bytes += r.value_size;
    s.max_value_size = std::max<uint64_t>(s.max_value_size, r.value_size);
  }
  s.unique_keys = keys.size();
  return s;
}

bool Trace::SaveCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("app_id,op,key,key_size,value_size,time_us,expiry_s\n", f);
  for (const Request& r : requests_) {
    std::fprintf(f, "%u,%s,%llu,%u,%u,%llu,%u\n", r.app_id, OpToToken(r.op),
                 static_cast<unsigned long long>(r.key), r.key_size,
                 r.value_size, static_cast<unsigned long long>(r.time_us),
                 r.expiry_s);
  }
  const bool ok = std::fclose(f) == 0;
  return ok;
}

Trace Trace::LoadCsv(const std::string& path, bool* ok) {
  *ok = false;
  Trace out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return out;
  char line[512];
  bool first = true;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // Tolerate CRLF files and trailing blank lines: strip the line ending,
    // skip lines that are empty once stripped. (A blank line is not data —
    // editors and `echo >>` routinely add one at EOF.)
    size_t len = std::strlen(line);
    while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
      line[--len] = '\0';
    }
    if (len == 0) continue;  // before the header skip: a leading blank
                             // line must not swallow the real header
    if (first) {
      first = false;  // skip header (the first non-blank line)
      continue;
    }
    unsigned app_id = 0;
    char op_token[8] = {};
    unsigned long long key = 0;
    unsigned key_size = 0;
    unsigned value_size = 0;
    unsigned long long time_us = 0;
    unsigned expiry_s = 0;
    // The expiry column is optional: legacy six-column files load with
    // expiry 0 (never expires).
    const int fields =
        std::sscanf(line, "%u,%3[A-Z],%llu,%u,%u,%llu,%u", &app_id, op_token,
                    &key, &key_size, &value_size, &time_us, &expiry_s);
    if (fields != 6 && fields != 7) {
      std::fclose(f);
      return out;
    }
    Request r;
    r.app_id = app_id;
    if (!TokenToOp(op_token, &r.op)) {
      std::fclose(f);
      return out;
    }
    r.key = key;
    r.key_size = key_size;
    r.value_size = value_size;
    r.time_us = time_us;
    r.expiry_s = expiry_s;
    out.Append(r);
  }
  std::fclose(f);
  *ok = true;
  return out;
}

}  // namespace cliffhanger
