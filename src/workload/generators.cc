#include "workload/generators.h"

#include <cassert>
#include <cmath>

#include "workload/trace.h"

namespace cliffhanger {

Trace MakeZipfMixTrace(const ZipfTraceSpec& spec) {
  StreamSpec stream_spec;
  stream_spec.kind = StreamKind::kZipf;
  stream_spec.universe = spec.universe;
  stream_spec.zipf_alpha = spec.zipf_alpha;
  KeyStream stream(stream_spec);
  Rng rng(spec.seed);
  Trace trace;
  trace.Reserve(spec.requests);
  for (uint64_t i = 0; i < spec.requests; ++i) {
    Request r;
    r.key = stream.Next(rng, i);
    r.app_id = spec.app_id;
    r.key_size = spec.key_size;
    r.value_size =
        (r.key % 2 == 0) ? spec.small_value_size : spec.large_value_size;
    if (spec.get_fraction < 1.0) {
      r.op = rng.NextBernoulli(spec.get_fraction) ? Op::kGet : Op::kSet;
    }
    r.time_us = i;
    trace.Append(r);
  }
  return trace;
}

KeyStream::KeyStream(const StreamSpec& spec) : spec_(spec) {
  assert(spec_.universe > 0 || spec_.kind == StreamKind::kOneHit);
  if (spec_.kind == StreamKind::kZipf) {
    zipf_ = ZipfTable::Get(spec_.universe, spec_.zipf_alpha);
  }
  scan_cycle_len_ = spec_.universe;
}

uint64_t KeyStream::Next(Rng& rng, uint64_t request_index) {
  uint64_t rank = 0;
  switch (spec_.kind) {
    case StreamKind::kZipf:
      rank = zipf_->Sample(rng);
      break;
    case StreamKind::kScan:
      rank = scan_pos_;
      ++scan_pos_;
      if (scan_pos_ >= scan_cycle_len_) {
        scan_pos_ = 0;
        if (spec_.scan_ramp > 0.0) {
          // Next cycle covers a random prefix, quadratically biased toward
          // the full universe (convex onset ramp — see StreamSpec).
          const double u = rng.NextDouble();
          const double cut = spec_.scan_ramp * u * u *
                             static_cast<double>(spec_.universe);
          scan_cycle_len_ = std::max<uint64_t>(
              1, spec_.universe - static_cast<uint64_t>(cut));
        }
      }
      break;
    case StreamKind::kHotspot: {
      const auto hot = static_cast<uint64_t>(
          std::max(1.0, spec_.hot_fraction * static_cast<double>(
                                                 spec_.universe)));
      if (rng.NextBernoulli(spec_.hot_prob)) {
        rank = rng.NextBounded(hot);
      } else {
        rank = hot + rng.NextBounded(std::max<uint64_t>(1, spec_.universe - hot));
      }
      break;
    }
    case StreamKind::kUniform:
      rank = rng.NextBounded(spec_.universe);
      break;
    case StreamKind::kOneHit:
      // Every request a brand-new key: pure compulsory misses. Used for
      // churn-heavy slab classes that grab memory under FCFS yet never hit.
      return 0x4000000000000000ULL + one_hit_counter_++;
  }
  if (spec_.drift_per_request > 0.0) {
    // Shift the rank->key identity map forward over time: rank r at time t
    // denotes key (r + offset(t)), so the hot head slides through the key
    // space and the working set gradually changes.
    const auto offset = static_cast<uint64_t>(
        spec_.drift_per_request * static_cast<double>(request_index));
    rank = rank + offset;
  }
  return rank;
}

}  // namespace cliffhanger
