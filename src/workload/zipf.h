// Zipfian key-popularity sampling.
//
// Web cache request popularity is well modelled as Zipf(alpha) (Atikoglu et
// al., SIGMETRICS'12 report alpha in [0.9, 1] for Facebook's ETC pool). We
// sample by exact CDF inversion over a precomputed cumulative table; tables
// are cached and shared across streams with identical (n, alpha).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace cliffhanger {

class ZipfTable {
 public:
  // P(rank = k) proportional to (k+1)^-alpha for k in [0, n).
  ZipfTable(uint64_t n, double alpha);

  [[nodiscard]] uint64_t Sample(Rng& rng) const;
  [[nodiscard]] uint64_t n() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  // Probability of a given rank (for tests / analytical cross-checks).
  [[nodiscard]] double Pmf(uint64_t rank) const;

  // Shared-cache factory: identical (n, alpha) pairs reuse one table.
  [[nodiscard]] static std::shared_ptr<const ZipfTable> Get(uint64_t n,
                                                            double alpha);

 private:
  uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

}  // namespace cliffhanger
