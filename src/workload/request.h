// The request model shared by generators, the simulator and the caches.
#pragma once

#include <cstdint>

namespace cliffhanger {

// The full memcached-shaped op set. The simulator maps the value-level
// verbs onto the residency core: kCas/kAppend/kPrepend are stores at the
// request's (new) value_size, kIncr/kDecr are same-size rewrites (a Touch
// at the core: recency moves, no statistics), kTouch refreshes expiry.
enum class Op : uint8_t {
  kGet,
  kSet,
  kDelete,
  kTouch,
  kIncr,
  kDecr,
  kCas,
  kAppend,
  kPrepend,
};

// One cache operation. Keys are opaque 64-bit ids (generators namespace them
// per app/class via hashing); key_size/value_size carry the byte sizes used
// for slab-class selection and memory accounting. time_us is virtual time —
// it doubles as the expiry clock: the simulator derives now_s = time_us/1e6
// for lazy TTL evaluation, so a TTL-bearing trace replays deterministically.
struct Request {
  uint64_t key = 0;
  uint64_t time_us = 0;
  uint32_t app_id = 0;
  uint32_t key_size = 16;
  uint32_t value_size = 0;
  uint32_t expiry_s = 0;  // absolute expiry second stored on fill; 0 = never
  Op op = Op::kGet;

  [[nodiscard]] bool is_get() const { return op == Op::kGet; }
  [[nodiscard]] bool is_set() const { return op == Op::kSet; }
};

}  // namespace cliffhanger
