// The request model shared by generators, the simulator and the caches.
#pragma once

#include <cstdint>

namespace cliffhanger {

enum class Op : uint8_t { kGet, kSet, kDelete };

// One cache operation. Keys are opaque 64-bit ids (generators namespace them
// per app/class via hashing); key_size/value_size carry the byte sizes used
// for slab-class selection and memory accounting. time_us is virtual time.
struct Request {
  uint64_t key = 0;
  uint64_t time_us = 0;
  uint32_t app_id = 0;
  uint32_t key_size = 16;
  uint32_t value_size = 0;
  Op op = Op::kGet;

  [[nodiscard]] bool is_get() const { return op == Op::kGet; }
  [[nodiscard]] bool is_set() const { return op == Op::kSet; }
};

}  // namespace cliffhanger
