// ValueStore: the in-arena payload owner for one AppCache — key id ->
// (slab class, value slot), with the slot bytes living in per-class
// ValueArenas (util/value_arena.h).
//
// This replaces the network adapter's heap side-table of std::strings: the
// bytes clients store now live inside slab-class-sized slots, so
// `value_bytes()` / `Occupancy()` report real resident memory and the
// paper's reservation accounting finally governs the payload bytes too.
//
// Residency invariant: a key has a slot iff it is physically resident in
// its class queue. The store keeps itself truthful by being the queue's
// SegmentedLru::Listener —
//  - OnValueDrop (physical -> shadow demotion) frees the slot eagerly but
//    keeps the index entry as shadow-only (class remembered, no payload),
//    so later lookups keep probing the correct slab class;
//  - OnKeyGone (final eviction / delete / lazy-expiry erase) frees the
//    slot and forgets the key entirely.
// Eager reclamation is what closes the old adapter's documented window
// where add/replace consulted a stale liveness guess between an eviction
// and the next GET.
//
// Index packing: 4-bit slab class | 28-bit slot id in one uint32 FlatIndex
// value. kNoSlot (all-28-bits-set) marks shadow-only entries; the packed
// value is always < FlatIndex::kNotFound, so it never aliases "absent".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/segmented_lru.h"
#include "util/flat_index.h"
#include "util/slab_geometry.h"
#include "util/value_arena.h"

namespace cliffhanger {

// A borrowed, zero-copy window onto one stored value. `data` points into
// the slot's arena page; see core/sharded_server.h for the lifetime rule
// (stable until the next mutation of the owning shard).
struct ValueView {
  const char* data = nullptr;
  uint32_t size = 0;
  uint32_t flags = 0;
  uint64_t cas = 0;
  uint32_t stored_s = 0;  // store second, compared against the flush point
  uint32_t expiry_s = 0;  // absolute expiry (from the queue node); 0 = never
};

class ValueStore final : public SegmentedLru::Listener {
 public:
  static constexpr uint32_t kNoSlot = (1u << 28) - 1;  // shadow-only marker

  struct Ref {
    bool found = false;
    int slab_class = -1;
    uint32_t slot = kNoSlot;
    [[nodiscard]] bool has_slot() const { return found && slot != kNoSlot; }
  };

  ValueStore() = default;
  ValueStore(const ValueStore&) = delete;
  ValueStore& operator=(const ValueStore&) = delete;

  [[nodiscard]] Ref Find(uint64_t key) const;

  // Copy `size` bytes (and the header attributes) into a fresh slot of
  // `slab_class`'s arena and register the key as physically resident,
  // superseding any previous registration (whose slot, if any, is freed).
  void StorePhysical(uint64_t key, int slab_class, const void* data,
                     uint32_t size, uint32_t flags, uint64_t cas,
                     uint32_t stored_s);
  // Register the key as shadow-only in `slab_class`: the class survives so
  // later probes stay in the right queue, but no payload is held.
  void RegisterShadow(uint64_t key, int slab_class);
  // Overwrite an existing slot's payload and header in place (same class;
  // `size` must fit the class's chunk). Flags are preserved only if the
  // caller re-passes them — arithmetic/concat rewrites keep the old flags,
  // which the caller reads from Header() first.
  void RewriteInPlace(const Ref& ref, const void* data, uint32_t size,
                      uint32_t flags, uint64_t cas, uint32_t stored_s);

  [[nodiscard]] const ValueArena::SlotHeader& Header(const Ref& ref) const;
  // Fills everything except expiry_s (the queue node owns expiry).
  void FillView(const Ref& ref, ValueView* view) const;

  // SegmentedLru::Listener — fired by the class queues mid-eviction.
  void OnValueDrop(uint64_t key) override;
  void OnKeyGone(uint64_t key) override;

  // Real memory accounting (the `stats` surface).
  [[nodiscard]] uint64_t value_bytes() const { return value_bytes_; }
  [[nodiscard]] size_t tracked_keys() const { return index_.size(); }
  struct ClassOccupancy {
    int slab_class = 0;
    uint32_t chunk_size = 0;
    uint64_t used_chunks = 0;   // live slots (= physically resident items)
    uint64_t pool_chunks = 0;   // allocated slots (live + free-list)
    uint64_t resident_bytes = 0;  // page bytes actually held from the heap
  };
  [[nodiscard]] std::vector<ClassOccupancy> Occupancy() const;

  // Debug/test: every arena free-list intact and the byte counter equal to
  // the sum of live slot sizes.
  [[nodiscard]] bool CheckInvariants() const;

 private:
  [[nodiscard]] static uint32_t Pack(int slab_class, uint32_t slot) {
    return (static_cast<uint32_t>(slab_class) << 28) | slot;
  }
  ValueArena& ArenaFor(int slab_class);
  // Free ref's slot (if any) and subtract its bytes. Returns the packed
  // shadow marker for the ref's class.
  uint32_t DropSlot(const Ref& ref);

  FlatIndex index_;
  std::unique_ptr<ValueArena> arenas_[kMaxSlabClasses];
  uint64_t value_bytes_ = 0;
};

}  // namespace cliffhanger
