// GlobalLogQueue: simulation of a log-structured memory cache (RAMCloud-
// style LSM) running one global LRU over all of an application's items at
// 100% memory utilization — no slab classes, no internal fragmentation.
// This is the "Log-structured Hitrate" column of the paper's Table 2
// ("such a scheme does not exist in practice"; it is an upper bound for
// what removing slab fragmentation can buy).
#pragma once

#include <cstddef>
#include <cstdint>

#include "cache/segmented_lru.h"
#include "cache/types.h"

namespace cliffhanger {

class GlobalLogQueue final : public ClassQueue {
 public:
  explicit GlobalLogQueue(uint64_t capacity_bytes);

  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  bool Touch(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return lru_.physical_bytes();
  }
  [[nodiscard]] size_t physical_items() const override {
    return lru_.physical_items();
  }
  // Structural self-check of the underlying segment/arena state; tests call
  // this after expiry-driven erases (which splice nodes out mid-queue).
  [[nodiscard]] bool CheckInvariants() const { return lru_.CheckInvariants(); }

 private:
  void ReserveFromCapacity();

  uint64_t capacity_bytes_;
  SegmentedLru lru_;
};

}  // namespace cliffhanger
