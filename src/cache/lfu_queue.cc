#include "cache/lfu_queue.h"

#include <cassert>

namespace cliffhanger {

LfuQueue::LfuQueue(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

void LfuQueue::Bump(uint64_t key) {
  auto it = index_.find(key);
  assert(it != index_.end());
  const uint64_t freq = it->second.freq;
  auto bucket = buckets_.find(freq);
  bucket->second.erase(it->second.it);
  if (bucket->second.empty()) buckets_.erase(bucket);
  auto& next = buckets_[freq + 1];
  next.push_front(key);
  it->second = Locator{freq + 1, next.begin()};
}

void LfuQueue::EvictOne() {
  if (buckets_.empty()) return;
  auto bucket = buckets_.begin();  // lowest frequency
  const uint64_t victim = bucket->second.back();  // LRU within the bucket
  bucket->second.pop_back();
  if (bucket->second.empty()) buckets_.erase(bucket);
  index_.erase(victim);
}

GetResult LfuQueue::Get(const ItemMeta& item) {
  GetResult result;
  if (index_.find(item.key) != index_.end()) {
    Bump(item.key);
    result.hit = true;
    result.region = HitRegion::kPhysical;
  }
  return result;
}

void LfuQueue::Fill(const ItemMeta& item) {
  if (capacity_items_ == 0) return;
  if (index_.find(item.key) != index_.end()) {
    Bump(item.key);
    return;
  }
  while (index_.size() >= capacity_items_) EvictOne();
  auto& bucket = buckets_[1];
  bucket.push_front(item.key);
  index_[item.key] = Locator{1, bucket.begin()};
}

void LfuQueue::Delete(uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  auto bucket = buckets_.find(it->second.freq);
  bucket->second.erase(it->second.it);
  if (bucket->second.empty()) buckets_.erase(bucket);
  index_.erase(it);
}

void LfuQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  capacity_items_ = bytes / chunk_size_;
  while (index_.size() > capacity_items_) EvictOne();
}

uint64_t LfuQueue::FrequencyOf(uint64_t key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.freq;
}

bool LfuQueue::CheckInvariants() const {
  size_t total = 0;
  for (const auto& [freq, keys] : buckets_) {
    if (keys.empty()) return false;
    for (const uint64_t key : keys) {
      const auto it = index_.find(key);
      if (it == index_.end() || it->second.freq != freq) return false;
    }
    total += keys.size();
  }
  return total == index_.size() && total <= capacity_items_;
}

}  // namespace cliffhanger
