#include "cache/lfu_queue.h"

#include <cassert>

namespace cliffhanger {

LfuQueue::LfuQueue(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

void LfuQueue::DetachItem(uint32_t idx) {
  const uint32_t b = item_arena_[idx].bucket;
  bucket_arena_[b].items.Remove(item_arena_, idx);
  if (bucket_arena_[b].items.empty()) {
    buckets_.Remove(bucket_arena_, b);
    bucket_arena_.Free(b);
  }
}

void LfuQueue::Bump(uint32_t idx) {
  const uint32_t b = item_arena_[idx].bucket;
  const uint64_t freq = bucket_arena_[b].freq;
  const uint32_t next = bucket_arena_[b].next;

  uint32_t target;
  if (next != kNullNode && bucket_arena_[next].freq == freq + 1) {
    target = next;
  } else {
    target = bucket_arena_.Allocate();
    BucketNode& nb = bucket_arena_[target];
    nb.freq = freq + 1;
    nb.items = {};
    buckets_.InsertAfter(bucket_arena_, b, target);
  }
  // Order matters: detach first (which may free bucket `b` and unlink it
  // from the chain) only after `target` was linked relative to `b`.
  bucket_arena_[b].items.Remove(item_arena_, idx);
  if (bucket_arena_[b].items.empty()) {
    buckets_.Remove(bucket_arena_, b);
    bucket_arena_.Free(b);
  }
  bucket_arena_[target].items.PushFront(item_arena_, idx);
  item_arena_[idx].bucket = target;
}

void LfuQueue::EvictOne() {
  if (buckets_.empty()) return;
  const uint32_t b = buckets_.head;  // lowest frequency
  const uint32_t victim = bucket_arena_[b].items.tail;  // LRU in the bucket
  index_.Erase(item_arena_[victim].key);
  DetachItem(victim);
  item_arena_.Free(victim);
}

GetResult LfuQueue::Get(const ItemMeta& item) {
  GetResult result;
  const uint32_t idx = index_.Find(item.key);
  if (idx != FlatIndex::kNotFound) {
    if (ExpiredAt(item_arena_[idx].expiry_s, item.now_s)) {
      // Lazy expiration: frequency history dies with the item, exactly as
      // if it had been evicted — a refill starts back at frequency 1.
      Delete(item.key);
      return result;
    }
    Bump(idx);
    result.hit = true;
    result.region = HitRegion::kPhysical;
  }
  return result;
}

bool LfuQueue::Touch(const ItemMeta& item) {
  const uint32_t idx = index_.Find(item.key);
  if (idx == FlatIndex::kNotFound) return false;
  if (ExpiredAt(item_arena_[idx].expiry_s, item.now_s)) {
    Delete(item.key);
    return false;
  }
  if (item.expiry_s != kKeepExpiry) {
    item_arena_[idx].expiry_s = item.expiry_s;
  }
  Bump(idx);  // a touch is an access: it counts toward frequency
  return true;
}

void LfuQueue::Fill(const ItemMeta& item) {
  if (capacity_items_ == 0) return;
  const uint32_t existing = index_.Find(item.key);
  if (existing != FlatIndex::kNotFound) {
    item_arena_[existing].expiry_s = item.expiry_s;  // fresh store, fresh TTL
    Bump(existing);
    return;
  }
  while (index_.size() >= capacity_items_) EvictOne();

  // Admit at frequency 1: the head bucket if it is the freq-1 bucket,
  // otherwise a fresh bucket at the front of the chain.
  uint32_t b = buckets_.head;
  if (b == kNullNode || bucket_arena_[b].freq != 1) {
    b = bucket_arena_.Allocate();
    BucketNode& nb = bucket_arena_[b];
    nb.freq = 1;
    nb.items = {};
    buckets_.PushFront(bucket_arena_, b);
  }
  const uint32_t idx = item_arena_.Allocate();
  ItemNode& n = item_arena_[idx];
  n.key = item.key;
  n.bucket = b;
  n.expiry_s = item.expiry_s;
  bucket_arena_[b].items.PushFront(item_arena_, idx);
  index_.Insert(item.key, idx);
}

void LfuQueue::Delete(uint64_t key) {
  const uint32_t idx = index_.Find(key);
  if (idx == FlatIndex::kNotFound) return;
  DetachItem(idx);
  item_arena_.Free(idx);
  index_.Erase(key);
}

void LfuQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  capacity_items_ = bytes / chunk_size_;
  item_arena_.Reserve(static_cast<size_t>(capacity_items_));
  index_.Reserve(static_cast<size_t>(capacity_items_));
  while (index_.size() > capacity_items_) EvictOne();
}

uint64_t LfuQueue::FrequencyOf(uint64_t key) const {
  const uint32_t idx = index_.Find(key);
  return idx == FlatIndex::kNotFound
             ? 0
             : bucket_arena_[item_arena_[idx].bucket].freq;
}

bool LfuQueue::CheckInvariants() const {
  size_t total = 0;
  uint64_t prev_freq = 0;
  size_t bucket_count = 0;
  uint32_t prev_b = kNullNode;
  for (uint32_t b = buckets_.head; b != kNullNode;
       b = bucket_arena_[b].next) {
    const BucketNode& bucket = bucket_arena_[b];
    if (bucket.prev != prev_b) return false;
    if (bucket.freq <= prev_freq) return false;  // strictly ascending
    if (bucket.items.empty()) return false;
    size_t walked = 0;
    uint32_t prev_i = kNullNode;
    for (uint32_t idx = bucket.items.head; idx != kNullNode;
         idx = item_arena_[idx].next) {
      const ItemNode& n = item_arena_[idx];
      if (n.prev != prev_i || n.bucket != b) return false;
      if (index_.Find(n.key) != idx) return false;
      prev_i = idx;
      if (++walked > bucket.items.count) return false;
    }
    if (walked != bucket.items.count || bucket.items.tail != prev_i) {
      return false;
    }
    total += bucket.items.count;
    prev_freq = bucket.freq;
    prev_b = b;
    if (++bucket_count > buckets_.count) return false;
  }
  if (bucket_count != buckets_.count || buckets_.tail != prev_b) return false;
  if (total != index_.size() || total > capacity_items_) return false;
  // Arena accounting for both pools: no leaks, no double-free.
  return item_arena_.live_count() == total && item_arena_.CheckFreeList() &&
         bucket_arena_.live_count() == bucket_count &&
         bucket_arena_.CheckFreeList();
}

}  // namespace cliffhanger
