#include "cache/arc_queue.h"

#include <algorithm>
#include <cassert>

namespace cliffhanger {

ArcQueue::ArcQueue(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

void ArcQueue::Remove(uint32_t idx) {
  Node& n = arena_[idx];
  ChainOf(static_cast<List>(n.list)).Remove(arena_, idx);
  index_.Erase(n.key);
  arena_.Free(idx);
}

void ArcQueue::MoveToMru(uint32_t idx, List list) {
  Node& n = arena_[idx];
  ChainOf(static_cast<List>(n.list)).Remove(arena_, idx);
  n.list = static_cast<uint32_t>(list);
  ChainOf(list).PushFront(arena_, idx);
}

void ArcQueue::InsertMru(List list, uint64_t key, uint32_t expiry_s) {
  const uint32_t idx = arena_.Allocate();
  Node& n = arena_[idx];
  n.key = key;
  n.list = static_cast<uint32_t>(list);
  n.expiry_s = expiry_s;
  ChainOf(list).PushFront(arena_, idx);
  index_.Insert(key, idx);
}

void ArcQueue::EvictGhostLru(List list) {
  IntrusiveChain<Node>& chain = ChainOf(list);
  if (chain.empty()) return;
  Remove(chain.tail);
}

void ArcQueue::Replace(bool in_b2) {
  const auto t1 = static_cast<double>(t1_items());
  if (t1_items() > 0 && (t1 > p_ || (in_b2 && t1 == p_))) {
    MoveToMru(ChainOf(List::kT1).tail, List::kB1);
  } else if (t2_items() > 0) {
    MoveToMru(ChainOf(List::kT2).tail, List::kB2);
  } else if (t1_items() > 0) {
    MoveToMru(ChainOf(List::kT1).tail, List::kB1);
  }
}

GetResult ArcQueue::Get(const ItemMeta& item) {
  GetResult result;
  if (capacity_items_ == 0) return result;
  uint32_t found = index_.Find(item.key);
  if (found != FlatIndex::kNotFound) {
    const Node& n = arena_[found];
    const List list = static_cast<List>(n.list);
    if ((list == List::kT1 || list == List::kT2) &&
        ExpiredAt(n.expiry_s, item.now_s)) {
      // Lazy expiration of a resident item; fall through to the complete-
      // miss path (Case IV) so the access re-admits like any cold key.
      // Ghost entries keep their (stale) expiry: they are keys-only
      // eviction history, and promotion out of a ghost re-stamps it.
      Remove(found);
      found = FlatIndex::kNotFound;
    }
  }
  const List in = found == FlatIndex::kNotFound
                      ? List::kT1  // unused
                      : static_cast<List>(arena_[found].list);
  const double c = static_cast<double>(capacity_items_);

  if (found != FlatIndex::kNotFound &&
      (in == List::kT1 || in == List::kT2)) {
    // Case I: hit — promote to MRU of T2.
    MoveToMru(found, List::kT2);
    result.hit = true;
    result.region = HitRegion::kPhysical;
    return result;
  }

  if (found != FlatIndex::kNotFound && in == List::kB1) {
    // Case II: ghost hit in B1 — grow the recency target.
    const double delta =
        b1_items() == 0 ? 1.0
                        : std::max(1.0, static_cast<double>(b2_items()) /
                                            static_cast<double>(b1_items()));
    p_ = std::min(c, p_ + delta);
    Replace(/*in_b2=*/false);
    arena_[found].expiry_s = item.expiry_s;  // ghost -> resident: re-admit
    MoveToMru(found, List::kT2);
    result.region = HitRegion::kHillShadow;  // ghost hit: shadow-like signal
    return result;
  }

  if (found != FlatIndex::kNotFound && in == List::kB2) {
    // Case III: ghost hit in B2 — grow the frequency target.
    const double delta =
        b2_items() == 0 ? 1.0
                        : std::max(1.0, static_cast<double>(b1_items()) /
                                            static_cast<double>(b2_items()));
    p_ = std::max(0.0, p_ - delta);
    Replace(/*in_b2=*/true);
    arena_[found].expiry_s = item.expiry_s;  // ghost -> resident: re-admit
    MoveToMru(found, List::kT2);
    result.region = HitRegion::kHillShadow;
    return result;
  }

  // Case IV: complete miss — make room and admit into T1.
  const size_t l1 = t1_items() + b1_items();
  const size_t l2 = t2_items() + b2_items();
  if (l1 == capacity_items_) {
    if (t1_items() < capacity_items_) {
      EvictGhostLru(List::kB1);
      Replace(/*in_b2=*/false);
    } else {
      // B1 is empty; evict the LRU page of T1 outright.
      Remove(ChainOf(List::kT1).tail);
    }
  } else if (l1 < capacity_items_ && l1 + l2 >= capacity_items_) {
    if (l1 + l2 == 2 * capacity_items_) EvictGhostLru(List::kB2);
    Replace(/*in_b2=*/false);
  }
  InsertMru(List::kT1, item.key, item.expiry_s);
  result.region = HitRegion::kMiss;
  return result;
}

void ArcQueue::Fill(const ItemMeta& item) {
  // Get() already admitted the key on a miss; an explicit SET of a
  // resident key re-stamps its expiry (a fresh store replaces the TTL).
  const uint32_t idx = index_.Find(item.key);
  if (idx == FlatIndex::kNotFound) {
    (void)Get(item);
    return;
  }
  arena_[idx].expiry_s = item.expiry_s;
}

bool ArcQueue::Touch(const ItemMeta& item) {
  const uint32_t idx = index_.Find(item.key);
  if (idx == FlatIndex::kNotFound) return false;
  Node& n = arena_[idx];
  const List list = static_cast<List>(n.list);
  if (list != List::kT1 && list != List::kT2) return false;  // ghost
  if (ExpiredAt(n.expiry_s, item.now_s)) {
    Remove(idx);
    return false;
  }
  if (item.expiry_s != kKeepExpiry) n.expiry_s = item.expiry_s;
  // A touch is a frequency signal like any other access: promote to T2
  // without the ghost-adaptation step (the item was resident).
  MoveToMru(idx, List::kT2);
  return true;
}

void ArcQueue::Delete(uint64_t key) {
  const uint32_t idx = index_.Find(key);
  if (idx != FlatIndex::kNotFound) Remove(idx);
}

void ArcQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  capacity_items_ = bytes / chunk_size_;
  p_ = std::min(p_, static_cast<double>(capacity_items_));
  // Capacity hint: resident (T1+T2 <= c) plus ghosts (total <= 2c).
  arena_.Reserve(static_cast<size_t>(2 * capacity_items_));
  index_.Reserve(static_cast<size_t>(2 * capacity_items_));
  // Trim to the new capacity.
  while (t1_items() + t2_items() > capacity_items_) {
    Replace(/*in_b2=*/false);
  }
  while (t1_items() + b1_items() > capacity_items_ && b1_items() > 0) {
    EvictGhostLru(List::kB1);
  }
  while (index_.size() > 2 * capacity_items_ && b2_items() > 0) {
    EvictGhostLru(List::kB2);
  }
}

bool ArcQueue::CheckInvariants() const {
  if (capacity_items_ == 0) return index_.size() == 0;
  if (t1_items() + t2_items() > capacity_items_) return false;
  if (t1_items() + b1_items() > capacity_items_) return false;
  if (index_.size() > 2 * capacity_items_) return false;
  if (p_ < 0.0 || p_ > static_cast<double>(capacity_items_)) return false;
  // Chain/index/arena consistency: walk all four chains, verifying links,
  // membership tags and index entries; then live + free == pool.
  size_t total = 0;
  for (size_t l = 0; l < chains_.size(); ++l) {
    const IntrusiveChain<Node>& chain = chains_[l];
    size_t walked = 0;
    uint32_t prev = kNullNode;
    for (uint32_t idx = chain.head; idx != kNullNode;
         idx = arena_[idx].next) {
      const Node& n = arena_[idx];
      if (n.prev != prev || n.list != l) return false;
      if (index_.Find(n.key) != idx) return false;
      prev = idx;
      if (++walked > chain.count) return false;
    }
    if (walked != chain.count || chain.tail != prev) return false;
    total += chain.count;
  }
  if (total != index_.size()) return false;
  return arena_.live_count() == total && arena_.CheckFreeList();
}

}  // namespace cliffhanger
