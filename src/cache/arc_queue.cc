#include "cache/arc_queue.h"

#include <algorithm>
#include <cassert>

namespace cliffhanger {

ArcQueue::ArcQueue(uint32_t chunk_size) : chunk_size_(chunk_size) {
  assert(chunk_size > 0);
}

std::list<uint64_t>& ArcQueue::ListRef(List list) {
  switch (list) {
    case List::kT1:
      return t1_;
    case List::kT2:
      return t2_;
    case List::kB1:
      return b1_;
    case List::kB2:
      return b2_;
  }
  return t1_;
}

void ArcQueue::Remove(uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  ListRef(it->second.list).erase(it->second.it);
  index_.erase(it);
}

void ArcQueue::PushMru(List list, uint64_t key) {
  auto& l = ListRef(list);
  l.push_front(key);
  index_[key] = Locator{list, l.begin()};
}

void ArcQueue::EvictGhostLru(List list) {
  auto& l = ListRef(list);
  if (l.empty()) return;
  index_.erase(l.back());
  l.pop_back();
}

void ArcQueue::Replace(bool in_b2) {
  const auto t1 = static_cast<double>(t1_.size());
  if (!t1_.empty() && (t1 > p_ || (in_b2 && t1 == p_))) {
    const uint64_t victim = t1_.back();
    Remove(victim);
    PushMru(List::kB1, victim);
  } else if (!t2_.empty()) {
    const uint64_t victim = t2_.back();
    Remove(victim);
    PushMru(List::kB2, victim);
  } else if (!t1_.empty()) {
    const uint64_t victim = t1_.back();
    Remove(victim);
    PushMru(List::kB1, victim);
  }
}

GetResult ArcQueue::Get(const ItemMeta& item) {
  GetResult result;
  if (capacity_items_ == 0) return result;
  const auto found = index_.find(item.key);
  const double c = static_cast<double>(capacity_items_);

  if (found != index_.end() &&
      (found->second.list == List::kT1 || found->second.list == List::kT2)) {
    // Case I: hit — promote to MRU of T2.
    Remove(item.key);
    PushMru(List::kT2, item.key);
    result.hit = true;
    result.region = HitRegion::kPhysical;
    return result;
  }

  if (found != index_.end() && found->second.list == List::kB1) {
    // Case II: ghost hit in B1 — grow the recency target.
    const double delta =
        b1_.empty() ? 1.0
                    : std::max(1.0, static_cast<double>(b2_.size()) /
                                        static_cast<double>(b1_.size()));
    p_ = std::min(c, p_ + delta);
    Replace(/*in_b2=*/false);
    Remove(item.key);
    PushMru(List::kT2, item.key);
    result.region = HitRegion::kHillShadow;  // ghost hit: shadow-like signal
    return result;
  }

  if (found != index_.end() && found->second.list == List::kB2) {
    // Case III: ghost hit in B2 — grow the frequency target.
    const double delta =
        b2_.empty() ? 1.0
                    : std::max(1.0, static_cast<double>(b1_.size()) /
                                        static_cast<double>(b2_.size()));
    p_ = std::max(0.0, p_ - delta);
    Replace(/*in_b2=*/true);
    Remove(item.key);
    PushMru(List::kT2, item.key);
    result.region = HitRegion::kHillShadow;
    return result;
  }

  // Case IV: complete miss — make room and admit into T1.
  const size_t l1 = t1_.size() + b1_.size();
  const size_t l2 = t2_.size() + b2_.size();
  if (l1 == capacity_items_) {
    if (t1_.size() < capacity_items_) {
      EvictGhostLru(List::kB1);
      Replace(/*in_b2=*/false);
    } else {
      // B1 is empty; evict the LRU page of T1 outright.
      const uint64_t victim = t1_.back();
      Remove(victim);
    }
  } else if (l1 < capacity_items_ && l1 + l2 >= capacity_items_) {
    if (l1 + l2 == 2 * capacity_items_) EvictGhostLru(List::kB2);
    Replace(/*in_b2=*/false);
  }
  PushMru(List::kT1, item.key);
  result.region = HitRegion::kMiss;
  return result;
}

void ArcQueue::Fill(const ItemMeta& item) {
  // Get() already admitted the key on a miss; only handle explicit SETs for
  // keys never requested.
  if (index_.find(item.key) == index_.end()) {
    (void)Get(item);
  }
}

void ArcQueue::Delete(uint64_t key) { Remove(key); }

void ArcQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  capacity_items_ = bytes / chunk_size_;
  p_ = std::min(p_, static_cast<double>(capacity_items_));
  // Trim to the new capacity.
  while (t1_.size() + t2_.size() > capacity_items_) {
    Replace(/*in_b2=*/false);
  }
  while (t1_.size() + b1_.size() > capacity_items_ && !b1_.empty()) {
    EvictGhostLru(List::kB1);
  }
  while (index_.size() > 2 * capacity_items_ && !b2_.empty()) {
    EvictGhostLru(List::kB2);
  }
}

bool ArcQueue::CheckInvariants() const {
  if (capacity_items_ == 0) return index_.empty();
  if (t1_.size() + t2_.size() > capacity_items_) return false;
  if (t1_.size() + b1_.size() > capacity_items_) return false;
  if (index_.size() > 2 * capacity_items_) return false;
  if (p_ < 0.0 || p_ > static_cast<double>(capacity_items_)) return false;
  return index_.size() == t1_.size() + t2_.size() + b1_.size() + b2_.size();
}

}  // namespace cliffhanger
