#include "cache/segmented_lru.h"

#include <cassert>

#include "cache/types.h"

namespace cliffhanger {

SegmentedLru::SegmentedLru(std::vector<SegmentConfig> segments) {
  assert(!segments.empty());
  segments_.resize(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    segments_[i].config = segments[i];
  }
}

int SegmentedLru::Find(uint64_t key) const {
  const uint32_t idx = index_.Find(key);
  return idx == FlatIndex::kNotFound ? -1
                                     : static_cast<int>(arena_[idx].seg);
}

SegmentedLru::Handle SegmentedLru::FindHandle(uint64_t key) const {
  const uint32_t idx = index_.Find(key);
  return idx == FlatIndex::kNotFound ? kNoHandle : idx;
}

int SegmentedLru::HandleSegment(Handle h) const {
  return static_cast<int>(arena_[h].seg);
}

void SegmentedLru::Promote(Handle h, size_t target_seg) {
  Detach(h);
  AttachFront(target_seg, h);
  Cascade(target_seg);
}

void SegmentedLru::Detach(uint32_t idx) {
  Segment& s = segments_[arena_[idx].seg];
  s.bytes -= Charge(s, arena_[idx]);
  s.chain.Remove(arena_, idx);
}

void SegmentedLru::AttachFront(size_t seg, uint32_t idx) {
  Segment& s = segments_[seg];
  arena_[idx].seg = static_cast<uint32_t>(seg);
  s.chain.PushFront(arena_, idx);
  s.bytes += Charge(s, arena_[idx]);
}

uint32_t SegmentedLru::HandleExpiry(Handle h) const {
  return arena_[h].expiry_s;
}

void SegmentedLru::SetHandleExpiry(Handle h, uint32_t expiry_s) {
  arena_[h].expiry_s = expiry_s;
}

bool SegmentedLru::HandleExpired(Handle h, uint32_t now_s) const {
  return ExpiredAt(arena_[h].expiry_s, now_s);
}

void SegmentedLru::Erase(uint64_t key) {
  const uint32_t idx = index_.Find(key);
  if (idx == FlatIndex::kNotFound) return;
  Detach(idx);
  index_.Erase(key);
  arena_.Free(idx);
  if (listener_ != nullptr) listener_->OnKeyGone(key);
}

void SegmentedLru::EraseHandle(Handle h) {
  const uint64_t key = arena_[h].key;
  Detach(h);
  index_.Erase(key);
  arena_.Free(h);
  if (listener_ != nullptr) listener_->OnKeyGone(key);
}

bool SegmentedLru::MoveToFront(uint64_t key, size_t target_seg) {
  const Handle h = FindHandle(key);
  if (h == kNoHandle) return false;
  Promote(h, target_seg);
  return true;
}

void SegmentedLru::Insert(const Entry& entry, size_t target_seg) {
  assert(!index_.Contains(entry.key));
  const uint32_t idx = arena_.Allocate();
  Node& n = arena_[idx];
  n.key = entry.key;
  n.full_bytes = entry.full_bytes;
  n.key_bytes = entry.key_bytes;
  n.expiry_s = entry.expiry_s;
  index_.Insert(entry.key, idx);
  AttachFront(target_seg, idx);
  Cascade(target_seg);
}

void SegmentedLru::SetCapacity(size_t seg, uint64_t capacity) {
  segments_[seg].config.capacity = capacity;
  Cascade(seg);
}

void SegmentedLru::ReserveItems(size_t items) {
  arena_.Reserve(items);
  index_.Reserve(items);
}

void SegmentedLru::Cascade(size_t seg) {
  for (size_t i = seg; i < segments_.size(); ++i) {
    Segment& s = segments_[i];
    while (!s.chain.empty() && Load(s) > s.config.capacity) {
      const uint32_t victim = s.chain.tail;
      Detach(victim);
      if (i + 1 < segments_.size()) {
        // Pure relink: the node index (and the key's index entry) survive
        // the demotion; only the segment chain and charge change. Crossing
        // the physical -> keys-only boundary is the moment the value bytes
        // stop being resident: tell the payload owner to reclaim eagerly.
        // (Listener check first: the listener-free simulation paths pay
        // one predictable branch here, nothing more.)
        AttachFront(i + 1, victim);
        if (listener_ != nullptr && !s.config.keys_only &&
            segments_[i + 1].config.keys_only) {
          listener_->OnValueDrop(arena_[victim].key);
        }
      } else {
        const uint64_t key = arena_[victim].key;
        index_.Erase(key);
        arena_.Free(victim);
        if (listener_ != nullptr) listener_->OnKeyGone(key);
      }
    }
  }
}

uint64_t SegmentedLru::segment_capacity(size_t seg) const {
  return segments_[seg].config.capacity;
}

uint64_t SegmentedLru::segment_load(size_t seg) const {
  return Load(segments_[seg]);
}

size_t SegmentedLru::segment_items(size_t seg) const {
  return segments_[seg].chain.count;
}

uint64_t SegmentedLru::segment_bytes(size_t seg) const {
  return segments_[seg].bytes;
}

size_t SegmentedLru::physical_items() const {
  size_t n = 0;
  for (const Segment& s : segments_) {
    if (!s.config.keys_only) n += s.chain.count;
  }
  return n;
}

uint64_t SegmentedLru::physical_bytes() const {
  uint64_t n = 0;
  for (const Segment& s : segments_) {
    if (!s.config.keys_only) n += s.bytes;
  }
  return n;
}

bool SegmentedLru::CheckInvariants() const {
  size_t total = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    total += s.chain.count;
    if (Load(s) > s.config.capacity && s.chain.count > 1) return false;
    uint64_t bytes = 0;
    size_t walked = 0;
    uint32_t prev = kNullNode;
    for (uint32_t idx = s.chain.head; idx != kNullNode;
         idx = arena_[idx].next) {
      const Node& n = arena_[idx];
      if (n.prev != prev || n.seg != i) return false;
      if (index_.Find(n.key) != idx) return false;
      bytes += Charge(s, n);
      prev = idx;
      if (++walked > s.chain.count) return false;  // cycle / count drift
    }
    if (walked != s.chain.count || s.chain.tail != prev) return false;
    if (bytes != s.bytes) return false;
  }
  if (total != index_.size()) return false;
  // Arena accounting: every pool node is either in exactly one chain (the
  // walks above visited `total` distinct live nodes) or on the free-list.
  return arena_.live_count() == total && arena_.CheckFreeList();
}

}  // namespace cliffhanger
