#include "cache/segmented_lru.h"

#include <cassert>

namespace cliffhanger {

SegmentedLru::SegmentedLru(std::vector<SegmentConfig> segments) {
  assert(!segments.empty());
  segments_.resize(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    segments_[i].config = segments[i];
  }
}

int SegmentedLru::Find(uint64_t key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? -1 : static_cast<int>(it->second.seg);
}

void SegmentedLru::Detach(const Locator& loc) {
  Segment& s = segments_[loc.seg];
  s.bytes -= Charge(s, *loc.it);
  s.entries.erase(loc.it);
}

void SegmentedLru::AttachFront(size_t seg, const Entry& entry) {
  Segment& s = segments_[seg];
  s.entries.push_front(entry);
  s.bytes += Charge(s, entry);
  index_[entry.key] = Locator{seg, s.entries.begin()};
}

void SegmentedLru::Erase(uint64_t key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  Detach(it->second);
  index_.erase(it);
}

bool SegmentedLru::MoveToFront(uint64_t key, size_t target_seg) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  const Entry entry = *it->second.it;
  Detach(it->second);
  AttachFront(target_seg, entry);
  Cascade(target_seg);
  return true;
}

void SegmentedLru::Insert(const Entry& entry, size_t target_seg) {
  assert(index_.find(entry.key) == index_.end());
  AttachFront(target_seg, entry);
  Cascade(target_seg);
}

void SegmentedLru::SetCapacity(size_t seg, uint64_t capacity) {
  segments_[seg].config.capacity = capacity;
  Cascade(seg);
}

void SegmentedLru::Cascade(size_t seg) {
  for (size_t i = seg; i < segments_.size(); ++i) {
    Segment& s = segments_[i];
    while (!s.entries.empty() && Load(s) > s.config.capacity) {
      const Entry victim = s.entries.back();
      s.bytes -= Charge(s, victim);
      s.entries.pop_back();
      if (i + 1 < segments_.size()) {
        Segment& next = segments_[i + 1];
        next.entries.push_front(victim);
        next.bytes += Charge(next, victim);
        index_[victim.key] = Locator{i + 1, next.entries.begin()};
      } else {
        index_.erase(victim.key);
      }
    }
  }
}

uint64_t SegmentedLru::segment_capacity(size_t seg) const {
  return segments_[seg].config.capacity;
}

uint64_t SegmentedLru::segment_load(size_t seg) const {
  return Load(segments_[seg]);
}

size_t SegmentedLru::segment_items(size_t seg) const {
  return segments_[seg].entries.size();
}

uint64_t SegmentedLru::segment_bytes(size_t seg) const {
  return segments_[seg].bytes;
}

size_t SegmentedLru::physical_items() const {
  size_t n = 0;
  for (const Segment& s : segments_) {
    if (!s.config.keys_only) n += s.entries.size();
  }
  return n;
}

uint64_t SegmentedLru::physical_bytes() const {
  uint64_t n = 0;
  for (const Segment& s : segments_) {
    if (!s.config.keys_only) n += s.bytes;
  }
  return n;
}

bool SegmentedLru::CheckInvariants() const {
  size_t total = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    total += s.entries.size();
    if (Load(s) > s.config.capacity && s.entries.size() > 1) return false;
    uint64_t bytes = 0;
    for (const Entry& e : s.entries) {
      bytes += Charge(s, e);
      const auto it = index_.find(e.key);
      if (it == index_.end() || it->second.seg != i) return false;
    }
    if (bytes != s.bytes) return false;
  }
  return total == index_.size();
}

}  // namespace cliffhanger
