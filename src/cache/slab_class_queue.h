// SlabClassQueue: one side of a (possibly partitioned) slab-class queue,
// with the segment layout of Figure 5, and PartitionedSlabQueue: the
// left/right pair with Talus-style hash routing that the cliff-scaling
// algorithm drives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "cache/segmented_lru.h"
#include "cache/types.h"

namespace cliffhanger {

// Where a key currently stands in a queue, residency-wise: physically
// resident (value bytes live), shadow ghost (key only), or absent. Used by
// the value store registration path (core/cache_server.cc) to decide
// whether a just-filled item actually kept its payload.
enum class Residency : uint8_t { kAbsent, kShadow, kPhysical };

struct SlabQueueConfig {
  uint32_t chunk_size = 64;           // all items in a class cost one chunk
  InsertionPolicy policy = InsertionPolicy::kLru;
  uint32_t tail_items = 128;          // "last part of the queue" (§5.1)
  uint32_t cliff_shadow_items = 128;  // small shadow for the 2nd derivative
  uint64_t hill_shadow_bytes = 1 << 20;  // represented bytes (1 MB default)
};

// One physical queue + its shadows. Capacity is expressed in bytes of chunk
// footprint; internally the queue reasons in items (bytes / chunk).
class SlabClassQueue final : public ClassQueue {
 public:
  explicit SlabClassQueue(const SlabQueueConfig& config);

  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  bool Touch(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  // Eviction observer for the in-arena value store (threaded down to the
  // underlying SegmentedLru; see SegmentedLru::Listener).
  void SetListener(SegmentedLru::Listener* listener) {
    lru_.SetListener(listener);
  }
  // Passive residency probe: no recency change, no expiry enforcement, no
  // statistics.
  [[nodiscard]] Residency ResidencyOf(uint64_t key) const;
  // Passive read of a physically resident key's stored expiry. Returns
  // false when the key is absent or shadow-only. Like ResidencyOf, mutates
  // nothing — expiry enforcement stays on the access paths.
  [[nodiscard]] bool PeekPhysical(uint64_t key, uint32_t* expiry_s) const;

  void SetCapacityBytes(uint64_t bytes) override;
  void SetCapacityItems(uint64_t items);
  // Resize the hill shadow (used when a partition's share changes).
  void SetHillShadowBytes(uint64_t represented_bytes);

  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_items_ * config_.chunk_size;
  }
  [[nodiscard]] uint64_t capacity_items() const { return capacity_items_; }
  [[nodiscard]] uint64_t used_bytes() const override {
    return lru_.physical_bytes();
  }
  [[nodiscard]] size_t physical_items() const override {
    return lru_.physical_items();
  }
  [[nodiscard]] uint32_t chunk_size() const { return config_.chunk_size; }
  // Bytes consumed by shadow bookkeeping (memory-overhead accounting, §5.7).
  [[nodiscard]] uint64_t shadow_overhead_bytes() const;

  [[nodiscard]] const SegmentedLru& lru() const { return lru_; }
  // Structural self-check of the underlying segment/arena state; tests call
  // this after expiry-driven erases (which splice nodes out mid-queue).
  [[nodiscard]] bool CheckInvariants() const { return lru_.CheckInvariants(); }

 private:
  // Segment indices in the underlying SegmentedLru.
  static constexpr size_t kHead = 0;
  static constexpr size_t kMid = 1;
  static constexpr size_t kTail = 2;
  static constexpr size_t kCliffShadow = 3;
  static constexpr size_t kHillShadow = 4;

  void ApplyCapacity();
  // Pre-size the arena/index from the current physical + shadow capacity.
  void ReserveFromCapacity();

  SlabQueueConfig config_;
  uint64_t capacity_items_ = 0;
  SegmentedLru lru_;
};

struct PartitionConfig {
  SlabQueueConfig queue;
  // When false the queue behaves exactly like a single queue (everything is
  // routed left and the right queue is empty). The cliff scaler enables
  // partitioning when it activates.
  bool partition_enabled = false;
};

// The left/right physical queue pair (paper Figure 4/5). Requests are routed
// by a stable key hash u(key) in [0,1): left iff u < ratio. Lookups consult
// both sides so that ratio changes never manufacture misses; only the routed
// side's shadow signals are reported, keeping the scaler's gradient
// estimates unbiased.
class PartitionedSlabQueue final : public ClassQueue {
 public:
  explicit PartitionedSlabQueue(const PartitionConfig& config);

  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  bool Touch(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  // Listener/residency surface, forwarded to both sides. A key lives on at
  // most one side (Fill deletes both before inserting), so the residency
  // probes union the sides.
  void SetListener(SegmentedLru::Listener* listener);
  [[nodiscard]] Residency ResidencyOf(uint64_t key) const;
  [[nodiscard]] bool PeekPhysical(uint64_t key, uint32_t* expiry_s) const;

  // The byte capacity is tracked exactly (not rounded to whole chunks):
  // hill-climber credits are often smaller than one chunk, and rounding
  // would leak capacity on every transfer for large-chunk classes.
  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;
  }
  [[nodiscard]] uint64_t capacity_items() const {
    return total_capacity_items_;
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return left_->used_bytes() + right_->used_bytes();
  }
  [[nodiscard]] size_t physical_items() const override {
    return left_->physical_items() + right_->physical_items();
  }

  // --- Cliff-scaler control surface ---
  void EnablePartition(bool enabled);
  [[nodiscard]] bool partition_enabled() const { return partition_enabled_; }
  // Request-split ratio: fraction routed to the left queue.
  void SetRatio(double ratio);
  [[nodiscard]] double ratio() const { return ratio_; }
  // Physical sizes of the two queues, in items; their sum should equal
  // capacity_items() (Algorithm 3 maintains this). Also rebalances the hill
  // shadow in proportion to the partition sizes (§5.1).
  void SetPartitionItems(uint64_t left_items, uint64_t right_items);

  [[nodiscard]] const SlabClassQueue& left() const { return *left_; }
  [[nodiscard]] const SlabClassQueue& right() const { return *right_; }
  [[nodiscard]] uint32_t chunk_size() const {
    return config_.queue.chunk_size;
  }
  [[nodiscard]] uint64_t shadow_overhead_bytes() const {
    return left_->shadow_overhead_bytes() + right_->shadow_overhead_bytes();
  }
  [[nodiscard]] Side Route(uint64_t key) const;
  [[nodiscard]] bool CheckInvariants() const {
    return left_->CheckInvariants() && right_->CheckInvariants();
  }

 private:
  void DistributeEvenly();

  PartitionConfig config_;
  std::unique_ptr<SlabClassQueue> left_;
  std::unique_ptr<SlabClassQueue> right_;
  uint64_t capacity_bytes_ = 0;
  uint64_t total_capacity_items_ = 0;
  double ratio_ = 0.5;
  bool partition_enabled_ = false;
};

}  // namespace cliffhanger
