#include "cache/value_store.h"

#include <cassert>
#include <cstring>

namespace cliffhanger {

ValueStore::Ref ValueStore::Find(uint64_t key) const {
  Ref ref;
  const uint32_t packed = index_.Find(key);
  if (packed == FlatIndex::kNotFound) return ref;
  ref.found = true;
  ref.slab_class = static_cast<int>(packed >> 28);
  ref.slot = packed & kNoSlot;
  return ref;
}

ValueArena& ValueStore::ArenaFor(int slab_class) {
  assert(slab_class >= 0 && slab_class < kMaxSlabClasses);
  auto& arena = arenas_[slab_class];
  if (!arena) arena = std::make_unique<ValueArena>(ChunkSize(slab_class));
  return *arena;
}

uint32_t ValueStore::DropSlot(const Ref& ref) {
  if (ref.has_slot()) {
    ValueArena& arena = *arenas_[ref.slab_class];
    value_bytes_ -= arena.header(ref.slot)->value_size;
    arena.Free(ref.slot);
  }
  return Pack(ref.slab_class, kNoSlot);
}

void ValueStore::StorePhysical(uint64_t key, int slab_class, const void* data,
                               uint32_t size, uint32_t flags, uint64_t cas,
                               uint32_t stored_s) {
  const Ref old = Find(key);
  if (old.found) DropSlot(old);

  ValueArena& arena = ArenaFor(slab_class);
  assert(size <= arena.payload_capacity());
  const uint32_t slot = arena.Allocate();
  assert(slot < kNoSlot);
  ValueArena::SlotHeader* h = arena.header(slot);
  h->cas = cas;
  h->value_size = size;
  h->flags = flags;
  h->stored_s = stored_s;
  if (size > 0) std::memcpy(arena.payload(slot), data, size);
  value_bytes_ += size;

  const uint32_t packed = Pack(slab_class, slot);
  if (old.found) {
    index_.Replace(key, packed);
  } else {
    index_.Insert(key, packed);
  }
}

void ValueStore::RegisterShadow(uint64_t key, int slab_class) {
  const Ref old = Find(key);
  const uint32_t packed = Pack(slab_class, kNoSlot);
  if (old.found) {
    DropSlot(old);
    index_.Replace(key, packed);
  } else {
    index_.Insert(key, packed);
  }
}

void ValueStore::RewriteInPlace(const Ref& ref, const void* data,
                                uint32_t size, uint32_t flags, uint64_t cas,
                                uint32_t stored_s) {
  assert(ref.has_slot());
  ValueArena& arena = *arenas_[ref.slab_class];
  assert(size <= arena.payload_capacity());
  ValueArena::SlotHeader* h = arena.header(ref.slot);
  value_bytes_ += size;
  value_bytes_ -= h->value_size;
  h->cas = cas;
  h->value_size = size;
  h->flags = flags;
  h->stored_s = stored_s;
  if (size > 0) std::memcpy(arena.payload(ref.slot), data, size);
}

const ValueArena::SlotHeader& ValueStore::Header(const Ref& ref) const {
  assert(ref.has_slot());
  return *arenas_[ref.slab_class]->header(ref.slot);
}

void ValueStore::FillView(const Ref& ref, ValueView* view) const {
  assert(ref.has_slot());
  const ValueArena& arena = *arenas_[ref.slab_class];
  const ValueArena::SlotHeader* h = arena.header(ref.slot);
  view->data = arena.payload(ref.slot);
  view->size = h->value_size;
  view->flags = h->flags;
  view->cas = h->cas;
  view->stored_s = h->stored_s;
}

void ValueStore::OnValueDrop(uint64_t key) {
  const Ref ref = Find(key);
  if (!ref.has_slot()) return;  // shadow/unregistered: nothing resident
  index_.Replace(key, DropSlot(ref));
}

void ValueStore::OnKeyGone(uint64_t key) {
  const Ref ref = Find(key);
  if (!ref.found) return;
  DropSlot(ref);
  index_.Erase(key);
}

std::vector<ValueStore::ClassOccupancy> ValueStore::Occupancy() const {
  std::vector<ClassOccupancy> out;
  for (int k = 0; k < kMaxSlabClasses; ++k) {
    if (!arenas_[k]) continue;
    ClassOccupancy o;
    o.slab_class = k;
    o.chunk_size = arenas_[k]->chunk_size();
    o.used_chunks = arenas_[k]->live_slots();
    o.pool_chunks = arenas_[k]->pool_slots();
    o.resident_bytes = arenas_[k]->resident_bytes();
    out.push_back(o);
  }
  return out;
}

bool ValueStore::CheckInvariants() const {
  uint64_t live_bytes = 0;
  uint64_t live_slots = 0;
  for (int k = 0; k < kMaxSlabClasses; ++k) {
    if (!arenas_[k]) continue;
    if (!arenas_[k]->CheckFreeList()) return false;
    live_slots += arenas_[k]->live_slots();
  }
  uint64_t indexed_slots = 0;
  bool ok = true;
  index_.ForEach([&](uint64_t key, uint32_t packed) {
    (void)key;
    const auto slab_class = static_cast<int>(packed >> 28);
    const uint32_t slot = packed & kNoSlot;
    if (slab_class >= kMaxSlabClasses) ok = false;
    if (slot == kNoSlot) return;
    if (!arenas_[slab_class] || slot >= arenas_[slab_class]->pool_slots()) {
      ok = false;
      return;
    }
    ++indexed_slots;
    live_bytes += arenas_[slab_class]->header(slot)->value_size;
  });
  return ok && indexed_slots == live_slots && live_bytes == value_bytes_;
}

}  // namespace cliffhanger
