// SegmentedLru: an LRU list partitioned into consecutive capacity-bounded
// segments with cascade demotion. This single structure realizes the queue
// layout of the paper's Figure 5:
//
//   [ head | mid | tail(128 items) | cliff shadow(128) | hill shadow(1MB) ]
//     ^~~~~~~~~~ physical (keys + values) ~~~~~~~^  ^~~ keys only ~~~~~~^
//
// An item demoted out of a segment is pushed onto the front of the next
// segment; demotion out of the last segment evicts it. Shadow segments
// charge only key bytes; their capacity is expressed in items (the paper
// sizes shadows as "1 MB of requests", i.e. represented_bytes / chunk keys).
//
// Which segment a lookup lands in tells the caller everything the
// Cliffhanger algorithms need: a tail hit is a hit "left of the pointer", a
// cliff-shadow hit is "right of the pointer", a hill-shadow hit earns the
// queue a credit (Algorithms 1-2).
//
// Memory layout: nodes live in a NodeArena (one contiguous pool, 32-bit
// prev/next links, free-list recycling) and the key index is a FlatIndex
// (open addressing, no per-entry allocation) — see util/node_arena.h and
// docs/ARCHITECTURE.md "Memory layout & hot path". Every mutation is pure
// relinking: a GET promotion or a cascade demotion moves node *indexes*
// between segment chains and never copies an Entry or touches the heap.
// The demotion/eviction order is identical to the former std::list
// implementation, so replay results are bit-for-bit unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/flat_index.h"
#include "util/node_arena.h"

namespace cliffhanger {

class SegmentedLru {
 public:
  enum class Unit : uint8_t { kBytes, kItems };

  // Eviction observer for payload owners (cache/value_store.h). The queue
  // itself stores no value bytes; a listener tracking which keys are
  // physically resident needs exactly two signals:
  //  - OnValueDrop: a cascade demoted the key across the physical ->
  //    keys-only boundary. The key's value bytes are no longer resident
  //    (only its shadow ghost remains); reclaim them eagerly.
  //  - OnKeyGone: the key left the structure entirely (final eviction off
  //    the last segment, Erase, or EraseHandle — including the
  //    lazy-expiry erase path).
  // Callbacks fire while the queue is mid-mutation: implementations must
  // not call back into this SegmentedLru.
  class Listener {
   public:
    virtual ~Listener() = default;
    virtual void OnValueDrop(uint64_t key) = 0;
    virtual void OnKeyGone(uint64_t key) = 0;
  };
  void SetListener(Listener* listener) { listener_ = listener; }

  struct SegmentConfig {
    uint64_t capacity = 0;
    Unit unit = Unit::kBytes;
    bool keys_only = false;  // shadow segment: charge key bytes, drop values
  };

  struct Entry {
    uint64_t key = 0;
    uint32_t full_bytes = 0;  // chunk footprint while in a physical segment
    uint32_t key_bytes = 0;   // footprint while in a keys-only segment
    uint32_t expiry_s = 0;    // absolute expiry second; 0 = never
  };

  explicit SegmentedLru(std::vector<SegmentConfig> segments);

  // Segment index containing `key`, or -1. Does not change recency.
  [[nodiscard]] int Find(uint64_t key) const;

  // Handle-based fast path: a Handle names the key's pool node and stays
  // valid until that key is erased or evicted (relinking between segments
  // never moves nodes). Lets a caller resolve the key once and then act on
  // it — the Find + MoveToFront hit path costs one index probe, not two.
  using Handle = uint32_t;
  static constexpr Handle kNoHandle = kNullNode;
  [[nodiscard]] Handle FindHandle(uint64_t key) const;
  [[nodiscard]] int HandleSegment(Handle h) const;
  // Move the node behind `h` to the front of `target_seg`; `h` must be
  // valid (obtained from FindHandle and not erased/evicted since).
  void Promote(Handle h, size_t target_seg);

  // Expiry metadata on the node behind a valid handle. Expiry is a stored
  // attribute only — enforcement (the lazy expire-on-access path) is the
  // caller's: check HandleExpired, then EraseHandle and report a miss.
  [[nodiscard]] uint32_t HandleExpiry(Handle h) const;
  void SetHandleExpiry(Handle h, uint32_t expiry_s);
  [[nodiscard]] bool HandleExpired(Handle h, uint32_t now_s) const;

  // Remove `key` from whichever segment holds it. No-op when absent.
  void Erase(uint64_t key);
  // Remove the node behind a valid handle (one probe cheaper than Erase
  // when the caller already resolved the key — the lazy-expiration path).
  void EraseHandle(Handle h);

  // Move an existing key to the front of `target_seg` (LRU promotion or
  // midpoint insertion policy). Returns false when the key is absent.
  bool MoveToFront(uint64_t key, size_t target_seg = 0);

  // Insert a new key at the front of `target_seg`. The key must be absent.
  void Insert(const Entry& entry, size_t target_seg = 0);

  // Adjust one segment's capacity; overflow cascades immediately.
  void SetCapacity(size_t seg, uint64_t capacity);

  // Capacity hint: pre-size the node pool and the key index for `items`
  // simultaneously-resident entries (physical + shadows), so a replay at
  // that size never grows or rehashes mid-stream. Grows only.
  void ReserveItems(size_t items);

  [[nodiscard]] size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] uint64_t segment_capacity(size_t seg) const;
  [[nodiscard]] uint64_t segment_load(size_t seg) const;  // in its own unit
  [[nodiscard]] size_t segment_items(size_t seg) const;
  [[nodiscard]] uint64_t segment_bytes(size_t seg) const;  // charged bytes
  [[nodiscard]] size_t total_items() const { return index_.size(); }

  // Items in the physical (non-keys-only) segments and their charged bytes.
  [[nodiscard]] size_t physical_items() const;
  [[nodiscard]] uint64_t physical_bytes() const;

  // Debug/test invariant: every segment is within capacity, the chains are
  // well-linked, the index is consistent with the chains, and the arena
  // free-list is intact (no leaks, no double-free, live + free == pool).
  [[nodiscard]] bool CheckInvariants() const;

 private:
  struct Node {
    uint64_t key = 0;
    uint32_t full_bytes = 0;
    uint32_t key_bytes = 0;
    uint32_t prev = kNullNode;
    uint32_t next = kNullNode;
    uint32_t seg = 0;
    // Rides in what was alignment padding: sizeof(Node) stays 32, so the
    // §5.7 shadow-overhead accounting is unchanged by expiry support.
    uint32_t expiry_s = 0;
  };
  static_assert(sizeof(Node) == 32, "expiry_s must fit the padding slack");

 public:
  // Honest per-item bookkeeping footprint of this implementation: one pool
  // node (whose 8-byte stored key is charged separately via key bytes) plus
  // one flat-index slot. Feeds the §5.7 shadow-overhead accounting.
  static constexpr uint32_t kPerItemOverheadBytes = static_cast<uint32_t>(
      sizeof(Node) - sizeof(uint64_t) + FlatIndex::kSlotBytes);

 private:
  struct Segment {
    SegmentConfig config;
    IntrusiveChain<Node> chain;
    uint64_t bytes = 0;  // charged bytes (full or key bytes per keys_only)
  };

  [[nodiscard]] static uint64_t Charge(const Segment& s, const Node& n) {
    return s.config.keys_only ? n.key_bytes : n.full_bytes;
  }
  [[nodiscard]] static uint64_t Load(const Segment& s) {
    return s.config.unit == Unit::kItems ? s.chain.count : s.bytes;
  }
  // Unlink node `idx` from its current segment (charge released).
  void Detach(uint32_t idx);
  // Link node `idx` at the front of segment `seg` (charge applied).
  void AttachFront(size_t seg, uint32_t idx);
  // Demote overflow starting at segment `seg` down the chain.
  void Cascade(size_t seg);

  std::vector<Segment> segments_;
  NodeArena<Node> arena_;
  FlatIndex index_;
  Listener* listener_ = nullptr;
};

}  // namespace cliffhanger
