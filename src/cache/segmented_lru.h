// SegmentedLru: an LRU list partitioned into consecutive capacity-bounded
// segments with cascade demotion. This single structure realizes the queue
// layout of the paper's Figure 5:
//
//   [ head | mid | tail(128 items) | cliff shadow(128) | hill shadow(1MB) ]
//     ^~~~~~~~~~ physical (keys + values) ~~~~~~~^  ^~~ keys only ~~~~~~^
//
// An item demoted out of a segment is pushed onto the front of the next
// segment; demotion out of the last segment evicts it. Shadow segments
// charge only key bytes; their capacity is expressed in items (the paper
// sizes shadows as "1 MB of requests", i.e. represented_bytes / chunk keys).
//
// Which segment a lookup lands in tells the caller everything the
// Cliffhanger algorithms need: a tail hit is a hit "left of the pointer", a
// cliff-shadow hit is "right of the pointer", a hill-shadow hit earns the
// queue a credit (Algorithms 1-2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace cliffhanger {

class SegmentedLru {
 public:
  enum class Unit : uint8_t { kBytes, kItems };

  struct SegmentConfig {
    uint64_t capacity = 0;
    Unit unit = Unit::kBytes;
    bool keys_only = false;  // shadow segment: charge key bytes, drop values
  };

  struct Entry {
    uint64_t key = 0;
    uint32_t full_bytes = 0;  // chunk footprint while in a physical segment
    uint32_t key_bytes = 0;   // footprint while in a keys-only segment
  };

  explicit SegmentedLru(std::vector<SegmentConfig> segments);

  // Segment index containing `key`, or -1. Does not change recency.
  [[nodiscard]] int Find(uint64_t key) const;

  // Remove `key` from whichever segment holds it. No-op when absent.
  void Erase(uint64_t key);

  // Move an existing key to the front of `target_seg` (LRU promotion or
  // midpoint insertion policy). Returns false when the key is absent.
  bool MoveToFront(uint64_t key, size_t target_seg = 0);

  // Insert a new key at the front of `target_seg`. The key must be absent.
  void Insert(const Entry& entry, size_t target_seg = 0);

  // Adjust one segment's capacity; overflow cascades immediately.
  void SetCapacity(size_t seg, uint64_t capacity);

  [[nodiscard]] size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] uint64_t segment_capacity(size_t seg) const;
  [[nodiscard]] uint64_t segment_load(size_t seg) const;  // in its own unit
  [[nodiscard]] size_t segment_items(size_t seg) const;
  [[nodiscard]] uint64_t segment_bytes(size_t seg) const;  // charged bytes
  [[nodiscard]] size_t total_items() const { return index_.size(); }

  // Items in the physical (non-keys-only) segments and their charged bytes.
  [[nodiscard]] size_t physical_items() const;
  [[nodiscard]] uint64_t physical_bytes() const;

  // Debug/test invariant: every segment is within capacity and the index is
  // consistent with the lists.
  [[nodiscard]] bool CheckInvariants() const;

 private:
  struct Segment {
    SegmentConfig config;
    std::list<Entry> entries;
    uint64_t bytes = 0;  // charged bytes (full or key bytes per keys_only)
  };
  struct Locator {
    size_t seg = 0;
    std::list<Entry>::iterator it;
  };

  [[nodiscard]] static uint64_t Charge(const Segment& s, const Entry& e) {
    return s.config.keys_only ? e.key_bytes : e.full_bytes;
  }
  [[nodiscard]] static uint64_t Load(const Segment& s) {
    return s.config.unit == Unit::kItems ? s.entries.size() : s.bytes;
  }
  // Demote overflow starting at segment `seg` down the chain.
  void Cascade(size_t seg);
  void Detach(const Locator& loc);
  void AttachFront(size_t seg, const Entry& entry);

  std::vector<Segment> segments_;
  std::unordered_map<uint64_t, Locator> index_;
};

}  // namespace cliffhanger
