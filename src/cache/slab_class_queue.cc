#include "cache/slab_class_queue.h"

#include <algorithm>
#include <cassert>

#include "util/hashing.h"

namespace cliffhanger {

namespace {

// Per-key bookkeeping bytes in a shadow queue beyond the key itself (paper
// §5.7: "keys of 14 bytes" dominate, plus structure overhead). Derived from
// the arena implementation's real footprint — one 32-byte pool node plus
// one 12-byte flat-index slot — so the reported overhead tracks what this
// code would actually spend, not a guessed constant.
constexpr uint32_t kShadowNodeOverhead = SegmentedLru::kPerItemOverheadBytes;

std::vector<SegmentedLru::SegmentConfig> MakeSegments(
    const SlabQueueConfig& config) {
  using Unit = SegmentedLru::Unit;
  std::vector<SegmentedLru::SegmentConfig> segs(5);
  segs[0] = {0, Unit::kItems, false};  // head
  segs[1] = {0, Unit::kItems, false};  // mid (midpoint insertion target)
  segs[2] = {0, Unit::kItems, false};  // tail ("left of pointer" detector)
  segs[3] = {config.cliff_shadow_items, Unit::kItems, true};  // cliff shadow
  segs[4] = {std::max<uint64_t>(1, config.hill_shadow_bytes /
                                       config.chunk_size),
             Unit::kItems, true};  // hill shadow ("1 MB of requests")
  return segs;
}

}  // namespace

SlabClassQueue::SlabClassQueue(const SlabQueueConfig& config)
    : config_(config), lru_(MakeSegments(config)) {
  assert(config.chunk_size > 0);
}

void SlabClassQueue::ApplyCapacity() {
  // The tail is carved out of the physical capacity; when the queue is
  // smaller than the nominal tail, the whole queue is tail.
  const uint64_t tail =
      std::min<uint64_t>(config_.tail_items, capacity_items_);
  const uint64_t body = capacity_items_ - tail;
  uint64_t head = body;
  uint64_t mid = 0;
  if (config_.policy == InsertionPolicy::kMidpoint) {
    head = body / 2;
    mid = body - head;
  }
  // Shrink from the back so demotions cascade at most once.
  lru_.SetCapacity(kTail, tail);
  lru_.SetCapacity(kMid, mid);
  lru_.SetCapacity(kHead, head);
  ReserveFromCapacity();
}

void SlabClassQueue::ReserveFromCapacity() {
  // Capacity hint: at most capacity_items_ physical entries plus the two
  // shadows can be resident at once; pre-size the arena and index so the
  // replay that fills this queue never grows or rehashes mid-stream. The
  // hint flows down from the app's reservation through SetCapacityBytes /
  // SetCapacityItems (page grants, static allocations, climber transfers).
  lru_.ReserveItems(static_cast<size_t>(
      capacity_items_ + lru_.segment_capacity(kCliffShadow) +
      lru_.segment_capacity(kHillShadow)));
}

void SlabClassQueue::SetCapacityBytes(uint64_t bytes) {
  SetCapacityItems(bytes / config_.chunk_size);
}

void SlabClassQueue::SetCapacityItems(uint64_t items) {
  capacity_items_ = items;
  ApplyCapacity();
}

void SlabClassQueue::SetHillShadowBytes(uint64_t represented_bytes) {
  config_.hill_shadow_bytes = represented_bytes;
  lru_.SetCapacity(kHillShadow,
                   std::max<uint64_t>(1, represented_bytes /
                                             config_.chunk_size));
  ReserveFromCapacity();
}

GetResult SlabClassQueue::Get(const ItemMeta& item) {
  GetResult result;
  // One index probe for the whole GET: the handle both classifies the hit
  // region and drives the promotion.
  const SegmentedLru::Handle h = lru_.FindHandle(item.key);
  if (h != SegmentedLru::kNoHandle && lru_.HandleExpired(h, item.now_s)) {
    // Lazy expiration (O(1), on access): the item — physical or shadow —
    // is erased and the access is a full miss, with no shadow credit; a
    // real memcached would have reclaimed it, so crediting the climbers
    // for it would overstate what extra memory could buy.
    lru_.EraseHandle(h);
    result.expired = true;
    return result;
  }
  const int seg = h == SegmentedLru::kNoHandle ? -1 : lru_.HandleSegment(h);
  switch (seg) {
    case kHead:
    case kMid:
      result.hit = true;
      result.region = HitRegion::kPhysical;
      lru_.Promote(h, kHead);
      break;
    case kTail:
      result.hit = true;
      result.region = HitRegion::kPhysicalTail;
      lru_.Promote(h, kHead);
      break;
    case kCliffShadow:
      result.region = HitRegion::kCliffShadow;
      break;
    case kHillShadow:
      result.region = HitRegion::kHillShadow;
      break;
    default:
      result.region = HitRegion::kMiss;
      break;
  }
  return result;
}

void SlabClassQueue::Fill(const ItemMeta& item) {
  lru_.Erase(item.key);  // a shadow entry may linger from the miss
  SegmentedLru::Entry entry;
  entry.key = item.key;
  entry.full_bytes = config_.chunk_size;
  entry.key_bytes = item.key_size + kShadowNodeOverhead;
  entry.expiry_s = item.expiry_s;
  const size_t target =
      config_.policy == InsertionPolicy::kMidpoint ? kMid : kHead;
  lru_.Insert(entry, target);
}

bool SlabClassQueue::Touch(const ItemMeta& item) {
  const SegmentedLru::Handle h = lru_.FindHandle(item.key);
  if (h == SegmentedLru::kNoHandle) return false;
  if (lru_.HandleExpired(h, item.now_s)) {
    lru_.EraseHandle(h);
    return false;
  }
  const int seg = lru_.HandleSegment(h);
  if (seg > static_cast<int>(kTail)) {
    return false;  // shadow-only entry: not really resident
  }
  if (item.expiry_s != kKeepExpiry) lru_.SetHandleExpiry(h, item.expiry_s);
  // memcached's touch refreshes LRU standing; it does not emit the GET
  // signals (no stats, no tail/shadow classification), so the climbers
  // see touches only through the eviction order they produce.
  lru_.Promote(h, kHead);
  return true;
}

void SlabClassQueue::Delete(uint64_t key) { lru_.Erase(key); }

Residency SlabClassQueue::ResidencyOf(uint64_t key) const {
  const int seg = lru_.Find(key);
  if (seg < 0) return Residency::kAbsent;
  return seg <= static_cast<int>(kTail) ? Residency::kPhysical
                                        : Residency::kShadow;
}

bool SlabClassQueue::PeekPhysical(uint64_t key, uint32_t* expiry_s) const {
  const SegmentedLru::Handle h = lru_.FindHandle(key);
  if (h == SegmentedLru::kNoHandle) return false;
  if (lru_.HandleSegment(h) > static_cast<int>(kTail)) return false;
  *expiry_s = lru_.HandleExpiry(h);
  return true;
}

uint64_t SlabClassQueue::shadow_overhead_bytes() const {
  return lru_.segment_bytes(kCliffShadow) + lru_.segment_bytes(kHillShadow);
}

// --- PartitionedSlabQueue ---

PartitionedSlabQueue::PartitionedSlabQueue(const PartitionConfig& config)
    : config_(config),
      left_(std::make_unique<SlabClassQueue>(config.queue)),
      right_(std::make_unique<SlabClassQueue>(config.queue)),
      partition_enabled_(config.partition_enabled) {}

Side PartitionedSlabQueue::Route(uint64_t key) const {
  if (!partition_enabled_) return Side::kLeft;
  return KeyToUnitInterval(key) < ratio_ ? Side::kLeft : Side::kRight;
}

GetResult PartitionedSlabQueue::Get(const ItemMeta& item) {
  const Side side = Route(item.key);
  SlabClassQueue& routed = side == Side::kLeft ? *left_ : *right_;
  SlabClassQueue& other = side == Side::kLeft ? *right_ : *left_;

  GetResult result = routed.Get(item);
  result.side = side;
  if (result.hit) return result;

  // The key may live in the other partition if the routing boundary moved
  // since it was inserted; a physical hit there is a real hit. Shadow state
  // on the unrouted side is intentionally ignored (it would bias the
  // scaler's gradient signals).
  const int other_seg = other.lru().Find(item.key);
  if (other_seg >= 0 && other_seg <= 2) {
    GetResult other_result = other.Get(item);
    // The inner Get may have lazily expired the entry; only a surviving
    // physical hit counts (the expiry still surfaces in the flag).
    result.expired = result.expired || other_result.expired;
    if (!other_result.hit) return result;
    other_result.side = side == Side::kLeft ? Side::kRight : Side::kLeft;
    // Report the routed side's shadow signal if it had one; otherwise the
    // plain physical hit.
    other_result.region = result.region == HitRegion::kMiss
                              ? other_result.region
                              : result.region;
    return other_result;
  }
  return result;
}

bool PartitionedSlabQueue::Touch(const ItemMeta& item) {
  const Side side = Route(item.key);
  SlabClassQueue& routed = side == Side::kLeft ? *left_ : *right_;
  SlabClassQueue& other = side == Side::kLeft ? *right_ : *left_;
  // Same both-sides rule as Get: a ratio move must not hide a resident
  // item from touch. Shadow entries report absent on either side.
  return routed.Touch(item) || other.Touch(item);
}

void PartitionedSlabQueue::Fill(const ItemMeta& item) {
  // Remove any stale copy from both sides before inserting fresh.
  left_->Delete(item.key);
  right_->Delete(item.key);
  SlabClassQueue& routed = Route(item.key) == Side::kLeft ? *left_ : *right_;
  routed.Fill(item);
}

void PartitionedSlabQueue::Delete(uint64_t key) {
  left_->Delete(key);
  right_->Delete(key);
}

void PartitionedSlabQueue::SetListener(SegmentedLru::Listener* listener) {
  left_->SetListener(listener);
  right_->SetListener(listener);
}

Residency PartitionedSlabQueue::ResidencyOf(uint64_t key) const {
  const Residency l = left_->ResidencyOf(key);
  if (l == Residency::kPhysical) return l;
  const Residency r = right_->ResidencyOf(key);
  if (r == Residency::kPhysical) return r;
  return l == Residency::kShadow || r == Residency::kShadow
             ? Residency::kShadow
             : Residency::kAbsent;
}

bool PartitionedSlabQueue::PeekPhysical(uint64_t key,
                                        uint32_t* expiry_s) const {
  return left_->PeekPhysical(key, expiry_s) ||
         right_->PeekPhysical(key, expiry_s);
}

void PartitionedSlabQueue::SetCapacityBytes(uint64_t bytes) {
  const uint64_t old_left = left_->capacity_items();
  const uint64_t old_right = right_->capacity_items();
  const uint64_t old_total = old_left + old_right;
  capacity_bytes_ = bytes;
  total_capacity_items_ = bytes / chunk_size();
  if (!partition_enabled_ || old_total == 0) {
    DistributeEvenly();
    return;
  }
  // Preserve the current split proportion; the cliff scaler will re-derive
  // the exact sizes from its pointers on the next miss.
  const uint64_t left = static_cast<uint64_t>(
      static_cast<double>(total_capacity_items_) *
      (static_cast<double>(old_left) / static_cast<double>(old_total)));
  SetPartitionItems(left, total_capacity_items_ - left);
}

void PartitionedSlabQueue::EnablePartition(bool enabled) {
  if (partition_enabled_ == enabled) return;
  partition_enabled_ = enabled;
  DistributeEvenly();
}

void PartitionedSlabQueue::SetRatio(double ratio) {
  ratio_ = std::clamp(ratio, 0.0, 1.0);
}

void PartitionedSlabQueue::DistributeEvenly() {
  if (!partition_enabled_) {
    // Single-queue behaviour: everything left.
    ratio_ = 1.0;
    left_->SetCapacityItems(total_capacity_items_);
    right_->SetCapacityItems(0);
    left_->SetHillShadowBytes(config_.queue.hill_shadow_bytes);
    right_->SetHillShadowBytes(0);
    return;
  }
  ratio_ = 0.5;
  const uint64_t half = total_capacity_items_ / 2;
  SetPartitionItems(half, total_capacity_items_ - half);
}

void PartitionedSlabQueue::SetPartitionItems(uint64_t left_items,
                                             uint64_t right_items) {
  left_->SetCapacityItems(left_items);
  right_->SetCapacityItems(right_items);
  // Split the hill shadow between the partitions (§5.1). We split by the
  // *request* ratio rather than the size proportion: a side receiving a
  // fraction t of the traffic with a shadow of 1MB*t keys represents
  // exactly 1MB of additional queue, keeping the hill-climbing gradient
  // estimate calibrated. (Splitting by size would inflate the minority
  // side's simulated reach by rightPointer/queueSize and over-credit
  // cliff classes in Algorithm 1.)
  const uint64_t left_shadow = static_cast<uint64_t>(
      static_cast<double>(config_.queue.hill_shadow_bytes) * ratio_);
  left_->SetHillShadowBytes(left_shadow);
  right_->SetHillShadowBytes(config_.queue.hill_shadow_bytes - left_shadow);
}

}  // namespace cliffhanger
