// O(1) LFU queue with LRU tie-breaking within a frequency bucket.
// Cliffhanger "supports any eviction policy, including LRU, LFU or hybrid
// policies such as ARC" (§1); this queue backs the LFU comparisons.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

#include "cache/types.h"

namespace cliffhanger {

class LfuQueue final : public ClassQueue {
 public:
  explicit LfuQueue(uint32_t chunk_size);

  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;  // exact, not rounded to chunks
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return index_.size() * chunk_size_;
  }
  [[nodiscard]] size_t physical_items() const override {
    return index_.size();
  }

  [[nodiscard]] uint64_t FrequencyOf(uint64_t key) const;
  [[nodiscard]] bool CheckInvariants() const;

 private:
  struct Locator {
    uint64_t freq;
    std::list<uint64_t>::iterator it;
  };

  void Bump(uint64_t key);
  void EvictOne();

  uint32_t chunk_size_;
  uint64_t capacity_bytes_ = 0;
  uint64_t capacity_items_ = 0;
  // freq -> MRU-ordered list of keys at that frequency.
  std::map<uint64_t, std::list<uint64_t>> buckets_;
  std::unordered_map<uint64_t, Locator> index_;
};

}  // namespace cliffhanger
