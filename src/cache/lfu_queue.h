// O(1) LFU queue with LRU tie-breaking within a frequency bucket.
// Cliffhanger "supports any eviction policy, including LRU, LFU or hybrid
// policies such as ARC" (§1); this queue backs the LFU comparisons.
//
// Layout: the classic two-level intrusive structure. Frequency buckets form
// a chain ordered by ascending frequency; each bucket owns a chain of item
// nodes (MRU at the front). Both node kinds live in NodeArenas and the key
// index is a FlatIndex, so neither a GET (frequency bump), a fill, nor an
// eviction allocates: a bump relinks the item into the adjacent bucket
// (creating/recycling at most one bucket node from the bucket free-list).
#pragma once

#include <cstddef>
#include <cstdint>

#include "cache/types.h"
#include "util/flat_index.h"
#include "util/node_arena.h"

namespace cliffhanger {

class LfuQueue final : public ClassQueue {
 public:
  explicit LfuQueue(uint32_t chunk_size);

  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  bool Touch(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;  // exact, not rounded to chunks
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return index_.size() * chunk_size_;
  }
  [[nodiscard]] size_t physical_items() const override {
    return index_.size();
  }

  [[nodiscard]] uint64_t FrequencyOf(uint64_t key) const;
  [[nodiscard]] bool CheckInvariants() const;

 private:
  struct ItemNode {
    uint64_t key = 0;
    uint32_t prev = kNullNode;
    uint32_t next = kNullNode;
    uint32_t bucket = kNullNode;  // owning BucketNode index
    uint32_t expiry_s = 0;        // rides in padding slack: sizeof stays 24
  };
  static_assert(sizeof(ItemNode) == 24,
                "expiry_s must fit the padding slack");
  struct BucketNode {
    uint64_t freq = 0;
    IntrusiveChain<ItemNode> items;  // MRU at the front
    uint32_t prev = kNullNode;
    uint32_t next = kNullNode;
  };

  // Move `idx` from its bucket to frequency `freq + 1`, creating or
  // reusing the successor bucket and dropping the old one if emptied.
  void Bump(uint32_t idx);
  void EvictOne();
  // Detach item `idx` from its bucket; frees the bucket when emptied.
  void DetachItem(uint32_t idx);

  uint32_t chunk_size_;
  uint64_t capacity_bytes_ = 0;
  uint64_t capacity_items_ = 0;
  // Bucket chain ordered by strictly ascending frequency.
  IntrusiveChain<BucketNode> buckets_;
  NodeArena<BucketNode> bucket_arena_;
  NodeArena<ItemNode> item_arena_;
  FlatIndex index_;
};

}  // namespace cliffhanger
