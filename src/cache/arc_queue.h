// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST'03): the
// LRU/LFU-balancing scheme the paper compares against in §5.5 ("we found
// that ARC did not provide any hit rate improvement in any of the
// applications of the Memcachier trace").
//
// Full four-list implementation: resident T1 (recency) and T2 (frequency),
// ghost lists B1 and B2 holding keys only, and the adaptive target p.
// Capacities are in items, matching slab-class semantics (uniform chunks).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "cache/types.h"

namespace cliffhanger {

class ArcQueue final : public ClassQueue {
 public:
  explicit ArcQueue(uint32_t chunk_size);

  // ARC performs hit processing, ghost adaptation and insertion as one
  // request step, so Get() does the complete work and Fill() is a no-op
  // when the key is already resident.
  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;  // exact, not rounded to chunks
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return (t1_.size() + t2_.size()) * chunk_size_;
  }
  [[nodiscard]] size_t physical_items() const override {
    return t1_.size() + t2_.size();
  }

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] size_t t1_items() const { return t1_.size(); }
  [[nodiscard]] size_t t2_items() const { return t2_.size(); }
  [[nodiscard]] size_t b1_items() const { return b1_.size(); }
  [[nodiscard]] size_t b2_items() const { return b2_.size(); }
  [[nodiscard]] bool CheckInvariants() const;

 private:
  enum class List : uint8_t { kT1, kT2, kB1, kB2 };
  struct Locator {
    List list;
    std::list<uint64_t>::iterator it;
  };

  std::list<uint64_t>& ListRef(List list);
  void Remove(uint64_t key);
  void PushMru(List list, uint64_t key);
  // Demote one resident item to the appropriate ghost list.
  void Replace(bool in_b2);
  void EvictGhostLru(List list);

  uint32_t chunk_size_;
  uint64_t capacity_bytes_ = 0;
  uint64_t capacity_items_ = 0;
  double p_ = 0.0;  // target size of T1, in items

  std::list<uint64_t> t1_, t2_, b1_, b2_;
  std::unordered_map<uint64_t, Locator> index_;
};

}  // namespace cliffhanger
