// ARC (Adaptive Replacement Cache, Megiddo & Modha, FAST'03): the
// LRU/LFU-balancing scheme the paper compares against in §5.5 ("we found
// that ARC did not provide any hit rate improvement in any of the
// applications of the Memcachier trace").
//
// Full four-list implementation: resident T1 (recency) and T2 (frequency),
// ghost lists B1 and B2 holding keys only, and the adaptive target p.
// Capacities are in items, matching slab-class semantics (uniform chunks).
//
// All four lists are intrusive chains through one NodeArena, with a
// FlatIndex key index — no per-item heap allocation, and a list transition
// (T1 -> T2, T1 -> B1, ...) is a pure relink of the same 24-byte node.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "cache/types.h"
#include "util/flat_index.h"
#include "util/node_arena.h"

namespace cliffhanger {

class ArcQueue final : public ClassQueue {
 public:
  explicit ArcQueue(uint32_t chunk_size);

  // ARC performs hit processing, ghost adaptation and insertion as one
  // request step, so Get() does the complete work and Fill() only updates
  // expiry when the key is already resident. A resident hit whose expiry
  // has passed item.now_s is erased outright (lazy expiration) and the
  // access proceeds as a complete miss — not a ghost hit: the ghost lists
  // model eviction history, and an expired item was never evicted.
  GetResult Get(const ItemMeta& item) override;
  void Fill(const ItemMeta& item) override;
  bool Touch(const ItemMeta& item) override;
  void Delete(uint64_t key) override;

  void SetCapacityBytes(uint64_t bytes) override;
  [[nodiscard]] uint64_t capacity_bytes() const override {
    return capacity_bytes_;  // exact, not rounded to chunks
  }
  [[nodiscard]] uint64_t used_bytes() const override {
    return (t1_items() + t2_items()) * chunk_size_;
  }
  [[nodiscard]] size_t physical_items() const override {
    return t1_items() + t2_items();
  }

  [[nodiscard]] double p() const { return p_; }
  [[nodiscard]] size_t t1_items() const { return ChainOf(List::kT1).count; }
  [[nodiscard]] size_t t2_items() const { return ChainOf(List::kT2).count; }
  [[nodiscard]] size_t b1_items() const { return ChainOf(List::kB1).count; }
  [[nodiscard]] size_t b2_items() const { return ChainOf(List::kB2).count; }
  [[nodiscard]] bool CheckInvariants() const;

 private:
  enum class List : uint8_t { kT1, kT2, kB1, kB2 };

  struct Node {
    uint64_t key = 0;
    uint32_t prev = kNullNode;
    uint32_t next = kNullNode;
    uint32_t list = 0;      // List enum value
    uint32_t expiry_s = 0;  // rides in padding slack: sizeof stays 24
  };
  static_assert(sizeof(Node) == 24, "expiry_s must fit the padding slack");

  [[nodiscard]] IntrusiveChain<Node>& ChainOf(List list) {
    return chains_[static_cast<size_t>(list)];
  }
  [[nodiscard]] const IntrusiveChain<Node>& ChainOf(List list) const {
    return chains_[static_cast<size_t>(list)];
  }

  // Fully remove `idx` (chain + index + node).
  void Remove(uint32_t idx);
  // Relink an existing node to the MRU end of `list` (no index churn).
  void MoveToMru(uint32_t idx, List list);
  // Admit a new key at the MRU end of `list`.
  void InsertMru(List list, uint64_t key, uint32_t expiry_s);
  // Demote one resident item to the appropriate ghost list.
  void Replace(bool in_b2);
  void EvictGhostLru(List list);

  uint32_t chunk_size_;
  uint64_t capacity_bytes_ = 0;
  uint64_t capacity_items_ = 0;
  double p_ = 0.0;  // target size of T1, in items

  std::array<IntrusiveChain<Node>, 4> chains_;
  NodeArena<Node> arena_;
  FlatIndex index_;
};

}  // namespace cliffhanger
