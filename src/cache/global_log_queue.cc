#include "cache/global_log_queue.h"

#include "util/slab_geometry.h"

namespace cliffhanger {

GlobalLogQueue::GlobalLogQueue(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      lru_({{capacity_bytes, SegmentedLru::Unit::kBytes, false}}) {}

GetResult GlobalLogQueue::Get(const ItemMeta& item) {
  GetResult result;
  if (lru_.Find(item.key) == 0) {
    lru_.MoveToFront(item.key, 0);
    result.hit = true;
    result.region = HitRegion::kPhysical;
  }
  return result;
}

void GlobalLogQueue::Fill(const ItemMeta& item) {
  lru_.Erase(item.key);
  SegmentedLru::Entry entry;
  entry.key = item.key;
  // Exact footprint: the log packs items contiguously (100% utilization).
  entry.full_bytes = static_cast<uint32_t>(
      ExactFootprint(item.key_size, item.value_size));
  entry.key_bytes = item.key_size;
  lru_.Insert(entry, 0);
}

void GlobalLogQueue::Delete(uint64_t key) { lru_.Erase(key); }

void GlobalLogQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  lru_.SetCapacity(0, bytes);
}

}  // namespace cliffhanger
