#include "cache/global_log_queue.h"

#include <algorithm>

#include "util/slab_geometry.h"

namespace cliffhanger {

GlobalLogQueue::GlobalLogQueue(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      lru_({{capacity_bytes, SegmentedLru::Unit::kBytes, false}}) {
  ReserveFromCapacity();
}

void GlobalLogQueue::ReserveFromCapacity() {
  // Item footprints are exact (variable) here, so the item count is not
  // knowable from bytes alone; hint the arena for a ~1 KiB mean item,
  // capped at 1M entries. The hint is deliberately conservative: an
  // under-estimate costs nothing (the pool grows geometrically, never per
  // item), while an aggressive guess would pin bookkeeping memory
  // proportional to capacity on large-item workloads.
  lru_.ReserveItems(static_cast<size_t>(
      std::min<uint64_t>(capacity_bytes_ >> 10, 1u << 20)));
}

GetResult GlobalLogQueue::Get(const ItemMeta& item) {
  GetResult result;
  const SegmentedLru::Handle h = lru_.FindHandle(item.key);
  if (h != SegmentedLru::kNoHandle) {
    if (lru_.HandleExpired(h, item.now_s)) {
      lru_.EraseHandle(h);  // lazy expiration, same as the slab queues
      return result;
    }
    lru_.Promote(h, 0);
    result.hit = true;
    result.region = HitRegion::kPhysical;
  }
  return result;
}

void GlobalLogQueue::Fill(const ItemMeta& item) {
  lru_.Erase(item.key);
  SegmentedLru::Entry entry;
  entry.key = item.key;
  // Exact footprint: the log packs items contiguously (100% utilization).
  entry.full_bytes = static_cast<uint32_t>(
      ExactFootprint(item.key_size, item.value_size));
  entry.key_bytes = item.key_size;
  entry.expiry_s = item.expiry_s;
  lru_.Insert(entry, 0);
}

bool GlobalLogQueue::Touch(const ItemMeta& item) {
  const SegmentedLru::Handle h = lru_.FindHandle(item.key);
  if (h == SegmentedLru::kNoHandle) return false;
  if (lru_.HandleExpired(h, item.now_s)) {
    lru_.EraseHandle(h);
    return false;
  }
  if (item.expiry_s != kKeepExpiry) lru_.SetHandleExpiry(h, item.expiry_s);
  lru_.Promote(h, 0);
  return true;
}

void GlobalLogQueue::Delete(uint64_t key) { lru_.Erase(key); }

void GlobalLogQueue::SetCapacityBytes(uint64_t bytes) {
  capacity_bytes_ = bytes;
  lru_.SetCapacity(0, bytes);
  ReserveFromCapacity();
}

}  // namespace cliffhanger
