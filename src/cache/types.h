// Shared cache-layer types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cliffhanger {

// Where a GET landed. The regions beyond kPhysical are the signals the
// Cliffhanger algorithms consume (paper §4.3):
//   kPhysicalTail — hit in the last `tail_items` of the physical queue
//                   ("left of the pointer" for the cliff scaler);
//   kCliffShadow  — hit in the small shadow right after the physical queue
//                   ("right of the pointer");
//   kHillShadow   — hit in the long shadow at the end (hill-climb credit).
enum class HitRegion : uint8_t {
  kMiss,
  kPhysical,
  kPhysicalTail,
  kCliffShadow,
  kHillShadow,
};

enum class Side : uint8_t { kLeft, kRight };

struct GetResult {
  bool hit = false;  // value present (kPhysical or kPhysicalTail)
  HitRegion region = HitRegion::kMiss;
  Side side = Side::kLeft;
};

// Insertion discipline for the physical queue.
//   kLru      — new items at the head (memcached default).
//   kMidpoint — Facebook's hybrid scheme (§5.5): first insertion lands at
//               the middle of the queue; a later hit promotes to the head.
enum class InsertionPolicy : uint8_t { kLru, kMidpoint };

// Sizes of the item being operated on; value sizes are a deterministic
// function of the key in all generators, so a refill after a miss recreates
// the same footprint.
struct ItemMeta {
  uint64_t key = 0;
  uint32_t key_size = 16;
  uint32_t value_size = 0;
};

// Minimal queue interface shared by the slab-class queue and the
// alternative eviction schemes (ARC, LFU) so the server and the benches can
// swap them freely.
class ClassQueue {
 public:
  virtual ~ClassQueue() = default;

  // Lookup + recency/frequency update. Does not insert on miss.
  virtual GetResult Get(const ItemMeta& item) = 0;
  // Store after a miss (demand fill) or an explicit SET.
  virtual void Fill(const ItemMeta& item) = 0;
  virtual void Delete(uint64_t key) = 0;

  virtual void SetCapacityBytes(uint64_t bytes) = 0;
  [[nodiscard]] virtual uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual size_t physical_items() const = 0;
};

}  // namespace cliffhanger
