// Shared cache-layer types.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cliffhanger {

// Where a GET landed. The regions beyond kPhysical are the signals the
// Cliffhanger algorithms consume (paper §4.3):
//   kPhysicalTail — hit in the last `tail_items` of the physical queue
//                   ("left of the pointer" for the cliff scaler);
//   kCliffShadow  — hit in the small shadow right after the physical queue
//                   ("right of the pointer");
//   kHillShadow   — hit in the long shadow at the end (hill-climb credit).
enum class HitRegion : uint8_t {
  kMiss,
  kPhysical,
  kPhysicalTail,
  kCliffShadow,
  kHillShadow,
};

enum class Side : uint8_t { kLeft, kRight };

struct GetResult {
  bool hit = false;  // value present (kPhysical or kPhysicalTail)
  HitRegion region = HitRegion::kMiss;
  Side side = Side::kLeft;
  // True when this access lazily expired the entry (the erased-on-access
  // path). Such an access is a full miss; the flag lets a payload-serving
  // front count expiry-misses separately (memcached's get_expired) without
  // keeping its own expiry records.
  bool expired = false;
};

// Insertion discipline for the physical queue.
//   kLru      — new items at the head (memcached default).
//   kMidpoint — Facebook's hybrid scheme (§5.5): first insertion lands at
//               the middle of the queue; a later hit promotes to the head.
enum class InsertionPolicy : uint8_t { kLru, kMidpoint };

// Sizes of the item being operated on; value sizes are a deterministic
// function of the key in all generators, so a refill after a miss recreates
// the same footprint.
//
// Time model: the cache layers are clockless — every operation carries its
// own access time (`now_s`, seconds), so expiry is a deterministic function
// of the operation stream. The simulator derives now_s from the trace's
// virtual time; the network adapter stamps it from an injectable wall
// clock. `expiry_s` is the absolute expiry second stored on Fill (0 =
// never). An item is expired iff expiry_s != 0 && expiry_s <= now_s;
// now_s == 0 disables expiry evaluation (legacy/simulation callers), so
// real clocks must never report second 0.
struct ItemMeta {
  uint64_t key = 0;
  uint32_t key_size = 16;
  uint32_t value_size = 0;
  uint32_t expiry_s = 0;  // absolute expiry second; 0 = never expires
  uint32_t now_s = 0;     // access time for lazy expiry; 0 = no checking
};

[[nodiscard]] inline bool ExpiredAt(uint32_t expiry_s, uint32_t now_s) {
  return expiry_s != 0 && expiry_s <= now_s;
}

// Touch with ItemMeta::expiry_s == kKeepExpiry refreshes recency without
// changing the stored expiry — the incr/decr path, where the caller (e.g.
// a trace replay) may not know the item's stored TTL and must not clear
// it. Protocol exptime normalization never produces this value
// (net::AbsoluteExpiry clamps below it), so it is unambiguous.
inline constexpr uint32_t kKeepExpiry = UINT32_MAX;

// Full memcached item metadata as the upper layers carry it: the opaque
// client flags, the absolute expiry and the compare-and-swap version. The
// cache queues store only expiry_s (the piece eviction semantics depend
// on); flags and cas ride in the value slot's header when the server runs
// with in-arena value storage (ServerConfig::store_values — see
// cache/value_store.h and util/value_arena.h).
struct ItemAttrs {
  uint32_t flags = 0;
  uint32_t expiry_s = 0;  // absolute; 0 = never
  uint64_t cas = 0;       // monotonically assigned per store
};

// Op-based mutation surface of the core (CacheServer::Mutate). The
// protocol-level conditional verbs (add/replace/cas/append/prepend/incr/
// decr) all reduce to these three once the payload owner has consulted its
// value table: a store becomes kFill (with the new size), touch becomes
// kTouch (expiry update + recency bump, no statistics mutation), and an
// invalidation (delete, expired reclaim, flush) becomes kErase.
enum class MutateOp : uint8_t { kFill, kTouch, kErase };

// Minimal queue interface shared by the slab-class queue and the
// alternative eviction schemes (ARC, LFU) so the server and the benches can
// swap them freely.
class ClassQueue {
 public:
  virtual ~ClassQueue() = default;

  // Lookup + recency/frequency update. Does not insert on miss. Expiry is
  // lazy: a hit on an item whose stored expiry_s has passed item.now_s is
  // erased on the spot (O(1), no background sweeper) and classified as a
  // full miss — no shadow credit, exactly as if memcached had already
  // reclaimed it.
  virtual GetResult Get(const ItemMeta& item) = 0;
  // Store after a miss (demand fill) or an explicit SET; records
  // item.expiry_s with the entry.
  virtual void Fill(const ItemMeta& item) = 0;
  // Update an existing item's expiry to item.expiry_s and refresh its
  // recency/frequency standing (memcached `touch`). Returns true only when
  // the item was physically resident and unexpired at item.now_s; an
  // expired item is erased (same lazy path as Get) and reported absent.
  // Shadow-only entries are left untouched and reported absent.
  virtual bool Touch(const ItemMeta& item) = 0;
  virtual void Delete(uint64_t key) = 0;

  virtual void SetCapacityBytes(uint64_t bytes) = 0;
  [[nodiscard]] virtual uint64_t capacity_bytes() const = 0;
  [[nodiscard]] virtual uint64_t used_bytes() const = 0;
  [[nodiscard]] virtual size_t physical_items() const = 0;
};

}  // namespace cliffhanger
