// Exact LRU stack distances (Mattson et al., 1970) in O(log N) per access
// via a Fenwick (binary indexed) tree over access positions.
//
// The stack distance of an access is the item's 1-based rank from the top of
// the LRU queue — equivalently one plus the number of distinct keys touched
// since its previous access. First-ever accesses have infinite distance
// (reported as 0 here and tallied as cold misses).
//
// The paper calls direct computation "O(N)" per access and too expensive for
// production servers (§2.1) — this offline analyzer exists to (a) draw the
// ground-truth hit-rate curves of Figures 1/3/4, (b) feed the full-curve
// baselines (Talus oracle, LookAhead), and (c) validate the cheap Mimir
// estimator the Dynacache solver uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cliffhanger {

class StackDistanceAnalyzer {
 public:
  StackDistanceAnalyzer() = default;

  // Records an access; returns its stack distance (0 = first access).
  uint64_t Record(uint64_t key);

  [[nodiscard]] uint64_t total_accesses() const { return time_; }
  [[nodiscard]] uint64_t cold_misses() const { return cold_misses_; }
  [[nodiscard]] uint64_t unique_keys() const { return last_pos_.size(); }
  // histogram()[d] = number of accesses with stack distance d (d >= 1);
  // index 0 is unused.
  [[nodiscard]] const std::vector<uint64_t>& histogram() const {
    return histogram_;
  }

 private:
  // Fenwick tree over positions 1..time_ with 1s at each key's last access.
  void FenwickAdd(size_t pos, int delta);
  [[nodiscard]] uint64_t FenwickSum(size_t pos) const;  // prefix sum [1, pos]
  // Doubles the tree, rebuilding it from the alive bitmap.
  void Grow();

  std::vector<int32_t> tree_;
  std::vector<uint8_t> alive_;
  std::unordered_map<uint64_t, uint64_t> last_pos_;  // key -> last position
  std::vector<uint64_t> histogram_;
  uint64_t time_ = 0;
  uint64_t cold_misses_ = 0;
};

}  // namespace cliffhanger
