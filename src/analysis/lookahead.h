// LookAhead allocation (Qureshi & Patt, MICRO'06 — utility-based cache
// partitioning). The paper cites it as the other full-curve technique that
// copes with non-convex utility curves: instead of a one-step marginal gain,
// each round considers *every* prospective allocation size and picks the
// queue maximizing gain-per-byte over its best lookahead window — so a cliff
// a few steps ahead is priced correctly.
//
// Like Talus, it needs the entire hit-rate curve; it is implemented here as
// an oracle baseline and for the ablation benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/dynacache_solver.h"

namespace cliffhanger {

// Same inputs/outputs as the Dynacache solver for drop-in comparison; the
// transform field of SolverConfig is ignored (LookAhead works on raw curves
// by design).
[[nodiscard]] SolverResult SolveLookAhead(
    const std::vector<SolverQueueInput>& queues, const SolverConfig& config);

}  // namespace cliffhanger
