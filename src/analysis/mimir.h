// Mimir-style bucketed stack-distance estimation (Saemundsson et al.,
// SoCC'14), the O(N/B) scheme Dynacache uses (paper §2.1, 100 buckets).
//
// Resident keys are grouped into at most B generation buckets ordered from
// newest to oldest. On a reuse, the estimated stack distance is the total
// population of strictly newer buckets plus half of the key's own bucket
// (average position within the bucket). The key then moves to the newest
// bucket; when the bucket count exceeds B the two oldest buckets merge.
//
// The estimate's error is bounded by the bucket population — which is why
// the paper notes the technique "is not accurate when estimating stack
// distance curves with tens of thousands of items or more".
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace cliffhanger {

class MimirEstimator {
 public:
  explicit MimirEstimator(size_t num_buckets = 100);

  // Records an access; returns the estimated stack distance (0 = first
  // access) and accumulates the estimate histogram.
  uint64_t Record(uint64_t key);

  [[nodiscard]] uint64_t total_accesses() const { return accesses_; }
  [[nodiscard]] uint64_t cold_misses() const { return cold_misses_; }
  [[nodiscard]] const std::vector<uint64_t>& histogram() const {
    return histogram_;
  }

 private:
  void Rotate();

  size_t num_buckets_;
  uint64_t next_generation_ = 1;
  // Generation id per bucket, newest at front; sizes tracked separately.
  std::deque<std::pair<uint64_t, uint64_t>> buckets_;  // (generation, size)
  uint64_t oldest_alias_floor_ = 0;  // generations below this were merged
  std::unordered_map<uint64_t, uint64_t> key_generation_;
  std::vector<uint64_t> histogram_;
  uint64_t accesses_ = 0;
  uint64_t cold_misses_ = 0;
  uint64_t max_bucket_size_ = 64;
};

}  // namespace cliffhanger
