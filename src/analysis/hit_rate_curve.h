// Hit-rate curve construction from stack-distance histograms.
//
// h(c) = P(stack distance <= c): the hit rate an LRU queue of c items would
// have achieved on the recorded accesses (Mattson's inclusion property).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/curve.h"

namespace cliffhanger {

// Builds h(items) from a distance histogram (histogram[d] = number of
// accesses at distance d, d >= 1) over `total_accesses` GETs (accesses with
// infinite distance count toward the denominator but never hit). The curve
// is downsampled to at most `max_points` samples; the exact cumulative value
// is kept at every retained point.
[[nodiscard]] PiecewiseCurve CurveFromHistogram(
    const std::vector<uint64_t>& histogram, uint64_t total_accesses,
    size_t max_points = 1024);

// Rescales a curve's x axis (e.g. items -> bytes via the chunk size).
[[nodiscard]] PiecewiseCurve ScaleCurveX(const PiecewiseCurve& curve,
                                         double factor);

// Weighted sum of several curves evaluated at per-curve capacities — the
// objective of Equation 1.
[[nodiscard]] double TotalHitRate(const std::vector<PiecewiseCurve>& curves,
                                  const std::vector<double>& request_shares,
                                  const std::vector<double>& capacities);

}  // namespace cliffhanger
