#include "analysis/hit_rate_curve.h"

#include <algorithm>

namespace cliffhanger {

PiecewiseCurve CurveFromHistogram(const std::vector<uint64_t>& histogram,
                                  uint64_t total_accesses, size_t max_points) {
  PiecewiseCurve curve;
  if (total_accesses == 0 || histogram.size() <= 1) return curve;
  const size_t max_d = histogram.size() - 1;
  const size_t stride = std::max<size_t>(1, max_d / max_points);

  // The cumulative histogram is a step function; to keep linear
  // interpolation faithful we emit both ends of every plateau (skipping the
  // interior), so a flat region stays flat and a cliff stays a cliff.
  uint64_t cumulative = 0;
  double last_y = 0.0;
  double plateau_x = 0.0;   // last boundary seen at last_y
  double emitted_x = 0.0;   // x of the last emitted point
  for (size_t d = 1; d <= max_d; ++d) {
    cumulative += histogram[d];
    const bool boundary = (d % stride == 0) || d == max_d;
    if (!boundary) continue;
    const double x = static_cast<double>(d);
    const double y =
        static_cast<double>(cumulative) / static_cast<double>(total_accesses);
    if (y != last_y) {
      if (plateau_x > emitted_x) {
        curve.AddPoint(plateau_x, last_y);  // close the plateau
      }
      curve.AddPoint(x, y);
      emitted_x = x;
    } else if (d == max_d && x > emitted_x) {
      curve.AddPoint(x, y);
      emitted_x = x;
    }
    plateau_x = x;
    last_y = y;
  }
  return curve;
}

PiecewiseCurve ScaleCurveX(const PiecewiseCurve& curve, double factor) {
  std::vector<double> xs = curve.xs();
  for (double& x : xs) x *= factor;
  return PiecewiseCurve(std::move(xs), curve.ys());
}

double TotalHitRate(const std::vector<PiecewiseCurve>& curves,
                    const std::vector<double>& request_shares,
                    const std::vector<double>& capacities) {
  double total = 0.0;
  for (size_t i = 0; i < curves.size(); ++i) {
    total += request_shares[i] * curves[i].Eval(capacities[i]);
  }
  return total;
}

}  // namespace cliffhanger
