// Talus oracle (Beckmann & Sanchez, HPCA'15): given the full hit-rate curve,
// partition a queue of capacity C into two smaller queues whose simulated
// sizes are the concave-hull anchor points bracketing C, so the achieved hit
// rate lies on the hull (paper §4.2 and Figure 4).
//
// The worked example from the paper: capacity 8000 items, anchors 2000 and
// 13500 => route 48% of requests to a 957-item left queue (simulating 2000)
// and 52% to a 7043-item right queue (simulating 13500).
//
// Cliffhanger's cliff scaler discovers these anchors *online* with shadow
// queues; this module computes them offline from the exact curve, serving
// as ground truth for tests and the Figure 4 bench.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/curve.h"

namespace cliffhanger {

struct TalusSplit {
  bool partitioned = false;       // false: capacity sits on a concave region
  double left_simulated = 0.0;    // lower hull anchor (items)
  double right_simulated = 0.0;   // upper hull anchor (items)
  double request_ratio_left = 0.5;
  double left_physical = 0.0;     // items devoted to the left queue
  double right_physical = 0.0;    // items devoted to the right queue
  double expected_hit_rate = 0.0; // hull value at the capacity
};

// `curve` has x in items; `capacity_items` is the queue's physical size.
[[nodiscard]] TalusSplit ComputeTalusSplit(const PiecewiseCurve& curve,
                                           double capacity_items);

}  // namespace cliffhanger
