#include "analysis/lookahead.h"

#include <algorithm>

namespace cliffhanger {

SolverResult SolveLookAhead(const std::vector<SolverQueueInput>& queues,
                            const SolverConfig& config) {
  SolverResult result;
  const size_t n = queues.size();
  result.allocation_bytes.assign(n, 0);
  if (n == 0 || config.total_bytes == 0) return result;

  const uint64_t step = std::max<uint64_t>(1, config.step_bytes);
  uint64_t budget = config.total_bytes;

  for (size_t i = 0; i < n; ++i) {
    const uint64_t floor = std::min(queues[i].min_bytes, budget);
    result.allocation_bytes[i] = floor;
    budget -= floor;
  }

  // Max marginal utility: for queue i at allocation m with remaining budget
  // r, scan windows w = step, 2*step, ... <= r and return the best
  // gain-per-byte together with the window achieving it.
  const auto best_window = [&](size_t i, uint64_t remaining) {
    const double m = static_cast<double>(result.allocation_bytes[i]);
    const double base = queues[i].curve.Eval(m);
    double best_rate = 0.0;
    uint64_t best_w = 0;
    for (uint64_t w = step; w <= remaining; w += step) {
      const double gain = queues[i].weight * queues[i].request_share *
                          (queues[i].curve.Eval(m + static_cast<double>(w)) -
                           base);
      const double rate = gain / static_cast<double>(w);
      if (rate > best_rate + 1e-15) {
        best_rate = rate;
        best_w = w;
      }
      // Stop scanning beyond the end of the sampled curve.
      if (m + static_cast<double>(w) >= queues[i].curve.max_x() &&
          w >= step * 2) {
        break;
      }
    }
    return std::pair<double, uint64_t>{best_rate, best_w};
  };

  while (budget >= step) {
    double best_rate = 0.0;
    uint64_t best_w = 0;
    size_t best_i = n;
    for (size_t i = 0; i < n; ++i) {
      const auto [rate, w] = best_window(i, budget);
      if (rate > best_rate + 1e-15) {
        best_rate = rate;
        best_w = w;
        best_i = i;
      }
    }
    if (best_i == n || best_w == 0) break;
    result.allocation_bytes[best_i] += best_w;
    budget -= best_w;
  }

  for (size_t i = 0; i < n; ++i) {
    result.predicted_hit_rate +=
        queues[i].request_share *
        queues[i].curve.Eval(static_cast<double>(result.allocation_bytes[i]));
  }
  return result;
}

}  // namespace cliffhanger
