#include "analysis/dynacache_solver.h"

#include <algorithm>
#include <queue>

namespace cliffhanger {

namespace {

PiecewiseCurve ApplyTransform(const PiecewiseCurve& curve,
                              CurveTransform transform) {
  switch (transform) {
    case CurveTransform::kRaw:
      return curve;
    case CurveTransform::kConcaveRegression:
      return ConcavifyCurve(curve);
    case CurveTransform::kConcaveHull:
      return UpperConcaveHull(curve);
  }
  return curve;
}

}  // namespace

SolverResult SolveAllocation(const std::vector<SolverQueueInput>& queues,
                             const SolverConfig& config) {
  SolverResult result;
  const size_t n = queues.size();
  result.allocation_bytes.assign(n, 0);
  if (n == 0 || config.total_bytes == 0) return result;

  std::vector<PiecewiseCurve> curves;
  curves.reserve(n);
  for (const SolverQueueInput& q : queues) {
    curves.push_back(ApplyTransform(q.curve, config.transform));
  }

  const uint64_t step = std::max<uint64_t>(1, config.step_bytes);
  uint64_t budget = config.total_bytes;

  // Honour floors first.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t floor = std::min(queues[i].min_bytes, budget);
    result.allocation_bytes[i] = floor;
    budget -= floor;
  }

  // Greedy marginal utility with a max-heap of (gain-per-step, queue).
  // For concave curves gains only shrink as a queue grows, so a lazy heap
  // (re-push after allocating) is exact.
  const auto gain = [&](size_t i) {
    const double m = static_cast<double>(result.allocation_bytes[i]);
    return queues[i].weight * queues[i].request_share *
           (curves[i].Eval(m + static_cast<double>(step)) - curves[i].Eval(m));
  };
  using HeapEntry = std::pair<double, size_t>;
  std::priority_queue<HeapEntry> heap;
  for (size_t i = 0; i < n; ++i) heap.push({gain(i), i});

  while (budget >= step && !heap.empty()) {
    const auto [g, i] = heap.top();
    heap.pop();
    // Lazy invalidation: recompute and re-push when stale.
    const double fresh = gain(i);
    if (fresh < g - 1e-15 && !heap.empty() && heap.top().first > fresh) {
      heap.push({fresh, i});
      continue;
    }
    if (fresh <= 0.0) break;  // nothing left to gain anywhere
    result.allocation_bytes[i] += step;
    budget -= step;
    heap.push({gain(i), i});
  }

  for (size_t i = 0; i < n; ++i) {
    result.predicted_hit_rate +=
        queues[i].request_share *
        curves[i].Eval(static_cast<double>(result.allocation_bytes[i]));
  }
  return result;
}

}  // namespace cliffhanger
