#include "analysis/mimir.h"

#include <algorithm>

namespace cliffhanger {

MimirEstimator::MimirEstimator(size_t num_buckets)
    : num_buckets_(std::max<size_t>(2, num_buckets)) {}

void MimirEstimator::Rotate() {
  if (buckets_.size() <= num_buckets_) return;
  // Merge the two oldest buckets: keys in the very oldest generation are
  // re-labelled into the second-oldest. Rather than rewriting per-key
  // labels eagerly (O(size)), we record an alias by folding sizes; lookups
  // clamp unknown generations to the oldest bucket.
  auto oldest = buckets_.back();
  buckets_.pop_back();
  buckets_.back().second += oldest.second;
  oldest_alias_floor_ = buckets_.back().first;
}

uint64_t MimirEstimator::Record(uint64_t key) {
  ++accesses_;
  // Adaptive target bucket population: keep buckets near equal shares of the
  // resident population.
  max_bucket_size_ = std::max<uint64_t>(
      64, key_generation_.size() / num_buckets_ + 1);

  uint64_t distance = 0;
  const auto it = key_generation_.find(key);
  if (it == key_generation_.end()) {
    ++cold_misses_;
  } else {
    uint64_t gen = it->second;
    // Generations older than the alias floor were merged into the floor.
    gen = std::max(gen, oldest_alias_floor_);
    uint64_t newer = 0;
    uint64_t own_bucket = 0;
    bool found = false;
    for (const auto& [bucket_gen, size] : buckets_) {
      if (bucket_gen > gen) {
        newer += size;
      } else if (bucket_gen == gen) {
        own_bucket = size;
        found = true;
        break;
      } else {
        break;
      }
    }
    if (!found && !buckets_.empty()) own_bucket = buckets_.back().second;
    distance = newer + own_bucket / 2 + 1;
    if (histogram_.size() <= distance) histogram_.resize(distance + 1, 0);
    ++histogram_[distance];
    // Remove from its current bucket.
    for (auto& [bucket_gen, size] : buckets_) {
      if (bucket_gen == gen && size > 0) {
        --size;
        break;
      }
    }
  }

  // Place into the newest bucket, opening a fresh one when full.
  if (buckets_.empty() || buckets_.front().second >= max_bucket_size_) {
    buckets_.emplace_front(next_generation_++, 0);
    Rotate();
  }
  ++buckets_.front().second;
  key_generation_[key] = buckets_.front().first;
  return distance;
}

}  // namespace cliffhanger
