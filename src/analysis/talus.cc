#include "analysis/talus.h"

#include <algorithm>
#include <cmath>

namespace cliffhanger {

TalusSplit ComputeTalusSplit(const PiecewiseCurve& curve,
                             double capacity_items) {
  TalusSplit split;
  const PiecewiseCurve hull = UpperConcaveHull(curve);
  split.expected_hit_rate = hull.Eval(capacity_items);
  if (hull.empty() || capacity_items <= 0.0) return split;

  // Locate the hull segment containing the capacity.
  const auto& xs = hull.xs();
  double x1 = 0.0, x2 = 0.0;
  bool bracketed = false;
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] >= capacity_items) {
      x2 = xs[i];
      if (i > 0) x1 = xs[i - 1];
      bracketed = true;
      break;
    }
  }
  if (!bracketed) {
    // Beyond the last hull point: the whole curve fits; no partitioning.
    split.expected_hit_rate = hull.max_y();
    return split;
  }

  // If the capacity essentially coincides with a hull vertex, or the raw
  // curve already achieves the hull here, a single queue suffices.
  const double raw = curve.Eval(capacity_items);
  if (std::abs(x2 - capacity_items) < 1e-9 ||
      std::abs(x1 - capacity_items) < 1e-9 ||
      raw >= split.expected_hit_rate - 1e-9) {
    return split;
  }

  // Talus interpolation between the hull anchors at x1 and x2:
  //   rho   = fraction of requests to the small (left) queue
  //   left  simulates x1 with rho of the traffic  -> physical x1 * rho
  //   right simulates x2 with 1-rho of the traffic -> physical x2 * (1-rho)
  const double rho = (x2 - capacity_items) / (x2 - x1);
  split.partitioned = true;
  split.left_simulated = x1;
  split.right_simulated = x2;
  split.request_ratio_left = rho;
  split.left_physical = x1 * rho;
  split.right_physical = x2 * (1.0 - rho);
  return split;
}

}  // namespace cliffhanger
