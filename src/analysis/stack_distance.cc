#include "analysis/stack_distance.h"

namespace cliffhanger {

void StackDistanceAnalyzer::FenwickAdd(size_t pos, int delta) {
  for (; pos < tree_.size(); pos += pos & (~pos + 1)) {
    tree_[pos] += delta;
  }
}

uint64_t StackDistanceAnalyzer::FenwickSum(size_t pos) const {
  uint64_t sum = 0;
  for (; pos > 0; pos -= pos & (~pos + 1)) {
    sum += static_cast<uint64_t>(tree_[pos]);
  }
  return sum;
}

void StackDistanceAnalyzer::Grow() {
  size_t n = tree_.empty() ? 1024 : tree_.size();
  while (n <= time_) n *= 2;
  alive_.resize(n, 0);
  // A Fenwick tree cannot simply be zero-extended: node i aggregates the
  // range (i - lowbit(i), i], so fresh high nodes must fold in existing
  // values. Rebuild from the alive bitmap in O(n).
  tree_.assign(n, 0);
  for (size_t i = 1; i < n; ++i) {
    tree_[i] += alive_[i];
    const size_t parent = i + (i & (~i + 1));
    if (parent < n) tree_[parent] += tree_[i];
  }
}

uint64_t StackDistanceAnalyzer::Record(uint64_t key) {
  ++time_;
  if (tree_.size() <= time_) Grow();

  uint64_t distance = 0;
  const auto it = last_pos_.find(key);
  if (it == last_pos_.end()) {
    ++cold_misses_;
    last_pos_.emplace(key, time_);
  } else {
    const uint64_t prev = it->second;
    // Distinct keys touched strictly after prev = alive flags in (prev, t-1];
    // the current access position t has no flag yet.
    distance = (FenwickSum(time_ - 1) - FenwickSum(prev)) + 1;
    FenwickAdd(prev, -1);
    alive_[prev] = 0;
    it->second = time_;
    if (histogram_.size() <= distance) histogram_.resize(distance + 1, 0);
    ++histogram_[distance];
  }
  FenwickAdd(time_, +1);
  alive_[time_] = 1;
  return distance;
}

}  // namespace cliffhanger
