// The Dynacache solver (Cidon et al., HotCloud'15) — the paper's main
// offline baseline (Equation 1): maximize sum_i f_i * h_i(m_i) subject to
// sum_i m_i <= M.
//
// For concave h_i, greedy marginal-utility allocation in fixed steps is
// exactly optimal (the Lagrangian condition f_i h_i'(m_i) = gamma emerges
// from always feeding the steepest curve). Dynacache *assumes* concavity, so
// the solver first fits a concave regression to each estimated curve — and
// that assumption is precisely what breaks on performance cliffs (§3.5: for
// application 19 "the solver approximates the hit rate curve to be lower
// than it is ... and significantly reduces its hit rate").
//
// Transforms:
//   kConcaveRegression — Dynacache behaviour (default baseline)
//   kConcaveHull       — Talus-style oracle (upper hull is *achievable* by
//                        queue partitioning, so allocating on the hull and
//                        partitioning realizes it)
//   kRaw               — plain greedy on the raw curve (gets stuck below
//                        cliffs exactly like hill climbing without scaling)
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/curve.h"

namespace cliffhanger {

enum class CurveTransform : uint8_t {
  kRaw,
  kConcaveRegression,
  kConcaveHull,
};

struct SolverQueueInput {
  PiecewiseCurve curve;       // x in bytes, y = hit rate of the queue
  double request_share = 1.0; // f_i: fraction of GETs hitting this queue
  double weight = 1.0;        // w_i (Equation 1); 1 throughout the paper
  uint64_t min_bytes = 0;     // floor (e.g. one page)
};

struct SolverConfig {
  uint64_t total_bytes = 0;   // M
  uint64_t step_bytes = 64 * 1024;  // allocation granularity (one page)
  CurveTransform transform = CurveTransform::kConcaveRegression;
};

struct SolverResult {
  std::vector<uint64_t> allocation_bytes;
  // Objective value the solver *believes* it achieved (on the transformed
  // curves). The true outcome comes from replaying the trace.
  double predicted_hit_rate = 0.0;
};

[[nodiscard]] SolverResult SolveAllocation(
    const std::vector<SolverQueueInput>& queues, const SolverConfig& config);

}  // namespace cliffhanger
