// Tests for the alternative eviction schemes: ARC, LFU and the
// log-structured global LRU.
#include <gtest/gtest.h>

#include "cache/arc_queue.h"
#include "cache/global_log_queue.h"
#include "cache/lfu_queue.h"
#include "util/rng.h"

namespace cliffhanger {
namespace {

ItemMeta Item(uint64_t key, uint32_t value_size = 12) {
  ItemMeta m;
  m.key = key;
  m.key_size = 14;
  m.value_size = value_size;
  return m;
}

TEST(ArcQueue, BasicHitAfterAdmission) {
  ArcQueue q(64);
  q.SetCapacityBytes(10 * 64);
  EXPECT_FALSE(q.Get(Item(1)).hit);  // miss admits into T1
  EXPECT_TRUE(q.Get(Item(1)).hit);   // now resident, promoted to T2
  EXPECT_EQ(q.t2_items(), 1u);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueue, EvictsUnderCapacity) {
  ArcQueue q(64);
  q.SetCapacityBytes(4 * 64);
  for (uint64_t k = 1; k <= 100; ++k) (void)q.Get(Item(k));
  EXPECT_LE(q.physical_items(), 4u);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueue, GhostHitAdaptsTarget) {
  ArcQueue q(64);
  q.SetCapacityBytes(4 * 64);
  // Put something in T2 first (ARC only demotes T1 -> B1 via REPLACE, which
  // requires a resident T2 alternative; with T1 full and B1 empty, pure
  // one-timer streams evict T1's LRU outright — that *is* ARC).
  (void)q.Get(Item(100));
  (void)q.Get(Item(100));  // 100 now in T2
  // Stream one-timers: REPLACE demotes T1's LRU into B1.
  for (uint64_t k = 1; k <= 10; ++k) (void)q.Get(Item(k));
  const double p_before = q.p();
  EXPECT_GT(q.b1_items(), 0u);
  // Re-touch an item that fell into B1: p should grow (favor recency).
  (void)q.Get(Item(7));
  EXPECT_GE(q.p(), p_before);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueue, ScanResistanceBeatsNothing) {
  // Frequently-reused hot set + one-timer scan: ARC should keep hitting the
  // hot set (the whole point of T2).
  ArcQueue q(64);
  q.SetCapacityBytes(16 * 64);
  Rng rng(5);
  uint64_t hot_hits = 0, hot_gets = 0;
  uint64_t scan_key = 1000;
  // Warm the hot set.
  for (uint64_t k = 1; k <= 8; ++k) (void)q.Get(Item(k));
  for (uint64_t k = 1; k <= 8; ++k) (void)q.Get(Item(k));
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.5)) {
      const uint64_t k = 1 + rng.NextBounded(8);
      ++hot_gets;
      hot_hits += q.Get(Item(k)).hit ? 1 : 0;
    } else {
      (void)q.Get(Item(scan_key++));  // never repeats
    }
  }
  EXPECT_GT(static_cast<double>(hot_hits) / hot_gets, 0.95);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueue, InvariantsUnderRandomWorkload) {
  ArcQueue q(64);
  q.SetCapacityBytes(32 * 64);
  Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    (void)q.Get(Item(rng.NextBounded(200)));
    if (i % 1000 == 0) {
      q.SetCapacityBytes((16 + rng.NextBounded(32)) * 64);
      ASSERT_TRUE(q.CheckInvariants()) << "iteration " << i;
    }
  }
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueue, DeleteRemoves) {
  ArcQueue q(64);
  q.SetCapacityBytes(8 * 64);
  (void)q.Get(Item(1));
  q.Delete(1);
  EXPECT_FALSE(q.Get(Item(1)).hit);
}

TEST(LfuQueue, KeepsFrequentItems) {
  LfuQueue q(64);
  q.SetCapacityBytes(2 * 64);
  q.Fill(Item(1));
  q.Fill(Item(2));
  (void)q.Get(Item(1));
  (void)q.Get(Item(1));
  q.Fill(Item(3));  // evicts 2 (freq 1, LRU among freq-1)
  EXPECT_TRUE(q.Get(Item(1)).hit);
  EXPECT_FALSE(q.Get(Item(2)).hit);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(LfuQueue, FrequencyTracksHits) {
  LfuQueue q(64);
  q.SetCapacityBytes(4 * 64);
  q.Fill(Item(1));
  EXPECT_EQ(q.FrequencyOf(1), 1u);
  (void)q.Get(Item(1));
  (void)q.Get(Item(1));
  EXPECT_EQ(q.FrequencyOf(1), 3u);
  EXPECT_EQ(q.FrequencyOf(99), 0u);
}

TEST(LfuQueue, CapacityShrinkEvictsLowFrequency) {
  LfuQueue q(64);
  q.SetCapacityBytes(4 * 64);
  for (uint64_t k = 1; k <= 4; ++k) q.Fill(Item(k));
  (void)q.Get(Item(1));
  (void)q.Get(Item(2));
  q.SetCapacityBytes(2 * 64);
  EXPECT_TRUE(q.Get(Item(1)).hit);
  EXPECT_TRUE(q.Get(Item(2)).hit);
  EXPECT_FALSE(q.Get(Item(3)).hit);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(LfuQueue, InvariantsUnderRandomWorkload) {
  LfuQueue q(64);
  q.SetCapacityBytes(32 * 64);
  Rng rng(11);
  for (int i = 0; i < 30000; ++i) {
    const ItemMeta item = Item(rng.NextBounded(100));
    if (!q.Get(item).hit) q.Fill(item);
  }
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(GlobalLogQueue, UsesExactFootprints) {
  GlobalLogQueue q(1000);
  // key 14 + value 100 + overhead 32 = 146 exact bytes (no chunk rounding).
  q.Fill(Item(1, 100));
  EXPECT_EQ(q.used_bytes(), 146u);
}

TEST(GlobalLogQueue, MixedSizesShareOneLru) {
  GlobalLogQueue q(400);
  q.Fill(Item(1, 100));  // 146 B
  q.Fill(Item(2, 100));  // 146 B
  q.Fill(Item(3, 100));  // 146 B -> evicts 1 (438 > 400)
  EXPECT_FALSE(q.Get(Item(1, 100)).hit);
  EXPECT_TRUE(q.Get(Item(2, 100)).hit);
}

TEST(GlobalLogQueue, LargeItemEvictsManySmall) {
  GlobalLogQueue q(1000);
  for (uint64_t k = 1; k <= 15; ++k) q.Fill(Item(k, 14));  // 60 B each
  EXPECT_EQ(q.physical_items(), 15u);
  q.Fill(Item(100, 900));  // 946 B: nearly everything must go
  EXPECT_LE(q.used_bytes(), 1000u);
  EXPECT_TRUE(q.Get(Item(100, 900)).hit);
}

TEST(GlobalLogQueue, ResizeEvicts) {
  GlobalLogQueue q(1000);
  for (uint64_t k = 1; k <= 10; ++k) q.Fill(Item(k, 14));
  q.SetCapacityBytes(120);
  EXPECT_LE(q.used_bytes(), 120u);
  EXPECT_EQ(q.physical_items(), 2u);
}

}  // namespace
}  // namespace cliffhanger
