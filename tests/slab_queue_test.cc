// Tests for SlabClassQueue and PartitionedSlabQueue: region classification
// (Figure 5 layout), midpoint insertion, partition routing and resizing.
#include <gtest/gtest.h>

#include <map>

#include "cache/slab_class_queue.h"
#include "util/hashing.h"

namespace cliffhanger {
namespace {

ItemMeta Item(uint64_t key) {
  ItemMeta m;
  m.key = key;
  m.key_size = 14;
  m.value_size = 12;
  return m;
}

SlabQueueConfig SmallConfig() {
  SlabQueueConfig config;
  config.chunk_size = 64;
  config.tail_items = 4;
  config.cliff_shadow_items = 4;
  config.hill_shadow_bytes = 8 * 64;  // 8 items
  return config;
}

TEST(SlabClassQueue, MissThenFillThenHit) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(16);
  EXPECT_EQ(q.Get(Item(1)).region, HitRegion::kMiss);
  q.Fill(Item(1));
  const GetResult r = q.Get(Item(1));
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kPhysical);
}

TEST(SlabClassQueue, RegionsFollowFigure5Layout) {
  // Capacity 8 = head 4 + tail 4; cliff shadow 4; hill shadow 8.
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(8);
  for (uint64_t k = 1; k <= 24; ++k) q.Fill(Item(k));
  // Keys 24..21 in head, 20..17 in tail, 16..13 in cliff shadow,
  // 12..5 in hill shadow, 4..1 evicted.
  EXPECT_EQ(q.Get(Item(23)).region, HitRegion::kPhysical);
  EXPECT_EQ(q.Get(Item(18)).region, HitRegion::kPhysicalTail);
  EXPECT_EQ(q.Get(Item(15)).region, HitRegion::kCliffShadow);
  EXPECT_EQ(q.Get(Item(8)).region, HitRegion::kHillShadow);
  EXPECT_EQ(q.Get(Item(2)).region, HitRegion::kMiss);
}

TEST(SlabClassQueue, TailHitIsARealHit) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(8);
  for (uint64_t k = 1; k <= 8; ++k) q.Fill(Item(k));
  const GetResult r = q.Get(Item(1));  // oldest, in tail
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kPhysicalTail);
}

TEST(SlabClassQueue, ShadowHitIsAMiss) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(4);
  for (uint64_t k = 1; k <= 8; ++k) q.Fill(Item(k));
  const GetResult r = q.Get(Item(2));
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kCliffShadow);
  // Demand fill after the miss promotes it back to physical.
  q.Fill(Item(2));
  EXPECT_TRUE(q.Get(Item(2)).hit);
}

TEST(SlabClassQueue, WholeQueueIsTailWhenTiny) {
  SlabQueueConfig config = SmallConfig();
  SlabClassQueue q(config);
  q.SetCapacityItems(2);  // smaller than tail_items = 4
  q.Fill(Item(1));
  EXPECT_EQ(q.Get(Item(1)).region, HitRegion::kPhysicalTail);
}

TEST(SlabClassQueue, CapacityBytesRoundTrips) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityBytes(1024);
  EXPECT_EQ(q.capacity_items(), 16u);
  EXPECT_EQ(q.capacity_bytes(), 1024u);
}

TEST(SlabClassQueue, UsedBytesTracksChunks) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(16);
  for (uint64_t k = 1; k <= 5; ++k) q.Fill(Item(k));
  EXPECT_EQ(q.used_bytes(), 5u * 64u);
  EXPECT_EQ(q.physical_items(), 5u);
}

TEST(SlabClassQueue, MidpointInsertsAtMiddle) {
  SlabQueueConfig config = SmallConfig();
  config.policy = InsertionPolicy::kMidpoint;
  config.tail_items = 2;
  SlabClassQueue q(config);
  q.SetCapacityItems(10);  // head 4, mid 4, tail 2
  // First-touch items go to the middle; a second hit promotes to the top.
  q.Fill(Item(1));
  // Fill more first-touch items: they push 1 down from the mid segment.
  for (uint64_t k = 2; k <= 5; ++k) q.Fill(Item(k));
  // Under pure LRU, 1 would still be in the physical queue of size 10; with
  // midpoint insertion it has been pushed toward the tail by mid-inserts.
  const GetResult r = q.Get(Item(1));
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kPhysicalTail);
}

TEST(SlabClassQueue, MidpointSecondHitGoesToTop) {
  SlabQueueConfig config = SmallConfig();
  config.policy = InsertionPolicy::kMidpoint;
  config.tail_items = 2;
  SlabClassQueue q(config);
  q.SetCapacityItems(10);
  q.Fill(Item(1));
  EXPECT_TRUE(q.Get(Item(1)).hit);  // promotes to head
  for (uint64_t k = 2; k <= 9; ++k) q.Fill(Item(k));
  // 1 now outlives the mid-inserted churn.
  EXPECT_EQ(q.Get(Item(1)).region, HitRegion::kPhysical);
}

TEST(SlabClassQueue, ShadowOverheadIsSmall) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(16);
  for (uint64_t k = 1; k <= 40; ++k) q.Fill(Item(k));
  // 12 shadow keys max (4 cliff + 8 hill), each charged its 14 key bytes
  // plus the arena implementation's real per-item bookkeeping footprint
  // (pool node + flat-index slot).
  EXPECT_LE(q.shadow_overhead_bytes(),
            12u * (14u + SegmentedLru::kPerItemOverheadBytes));
  EXPECT_GT(q.shadow_overhead_bytes(), 0u);
}

PartitionConfig PartCfg() {
  PartitionConfig pc;
  pc.queue = SmallConfig();
  return pc;
}

TEST(PartitionedSlabQueue, SingleModeRoutesEverythingLeft) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(64 * 64);
  for (uint64_t k = 1; k <= 20; ++k) {
    EXPECT_EQ(q.Route(k), Side::kLeft);
    q.Fill(Item(k));
  }
  EXPECT_EQ(q.right().physical_items(), 0u);
  EXPECT_EQ(q.left().physical_items(), 20u);
}

TEST(PartitionedSlabQueue, EnablePartitionSplitsEvenly) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  EXPECT_EQ(q.left().capacity_items(), 50u);
  EXPECT_EQ(q.right().capacity_items(), 50u);
  EXPECT_DOUBLE_EQ(q.ratio(), 0.5);
}

TEST(PartitionedSlabQueue, RoutingFollowsRatio) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetRatio(0.25);
  int left = 0;
  constexpr int kKeys = 20000;
  for (uint64_t k = 0; k < kKeys; ++k) {
    left += q.Route(k) == Side::kLeft ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(left) / kKeys, 0.25, 0.02);
}

TEST(PartitionedSlabQueue, RoutingIsStablePerKey) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetRatio(0.5);
  std::map<uint64_t, Side> first;
  for (uint64_t k = 0; k < 100; ++k) first[k] = q.Route(k);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(q.Route(k), first[k]);
  // Monotone under ratio moves: keys only migrate right->left as ratio grows.
  q.SetRatio(0.8);
  for (uint64_t k = 0; k < 100; ++k) {
    if (first[k] == Side::kLeft) {
      EXPECT_EQ(q.Route(k), Side::kLeft);
    }
  }
}

TEST(PartitionedSlabQueue, LookupFindsItemAfterBoundaryMove) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetRatio(1.0);  // everything left
  q.Fill(Item(42));
  q.SetRatio(0.0);  // everything right now; 42 still physically left
  const GetResult r = q.Get(Item(42));
  EXPECT_TRUE(r.hit);  // cross-partition lookup rescued it
}

TEST(PartitionedSlabQueue, SetPartitionItemsAppliesSizes) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetPartitionItems(20, 80);
  EXPECT_EQ(q.left().capacity_items(), 20u);
  EXPECT_EQ(q.right().capacity_items(), 80u);
}

TEST(PartitionedSlabQueue, HillShadowSplitsByTrafficRatio) {
  // The hill shadow splits by the request ratio so each side's shadow
  // represents the same additional bytes of queue (gradient calibration —
  // see SetPartitionItems).
  PartitionConfig pc = PartCfg();
  pc.queue.hill_shadow_bytes = 100 * 64;  // 100 items worth
  PartitionedSlabQueue q(pc);
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetRatio(0.25);
  q.SetPartitionItems(25, 75);
  EXPECT_NEAR(static_cast<double>(q.left().lru().segment_capacity(4)), 25.0,
              2.0);
  EXPECT_NEAR(static_cast<double>(q.right().lru().segment_capacity(4)), 75.0,
              2.0);
}

TEST(PartitionedSlabQueue, TotalCapacityChangePreservesSplit) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetPartitionItems(20, 80);
  q.SetCapacityBytes(50 * 64);
  EXPECT_NEAR(static_cast<double>(q.left().capacity_items()), 10.0, 1.0);
  EXPECT_EQ(q.left().capacity_items() + q.right().capacity_items(), 50u);
}

TEST(PartitionedSlabQueue, DeleteRemovesFromBothSides) {
  PartitionedSlabQueue q(PartCfg());
  q.SetCapacityBytes(100 * 64);
  q.EnablePartition(true);
  q.SetRatio(1.0);
  q.Fill(Item(7));
  q.SetRatio(0.0);
  q.Delete(7);
  EXPECT_FALSE(q.Get(Item(7)).hit);
}

}  // namespace
}  // namespace cliffhanger
