// Unit tests for the util layer: RNG, hashing, curves, concavity machinery,
// time series, stats and table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/argparse.h"
#include "util/curve.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "util/slab_geometry.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace cliffhanger {
namespace {

TEST(ArgParse, ParseUintStrictness) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  // Rejected: negatives (strtoull would wrap them), signs, whitespace,
  // trailing garbage, empty, overflow.
  EXPECT_FALSE(ParseUint("-1", &v));
  EXPECT_FALSE(ParseUint("+1", &v));
  EXPECT_FALSE(ParseUint(" 1", &v));
  EXPECT_FALSE(ParseUint("113l1", &v));
  EXPECT_FALSE(ParseUint("two", &v));
  EXPECT_FALSE(ParseUint("", &v));
  EXPECT_FALSE(ParseUint(nullptr, &v));
  EXPECT_FALSE(ParseUint("18446744073709551616", &v));
}

TEST(ArgParse, ParsePortRange) {
  uint16_t p = 1;
  EXPECT_TRUE(ParsePort("65535", /*allow_zero=*/false, &p));
  EXPECT_EQ(p, 65535);
  EXPECT_TRUE(ParsePort("0", /*allow_zero=*/true, &p));
  EXPECT_EQ(p, 0);
  EXPECT_FALSE(ParsePort("0", /*allow_zero=*/false, &p));
  EXPECT_FALSE(ParsePort("65536", /*allow_zero=*/true, &p));
  EXPECT_FALSE(ParsePort("-1", /*allow_zero=*/true, &p));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
  EXPECT_EQ(rng.NextBounded(1), 0u);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(Rng, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(Hashing, Mix64IsStableAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(Hashing, KeyToUnitIntervalUniform) {
  double sum = 0.0;
  for (uint64_t i = 0; i < 100000; ++i) {
    const double u = KeyToUnitInterval(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Hashing, Fnv1aStable) {
  EXPECT_EQ(Fnv1a64("hello"), Fnv1a64("hello"));
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("hellp"));
}

TEST(PiecewiseCurve, EvalInterpolatesLinearly) {
  PiecewiseCurve c({10.0, 20.0}, {0.5, 1.0});
  EXPECT_DOUBLE_EQ(c.Eval(15.0), 0.75);
  EXPECT_DOUBLE_EQ(c.Eval(20.0), 1.0);
  EXPECT_DOUBLE_EQ(c.Eval(100.0), 1.0);   // clamp right
  EXPECT_DOUBLE_EQ(c.Eval(5.0), 0.25);    // interpolate from the origin
  EXPECT_DOUBLE_EQ(c.Eval(0.0), 0.0);
}

TEST(PiecewiseCurve, GradientMatchesSlopes) {
  PiecewiseCurve c({10.0, 20.0}, {0.5, 1.0});
  EXPECT_NEAR(c.Gradient(5.0), 0.05, 1e-12);
  EXPECT_NEAR(c.Gradient(15.0), 0.05, 1e-12);
  EXPECT_DOUBLE_EQ(c.Gradient(25.0), 0.0);
}

TEST(PiecewiseCurve, IsConcaveDetectsCliff) {
  // Concave: decreasing slopes.
  PiecewiseCurve concave({10.0, 20.0, 30.0}, {0.5, 0.8, 0.9});
  EXPECT_TRUE(concave.IsConcave());
  // Cliff: flat then jump.
  PiecewiseCurve cliff({10.0, 20.0, 21.0}, {0.01, 0.02, 0.9});
  EXPECT_FALSE(cliff.IsConcave());
}

TEST(ConcaveHull, CliffBecomesChord) {
  // Step-like curve: low until x=100, then jumps.
  PiecewiseCurve cliff({50.0, 100.0, 101.0, 200.0}, {0.0, 0.0, 0.9, 0.95});
  const PiecewiseCurve hull = UpperConcaveHull(cliff);
  EXPECT_TRUE(hull.IsConcave(1e-6));
  // Hull dominates the curve everywhere.
  for (double x = 0; x <= 200; x += 5) {
    EXPECT_GE(hull.Eval(x) + 1e-9, cliff.Eval(x)) << "x=" << x;
  }
  // Halfway to the cliff top the hull is roughly half the cliff value.
  EXPECT_NEAR(hull.Eval(50.5), 0.45, 0.03);
}

TEST(ConcaveHull, ConcaveCurveUnchanged) {
  PiecewiseCurve concave({10.0, 20.0, 30.0}, {0.5, 0.8, 0.9});
  const PiecewiseCurve hull = UpperConcaveHull(concave);
  for (double x = 0; x <= 30; x += 1) {
    EXPECT_NEAR(hull.Eval(x), concave.Eval(x), 1e-9) << "x=" << x;
  }
}

TEST(ConcaveRegression, OutputIsConcave) {
  std::vector<double> xs, ys;
  // A noisy cliff.
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(i < 60 ? 0.05 : 0.9);
  }
  const std::vector<double> fit = ConcaveRegression(xs, ys);
  PiecewiseCurve fitted(xs, fit);
  EXPECT_TRUE(fitted.IsConcave(1e-6));
}

TEST(ConcaveRegression, ConcaveInputFixedPoint) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(std::sqrt(static_cast<double>(i)) / 8.0);
  }
  const std::vector<double> fit = ConcaveRegression(xs, ys);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_NEAR(fit[i], ys[i], 1e-9);
  }
}

TEST(ConcaveRegression, MisstatesCliffCurve) {
  // The Dynacache failure mode (§3.5): the concave fit of a cliff is wrong
  // on both sides of the cliff edge.
  std::vector<double> xs, ys;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(i < 90 ? 0.0 : 0.9);
  }
  const std::vector<double> fit = ConcaveRegression(xs, ys);
  // Just below the cliff the fit over-promises...
  EXPECT_GT(fit[85], 0.5);
  // ...which means an allocator trusting it would stop short of the top and
  // actually collect ~0.
}

TEST(TimeSeries, MeanAndLast) {
  TimeSeries s("x");
  s.Push(0, 1.0);
  s.Push(1, 3.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.Last(), 3.0);
}

TEST(TimeSeries, StabilizationTime) {
  TimeSeries s("hr");
  s.Push(0, 0.2);
  s.Push(10, 0.5);
  s.Push(20, 0.95);
  s.Push(30, 0.97);
  s.Push(40, 0.96);
  EXPECT_DOUBLE_EQ(s.StabilizationTime(0.95), 20.0);
  EXPECT_DOUBLE_EQ(s.StabilizationTime(0.99), -1.0);
}

TEST(TimeSeries, CsvStepInterpolation) {
  TimeSeries a("a"), b("b");
  a.Push(0, 1);
  a.Push(2, 2);
  b.Push(1, 5);
  const std::string csv = SeriesToCsv({a, b});
  EXPECT_NE(csv.find("t,a,b"), std::string::npos);
  EXPECT_NE(csv.find("2,2,5"), std::string::npos);
}

TEST(Stats, MeanStdDevPercentile) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(StdDev(xs), 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
}

TEST(Stats, CorrelationSigns) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> up{2, 4, 6, 8};
  std::vector<double> down{8, 6, 4, 2};
  EXPECT_NEAR(Correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(Correlation(xs, down), -1.0, 1e-12);
}

TEST(Stats, RatioCounter) {
  RatioCounter c;
  c.Add(true);
  c.Add(false);
  c.Add(true);
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_NEAR(c.Rate(), 2.0 / 3.0, 1e-12);
}

TEST(Table, FormatsCells) {
  EXPECT_EQ(TablePrinter::Pct(0.123), "12.3%");
  EXPECT_EQ(TablePrinter::Num(1.5, 1), "1.5");
  EXPECT_EQ(TablePrinter::Bytes(2 * kMiB), "2.00MiB");
}

TEST(Table, PrintsAlignedRows) {
  TablePrinter t({"App", "Hit Rate"});
  t.AddRow({"1", "97.6%"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("App"), std::string::npos);
  EXPECT_NE(out.find("97.6%"), std::string::npos);
}

TEST(SlabGeometry, ClassSelection) {
  EXPECT_EQ(ChunkSize(0), 64u);
  EXPECT_EQ(ChunkSize(9), 32768u);
  EXPECT_EQ(SlabClassFor(64), 0);
  EXPECT_EQ(SlabClassFor(65), 1);
  EXPECT_EQ(SlabClassFor(128), 1);
  EXPECT_EQ(SlabClassFor(1), 0);
  EXPECT_LT(SlabClassFor(64ULL << 20), 0);  // too large to cache
}

TEST(SlabGeometry, FootprintUsesChunk) {
  // key 14 + value 12 + overhead 32 = 58 -> class 0, one 64 B chunk.
  EXPECT_EQ(ItemFootprint(14, 12), 64u);
  EXPECT_EQ(ExactFootprint(14, 12), 58u);
}

}  // namespace
}  // namespace cliffhanger
