// Tests for the simulator and the experiment pipeline.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/slab_geometry.h"
#include "workload/memcachier_suite.h"

namespace cliffhanger {
namespace {

Trace TinyTrace(uint32_t app_id, int n) {
  Trace t;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.app_id = app_id;
    r.op = Op::kGet;
    r.key = static_cast<uint64_t>(i % 10);
    r.key_size = 14;
    r.value_size = 12;
    r.time_us = static_cast<uint64_t>(i) * 1000;
    t.Append(r);
  }
  return t;
}

TEST(Simulator, DemandFillTurnsRepeatsIntoHits) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  const SimResult result = Replay(server, TinyTrace(1, 100));
  // 10 distinct keys, 100 GETs: 10 cold misses, 90 hits.
  EXPECT_EQ(result.total.gets, 100u);
  EXPECT_EQ(result.total.hits, 90u);
  EXPECT_EQ(result.total.sets, 10u);  // demand fills
}

TEST(Simulator, NoDemandFillNeverHits) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  SimOptions options;
  options.demand_fill = false;
  const SimResult result = Replay(server, TinyTrace(1, 100), options);
  EXPECT_EQ(result.total.hits, 0u);
}

TEST(Simulator, ExplicitSetsAreReplayed) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  Trace t;
  Request r;
  r.app_id = 1;
  r.key = 42;
  r.key_size = 14;
  r.value_size = 12;
  r.op = Op::kSet;
  t.Append(r);
  r.op = Op::kGet;
  t.Append(r);
  r.op = Op::kDelete;
  t.Append(r);
  r.op = Op::kGet;
  t.Append(r);
  SimOptions options;
  options.demand_fill = false;
  const SimResult result = Replay(server, t, options);
  EXPECT_EQ(result.total.gets, 2u);
  EXPECT_EQ(result.total.hits, 1u);  // hit before delete, miss after
}

TEST(Simulator, CapacityTimeSeriesRecorded) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  SimOptions options;
  options.sample_interval = 10;
  options.track_capacity_app = 1;
  const SimResult result = Replay(server, TinyTrace(1, 100), options);
  ASSERT_FALSE(result.series.empty());
  EXPECT_EQ(result.series[0].name(), "slab0");
  EXPECT_GT(result.series[0].size(), 5u);
}

TEST(Simulator, HitRateTimeSeriesRecorded) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  SimOptions options;
  options.sample_interval = 20;
  options.track_hit_rate = {{1u, -1}};
  const SimResult result = Replay(server, TinyTrace(1, 100), options);
  ASSERT_FALSE(result.series.empty());
  const TimeSeries& hr = result.series.back();
  EXPECT_EQ(hr.name(), "hitrate");
  // After warm-up the windowed hit rate is 1.0 (10 keys fit easily).
  EXPECT_DOUBLE_EQ(hr.Last(), 1.0);
}

TEST(Simulator, PerAppResultsSeparated) {
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  server.AddApp(2, 1 << 20);
  Trace t;
  for (int i = 0; i < 50; ++i) {
    Request r;
    r.app_id = static_cast<uint32_t>(1 + i % 2);
    r.op = Op::kGet;
    r.key = static_cast<uint64_t>(i % 4);
    r.key_size = 14;
    r.value_size = 12;
    t.Append(r);
  }
  const SimResult result = Replay(server, t);
  EXPECT_EQ(result.apps.at(1).total.gets, 25u);
  EXPECT_EQ(result.apps.at(2).total.gets, 25u);
}

TEST(Experiment, ProfileCountsGetsPerClass) {
  MemcachierSuite suite(0.1);
  const Trace trace = suite.GenerateAppTrace(4, 20000, 3);
  const ProfileResult profile = ProfileTrace(trace, 4);
  EXPECT_EQ(profile.total_gets, 20000u);
  ASSERT_EQ(profile.gets_per_class.size(), 2u);  // app 4 uses classes 0, 1
  // Class 1 carries ~91% of GETs.
  const double share =
      static_cast<double>(profile.gets_per_class.at(1)) / 20000.0;
  EXPECT_NEAR(share, 0.91, 0.02);
}

TEST(Experiment, ProfileCurvesAreSane) {
  MemcachierSuite suite(0.1);
  const Trace trace = suite.GenerateAppTrace(8, 30000, 5);
  for (const bool exact : {false, true}) {
    const ProfileResult profile = ProfileTrace(trace, 8, exact);
    ASSERT_EQ(profile.curves.size(), 1u);
    const PiecewiseCurve& curve = profile.curves.begin()->second;
    EXPECT_GT(curve.max_y(), 0.3);
    EXPECT_LE(curve.max_y(), 1.0);
    // x is in bytes: the curve should span at least a page.
    EXPECT_GT(curve.max_x(), static_cast<double>(kPageSize));
  }
}

TEST(Experiment, SolverAllocationRespectsReservation) {
  MemcachierSuite suite(0.1);
  const SuiteApp& app = suite.app(13);
  const Trace trace = suite.GenerateAppTrace(13, 30000, 7);
  const ProfileResult profile = ProfileTrace(trace, 13);
  const auto allocation = SolveAppAllocation(profile, app.reservation);
  uint64_t total = 0;
  for (const auto& [slab_class, bytes] : allocation) total += bytes;
  EXPECT_LE(total, app.reservation);
  EXPECT_GT(total, app.reservation / 2);  // most memory gets used
}

TEST(Experiment, RunAppMatchesManualReplay) {
  MemcachierSuite suite(0.1);
  const SuiteApp& app = suite.app(20);
  const Trace trace = suite.GenerateAppTrace(20, 20000, 9);
  const SimResult via_helper = RunApp(app, trace, DefaultServerConfig());
  ServerConfig config = DefaultServerConfig();
  CacheServer server(config);
  server.AddApp(20, app.reservation);
  const SimResult manual = Replay(server, trace);
  EXPECT_EQ(via_helper.total.hits, manual.total.hits);
}

TEST(Experiment, CapacityFractionScalesReservation) {
  MemcachierSuite suite(0.1);
  const SuiteApp& app = suite.app(20);
  const Trace trace = suite.GenerateAppTrace(20, 20000, 9);
  const SimResult full = RunApp(app, trace, DefaultServerConfig(), 1.0);
  const SimResult tiny = RunApp(app, trace, DefaultServerConfig(), 0.05);
  EXPECT_GT(full.hit_rate(), tiny.hit_rate());
}

TEST(Experiment, FindCapacityFractionIsMonotoneConsistent) {
  MemcachierSuite suite(0.1);
  const SuiteApp& app = suite.app(20);
  const Trace trace = suite.GenerateAppTrace(20, 20000, 11);
  const double full_rate =
      RunApp(app, trace, DefaultServerConfig()).app_hit_rate(20);
  const double fraction = FindCapacityFractionForHitRate(
      app, trace, DefaultServerConfig(), full_rate * 0.5,
      {0.1, 0.25, 0.5, 0.75});
  // Reaching half the full hit rate must not need the full reservation.
  EXPECT_LT(fraction, 1.0);
}

}  // namespace
}  // namespace cliffhanger
