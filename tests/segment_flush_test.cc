// Unit tests for the shared partial-write bookkeeping (net/segment_flush.h)
// that all three socket backends run their burst flushes through. No
// sockets: write_some is a fake with a programmable byte budget, so the
// tests can park the cursor mid-segment (even mid-payload) and prove the
// spill + resume reproduce the byte stream exactly.
#include "net/segment_flush.h"

#include <cerrno>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "net/socket_server.h"

namespace cliffhanger {
namespace net {
namespace {

// write_some fake: consumes bytes into `sink` until the cumulative budget
// runs out, then reports the socket full (-EAGAIN) — i.e. the socket
// buffer filled up and stays full.
struct ThrottledSink {
  std::string sink;
  ssize_t budget = 1 << 20;  // total bytes the "socket" will ever take
  int fail_errno = 0;  // when non-zero, every call fails with -fail_errno
  int calls = 0;

  ssize_t operator()(const iovec* iov, int iov_count) {
    ++calls;
    if (fail_errno != 0) return -fail_errno;
    ssize_t& left = budget;
    ssize_t moved = 0;
    for (int i = 0; i < iov_count && left > 0; ++i) {
      const ssize_t take =
          std::min(left, static_cast<ssize_t>(iov[i].iov_len));
      sink.append(static_cast<const char*>(iov[i].iov_base),
                  static_cast<size_t>(take));
      moved += take;
      left -= take;
    }
    return moved > 0 ? moved : -EAGAIN;
  }
};

ResponseSegment MakeSegment(std::string text, const std::string* payload,
                            std::string trailer) {
  ResponseSegment seg;
  seg.text = std::move(text);
  if (payload != nullptr) {
    seg.payload = payload->data();
    seg.payload_size = payload->size();
  }
  seg.trailer = std::move(trailer);
  return seg;
}

std::string Concatenated(const std::vector<ResponseSegment>& segments) {
  std::string all;
  for (const auto& seg : segments) {
    all += seg.text;
    if (seg.payload != nullptr) all.append(seg.payload, seg.payload_size);
    all += seg.trailer;
  }
  return all;
}

TEST(SegmentFlushTest, FlushesEverythingWhenSocketTakesIt) {
  const std::string payload = "0123456789";
  std::vector<ResponseSegment> segments = {
      MakeSegment("VALUE k 0 10\r\n", &payload, "\r\nEND\r\n"),
      MakeSegment("STORED\r\n", nullptr, ""),
  };
  std::string wr;
  size_t wr_offset = 0;
  ThrottledSink sink;
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_EQ(sink.sink, Concatenated(segments));
  EXPECT_TRUE(wr.empty());
  EXPECT_EQ(wr_offset, 0u);
}

TEST(SegmentFlushTest, QueuedWriteBufferTailGoesOutFirst) {
  const std::string payload = "pp";
  std::vector<ResponseSegment> segments = {
      MakeSegment("A", &payload, "B")};
  // wr holds an already-sent prefix (before wr_offset) plus a queued tail;
  // only the tail may reach the wire, and it must precede the segments.
  std::string wr = "sentTAIL";
  size_t wr_offset = 4;
  ThrottledSink sink;
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_EQ(sink.sink, "TAILAppB");
  EXPECT_TRUE(wr.empty());
  EXPECT_EQ(wr_offset, 0u);
}

TEST(SegmentFlushTest, ImmediateEagainSpillsEverythingIncludingPayloads) {
  const std::string payload = "payload-bytes";
  std::vector<ResponseSegment> segments = {
      MakeSegment("T1", &payload, "E1"), MakeSegment("T2", nullptr, "E2")};
  std::string wr;
  size_t wr_offset = 0;
  ThrottledSink sink;
  sink.budget = 0;  // socket takes nothing
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_TRUE(sink.sink.empty());
  // The spill owns copies of the payload bytes — the arena borrow is over.
  EXPECT_EQ(wr, Concatenated(segments));
  EXPECT_EQ(wr_offset, 0u);
}

TEST(SegmentFlushTest, MidPayloadStallSpillsExactRemainderAndResumes) {
  const std::string payload = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::vector<ResponseSegment> segments = {
      MakeSegment("VALUE k 0 26\r\n", &payload, "\r\nEND\r\n")};
  const std::string full = Concatenated(segments);
  // Stall the socket at every split point: after 1 byte, 2 bytes, ...,
  // including points inside the payload span and inside the trailer.
  for (size_t cut = 1; cut < full.size(); ++cut) {
    std::string wr;
    size_t wr_offset = 0;
    ThrottledSink first;
    first.budget = static_cast<ssize_t>(cut);
    ASSERT_TRUE(FlushSegmentsVia(first, &wr, &wr_offset, segments.data(),
                                 segments.size()))
        << "cut=" << cut;
    EXPECT_EQ(first.sink, full.substr(0, cut)) << "cut=" << cut;
    ASSERT_EQ(wr.substr(wr_offset), full.substr(cut)) << "cut=" << cut;
    // Resume exactly as the backends do: later flush, no new segments, the
    // spilled tail drains first.
    ThrottledSink second;
    ASSERT_TRUE(FlushSegmentsVia(second, &wr, &wr_offset, nullptr, 0))
        << "cut=" << cut;
    EXPECT_EQ(first.sink + second.sink, full) << "cut=" << cut;
    EXPECT_TRUE(wr.empty());
  }
}

TEST(SegmentFlushTest, DribbleOfOneByteWritesStillCompletes) {
  const std::string payload = "0123456789";
  std::vector<ResponseSegment> segments = {
      MakeSegment("head", &payload, "tail"),
      MakeSegment("", &payload, ""),
      MakeSegment("x", nullptr, "y"),
  };
  std::string wr = "queued";
  size_t wr_offset = 0;
  // One byte per writev call: the cursor walks every piece boundary.
  struct OneByteSink {
    std::string sink;
    ssize_t operator()(const iovec* iov, int iov_count) {
      (void)iov_count;
      if (iov[0].iov_len == 0) return -EAGAIN;
      sink.push_back(*static_cast<const char*>(iov[0].iov_base));
      return 1;
    }
  } sink;
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_EQ(sink.sink, "queued" + Concatenated(segments));
  EXPECT_TRUE(wr.empty());
}

TEST(SegmentFlushTest, MoreSegmentsThanIovSlotsFlushesInMultipleCalls) {
  // 50 segments x 3 pieces = 150 pieces > kMaxFlushIov, so the gather loop
  // must wrap around and keep going from the cursor.
  const std::string payload = "PAY";
  std::vector<ResponseSegment> segments;
  for (int i = 0; i < 50; ++i) {
    segments.push_back(
        MakeSegment("t" + std::to_string(i), &payload, "|"));
  }
  std::string wr;
  size_t wr_offset = 0;
  ThrottledSink sink;
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_EQ(sink.sink, Concatenated(segments));
  EXPECT_TRUE(wr.empty());
  EXPECT_GE(sink.calls, 3);  // needed more than one gather
}

TEST(SegmentFlushTest, DeadSocketReportsFailure) {
  const std::string payload = "zz";
  std::vector<ResponseSegment> segments = {
      MakeSegment("a", &payload, "b")};
  std::string wr;
  size_t wr_offset = 0;
  ThrottledSink sink;
  sink.fail_errno = EPIPE;
  EXPECT_FALSE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                                segments.size()));
}

TEST(SegmentFlushTest, EmptyPiecesAndEmptyInputAreNoops) {
  std::string wr;
  size_t wr_offset = 0;
  ThrottledSink sink;
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, nullptr, 0));
  EXPECT_TRUE(sink.sink.empty());
  EXPECT_EQ(sink.calls, 0);

  std::vector<ResponseSegment> segments = {
      MakeSegment("", nullptr, ""), MakeSegment("only", nullptr, "")};
  ASSERT_TRUE(FlushSegmentsVia(sink, &wr, &wr_offset, segments.data(),
                               segments.size()));
  EXPECT_EQ(sink.sink, "only");
}

}  // namespace
}  // namespace net
}  // namespace cliffhanger
