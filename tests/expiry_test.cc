// Lazy-expiration and touch semantics through the library layers: every
// queue implementation (SlabClassQueue / PartitionedSlabQueue / ArcQueue /
// LfuQueue / GlobalLogQueue), the AppCache/CacheServer Mutate surface, the
// ShardedCacheServer, and a TTL-bearing simulator replay. All clocks are
// per-operation (ItemMeta::now_s) — nothing here sleeps, and every outcome
// is a deterministic function of the op stream. The exptime normalization
// grammar (relative / absolute / negative) is covered too.
#include <gtest/gtest.h>

#include <cstdint>

#include "cache/arc_queue.h"
#include "cache/global_log_queue.h"
#include "cache/lfu_queue.h"
#include "cache/slab_class_queue.h"
#include "core/sharded_server.h"
#include "net/cache_adapter.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

ItemMeta At(uint64_t key, uint32_t now_s, uint32_t expiry_s = 0) {
  ItemMeta m;
  m.key = key;
  m.key_size = 14;
  m.value_size = 12;
  m.expiry_s = expiry_s;
  m.now_s = now_s;
  return m;
}

SlabQueueConfig SmallConfig() {
  SlabQueueConfig config;
  config.chunk_size = 64;
  config.tail_items = 4;
  config.cliff_shadow_items = 4;
  config.hill_shadow_bytes = 8 * 64;
  return config;
}

// --- SlabClassQueue -------------------------------------------------------

TEST(SlabQueueExpiry, ExpiredHitIsAFullMissAndErases) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(16);
  q.Fill(At(1, 100, /*expiry=*/110));
  EXPECT_TRUE(q.Get(At(1, 109)).hit);  // second 109: alive
  const GetResult r = q.Get(At(1, 110));
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kMiss);  // no shadow credit for a corpse
  EXPECT_EQ(q.physical_items(), 0u);      // erased, not demoted
  EXPECT_TRUE(q.lru().CheckInvariants());
  // Re-fill resurrects with a fresh TTL.
  q.Fill(At(1, 110, 200));
  EXPECT_TRUE(q.Get(At(1, 150)).hit);
}

TEST(SlabQueueExpiry, ZeroExpiryNeverExpiresAndZeroNowDisablesChecking) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(16);
  q.Fill(At(1, 100, 0));
  EXPECT_TRUE(q.Get(At(1, UINT32_MAX)).hit);
  q.Fill(At(2, 100, 110));
  EXPECT_TRUE(q.Get(At(2, 0)).hit);  // legacy callers: no expiry evaluation
}

TEST(SlabQueueExpiry, ExpiredShadowEntryIsErasedWithoutCredit) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(8);
  q.Fill(At(1, 100, 110));
  // Push key 1 down into shadow territory.
  for (uint64_t k = 2; k <= 13; ++k) q.Fill(At(k, 100));
  EXPECT_EQ(q.Get(At(1, 105)).region, HitRegion::kHillShadow);
  EXPECT_EQ(q.Get(At(1, 110)).region, HitRegion::kMiss);  // expired shadow
  EXPECT_EQ(q.lru().Find(1), -1);
  EXPECT_TRUE(q.lru().CheckInvariants());
}

TEST(SlabQueueTouch, TouchUpdatesExpiryAndPromotes) {
  SlabClassQueue q(SmallConfig());
  q.SetCapacityItems(8);
  q.Fill(At(1, 100, 110));
  for (uint64_t k = 2; k <= 8; ++k) q.Fill(At(k, 100));
  // Key 1 is the LRU (in the tail); touch extends its life and promotes.
  EXPECT_TRUE(q.Touch(At(1, 105, /*expiry=*/200)));
  EXPECT_TRUE(q.Get(At(1, 150)).hit);  // would have died at 110
  // Fill two more: key 1 must not be the next eviction victim anymore.
  q.Fill(At(9, 150));
  EXPECT_TRUE(q.Get(At(1, 150)).hit);

  // Touching an expired item erases it and reports absent.
  q.Fill(At(20, 150, 160));
  EXPECT_FALSE(q.Touch(At(20, 160, 500)));
  EXPECT_FALSE(q.Get(At(20, 160)).hit);

  // A shadow-only entry is not touchable (memcached: NOT_FOUND).
  SlabClassQueue shadow_q(SmallConfig());
  shadow_q.SetCapacityItems(4);
  for (uint64_t k = 1; k <= 10; ++k) shadow_q.Fill(At(k, 100));
  ASSERT_GT(shadow_q.lru().Find(2), 2);  // in a shadow segment
  EXPECT_FALSE(shadow_q.Touch(At(2, 100, 500)));
  EXPECT_TRUE(shadow_q.lru().CheckInvariants());
}

TEST(PartitionedQueueExpiry, BothSidesHonorExpiry) {
  PartitionConfig pc;
  pc.queue = SmallConfig();
  pc.partition_enabled = true;
  PartitionedSlabQueue q(pc);
  q.SetCapacityBytes(32 * 64);
  for (uint64_t k = 1; k <= 20; ++k) {
    q.Fill(At(k, 100, k % 2 == 0 ? 110 : 0));
  }
  for (uint64_t k = 1; k <= 20; ++k) {
    const bool was_resident = q.Get(At(k, 105)).hit;
    if (!was_resident) continue;
    // Move the boundary so some lookups cross to the unrouted side; an
    // expired item must read as a miss regardless of which side holds it.
    q.SetRatio(k % 3 == 0 ? 0.1 : 0.9);
    EXPECT_EQ(q.Get(At(k, 110)).hit, k % 2 != 0) << "key " << k;
  }
  // Touch follows the same both-sides rule.
  q.SetRatio(0.5);
  q.Fill(At(50, 100, 0));
  q.SetRatio(q.Route(50) == Side::kLeft ? 0.0 : 1.0);  // force cross-side
  EXPECT_TRUE(q.Touch(At(50, 100, 300)));
  EXPECT_FALSE(q.Get(At(50, 300)).hit);  // the touch set a real TTL
}

// --- ARC / LFU / GlobalLog ------------------------------------------------

TEST(ArcQueueExpiry, ExpiredResidentIsAFullMissNotAGhostHit) {
  ArcQueue q(64);
  q.SetCapacityBytes(16 * 64);
  q.Fill(At(1, 100, 110));
  EXPECT_TRUE(q.Get(At(1, 105)).hit);
  const GetResult r = q.Get(At(1, 110));
  EXPECT_FALSE(r.hit);
  EXPECT_EQ(r.region, HitRegion::kMiss);  // not kHillShadow: never evicted
  // The miss re-admitted the key (ARC admits in Get), expiry from the op.
  EXPECT_TRUE(q.Get(At(1, 111)).hit);
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(ArcQueueExpiry, TouchPromotesAndExpiredTouchErases) {
  ArcQueue q(64);
  q.SetCapacityBytes(16 * 64);
  q.Fill(At(1, 100, 110));
  EXPECT_TRUE(q.Touch(At(1, 105, 300)));
  EXPECT_TRUE(q.Get(At(1, 200)).hit);  // extended past 110
  EXPECT_FALSE(q.Touch(At(1, 300, 400)));  // expired at 300: erased
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(LfuQueueExpiry, FrequencyHistoryDiesWithTheItem) {
  LfuQueue q(64);
  q.SetCapacityBytes(8 * 64);
  q.Fill(At(1, 100, 110));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Get(At(1, 105)).hit);
  EXPECT_EQ(q.FrequencyOf(1), 6u);
  EXPECT_FALSE(q.Get(At(1, 110)).hit);
  EXPECT_EQ(q.FrequencyOf(1), 0u);  // gone
  q.Fill(At(1, 110, 0));
  EXPECT_EQ(q.FrequencyOf(1), 1u);  // restarts cold
  EXPECT_TRUE(q.Touch(At(1, 120, 200)));
  EXPECT_EQ(q.FrequencyOf(1), 2u);  // touch counts as an access
  EXPECT_TRUE(q.CheckInvariants());
}

TEST(GlobalLogExpiry, LazyExpiryAndTouch) {
  GlobalLogQueue q(1 << 16);
  q.Fill(At(1, 100, 110));
  EXPECT_TRUE(q.Get(At(1, 109)).hit);
  EXPECT_FALSE(q.Get(At(1, 110)).hit);
  q.Fill(At(2, 100, 110));
  EXPECT_TRUE(q.Touch(At(2, 105, 0)));  // make permanent
  EXPECT_TRUE(q.Get(At(2, UINT32_MAX)).hit);
}

// --- Core: Mutate surface + statistics discipline -------------------------

TEST(CoreExpiry, ExpiredGetCountsAsMissAndTouchCountsNothing) {
  ServerConfig config;
  CacheServer server(config);
  AppCache& app = server.AddApp(1, 1 << 20);
  ASSERT_TRUE(server.Set(1, At(1, 100, 110)));
  EXPECT_TRUE(server.Get(1, At(1, 105)).hit);

  const ClassStats before = app.TotalStats();
  // Touch is statistics-silent at the core (memcached counts touches in
  // its own counters, which live in the adapter).
  EXPECT_TRUE(server.Touch(1, At(1, 105, 300)));
  ClassStats after = app.TotalStats();
  EXPECT_EQ(after.gets, before.gets);
  EXPECT_EQ(after.sets, before.sets);
  EXPECT_EQ(after.hits, before.hits);

  // The touched expiry (300) governs: expired GET = one get, zero hits.
  EXPECT_FALSE(server.Get(1, At(1, 300)).hit);
  after = app.TotalStats();
  EXPECT_EQ(after.gets, before.gets + 1);
  EXPECT_EQ(after.hits, before.hits);
}

TEST(CoreExpiry, MutateOpsMapToTheVerbs) {
  ServerConfig config;
  CacheServer server(config);
  server.AddApp(1, 1 << 20);

  EXPECT_TRUE(server.Mutate(1, MutateOp::kFill, At(7, 100, 0)).cacheable);
  EXPECT_TRUE(server.Mutate(1, MutateOp::kTouch, At(7, 100, 150)).hit);
  EXPECT_FALSE(server.Mutate(1, MutateOp::kTouch, At(8, 100, 150)).hit);
  server.Mutate(1, MutateOp::kErase, At(7, 100));
  EXPECT_FALSE(server.Get(1, At(7, 100)).hit);
}

TEST(CoreExpiry, TouchNeverMaterializesAClass) {
  ServerConfig config;
  CacheServer server(config);
  AppCache& app = server.AddApp(1, 1 << 20);
  EXPECT_FALSE(server.Touch(1, At(42, 100, 500)));
  EXPECT_TRUE(app.ClassInfos().empty());
}

TEST(ShardedExpiry, TouchAndMutateRouteThroughShards) {
  ShardedServerConfig config;
  config.server = ServerConfig{};
  config.num_shards = 4;
  ShardedCacheServer server(config);
  server.AddApp(1, 4 << 20);
  for (uint64_t k = 0; k < 64; ++k) {
    ASSERT_TRUE(server.Set(1, At(k, 100, 110)));
  }
  for (uint64_t k = 0; k < 64; ++k) {
    // Extend the even keys; let the odd ones die at 110.
    if (k % 2 == 0) {
      EXPECT_TRUE(server.Touch(1, At(k, 105, 400)));
    }
  }
  uint64_t alive = 0;
  for (uint64_t k = 0; k < 64; ++k) {
    alive += server.Get(1, At(k, 110)).hit ? 1 : 0;
  }
  EXPECT_EQ(alive, 32u);
  // Touch left the mirrored set/get counters consistent with MergedStats.
  const ClassStats merged = server.MergedStats();
  const ClassStats total = server.TotalStats();
  EXPECT_EQ(merged.gets, total.gets);
  EXPECT_EQ(merged.sets, total.sets);
  EXPECT_EQ(merged.hits, total.hits);
  EXPECT_EQ(merged.gets, 64u);
  EXPECT_EQ(merged.hits, 32u);
}

// --- Simulator: the trace's virtual time is the expiry clock --------------

TEST(SimulatorExpiry, TtlTraceReplaysDeterministically) {
  // Two passes over the same TTL-bearing trace must agree exactly, and
  // TTLs must actually bite: every key is stored with a 5-second TTL and
  // re-read after 10 virtual seconds.
  Trace trace;
  for (uint64_t k = 0; k < 50; ++k) {
    Request set;
    set.key = k;
    set.op = Op::kSet;
    set.value_size = 100;
    set.time_us = k * 1000;
    set.expiry_s = 5;  // absolute second 5
    trace.Append(set);
  }
  for (uint64_t k = 0; k < 50; ++k) {
    Request get;
    get.key = k;
    get.op = Op::kGet;
    get.value_size = 100;
    get.time_us = 10 * 1000000 + k * 1000;  // virtual second 10
    trace.Append(get);
  }
  for (int pass = 0; pass < 2; ++pass) {
    CacheServer server(DefaultServerConfig());
    server.AddApp(0, 1 << 20);
    SimOptions options;
    options.demand_fill = false;
    const SimResult result = Replay(server, trace, options);
    EXPECT_EQ(result.total.gets, 50u);
    EXPECT_EQ(result.total.hits, 0u) << "TTL did not bite";
    EXPECT_EQ(result.total.sets, 50u);
  }
}

TEST(SimulatorExpiry, TouchOpsExtendLifetimes) {
  Trace trace;
  Request set;
  set.key = 1;
  set.op = Op::kSet;
  set.value_size = 100;
  set.time_us = 0;
  set.expiry_s = 5;
  trace.Append(set);
  Request touch = set;
  touch.op = Op::kTouch;
  touch.time_us = 2 * 1000000;
  touch.expiry_s = 100;  // extend to second 100
  trace.Append(touch);
  Request get = set;
  get.op = Op::kGet;
  get.time_us = 50 * 1000000;
  get.expiry_s = 0;
  trace.Append(get);

  CacheServer server(DefaultServerConfig());
  server.AddApp(0, 1 << 20);
  SimOptions options;
  options.demand_fill = false;
  const SimResult result = Replay(server, trace, options);
  EXPECT_EQ(result.total.gets, 1u);
  EXPECT_EQ(result.total.hits, 1u);  // alive only because of the touch
}

// --- exptime normalization (shared by the adapter and its tests) ----------

TEST(AbsoluteExpiryTest, FollowsMemcachedRules) {
  using net::AbsoluteExpiry;
  EXPECT_EQ(AbsoluteExpiry(0, 1000), 0u);                  // never
  EXPECT_EQ(AbsoluteExpiry(10, 1000), 1010u);              // relative
  EXPECT_EQ(AbsoluteExpiry(net::kRelativeExptimeCutoff, 1000),
            1000u + static_cast<uint32_t>(net::kRelativeExptimeCutoff));
  EXPECT_EQ(AbsoluteExpiry(net::kRelativeExptimeCutoff + 1, 1000),
            static_cast<uint32_t>(net::kRelativeExptimeCutoff) + 1);  // abs
  EXPECT_EQ(AbsoluteExpiry(-1, 1000), 1000u);              // already dead
  EXPECT_TRUE(ExpiredAt(AbsoluteExpiry(-1, 1000), 1000));
  EXPECT_EQ(AbsoluteExpiry(-1, 0), 1u);                    // degenerate now
  // Clamped below the Touch keep-expiry sentinel, never onto it.
  EXPECT_EQ(AbsoluteExpiry(int64_t{UINT32_MAX} + 5, 1000), kKeepExpiry - 1);
  EXPECT_EQ(AbsoluteExpiry(10, UINT32_MAX - 3), kKeepExpiry - 1);
}

TEST(TouchKeepExpiry, SentinelPreservesTheStoredTtlInEveryQueue) {
  // The incr/decr replay path: a touch with kKeepExpiry bumps recency but
  // must not clear (or change) the stored TTL.
  SlabClassQueue slab(SmallConfig());
  slab.SetCapacityItems(16);
  slab.Fill(At(1, 100, 110));
  EXPECT_TRUE(slab.Touch(At(1, 105, kKeepExpiry)));
  EXPECT_FALSE(slab.Get(At(1, 110)).hit);  // still dies at 110

  ArcQueue arc(64);
  arc.SetCapacityBytes(16 * 64);
  arc.Fill(At(1, 100, 110));
  EXPECT_TRUE(arc.Touch(At(1, 105, kKeepExpiry)));
  EXPECT_FALSE(arc.Get(At(1, 110)).hit);

  LfuQueue lfu(64);
  lfu.SetCapacityBytes(8 * 64);
  lfu.Fill(At(1, 100, 110));
  EXPECT_TRUE(lfu.Touch(At(1, 105, kKeepExpiry)));
  EXPECT_FALSE(lfu.Get(At(1, 110)).hit);

  GlobalLogQueue log(1 << 16);
  log.Fill(At(1, 100, 110));
  EXPECT_TRUE(log.Touch(At(1, 105, kKeepExpiry)));
  EXPECT_FALSE(log.Get(At(1, 110)).hit);
}

TEST(SimulatorExpiry, ArithmeticOpsDoNotClearTheTtl) {
  // SET with a 5-second TTL, INC at second 2 (row expiry 0), GET at 200:
  // the INC must not resurrect the item past its stored expiry.
  Trace trace;
  Request set;
  set.key = 1;
  set.op = Op::kSet;
  set.value_size = 100;
  set.time_us = 0;
  set.expiry_s = 5;
  trace.Append(set);
  Request inc = set;
  inc.op = Op::kIncr;
  inc.time_us = 2 * 1000000;
  inc.expiry_s = 0;
  trace.Append(inc);
  Request get = set;
  get.op = Op::kGet;
  get.time_us = 200 * 1000000;
  get.expiry_s = 0;
  trace.Append(get);

  CacheServer server(DefaultServerConfig());
  server.AddApp(0, 1 << 20);
  SimOptions options;
  options.demand_fill = false;
  const SimResult result = Replay(server, trace, options);
  EXPECT_EQ(result.total.gets, 1u);
  EXPECT_EQ(result.total.hits, 0u) << "incr cleared the stored TTL";
}

}  // namespace
}  // namespace cliffhanger
