// Edge-case coverage for Trace::LoadCsv / SaveCsv (src/workload/trace.cc):
// empty files, header-only files, trailing newlines, CRLF line endings,
// malformed rows mid-file, unknown op tokens, oversized lines — plus the
// happy-path round trip at size. The loader's contract: *ok=true iff every
// non-blank data line parsed; on failure it returns the rows parsed so far.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "workload/trace.h"

namespace cliffhanger {
namespace {

std::string TestPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(content.data(), 1, content.size(), f),
            content.size());
  ASSERT_EQ(std::fclose(f), 0);
}

constexpr char kHeader[] = "app_id,op,key,key_size,value_size,time_us\n";

TEST(TraceCsvTest, MissingFileFails) {
  bool ok = true;
  const Trace trace = Trace::LoadCsv(TestPath("does_not_exist.csv"), &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(trace.empty());
}

TEST(TraceCsvTest, EmptyFileLoadsAsEmptyTrace) {
  const std::string path = TestPath("empty.csv");
  WriteFile(path, "");
  bool ok = false;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(trace.empty());
}

TEST(TraceCsvTest, HeaderOnlyLoadsAsEmptyTrace) {
  const std::string path = TestPath("header_only.csv");
  WriteFile(path, kHeader);
  bool ok = false;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_TRUE(ok);
  EXPECT_TRUE(trace.empty());
}

TEST(TraceCsvTest, TrailingNewlinesAreTolerated) {
  const std::string path = TestPath("trailing_newline.csv");
  WriteFile(path, std::string(kHeader) + "1,GET,42,16,100,7\n\n\n");
  bool ok = false;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].app_id, 1u);
  EXPECT_EQ(trace[0].op, Op::kGet);
  EXPECT_EQ(trace[0].key, 42u);
  EXPECT_EQ(trace[0].key_size, 16u);
  EXPECT_EQ(trace[0].value_size, 100u);
  EXPECT_EQ(trace[0].time_us, 7u);
}

TEST(TraceCsvTest, LeadingBlankLinesDoNotSwallowTheHeader) {
  const std::string path = TestPath("leading_blank.csv");
  WriteFile(path, "\n\r\n" + std::string(kHeader) + "1,GET,5,16,64,0\n");
  bool ok = false;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].key, 5u);
}

TEST(TraceCsvTest, CrlfLineEndingsAreTolerated) {
  const std::string path = TestPath("crlf.csv");
  WriteFile(path,
            "app_id,op,key,key_size,value_size,time_us\r\n"
            "1,GET,1,16,64,0\r\n"
            "2,SET,2,20,400,5\r\n"
            "1,DEL,3,16,0,9\r\n"
            "\r\n");
  bool ok = false;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_TRUE(ok);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[1].op, Op::kSet);
  EXPECT_EQ(trace[1].app_id, 2u);
  EXPECT_EQ(trace[1].value_size, 400u);
  EXPECT_EQ(trace[2].op, Op::kDelete);
}

TEST(TraceCsvTest, MalformedRowFailsButKeepsParsedPrefix) {
  const std::string path = TestPath("malformed.csv");
  WriteFile(path, std::string(kHeader) +
                      "1,GET,1,16,64,0\n"
                      "not,a,valid,row\n"
                      "1,GET,2,16,64,1\n");
  bool ok = true;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_FALSE(ok);
  ASSERT_EQ(trace.size(), 1u);  // rows before the bad one survive
  EXPECT_EQ(trace[0].key, 1u);
}

TEST(TraceCsvTest, UnknownOpTokenFails) {
  const std::string path = TestPath("bad_op.csv");
  WriteFile(path, std::string(kHeader) + "1,XYZ,1,16,64,0\n");
  bool ok = true;
  const Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(trace.empty());
}

TEST(TraceCsvTest, MissingFieldsFail) {
  const std::string path = TestPath("short_row.csv");
  WriteFile(path, std::string(kHeader) + "1,GET,1,16\n");
  bool ok = true;
  Trace trace = Trace::LoadCsv(path, &ok);
  EXPECT_FALSE(ok);
  EXPECT_TRUE(trace.empty());
}

TEST(TraceCsvTest, RoundTripPreservesEveryField) {
  Trace trace;
  for (uint64_t i = 0; i < 500; ++i) {
    Request r;
    r.app_id = static_cast<uint32_t>(i % 7);
    r.op = i % 3 == 0 ? Op::kGet : (i % 3 == 1 ? Op::kSet : Op::kDelete);
    r.key = i * 0x9E3779B97F4A7C15ULL;  // exercise full 64-bit keys
    r.key_size = 10 + static_cast<uint32_t>(i % 200);
    r.value_size = static_cast<uint32_t>(i * 13 % 100000);
    r.time_us = i * 1000;
    trace.Append(r);
  }
  const std::string path = TestPath("roundtrip_full.csv");
  ASSERT_TRUE(trace.SaveCsv(path));
  bool ok = false;
  const Trace loaded = Trace::LoadCsv(path, &ok);
  ASSERT_TRUE(ok);
  ASSERT_EQ(loaded.size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded[i].app_id, trace[i].app_id) << i;
    EXPECT_EQ(loaded[i].op, trace[i].op) << i;
    EXPECT_EQ(loaded[i].key, trace[i].key) << i;
    EXPECT_EQ(loaded[i].key_size, trace[i].key_size) << i;
    EXPECT_EQ(loaded[i].value_size, trace[i].value_size) << i;
    EXPECT_EQ(loaded[i].time_us, trace[i].time_us) << i;
  }
}

}  // namespace
}  // namespace cliffhanger
