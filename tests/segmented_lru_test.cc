// Tests for SegmentedLru: cascade demotion, capacity units, keys-only
// charging and structural invariants.
#include <gtest/gtest.h>

#include "cache/segmented_lru.h"

namespace cliffhanger {
namespace {

using Unit = SegmentedLru::Unit;

SegmentedLru::Entry E(uint64_t key, uint32_t full = 64, uint32_t kb = 16) {
  SegmentedLru::Entry e;
  e.key = key;
  e.full_bytes = full;
  e.key_bytes = kb;
  return e;
}

TEST(SegmentedLru, InsertAndFind) {
  SegmentedLru lru({{10, Unit::kItems, false}});
  lru.Insert(E(1));
  EXPECT_EQ(lru.Find(1), 0);
  EXPECT_EQ(lru.Find(2), -1);
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(SegmentedLru, EvictsLruOrderAtCapacity) {
  SegmentedLru lru({{3, Unit::kItems, false}});
  lru.Insert(E(1));
  lru.Insert(E(2));
  lru.Insert(E(3));
  lru.Insert(E(4));  // evicts 1
  EXPECT_EQ(lru.Find(1), -1);
  EXPECT_EQ(lru.Find(2), 0);
  EXPECT_EQ(lru.total_items(), 3u);
}

TEST(SegmentedLru, MoveToFrontProtectsFromEviction) {
  SegmentedLru lru({{3, Unit::kItems, false}});
  lru.Insert(E(1));
  lru.Insert(E(2));
  lru.Insert(E(3));
  EXPECT_TRUE(lru.MoveToFront(1));
  lru.Insert(E(4));  // now 2 is LRU, not 1
  EXPECT_EQ(lru.Find(1), 0);
  EXPECT_EQ(lru.Find(2), -1);
}

TEST(SegmentedLru, CascadeDemotesThroughSegments) {
  SegmentedLru lru({{2, Unit::kItems, false}, {2, Unit::kItems, true}});
  lru.Insert(E(1));
  lru.Insert(E(2));
  lru.Insert(E(3));  // 1 demoted to shadow segment
  EXPECT_EQ(lru.Find(3), 0);
  EXPECT_EQ(lru.Find(1), 1);
  lru.Insert(E(4));  // 2 to shadow
  lru.Insert(E(5));  // 3 to shadow, 1 falls off the end
  EXPECT_EQ(lru.Find(1), -1);
  EXPECT_EQ(lru.Find(2), 1);
  EXPECT_EQ(lru.Find(3), 1);
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(SegmentedLru, KeysOnlySegmentChargesKeyBytes) {
  SegmentedLru lru({{1, Unit::kItems, false}, {100, Unit::kItems, true}});
  lru.Insert(E(1, /*full=*/128, /*kb=*/20));
  lru.Insert(E(2, /*full=*/128, /*kb=*/20));  // 1 demoted
  EXPECT_EQ(lru.segment_bytes(0), 128u);
  EXPECT_EQ(lru.segment_bytes(1), 20u);
}

TEST(SegmentedLru, ByteUnitCapacity) {
  SegmentedLru lru({{200, Unit::kBytes, false}});
  lru.Insert(E(1, 100));
  lru.Insert(E(2, 100));
  EXPECT_EQ(lru.total_items(), 2u);
  lru.Insert(E(3, 100));  // over 200 bytes -> evict LRU
  EXPECT_EQ(lru.Find(1), -1);
  EXPECT_EQ(lru.segment_bytes(0), 200u);
}

TEST(SegmentedLru, ShrinkCapacityCascades) {
  SegmentedLru lru({{4, Unit::kItems, false}, {4, Unit::kItems, true}});
  for (uint64_t k = 1; k <= 4; ++k) lru.Insert(E(k));
  lru.SetCapacity(0, 2);
  EXPECT_EQ(lru.segment_items(0), 2u);
  EXPECT_EQ(lru.segment_items(1), 2u);
  EXPECT_EQ(lru.Find(1), 1);  // oldest demoted
  EXPECT_EQ(lru.Find(4), 0);  // newest kept
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(SegmentedLru, GrowCapacityKeepsItemsInPlace) {
  SegmentedLru lru({{2, Unit::kItems, false}, {2, Unit::kItems, true}});
  for (uint64_t k = 1; k <= 4; ++k) lru.Insert(E(k));
  lru.SetCapacity(0, 4);
  // Items do not promote spontaneously; they stay until touched.
  EXPECT_EQ(lru.Find(1), 1);
  EXPECT_TRUE(lru.MoveToFront(1, 0));
  EXPECT_EQ(lru.Find(1), 0);
}

TEST(SegmentedLru, EraseRemovesEverywhere) {
  SegmentedLru lru({{1, Unit::kItems, false}, {8, Unit::kItems, true}});
  lru.Insert(E(1));
  lru.Insert(E(2));
  lru.Erase(1);  // from shadow
  lru.Erase(2);  // from physical
  lru.Erase(3);  // absent: no-op
  EXPECT_EQ(lru.total_items(), 0u);
  EXPECT_TRUE(lru.CheckInvariants());
}

TEST(SegmentedLru, InsertIntoMiddleSegment) {
  // Midpoint-insertion support: new entries can land in segment 1.
  SegmentedLru lru({{2, Unit::kItems, false}, {2, Unit::kItems, false}});
  lru.Insert(E(1), 1);
  EXPECT_EQ(lru.Find(1), 1);
  lru.Insert(E(2), 0);
  EXPECT_EQ(lru.Find(2), 0);
}

TEST(SegmentedLru, ZeroCapacitySegmentPassesThrough) {
  SegmentedLru lru({{0, Unit::kItems, false}, {2, Unit::kItems, false}});
  lru.Insert(E(1));
  EXPECT_EQ(lru.Find(1), 1);  // fell straight through segment 0
}

TEST(SegmentedLru, StressInvariantHolds) {
  SegmentedLru lru({{50, Unit::kItems, false},
                    {10, Unit::kItems, false},
                    {30, Unit::kItems, true}});
  for (uint64_t i = 0; i < 2000; ++i) {
    lru.Insert(E(i));
    if (i % 3 == 0) lru.MoveToFront(i / 2);
    if (i % 7 == 0) lru.Erase(i / 3);
    if (i % 501 == 0) lru.SetCapacity(0, 20 + (i % 40));
  }
  EXPECT_TRUE(lru.CheckInvariants());
}

}  // namespace
}  // namespace cliffhanger
