// Differential TTL replay: one TTL-bearing multi-app trace, four execution
// paths — Simulator Replay() over a CacheServer, a hand-rolled CacheServer
// loop with the same op mapping, and ShardedCacheServer at 1 and 4 shards —
// must agree on per-app hit counts exactly. Reservations are ample (no
// evictions), so every miss is compulsory, delete-driven, or expiry-driven;
// any divergence is a TTL-semantics bug in one of the layers, not cache
// pressure. A zero-expiry control run proves the TTLs actually mattered.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/sharded_server.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

constexpr uint32_t kApps[] = {1, 2};
constexpr uint64_t kReservation = 4ULL << 20;  // ample: nothing evicts
constexpr size_t kOps = 40000;
constexpr uint64_t kUniverse = 500;  // keys per app

// Seeded multi-app trace over the full op set, with short TTLs relative to
// the trace's virtual-time span (now_s runs 1..~101 s, TTLs are 1-10 s), so
// a large fraction of GETs land on expired items.
Trace MakeTtlTrace() {
  Rng rng(0x77A9D3);
  Trace trace;
  trace.Reserve(kOps);
  uint64_t time_us = 1000000;
  for (size_t i = 0; i < kOps; ++i) {
    time_us += 2500;
    Request r;
    r.time_us = time_us;
    r.app_id = kApps[rng.NextBounded(2)];
    r.key = (static_cast<uint64_t>(r.app_id) << 32) | rng.NextBounded(kUniverse);
    r.key_size = 16;
    const uint64_t size_pick = rng.NextBounded(3);
    r.value_size = size_pick == 0 ? 24 : (size_pick == 1 ? 64 : 200);
    // 40% immortal, 60% expiring 1-10 s out. GETs carry the same TTL: the
    // simulator's demand fill stores at the request's expiry (the app
    // re-fetches and re-stores with its own TTL policy).
    const uint32_t now_s = static_cast<uint32_t>(r.time_us / 1000000);
    r.expiry_s = rng.NextBounded(10) < 4
                     ? 0
                     : now_s + 1 + static_cast<uint32_t>(rng.NextBounded(10));
    const uint64_t pick = rng.NextBounded(100);
    if (pick < 56) {
      r.op = Op::kGet;
    } else if (pick < 72) {
      r.op = Op::kSet;
    } else if (pick < 75) {
      r.op = Op::kCas;
    } else if (pick < 78) {
      r.op = Op::kAppend;
    } else if (pick < 80) {
      r.op = Op::kPrepend;
    } else if (pick < 85) {
      r.op = Op::kTouch;
    } else if (pick < 88) {
      r.op = Op::kIncr;
    } else if (pick < 90) {
      r.op = Op::kDecr;
    } else {
      r.op = Op::kDelete;
    }
    trace.Append(r);
  }
  return trace;
}

// Same trace with every TTL stripped — the control: identical op stream,
// no expiry-driven misses.
Trace StripExpiry(const Trace& trace) {
  Trace out;
  out.Reserve(trace.size());
  for (Request r : trace) {
    r.expiry_s = 0;
    out.Append(r);
  }
  return out;
}

// Mirrors sim/simulator.cc's op mapping verb for verb (demand fill on a
// cacheable GET miss; store-shaped verbs are fills; touch refreshes expiry;
// incr/decr are size-preserving rewrites that must NOT touch the stored
// TTL, hence kKeepExpiry). Templated so CacheServer and ShardedCacheServer
// replay through literally the same code.
template <typename Server>
void ReplayLikeSimulator(Server& server, const Trace& trace) {
  for (const Request& r : trace) {
    ItemMeta meta;
    meta.key = r.key;
    meta.key_size = r.key_size;
    meta.value_size = r.value_size;
    meta.expiry_s = r.expiry_s;
    meta.now_s = static_cast<uint32_t>(r.time_us / 1000000);
    switch (r.op) {
      case Op::kGet: {
        const Outcome outcome = server.Get(r.app_id, meta);
        if (!outcome.hit && outcome.cacheable) server.Set(r.app_id, meta);
        break;
      }
      case Op::kSet:
      case Op::kCas:
      case Op::kAppend:
      case Op::kPrepend:
        server.Set(r.app_id, meta);
        break;
      case Op::kTouch:
        server.Mutate(r.app_id, MutateOp::kTouch, meta);
        break;
      case Op::kIncr:
      case Op::kDecr: {
        ItemMeta keep = meta;
        keep.expiry_s = kKeepExpiry;
        server.Mutate(r.app_id, MutateOp::kTouch, keep);
        break;
      }
      case Op::kDelete:
        server.Delete(r.app_id, meta);
        break;
    }
  }
}

ClassStats AppStatsOf(CacheServer& server, uint32_t app_id) {
  return server.app(app_id)->TotalStats();
}

ClassStats AppStatsOf(ShardedCacheServer& server, uint32_t app_id) {
  return server.AppStats(app_id);
}

ClassStats RunDirect(const Trace& trace, uint32_t app_id) {
  CacheServer server(DefaultServerConfig());
  for (const uint32_t app : kApps) server.AddApp(app, kReservation);
  ReplayLikeSimulator(server, trace);
  return AppStatsOf(server, app_id);
}

ClassStats RunSharded(const Trace& trace, uint32_t app_id,
                      size_t num_shards) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = num_shards;
  config.rebalance_interval_ops = 10000;
  ShardedCacheServer server(config);
  for (const uint32_t app : kApps) server.AddApp(app, kReservation);
  ReplayLikeSimulator(server, trace);
  return AppStatsOf(server, app_id);
}

// The simulator's Replay() and the hand-rolled loop are two implementations
// of the same mapping — every per-app counter must agree exactly,
// including the shadow signals.
TEST(TtlReplay, SimulatorAndDirectLoopAgreeExactly) {
  const Trace trace = MakeTtlTrace();

  CacheServer via_sim(DefaultServerConfig());
  for (const uint32_t app : kApps) via_sim.AddApp(app, kReservation);
  const SimResult result = Replay(via_sim, trace);

  for (const uint32_t app : kApps) {
    const ClassStats sim = result.apps.at(app).total;
    const ClassStats direct = RunDirect(trace, app);
    EXPECT_EQ(sim.gets, direct.gets) << "app " << app;
    EXPECT_EQ(sim.hits, direct.hits) << "app " << app;
    EXPECT_EQ(sim.sets, direct.sets) << "app " << app;
    EXPECT_EQ(sim.tail_hits, direct.tail_hits) << "app " << app;
    EXPECT_EQ(sim.cliff_shadow_hits, direct.cliff_shadow_hits)
        << "app " << app;
    EXPECT_EQ(sim.hill_shadow_hits, direct.hill_shadow_hits) << "app " << app;
  }
}

// With no evictions, residency is a pure function of the per-key op/TTL
// history — splitting the key space across shards (and rebalancing the
// reservation splits mid-replay) must not move a single hit.
TEST(TtlReplay, ShardingPreservesPerAppTtlHitCounts) {
  const Trace trace = MakeTtlTrace();
  for (const uint32_t app : kApps) {
    const ClassStats direct = RunDirect(trace, app);
    ASSERT_GT(direct.gets, 0u) << "app " << app;
    ASSERT_GT(direct.hits, 0u) << "app " << app;
    ASSERT_LT(direct.hits, direct.gets) << "app " << app;
    for (const size_t shards : {size_t{1}, size_t{4}}) {
      const ClassStats sharded = RunSharded(trace, app, shards);
      EXPECT_EQ(sharded.gets, direct.gets)
          << "app " << app << ", " << shards << " shards";
      EXPECT_EQ(sharded.hits, direct.hits)
          << "app " << app << ", " << shards << " shards";
      EXPECT_EQ(sharded.sets, direct.sets)
          << "app " << app << ", " << shards << " shards";
    }
  }
}

// Control: the identical op stream with TTLs stripped hits strictly more —
// proof the differential above actually exercised expiry-driven misses
// (not just compulsory/delete misses, which exist in both runs).
TEST(TtlReplay, StrippingTtlsStrictlyRaisesHits) {
  const Trace trace = MakeTtlTrace();
  const Trace immortal = StripExpiry(trace);
  for (const uint32_t app : kApps) {
    const ClassStats with_ttl = RunDirect(trace, app);
    const ClassStats without_ttl = RunDirect(immortal, app);
    ASSERT_EQ(with_ttl.gets, without_ttl.gets) << "app " << app;
    EXPECT_GT(without_ttl.hits, with_ttl.hits + 100)
        << "app " << app << ": expiry-driven misses should be plentiful";
  }
}

}  // namespace
}  // namespace cliffhanger
