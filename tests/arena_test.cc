// Arena-layer tests: NodeArena free-list recycling, FlatIndex hash-table
// semantics under churn, and a randomized differential test driving the
// arena-backed SegmentedLru against a simple list+map reference model
// through ~100k mixed Insert/MoveToFront/Erase/SetCapacity ops — the
// refactor's contract is that the eviction/demotion order is bit-identical
// to the former std::list implementation, which the model reproduces.
#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/segmented_lru.h"
#include "util/flat_index.h"
#include "util/node_arena.h"
#include "util/rng.h"

namespace cliffhanger {
namespace {

// --- NodeArena ---

struct TestNode {
  uint64_t payload = 0;
  uint32_t prev = kNullNode;
  uint32_t next = kNullNode;
};

TEST(NodeArena, AllocateGrowsAndFreeRecyclesLifo) {
  NodeArena<TestNode> arena;
  const uint32_t a = arena.Allocate();
  const uint32_t b = arena.Allocate();
  EXPECT_EQ(arena.pool_size(), 2u);
  EXPECT_EQ(arena.live_count(), 2u);
  arena.Free(a);
  arena.Free(b);
  EXPECT_EQ(arena.free_count(), 2u);
  EXPECT_TRUE(arena.CheckFreeList());
  // LIFO recycling: the most recently freed node comes back first, and the
  // pool does not grow.
  EXPECT_EQ(arena.Allocate(), b);
  EXPECT_EQ(arena.Allocate(), a);
  EXPECT_EQ(arena.pool_size(), 2u);
  EXPECT_EQ(arena.free_count(), 0u);
  EXPECT_TRUE(arena.CheckFreeList());
}

TEST(NodeArena, SteadyStateChurnNeverGrowsPool) {
  NodeArena<TestNode> arena;
  std::vector<uint32_t> live;
  for (int i = 0; i < 64; ++i) live.push_back(arena.Allocate());
  const size_t pool = arena.pool_size();
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const size_t victim = rng.NextBounded(static_cast<uint32_t>(live.size()));
    arena.Free(live[victim]);
    live[victim] = arena.Allocate();  // must come from the free-list
  }
  EXPECT_EQ(arena.pool_size(), pool);
  EXPECT_EQ(arena.live_count(), live.size());
  EXPECT_TRUE(arena.CheckFreeList());
}

TEST(NodeArena, ChainPushRemoveInsertAfter) {
  NodeArena<TestNode> arena;
  IntrusiveChain<TestNode> chain;
  const uint32_t a = arena.Allocate();
  const uint32_t b = arena.Allocate();
  const uint32_t c = arena.Allocate();
  chain.PushFront(arena, a);
  chain.PushFront(arena, b);              // b, a
  chain.InsertAfter(arena, b, c);         // b, c, a
  EXPECT_EQ(chain.head, b);
  EXPECT_EQ(arena[b].next, c);
  EXPECT_EQ(arena[c].next, a);
  EXPECT_EQ(chain.tail, a);
  EXPECT_EQ(chain.count, 3u);
  chain.Remove(arena, c);                 // b, a
  EXPECT_EQ(arena[b].next, a);
  EXPECT_EQ(arena[a].prev, b);
  chain.Remove(arena, b);                 // a
  EXPECT_EQ(chain.head, a);
  EXPECT_EQ(chain.tail, a);
  chain.Remove(arena, a);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.head, kNullNode);
  EXPECT_EQ(chain.tail, kNullNode);
}

// --- FlatIndex ---

TEST(FlatIndex, InsertFindErase) {
  FlatIndex index;
  EXPECT_EQ(index.Find(42), FlatIndex::kNotFound);
  index.Insert(42, 7);
  index.Insert(0, 9);  // key 0 must be representable (no key sentinel)
  EXPECT_EQ(index.Find(42), 7u);
  EXPECT_EQ(index.Find(0), 9u);
  EXPECT_TRUE(index.Erase(42));
  EXPECT_FALSE(index.Erase(42));
  EXPECT_EQ(index.Find(42), FlatIndex::kNotFound);
  EXPECT_EQ(index.size(), 1u);
}

TEST(FlatIndex, MatchesUnorderedMapUnderChurn) {
  FlatIndex index;
  std::unordered_map<uint64_t, uint32_t> model;
  Rng rng(99);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t key = rng.NextBounded(2000);  // heavy collisions/reuse
    switch (rng.NextBounded(3)) {
      case 0: {
        if (model.find(key) == model.end()) {
          const uint32_t value = static_cast<uint32_t>(i);
          index.Insert(key, value);
          model[key] = value;
        }
        break;
      }
      case 1:
        EXPECT_EQ(index.Erase(key), model.erase(key) > 0);
        break;
      default: {
        const auto it = model.find(key);
        EXPECT_EQ(index.Find(key),
                  it == model.end() ? FlatIndex::kNotFound : it->second);
        break;
      }
    }
  }
  EXPECT_EQ(index.size(), model.size());
  size_t visited = 0;
  index.ForEach([&](uint64_t key, uint32_t value) {
    ++visited;
    const auto it = model.find(key);
    ASSERT_NE(it, model.end());
    EXPECT_EQ(it->second, value);
  });
  EXPECT_EQ(visited, model.size());
}

TEST(FlatIndex, ReservePreventsMidStreamRehash) {
  FlatIndex index;
  index.Reserve(10000);
  const size_t slots = index.slot_count();
  for (uint64_t k = 0; k < 10000; ++k) index.Insert(k, static_cast<uint32_t>(k));
  EXPECT_EQ(index.slot_count(), slots);
  for (uint64_t k = 0; k < 10000; ++k) EXPECT_EQ(index.Find(k), k);
}

// --- Differential test: SegmentedLru vs a list+map reference model ---

// The reference model mirrors the seed implementation verbatim:
// std::list-per-segment with front-insertion, back-eviction, cascade
// demotion, and byte/item loads.
class ReferenceSegmentedLru {
 public:
  using Entry = SegmentedLru::Entry;
  using SegmentConfig = SegmentedLru::SegmentConfig;
  using Unit = SegmentedLru::Unit;

  explicit ReferenceSegmentedLru(std::vector<SegmentConfig> segments) {
    segments_.resize(segments.size());
    for (size_t i = 0; i < segments.size(); ++i) {
      segments_[i].config = segments[i];
    }
  }

  int Find(uint64_t key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? -1 : static_cast<int>(it->second.seg);
  }

  void Erase(uint64_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return;
    Detach(it->second);
    index_.erase(it);
  }

  bool MoveToFront(uint64_t key, size_t target_seg) {
    const auto it = index_.find(key);
    if (it == index_.end()) return false;
    const Entry entry = *it->second.it;
    Detach(it->second);
    AttachFront(target_seg, entry);
    Cascade(target_seg);
    return true;
  }

  void Insert(const Entry& entry, size_t target_seg) {
    AttachFront(target_seg, entry);
    Cascade(target_seg);
  }

  void SetCapacity(size_t seg, uint64_t capacity) {
    segments_[seg].config.capacity = capacity;
    Cascade(seg);
  }

  size_t total_items() const { return index_.size(); }
  uint64_t segment_bytes(size_t seg) const { return segments_[seg].bytes; }
  size_t segment_items(size_t seg) const {
    return segments_[seg].entries.size();
  }
  // Keys of one segment in LRU order (front first).
  std::vector<uint64_t> SegmentKeys(size_t seg) const {
    std::vector<uint64_t> keys;
    for (const Entry& e : segments_[seg].entries) keys.push_back(e.key);
    return keys;
  }

 private:
  struct Segment {
    SegmentConfig config;
    std::list<Entry> entries;
    uint64_t bytes = 0;
  };
  struct Locator {
    size_t seg = 0;
    std::list<Entry>::iterator it;
  };

  static uint64_t Charge(const Segment& s, const Entry& e) {
    return s.config.keys_only ? e.key_bytes : e.full_bytes;
  }
  static uint64_t Load(const Segment& s) {
    return s.config.unit == Unit::kItems ? s.entries.size() : s.bytes;
  }
  void Detach(const Locator& loc) {
    Segment& s = segments_[loc.seg];
    s.bytes -= Charge(s, *loc.it);
    s.entries.erase(loc.it);
  }
  void AttachFront(size_t seg, const Entry& entry) {
    Segment& s = segments_[seg];
    s.entries.push_front(entry);
    s.bytes += Charge(s, entry);
    index_[entry.key] = Locator{seg, s.entries.begin()};
  }
  void Cascade(size_t seg) {
    for (size_t i = seg; i < segments_.size(); ++i) {
      Segment& s = segments_[i];
      while (!s.entries.empty() && Load(s) > s.config.capacity) {
        const Entry victim = s.entries.back();
        s.bytes -= Charge(s, victim);
        s.entries.pop_back();
        if (i + 1 < segments_.size()) {
          Segment& next = segments_[i + 1];
          next.entries.push_front(victim);
          next.bytes += Charge(next, victim);
          index_[victim.key] = Locator{i + 1, next.entries.begin()};
        } else {
          index_.erase(victim.key);
        }
      }
    }
  }

  std::vector<Segment> segments_;
  std::unordered_map<uint64_t, Locator> index_;
};

// Full-order comparison: every segment's key sequence must match exactly,
// not just membership — this is what "bit-identical eviction/demotion
// order" means.
void ExpectSameState(const SegmentedLru& lru,
                     const ReferenceSegmentedLru& ref, size_t num_segments) {
  ASSERT_EQ(lru.total_items(), ref.total_items());
  for (size_t s = 0; s < num_segments; ++s) {
    ASSERT_EQ(lru.segment_items(s), ref.segment_items(s)) << "segment " << s;
    ASSERT_EQ(lru.segment_bytes(s), ref.segment_bytes(s)) << "segment " << s;
    for (const uint64_t key : ref.SegmentKeys(s)) {
      ASSERT_EQ(lru.Find(key), static_cast<int>(s)) << "key " << key;
    }
  }
}

TEST(SegmentedLruDifferential, HundredThousandMixedOpsBitIdentical) {
  using Unit = SegmentedLru::Unit;
  const std::vector<SegmentedLru::SegmentConfig> segments = {
      {40, Unit::kItems, false},
      {1500, Unit::kBytes, false},
      {16, Unit::kItems, true},
      {800, Unit::kBytes, true},
  };
  SegmentedLru lru(segments);
  ReferenceSegmentedLru ref(segments);

  Rng rng(0xD1FF);
  std::unordered_set<uint64_t> inserted;  // keys ever offered to Insert
  for (int op = 0; op < 100000; ++op) {
    const uint64_t key = rng.NextBounded(600);
    const uint32_t full = 32 + rng.NextBounded(96);
    const uint32_t kb = 8 + rng.NextBounded(24);
    const size_t seg = rng.NextBounded(2);  // head or mid insertion target
    switch (rng.NextBounded(16)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Insert a currently-absent key
        if (lru.Find(key) < 0) {
          SegmentedLru::Entry e;
          e.key = key;
          e.full_bytes = full;
          e.key_bytes = kb;
          lru.Insert(e, seg);
          ref.Insert(e, seg);
          inserted.insert(key);
        }
        break;
      }
      case 4:
      case 5: {  // Erase
        lru.Erase(key);
        ref.Erase(key);
        break;
      }
      case 6: {  // Resize a random segment (cascades)
        const size_t target = rng.NextBounded(
            static_cast<uint32_t>(segments.size()));
        const uint64_t cap =
            segments[target].unit == Unit::kItems
                ? rng.NextBounded(60)
                : rng.NextBounded(2000);
        lru.SetCapacity(target, cap);
        ref.SetCapacity(target, cap);
        ASSERT_TRUE(lru.CheckInvariants()) << "after resize, op " << op;
        ExpectSameState(lru, ref, segments.size());
        break;
      }
      default: {  // MoveToFront (LRU promotion) — the hot path
        ASSERT_EQ(lru.MoveToFront(key, seg), ref.MoveToFront(key, seg));
        break;
      }
    }
    if (op % 4096 == 0) {
      ASSERT_TRUE(lru.CheckInvariants()) << "op " << op;
      ExpectSameState(lru, ref, segments.size());
    }
  }
  EXPECT_GT(inserted.size(), 0u);
  ASSERT_TRUE(lru.CheckInvariants());
  ExpectSameState(lru, ref, segments.size());
}

// Shrinking to zero and re-growing exercises free-list reuse of the entire
// pool; the invariant check validates no leak and no double-free.
TEST(SegmentedLruDifferential, DrainAndRefillRecyclesWholePool) {
  using Unit = SegmentedLru::Unit;
  SegmentedLru lru({{64, Unit::kItems, false}, {64, Unit::kItems, true}});
  for (uint64_t k = 0; k < 128; ++k) {
    lru.Insert({k, 64, 16}, 0);
  }
  ASSERT_EQ(lru.total_items(), 128u);
  lru.SetCapacity(0, 0);
  lru.SetCapacity(1, 0);
  EXPECT_EQ(lru.total_items(), 0u);
  ASSERT_TRUE(lru.CheckInvariants());
  lru.SetCapacity(0, 64);
  lru.SetCapacity(1, 64);
  for (uint64_t k = 1000; k < 1128; ++k) {
    lru.Insert({k, 64, 16}, 0);
  }
  EXPECT_EQ(lru.total_items(), 128u);
  ASSERT_TRUE(lru.CheckInvariants());
}

TEST(SegmentedLruDifferential, ReserveItemsDoesNotChangeBehavior) {
  using Unit = SegmentedLru::Unit;
  SegmentedLru hinted({{8, Unit::kItems, false}, {8, Unit::kItems, true}});
  SegmentedLru plain({{8, Unit::kItems, false}, {8, Unit::kItems, true}});
  hinted.ReserveItems(4096);
  for (uint64_t k = 0; k < 64; ++k) {
    hinted.Insert({k, 64, 16}, 0);
    plain.Insert({k, 64, 16}, 0);
    if (k % 3 == 0) {
      hinted.MoveToFront(k / 2, 0);
      plain.MoveToFront(k / 2, 0);
    }
  }
  ASSERT_TRUE(hinted.CheckInvariants());
  ASSERT_TRUE(plain.CheckInvariants());
  for (uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(hinted.Find(k), plain.Find(k)) << "key " << k;
  }
}

}  // namespace
}  // namespace cliffhanger
