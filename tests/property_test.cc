// Property-style parameterized tests (TEST_P) for the paper's design
// claims:
//   1. Two evenly split queues at half traffic behave like one big queue
//      (§4.2 — the basis of the cliff scaler's no-op behaviour on concave
//      curves).
//   2. The shadow-queue hit rate approximates the hit-rate curve gradient
//      (§3.4 — the basis of hill climbing).
//   3. LRU simulation agrees with Mattson stack distances at any capacity
//      (inclusion property).
//   4. The Talus split realizes the concave hull on step-cliff workloads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "analysis/hit_rate_curve.h"
#include "analysis/stack_distance.h"
#include "cache/arc_queue.h"
#include "cache/global_log_queue.h"
#include "cache/lfu_queue.h"
#include "cache/slab_class_queue.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {
namespace {

ItemMeta Item(uint64_t key) {
  ItemMeta m;
  m.key = key;
  m.key_size = 14;
  m.value_size = 12;
  return m;
}

SlabQueueConfig QueueCfg() {
  SlabQueueConfig config;
  config.chunk_size = 64;
  config.tail_items = 16;
  config.cliff_shadow_items = 16;
  config.hill_shadow_bytes = 64 * 64;
  return config;
}

// --- Property 1: even split == single queue (hit-rate-wise) ---

struct SplitParam {
  double zipf_alpha;
  uint64_t universe;
  uint64_t capacity_items;
};

class EvenSplitEquivalence : public ::testing::TestWithParam<SplitParam> {};

TEST_P(EvenSplitEquivalence, HitRatesMatchWithinTolerance) {
  const SplitParam p = GetParam();
  ZipfTable zipf(p.universe, p.zipf_alpha);

  PartitionConfig pc;
  pc.queue = QueueCfg();
  PartitionedSlabQueue single(pc);
  single.SetCapacityBytes(p.capacity_items * 64);

  PartitionedSlabQueue split(pc);
  split.SetCapacityBytes(p.capacity_items * 64);
  split.EnablePartition(true);  // even halves, ratio 0.5

  Rng rng(1234);
  uint64_t gets = 0, single_hits = 0, split_hits = 0;
  for (int i = 0; i < 150000; ++i) {
    const ItemMeta item = Item(zipf.Sample(rng));
    ++gets;
    const GetResult a = single.Get(item);
    if (a.hit) {
      ++single_hits;
    } else {
      single.Fill(item);
    }
    const GetResult b = split.Get(item);
    if (b.hit) {
      ++split_hits;
    } else {
      split.Fill(item);
    }
  }
  const double single_rate = static_cast<double>(single_hits) / gets;
  const double split_rate = static_cast<double>(split_hits) / gets;
  EXPECT_NEAR(split_rate, single_rate, 0.03)
      << "alpha=" << p.zipf_alpha << " universe=" << p.universe
      << " capacity=" << p.capacity_items;
}

INSTANTIATE_TEST_SUITE_P(
    ZipfSweep, EvenSplitEquivalence,
    ::testing::Values(SplitParam{0.7, 20000, 2000},
                      SplitParam{0.9, 20000, 2000},
                      SplitParam{1.1, 20000, 2000},
                      SplitParam{0.9, 50000, 4000},
                      SplitParam{1.0, 10000, 5000},
                      SplitParam{1.2, 5000, 1000}));

// --- Property 2: shadow hit rate ~ request-weighted gradient ---

struct GradientParam {
  double zipf_alpha;
  uint64_t universe;
  uint64_t capacity_items;
  uint64_t shadow_items;
};

class ShadowGradient : public ::testing::TestWithParam<GradientParam> {};

TEST_P(ShadowGradient, ShadowHitRateApproximatesCurveSlope) {
  const GradientParam p = GetParam();
  ZipfTable zipf(p.universe, p.zipf_alpha);

  SlabQueueConfig config = QueueCfg();
  config.tail_items = 0;
  config.cliff_shadow_items = 0;
  config.hill_shadow_bytes = p.shadow_items * 64;
  SlabClassQueue queue(config);
  queue.SetCapacityItems(p.capacity_items);

  StackDistanceAnalyzer analyzer;
  Rng rng(99);
  uint64_t gets = 0, shadow_hits = 0;
  // Warm up, then measure.
  for (int i = 0; i < 50000; ++i) {
    const ItemMeta item = Item(zipf.Sample(rng));
    if (!queue.Get(item).hit) queue.Fill(item);
  }
  for (int i = 0; i < 300000; ++i) {
    const ItemMeta item = Item(zipf.Sample(rng));
    ++gets;
    const GetResult r = queue.Get(item);
    if (r.region == HitRegion::kHillShadow) ++shadow_hits;
    if (!r.hit) queue.Fill(item);
    analyzer.Record(item.key);
  }
  // Ground truth: h(c + s) - h(c) from exact stack distances.
  const PiecewiseCurve curve =
      CurveFromHistogram(analyzer.histogram(), analyzer.total_accesses(),
                         1 << 20);
  const double expected =
      curve.Eval(static_cast<double>(p.capacity_items + p.shadow_items)) -
      curve.Eval(static_cast<double>(p.capacity_items));
  const double observed = static_cast<double>(shadow_hits) / gets;
  EXPECT_NEAR(observed, expected, std::max(0.01, expected * 0.35))
      << "alpha=" << p.zipf_alpha << " cap=" << p.capacity_items;
}

INSTANTIATE_TEST_SUITE_P(
    GradientSweep, ShadowGradient,
    ::testing::Values(GradientParam{0.8, 20000, 2000, 500},
                      GradientParam{1.0, 20000, 2000, 500},
                      GradientParam{1.0, 20000, 5000, 1000},
                      GradientParam{1.2, 10000, 1000, 250},
                      GradientParam{0.9, 40000, 8000, 1000}));

// --- Property 3: LRU inclusion — simulated hit rate equals the stack
// distance CDF at the queue's capacity ---

class LruInclusion : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LruInclusion, SimulationMatchesMattson) {
  const uint64_t capacity = GetParam();
  SlabQueueConfig config = QueueCfg();
  config.tail_items = 0;
  config.cliff_shadow_items = 0;
  config.hill_shadow_bytes = 0;
  SlabClassQueue queue(config);
  queue.SetCapacityItems(capacity);

  StackDistanceAnalyzer analyzer;
  ZipfTable zipf(15000, 0.95);
  Rng rng(7);
  uint64_t gets = 0, hits = 0;
  for (int i = 0; i < 200000; ++i) {
    const ItemMeta item = Item(zipf.Sample(rng));
    ++gets;
    const GetResult r = queue.Get(item);
    hits += r.hit ? 1 : 0;
    if (!r.hit) queue.Fill(item);
    analyzer.Record(item.key);
  }
  const PiecewiseCurve curve = CurveFromHistogram(
      analyzer.histogram(), analyzer.total_accesses(), 1 << 20);
  EXPECT_NEAR(static_cast<double>(hits) / gets,
              curve.Eval(static_cast<double>(capacity)), 0.01)
      << "capacity=" << capacity;
}

INSTANTIATE_TEST_SUITE_P(CapacitySweep, LruInclusion,
                         ::testing::Values(500, 1000, 2000, 4000, 8000));

// --- Property 4: a manual Talus split beats a single queue on a cliff ---

struct CliffParam {
  uint64_t scan_size;       // items in the cyclic scan
  uint64_t capacity_items;  // below the cliff
};

class ManualTalusSplit : public ::testing::TestWithParam<CliffParam> {};

TEST_P(ManualTalusSplit, PartitionBeatsSingleQueueOnScan) {
  const CliffParam p = GetParam();
  ASSERT_LT(p.capacity_items, p.scan_size);

  PartitionConfig pc;
  pc.queue = QueueCfg();

  // Single queue at capacity < scan size: LRU yields ~0 hits.
  PartitionedSlabQueue single(pc);
  single.SetCapacityBytes(p.capacity_items * 64);

  // Ideal Talus split for a step cliff at scan_size: anchors 0 and
  // scan_size. Left queue vanishes; right queue simulates the full scan by
  // taking a fraction capacity/scan_size of the requests. A 6% margin on
  // the simulated size keeps the right queue's key subset safely under its
  // physical capacity (hash routing is binomial, and a subset exceeding
  // capacity thrashes to zero hits).
  PartitionedSlabQueue talus(pc);
  talus.SetCapacityBytes(p.capacity_items * 64);
  talus.EnablePartition(true);
  const double rho = 1.0 - static_cast<double>(p.capacity_items) /
                               (1.06 * static_cast<double>(p.scan_size));
  talus.SetRatio(rho);  // rho of traffic to the (empty) left queue
  talus.SetPartitionItems(0, p.capacity_items);

  uint64_t gets = 0, single_hits = 0, talus_hits = 0;
  for (int cycle = 0; cycle < 30; ++cycle) {
    for (uint64_t k = 0; k < p.scan_size; ++k) {
      const ItemMeta item = Item(k);
      ++gets;
      if (single.Get(item).hit) {
        ++single_hits;
      } else {
        single.Fill(item);
      }
      if (talus.Get(item).hit) {
        ++talus_hits;
      } else {
        talus.Fill(item);
      }
    }
  }
  const double single_rate = static_cast<double>(single_hits) / gets;
  const double talus_rate = static_cast<double>(talus_hits) / gets;
  const double hull_rate = static_cast<double>(p.capacity_items) /
                           static_cast<double>(p.scan_size);
  EXPECT_LT(single_rate, 0.02);
  // The split should realize most of the concave-hull value.
  EXPECT_GT(talus_rate, hull_rate * 0.75)
      << "scan=" << p.scan_size << " cap=" << p.capacity_items;
}

INSTANTIATE_TEST_SUITE_P(CliffSweep, ManualTalusSplit,
                         ::testing::Values(CliffParam{4000, 2000},
                                           CliffParam{4000, 1000},
                                           CliffParam{8000, 3000},
                                           CliffParam{2000, 1500},
                                           CliffParam{10000, 2500}));

// --- Property 5: shard routing is stable, in-range, and balanced ---

TEST(ShardRouting, SameKeyAlwaysRoutesToSameShard) {
  Rng rng(0x5AAD);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t key = rng();
    const size_t first = ShardIndexForKey(key, 8);
    EXPECT_LT(first, 8u);
    EXPECT_EQ(ShardIndexForKey(key, 8), first);
  }
  // Edge keys and the degenerate shard count stay in range; the routing
  // function is constexpr, so compile-time and run-time agree by checking
  // a constant-evaluated result against a runtime-evaluated one.
  constexpr size_t kMaxKeyShard = ShardIndexForKey(~uint64_t{0}, 16);
  for (const uint64_t key : {uint64_t{0}, ~uint64_t{0}, uint64_t{1}}) {
    EXPECT_EQ(ShardIndexForKey(key, 1), 0u);
    EXPECT_LT(ShardIndexForKey(key, 16), 16u);
  }
  volatile uint64_t runtime_max_key = ~uint64_t{0};
  EXPECT_EQ(ShardIndexForKey(runtime_max_key, 16), kMaxKeyShard);
}

class ShardBalance : public ::testing::TestWithParam<size_t> {};

// Both sequential key ids (what the trace generators emit) and random
// 64-bit keys must spread within 2x of the ideal per-shard load — the
// routing hash, not the key distribution, provides the balance.
TEST_P(ShardBalance, LoadWithinTwiceIdealFor10kKeys) {
  const size_t num_shards = GetParam();
  constexpr size_t kKeys = 20000;
  const double ideal = static_cast<double>(kKeys) / num_shards;

  std::vector<size_t> sequential(num_shards, 0);
  std::vector<size_t> random(num_shards, 0);
  Rng rng(0xBA1A);
  for (size_t i = 0; i < kKeys; ++i) {
    ++sequential[ShardIndexForKey(i, num_shards)];
    ++random[ShardIndexForKey(rng(), num_shards)];
  }
  for (size_t s = 0; s < num_shards; ++s) {
    EXPECT_LT(sequential[s], 2.0 * ideal)
        << "sequential keys, shard " << s << "/" << num_shards;
    EXPECT_GT(sequential[s], 0.5 * ideal)
        << "sequential keys, shard " << s << "/" << num_shards;
    EXPECT_LT(random[s], 2.0 * ideal)
        << "random keys, shard " << s << "/" << num_shards;
    EXPECT_GT(random[s], 0.5 * ideal)
        << "random keys, shard " << s << "/" << num_shards;
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardBalance,
                         ::testing::Values(2, 3, 4, 8, 16));

// --- Property 6: expiry-driven erases preserve queue invariants ---
//
// Lazy expiry splices nodes out of arbitrary queue positions — not just the
// eviction tail — which is exactly the operation most likely to corrupt the
// arena/flat-index structures. Run a TTL-heavy churn against each of the
// five queue types and check the full structural invariants after EVERY
// erase a Get or Touch observes (a physical-item count that dropped on a
// miss is an expiry-driven erase; eviction only happens on Fill).
template <typename Queue, typename CheckFn>
void ExpiryChurn(Queue& queue, CheckFn check, const char* what) {
  Rng rng(0xE49B2);
  uint32_t now = 100;
  int expiry_erases = 0;
  for (int i = 0; i < 6000; ++i) {
    if (i % 5 == 0) ++now;
    ItemMeta item = Item(rng.NextBounded(400));
    item.now_s = now;
    const uint64_t action = rng.NextBounded(10);
    if (action < 5) {
      // Short TTLs so a steady fraction of the queue is expired at any time.
      item.expiry_s = now + 1 + static_cast<uint32_t>(rng.NextBounded(6));
      queue.Fill(item);
    } else if (action < 8) {
      const size_t before = queue.physical_items();
      const GetResult r = queue.Get(item);
      if (!r.hit && queue.physical_items() < before) {
        ASSERT_TRUE(check()) << what << ": invariants broken after "
                             << "expiry-driven erase on Get, op " << i;
        ++expiry_erases;
      }
    } else {
      item.expiry_s = kKeepExpiry;
      const size_t before = queue.physical_items();
      if (!queue.Touch(item) && queue.physical_items() < before) {
        ASSERT_TRUE(check()) << what << ": invariants broken after "
                             << "expiry-driven erase on Touch, op " << i;
        ++expiry_erases;
      }
    }
  }
  // The property is vacuous unless the churn actually exercised the path.
  EXPECT_GT(expiry_erases, 50) << what;
}

TEST(ExpiryInvariants, AllFiveQueuesSurviveExpiryChurn) {
  SlabClassQueue slab(QueueCfg());
  slab.SetCapacityBytes(300 * 64);
  ExpiryChurn(slab, [&] { return slab.CheckInvariants(); }, "SlabClassQueue");

  PartitionConfig pc;
  pc.queue = QueueCfg();
  PartitionedSlabQueue partitioned(pc);
  partitioned.SetCapacityBytes(300 * 64);
  partitioned.EnablePartition(true);
  ExpiryChurn(partitioned, [&] { return partitioned.CheckInvariants(); },
              "PartitionedSlabQueue");

  ArcQueue arc(64);
  arc.SetCapacityBytes(300 * 64);
  ExpiryChurn(arc, [&] { return arc.CheckInvariants(); }, "ArcQueue");

  LfuQueue lfu(64);
  lfu.SetCapacityBytes(300 * 64);
  ExpiryChurn(lfu, [&] { return lfu.CheckInvariants(); }, "LfuQueue");

  GlobalLogQueue log(300 * 64);
  ExpiryChurn(log, [&] { return log.CheckInvariants(); }, "GlobalLogQueue");
}

}  // namespace
}  // namespace cliffhanger
