// Thread-safety battery for ShardedCacheServer: several threads hammer
// Get/Set/Delete on one shared server (run under ThreadSanitizer in CI via
// the `concurrency` ctest label), then the test asserts the invariants that
// concurrency must not break:
//   - every cacheable operation is counted exactly once (no lost updates),
//   - the lock-free TotalStats equals the exact MergedStats equals the sum
//     of the per-shard snapshots,
//   - every app's reservation stays conserved across shards even while the
//     shadow-signal rebalancer is re-dividing it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sharded_server.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {
namespace {

constexpr uint32_t kAppA = 1;
constexpr uint32_t kAppB = 2;
constexpr uint64_t kReservationA = 4ULL << 20;  // 4 MiB
constexpr uint64_t kReservationB = 2ULL << 20;  // 2 MiB

ItemMeta MakeItem(uint64_t key) {
  ItemMeta item;
  item.key = key;
  item.key_size = 16;
  item.value_size = (key % 2 == 0) ? 64 : 400;
  return item;
}

void ExpectStatsEqual(const ClassStats& a, const ClassStats& b,
                      const char* label) {
  EXPECT_EQ(a.gets, b.gets) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.sets, b.sets) << label;
  EXPECT_EQ(a.tail_hits, b.tail_hits) << label;
  EXPECT_EQ(a.cliff_shadow_hits, b.cliff_shadow_hits) << label;
  EXPECT_EQ(a.hill_shadow_hits, b.hill_shadow_hits) << label;
}

// The conservation invariant under test: the shards' current shares must
// sum to the registered total at any observable moment.
uint64_t SumShardReservations(const ShardedCacheServer& server,
                              uint32_t app_id) {
  uint64_t total = 0;
  for (size_t i = 0; i < server.num_shards(); ++i) {
    total += server.AppShardReservation(app_id, i);
  }
  return total;
}

ShardedServerConfig HammerConfig(size_t num_shards,
                                 uint64_t rebalance_interval) {
  ShardedServerConfig config;
  config.server = CliffhangerServerConfig();
  config.num_shards = num_shards;
  config.rebalance_interval_ops = rebalance_interval;
  return config;
}

// Worker mixing demand-fill GETs, explicit SETs and DELETEs over a Zipf
// key population, tallying what it issued so the main thread can check
// nothing was lost.
struct WorkerTally {
  uint64_t gets = 0;
  uint64_t sets = 0;
};

WorkerTally Hammer(ShardedCacheServer& server, uint32_t thread_id,
                   size_t num_ops, const ZipfTable& zipf) {
  Rng rng(0xBEEF0000ULL + thread_id);
  WorkerTally tally;
  for (size_t i = 0; i < num_ops; ++i) {
    const uint32_t app_id = rng.NextBernoulli(0.7) ? kAppA : kAppB;
    const ItemMeta item =
        MakeItem(HashCombine(app_id, zipf.Sample(rng)));
    const double dice = rng.NextDouble();
    if (dice < 0.80) {
      const Outcome outcome = server.Get(app_id, item);
      ++tally.gets;
      if (!outcome.hit && outcome.cacheable) {
        server.Set(app_id, item);
        ++tally.sets;
      }
    } else if (dice < 0.95) {
      server.Set(app_id, item);
      ++tally.sets;
    } else {
      server.Delete(app_id, item);
    }
  }
  return tally;
}

TEST(ShardedServerTest, ConcurrentHammerKeepsInvariants) {
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 25000;
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/20000));
  server.AddApp(kAppA, kReservationA);
  server.AddApp(kAppB, kReservationB);

  const ZipfTable zipf(20000, 0.9);
  std::vector<WorkerTally> tallies(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        tallies[t] = Hammer(server, static_cast<uint32_t>(t),
                            kOpsPerThread, zipf);
      });
    }
    for (auto& thread : threads) thread.join();
  }

  // No lost updates: the counted operations equal the issued ones.
  WorkerTally issued;
  for (const WorkerTally& tally : tallies) {
    issued.gets += tally.gets;
    issued.sets += tally.sets;
  }
  const ClassStats total = server.TotalStats();
  EXPECT_EQ(total.gets, issued.gets);
  EXPECT_EQ(total.sets, issued.sets);
  EXPECT_GT(total.hits, 0u);
  EXPECT_LT(total.hits, total.gets);

  // The lock-free counters, the exact merged snapshot, the per-shard sums
  // and the per-app sums all agree once writers are quiescent.
  ExpectStatsEqual(total, server.MergedStats(), "total vs merged");
  ClassStats per_shard_sum;
  for (size_t i = 0; i < server.num_shards(); ++i) {
    per_shard_sum += server.ShardStats(i);
  }
  ExpectStatsEqual(total, per_shard_sum, "total vs per-shard sum");
  ClassStats per_app_sum;
  per_app_sum += server.AppStats(kAppA);
  per_app_sum += server.AppStats(kAppB);
  ExpectStatsEqual(total, per_app_sum, "total vs per-app sum");

  // Rebalancing ran and conserved each tenant's total reservation: the
  // per-shard shares sum to the registered total.
  EXPECT_GT(server.rebalance_count(), 0u);
  EXPECT_EQ(server.AppReservation(kAppA), kReservationA);
  EXPECT_EQ(server.AppReservation(kAppB), kReservationB);
  EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA);
  EXPECT_EQ(SumShardReservations(server, kAppB), kReservationB);
}

// Readers taking lock-free and locking snapshots race the writers; under
// ThreadSanitizer this validates the snapshot paths, and the monotonicity
// of the lock-free gets counter is asserted directly. (No cross-counter
// assertion: the mirror counters are independent relaxed atomics, so a
// reader on weakly-ordered hardware may see hits/gets increments of one
// operation in either order.)
TEST(ShardedServerTest, SnapshotsAreSafeAndMonotonicDuringTraffic) {
  constexpr size_t kWriters = 2;
  constexpr size_t kOpsPerThread = 15000;
  ShardedCacheServer server(HammerConfig(/*num_shards=*/2,
                                         /*rebalance_interval=*/10000));
  server.AddApp(kAppA, kReservationA);
  server.AddApp(kAppB, kReservationB);

  const ZipfTable zipf(10000, 0.9);
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    uint64_t last_gets = 0;
    while (!done.load(std::memory_order_acquire)) {
      const ClassStats total = server.TotalStats();
      if (total.gets < last_gets) {
        failed.store(true);
        break;
      }
      last_gets = total.gets;
      (void)server.MergedStats();
      (void)server.AppReservation(kAppA);
      (void)server.rebalance_count();
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        Hammer(server, 100 + static_cast<uint32_t>(t), kOpsPerThread, zipf);
      });
    }
    for (auto& thread : writers) thread.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA);
  EXPECT_EQ(SumShardReservations(server, kAppB), kReservationB);
}

// An explicit Rebalance storm while traffic runs: reservations must stay
// conserved at every step, and a shard that shows no shadow signal drifts
// toward the even split rather than collapsing.
TEST(ShardedServerTest, ManualRebalanceConservesAndEvens) {
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/0));
  server.AddApp(kAppA, kReservationA);

  const ZipfTable zipf(5000, 0.9);
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const ItemMeta item = MakeItem(zipf.Sample(rng));
      if (!server.Get(kAppA, item).hit) server.Set(kAppA, item);
    }
    server.Rebalance();
    EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA)
        << "round " << round;
  }
  EXPECT_EQ(server.rebalance_count(), 20u);

  // With hash-balanced traffic no shard should end up starved: each holds
  // at least half of the even share.
  for (size_t i = 0; i < server.num_shards(); ++i) {
    EXPECT_GE(server.AppShardReservation(kAppA, i),
              kReservationA / server.num_shards() / 2)
        << "shard " << i;
  }
}

}  // namespace
}  // namespace cliffhanger
