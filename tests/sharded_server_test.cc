// Thread-safety battery for ShardedCacheServer: several threads hammer
// Get/Set/Delete on one shared server (run under ThreadSanitizer in CI via
// the `concurrency` ctest label), then the test asserts the invariants that
// concurrency must not break:
//   - every cacheable operation is counted exactly once (no lost updates),
//   - the lock-free TotalStats equals the exact MergedStats equals the sum
//     of the per-shard snapshots,
//   - every app's reservation stays conserved across shards even while the
//     shadow-signal rebalancer is re-dividing it.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/sharded_server.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {
namespace {

constexpr uint32_t kAppA = 1;
constexpr uint32_t kAppB = 2;
constexpr uint64_t kReservationA = 4ULL << 20;  // 4 MiB
constexpr uint64_t kReservationB = 2ULL << 20;  // 2 MiB

ItemMeta MakeItem(uint64_t key) {
  ItemMeta item;
  item.key = key;
  item.key_size = 16;
  item.value_size = (key % 2 == 0) ? 64 : 400;
  return item;
}

void ExpectStatsEqual(const ClassStats& a, const ClassStats& b,
                      const char* label) {
  EXPECT_EQ(a.gets, b.gets) << label;
  EXPECT_EQ(a.hits, b.hits) << label;
  EXPECT_EQ(a.sets, b.sets) << label;
  EXPECT_EQ(a.tail_hits, b.tail_hits) << label;
  EXPECT_EQ(a.cliff_shadow_hits, b.cliff_shadow_hits) << label;
  EXPECT_EQ(a.hill_shadow_hits, b.hill_shadow_hits) << label;
}

// The conservation invariant under test: the shards' current shares must
// sum to the registered total at any observable moment.
uint64_t SumShardReservations(const ShardedCacheServer& server,
                              uint32_t app_id) {
  uint64_t total = 0;
  for (size_t i = 0; i < server.num_shards(); ++i) {
    total += server.AppShardReservation(app_id, i);
  }
  return total;
}

ShardedServerConfig HammerConfig(size_t num_shards,
                                 uint64_t rebalance_interval) {
  ShardedServerConfig config;
  config.server = CliffhangerServerConfig();
  config.num_shards = num_shards;
  config.rebalance_interval_ops = rebalance_interval;
  return config;
}

// Worker mixing demand-fill GETs, explicit SETs and DELETEs over a Zipf
// key population, tallying what it issued so the main thread can check
// nothing was lost.
struct WorkerTally {
  uint64_t gets = 0;
  uint64_t sets = 0;
};

WorkerTally Hammer(ShardedCacheServer& server, uint32_t thread_id,
                   size_t num_ops, const ZipfTable& zipf) {
  Rng rng(0xBEEF0000ULL + thread_id);
  WorkerTally tally;
  for (size_t i = 0; i < num_ops; ++i) {
    const uint32_t app_id = rng.NextBernoulli(0.7) ? kAppA : kAppB;
    const ItemMeta item =
        MakeItem(HashCombine(app_id, zipf.Sample(rng)));
    const double dice = rng.NextDouble();
    if (dice < 0.80) {
      const Outcome outcome = server.Get(app_id, item);
      ++tally.gets;
      if (!outcome.hit && outcome.cacheable) {
        server.Set(app_id, item);
        ++tally.sets;
      }
    } else if (dice < 0.95) {
      server.Set(app_id, item);
      ++tally.sets;
    } else {
      server.Delete(app_id, item);
    }
  }
  return tally;
}

TEST(ShardedServerTest, ConcurrentHammerKeepsInvariants) {
  constexpr size_t kThreads = 4;
  constexpr size_t kOpsPerThread = 25000;
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/20000));
  server.AddApp(kAppA, kReservationA);
  server.AddApp(kAppB, kReservationB);

  const ZipfTable zipf(20000, 0.9);
  std::vector<WorkerTally> tallies(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        tallies[t] = Hammer(server, static_cast<uint32_t>(t),
                            kOpsPerThread, zipf);
      });
    }
    for (auto& thread : threads) thread.join();
  }

  // No lost updates: the counted operations equal the issued ones.
  WorkerTally issued;
  for (const WorkerTally& tally : tallies) {
    issued.gets += tally.gets;
    issued.sets += tally.sets;
  }
  const ClassStats total = server.TotalStats();
  EXPECT_EQ(total.gets, issued.gets);
  EXPECT_EQ(total.sets, issued.sets);
  EXPECT_GT(total.hits, 0u);
  EXPECT_LT(total.hits, total.gets);

  // The lock-free counters, the exact merged snapshot, the per-shard sums
  // and the per-app sums all agree once writers are quiescent.
  ExpectStatsEqual(total, server.MergedStats(), "total vs merged");
  ClassStats per_shard_sum;
  for (size_t i = 0; i < server.num_shards(); ++i) {
    per_shard_sum += server.ShardStats(i);
  }
  ExpectStatsEqual(total, per_shard_sum, "total vs per-shard sum");
  ClassStats per_app_sum;
  per_app_sum += server.AppStats(kAppA);
  per_app_sum += server.AppStats(kAppB);
  ExpectStatsEqual(total, per_app_sum, "total vs per-app sum");

  // Rebalancing ran and conserved each tenant's total reservation: the
  // per-shard shares sum to the registered total.
  EXPECT_GT(server.rebalance_count(), 0u);
  EXPECT_EQ(server.AppReservation(kAppA), kReservationA);
  EXPECT_EQ(server.AppReservation(kAppB), kReservationB);
  EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA);
  EXPECT_EQ(SumShardReservations(server, kAppB), kReservationB);
}

// Readers taking lock-free and locking snapshots race the writers; under
// ThreadSanitizer this validates the snapshot paths, and the monotonicity
// of the lock-free gets counter is asserted directly. (No cross-counter
// assertion: the mirror counters are independent relaxed atomics, so a
// reader on weakly-ordered hardware may see hits/gets increments of one
// operation in either order.)
TEST(ShardedServerTest, SnapshotsAreSafeAndMonotonicDuringTraffic) {
  constexpr size_t kWriters = 2;
  constexpr size_t kOpsPerThread = 15000;
  ShardedCacheServer server(HammerConfig(/*num_shards=*/2,
                                         /*rebalance_interval=*/10000));
  server.AddApp(kAppA, kReservationA);
  server.AddApp(kAppB, kReservationB);

  const ZipfTable zipf(10000, 0.9);
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::thread reader([&] {
    uint64_t last_gets = 0;
    while (!done.load(std::memory_order_acquire)) {
      const ClassStats total = server.TotalStats();
      if (total.gets < last_gets) {
        failed.store(true);
        break;
      }
      last_gets = total.gets;
      (void)server.MergedStats();
      (void)server.AppReservation(kAppA);
      (void)server.rebalance_count();
    }
  });
  {
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (size_t t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        Hammer(server, 100 + static_cast<uint32_t>(t), kOpsPerThread, zipf);
      });
    }
    for (auto& thread : writers) thread.join();
  }
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA);
  EXPECT_EQ(SumShardReservations(server, kAppB), kReservationB);
}

// An explicit Rebalance storm while traffic runs: reservations must stay
// conserved at every step, and a shard that shows no shadow signal drifts
// toward the even split rather than collapsing.
TEST(ShardedServerTest, ManualRebalanceConservesAndEvens) {
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/0));
  server.AddApp(kAppA, kReservationA);

  const ZipfTable zipf(5000, 0.9);
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 2000; ++i) {
      const ItemMeta item = MakeItem(zipf.Sample(rng));
      if (!server.Get(kAppA, item).hit) server.Set(kAppA, item);
    }
    server.Rebalance();
    EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA)
        << "round " << round;
  }
  EXPECT_EQ(server.rebalance_count(), 20u);

  // With hash-balanced traffic no shard should end up starved: each holds
  // at least half of the even share.
  for (size_t i = 0; i < server.num_shards(); ++i) {
    EXPECT_GE(server.AppShardReservation(kAppA, i),
              kReservationA / server.num_shards() / 2)
        << "shard " << i;
  }
}

// --- Batch API equivalence -------------------------------------------------

// Two identical servers replay the same scripted op stream, one through the
// scalar Get/Mutate calls and one through GetBatch/MutateBatch in bursts of
// awkward sizes. Batching groups ops by shard but must change nothing
// observable: every per-op Outcome, and the counters at every aggregation
// level, must be bit-identical. Rebalance is off because the batched path
// intentionally defers the op-count bump to burst end; with a nonzero
// interval the rebalance would land mid-burst on one side and post-burst on
// the other.
TEST(ShardedServerTest, BatchedOpsMatchSequentialBitExactly) {
  const ShardedServerConfig config =
      HammerConfig(/*num_shards=*/4, /*rebalance_interval=*/0);
  ShardedCacheServer sequential(config);
  ShardedCacheServer batched(config);
  for (ShardedCacheServer* server : {&sequential, &batched}) {
    server->AddApp(kAppA, kReservationA);
    server->AddApp(kAppB, kReservationB);
  }

  const ZipfTable zipf(3000, 0.9);
  Rng rng(0xBA7C4);
  // Alternate mutation bursts (demand fills + touches + erases) and get
  // bursts; awkward burst sizes so shard runs split at odd boundaries.
  const size_t kBurstSizes[] = {1, 7, 37, 64, 3, 50};
  size_t burst_pick = 0;
  std::vector<ShardedCacheServer::BatchGet> gets;
  std::vector<ShardedCacheServer::BatchMutation> mutations;
  for (int round = 0; round < 300; ++round) {
    const size_t burst = kBurstSizes[burst_pick++ % 6];
    const bool mutate_round = round % 2 == 1;
    gets.clear();
    mutations.clear();
    for (size_t i = 0; i < burst; ++i) {
      const uint32_t app = rng.NextBernoulli(0.7) ? kAppA : kAppB;
      const ItemMeta item = MakeItem(zipf.Sample(rng));
      if (mutate_round) {
        const uint64_t pick = rng.NextBounded(10);
        const MutateOp op = pick < 7   ? MutateOp::kFill
                            : pick < 9 ? MutateOp::kTouch
                                       : MutateOp::kErase;
        mutations.push_back({app, op, item});
      } else {
        gets.push_back({app, item});
      }
    }
    if (mutate_round) {
      std::vector<Outcome> batch_out(mutations.size());
      batched.MutateBatch(mutations.data(), mutations.size(),
                          batch_out.data());
      for (size_t i = 0; i < mutations.size(); ++i) {
        const Outcome seq_out = sequential.Mutate(
            mutations[i].app_id, mutations[i].op, mutations[i].item);
        EXPECT_EQ(batch_out[i].hit, seq_out.hit) << "round " << round;
        EXPECT_EQ(batch_out[i].cacheable, seq_out.cacheable)
            << "round " << round;
        EXPECT_EQ(batch_out[i].region, seq_out.region) << "round " << round;
      }
    } else {
      std::vector<Outcome> batch_out(gets.size());
      batched.GetBatch(gets.data(), gets.size(), batch_out.data());
      for (size_t i = 0; i < gets.size(); ++i) {
        const Outcome seq_out = sequential.Get(gets[i].app_id, gets[i].item);
        EXPECT_EQ(batch_out[i].hit, seq_out.hit) << "round " << round;
        EXPECT_EQ(batch_out[i].region, seq_out.region) << "round " << round;
      }
    }
  }

  ExpectStatsEqual(sequential.MergedStats(), batched.MergedStats(), "merged");
  ExpectStatsEqual(sequential.AppStats(kAppA), batched.AppStats(kAppA),
                   "appA");
  ExpectStatsEqual(sequential.AppStats(kAppB), batched.AppStats(kAppB),
                   "appB");
  for (size_t shard = 0; shard < sequential.num_shards(); ++shard) {
    ExpectStatsEqual(sequential.ShardStats(shard), batched.ShardStats(shard),
                     "shard");
  }
  // The stream must actually have exercised misses and shadow traffic for
  // the equality to mean anything.
  const ClassStats merged = batched.MergedStats();
  EXPECT_GT(merged.gets, 0u);
  EXPECT_LT(merged.hits, merged.gets);
}

// Concurrent batch hammer: several threads push overlapping batches at one
// server (the TSan job sanitizes this via the `concurrency` label). The
// per-burst counter deltas published at batch end must not lose updates:
// the exact MergedStats tally has to equal the sum of what threads issued.
TEST(ShardedServerTest, ConcurrentBatchesKeepCountersExact) {
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/2048));
  server.AddApp(kAppA, kReservationA);
  server.AddApp(kAppB, kReservationB);

  constexpr int kThreads = 4;
  constexpr size_t kBursts = 120;
  constexpr size_t kBurstOps = 48;
  const ZipfTable zipf(2000, 0.9);
  std::atomic<uint64_t> issued_gets{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xC0FFEEULL + static_cast<uint64_t>(t));
      std::vector<ShardedCacheServer::BatchGet> gets;
      std::vector<ShardedCacheServer::BatchMutation> fills;
      std::vector<Outcome> outcomes(kBurstOps);
      uint64_t local_gets = 0;
      for (size_t b = 0; b < kBursts; ++b) {
        gets.clear();
        for (size_t i = 0; i < kBurstOps; ++i) {
          const uint32_t app = rng.NextBernoulli(0.5) ? kAppA : kAppB;
          gets.push_back({app, MakeItem(zipf.Sample(rng))});
        }
        server.GetBatch(gets.data(), gets.size(), outcomes.data());
        local_gets += gets.size();
        // Demand-fill the misses through the mutation batch.
        fills.clear();
        for (size_t i = 0; i < gets.size(); ++i) {
          if (!outcomes[i].hit) {
            fills.push_back({gets[i].app_id, MutateOp::kFill, gets[i].item});
          }
        }
        if (!fills.empty()) {
          server.MutateBatch(fills.data(), fills.size(), outcomes.data());
        }
      }
      issued_gets.fetch_add(local_gets);
    });
  }
  for (auto& thread : threads) thread.join();

  const ClassStats merged = server.MergedStats();
  EXPECT_EQ(merged.gets, issued_gets.load());
  EXPECT_EQ(SumShardReservations(server, kAppA), kReservationA);
  EXPECT_EQ(SumShardReservations(server, kAppB), kReservationB);
}

// Tenant churn races traffic: one thread adds and removes apps (holding
// all shard locks per wave) while workers hammer the whole id space —
// including ids mid-removal and ids never added, which must soft-fail.
// Afterwards every queue/arena invariant must hold, each surviving
// tenant's shards must still sum to its registered reservation, and the
// server-wide total must match the arithmetic of the churn.
TEST(ShardedServerTest, TenantChurnUnderTrafficKeepsInvariants) {
  constexpr size_t kThreads = 3;
  constexpr size_t kOpsPerThread = 20000;
  constexpr uint32_t kInitialApps = 8;
  constexpr uint32_t kWaves = 24;
  ShardedCacheServer server(HammerConfig(/*num_shards=*/4,
                                         /*rebalance_interval=*/10000));
  const auto reservation_for = [](uint32_t id) {
    return (1ULL << 20) + id * 4096;
  };
  std::vector<uint32_t> live;
  uint64_t expected_total = 0;
  for (uint32_t id = 1; id <= kInitialApps; ++id) {
    server.AddApp(id, reservation_for(id));
    live.push_back(id);
    expected_total += reservation_for(id);
  }

  const ZipfTable zipf(20000, 0.9);
  std::atomic<size_t> running{kThreads};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0xC0FFEE00ULL + t);
      for (size_t i = 0; i < kOpsPerThread; ++i) {
        const auto app_id = static_cast<uint32_t>(
            1 + rng.NextBounded(kInitialApps + kWaves + 4));
        const ItemMeta item =
            MakeItem(HashCombine(app_id, zipf.Sample(rng)));
        const Outcome outcome = server.Get(app_id, item);
        if (!outcome.hit && outcome.cacheable) server.Set(app_id, item);
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  // Churn on the main thread while the workers run: retire the oldest
  // tenant, admit a fresh one, rebalance every few waves.
  uint32_t next_id = kInitialApps + 1;
  for (uint32_t wave = 0; wave < kWaves; ++wave) {
    const uint32_t departing = live.front();
    live.erase(live.begin());
    EXPECT_TRUE(server.RemoveApp(departing));
    expected_total -= reservation_for(departing);
    server.AddApp(next_id, reservation_for(next_id));
    live.push_back(next_id);
    expected_total += reservation_for(next_id);
    ++next_id;
    if (wave % 4 == 3) server.Rebalance();
    if (running.load(std::memory_order_acquire) == 0) {
      // Workers already done — keep churning anyway; the remaining waves
      // still exercise removal with zero in-flight traffic.
    }
    std::this_thread::yield();
  }
  for (auto& worker : workers) worker.join();

  EXPECT_TRUE(server.CheckInvariants());
  EXPECT_EQ(server.TotalReservation(), expected_total);
  for (const uint32_t id : live) {
    EXPECT_EQ(server.AppReservation(id), reservation_for(id));
    EXPECT_EQ(SumShardReservations(server, id), reservation_for(id));
  }
  // Ops that raced a removal soft-failed before being counted, so the
  // counters still describe a consistent workload.
  const ClassStats total = server.TotalStats();
  EXPECT_GT(total.hits, 0u);
  EXPECT_LE(total.hits, total.gets);
}

}  // namespace
}  // namespace cliffhanger
