// Unit tests for the pure memcached-ASCII frame parser and the response
// serializers (src/net/ascii_protocol.{h,cc}) — every case here runs over
// in-memory byte buffers, no sockets. The incremental contract (a stream
// split at ANY byte boundary parses identically to the same bytes arriving
// at once) is checked exhaustively for a stream covering every command
// type; the randomized version lives in ascii_fuzz_test.cc.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/ascii_protocol.h"

namespace cliffhanger {
namespace net {
namespace {

// A parsed command with the views materialized, so it survives buffer
// compaction and can be compared across parsing schedules.
struct OwnedCommand {
  CommandType type;
  std::vector<std::string> keys;
  uint32_t flags = 0;
  int64_t exptime = 0;
  uint64_t cas_unique = 0;
  uint64_t delta = 0;
  bool noreply = false;
  std::string data;
  std::string error;

  bool operator==(const OwnedCommand& o) const {
    return type == o.type && keys == o.keys && flags == o.flags &&
           exptime == o.exptime && cas_unique == o.cas_unique &&
           delta == o.delta && noreply == o.noreply && data == o.data &&
           error == o.error;
  }
};

OwnedCommand Materialize(const Command& cmd) {
  OwnedCommand out;
  out.type = cmd.type;
  for (const auto key : cmd.keys) out.keys.emplace_back(key);
  out.flags = cmd.flags;
  out.exptime = cmd.exptime;
  out.cas_unique = cmd.cas_unique;
  out.delta = cmd.delta;
  out.noreply = cmd.noreply;
  out.data = std::string(cmd.data);
  out.error = std::string(cmd.error);
  return out;
}

// Feeds `stream` to a parser in chunks of the given sizes (cycling), the
// way a connection would: append a chunk to the buffer, drain every
// complete command, compact, repeat. The buffer is re-allocated to its
// exact size every round so ASan red-zones catch any over-read.
std::vector<OwnedCommand> ParseChunked(const std::string& stream,
                                       const std::vector<size_t>& chunks) {
  std::vector<OwnedCommand> commands;
  AsciiParser parser;
  std::string buffer;
  size_t fed = 0;
  size_t chunk_index = 0;
  while (true) {
    // Drain.
    while (true) {
      const auto exact = std::make_unique<char[]>(buffer.size());
      std::memcpy(exact.get(), buffer.data(), buffer.size());
      const std::string_view view(exact.get(), buffer.size());
      size_t consumed = 0;
      Command cmd;
      const ParseStatus status = parser.Next(view, &consumed, &cmd);
      EXPECT_LE(consumed, buffer.size());
      if (status == ParseStatus::kCommand) {
        commands.push_back(Materialize(cmd));
        buffer.erase(0, consumed);
        continue;
      }
      buffer.erase(0, consumed);
      if (consumed == 0) break;
    }
    if (fed == stream.size()) break;
    const size_t n = std::min(chunks[chunk_index % chunks.size()],
                              stream.size() - fed);
    chunk_index++;
    buffer.append(stream, fed, n);
    fed += n;
  }
  return commands;
}

std::vector<OwnedCommand> ParseAll(const std::string& stream) {
  return ParseChunked(stream, {stream.empty() ? size_t{1} : stream.size()});
}

// --- Single-command parses ------------------------------------------------

TEST(AsciiParserTest, SimpleGet) {
  const auto cmds = ParseAll("get foo\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].type, CommandType::kGet);
  ASSERT_EQ(cmds[0].keys.size(), 1u);
  EXPECT_EQ(cmds[0].keys[0], "foo");
}

TEST(AsciiParserTest, MultiKeyGetAndGets) {
  const auto cmds = ParseAll("get a bb ccc\r\ngets x y\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kGet);
  EXPECT_EQ(cmds[0].keys, (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_EQ(cmds[1].type, CommandType::kGets);
  EXPECT_EQ(cmds[1].keys, (std::vector<std::string>{"x", "y"}));
}

TEST(AsciiParserTest, SetWithDataBlock) {
  const auto cmds = ParseAll("set mykey 42 -1 5\r\nhello\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].type, CommandType::kSet);
  EXPECT_EQ(cmds[0].keys[0], "mykey");
  EXPECT_EQ(cmds[0].flags, 42u);
  EXPECT_EQ(cmds[0].exptime, -1);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[0].data, "hello");
}

TEST(AsciiParserTest, AddReplaceNoreply) {
  const auto cmds =
      ParseAll("add k 0 0 2 noreply\r\nab\r\nreplace k 1 0 0 noreply\r\n\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kAdd);
  EXPECT_TRUE(cmds[0].noreply);
  EXPECT_EQ(cmds[0].data, "ab");
  EXPECT_EQ(cmds[1].type, CommandType::kReplace);
  EXPECT_TRUE(cmds[1].noreply);
  EXPECT_EQ(cmds[1].data, "");
}

TEST(AsciiParserTest, DataBlockIsBinarySafe) {
  // Value bytes containing CRLF, nulls and command words must pass through
  // untouched: framing is by declared length, not by delimiters.
  const std::string payload("a\r\nget x\r\n\0b", 12);
  std::string stream = "set k 0 0 12\r\n" + payload + "\r\nget k\r\n";
  const auto cmds = ParseAll(stream);
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kSet);
  EXPECT_EQ(cmds[0].data, payload);
  EXPECT_EQ(cmds[1].type, CommandType::kGet);
}

TEST(AsciiParserTest, DeleteVariants) {
  const auto cmds = ParseAll("delete k\r\ndelete k2 noreply\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kDelete);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[1].type, CommandType::kDelete);
  EXPECT_TRUE(cmds[1].noreply);
  EXPECT_EQ(cmds[1].keys[0], "k2");
}

TEST(AsciiParserTest, CasCarriesTheCompareVersion) {
  const auto cmds =
      ParseAll("cas k 7 100 5 42\r\nhello\r\ncas k 0 0 0 9 noreply\r\n\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kCas);
  EXPECT_EQ(cmds[0].keys[0], "k");
  EXPECT_EQ(cmds[0].flags, 7u);
  EXPECT_EQ(cmds[0].exptime, 100);
  EXPECT_EQ(cmds[0].cas_unique, 42u);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[0].data, "hello");
  EXPECT_EQ(cmds[1].cas_unique, 9u);
  EXPECT_TRUE(cmds[1].noreply);
  EXPECT_EQ(cmds[1].data, "");
}

TEST(AsciiParserTest, AppendPrependParseLikeStorage) {
  const auto cmds =
      ParseAll("append k 0 0 3\r\nxyz\r\nprepend k 0 0 2 noreply\r\nab\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kAppend);
  EXPECT_EQ(cmds[0].data, "xyz");
  EXPECT_EQ(cmds[1].type, CommandType::kPrepend);
  EXPECT_TRUE(cmds[1].noreply);
  EXPECT_EQ(cmds[1].data, "ab");
}

TEST(AsciiParserTest, IncrDecrCarryTheDelta) {
  const auto cmds =
      ParseAll("incr counter 5\r\ndecr counter 18446744073709551615 noreply\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kIncr);
  EXPECT_EQ(cmds[0].keys[0], "counter");
  EXPECT_EQ(cmds[0].delta, 5u);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[1].type, CommandType::kDecr);
  EXPECT_EQ(cmds[1].delta, UINT64_MAX);
  EXPECT_TRUE(cmds[1].noreply);
}

TEST(AsciiParserTest, TouchCarriesExptime) {
  const auto cmds = ParseAll("touch k 300\r\ntouch k -1 noreply\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kTouch);
  EXPECT_EQ(cmds[0].exptime, 300);
  EXPECT_EQ(cmds[1].exptime, -1);
  EXPECT_TRUE(cmds[1].noreply);
}

TEST(AsciiParserTest, FlushAllVariants) {
  const auto cmds =
      ParseAll("flush_all\r\nflush_all 10\r\nflush_all noreply\r\n"
               "flush_all 5 noreply\r\n");
  ASSERT_EQ(cmds.size(), 4u);
  for (const auto& cmd : cmds) EXPECT_EQ(cmd.type, CommandType::kFlushAll);
  EXPECT_EQ(cmds[0].exptime, 0);
  EXPECT_EQ(cmds[1].exptime, 10);
  EXPECT_TRUE(cmds[2].noreply);
  EXPECT_EQ(cmds[3].exptime, 5);
  EXPECT_TRUE(cmds[3].noreply);
}

TEST(AsciiParserTest, AdminCommands) {
  const auto cmds = ParseAll("stats\r\nversion\r\nquit\r\n");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].type, CommandType::kStats);
  EXPECT_EQ(cmds[1].type, CommandType::kVersion);
  EXPECT_EQ(cmds[2].type, CommandType::kQuit);
}

TEST(AsciiParserTest, BareLfAcceptedLikeMemcached) {
  const auto cmds = ParseAll("get foo\nset k 0 0 1\nx\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kGet);
  EXPECT_EQ(cmds[1].type, CommandType::kSet);
  EXPECT_EQ(cmds[1].data, "x");
}

TEST(AsciiParserTest, RepeatedSpacesTolerated) {
  const auto cmds = ParseAll("get  a   b\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].keys, (std::vector<std::string>{"a", "b"}));
}

// --- Error cases: CLIENT_ERROR/ERROR exactly where memcached raises them --

TEST(AsciiParserTest, UnknownCommandIsError) {
  const auto cmds = ParseAll("bogus foo\r\n\r\nverbosity 1\r\n");
  ASSERT_EQ(cmds.size(), 3u);
  for (const auto& cmd : cmds) {
    EXPECT_EQ(cmd.type, CommandType::kProtocolError);
    EXPECT_EQ(cmd.error, kErrError);
  }
}

TEST(AsciiParserTest, GetWithoutKeysIsError) {
  const auto cmds = ParseAll("get\r\ngets\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].error, kErrError);
  EXPECT_EQ(cmds[1].error, kErrError);
}

TEST(AsciiParserTest, ControlCharacterKeysAreClientErrors) {
  // A bare '\r' (or any control byte) inside a key would be echoed into
  // VALUE response lines; memcached rejects such keys and so do we.
  const auto cmds =
      ParseAll("get a\rb\r\nset c\td 0 0 1\r\nx\r\nget ok\r\n");
  ASSERT_EQ(cmds.size(), 4u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrBadLine);
  EXPECT_EQ(cmds[1].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[1].error, kErrBadLine);
  // The rejected set's length is unknown, so its data block re-enters as
  // a (bogus) command line — exactly memcached's behaviour.
  EXPECT_EQ(cmds[2].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[2].error, kErrError);
  EXPECT_EQ(cmds[3].type, CommandType::kGet);
}

TEST(AsciiParserTest, OversizedKeyIsClientError) {
  const std::string long_key(kMaxKeyBytes + 1, 'k');
  const std::string max_key(kMaxKeyBytes, 'k');
  auto cmds = ParseAll("get " + long_key + "\r\nget " + max_key + "\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrBadLine);
  EXPECT_EQ(cmds[1].type, CommandType::kGet);  // exactly 250 is legal

  cmds = ParseAll("set " + long_key + " 0 0 1\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].error, kErrBadLine);
}

TEST(AsciiParserTest, MalformedStorageLineIsClientError) {
  const char* cases[] = {
      "set k x 0 5\r\n",           // non-numeric flags
      "set k 0 y 5\r\n",           // non-numeric exptime
      "set k 0 0 -5\r\n",          // negative bytes
      "set k 0 0\r\n",             // missing bytes
      "set k 0 0 5 maybe\r\n",     // junk where noreply belongs
      "set k 99999999999 0 5\r\n", // flags > uint32
      "set k 0 0 5 noreply extra\r\n",
      "delete\r\n",
      "delete k1 k2\r\n",
      "cas k 0 0 5\r\n",            // cas without the compare version
      "cas k 0 0 5 notanumber\r\n", // non-numeric compare version
      "incr\r\n",                   // arity
      "incr k 1 2\r\n",             // junk where noreply belongs
      "touch k\r\n",                // missing exptime
      "touch k 0 never\r\n",        // junk where noreply belongs
      "flush_all 1 2\r\n",          // too many arguments
      "flush_all -1\r\n",           // negative delay
  };
  for (const char* input : cases) {
    const auto cmds = ParseAll(input);
    ASSERT_EQ(cmds.size(), 1u) << input;
    EXPECT_EQ(cmds[0].type, CommandType::kProtocolError) << input;
    EXPECT_EQ(cmds[0].error, kErrBadLine) << input;
  }
}

TEST(AsciiParserTest, ArithmeticDeltaErrorsUseTheMemcachedLine) {
  // A well-shaped incr/decr line with a bad operand gets the dedicated
  // memcached error, and noreply survives (the line parsed cleanly enough
  // to know it); a malformed line shape stays a generic bad-line error.
  auto cmds = ParseAll("incr k abc\r\ndecr k 1.5 noreply\r\n"
                       "incr k 18446744073709551616\r\n");
  ASSERT_EQ(cmds.size(), 3u);
  EXPECT_EQ(cmds[0].error, kErrBadDelta);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[1].error, kErrBadDelta);
  EXPECT_TRUE(cmds[1].noreply);
  EXPECT_EQ(cmds[2].error, kErrBadDelta);  // u64 overflow
}

TEST(AsciiParserTest, TouchExptimeErrorsUseTheMemcachedLine) {
  const auto cmds = ParseAll("touch k never\r\ntouch k x noreply\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].error, kErrBadExptime);
  EXPECT_FALSE(cmds[0].noreply);
  EXPECT_EQ(cmds[1].error, kErrBadExptime);
  EXPECT_TRUE(cmds[1].noreply);
}

TEST(AsciiParserTest, BadDataChunkResyncsAtNextNewline) {
  // Data block not terminated by CRLF: the declared bytes are dropped, the
  // stream resyncs at the next newline, and the following command parses.
  const auto cmds = ParseAll("set k 0 0 5\r\nhelloXXX\r\nget k\r\n");
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrBadChunk);
  EXPECT_EQ(cmds[1].type, CommandType::kGet);
}

TEST(AsciiParserTest, OversizedValueIsServerErrorAndSwallowed) {
  const uint64_t declared = kMaxValueBytes + 1;
  std::string stream = "set big 0 0 " + std::to_string(declared) + "\r\n";
  stream.append(static_cast<size_t>(declared), 'v');
  stream += "\r\nget after\r\n";
  const auto cmds = ParseChunked(stream, {7919});  // prime-sized chunks
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrTooLarge);
  EXPECT_EQ(cmds[1].type, CommandType::kGet);
  EXPECT_EQ(cmds[1].keys[0], "after");
}

TEST(AsciiParserTest, OverlongLineIsRejectedAndDiscarded) {
  std::string stream = "get " + std::string(2 * kMaxLineBytes, 'a');
  stream += "\r\nversion\r\n";
  const auto cmds = ParseChunked(stream, {333});
  ASSERT_EQ(cmds.size(), 2u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrLineTooLong);
  EXPECT_EQ(cmds[1].type, CommandType::kVersion);
}

TEST(AsciiParserTest, MultigetKeyCountIsCapped) {
  // kMaxKeysPerGet bounds per-command response amplification: one more key
  // than the cap is a client error, the cap itself is fine.
  std::string at_cap = "get";
  for (size_t i = 0; i < kMaxKeysPerGet; ++i) at_cap += " k";
  std::string over_cap = at_cap + " k";
  auto cmds = ParseAll(at_cap + "\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].type, CommandType::kGet);
  EXPECT_EQ(cmds[0].keys.size(), kMaxKeysPerGet);
  cmds = ParseAll(over_cap + "\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrBadLine);
}

TEST(AsciiParserTest, OverlongLineErrorIsSegmentationInvariant) {
  // A line over the cap must produce exactly one "line too long" error
  // whether the newline was already buffered (whole-buffer parse) or
  // arrives later (trickled parse) — same outcome either way.
  std::string stream = "get " + std::string(kMaxLineBytes + 10, 'a');
  stream += "\r\nversion\r\n";
  for (const auto& cmds : {ParseAll(stream), ParseChunked(stream, {1})}) {
    ASSERT_EQ(cmds.size(), 2u);
    EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
    EXPECT_EQ(cmds[0].error, kErrLineTooLong);
    EXPECT_EQ(cmds[1].type, CommandType::kVersion);
  }
  // A multi-key get right at the cap (every key legal) parses both ways.
  std::string max_line = "get";
  for (int i = 0; i < 8; ++i) {
    max_line += " " + std::string(250, static_cast<char>('a' + i));
  }
  max_line += " " + std::string(35, 'z') + "\r\n";
  ASSERT_EQ(max_line.size(), kMaxLineBytes + 1);  // newline lands at the cap
  for (const auto& cmds :
       {ParseAll(max_line), ParseChunked(max_line, {1})}) {
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].type, CommandType::kGet);
    EXPECT_EQ(cmds[0].keys.size(), 9u);
  }
}

TEST(AsciiParserTest, NoreplySurvivesOntoCleanLineErrors) {
  // When a storage line parses cleanly but is rejected (too large / bad
  // chunk), the error command carries noreply so the responder can stay
  // silent like memcached; an unparseable line cannot know, so it doesn't.
  auto cmds = ParseAll("set k 0 0 9999999 noreply\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].error, kErrTooLarge);
  EXPECT_TRUE(cmds[0].noreply);

  cmds = ParseAll("set k 0 0 3 noreply\r\nab!X\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].error, kErrBadChunk);
  EXPECT_TRUE(cmds[0].noreply);

  cmds = ParseAll("set k zzz 0 3 noreply\r\n");
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].error, kErrBadLine);
  EXPECT_FALSE(cmds[0].noreply);
}

TEST(AsciiParserTest, HugeDeclaredBytesSaturatesTheSwallow) {
  // bytes near UINT64_MAX must not wrap the bytes+2 swallow arithmetic:
  // the error is emitted once and everything after is drained as data.
  const std::string stream =
      "set k 0 0 18446744073709551615\r\n" + std::string(4096, 'x') +
      "\r\nget never_parsed\r\n";
  const auto cmds = ParseChunked(stream, {777});
  ASSERT_EQ(cmds.size(), 1u);
  EXPECT_EQ(cmds[0].type, CommandType::kProtocolError);
  EXPECT_EQ(cmds[0].error, kErrTooLarge);
}

TEST(AsciiParserTest, NeedMoreOnPartialFrames) {
  AsciiParser parser;
  size_t consumed = 0;
  Command cmd;
  // Partial line.
  EXPECT_EQ(parser.Next("get fo", &consumed, &cmd), ParseStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
  // Complete line, incomplete data block.
  EXPECT_EQ(parser.Next("set k 0 0 5\r\nhel", &consumed, &cmd),
            ParseStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
  // Data block complete but terminator missing one byte.
  EXPECT_EQ(parser.Next("set k 0 0 5\r\nhello\r", &consumed, &cmd),
            ParseStatus::kNeedMore);
  EXPECT_EQ(consumed, 0u);
  EXPECT_EQ(parser.Next("set k 0 0 5\r\nhello\r\n", &consumed, &cmd),
            ParseStatus::kCommand);
  EXPECT_EQ(consumed, std::strlen("set k 0 0 5\r\nhello\r\n"));
}

// --- Incremental equivalence ----------------------------------------------

// A stream exercising every command type, errors and resyncs included.
std::string CanonicalStream() {
  return "get alpha beta\r\n"
         "gets gamma\r\n"
         "set key1 7 0 10\r\n0123456789\r\n"
         "add key2 0 -1 3 noreply\r\nabc\r\n"
         "replace key1 1 0 4\r\nwxyz\r\n"
         "cas key1 2 60 5 1234\r\nhello\r\n"
         "append key1 0 0 3\r\n+++\r\n"
         "prepend key1 0 0 3 noreply\r\n---\r\n"
         "incr counter 41\r\n"
         "decr counter 1 noreply\r\n"
         "incr counter nine\r\n"  // bad delta -> dedicated error
         "touch key1 3600\r\n"
         "touch key1 oops\r\n"    // bad exptime -> dedicated error
         "flush_all 30 noreply\r\n"
         "delete key2 noreply\r\n"
         "delete key1\r\n"
         "bogus line here\r\n"
         "set bad 0 0 4\r\nnope!\r\n"  // bad chunk -> resync
         "stats\r\n"
         "version\r\n"
         "quit\r\n";
}

TEST(AsciiParserTest, EveryByteSplitParsesIdentically) {
  const std::string stream = CanonicalStream();
  const auto reference = ParseAll(stream);
  ASSERT_GE(reference.size(), 12u);
  for (size_t split = 1; split < stream.size(); ++split) {
    const auto split_parse = ParseChunked(stream, {split, stream.size()});
    EXPECT_EQ(split_parse.size(), reference.size()) << "split=" << split;
    if (split_parse.size() == reference.size()) {
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_TRUE(split_parse[i] == reference[i])
            << "split=" << split << " command " << i;
      }
    }
  }
}

TEST(AsciiParserTest, ByteAtATimeParsesIdentically) {
  const std::string stream = CanonicalStream();
  const auto reference = ParseAll(stream);
  const auto trickled = ParseChunked(stream, {1});
  ASSERT_EQ(trickled.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(trickled[i] == reference[i]) << "command " << i;
  }
}

// --- Serializers ----------------------------------------------------------

TEST(AsciiSerializerTest, ValueResponses) {
  std::string out;
  AppendValueResponse(&out, "k", 42, "hello");
  EXPECT_EQ(out, "VALUE k 42 5\r\nhello\r\n");
  out.clear();
  AppendValueResponseCas(&out, "k", 0, "", 99);
  EXPECT_EQ(out, "VALUE k 0 0 99\r\n\r\n");
}

TEST(AsciiSerializerTest, StatAndErrorLines) {
  std::string out;
  AppendStat(&out, "cmd_get", uint64_t{12345});
  AppendStat(&out, "version", "x.y");
  AppendErrorLine(&out, kErrError);
  EXPECT_EQ(out, "STAT cmd_get 12345\r\nSTAT version x.y\r\nERROR\r\n");
}

}  // namespace
}  // namespace net
}  // namespace cliffhanger
