// Smoke test: a CacheServer in every AllocationMode serves a small Zipf
// workload end-to-end, populates its hit-rate statistics, and never hands a
// tenant more memory than its reservation.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "util/slab_geometry.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

constexpr uint32_t kAppId = 1;
constexpr uint64_t kReservation = 4ULL << 20;  // 4 MiB
constexpr size_t kRequests = 60000;

// Zipf GET stream over two value sizes (the shared canonical builder), so
// the server exercises (at least) two slab classes.
Trace MakeZipfTrace() {
  ZipfTraceSpec spec;
  spec.requests = kRequests;
  spec.app_id = kAppId;
  return MakeZipfMixTrace(spec);
}

struct ModeCase {
  AllocationMode mode;
  const char* name;
};

class AllocationModeSmoke : public ::testing::TestWithParam<ModeCase> {};

TEST_P(AllocationModeSmoke, ZipfReplayPopulatesStatsAndConservesCapacity) {
  ServerConfig config = GetParam().mode == AllocationMode::kCliffhanger
                            ? CliffhangerServerConfig()
                            : DefaultServerConfig();
  config.allocation = GetParam().mode;

  CacheServer server(config);
  AppCache& cache = server.AddApp(kAppId, kReservation);
  if (GetParam().mode == AllocationMode::kStatic) {
    // Split the reservation across the two classes the trace touches.
    const int small_class = SlabClassFor(16 + 64 + kItemOverhead);
    const int large_class = SlabClassFor(16 + 400 + kItemOverhead);
    ASSERT_NE(small_class, large_class);
    cache.SetStaticAllocation({{small_class, kReservation / 2},
                               {large_class, kReservation / 2}});
  }

  const Trace trace = MakeZipfTrace();
  const SimResult result = Replay(server, trace);

  // Hit-rate statistics are populated: every GET was counted, some hit and
  // some missed (the universe exceeds what the reservation can hold).
  EXPECT_EQ(result.total.gets, kRequests);
  EXPECT_GT(result.total.hits, 0u);
  EXPECT_LT(result.total.hits, result.total.gets);
  EXPECT_GT(result.hit_rate(), 0.0);
  EXPECT_LT(result.hit_rate(), 1.0);
  EXPECT_GT(result.app_hit_rate(kAppId), 0.0);

  // Per-class stats exist for both value-size populations.
  const auto infos = cache.ClassInfos();
  ASSERT_GE(infos.size(), 2u);
  for (const auto& info : infos) {
    EXPECT_GT(info.stats.gets, 0u) << "class " << info.slab_class;
    EXPECT_LE(info.used_bytes, info.capacity_bytes)
        << "class " << info.slab_class;
  }

  // Capacity conservation: the queues plus the unallocated pool account for
  // exactly the tenant's reservation, and no more.
  EXPECT_EQ(cache.allocated_bytes() + cache.free_bytes(), kReservation);
  EXPECT_LE(cache.allocated_bytes(), kReservation);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, AllocationModeSmoke,
    ::testing::Values(ModeCase{AllocationMode::kFcfs, "Fcfs"},
                      ModeCase{AllocationMode::kStatic, "Static"},
                      ModeCase{AllocationMode::kCliffhanger, "Cliffhanger"}),
    [](const ::testing::TestParamInfo<ModeCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cliffhanger
