// Sharding must not distort the simulation: replaying one fixed-seed Zipf
// trace through 1 shard vs K shards (single-threaded, so the interleaving
// is fixed) must be bit-deterministic per configuration and yield per-app
// hit rates within a small tolerance of each other — splitting a tenant's
// keys and reservation K ways leaves K statistically identical sub-caches,
// so the Cliffhanger hit-rate gains of allocation_mode_smoke_test survive.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/sharded_server.h"
#include "sim/experiment.h"
#include "util/rng.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

constexpr uint32_t kAppId = 1;
constexpr uint64_t kReservation = 4ULL << 20;  // 4 MiB
constexpr size_t kRequests = 80000;

// Same shape as allocation_mode_smoke_test (the shared canonical builder):
// Zipf GETs over two value sizes, so every shard exercises at least two
// competing slab classes.
Trace MakeZipfTrace() {
  ZipfTraceSpec spec;
  spec.requests = kRequests;
  spec.app_id = kAppId;
  return MakeZipfMixTrace(spec);
}

// Single-threaded demand-fill replay (the sharded analogue of Replay()).
ClassStats ReplaySharded(ShardedCacheServer& server, const Trace& trace) {
  for (const Request& r : trace) {
    const ItemMeta item{r.key, r.key_size, r.value_size};
    const Outcome outcome = server.Get(r.app_id, item);
    if (!outcome.hit && outcome.cacheable) server.Set(r.app_id, item);
  }
  return server.AppStats(kAppId);
}

struct ShardCase {
  AllocationMode mode;
  const char* name;
};

class ShardDeterminism : public ::testing::TestWithParam<ShardCase> {
 protected:
  [[nodiscard]] ShardedServerConfig Config(size_t num_shards) const {
    ShardedServerConfig config;
    config.server = GetParam().mode == AllocationMode::kCliffhanger
                        ? CliffhangerServerConfig()
                        : DefaultServerConfig();
    config.num_shards = num_shards;
    config.rebalance_interval_ops = 20000;
    return config;
  }

  [[nodiscard]] ClassStats Run(size_t num_shards, const Trace& trace) const {
    ShardedCacheServer server(Config(num_shards));
    server.AddApp(kAppId, kReservation);
    return ReplaySharded(server, trace);
  }
};

TEST_P(ShardDeterminism, SameTraceSameShardsIsBitDeterministic) {
  const Trace trace = MakeZipfTrace();
  for (const size_t shards : {1u, 4u}) {
    const ClassStats a = Run(shards, trace);
    const ClassStats b = Run(shards, trace);
    EXPECT_EQ(a.gets, b.gets) << shards << " shards";
    EXPECT_EQ(a.hits, b.hits) << shards << " shards";
    EXPECT_EQ(a.sets, b.sets) << shards << " shards";
    EXPECT_EQ(a.hill_shadow_hits, b.hill_shadow_hits) << shards << " shards";
  }
}

TEST_P(ShardDeterminism, HitRateSurvivesSharding) {
  const Trace trace = MakeZipfTrace();
  const ClassStats one = Run(1, trace);
  ASSERT_EQ(one.gets, kRequests);
  ASSERT_GT(one.hit_rate(), 0.0);
  ASSERT_LT(one.hit_rate(), 1.0);
  for (const size_t shards : {2u, 4u, 8u}) {
    const ClassStats sharded = Run(shards, trace);
    EXPECT_EQ(sharded.gets, kRequests) << shards << " shards";
    EXPECT_NEAR(sharded.hit_rate(), one.hit_rate(), 0.03)
        << shards << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ShardDeterminism,
    ::testing::Values(ShardCase{AllocationMode::kFcfs, "Fcfs"},
                      ShardCase{AllocationMode::kCliffhanger, "Cliffhanger"}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace cliffhanger
