// Tests for the core algorithms: hill climbing (Algorithm 1), cliff scaling
// (Algorithms 2-3) and the CacheServer that combines them.
#include <gtest/gtest.h>

#include "core/cache_server.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {
namespace {

class FakeQueue final : public ClimbableQueue {
 public:
  explicit FakeQueue(uint64_t capacity, uint64_t min = 0)
      : capacity_(capacity), min_(min) {}
  [[nodiscard]] uint64_t capacity_bytes() const override { return capacity_; }
  void SetCapacityBytes(uint64_t bytes) override { capacity_ = bytes; }
  [[nodiscard]] uint64_t min_capacity_bytes() const override { return min_; }

 private:
  uint64_t capacity_;
  uint64_t min_;
};

TEST(HillClimber, ShadowHitMovesMemoryTowardHitter) {
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 1024;
  HillClimber climber(config, 1);
  FakeQueue a(100 * 1024), b(100 * 1024);
  climber.AddQueue(&a);
  climber.AddQueue(&b);
  for (int i = 0; i < 50; ++i) climber.OnShadowHit(0);
  EXPECT_EQ(a.capacity_bytes(), 100 * 1024 + 50 * 1024u);
  EXPECT_EQ(b.capacity_bytes(), 100 * 1024 - 50 * 1024u);
  EXPECT_EQ(climber.total_transfers(), 50u);
}

TEST(HillClimber, ConservesTotalCapacity) {
  HillClimberConfig config;
  HillClimber climber(config, 2);
  std::vector<std::unique_ptr<FakeQueue>> queues;
  uint64_t total = 0;
  for (int i = 0; i < 5; ++i) {
    queues.push_back(std::make_unique<FakeQueue>(1 << 20, 1 << 16));
    total += queues.back()->capacity_bytes();
    climber.AddQueue(queues.back().get());
  }
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    climber.OnShadowHit(rng.NextBounded(5));
  }
  uint64_t after = 0;
  for (const auto& q : queues) after += q->capacity_bytes();
  EXPECT_EQ(after, total);
}

TEST(HillClimber, RespectsMinCapacity) {
  HillClimberConfig config;
  config.credit_bytes = 4096;
  config.quantum_bytes = 4096;
  HillClimber climber(config, 4);
  FakeQueue winner(64 * 1024, 0);
  FakeQueue donor(16 * 1024, 8 * 1024);
  climber.AddQueue(&winner);
  climber.AddQueue(&donor);
  for (int i = 0; i < 100; ++i) climber.OnShadowHit(0);
  EXPECT_GE(donor.capacity_bytes(), 8 * 1024u);
}

TEST(HillClimber, SingleQueueIsNoOp) {
  HillClimber climber({}, 5);
  FakeQueue only(1 << 20);
  climber.AddQueue(&only);
  climber.OnShadowHit(0);
  EXPECT_EQ(only.capacity_bytes(), 1u << 20);
}

TEST(HillClimber, EquilibriumTracksHitRatios) {
  // Queue 0 gets shadow hits 3x as often as queue 1: it should end with
  // more memory.
  HillClimberConfig config;
  HillClimber climber(config, 6);
  FakeQueue a(1 << 20, 1 << 16), b(1 << 20, 1 << 16);
  climber.AddQueue(&a);
  climber.AddQueue(&b);
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    climber.OnShadowHit(rng.NextBernoulli(0.75) ? 0 : 1);
  }
  EXPECT_GT(a.capacity_bytes(), b.capacity_bytes());
}

TEST(HillClimber, LargerQuantumBatchesTransfers) {
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 8 * 1024;  // transfer only every 8 credits
  HillClimber climber(config, 8);
  FakeQueue a(1 << 20), b(1 << 20);
  climber.AddQueue(&a);
  climber.AddQueue(&b);
  for (int i = 0; i < 7; ++i) climber.OnShadowHit(0);
  EXPECT_EQ(climber.total_transfers(), 0u);
  climber.OnShadowHit(0);
  EXPECT_EQ(climber.total_transfers(), 1u);
  EXPECT_EQ(a.capacity_bytes(), (1 << 20) + 8 * 1024u);
}

TEST(HillClimber, CreditClampBoundsPostUnfloorBurst) {
  // While every donor sits at its floor the winner's balance accumulates;
  // without a clamp the backlog drains as one burst the moment a donor
  // frees up. max_credit_quanta bounds that burst.
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 1024;
  config.max_credit_quanta = 4;
  HillClimber climber(config, 11);
  FakeQueue winner(64 * 1024, 0);
  FakeQueue donor(16 * 1024, 16 * 1024);  // floored: cannot donate
  climber.AddQueue(&winner);
  climber.AddQueue(&donor);
  for (int i = 0; i < 100; ++i) climber.OnShadowHit(0);
  EXPECT_EQ(climber.total_transfers(), 0u);
  EXPECT_EQ(climber.credits(0), 4 * 1024);  // clamped, not 100 * 1024

  donor.SetCapacityBytes(64 * 1024);  // unfloor: 48 KiB of spare room
  climber.OnShadowHit(0);
  EXPECT_EQ(climber.total_transfers(), 4u);  // burst capped at the clamp
  EXPECT_EQ(winner.capacity_bytes(), 64 * 1024 + 4 * 1024u);
}

TEST(HillClimber, UnclampedFlooredBacklogBurstsOnUnfloor) {
  // The regression the clamp fixes, pinned so the contrast stays visible:
  // with max_credit_quanta == 0 the same scenario drains the entire
  // 100-hit backlog the moment the donor unfloors.
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 1024;
  config.max_credit_quanta = 0;  // unbounded (the golden-pinned default)
  HillClimber climber(config, 11);
  FakeQueue winner(64 * 1024, 0);
  FakeQueue donor(16 * 1024, 16 * 1024);
  climber.AddQueue(&winner);
  climber.AddQueue(&donor);
  for (int i = 0; i < 100; ++i) climber.OnShadowHit(0);
  EXPECT_EQ(climber.total_transfers(), 0u);
  EXPECT_EQ(climber.credits(0), 100 * 1024);

  donor.SetCapacityBytes(64 * 1024);
  climber.OnShadowHit(0);  // drains until the donor re-floors: 48 quanta
  EXPECT_EQ(climber.total_transfers(), 48u);
  EXPECT_EQ(donor.capacity_bytes(), 16 * 1024u);
}

TEST(HillClimber, WeightedShadowHitScalesCredit) {
  // Cross-app cliff scaling reports amplified gradients by passing
  // weight > 1: one weighted hit must move as much memory as that many
  // unit hits would.
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 1024;
  HillClimber climber(config, 12);
  FakeQueue a(1 << 20), b(1 << 20);
  climber.AddQueue(&a);
  climber.AddQueue(&b);
  climber.OnShadowHit(0, 3.0);
  EXPECT_EQ(climber.total_transfers(), 3u);
  EXPECT_EQ(a.capacity_bytes(), (1 << 20) + 3 * 1024u);
  climber.OnShadowHit(0, 0.0);  // zero weight is a no-op
  EXPECT_EQ(climber.total_transfers(), 3u);
}

TEST(HillClimber, RemoveQueueTombstonesAndReusesLowestSlot) {
  HillClimberConfig config;
  config.credit_bytes = 1024;
  config.quantum_bytes = 1024;
  HillClimber climber(config, 13);
  FakeQueue a(1 << 20), b(1 << 20), c(1 << 20), d(1 << 20), e(1 << 20);
  ASSERT_EQ(climber.AddQueue(&a), 0u);
  ASSERT_EQ(climber.AddQueue(&b), 1u);
  ASSERT_EQ(climber.AddQueue(&c), 2u);

  climber.RemoveQueue(1);
  EXPECT_EQ(climber.num_queues(), 2u);
  EXPECT_FALSE(climber.has_queue(1));

  // With only a and c live, every debit and donation must land on c: the
  // tombstone is skipped by both victim selection and donor search.
  for (int i = 0; i < 10; ++i) climber.OnShadowHit(0);
  EXPECT_EQ(a.capacity_bytes(), (1 << 20) + 10 * 1024u);
  EXPECT_EQ(c.capacity_bytes(), (1 << 20) - 10 * 1024u);

  // Arrivals refill the table front-to-back, lowest freed slot first.
  EXPECT_EQ(climber.AddQueue(&d), 1u);
  climber.RemoveQueue(2);
  climber.RemoveQueue(0);
  EXPECT_EQ(climber.AddQueue(&e), 0u);
  EXPECT_EQ(climber.num_queues(), 2u);
}

// --- CliffScaler ---

PartitionConfig ScalerQueueConfig() {
  PartitionConfig pc;
  pc.queue.chunk_size = 64;
  pc.queue.tail_items = 8;
  pc.queue.cliff_shadow_items = 8;
  pc.queue.hill_shadow_bytes = 16 * 64;
  return pc;
}

CliffScalerConfig ScalerCfg() {
  CliffScalerConfig config;
  config.credit_bytes = 64 * 4;  // 4 items per event
  config.min_active_items = 100;
  config.min_pointer_items = 16;
  config.stable_accesses_to_engage = 0;  // no warm-up in unit tests
  return config;
}

TEST(CliffScaler, InactiveBelowThreshold) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(50 * 64);  // 50 items < threshold 100
  CliffScaler scaler(&q, ScalerCfg());
  EXPECT_FALSE(scaler.active());
  EXPECT_FALSE(q.partition_enabled());
}

TEST(CliffScaler, ActiveAboveThresholdButUnsplitUntilCliff) {
  // Lazy partitioning: detection runs on the whole queue; the physical
  // split happens only once a cliff is confirmed.
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());
  EXPECT_TRUE(scaler.active());
  EXPECT_FALSE(scaler.on_cliff());
  EXPECT_FALSE(q.partition_enabled());
  EXPECT_DOUBLE_EQ(scaler.left_pointer(), 1000.0);
  EXPECT_DOUBLE_EQ(scaler.right_pointer(), 1000.0);
  EXPECT_EQ(q.left().capacity_items(), 1000u);
}

GetResult Event(Side side, HitRegion region) {
  GetResult r;
  r.side = side;
  r.region = region;
  r.hit = region == HitRegion::kPhysical || region == HitRegion::kPhysicalTail;
  return r;
}

TEST(CliffScaler, DetectionShadowHitsSpreadPointers) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());  // credit = 4 items
  for (int i = 0; i < 10; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  EXPECT_DOUBLE_EQ(scaler.right_pointer(), 1040.0);
  EXPECT_DOUBLE_EQ(scaler.left_pointer(), 960.0);
}

TEST(CliffScaler, DetectionTailHitsPullPointersHome) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  scaler.OnAccess(Event(Side::kLeft, HitRegion::kPhysicalTail));
  EXPECT_DOUBLE_EQ(scaler.right_pointer(), 1016.0);
  EXPECT_DOUBLE_EQ(scaler.left_pointer(), 984.0);
}

TEST(CliffScaler, TailHitsAtOperatingPointAreGuarded) {
  // Algorithm 2's guards: pointers must not cross the operating point.
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());
  scaler.OnAccess(Event(Side::kLeft, HitRegion::kPhysicalTail));
  EXPECT_DOUBLE_EQ(scaler.right_pointer(), 1000.0);
  EXPECT_DOUBLE_EQ(scaler.left_pointer(), 1000.0);
}

TEST(CliffScaler, ConfirmedCliffSplitsQueueAndSetsRatio) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScalerConfig config = ScalerCfg();
  config.credit_bytes = 64 * 100;  // 100 items per event
  CliffScaler scaler(&q, config);
  // Five shadow hits: rp = 1500, lp = 500; both distances (500) exceed the
  // enter threshold max(4 * 100, 6% of 1000) = 400 -> on cliff.
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  EXPECT_TRUE(scaler.on_cliff());
  EXPECT_TRUE(q.partition_enabled());
  // Symmetric distances -> ratio 0.5.
  EXPECT_NEAR(scaler.ratio(), 0.5, 1e-9);
  // Algorithm 3 sizes apply on the next miss: left = lp * ratio = 250.
  scaler.OnMiss();
  EXPECT_EQ(q.left().capacity_items(), 250u);
  EXPECT_EQ(q.right().capacity_items(), 750u);
}

TEST(CliffScaler, RatioFollowsAlgorithm3OnSkewedCliff) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScalerConfig config = ScalerCfg();
  config.credit_bytes = 64 * 100;
  CliffScaler scaler(&q, config);
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  ASSERT_TRUE(scaler.on_cliff());
  // Per-side phase: two more right-shadow hits push rp to 1700.
  scaler.OnAccess(Event(Side::kRight, HitRegion::kCliffShadow));
  scaler.OnAccess(Event(Side::kRight, HitRegion::kCliffShadow));
  EXPECT_DOUBLE_EQ(scaler.right_pointer(), 1700.0);
  // distRight = 700, distLeft = 500 -> ratio = 7/12.
  EXPECT_NEAR(scaler.ratio(), 700.0 / 1200.0, 1e-9);
  scaler.OnMiss();
  // left = lp * ratio = 500 * 7/12 ~= 292.
  EXPECT_EQ(q.left().capacity_items(), 292u);
  EXPECT_EQ(q.right().capacity_items(), 708u);
}

TEST(CliffScaler, ResizeOnlyAppliedOnMiss) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScalerConfig config = ScalerCfg();
  config.credit_bytes = 64 * 100;
  CliffScaler scaler(&q, config);
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  ASSERT_TRUE(q.partition_enabled());
  // The split starts even; the skewed Algorithm 3 sizes wait for a miss.
  EXPECT_EQ(q.left().capacity_items(), 500u);
  scaler.OnMiss();
  EXPECT_EQ(q.left().capacity_items(), 250u);
}

TEST(CliffScaler, CollapsesBackWhenPointersComeHome) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScalerConfig config = ScalerCfg();
  config.credit_bytes = 64 * 100;
  CliffScaler scaler(&q, config);
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  ASSERT_TRUE(q.partition_enabled());
  // Tail hits on both sides walk the pointers back to the operating point.
  for (int i = 0; i < 10; ++i) {
    scaler.OnAccess(Event(Side::kRight, HitRegion::kPhysicalTail));
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kPhysicalTail));
  }
  EXPECT_FALSE(scaler.on_cliff());
  EXPECT_FALSE(q.partition_enabled());
  EXPECT_EQ(q.left().capacity_items(), 1000u);
}

TEST(CliffScaler, PartitionSumStaysAtOperatingPoint) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const Side side = rng.NextBernoulli(0.5) ? Side::kLeft : Side::kRight;
    const HitRegion region = rng.NextBernoulli(0.5)
                                 ? HitRegion::kCliffShadow
                                 : HitRegion::kPhysicalTail;
    scaler.OnAccess(Event(side, region));
    if (rng.NextBernoulli(0.3)) scaler.OnMiss();
    ASSERT_EQ(q.left().capacity_items() + q.right().capacity_items(), 1000u);
  }
}

TEST(CliffScaler, CapacityChangeReclamps) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScalerConfig config = ScalerCfg();
  config.credit_bytes = 64 * 100;
  CliffScaler scaler(&q, config);
  for (int i = 0; i < 5; ++i) {
    scaler.OnAccess(Event(Side::kLeft, HitRegion::kCliffShadow));
  }
  EXPECT_DOUBLE_EQ(scaler.left_pointer(), 500.0);
  q.SetCapacityBytes(400 * 64);
  scaler.OnCapacityChanged();
  // Left pointer may not exceed the new operating point.
  EXPECT_LE(scaler.left_pointer(), 400.0);
  EXPECT_GE(scaler.right_pointer(), 400.0);
}

TEST(CliffScaler, DeactivatesWhenShrunkBelowThreshold) {
  PartitionedSlabQueue q(ScalerQueueConfig());
  q.SetCapacityBytes(1000 * 64);
  CliffScaler scaler(&q, ScalerCfg());
  EXPECT_TRUE(scaler.active());
  q.SetCapacityBytes(50 * 64);
  scaler.OnCapacityChanged();
  EXPECT_FALSE(scaler.active());
  EXPECT_FALSE(q.partition_enabled());
}

// --- CacheServer ---

ItemMeta Item(uint64_t key, uint32_t value_size = 12) {
  ItemMeta m;
  m.key = key;
  m.key_size = 14;
  m.value_size = value_size;
  return m;
}

TEST(CacheServer, FcfsGrantsPagesUntilPoolExhausted) {
  ServerConfig config;
  config.page_size = 4096;
  CacheServer server(config);
  AppCache& app = server.AddApp(1, 16 * 4096);
  // Fill small items: the class grows page by page.
  for (uint64_t k = 0; k < 4096; ++k) {
    const Outcome o = server.Get(1, Item(k));
    if (!o.hit) server.Set(1, Item(k));
  }
  EXPECT_EQ(app.free_bytes(), 0u);
  EXPECT_EQ(app.allocated_bytes(), 16 * 4096u);
}

TEST(CacheServer, FcfsLargeClassCrowdsOutSmall) {
  // The Table 1 pathology: a large-item churn class grabs most pages even
  // though a small hot class would use them better.
  ServerConfig config;
  config.page_size = 4096;
  CacheServer server(config);
  server.AddApp(1, 64 * 4096);
  Rng rng(17);
  uint64_t big_key = 1 << 20;
  for (int i = 0; i < 20000; ++i) {
    if (rng.NextBernoulli(0.5)) {
      const ItemMeta small = Item(rng.NextBounded(3000), 12);
      if (!server.Get(1, small).hit) server.Set(1, small);
    } else {
      const ItemMeta big = Item(big_key++, 1900);  // class 5, never reused
      if (!server.Get(1, big).hit) server.Set(1, big);
    }
  }
  const AppCache* app = server.app(1);
  uint64_t small_cap = 0, big_cap = 0;
  for (const auto& info : app->ClassInfos()) {
    if (info.slab_class == 0) small_cap = info.capacity_bytes;
    if (info.slab_class == 5) big_cap = info.capacity_bytes;
  }
  EXPECT_GT(big_cap, small_cap * 4);
}

TEST(CacheServer, StaticAllocationIsFixed) {
  ServerConfig config;
  config.allocation = AllocationMode::kStatic;
  CacheServer server(config);
  AppCache& app = server.AddApp(1, 1 << 20);
  app.SetStaticAllocation({{0, 64 * 1024}, {5, 128 * 1024}});
  for (uint64_t k = 0; k < 5000; ++k) {
    if (!server.Get(1, Item(k)).hit) server.Set(1, Item(k));
  }
  uint64_t class0_cap = 0;
  for (const auto& info : app.ClassInfos()) {
    if (info.slab_class == 0) class0_cap = info.capacity_bytes;
  }
  EXPECT_EQ(class0_cap, 64 * 1024u);
}

TEST(CacheServer, CliffhangerShiftsMemoryToHotClass) {
  // Class 0 is hot (small Zipf working set), class 5 is one-hit churn.
  // The hill climber should move memory from the churn class to the hot
  // class, raising its capacity above the FCFS outcome.
  const auto run = [](AllocationMode mode) {
    ServerConfig config;
    config.allocation = mode;
    config.page_size = 4096;
    config.hill_shadow_bytes = 64 * 1024;
    CacheServer server(config);
    server.AddApp(1, 48 * 4096);
    Rng rng(21);
    ZipfTable zipf(6000, 1.1);
    uint64_t churn_key = 1 << 20;
    uint64_t gets = 0, hits = 0;
    for (int i = 0; i < 120000; ++i) {
      if (rng.NextBernoulli(0.7)) {
        const ItemMeta m = Item(zipf.Sample(rng), 12);
        ++gets;
        const Outcome o = server.Get(1, m);
        hits += o.hit ? 1 : 0;
        if (!o.hit) server.Set(1, m);
      } else {
        const ItemMeta m = Item(churn_key++, 1900);
        if (!server.Get(1, m).hit) server.Set(1, m);
      }
    }
    return static_cast<double>(hits) / static_cast<double>(gets);
  };
  const double fcfs = run(AllocationMode::kFcfs);
  const double cliffhanger = run(AllocationMode::kCliffhanger);
  EXPECT_GT(cliffhanger, fcfs + 0.03);
}

TEST(CacheServer, CrossAppClimbingMovesReservations) {
  ServerConfig config = ServerConfig{};
  config.allocation = AllocationMode::kCliffhanger;
  config.knobs.cross_app = true;
  config.page_size = 4096;
  CacheServer server(config);
  AppCache& hungry = server.AddApp(1, 32 * 4096);
  AppCache& idle = server.AddApp(2, 32 * 4096);
  Rng rng(23);
  ZipfTable zipf(8000, 0.9);
  // App 1 is under-provisioned and hot; app 2 idles with a tiny working set.
  for (int i = 0; i < 150000; ++i) {
    if (rng.NextBernoulli(0.9)) {
      const ItemMeta m = Item(zipf.Sample(rng), 12);
      if (!server.Get(1, m).hit) server.Set(1, m);
    } else {
      const ItemMeta m = Item(rng.NextBounded(16), 12);
      if (!server.Get(2, m).hit) server.Set(2, m);
    }
  }
  EXPECT_GT(hungry.reservation(), 32 * 4096u);
  EXPECT_LT(idle.reservation(), 32 * 4096u);
  EXPECT_EQ(hungry.reservation() + idle.reservation(), 64 * 4096u);
}

TEST(CacheServer, UncacheableItemsAreRejected) {
  ServerConfig config;
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  const Outcome o = server.Get(1, Item(1, 2 << 20));  // 2 MiB value
  EXPECT_FALSE(o.cacheable);
  server.Set(1, Item(1, 2 << 20));  // must not crash
}

TEST(CacheServer, DeleteRemovesItem) {
  ServerConfig config;
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  server.Set(1, Item(5));
  EXPECT_TRUE(server.Get(1, Item(5)).hit);
  server.Delete(1, Item(5));
  EXPECT_FALSE(server.Get(1, Item(5)).hit);
}

TEST(CacheServer, StatsAccumulate) {
  ServerConfig config;
  CacheServer server(config);
  server.AddApp(1, 1 << 20);
  server.Set(1, Item(1));
  (void)server.Get(1, Item(1));
  (void)server.Get(1, Item(2));
  const ClassStats stats = server.TotalStats();
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.sets, 1u);
  EXPECT_NEAR(stats.hit_rate(), 0.5, 1e-12);
}

TEST(CacheServer, ShadowOverheadStaysUnderPaperBound) {
  // §5.7: worst case ~0.5 MB per application.
  ServerConfig config;
  config.allocation = AllocationMode::kCliffhanger;
  CacheServer server(config);
  AppCache& app = server.AddApp(1, 8 << 20);
  Rng rng(29);
  for (int i = 0; i < 100000; ++i) {
    const ItemMeta m = Item(rng.NextBounded(100000), 12);
    if (!server.Get(1, m).hit) server.Set(1, m);
  }
  EXPECT_LT(app.shadow_overhead_bytes(), 600u * 1024u);
}

}  // namespace
}  // namespace cliffhanger
