// Property/fuzz tests for the ASCII frame parser: randomized byte-split
// schedules over valid command streams must parse identically to the
// one-shot parse, and corrupted/garbage streams (split mid-token, oversized
// keys, bad numbers, missing CRLF, binary noise) must never crash the
// parser, never make it over-read (every probe runs on an exact-sized heap
// buffer so ASan red-zones fence the ends), never let it stall without
// consuming input, and must produce errors exactly where the protocol
// demands them. The CI ASan+UBSan job runs this suite; see
// .github/workflows/ci.yml.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "net/ascii_protocol.h"
#include "util/rng.h"

namespace cliffhanger {
namespace net {
namespace {

struct OwnedCommand {
  CommandType type;
  std::vector<std::string> keys;
  uint32_t flags = 0;
  int64_t exptime = 0;
  uint64_t cas_unique = 0;
  uint64_t delta = 0;
  bool noreply = false;
  std::string data;
  std::string error;

  bool operator==(const OwnedCommand& o) const {
    return type == o.type && keys == o.keys && flags == o.flags &&
           exptime == o.exptime && cas_unique == o.cas_unique &&
           delta == o.delta && noreply == o.noreply && data == o.data &&
           error == o.error;
  }
};

OwnedCommand Materialize(const Command& cmd) {
  OwnedCommand out;
  out.type = cmd.type;
  for (const auto key : cmd.keys) out.keys.emplace_back(key);
  out.flags = cmd.flags;
  out.exptime = cmd.exptime;
  out.cas_unique = cmd.cas_unique;
  out.delta = cmd.delta;
  out.noreply = cmd.noreply;
  out.data = std::string(cmd.data);
  out.error = std::string(cmd.error);
  return out;
}

// Drives the parser the way a connection would, with the unconsumed buffer
// copied into an exact-sized heap allocation before every probe (so any
// out-of-bounds read trips ASan). Asserts liveness: between two reads the
// parser either produces commands or consumes bytes; it never loops.
class FuzzHarness {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); Drain(); }

  void Drain() {
    size_t safety = 0;
    while (true) {
      ASSERT_LT(++safety, 1u << 20) << "parser failed to make progress";
      const auto exact = std::make_unique<char[]>(buffer_.size());
      std::memcpy(exact.get(), buffer_.data(), buffer_.size());
      const std::string_view view(exact.get(), buffer_.size());
      size_t consumed = 0;
      Command cmd;
      const ParseStatus status = parser_.Next(view, &consumed, &cmd);
      ASSERT_LE(consumed, buffer_.size()) << "parser over-consumed";
      if (status == ParseStatus::kCommand) {
        commands_.push_back(Materialize(cmd));
        ASSERT_GT(consumed + cmd.data.size() + cmd.error.size(), 0u)
            << "zero-width command";
        buffer_.erase(0, consumed);
        continue;
      }
      buffer_.erase(0, consumed);
      if (consumed == 0) break;
    }
  }

  [[nodiscard]] const std::vector<OwnedCommand>& commands() const {
    return commands_;
  }
  [[nodiscard]] size_t buffered() const { return buffer_.size(); }

 private:
  AsciiParser parser_;
  std::string buffer_;
  std::vector<OwnedCommand> commands_;
};

std::vector<OwnedCommand> ReferenceParse(const std::string& stream) {
  FuzzHarness harness;
  harness.Feed(stream);
  return harness.commands();
}

// --- Seed corpus ---------------------------------------------------------
//
// Deterministic replay of the committed seed corpus (tests/corpus/, path
// injected by CMake as CLIFFHANGER_CORPUS_DIR). Defined FIRST in this file
// — gtest runs TESTs in definition order — so every known-tricky input is
// exercised before any randomized phase: a corpus regression fails fast and
// reproducibly, independent of the fuzz seeds. Files named `err_*` encode
// canonical protocol violations and must produce at least one protocol
// error; the rest are valid-but-tricky streams (binary values containing
// protocol text, multigets, zero-length values) that must parse cleanly.
TEST(AsciiFuzzTest, SeedCorpusReplaysWithoutCrashOrStall) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(CLIFFHANGER_CORPUS_DIR)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty())
      << "seed corpus missing or empty: " << CLIFFHANGER_CORPUS_DIR;

  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << path;
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes.empty()) << path;
    const bool expects_error =
        path.filename().string().rfind("err_", 0) == 0;

    // Whole-buffer feed plus two fixed byte-split schedules: chunk size 1
    // hits every mid-token resume point, 7 straddles CRLFs and length
    // fields. All deterministic — no Rng in this phase.
    for (const size_t chunk : {bytes.size(), size_t{1}, size_t{7}}) {
      FuzzHarness harness;
      size_t fed = 0;
      while (fed < bytes.size()) {
        const size_t n = std::min(chunk, bytes.size() - fed);
        harness.Feed(std::string_view(bytes).substr(fed, n));
        if (testing::Test::HasFatalFailure()) return;
        fed += n;
      }
      if (expects_error) {
        size_t errors = 0;
        for (const OwnedCommand& cmd : harness.commands()) {
          if (cmd.type == CommandType::kProtocolError) ++errors;
        }
        EXPECT_GE(errors, 1u)
            << path << " (chunk " << chunk << "): an err_* corpus file must "
            << "produce at least one protocol error";
      } else {
        for (const OwnedCommand& cmd : harness.commands()) {
          EXPECT_NE(cmd.type, CommandType::kProtocolError)
              << path << " (chunk " << chunk << "): unexpected error '"
              << cmd.error << "'";
        }
      }
    }
  }
}

// --- Valid-stream generation ---------------------------------------------

std::string RandomKey(Rng& rng) {
  // Mostly short keys; occasionally right at the 250-byte limit.
  const size_t len = rng.NextBernoulli(0.05)
                         ? kMaxKeyBytes
                         : 1 + rng.NextBounded(24);
  std::string key(len, 'x');
  for (char& c : key) {
    c = static_cast<char>('!' + rng.NextBounded(94));  // printable, no space
  }
  return key;
}

std::string RandomValue(Rng& rng) {
  const size_t len = rng.NextBounded(600);
  std::string value(len, '\0');
  for (char& c : value) {
    c = static_cast<char>(rng.NextBounded(256));  // fully binary
  }
  return value;
}

std::string RandomCommand(Rng& rng) {
  switch (rng.NextBounded(12)) {
    case 0: {
      std::string cmd = rng.NextBernoulli(0.5) ? "get" : "gets";
      const size_t keys = 1 + rng.NextBounded(4);
      for (size_t i = 0; i < keys; ++i) cmd += " " + RandomKey(rng);
      return cmd + "\r\n";
    }
    case 1:
    case 2:
    case 3: {
      const char* verbs[] = {"set", "add", "replace", "append", "prepend"};
      const std::string value = RandomValue(rng);
      std::string cmd = std::string(verbs[rng.NextBounded(5)]) + " " +
                        RandomKey(rng) + " " +
                        std::to_string(rng.NextBounded(1u << 16)) + " " +
                        std::to_string(static_cast<int64_t>(
                            rng.NextBounded(1000)) - 500) +
                        " " + std::to_string(value.size());
      if (rng.NextBernoulli(0.3)) cmd += " noreply";
      return cmd + "\r\n" + value + "\r\n";
    }
    case 4:
      return "delete " + RandomKey(rng) +
             (rng.NextBernoulli(0.3) ? " noreply\r\n" : "\r\n");
    case 5:
      return "stats\r\n";
    case 6:
      return "version\r\n";
    case 7: {
      const std::string value = RandomValue(rng);
      std::string cmd = "cas " + RandomKey(rng) + " " +
                        std::to_string(rng.NextBounded(1u << 16)) + " " +
                        std::to_string(rng.NextBounded(3600)) + " " +
                        std::to_string(value.size()) + " " +
                        std::to_string(rng.NextBounded(1u << 30));
      if (rng.NextBernoulli(0.3)) cmd += " noreply";
      return cmd + "\r\n" + value + "\r\n";
    }
    case 8: {
      std::string cmd = (rng.NextBernoulli(0.5) ? "incr " : "decr ") +
                        RandomKey(rng) + " " +
                        std::to_string(rng.NextBounded(1u << 20));
      if (rng.NextBernoulli(0.3)) cmd += " noreply";
      return cmd + "\r\n";
    }
    case 9: {
      std::string cmd = "touch " + RandomKey(rng) + " " +
                        std::to_string(static_cast<int64_t>(
                            rng.NextBounded(7200)) - 10);
      if (rng.NextBernoulli(0.3)) cmd += " noreply";
      return cmd + "\r\n";
    }
    case 10: {
      std::string cmd = "flush_all";
      if (rng.NextBernoulli(0.5)) {
        cmd += " " + std::to_string(rng.NextBounded(600));
      }
      if (rng.NextBernoulli(0.3)) cmd += " noreply";
      return cmd + "\r\n";
    }
    default:
      return "get " + RandomKey(rng) + "\r\n";
  }
}

TEST(AsciiFuzzTest, RandomSplitsOfValidStreamsParseIdentically) {
  Rng rng(0xF0221);
  for (int round = 0; round < 40; ++round) {
    std::string stream;
    const size_t n_commands = 1 + rng.NextBounded(20);
    for (size_t i = 0; i < n_commands; ++i) stream += RandomCommand(rng);
    const auto reference = ReferenceParse(stream);
    EXPECT_EQ(reference.size(), n_commands);

    for (int schedule = 0; schedule < 10; ++schedule) {
      FuzzHarness harness;
      size_t fed = 0;
      while (fed < stream.size()) {
        const size_t n = std::min<size_t>(1 + rng.NextBounded(23),
                                          stream.size() - fed);
        harness.Feed(std::string_view(stream).substr(fed, n));
        if (testing::Test::HasFatalFailure()) return;
        fed += n;
      }
      ASSERT_EQ(harness.commands().size(), reference.size())
          << "round " << round << " schedule " << schedule;
      for (size_t i = 0; i < reference.size(); ++i) {
        EXPECT_TRUE(harness.commands()[i] == reference[i])
            << "round " << round << " schedule " << schedule << " cmd " << i;
      }
      EXPECT_EQ(harness.buffered(), 0u);
    }
  }
}

// --- Corruption ----------------------------------------------------------

std::string Corrupt(const std::string& stream, Rng& rng) {
  std::string corrupted = stream;
  const size_t mutations = 1 + rng.NextBounded(8);
  for (size_t m = 0; m < mutations && !corrupted.empty(); ++m) {
    const size_t pos = rng.NextBounded(corrupted.size());
    switch (rng.NextBounded(4)) {
      case 0:  // flip a byte
        corrupted[pos] = static_cast<char>(rng.NextBounded(256));
        break;
      case 1:  // delete a byte (breaks declared lengths / terminators)
        corrupted.erase(pos, 1);
        break;
      case 2:  // insert garbage
        corrupted.insert(pos, std::string(1 + rng.NextBounded(5),
                                          static_cast<char>(
                                              rng.NextBounded(256))));
        break;
      default:  // duplicate a slice (mid-token splits, repeated CRLF)
        corrupted.insert(pos, corrupted.substr(
                                  pos, rng.NextBounded(corrupted.size() -
                                                       pos + 1)));
        break;
    }
  }
  return corrupted;
}

TEST(AsciiFuzzTest, CorruptedStreamsNeverCrashOrStall) {
  Rng rng(0xBADF00D);
  for (int round = 0; round < 150; ++round) {
    std::string stream;
    const size_t n_commands = 1 + rng.NextBounded(10);
    for (size_t i = 0; i < n_commands; ++i) stream += RandomCommand(rng);
    const std::string corrupted = Corrupt(stream, rng);

    FuzzHarness harness;
    size_t fed = 0;
    while (fed < corrupted.size()) {
      const size_t n = std::min<size_t>(1 + rng.NextBounded(97),
                                        corrupted.size() - fed);
      harness.Feed(std::string_view(corrupted).substr(fed, n));
      if (testing::Test::HasFatalFailure()) return;
      fed += n;
    }
    // Whatever was buffered at EOF must be an incomplete frame the parser
    // is still entitled to wait on — never more than one storage frame
    // (line + declared data + terminator, with read-chunk slack on the
    // line, since rejection triggers on the probe after the cap crossing).
    EXPECT_LE(harness.buffered(), kMaxLineBytes + kMaxValueBytes + 256);
  }
}

TEST(AsciiFuzzTest, PureBinaryGarbageNeverCrashes) {
  Rng rng(0x6A2BA6E);
  for (int round = 0; round < 30; ++round) {
    std::string garbage(1 + rng.NextBounded(8000), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    FuzzHarness harness;
    size_t fed = 0;
    while (fed < garbage.size()) {
      const size_t n = std::min<size_t>(1 + rng.NextBounded(509),
                                        garbage.size() - fed);
      harness.Feed(std::string_view(garbage).substr(fed, n));
      if (testing::Test::HasFatalFailure()) return;
      fed += n;
    }
    // Any emitted command from garbage must be an error, a (coincidental)
    // retrieval, or an admin word that happened to assemble.
    for (const auto& cmd : harness.commands()) {
      if (cmd.type == CommandType::kProtocolError) {
        EXPECT_FALSE(cmd.error.empty());
      }
    }
  }
}

// After arbitrary corruption, a clean newline boundary must always bring
// the parser back: a valid sentinel command appended after a resync point
// parses. (Swallowed data blocks are exempt — a corrupted declared length
// legitimately eats trailing bytes.)
TEST(AsciiFuzzTest, ParserResyncsAfterCorruptionAtLineBoundary) {
  Rng rng(0x5EC04E3);
  for (int round = 0; round < 60; ++round) {
    // Line-shaped corruption only (no storage commands), so no swallow
    // state can survive past the final newline.
    std::string noise;
    const size_t lines = 1 + rng.NextBounded(6);
    for (size_t i = 0; i < lines; ++i) {
      std::string line(rng.NextBounded(300), '\0');
      for (char& c : line) {
        c = static_cast<char>(rng.NextBounded(255) + 1);  // no NUL
        if (c == '\n') c = 'x';
      }
      noise += line + "\r\n";
    }
    const std::string stream = noise + "version\r\n";
    const auto commands = ReferenceParse(stream);
    ASSERT_FALSE(commands.empty());
    EXPECT_EQ(commands.back().type, CommandType::kVersion)
        << "round " << round;
  }
}

// Targeted memcached-equivalence table: the exact error for each canonical
// protocol violation.
TEST(AsciiFuzzTest, CanonicalViolationsProduceMemcachedErrors) {
  struct Case {
    const char* input;
    std::string_view expected_error;
  };
  const Case cases[] = {
      {"frobnicate\r\n", kErrError},
      {"\r\n", kErrError},
      {"stats reset\r\n", kErrError},
      {"get\r\n", kErrError},
      {"set k notanumber 0 5\r\n", kErrBadLine},
      {"set k 0 0 5 neverreply\r\n", kErrBadLine},
      {"set k 0 0 18446744073709551616\r\n", kErrBadLine},  // u64 overflow
      {"delete\r\n", kErrBadLine},
      {"set k 0 0 3\r\nabcd\r\n", kErrBadChunk},
      {"cas k 0 0 3\r\n", kErrBadLine},         // missing compare version
      {"cas k 0 0 3 -1\r\n", kErrBadLine},      // signed compare version
      {"append k 0 0\r\n", kErrBadLine},        // missing bytes
      {"incr k\r\n", kErrBadLine},              // missing delta
      {"incr k five\r\n", kErrBadDelta},
      {"decr k 1 1\r\n", kErrBadLine},          // junk where noreply belongs
      {"touch k soon\r\n", kErrBadExptime},
      {"touch k\r\n", kErrBadLine},
      {"flush_all never\r\n", kErrBadLine},
      {"flush_all 1 2 3\r\n", kErrBadLine},
  };
  for (const Case& c : cases) {
    const auto commands = ReferenceParse(c.input);
    ASSERT_FALSE(commands.empty()) << c.input;
    EXPECT_EQ(commands.front().type, CommandType::kProtocolError) << c.input;
    EXPECT_EQ(commands.front().error, c.expected_error) << c.input;
  }
}

}  // namespace
}  // namespace net
}  // namespace cliffhanger
