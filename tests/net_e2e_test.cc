// End-to-end tests of the network front: a real SocketServer on an
// ephemeral loopback port, a CacheAdapter over a ShardedCacheServer, and
// AsciiClient driving actual TCP sockets. Carries the `concurrency` ctest
// label (the server is inherently multi-threaded) so the CI TSan job
// sanitizes it; the ASan job runs it as part of the full suite.
//
// The centerpiece is the determinism test: a seeded Zipf trace replayed
// once through the library ShardedCacheServer (mirroring the adapter's
// size-bookkeeping exactly) and once over a loopback socket must leave the
// core with bit-identical hit/miss/set/shadow counters — proof that the
// parser, connection layer and adapter do not distort the operation
// stream.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/sharded_server.h"
#include "net/ascii_client.h"
#include "net/cache_adapter.h"
#include "net/replay_keys.h"
#include "net/socket_server.h"
#include "sim/experiment.h"
#include "util/argparse.h"
#include "util/hashing.h"
#include "util/slab_geometry.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

// Every test runs once per event-loop backend: the poll(2) baseline, the
// epoll burst loop and the io_uring backend must be behaviorally
// indistinguishable on the wire (the burst backends batch per-shard
// downstream and uring batches syscalls on top, so this triples as the A/B
// proof that neither batching layer distorts responses). kUring runs fall
// back to epoll transparently when the kernel denies io_uring — the
// fixture still exercises the probe + fallback path in that case, and the
// uring-specific assertions skip themselves.
class NetE2eTest : public ::testing::TestWithParam<net::SocketBackend> {
 protected:
  void StartServer(
      const ShardedServerConfig& config,
      const std::vector<std::pair<uint32_t, uint64_t>>& apps,
      uint32_t default_app) {
    // The network front always serves real bytes: values live in the
    // core's per-shard arenas (zero-copy GET), not in an adapter side
    // table, so every socket server runs with in-arena value storage on.
    ShardedServerConfig value_config = config;
    value_config.server.store_values = true;
    server_ = std::make_unique<ShardedCacheServer>(value_config);
    for (const auto& [app_id, reservation] : apps) {
      server_->AddApp(app_id, reservation);
    }
    net::CacheAdapterConfig adapter_config;
    adapter_config.default_app_id = default_app;
    if (fake_now_.load() != 0) {
      // Deterministic expiry: the adapter reads this test-controlled
      // second counter instead of the wall clock. No sleeps anywhere.
      adapter_config.clock = [this] { return fake_now_.load(); };
    }
    adapter_ = std::make_unique<net::CacheAdapter>(server_.get(),
                                                   adapter_config);
    net::SocketServerConfig net_config = net_config_template_;
    net_config.port = 0;  // ephemeral
    net_config.backend = GetParam();
    socket_server_ =
        std::make_unique<net::SocketServer>(net_config, adapter_.get());
    std::string error;
    ASSERT_TRUE(socket_server_->Start(&error)) << error;
    ASSERT_GT(socket_server_->port(), 0);
  }

  void StartDefaultServer() {
    ShardedServerConfig config;
    config.server = DefaultServerConfig();
    config.num_shards = 4;
    StartServer(config, {{1, 8 * kMiB}}, 1);
  }

  // Fake-clock variant: call before any traffic; advance with fake_now_.
  void StartDefaultServerAt(uint32_t now_s) {
    fake_now_.store(now_s);
    StartDefaultServer();
  }

  net::AsciiClient MakeClient() {
    net::AsciiClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", socket_server_->port()));
    return client;
  }

  void TearDown() override {
    if (socket_server_) socket_server_->Stop();
  }

  std::unique_ptr<ShardedCacheServer> server_;
  std::unique_ptr<net::CacheAdapter> adapter_;
  std::unique_ptr<net::SocketServer> socket_server_;
  std::atomic<uint32_t> fake_now_{0};  // 0 = wall clock
  // Tests tune knobs (shrink threshold, backlog) here before StartServer;
  // port and backend are always overridden by the fixture.
  net::SocketServerConfig net_config_template_;
};

std::string BackendName(
    const ::testing::TestParamInfo<net::SocketBackend>& info) {
  switch (info.param) {
    case net::SocketBackend::kPoll:
      return "Poll";
    case net::SocketBackend::kEpoll:
      return "Epoll";
    case net::SocketBackend::kUring:
      return "Uring";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(Backends, NetE2eTest,
                         ::testing::Values(net::SocketBackend::kPoll,
                                           net::SocketBackend::kEpoll,
                                           net::SocketBackend::kUring),
                         BackendName);

TEST_P(NetE2eTest, StartStopIsCleanAndIdempotent) {
  StartDefaultServer();
  EXPECT_TRUE(socket_server_->running());
  socket_server_->Stop();
  EXPECT_FALSE(socket_server_->running());
  socket_server_->Stop();  // idempotent
}

TEST_P(NetE2eTest, BasicRoundTrip) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();

  EXPECT_EQ(client.Set("hello", "world", 42),
            net::AsciiClient::StoreResult::kStored);
  auto value = client.Get("hello");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, "world");
  EXPECT_EQ(value->flags, 42u);

  EXPECT_FALSE(client.Get("absent").has_value());

  // add: only when absent; replace: only when present.
  EXPECT_EQ(client.Add("hello", "other"),
            net::AsciiClient::StoreResult::kNotStored);
  EXPECT_EQ(client.Add("fresh", "f"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Replace("fresh", "g"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Replace("absent", "x"),
            net::AsciiClient::StoreResult::kNotStored);
  EXPECT_EQ(client.Get("fresh")->data, "g");

  EXPECT_TRUE(client.Delete("hello"));
  EXPECT_FALSE(client.Delete("hello"));  // NOT_FOUND the second time
  EXPECT_FALSE(client.Get("hello").has_value());

  EXPECT_EQ(client.Version(), std::string(net::kServerVersion));
  client.Quit();
}

TEST_P(NetE2eTest, GetsReturnsMonotonicCas) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("k", "v1"), net::AsciiClient::StoreResult::kStored);
  const auto first = client.Gets("k");
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(client.Set("k", "v2"), net::AsciiClient::StoreResult::kStored);
  const auto second = client.Gets("k");
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->cas, first->cas);
  EXPECT_EQ(second->data, "v2");
}

TEST_P(NetE2eTest, MultiGetMixedHitsAndMisses) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("a", "1"), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("c", "3"), net::AsciiClient::StoreResult::kStored);
  const auto values = client.MultiGet({"a", "b", "c", "d"});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a").data, "1");
  EXPECT_EQ(values.at("c").data, "3");
}

TEST_P(NetE2eTest, MultiGetBeyondServerKeyCapIsBatchedByClient) {
  // The server caps keys per get line (kMaxKeysPerGet); the client batches
  // transparently, so a 100-key multiget still resolves every hit.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "mk" + std::to_string(i);
    keys.push_back(key);
    if (i % 3 == 0) {
      ASSERT_EQ(client.Set(key, "v" + std::to_string(i)),
                net::AsciiClient::StoreResult::kStored);
    }
  }
  const auto values = client.MultiGet(keys);
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();
  EXPECT_EQ(values.size(), 34u);  // i = 0, 3, ..., 99
  EXPECT_EQ(values.at("mk99").data, "v99");
  EXPECT_EQ(values.count("mk1"), 0u);
}

TEST_P(NetE2eTest, PipelinedNoreplyStormThenRead) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  // 200 noreply sets in one write: no response expected until the final
  // get, which must see the last value.
  std::string blob;
  for (int i = 0; i < 200; ++i) {
    const std::string value = "v" + std::to_string(i);
    blob += "set storm 0 0 " + std::to_string(value.size()) +
            " noreply\r\n" + value + "\r\n";
  }
  blob += "get storm\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VALUE storm 0 4");
  std::string data;
  ASSERT_TRUE(client.ReadBytes(4, &data));
  EXPECT_EQ(data, "v199");
  ASSERT_TRUE(client.ReadLine(&line));  // trailing CRLF of the data block
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "END");
}

TEST_P(NetE2eTest, BinarySafeValues) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const std::string payload("\r\nEND\r\nget x\r\n\0\xff\x01", 17);
  ASSERT_EQ(client.Set("bin", payload),
            net::AsciiClient::StoreResult::kStored);
  const auto value = client.Get("bin");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, payload);
}

TEST_P(NetE2eTest, LargeValueRoundTripExercisesPartialWrites) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::string big(512 * 1024, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i * 31) % 26);
  }
  ASSERT_EQ(client.Set("big", big), net::AsciiClient::StoreResult::kStored);
  const auto value = client.Get("big");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, big);
}

TEST_P(NetE2eTest, OversizedValueRejectedConnectionSurvives) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const size_t declared = net::kMaxValueBytes + 1;
  std::string frame =
      "set big 0 0 " + std::to_string(declared) + "\r\n";
  frame += std::string(declared, 'z');
  frame += "\r\n";
  ASSERT_TRUE(client.SendRaw(frame));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrTooLarge);
  // The declared block was swallowed; the connection is still in sync.
  EXPECT_EQ(client.Version(), std::string(net::kServerVersion));
}

TEST_P(NetE2eTest, ProtocolErrorsMatchMemcached) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::string line;
  ASSERT_TRUE(client.SendRaw("bogus\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "ERROR");
  ASSERT_TRUE(client.SendRaw("set k bad 0 5\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrBadLine);
  ASSERT_TRUE(client.SendRaw("set k 0 0 3\r\nabXY\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrBadChunk);
  // Still usable after every error.
  EXPECT_EQ(client.Set("k", "v"), net::AsciiClient::StoreResult::kStored);
}

TEST_P(NetE2eTest, NoreplyErrorsAreSuppressedSoPipelinesStayAligned) {
  // An oversized noreply set must produce NO response (memcached
  // semantics): the next command's reply is the next bytes on the wire.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const size_t declared = net::kMaxValueBytes + 1;
  std::string frame = "set big 0 0 " + std::to_string(declared) +
                      " noreply\r\n" + std::string(declared, 'z') + "\r\n" +
                      "version\r\n";
  ASSERT_TRUE(client.SendRaw(frame));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VERSION " + std::string(net::kServerVersion));
}

TEST_P(NetE2eTest, PipelineThenFinLikeNetcat) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_TRUE(client.SendRaw("set k 0 0 3\r\nabc\r\nget k\r\n"));
  client.ShutdownWrite();
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "STORED");
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VALUE k 0 3");
  std::string data;
  ASSERT_TRUE(client.ReadBytes(3, &data));
  EXPECT_EQ(data, "abc");
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "END");
}

TEST_P(NetE2eTest, FinWhileWriteBackpressuredStillAnswersEveryFrame) {
  // Pipeline responses worth several times the server's write cap, then
  // FIN immediately: the worker must keep parsing buffered frames across
  // backpressure pauses and answer every one before closing.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const std::string big(512 * 1024, 'b');
  ASSERT_EQ(client.Set("big", big), net::AsciiClient::StoreResult::kStored);

  constexpr int kGets = 20;  // 20 x 512 KiB = 10 MiB >> 4 MiB write cap
  std::string blob;
  for (int i = 0; i < kGets; ++i) blob += "get big\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  client.ShutdownWrite();
  for (int i = 0; i < kGets; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    ASSERT_EQ(line, "VALUE big 0 524288") << "response " << i;
    std::string data;
    ASSERT_TRUE(client.ReadBytes(big.size(), &data));
    EXPECT_EQ(data, big);
    ASSERT_TRUE(client.ReadLine(&line));  // data-block CRLF
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line, "END");
  }
}

TEST_P(NetE2eTest, StatsSurfaceProtocolAndCoreCounters) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("s1", "v"), net::AsciiClient::StoreResult::kStored);
  client.Get("s1");
  client.Get("nope");
  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_set"), "1");
  EXPECT_EQ(stats.at("cmd_get"), "2");
  EXPECT_EQ(stats.at("get_hits"), "1");
  EXPECT_EQ(stats.at("get_misses"), "1");
  EXPECT_EQ(stats.at("num_shards"), "4");
  EXPECT_EQ(stats.at("bytes_stored"), "1");
  EXPECT_EQ(stats.at("bytes"), "1");          // live payload, from the arena
  EXPECT_EQ(stats.at("bytes_read"), "1");     // payload accepted by stores
  EXPECT_EQ(stats.at("bytes_written"), "1");  // payload served by get hits
  EXPECT_EQ(stats.at("cliffhanger_gets"), "2");
  EXPECT_EQ(stats.at("cliffhanger_sets"), "1");
  EXPECT_EQ(stats.at("app_1_reservation_bytes"),
            std::to_string(8 * kMiB));
}

// The accounting IS the storage: `bytes` and the per-class slab lines come
// straight from the value arenas, so storing, serving, deleting and
// re-slabbing known payloads must move them by exactly the known amounts.
TEST_P(NetE2eTest, StatsReportRealArenaMemoryAccounting) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();

  const std::string small_a(100, 'a');
  const std::string small_b(100, 'b');
  const std::string big_c(1000, 'c');
  ASSERT_EQ(client.Set("ma", small_a), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("mb", small_b), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("mc", big_c), net::AsciiClient::StoreResult::kStored);
  const int small_class = SlabClassFor(ExactFootprint(2, 100));
  const int big_class = SlabClassFor(ExactFootprint(2, 1000));
  ASSERT_GE(small_class, 0);
  ASSERT_NE(small_class, big_class);

  const auto slab_stat = [&](const std::map<std::string, std::string>& stats,
                             int cls, const char* field) -> uint64_t {
    const std::string name =
        "slabs:" + std::to_string(cls) + ":" + field;
    const auto it = stats.find(name);
    return it == stats.end() ? 0 : std::stoull(it->second);
  };

  auto stats = client.Stats();
  EXPECT_EQ(stats.at("bytes"), "1200");
  EXPECT_EQ(stats.at("bytes_stored"), "1200");
  EXPECT_EQ(stats.at("bytes_read"), "1200");
  EXPECT_EQ(stats.at("bytes_written"), "0");
  EXPECT_EQ(slab_stat(stats, small_class, "chunk_size"),
            static_cast<uint64_t>(ChunkSize(small_class)));
  EXPECT_EQ(slab_stat(stats, small_class, "used_chunks"), 2u);
  EXPECT_EQ(slab_stat(stats, big_class, "chunk_size"),
            static_cast<uint64_t>(ChunkSize(big_class)));
  EXPECT_EQ(slab_stat(stats, big_class, "used_chunks"), 1u);

  // Serving moves bytes_written by the payload size; nothing else moves.
  EXPECT_EQ(client.Get("mc")->data, big_c);
  stats = client.Stats();
  EXPECT_EQ(stats.at("bytes"), "1200");
  EXPECT_EQ(stats.at("bytes_written"), "1000");

  // Eager reclamation: a delete returns the chunk (and the bytes) at once.
  EXPECT_TRUE(client.Delete("mb"));
  stats = client.Stats();
  EXPECT_EQ(stats.at("bytes"), "1100");
  EXPECT_EQ(slab_stat(stats, small_class, "used_chunks"), 1u);

  // A cross-class overwrite frees the old chunk and charges the new class.
  ASSERT_EQ(client.Set("ma", big_c), net::AsciiClient::StoreResult::kStored);
  stats = client.Stats();
  EXPECT_EQ(stats.at("bytes"), "2000");
  EXPECT_EQ(slab_stat(stats, small_class, "used_chunks"), 0u);
  EXPECT_EQ(slab_stat(stats, big_class, "used_chunks"), 2u);
  EXPECT_EQ(stats.at("bytes_read"), "2200");
}

// Regression: `add` (and replace/cas) decide presence from the core, not
// from any adapter-side record of what was once stored. Under the old
// side-table design an evicted key still looked "live" to `add` until some
// GET noticed the eviction — so an add issued right after the eviction was
// wrongly rejected with NOT_STORED.
TEST_P(NetE2eTest, AddSucceedsImmediatelyAfterEviction) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 1;  // one LRU: the coldest key's eviction is certain
  StartServer(config, {{1, 256 * 1024}}, 1);
  net::AsciiClient client = MakeClient();

  const std::string value(400, 'v');
  ASSERT_EQ(client.Set("vic", value), net::AsciiClient::StoreResult::kStored);
  // ~800 KiB of fresh keys through a 256 KiB reservation: "vic", never
  // touched again, is long gone. Crucially there is NO get on "vic"
  // between the eviction and the add.
  std::string blob;
  for (int i = 0; i < 2000; ++i) {
    blob += "set churn" + std::to_string(i) + " 0 0 400 noreply\r\n" + value +
            "\r\n";
  }
  ASSERT_TRUE(client.SendRaw(blob));
  ASSERT_EQ(client.Version(), std::string(net::kServerVersion));  // sync

  // Same slab class as the churn values, so FCFS class capacity exists and
  // the accepted add is also physically retained (a smaller value would
  // land in a zero-capacity class and shadow out — correct FCFS
  // calcification, but not what this regression is about).
  const std::string revived(400, 'r');
  EXPECT_EQ(client.Add("vic", revived),
            net::AsciiClient::StoreResult::kStored);
  const auto got = client.Get("vic");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, revived);
}

// Regression for the per-key metadata retention leak: the old adapter kept
// ~40 bytes per key EVER stored (a size/cas record that out-lived
// eviction). Now the only per-key state anywhere is the core's, and the
// core's is bounded by residency — churning many times more unique keys
// than the reservation holds must leave the tracked-key count at the
// resident population, not the ever-stored population.
TEST_P(NetE2eTest, KeyChurnDoesNotAccumulatePerKeyMetadata) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 4;
  StartServer(config, {{1, 1 * kMiB}}, 1);
  net::AsciiClient client = MakeClient();

  // Enough uniques to sail past the config-derived tracking bound
  // (resident chunks + shadow-ghost capacities, ~41k for this geometry).
  constexpr int kUnique = 120000;
  const std::string value(32, 'x');
  std::string blob;
  for (int i = 0; i < kUnique; ++i) {
    blob += "set churn" + std::to_string(i) + " 0 0 32 noreply\r\n" + value +
            "\r\n";
    if (blob.size() > 256 * 1024) {
      ASSERT_TRUE(client.SendRaw(blob));
      blob.clear();
    }
  }
  ASSERT_TRUE(client.SendRaw(blob));
  ASSERT_EQ(client.Version(), std::string(net::kServerVersion));  // sync

  const ShardedCacheServer::ValueStats vs = server_->MergedValueStats();
  // Tracked = resident slots + shadow ghosts, both capped by configuration
  // (reservation / chunk and the shadow capacities) — never by how many
  // keys have ever been stored.
  EXPECT_GT(vs.tracked_keys, 0u);
  EXPECT_LT(vs.tracked_keys, static_cast<uint64_t>(kUnique) / 2);
  EXPECT_LE(vs.value_bytes, 1 * kMiB);
}

TEST_P(NetE2eTest, AppPrefixRoutesToRegisteredApps) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 4;
  StartServer(config, {{1, 4 * kMiB}, {2, 4 * kMiB}}, 1);
  net::AsciiClient client = MakeClient();

  ASSERT_EQ(client.Set("plain", "a"), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("app2:k", "bb"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Get("app2:k")->data, "bb");

  const ClassStats app1 = server_->AppStats(1);
  const ClassStats app2 = server_->AppStats(2);
  EXPECT_EQ(app1.sets, 1u);
  EXPECT_EQ(app2.sets, 1u);
  EXPECT_EQ(app2.gets, 1u);
  EXPECT_EQ(app2.hits, 1u);

  // Unregistered app: soft failure, nothing reaches the core.
  std::string line;
  ASSERT_TRUE(client.SendRaw("set app9:k 0 0 1\r\nx\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "SERVER_ERROR unknown application");
  EXPECT_FALSE(client.Get("app9:k").has_value());
}

TEST_P(NetE2eTest, ManyConnectionsHammerConcurrently) {
  StartDefaultServer();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      net::AsciiClient client;
      if (!client.Connect("127.0.0.1", socket_server_->port())) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(0x7EA4 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "h" + std::to_string(t) + "_" + std::to_string(rng.NextBounded(64));
        if (rng.NextBernoulli(0.5)) {
          if (client.Set(key, "value") !=
              net::AsciiClient::StoreResult::kStored) {
            failures.fetch_add(1);
            return;
          }
        } else {
          const auto value = client.Get(key);
          if (value.has_value() && value->data != "value") {
            failures.fetch_add(1);
            return;
          }
        }
      }
      client.Quit();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const auto counters = adapter_->counters();
  EXPECT_GT(counters.cmd_get + counters.cmd_set,
            static_cast<uint64_t>(kThreads) * kOpsPerThread - 1);
}

// --- The new verbs: cas / arithmetic / concat / touch / flush ------------

TEST_P(NetE2eTest, CasStoresOnlyAtTheRightVersion) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  EXPECT_EQ(client.Cas("nope", "v", 1), SR::kNotFound);

  ASSERT_EQ(client.Set("k", "v1"), SR::kStored);
  const auto versioned = client.Gets("k");
  ASSERT_TRUE(versioned.has_value());

  // Right version stores; the stored value gets a NEW version, so the
  // same cas again is EXISTS (exactly memcached's optimistic-locking
  // contract).
  EXPECT_EQ(client.Cas("k", "v2", versioned->cas), SR::kStored);
  EXPECT_EQ(client.Cas("k", "v3", versioned->cas), SR::kExists);
  EXPECT_EQ(client.Get("k")->data, "v2");

  const auto fresh = client.Gets("k");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_GT(fresh->cas, versioned->cas);
  EXPECT_EQ(client.Cas("k", "v3", fresh->cas), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, "v3");

  // A cas-stored value can change size (re-slab path runs under the hood).
  const std::string big(4096, 'x');
  const auto before_big = client.Gets("k");
  ASSERT_TRUE(before_big.has_value());
  EXPECT_EQ(client.Cas("k", big, before_big->cas), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, big);
}

TEST_P(NetE2eTest, IncrDecrFollowMemcachedArithmetic) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Absent key: NOT_FOUND is a clean miss (no error).
  EXPECT_FALSE(client.Incr("counter", 1).has_value());
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();

  ASSERT_EQ(client.Set("counter", "5"), SR::kStored);
  EXPECT_EQ(client.Incr("counter", 3), std::optional<uint64_t>(8));
  EXPECT_EQ(client.Get("counter")->data, "8");

  // decr saturates at zero; incr wraps modulo 2^64.
  EXPECT_EQ(client.Decr("counter", 100), std::optional<uint64_t>(0));
  EXPECT_EQ(client.Get("counter")->data, "0");
  ASSERT_EQ(client.Set("counter", "18446744073709551615"), SR::kStored);
  EXPECT_EQ(client.Incr("counter", 2), std::optional<uint64_t>(1));
  // The rewrite shrank the value from 20 digits to 1 — re-slab flowed
  // through and GET serves the new bytes.
  EXPECT_EQ(client.Get("counter")->data, "1");

  // Arithmetic bumps the cas version like any store.
  const auto before = client.Gets("counter");
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(client.Incr("counter", 1), std::optional<uint64_t>(2));
  const auto after = client.Gets("counter");
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->cas, before->cas);

  // Non-numeric value: the dedicated memcached error, value untouched.
  ASSERT_EQ(client.Set("word", "hello"), SR::kStored);
  EXPECT_FALSE(client.Incr("word", 1).has_value());
  EXPECT_NE(client.last_error().find(
                "cannot increment or decrement non-numeric value"),
            std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.Get("word")->data, "hello");

  // Raw numeric-reply grammar: the bare decimal, CRLF-terminated.
  ASSERT_TRUE(client.SendRaw("incr counter 7\r\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "9");
}

TEST_P(NetE2eTest, AppendPrependSpliceAndReslab) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Both verbs demand an existing item.
  EXPECT_EQ(client.Append("missing", "x"), SR::kNotStored);
  EXPECT_EQ(client.Prepend("missing", "x"), SR::kNotStored);

  ASSERT_EQ(client.Set("k", "bb", /*flags=*/7), SR::kStored);
  const auto v0 = client.Gets("k");
  ASSERT_TRUE(v0.has_value());
  EXPECT_EQ(client.Append("k", "cc"), SR::kStored);
  EXPECT_EQ(client.Prepend("k", "aa"), SR::kStored);
  const auto v1 = client.Gets("k");
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->data, "aabbcc");
  // Flags survive a splice (memcached ignores the command-line flags);
  // the cas version does not.
  EXPECT_EQ(v1->flags, 7u);
  EXPECT_GT(v1->cas, v0->cas);

  // Splicing past the hard value cap rejects but keeps the original.
  const std::string half(600 * 1024, 'z');
  ASSERT_EQ(client.Set("big", half), SR::kStored);
  std::string line;
  ASSERT_TRUE(client.SendRaw("append big 0 0 " +
                             std::to_string(half.size()) + "\r\n" + half +
                             "\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrTooLarge);
  EXPECT_EQ(client.Get("big")->data, half);
}

TEST_P(NetE2eTest, ExpiryIsLazyAndDeterministicUnderTheInjectedClock) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Relative exptime: 10 seconds from now => absolute second 1010.
  ASSERT_EQ(client.Set("ttl", "v", 0, /*exptime=*/10), SR::kStored);
  EXPECT_TRUE(client.Get("ttl").has_value());
  fake_now_.store(1009);
  EXPECT_TRUE(client.Get("ttl").has_value());  // second 1009: still alive
  fake_now_.store(1010);
  EXPECT_FALSE(client.Get("ttl").has_value());  // expiry second: gone
  // Expired stays gone (the first miss reclaimed it) and a fresh store
  // resurrects the key with a new TTL.
  EXPECT_FALSE(client.Get("ttl").has_value());
  ASSERT_EQ(client.Set("ttl", "v2", 0, 10), SR::kStored);
  EXPECT_EQ(client.Get("ttl")->data, "v2");

  // Negative exptime: stored but immediately expired, like memcached.
  ASSERT_EQ(client.Set("dead", "v", 0, -1), SR::kStored);
  EXPECT_FALSE(client.Get("dead").has_value());

  // An exptime past the 30-day cutoff is an absolute unix second, not a
  // relative offset.
  const int64_t absolute = 3000000000LL;
  ASSERT_EQ(client.Set("abs", "v", 0, absolute), SR::kStored);
  EXPECT_TRUE(client.Get("abs").has_value());
  fake_now_.store(static_cast<uint32_t>(absolute) - 1);
  EXPECT_TRUE(client.Get("abs").has_value());
  fake_now_.store(static_cast<uint32_t>(absolute));
  EXPECT_FALSE(client.Get("abs").has_value());

  const auto stats = client.Stats();
  EXPECT_GE(std::stoull(stats.at("get_expired")), 3ull);
}

TEST_P(NetE2eTest, ExpiredKeysActAbsentForEveryConditionalVerb) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  ASSERT_EQ(client.Set("k", "5", 0, 10), SR::kStored);
  fake_now_.store(1010);  // expired, not yet observed by any GET

  EXPECT_EQ(client.Replace("k", "x"), SR::kNotStored);
  EXPECT_EQ(client.Append("k", "x"), SR::kNotStored);
  EXPECT_FALSE(client.Incr("k", 1).has_value());
  EXPECT_TRUE(client.last_error().empty());
  EXPECT_FALSE(client.Touch("k", 100));
  EXPECT_EQ(client.Cas("k", "x", 1), SR::kNotFound);
  EXPECT_FALSE(client.Delete("k"));  // NOT_FOUND, like memcached
  // add treats the expired key as absent and stores fresh.
  EXPECT_EQ(client.Add("k", "new", 0, 0), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, "new");
}

TEST_P(NetE2eTest, TouchExtendsAndCutsLifetimes) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  EXPECT_FALSE(client.Touch("missing", 100));
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();

  ASSERT_EQ(client.Set("k", "v", 0, 10), SR::kStored);  // dies at 1010
  fake_now_.store(1005);
  EXPECT_TRUE(client.Touch("k", 100));  // now dies at 1105
  fake_now_.store(1050);
  EXPECT_TRUE(client.Get("k").has_value());
  fake_now_.store(1105);
  EXPECT_FALSE(client.Get("k").has_value());

  // touch -1 expires immediately; touch 0 makes an item permanent.
  ASSERT_EQ(client.Set("cut", "v"), SR::kStored);
  EXPECT_TRUE(client.Touch("cut", -1));
  EXPECT_FALSE(client.Get("cut").has_value());
  ASSERT_EQ(client.Set("keep", "v", 0, 5), SR::kStored);
  EXPECT_TRUE(client.Touch("keep", 0));
  fake_now_.store(2000000);
  EXPECT_TRUE(client.Get("keep").has_value());

  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_touch"), "4");
  EXPECT_EQ(stats.at("touch_hits"), "3");
  EXPECT_EQ(stats.at("touch_misses"), "1");
}

TEST_P(NetE2eTest, FlushAllInvalidatesLazilyWithOptionalDelay) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  ASSERT_EQ(client.Set("a", "1"), SR::kStored);
  ASSERT_EQ(client.Set("b", "2"), SR::kStored);
  fake_now_.store(1001);
  EXPECT_TRUE(client.FlushAll());
  EXPECT_FALSE(client.Get("a").has_value());
  EXPECT_FALSE(client.Get("b").has_value());
  // Items stored at/after the flush point survive.
  ASSERT_EQ(client.Set("c", "3"), SR::kStored);
  EXPECT_TRUE(client.Get("c").has_value());

  // Delayed flush: alive until the scheduled second, dead after.
  ASSERT_EQ(client.Set("d", "4"), SR::kStored);
  EXPECT_TRUE(client.FlushAll(/*delay=*/10));  // fires at 1011
  fake_now_.store(1005);
  EXPECT_TRUE(client.Get("d").has_value());
  fake_now_.store(1011);
  EXPECT_FALSE(client.Get("d").has_value());
  EXPECT_FALSE(client.Get("c").has_value());  // c predates the point too

  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_flush"), "2");
}

// --- Satellite regression: Stop() must never wedge -----------------------

TEST_P(NetE2eTest, StopDoesNotWedgeWithPendingAndIdleConnections) {
  StartDefaultServer();
  // A mix of abusive client states: connected-but-silent, half-written
  // frames, and unread pending responses. None may wedge Stop.
  std::vector<net::AsciiClient> clients(6);
  for (size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i].Connect("127.0.0.1", socket_server_->port()));
  }
  ASSERT_TRUE(clients[1].SendRaw("get half"));          // partial frame
  ASSERT_TRUE(clients[2].SendRaw("set k 0 0 100\r\nabc"));  // partial data
  ASSERT_TRUE(clients[3].SendRaw("version\r\n"));       // unread response
  clients[4].ShutdownWrite();                           // half-closed

  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    socket_server_->Stop();
    stopped.store(true);
  });
  // Generous deadline: a wedged Stop (blocking accept, lost wakeup) hangs
  // forever, so any completion below the cap is a pass.
  for (int i = 0; i < 500 && !stopped.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(stopped.load()) << "SocketServer::Stop wedged";
  if (!stopped.load()) stopper.detach();  // don't hang the test binary
  else stopper.join();
  EXPECT_FALSE(socket_server_->running());
}

TEST_P(NetE2eTest, RepeatedStartStopCyclesStayClean) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 2;
  StartServer(config, {{1, 4 * kMiB}}, 1);
  for (int round = 0; round < 3; ++round) {
    net::AsciiClient client = MakeClient();
    EXPECT_EQ(client.Set("k", "v"), net::AsciiClient::StoreResult::kStored);
    socket_server_->Stop();
    ASSERT_FALSE(socket_server_->running());
    net::SocketServerConfig net_config;
    net_config.port = 0;
    net_config.num_workers = 2;
    net_config.backend = GetParam();
    socket_server_ =
        std::make_unique<net::SocketServer>(net_config, adapter_.get());
    std::string error;
    ASSERT_TRUE(socket_server_->Start(&error)) << error;
  }
}

// --- Satellite regressions: fd exhaustion, wake drain, buffer shrink ------

// UBSan's vptr check verifies an object is readable via a pipe(2) probe
// (sanitizer IsAccessibleMemoryRange), which itself fails with EMFILE while
// the descriptor table is full — so any std::thread start/exit during
// exhaustion reports a bogus "invalid vptr" on libstdc++'s thread _State
// and, with -fno-sanitize-recover, kills the process. Type-name
// suppressions can't match either (the probe failure means the name is
// never read). Tests that join threads while exhausted must release first
// under ASan+UBSan builds.
#if defined(__SANITIZE_ADDRESS__)
#define CLIFFHANGER_VPTR_CHECK_NEEDS_FDS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CLIFFHANGER_VPTR_CHECK_NEEDS_FDS 1
#endif
#endif

// Exhausts this process's descriptor table (open("/dev/null") until EMFILE),
// optionally leaving `spare` descriptors free; restores everything on
// Release or destruction. Lets a test drive the server's accept path into
// real EMFILE without mocking.
class FdHog {
 public:
  ~FdHog() { Release(); }
  bool Exhaust(size_t spare) {
    for (;;) {
      const int fd = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
      if (fd < 0) break;
      fds_.push_back(fd);
    }
    if (fds_.size() < spare) {
      Release();
      return false;
    }
    for (size_t i = 0; i < spare; ++i) {
      ::close(fds_.back());
      fds_.pop_back();
    }
    return true;
  }
  void Release() {
    for (const int fd : fds_) ::close(fd);
    fds_.clear();
  }

 private:
  std::vector<int> fds_;
};

TEST_P(NetE2eTest, FdExhaustionStallsAcceptorAndRecoversOnClose) {
  StartDefaultServer();
  net::AsciiClient pinned = MakeClient();
  ASSERT_EQ(pinned.Set("k", "v"), net::AsciiClient::StoreResult::kStored);

  FdHog hog;
  ASSERT_TRUE(hog.Exhaust(/*spare=*/1));
  // The last free descriptor becomes the client socket; the kernel
  // completes the handshake into the backlog, but the server's accept4 has
  // no descriptor left and must stall — without dying or spinning a core.
  net::AsciiClient blocked;
  ASSERT_TRUE(blocked.Connect("127.0.0.1", socket_server_->port()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(socket_server_->active_connections(), 1u);

  // While stalled the acceptor parks in its wake-pipe backoff poll: a few
  // wakeups per 50ms window, not a hot loop.
  const uint64_t stall_before = socket_server_->acceptor_loop_iterations();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LT(socket_server_->acceptor_loop_iterations() - stall_before, 64u);

  // Closing a connection frees one descriptor and pokes the wake pipe; the
  // acceptor must pick up the parked connection from the backlog.
  pinned.Quit();
  bool adopted = false;
  for (int i = 0; i < 1000 && !adopted; ++i) {
    adopted = socket_server_->total_connections() >= 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(adopted) << "acceptor never recovered from fd exhaustion";
  EXPECT_EQ(blocked.Version(), std::string(net::kServerVersion));
  hog.Release();

  // Regression for the undrained wake pipe: the wake bytes written during
  // the stall must be consumed, or the always-readable pipe turns the
  // acceptor's blocking poll into a hot spin forever after.
  const uint64_t idle_before = socket_server_->acceptor_loop_iterations();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LT(socket_server_->acceptor_loop_iterations() - idle_before, 16u);
}

TEST_P(NetE2eTest, StopIsPromptDuringFdExhaustionBackoff) {
  StartDefaultServer();
  FdHog hog;
  ASSERT_TRUE(hog.Exhaust(/*spare=*/1));
  // A parked handshake keeps the listen fd readable, so the acceptor sits
  // in the EMFILE backoff path when Stop arrives.
  net::AsciiClient blocked;
  ASSERT_TRUE(blocked.Connect("127.0.0.1", socket_server_->port()));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));

#ifdef CLIFFHANGER_VPTR_CHECK_NEEDS_FDS
  // Stop() joins threads, and thread exit trips the vptr-probe false
  // positive described at FdHog. The acceptor is still parked in (or just
  // leaving) its backoff poll when Stop arrives, so the promptness
  // assertion keeps most of its teeth; the full stop-while-exhausted path
  // is covered by the Debug/Release/TSan configurations.
  hog.Release();
#endif
  const auto begin = std::chrono::steady_clock::now();
  socket_server_->Stop();
  const auto elapsed = std::chrono::steady_clock::now() - begin;
  EXPECT_FALSE(socket_server_->running());
  // The backoff polls the wake pipe, so Stop interrupts it immediately; the
  // bound is generous because the point is wedge-vs-prompt, not a latency
  // SLO.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
}

TEST_P(NetE2eTest, ConnectionBuffersReleaseHighWaterCapacity) {
  // A single fat frame balloons the connection's read buffer far past the
  // (lowered) shrink threshold; once the frame is consumed the capacity
  // must go back to the allocator instead of pinning the high-water mark
  // for the connection's lifetime.
  net_config_template_.buffer_shrink_threshold = 16 * 1024;
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const std::string big(128 * 1024, 'x');
  ASSERT_EQ(client.Set("big", big), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Get("big")->data, big);
  // The STORED response proves the frame was handled, but the release runs
  // just after the reply flush — give the worker a moment.
  uint64_t releases = 0;
  for (int i = 0; i < 400 && releases == 0; ++i) {
    releases = socket_server_->buffer_releases();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(releases, 0u);
}

// --- Satellite soak: 1k pipelined connections, exact transcripts ----------

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define CLIFFHANGER_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define CLIFFHANGER_SANITIZED 1
#endif
#endif

TEST_P(NetE2eTest, ThousandPipelinedConnectionsKeepTranscriptsExact) {
  // Write-all-then-read-all over ~1k concurrent connections (scaled down
  // under sanitizers, whose shadow memory makes 1k sockets gratuitously
  // slow). Every connection pipelines one multi-verb burst whose full
  // response transcript is known in advance; any dropped, duplicated or
  // reordered response — across connections or within a burst — breaks an
  // exact line match. This is the backend A/B soak for the epoll burst
  // path against the poll baseline.
#ifdef CLIFFHANGER_SANITIZED
  constexpr size_t kConns = 128;
#else
  constexpr size_t kConns = 1024;
#endif
  net_config_template_.backlog = static_cast<int>(kConns);
  StartDefaultServer();

  std::vector<net::AsciiClient> clients(kConns);
  for (size_t i = 0; i < kConns; ++i) {
    ASSERT_TRUE(clients[i].Connect("127.0.0.1", socket_server_->port()))
        << "connection " << i;
  }
  for (size_t i = 0; i < kConns; ++i) {
    const std::string tag = std::to_string(i);
    const std::string val = "payload-" + tag;
    // noreply set -> read-your-write get -> plain set -> multiget with a
    // guaranteed miss -> version as the end-of-transcript marker.
    std::string blob;
    blob += "set a" + tag + " 0 0 " + std::to_string(val.size()) +
            " noreply\r\n" + val + "\r\n";
    blob += "get a" + tag + "\r\n";
    blob += "set b" + tag + " 0 0 1\r\nx\r\n";
    blob += "get a" + tag + " b" + tag + " miss" + tag + "\r\n";
    blob += "version\r\n";
    ASSERT_TRUE(clients[i].SendRaw(blob)) << "connection " << i;
  }
  for (size_t i = 0; i < kConns; ++i) {
    const std::string tag = std::to_string(i);
    const std::string val = "payload-" + tag;
    const auto expect_line = [&](const std::string& want) {
      std::string line;
      ASSERT_TRUE(clients[i].ReadLine(&line)) << "connection " << i;
      ASSERT_EQ(line, want) << "connection " << i;
    };
    const std::string value_header =
        "VALUE a" + tag + " 0 " + std::to_string(val.size());
    expect_line(value_header);
    expect_line(val);
    expect_line("END");
    expect_line("STORED");
    expect_line(value_header);
    expect_line(val);
    expect_line("VALUE b" + tag + " 0 1");
    expect_line("x");
    expect_line("END");
    expect_line("VERSION " + std::string(net::kServerVersion));
    clients[i].Quit();
  }
}

TEST_P(NetE2eTest, BurstMixedVerbPipelineKeepsResponseOrder) {
  // One burst interleaving every shardable verb across many shards plus a
  // barrier command (version) mid-stream: responses must come back in
  // command order even though the burst path executes grouped by shard.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::string blob;
  for (int i = 0; i < 24; ++i) {
    const std::string tag = std::to_string(i);
    blob += "set o" + tag + " 0 0 2 noreply\r\nv" +
            std::string(1, static_cast<char>('a' + i % 26)) + "\r\n";
  }
  blob += "get o0 o5 o23 nope\r\n";
  blob += "set n0 0 0 1\r\n7\r\n";
  blob += "incr n0 3\r\n";
  blob += "version\r\n";  // barrier: splits the burst into two sharded runs
  blob += "delete o5\r\n";
  blob += "get o5\r\n";
  blob += "decr n0 100\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  const auto expect_line = [&](const std::string& want) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line));
    ASSERT_EQ(line, want);
  };
  expect_line("VALUE o0 0 2");
  expect_line("va");
  expect_line("VALUE o5 0 2");
  expect_line("vf");
  expect_line("VALUE o23 0 2");
  expect_line("vx");
  expect_line("END");
  expect_line("STORED");
  expect_line("10");
  expect_line("VERSION " + std::string(net::kServerVersion));
  expect_line("DELETED");
  expect_line("END");
  expect_line("0");
  client.Quit();
}

// --- The determinism test -------------------------------------------------

// Mirrors CacheAdapter against a library server. With values in the core
// arenas the mirror needs no bookkeeping of its own: it issues exactly the
// value verbs the adapter issues (a GetValue probe; on a miss the client
// demand-fills, which is a SetValue behind the slab-class admission
// precheck). The trace carries no TTLs and no flushes, so a fixed clock
// stands in for the socket pass's wall clock.
class LibraryReplay {
 public:
  explicit LibraryReplay(ShardedCacheServer* server, uint32_t app_id)
      : server_(server), app_id_(app_id) {}

  // Demand-fill GET; returns true on hit.
  bool Get(uint64_t key_id, uint32_t key_size, uint32_t fill_value_size) {
    const ValueOutcome vo =
        server_->GetValue(app_id_, key_id, key_size, kNow, /*flush_at_s=*/0);
    if (vo.valid) return true;
    Set(key_id, key_size, fill_value_size);
    return false;
  }

  void Set(uint64_t key_id, uint32_t key_size, uint32_t value_size) {
    const std::string bytes(value_size, 'v');
    ItemMeta item{key_id, key_size, value_size};
    item.now_s = kNow;
    if (SlabClassFor(ExactFootprint(key_size, value_size)) < 0) {
      // Oversized store: drops any old incarnation, mints no cas — the
      // adapter's too-large path.
      server_->SetValue(app_id_, item, bytes.data(), 0, 0);
      return;
    }
    server_->SetValue(app_id_, item, bytes.data(), 0, ++cas_);
  }

 private:
  static constexpr uint32_t kNow = 1;
  ShardedCacheServer* server_;
  uint32_t app_id_;
  uint64_t cas_ = 0;
};

void ExpectStatsEqual(const ClassStats& a, const ClassStats& b,
                      const char* what) {
  EXPECT_EQ(a.gets, b.gets) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.sets, b.sets) << what;
  EXPECT_EQ(a.tail_hits, b.tail_hits) << what;
  EXPECT_EQ(a.cliff_shadow_hits, b.cliff_shadow_hits) << what;
  EXPECT_EQ(a.hill_shadow_hits, b.hill_shadow_hits) << what;
}

TEST_P(NetE2eTest, SocketReplayIsBitIdenticalToLibraryReplay) {
  // Full Cliffhanger controllers on both sides: any distortion of the op
  // stream (a lost get, a misrouted size, a reordered fill) shifts the
  // hill climber or cliff scaler and shows up in the counters.
  ShardedServerConfig config;
  config.server = CliffhangerServerConfig();
  config.server.store_values = true;  // both passes serve real bytes
  config.num_shards = 4;
  config.rebalance_interval_ops = 4096;
  constexpr uint32_t kApp = 1;
  // Far below the trace's ~1.9 MiB unique footprint, so the replay runs in
  // the eviction + shadow-traffic regime the controllers live on.
  constexpr uint64_t kReservation = 1 * kMiB;

  ZipfTraceSpec spec;
  spec.requests = 24000;
  spec.universe = 6000;
  spec.zipf_alpha = 0.9;
  spec.seed = 0xD37E12;
  spec.app_id = kApp;
  spec.get_fraction = 0.9;  // 10% explicit SETs ride along
  const Trace trace = MakeZipfMixTrace(spec);

  // Library pass.
  ShardedCacheServer library_server(config);
  library_server.AddApp(kApp, kReservation);
  LibraryReplay replay(&library_server, kApp);
  uint64_t library_hits = 0;
  for (const Request& r : trace) {
    const std::string key = net::ReplayKeyString(r.key);
    const uint64_t key_id = Fnv1a64(key);
    if (r.is_get()) {
      library_hits += replay.Get(key_id, r.key_size, r.value_size) ? 1 : 0;
    } else {
      replay.Set(key_id, r.key_size, r.value_size);
    }
  }

  // Socket pass: same config, one connection, demand-fill via the client.
  StartServer(config, {{kApp, kReservation}}, kApp);
  net::AsciiClient client = MakeClient();
  uint64_t socket_hits = 0;
  uint64_t value_mismatches = 0;
  for (const Request& r : trace) {
    const std::string key = net::ReplayKeyString(r.key);
    if (r.is_get()) {
      const auto value = client.Get(key);
      if (value.has_value()) {
        ++socket_hits;
        if (value->data != net::ReplayValueBytes(r.key, r.value_size)) {
          ++value_mismatches;
        }
      } else {
        ASSERT_EQ(client.Set(key, net::ReplayValueBytes(r.key, r.value_size)),
                  net::AsciiClient::StoreResult::kStored);
      }
    } else {
      ASSERT_EQ(client.Set(key, net::ReplayValueBytes(r.key, r.value_size)),
                net::AsciiClient::StoreResult::kStored);
    }
  }
  client.Quit();

  EXPECT_EQ(socket_hits, library_hits);
  EXPECT_EQ(value_mismatches, 0u);
  ExpectStatsEqual(server_->MergedStats(), library_server.MergedStats(),
                   "merged");
  ExpectStatsEqual(server_->AppStats(kApp), library_server.AppStats(kApp),
                   "app");
  for (size_t shard = 0; shard < config.num_shards; ++shard) {
    ExpectStatsEqual(server_->ShardStats(shard),
                     library_server.ShardStats(shard), "shard");
  }
  // The workload must actually have exercised eviction + shadow machinery,
  // or the equality above proves nothing.
  const ClassStats merged = server_->MergedStats();
  EXPECT_GT(merged.gets, 0u);
  EXPECT_LT(merged.hits, merged.gets);
  EXPECT_GT(merged.hill_shadow_hits + merged.cliff_shadow_hits, 0u);
}

// --- The full-verb determinism test ---------------------------------------

// Mirrors CacheAdapter over the core value verbs: values, cas versions,
// expiries and flush reclamation all live in the core now, so the mirror
// holds only what the adapter itself holds — a cas counter and the flush
// point — and issues exactly the verb sequence the adapter issues
// (including the no-cas-minted-on-rejected-store discipline).
// Single-threaded, like the one-connection socket pass, so the cas counter
// advances in the same order.
class FullVerbReplay {
 public:
  FullVerbReplay(ShardedCacheServer* server, uint32_t app_id)
      : server_(server), app_id_(app_id) {}

  enum class SR : uint8_t { kStored, kNotStored, kExists, kNotFound,
                            kTooLarge };
  enum class Kind : uint8_t { kSet, kAdd, kReplace, kCas };

  struct GotValue {
    std::string value;
    uint64_t cas = 0;
  };

  // Demand-fill-free GET (the adapter's HandleGet for one key).
  std::optional<GotValue> Get(uint64_t key_id, uint32_t key_size,
                              uint32_t now) {
    const ValueOutcome vo =
        server_->GetValue(app_id_, key_id, key_size, now, flush_at_s_);
    if (!vo.valid) return std::nullopt;
    return GotValue{std::string(vo.view.data, vo.view.size), vo.view.cas};
  }

  SR Store(Kind kind, uint64_t key_id, uint32_t key_size,
           const std::string& value, int64_t exptime, uint64_t cas_unique,
           uint32_t now) {
    if (kind != Kind::kSet) {
      // Presence straight from the core (resident, unexpired, unflushed),
      // like the adapter's StoreLocked peek.
      const ValueOutcome peek =
          server_->PeekValue(app_id_, key_id, now, flush_at_s_);
      if ((kind == Kind::kAdd && peek.valid) ||
          (kind == Kind::kReplace && !peek.valid)) {
        return SR::kNotStored;
      }
      if (kind == Kind::kCas) {
        if (!peek.valid) return SR::kNotFound;
        if (peek.view.cas != cas_unique) return SR::kExists;
      }
    }
    const auto new_size = static_cast<uint32_t>(value.size());
    ItemMeta item{key_id, key_size, new_size};
    item.expiry_s = net::AbsoluteExpiry(exptime, now);
    item.now_s = now;
    if (SlabClassFor(ExactFootprint(key_size, new_size)) < 0) {
      server_->SetValue(app_id_, item, value.data(), 0, 0);
      return SR::kTooLarge;
    }
    server_->SetValue(app_id_, item, value.data(), 0, ++cas_counter_);
    return SR::kStored;
  }

  SR Concat(bool append, uint64_t key_id, uint32_t key_size,
            const std::string& data, uint32_t now) {
    const ValueOutcome peek =
        server_->PeekValue(app_id_, key_id, now, flush_at_s_);
    if (!peek.valid) return SR::kNotStored;
    if (static_cast<uint64_t>(peek.view.size) + data.size() >
        net::kMaxValueBytes) {
      return SR::kTooLarge;  // splice rejected, original intact
    }
    std::string combined;
    combined.reserve(peek.view.size + data.size());
    if (append) {
      combined.append(peek.view.data, peek.view.size);
      combined.append(data);
    } else {
      combined.append(data);
      combined.append(peek.view.data, peek.view.size);
    }
    const auto new_size = static_cast<uint32_t>(combined.size());
    if (SlabClassFor(ExactFootprint(key_size, new_size)) < 0) {
      // Under kMaxValueBytes but over the largest chunk: the old
      // incarnation dies (ReplaceValue deletes before failing), no cas.
      server_->ReplaceValue(app_id_, key_id, key_size, combined.data(),
                            new_size, 0, now);
      return SR::kTooLarge;
    }
    server_->ReplaceValue(app_id_, key_id, key_size, combined.data(),
                          new_size, ++cas_counter_, now);
    return SR::kStored;
  }

  enum class ArithResult : uint8_t { kOk, kNotFound, kNonNumeric };
  ArithResult Arith(bool increment, uint64_t key_id, uint32_t key_size,
                    uint64_t delta, uint32_t now, uint64_t* result_out) {
    const ValueOutcome peek =
        server_->PeekValue(app_id_, key_id, now, flush_at_s_);
    if (!peek.valid) return ArithResult::kNotFound;
    uint64_t value = 0;
    if (!ParseDecimalU64(std::string_view(peek.view.data, peek.view.size),
                         &value)) {
      return ArithResult::kNonNumeric;
    }
    const uint64_t result = increment
                                ? value + delta
                                : (value < delta ? 0 : value - delta);
    const std::string text = std::to_string(result);
    server_->ReplaceValue(app_id_, key_id, key_size, text.data(),
                          static_cast<uint32_t>(text.size()), ++cas_counter_,
                          now);
    *result_out = result;
    return ArithResult::kOk;
  }

  bool Touch(uint64_t key_id, uint32_t key_size, int64_t exptime,
             uint32_t now) {
    return server_->TouchValue(app_id_, key_id, key_size,
                               net::AbsoluteExpiry(exptime, now), now,
                               flush_at_s_);
  }

  bool Delete(uint64_t key_id, uint32_t key_size, uint32_t now) {
    (void)key_size;
    return server_->DeleteValue(app_id_, key_id, now, flush_at_s_);
  }

  void FlushAll(int64_t delay, uint32_t now) {
    flush_at_s_ = static_cast<uint32_t>(
        std::min<uint64_t>(UINT32_MAX, static_cast<uint64_t>(now) +
                                           static_cast<uint64_t>(delay)));
  }

 private:
  ShardedCacheServer* server_;
  uint32_t app_id_;
  uint64_t cas_counter_ = 0;  // same numbering as the adapter's NextCas()
  uint32_t flush_at_s_ = 0;
};

// One scripted operation of the full-verb trace. Generated once, replayed
// twice (library and socket), so both passes see byte-identical inputs.
struct ScriptOp {
  enum class Verb : uint8_t { kGet, kSet, kAdd, kReplace, kCasFresh,
                              kCasStale, kIncr, kDecr, kTouch, kAppend,
                              kPrepend, kDelete, kFlushAll };
  Verb verb = Verb::kGet;
  uint32_t now_s = 0;
  uint64_t key = 0;
  std::string value;   // store payload / demand-fill payload
  std::string splice;  // append/prepend chunk
  int64_t exptime = 0;
  uint64_t delta = 0;
  int64_t flush_delay = 0;
};

std::vector<ScriptOp> MakeFullVerbScript() {
  constexpr int kOps = 18000;
  constexpr uint64_t kUniverse = 3000;
  std::vector<ScriptOp> script;
  script.reserve(kOps);
  Rng rng(0xC1F7A4);
  uint32_t now = 5000;
  for (int i = 0; i < kOps; ++i) {
    if (i % 40 == 39) ++now;  // seconds tick every 40 ops: TTLs bite mid-run
    ScriptOp op;
    op.now_s = now;
    op.key = rng.NextBounded(kUniverse);
    const bool counter_key = op.key % 16 == 0;

    // Two flushes at fixed points: one immediate-ish, one delayed.
    if (i == 6000 || i == 13000) {
      op.verb = ScriptOp::Verb::kFlushAll;
      op.flush_delay = i == 6000 ? 0 : 5;
      script.push_back(op);
      continue;
    }

    // TTL grammar mix: never / short relative / memcached's -1 / absolute.
    const uint32_t ttl_pick = rng.NextBounded(20);
    if (ttl_pick < 10) {
      op.exptime = 0;
    } else if (ttl_pick < 17) {
      op.exptime = 1 + static_cast<int64_t>(rng.NextBounded(90));
    } else if (ttl_pick < 18) {
      op.exptime = -1;
    } else {
      // Past the 30-day cutoff: interpreted as an absolute second.
      op.exptime = net::kRelativeExptimeCutoff + 1 +
                   static_cast<int64_t>(rng.NextBounded(1000));
    }

    if (counter_key && rng.NextBounded(10) != 0) {
      // Counters stay numeric 90% of the time; digit count varies so the
      // incr/decr rewrites cross slab classes.
      op.value = std::to_string(rng() >> (24 + rng.NextBounded(40)));
    } else {
      op.value = net::ReplayValueBytes(op.key,
                                       32 + rng.NextBounded(480));
    }
    op.splice = net::ReplayValueBytes(op.key ^ 0x5A5A, 1 + rng.NextBounded(8));
    op.delta = rng.NextBounded(1000);

    const uint32_t pick = rng.NextBounded(100);
    using V = ScriptOp::Verb;
    if (pick < 52) op.verb = V::kGet;
    else if (pick < 67) op.verb = V::kSet;
    else if (pick < 70) op.verb = V::kAdd;
    else if (pick < 73) op.verb = V::kReplace;
    else if (pick < 76) op.verb = V::kCasFresh;
    else if (pick < 78) op.verb = V::kCasStale;
    else if (pick < 81) op.verb = V::kIncr;
    else if (pick < 83) op.verb = V::kDecr;
    else if (pick < 87) op.verb = V::kTouch;
    else if (pick < 90) op.verb = V::kAppend;
    else if (pick < 92) op.verb = V::kPrepend;
    else op.verb = V::kDelete;
    script.push_back(op);
  }
  return script;
}

std::string StoreCode(net::AsciiClient::StoreResult r) {
  switch (r) {
    case net::AsciiClient::StoreResult::kStored: return "stored";
    case net::AsciiClient::StoreResult::kNotStored: return "not_stored";
    case net::AsciiClient::StoreResult::kExists: return "exists";
    case net::AsciiClient::StoreResult::kNotFound: return "not_found";
    case net::AsciiClient::StoreResult::kError: return "error";
  }
  return "?";
}

std::string StoreCode(FullVerbReplay::SR r) {
  switch (r) {
    case FullVerbReplay::SR::kStored: return "stored";
    case FullVerbReplay::SR::kNotStored: return "not_stored";
    case FullVerbReplay::SR::kExists: return "exists";
    case FullVerbReplay::SR::kNotFound: return "not_found";
    case FullVerbReplay::SR::kTooLarge: return "error";
  }
  return "?";
}

TEST_P(NetE2eTest, FullVerbSocketReplayIsBitIdenticalToLibraryReplay) {
  // Same construction as the get/set determinism test, but the trace spans
  // the whole PR-5 verb set under the injected clock: cas (fresh and
  // stale), incr/decr (including non-numeric errors), touch, append/
  // prepend re-slabs, deletes, relative/absolute/immediate TTLs and two
  // flush_all points. Every per-op result is transcribed on both sides and
  // the transcripts — not just the final counters — must be identical.
  ShardedServerConfig config;
  config.server = CliffhangerServerConfig();
  config.server.store_values = true;  // both passes serve real bytes
  config.num_shards = 4;
  config.rebalance_interval_ops = 4096;
  constexpr uint32_t kApp = 1;
  constexpr uint64_t kReservation = 1 * kMiB;
  const std::vector<ScriptOp> script = MakeFullVerbScript();
  using V = ScriptOp::Verb;

  // Library pass.
  ShardedCacheServer library_server(config);
  library_server.AddApp(kApp, kReservation);
  FullVerbReplay replay(&library_server, kApp);
  std::vector<std::string> library_log;
  library_log.reserve(script.size());
  for (const ScriptOp& op : script) {
    const std::string key = net::ReplayKeyString(op.key);
    const uint64_t kid = Fnv1a64(key);
    const auto ks = static_cast<uint32_t>(key.size());
    const uint32_t now = op.now_s;
    switch (op.verb) {
      case V::kGet: {
        const auto got = replay.Get(kid, ks, now);
        if (got.has_value()) {
          library_log.push_back("hit:" + std::to_string(Fnv1a64(got->value)));
        } else {
          const auto fill = replay.Store(FullVerbReplay::Kind::kSet, kid, ks,
                                         op.value, op.exptime, 0, now);
          library_log.push_back("miss+fill:" + StoreCode(fill));
        }
        break;
      }
      case V::kSet:
        library_log.push_back(
            "set:" + StoreCode(replay.Store(FullVerbReplay::Kind::kSet, kid,
                                            ks, op.value, op.exptime, 0,
                                            now)));
        break;
      case V::kAdd:
        library_log.push_back(
            "add:" + StoreCode(replay.Store(FullVerbReplay::Kind::kAdd, kid,
                                            ks, op.value, op.exptime, 0,
                                            now)));
        break;
      case V::kReplace:
        library_log.push_back(
            "replace:" + StoreCode(replay.Store(FullVerbReplay::Kind::kReplace,
                                                kid, ks, op.value, op.exptime,
                                                0, now)));
        break;
      case V::kCasFresh:
      case V::kCasStale: {
        const auto got = replay.Get(kid, ks, now);  // mirrors the gets probe
        if (!got.has_value()) {
          library_log.push_back("cas:skip");
          break;
        }
        const uint64_t cas = op.verb == V::kCasFresh ? got->cas
                                                     : got->cas + 1000000;
        library_log.push_back(
            "cas:" + StoreCode(replay.Store(FullVerbReplay::Kind::kCas, kid,
                                            ks, op.value, op.exptime, cas,
                                            now)));
        break;
      }
      case V::kIncr:
      case V::kDecr: {
        uint64_t result = 0;
        const auto r = replay.Arith(op.verb == V::kIncr, kid, ks, op.delta,
                                    now, &result);
        if (r == FullVerbReplay::ArithResult::kOk) {
          library_log.push_back("arith:" + std::to_string(result));
        } else if (r == FullVerbReplay::ArithResult::kNotFound) {
          library_log.push_back("arith:nf");
        } else {
          library_log.push_back("arith:nonnum");
        }
        break;
      }
      case V::kTouch:
        library_log.push_back(replay.Touch(kid, ks, op.exptime, now)
                                  ? "touch:yes" : "touch:no");
        break;
      case V::kAppend:
      case V::kPrepend:
        library_log.push_back(
            "splice:" + StoreCode(replay.Concat(op.verb == V::kAppend, kid,
                                                ks, op.splice, now)));
        break;
      case V::kDelete:
        library_log.push_back(replay.Delete(kid, ks, now) ? "del:yes"
                                                          : "del:no");
        break;
      case V::kFlushAll:
        replay.FlushAll(op.flush_delay, now);
        library_log.push_back("flush");
        break;
    }
  }

  // Socket pass: same config and script, one connection, injected clock.
  fake_now_.store(script.front().now_s);
  ShardedServerConfig socket_config = config;
  StartServer(socket_config, {{kApp, kReservation}}, kApp);
  net::AsciiClient client = MakeClient();
  std::vector<std::string> socket_log;
  socket_log.reserve(script.size());
  for (const ScriptOp& op : script) {
    fake_now_.store(op.now_s);
    const std::string key = net::ReplayKeyString(op.key);
    switch (op.verb) {
      case V::kGet: {
        const auto got = client.Get(key);
        if (got.has_value()) {
          socket_log.push_back("hit:" + std::to_string(Fnv1a64(got->data)));
        } else {
          const auto fill = client.Set(key, op.value, 0, op.exptime);
          socket_log.push_back("miss+fill:" + StoreCode(fill));
        }
        break;
      }
      case V::kSet:
        socket_log.push_back(
            "set:" + StoreCode(client.Set(key, op.value, 0, op.exptime)));
        break;
      case V::kAdd:
        socket_log.push_back(
            "add:" + StoreCode(client.Add(key, op.value, 0, op.exptime)));
        break;
      case V::kReplace:
        socket_log.push_back(
            "replace:" + StoreCode(client.Replace(key, op.value, 0,
                                                  op.exptime)));
        break;
      case V::kCasFresh:
      case V::kCasStale: {
        const auto got = client.Gets(key);
        if (!got.has_value()) {
          socket_log.push_back("cas:skip");
          break;
        }
        const uint64_t cas = op.verb == V::kCasFresh ? got->cas
                                                     : got->cas + 1000000;
        socket_log.push_back(
            "cas:" + StoreCode(client.Cas(key, op.value, cas, 0,
                                          op.exptime)));
        break;
      }
      case V::kIncr:
      case V::kDecr: {
        const auto result = op.verb == V::kIncr ? client.Incr(key, op.delta)
                                                : client.Decr(key, op.delta);
        if (result.has_value()) {
          socket_log.push_back("arith:" + std::to_string(*result));
        } else if (client.last_error().empty()) {
          socket_log.push_back("arith:nf");
        } else {
          socket_log.push_back("arith:nonnum");
        }
        break;
      }
      case V::kTouch:
        socket_log.push_back(client.Touch(key, op.exptime) ? "touch:yes"
                                                           : "touch:no");
        break;
      case V::kAppend:
        socket_log.push_back(
            "splice:" + StoreCode(client.Append(key, op.splice)));
        break;
      case V::kPrepend:
        socket_log.push_back(
            "splice:" + StoreCode(client.Prepend(key, op.splice)));
        break;
      case V::kDelete:
        socket_log.push_back(client.Delete(key) ? "del:yes" : "del:no");
        break;
      case V::kFlushAll:
        ASSERT_TRUE(client.FlushAll(op.flush_delay));
        socket_log.push_back("flush");
        break;
    }
  }
  client.Quit();

  // Per-op transcripts first (they localize a divergence to the exact op),
  // then the core counters on every level.
  ASSERT_EQ(socket_log.size(), library_log.size());
  for (size_t i = 0; i < socket_log.size(); ++i) {
    ASSERT_EQ(socket_log[i], library_log[i])
        << "first divergence at op " << i << " (verb "
        << static_cast<int>(script[i].verb) << ", key " << script[i].key
        << ", now " << script[i].now_s << ")";
  }
  ExpectStatsEqual(server_->MergedStats(), library_server.MergedStats(),
                   "merged");
  ExpectStatsEqual(server_->AppStats(kApp), library_server.AppStats(kApp),
                   "app");
  for (size_t shard = 0; shard < config.num_shards; ++shard) {
    ExpectStatsEqual(server_->ShardStats(shard),
                     library_server.ShardStats(shard), "shard");
  }

  // The equality only proves something if the trace actually drove every
  // semantic corner: evictions + shadow traffic, expiries, flush reclaims,
  // fresh and stale cas, arithmetic (incl. the non-numeric error), touch
  // hits, splices and deletes.
  const auto c = adapter_->counters();
  const ClassStats merged = server_->MergedStats();
  EXPECT_LT(merged.hits, merged.gets);
  EXPECT_GT(merged.hill_shadow_hits + merged.cliff_shadow_hits, 0u);
  EXPECT_GT(c.get_expired, 0u);
  EXPECT_GT(c.cas_hits, 0u);
  EXPECT_GT(c.cas_badval, 0u);
  EXPECT_GT(c.incr_hits, 0u);
  EXPECT_GT(c.decr_hits, 0u);
  EXPECT_GT(c.touch_hits, 0u);
  EXPECT_GT(c.touch_misses, 0u);
  EXPECT_GT(c.delete_hits, 0u);
  EXPECT_EQ(c.cmd_flush, 2u);
  const auto nonnum = std::count(socket_log.begin(), socket_log.end(),
                                 std::string("arith:nonnum"));
  EXPECT_GT(nonnum, 0);
}

TEST_P(NetE2eTest, EffectiveBackendAndFallbackReasonAreConsistent) {
  // poll/epoll never fall back; a kUring request either comes up on the
  // ring (no reason logged) or degrades to epoll with a reason — and the
  // server must serve traffic identically either way.
  StartDefaultServer();
  const net::SocketBackend effective = socket_server_->effective_backend();
  if (GetParam() == net::SocketBackend::kUring) {
    if (effective == net::SocketBackend::kUring) {
      EXPECT_TRUE(socket_server_->backend_fallback_reason().empty())
          << socket_server_->backend_fallback_reason();
    } else {
      EXPECT_EQ(effective, net::SocketBackend::kEpoll);
      EXPECT_FALSE(socket_server_->backend_fallback_reason().empty());
    }
  } else {
    EXPECT_EQ(effective, GetParam());
    EXPECT_TRUE(socket_server_->backend_fallback_reason().empty())
        << socket_server_->backend_fallback_reason();
  }
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("ebk", "ebv"), net::AsciiClient::StoreResult::kStored);
  const auto got = client.Get("ebk");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->data, "ebv");
  client.Quit();
}

TEST_P(NetE2eTest, UringBatchesManySqesPerSubmit) {
  // The per-op syscall-reduction proof: a pipelined storm of frames must
  // cost far fewer io_uring_enter calls than frames — each burst's flush,
  // buffer return and read re-arm ride one submit — and the average batch
  // must pack multiple SQEs per enter.
  if (GetParam() != net::SocketBackend::kUring) {
    GTEST_SKIP() << "submit accounting only exists on the uring backend";
  }
  StartDefaultServer();
  if (socket_server_->effective_backend() != net::SocketBackend::kUring) {
    GTEST_SKIP() << "io_uring unavailable here: "
                 << socket_server_->backend_fallback_reason();
  }
  net::AsciiClient client = MakeClient();
  constexpr int kRounds = 1000;  // 2 frames per round + the version barrier
  std::string blob;
  for (int i = 0; i < kRounds; ++i) {
    const std::string tag = std::to_string(i % 64);
    blob += "set bk" + tag + " 0 0 8 noreply\r\nvvvvvvvv\r\n";
    blob += "get bk" + tag + "\r\n";
  }
  blob += "version\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  std::string line;
  int value_lines = 0;
  while (true) {
    ASSERT_TRUE(client.ReadLine(&line)) << client.last_error();
    if (line.rfind("VERSION", 0) == 0) break;
    if (line.rfind("VALUE ", 0) == 0) ++value_lines;
  }
  EXPECT_EQ(value_lines, kRounds);
  const uint64_t frames = 2 * kRounds + 1;
  const uint64_t submits = socket_server_->uring_submit_calls();
  const uint64_t sqes = socket_server_->uring_submitted_sqes();
  ASSERT_GT(submits, 0u);
  // Batching both ways: several SQEs per enter on average, and an order of
  // magnitude fewer enters than protocol frames served.
  EXPECT_GT(sqes, submits);
  EXPECT_LT(submits * 4, frames)
      << "submits=" << submits << " sqes=" << sqes << " frames=" << frames;
  client.Quit();
}

}  // namespace
}  // namespace cliffhanger
