// End-to-end tests of the network front: a real SocketServer on an
// ephemeral loopback port, a CacheAdapter over a ShardedCacheServer, and
// AsciiClient driving actual TCP sockets. Carries the `concurrency` ctest
// label (the server is inherently multi-threaded) so the CI TSan job
// sanitizes it; the ASan job runs it as part of the full suite.
//
// The centerpiece is the determinism test: a seeded Zipf trace replayed
// once through the library ShardedCacheServer (mirroring the adapter's
// size-bookkeeping exactly) and once over a loopback socket must leave the
// core with bit-identical hit/miss/set/shadow counters — proof that the
// parser, connection layer and adapter do not distort the operation
// stream.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sharded_server.h"
#include "net/ascii_client.h"
#include "net/cache_adapter.h"
#include "net/replay_keys.h"
#include "net/socket_server.h"
#include "sim/experiment.h"
#include "util/hashing.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace cliffhanger {
namespace {

constexpr uint64_t kMiB = 1ULL << 20;

class NetE2eTest : public ::testing::Test {
 protected:
  void StartServer(
      const ShardedServerConfig& config,
      const std::vector<std::pair<uint32_t, uint64_t>>& apps,
      uint32_t default_app) {
    server_ = std::make_unique<ShardedCacheServer>(config);
    for (const auto& [app_id, reservation] : apps) {
      server_->AddApp(app_id, reservation);
    }
    net::CacheAdapterConfig adapter_config;
    adapter_config.default_app_id = default_app;
    if (fake_now_.load() != 0) {
      // Deterministic expiry: the adapter reads this test-controlled
      // second counter instead of the wall clock. No sleeps anywhere.
      adapter_config.clock = [this] { return fake_now_.load(); };
    }
    adapter_ = std::make_unique<net::CacheAdapter>(server_.get(),
                                                   adapter_config);
    net::SocketServerConfig net_config;
    net_config.port = 0;  // ephemeral
    net_config.num_workers = 2;
    socket_server_ =
        std::make_unique<net::SocketServer>(net_config, adapter_.get());
    std::string error;
    ASSERT_TRUE(socket_server_->Start(&error)) << error;
    ASSERT_GT(socket_server_->port(), 0);
  }

  void StartDefaultServer() {
    ShardedServerConfig config;
    config.server = DefaultServerConfig();
    config.num_shards = 4;
    StartServer(config, {{1, 8 * kMiB}}, 1);
  }

  // Fake-clock variant: call before any traffic; advance with fake_now_.
  void StartDefaultServerAt(uint32_t now_s) {
    fake_now_.store(now_s);
    StartDefaultServer();
  }

  net::AsciiClient MakeClient() {
    net::AsciiClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", socket_server_->port()));
    return client;
  }

  void TearDown() override {
    if (socket_server_) socket_server_->Stop();
  }

  std::unique_ptr<ShardedCacheServer> server_;
  std::unique_ptr<net::CacheAdapter> adapter_;
  std::unique_ptr<net::SocketServer> socket_server_;
  std::atomic<uint32_t> fake_now_{0};  // 0 = wall clock
};

TEST_F(NetE2eTest, StartStopIsCleanAndIdempotent) {
  StartDefaultServer();
  EXPECT_TRUE(socket_server_->running());
  socket_server_->Stop();
  EXPECT_FALSE(socket_server_->running());
  socket_server_->Stop();  // idempotent
}

TEST_F(NetE2eTest, BasicRoundTrip) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();

  EXPECT_EQ(client.Set("hello", "world", 42),
            net::AsciiClient::StoreResult::kStored);
  auto value = client.Get("hello");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, "world");
  EXPECT_EQ(value->flags, 42u);

  EXPECT_FALSE(client.Get("absent").has_value());

  // add: only when absent; replace: only when present.
  EXPECT_EQ(client.Add("hello", "other"),
            net::AsciiClient::StoreResult::kNotStored);
  EXPECT_EQ(client.Add("fresh", "f"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Replace("fresh", "g"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Replace("absent", "x"),
            net::AsciiClient::StoreResult::kNotStored);
  EXPECT_EQ(client.Get("fresh")->data, "g");

  EXPECT_TRUE(client.Delete("hello"));
  EXPECT_FALSE(client.Delete("hello"));  // NOT_FOUND the second time
  EXPECT_FALSE(client.Get("hello").has_value());

  EXPECT_EQ(client.Version(), std::string(net::kServerVersion));
  client.Quit();
}

TEST_F(NetE2eTest, GetsReturnsMonotonicCas) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("k", "v1"), net::AsciiClient::StoreResult::kStored);
  const auto first = client.Gets("k");
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(client.Set("k", "v2"), net::AsciiClient::StoreResult::kStored);
  const auto second = client.Gets("k");
  ASSERT_TRUE(second.has_value());
  EXPECT_GT(second->cas, first->cas);
  EXPECT_EQ(second->data, "v2");
}

TEST_F(NetE2eTest, MultiGetMixedHitsAndMisses) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("a", "1"), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("c", "3"), net::AsciiClient::StoreResult::kStored);
  const auto values = client.MultiGet({"a", "b", "c", "d"});
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values.at("a").data, "1");
  EXPECT_EQ(values.at("c").data, "3");
}

TEST_F(NetE2eTest, MultiGetBeyondServerKeyCapIsBatchedByClient) {
  // The server caps keys per get line (kMaxKeysPerGet); the client batches
  // transparently, so a 100-key multiget still resolves every hit.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    const std::string key = "mk" + std::to_string(i);
    keys.push_back(key);
    if (i % 3 == 0) {
      ASSERT_EQ(client.Set(key, "v" + std::to_string(i)),
                net::AsciiClient::StoreResult::kStored);
    }
  }
  const auto values = client.MultiGet(keys);
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();
  EXPECT_EQ(values.size(), 34u);  // i = 0, 3, ..., 99
  EXPECT_EQ(values.at("mk99").data, "v99");
  EXPECT_EQ(values.count("mk1"), 0u);
}

TEST_F(NetE2eTest, PipelinedNoreplyStormThenRead) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  // 200 noreply sets in one write: no response expected until the final
  // get, which must see the last value.
  std::string blob;
  for (int i = 0; i < 200; ++i) {
    const std::string value = "v" + std::to_string(i);
    blob += "set storm 0 0 " + std::to_string(value.size()) +
            " noreply\r\n" + value + "\r\n";
  }
  blob += "get storm\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VALUE storm 0 4");
  std::string data;
  ASSERT_TRUE(client.ReadBytes(4, &data));
  EXPECT_EQ(data, "v199");
  ASSERT_TRUE(client.ReadLine(&line));  // trailing CRLF of the data block
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "END");
}

TEST_F(NetE2eTest, BinarySafeValues) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const std::string payload("\r\nEND\r\nget x\r\n\0\xff\x01", 17);
  ASSERT_EQ(client.Set("bin", payload),
            net::AsciiClient::StoreResult::kStored);
  const auto value = client.Get("bin");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, payload);
}

TEST_F(NetE2eTest, LargeValueRoundTripExercisesPartialWrites) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::string big(512 * 1024, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i * 31) % 26);
  }
  ASSERT_EQ(client.Set("big", big), net::AsciiClient::StoreResult::kStored);
  const auto value = client.Get("big");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->data, big);
}

TEST_F(NetE2eTest, OversizedValueRejectedConnectionSurvives) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const size_t declared = net::kMaxValueBytes + 1;
  std::string frame =
      "set big 0 0 " + std::to_string(declared) + "\r\n";
  frame += std::string(declared, 'z');
  frame += "\r\n";
  ASSERT_TRUE(client.SendRaw(frame));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrTooLarge);
  // The declared block was swallowed; the connection is still in sync.
  EXPECT_EQ(client.Version(), std::string(net::kServerVersion));
}

TEST_F(NetE2eTest, ProtocolErrorsMatchMemcached) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  std::string line;
  ASSERT_TRUE(client.SendRaw("bogus\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "ERROR");
  ASSERT_TRUE(client.SendRaw("set k bad 0 5\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrBadLine);
  ASSERT_TRUE(client.SendRaw("set k 0 0 3\r\nabXY\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrBadChunk);
  // Still usable after every error.
  EXPECT_EQ(client.Set("k", "v"), net::AsciiClient::StoreResult::kStored);
}

TEST_F(NetE2eTest, NoreplyErrorsAreSuppressedSoPipelinesStayAligned) {
  // An oversized noreply set must produce NO response (memcached
  // semantics): the next command's reply is the next bytes on the wire.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const size_t declared = net::kMaxValueBytes + 1;
  std::string frame = "set big 0 0 " + std::to_string(declared) +
                      " noreply\r\n" + std::string(declared, 'z') + "\r\n" +
                      "version\r\n";
  ASSERT_TRUE(client.SendRaw(frame));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VERSION " + std::string(net::kServerVersion));
}

TEST_F(NetE2eTest, PipelineThenFinLikeNetcat) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_TRUE(client.SendRaw("set k 0 0 3\r\nabc\r\nget k\r\n"));
  client.ShutdownWrite();
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "STORED");
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "VALUE k 0 3");
  std::string data;
  ASSERT_TRUE(client.ReadBytes(3, &data));
  EXPECT_EQ(data, "abc");
  ASSERT_TRUE(client.ReadLine(&line));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "END");
}

TEST_F(NetE2eTest, FinWhileWriteBackpressuredStillAnswersEveryFrame) {
  // Pipeline responses worth several times the server's write cap, then
  // FIN immediately: the worker must keep parsing buffered frames across
  // backpressure pauses and answer every one before closing.
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  const std::string big(512 * 1024, 'b');
  ASSERT_EQ(client.Set("big", big), net::AsciiClient::StoreResult::kStored);

  constexpr int kGets = 20;  // 20 x 512 KiB = 10 MiB >> 4 MiB write cap
  std::string blob;
  for (int i = 0; i < kGets; ++i) blob += "get big\r\n";
  ASSERT_TRUE(client.SendRaw(blob));
  client.ShutdownWrite();
  for (int i = 0; i < kGets; ++i) {
    std::string line;
    ASSERT_TRUE(client.ReadLine(&line)) << "response " << i;
    ASSERT_EQ(line, "VALUE big 0 524288") << "response " << i;
    std::string data;
    ASSERT_TRUE(client.ReadBytes(big.size(), &data));
    EXPECT_EQ(data, big);
    ASSERT_TRUE(client.ReadLine(&line));  // data-block CRLF
    ASSERT_TRUE(client.ReadLine(&line));
    EXPECT_EQ(line, "END");
  }
}

TEST_F(NetE2eTest, StatsSurfaceProtocolAndCoreCounters) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  ASSERT_EQ(client.Set("s1", "v"), net::AsciiClient::StoreResult::kStored);
  client.Get("s1");
  client.Get("nope");
  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_set"), "1");
  EXPECT_EQ(stats.at("cmd_get"), "2");
  EXPECT_EQ(stats.at("get_hits"), "1");
  EXPECT_EQ(stats.at("get_misses"), "1");
  EXPECT_EQ(stats.at("num_shards"), "4");
  EXPECT_EQ(stats.at("bytes_stored"), "1");
  EXPECT_EQ(stats.at("cliffhanger_gets"), "2");
  EXPECT_EQ(stats.at("cliffhanger_sets"), "1");
  EXPECT_EQ(stats.at("app_1_reservation_bytes"),
            std::to_string(8 * kMiB));
}

TEST_F(NetE2eTest, AppPrefixRoutesToRegisteredApps) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 4;
  StartServer(config, {{1, 4 * kMiB}, {2, 4 * kMiB}}, 1);
  net::AsciiClient client = MakeClient();

  ASSERT_EQ(client.Set("plain", "a"), net::AsciiClient::StoreResult::kStored);
  ASSERT_EQ(client.Set("app2:k", "bb"),
            net::AsciiClient::StoreResult::kStored);
  EXPECT_EQ(client.Get("app2:k")->data, "bb");

  const ClassStats app1 = server_->AppStats(1);
  const ClassStats app2 = server_->AppStats(2);
  EXPECT_EQ(app1.sets, 1u);
  EXPECT_EQ(app2.sets, 1u);
  EXPECT_EQ(app2.gets, 1u);
  EXPECT_EQ(app2.hits, 1u);

  // Unregistered app: soft failure, nothing reaches the core.
  std::string line;
  ASSERT_TRUE(client.SendRaw("set app9:k 0 0 1\r\nx\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "SERVER_ERROR unknown application");
  EXPECT_FALSE(client.Get("app9:k").has_value());
}

TEST_F(NetE2eTest, ManyConnectionsHammerConcurrently) {
  StartDefaultServer();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      net::AsciiClient client;
      if (!client.Connect("127.0.0.1", socket_server_->port())) {
        failures.fetch_add(1);
        return;
      }
      Rng rng(0x7EA4 + static_cast<uint64_t>(t));
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key =
            "h" + std::to_string(t) + "_" + std::to_string(rng.NextBounded(64));
        if (rng.NextBernoulli(0.5)) {
          if (client.Set(key, "value") !=
              net::AsciiClient::StoreResult::kStored) {
            failures.fetch_add(1);
            return;
          }
        } else {
          const auto value = client.Get(key);
          if (value.has_value() && value->data != "value") {
            failures.fetch_add(1);
            return;
          }
        }
      }
      client.Quit();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const auto counters = adapter_->counters();
  EXPECT_GT(counters.cmd_get + counters.cmd_set,
            static_cast<uint64_t>(kThreads) * kOpsPerThread - 1);
}

// --- The new verbs: cas / arithmetic / concat / touch / flush ------------

TEST_F(NetE2eTest, CasStoresOnlyAtTheRightVersion) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  EXPECT_EQ(client.Cas("nope", "v", 1), SR::kNotFound);

  ASSERT_EQ(client.Set("k", "v1"), SR::kStored);
  const auto versioned = client.Gets("k");
  ASSERT_TRUE(versioned.has_value());

  // Right version stores; the stored value gets a NEW version, so the
  // same cas again is EXISTS (exactly memcached's optimistic-locking
  // contract).
  EXPECT_EQ(client.Cas("k", "v2", versioned->cas), SR::kStored);
  EXPECT_EQ(client.Cas("k", "v3", versioned->cas), SR::kExists);
  EXPECT_EQ(client.Get("k")->data, "v2");

  const auto fresh = client.Gets("k");
  ASSERT_TRUE(fresh.has_value());
  EXPECT_GT(fresh->cas, versioned->cas);
  EXPECT_EQ(client.Cas("k", "v3", fresh->cas), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, "v3");

  // A cas-stored value can change size (re-slab path runs under the hood).
  const std::string big(4096, 'x');
  const auto before_big = client.Gets("k");
  ASSERT_TRUE(before_big.has_value());
  EXPECT_EQ(client.Cas("k", big, before_big->cas), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, big);
}

TEST_F(NetE2eTest, IncrDecrFollowMemcachedArithmetic) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Absent key: NOT_FOUND is a clean miss (no error).
  EXPECT_FALSE(client.Incr("counter", 1).has_value());
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();

  ASSERT_EQ(client.Set("counter", "5"), SR::kStored);
  EXPECT_EQ(client.Incr("counter", 3), std::optional<uint64_t>(8));
  EXPECT_EQ(client.Get("counter")->data, "8");

  // decr saturates at zero; incr wraps modulo 2^64.
  EXPECT_EQ(client.Decr("counter", 100), std::optional<uint64_t>(0));
  EXPECT_EQ(client.Get("counter")->data, "0");
  ASSERT_EQ(client.Set("counter", "18446744073709551615"), SR::kStored);
  EXPECT_EQ(client.Incr("counter", 2), std::optional<uint64_t>(1));
  // The rewrite shrank the value from 20 digits to 1 — re-slab flowed
  // through and GET serves the new bytes.
  EXPECT_EQ(client.Get("counter")->data, "1");

  // Arithmetic bumps the cas version like any store.
  const auto before = client.Gets("counter");
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(client.Incr("counter", 1), std::optional<uint64_t>(2));
  const auto after = client.Gets("counter");
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->cas, before->cas);

  // Non-numeric value: the dedicated memcached error, value untouched.
  ASSERT_EQ(client.Set("word", "hello"), SR::kStored);
  EXPECT_FALSE(client.Incr("word", 1).has_value());
  EXPECT_NE(client.last_error().find(
                "cannot increment or decrement non-numeric value"),
            std::string::npos)
      << client.last_error();
  EXPECT_EQ(client.Get("word")->data, "hello");

  // Raw numeric-reply grammar: the bare decimal, CRLF-terminated.
  ASSERT_TRUE(client.SendRaw("incr counter 7\r\n"));
  std::string line;
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, "9");
}

TEST_F(NetE2eTest, AppendPrependSpliceAndReslab) {
  StartDefaultServer();
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Both verbs demand an existing item.
  EXPECT_EQ(client.Append("missing", "x"), SR::kNotStored);
  EXPECT_EQ(client.Prepend("missing", "x"), SR::kNotStored);

  ASSERT_EQ(client.Set("k", "bb", /*flags=*/7), SR::kStored);
  const auto v0 = client.Gets("k");
  ASSERT_TRUE(v0.has_value());
  EXPECT_EQ(client.Append("k", "cc"), SR::kStored);
  EXPECT_EQ(client.Prepend("k", "aa"), SR::kStored);
  const auto v1 = client.Gets("k");
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->data, "aabbcc");
  // Flags survive a splice (memcached ignores the command-line flags);
  // the cas version does not.
  EXPECT_EQ(v1->flags, 7u);
  EXPECT_GT(v1->cas, v0->cas);

  // Splicing past the hard value cap rejects but keeps the original.
  const std::string half(600 * 1024, 'z');
  ASSERT_EQ(client.Set("big", half), SR::kStored);
  std::string line;
  ASSERT_TRUE(client.SendRaw("append big 0 0 " +
                             std::to_string(half.size()) + "\r\n" + half +
                             "\r\n"));
  ASSERT_TRUE(client.ReadLine(&line));
  EXPECT_EQ(line, net::kErrTooLarge);
  EXPECT_EQ(client.Get("big")->data, half);
}

TEST_F(NetE2eTest, ExpiryIsLazyAndDeterministicUnderTheInjectedClock) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  // Relative exptime: 10 seconds from now => absolute second 1010.
  ASSERT_EQ(client.Set("ttl", "v", 0, /*exptime=*/10), SR::kStored);
  EXPECT_TRUE(client.Get("ttl").has_value());
  fake_now_.store(1009);
  EXPECT_TRUE(client.Get("ttl").has_value());  // second 1009: still alive
  fake_now_.store(1010);
  EXPECT_FALSE(client.Get("ttl").has_value());  // expiry second: gone
  // Expired stays gone (the first miss reclaimed it) and a fresh store
  // resurrects the key with a new TTL.
  EXPECT_FALSE(client.Get("ttl").has_value());
  ASSERT_EQ(client.Set("ttl", "v2", 0, 10), SR::kStored);
  EXPECT_EQ(client.Get("ttl")->data, "v2");

  // Negative exptime: stored but immediately expired, like memcached.
  ASSERT_EQ(client.Set("dead", "v", 0, -1), SR::kStored);
  EXPECT_FALSE(client.Get("dead").has_value());

  // An exptime past the 30-day cutoff is an absolute unix second, not a
  // relative offset.
  const int64_t absolute = 3000000000LL;
  ASSERT_EQ(client.Set("abs", "v", 0, absolute), SR::kStored);
  EXPECT_TRUE(client.Get("abs").has_value());
  fake_now_.store(static_cast<uint32_t>(absolute) - 1);
  EXPECT_TRUE(client.Get("abs").has_value());
  fake_now_.store(static_cast<uint32_t>(absolute));
  EXPECT_FALSE(client.Get("abs").has_value());

  const auto stats = client.Stats();
  EXPECT_GE(std::stoull(stats.at("get_expired")), 3ull);
}

TEST_F(NetE2eTest, ExpiredKeysActAbsentForEveryConditionalVerb) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  ASSERT_EQ(client.Set("k", "5", 0, 10), SR::kStored);
  fake_now_.store(1010);  // expired, not yet observed by any GET

  EXPECT_EQ(client.Replace("k", "x"), SR::kNotStored);
  EXPECT_EQ(client.Append("k", "x"), SR::kNotStored);
  EXPECT_FALSE(client.Incr("k", 1).has_value());
  EXPECT_TRUE(client.last_error().empty());
  EXPECT_FALSE(client.Touch("k", 100));
  EXPECT_EQ(client.Cas("k", "x", 1), SR::kNotFound);
  EXPECT_FALSE(client.Delete("k"));  // NOT_FOUND, like memcached
  // add treats the expired key as absent and stores fresh.
  EXPECT_EQ(client.Add("k", "new", 0, 0), SR::kStored);
  EXPECT_EQ(client.Get("k")->data, "new");
}

TEST_F(NetE2eTest, TouchExtendsAndCutsLifetimes) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  EXPECT_FALSE(client.Touch("missing", 100));
  EXPECT_TRUE(client.last_error().empty()) << client.last_error();

  ASSERT_EQ(client.Set("k", "v", 0, 10), SR::kStored);  // dies at 1010
  fake_now_.store(1005);
  EXPECT_TRUE(client.Touch("k", 100));  // now dies at 1105
  fake_now_.store(1050);
  EXPECT_TRUE(client.Get("k").has_value());
  fake_now_.store(1105);
  EXPECT_FALSE(client.Get("k").has_value());

  // touch -1 expires immediately; touch 0 makes an item permanent.
  ASSERT_EQ(client.Set("cut", "v"), SR::kStored);
  EXPECT_TRUE(client.Touch("cut", -1));
  EXPECT_FALSE(client.Get("cut").has_value());
  ASSERT_EQ(client.Set("keep", "v", 0, 5), SR::kStored);
  EXPECT_TRUE(client.Touch("keep", 0));
  fake_now_.store(2000000);
  EXPECT_TRUE(client.Get("keep").has_value());

  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_touch"), "4");
  EXPECT_EQ(stats.at("touch_hits"), "3");
  EXPECT_EQ(stats.at("touch_misses"), "1");
}

TEST_F(NetE2eTest, FlushAllInvalidatesLazilyWithOptionalDelay) {
  StartDefaultServerAt(1000);
  net::AsciiClient client = MakeClient();
  using SR = net::AsciiClient::StoreResult;

  ASSERT_EQ(client.Set("a", "1"), SR::kStored);
  ASSERT_EQ(client.Set("b", "2"), SR::kStored);
  fake_now_.store(1001);
  EXPECT_TRUE(client.FlushAll());
  EXPECT_FALSE(client.Get("a").has_value());
  EXPECT_FALSE(client.Get("b").has_value());
  // Items stored at/after the flush point survive.
  ASSERT_EQ(client.Set("c", "3"), SR::kStored);
  EXPECT_TRUE(client.Get("c").has_value());

  // Delayed flush: alive until the scheduled second, dead after.
  ASSERT_EQ(client.Set("d", "4"), SR::kStored);
  EXPECT_TRUE(client.FlushAll(/*delay=*/10));  // fires at 1011
  fake_now_.store(1005);
  EXPECT_TRUE(client.Get("d").has_value());
  fake_now_.store(1011);
  EXPECT_FALSE(client.Get("d").has_value());
  EXPECT_FALSE(client.Get("c").has_value());  // c predates the point too

  const auto stats = client.Stats();
  EXPECT_EQ(stats.at("cmd_flush"), "2");
}

// --- Satellite regression: Stop() must never wedge -----------------------

TEST_F(NetE2eTest, StopDoesNotWedgeWithPendingAndIdleConnections) {
  StartDefaultServer();
  // A mix of abusive client states: connected-but-silent, half-written
  // frames, and unread pending responses. None may wedge Stop.
  std::vector<net::AsciiClient> clients(6);
  for (size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i].Connect("127.0.0.1", socket_server_->port()));
  }
  ASSERT_TRUE(clients[1].SendRaw("get half"));          // partial frame
  ASSERT_TRUE(clients[2].SendRaw("set k 0 0 100\r\nabc"));  // partial data
  ASSERT_TRUE(clients[3].SendRaw("version\r\n"));       // unread response
  clients[4].ShutdownWrite();                           // half-closed

  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    socket_server_->Stop();
    stopped.store(true);
  });
  // Generous deadline: a wedged Stop (blocking accept, lost wakeup) hangs
  // forever, so any completion below the cap is a pass.
  for (int i = 0; i < 500 && !stopped.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(stopped.load()) << "SocketServer::Stop wedged";
  if (!stopped.load()) stopper.detach();  // don't hang the test binary
  else stopper.join();
  EXPECT_FALSE(socket_server_->running());
}

TEST_F(NetE2eTest, RepeatedStartStopCyclesStayClean) {
  ShardedServerConfig config;
  config.server = DefaultServerConfig();
  config.num_shards = 2;
  StartServer(config, {{1, 4 * kMiB}}, 1);
  for (int round = 0; round < 3; ++round) {
    net::AsciiClient client = MakeClient();
    EXPECT_EQ(client.Set("k", "v"), net::AsciiClient::StoreResult::kStored);
    socket_server_->Stop();
    ASSERT_FALSE(socket_server_->running());
    net::SocketServerConfig net_config;
    net_config.port = 0;
    net_config.num_workers = 2;
    socket_server_ =
        std::make_unique<net::SocketServer>(net_config, adapter_.get());
    std::string error;
    ASSERT_TRUE(socket_server_->Start(&error)) << error;
  }
}

// --- The determinism test -------------------------------------------------

// Mirrors CacheAdapter's size bookkeeping against a library server: the
// only state a memcached client can convey is what it has stored, so the
// reference tracks exactly that (value_size per known key, kept across
// evictions) and issues the same core calls the adapter issues.
class LibraryReplay {
 public:
  explicit LibraryReplay(ShardedCacheServer* server, uint32_t app_id)
      : server_(server), app_id_(app_id) {}

  // Demand-fill GET; returns true on hit.
  bool Get(uint64_t key_id, uint32_t key_size, uint32_t fill_value_size) {
    const auto it = known_.find(key_id);
    const uint32_t probe_size = it == known_.end() ? 0 : it->second;
    const Outcome outcome =
        server_->Get(app_id_, ItemMeta{key_id, key_size, probe_size});
    if (outcome.hit) return true;
    Set(key_id, key_size, fill_value_size);
    return false;
  }

  void Set(uint64_t key_id, uint32_t key_size, uint32_t value_size) {
    const auto it = known_.find(key_id);
    if (it != known_.end() && it->second != value_size) {
      server_->Delete(app_id_, ItemMeta{key_id, key_size, it->second});
    }
    if (server_->Set(app_id_, ItemMeta{key_id, key_size, value_size})) {
      known_[key_id] = value_size;
    } else {
      known_.erase(key_id);
    }
  }

 private:
  ShardedCacheServer* server_;
  uint32_t app_id_;
  std::unordered_map<uint64_t, uint32_t> known_;
};

void ExpectStatsEqual(const ClassStats& a, const ClassStats& b,
                      const char* what) {
  EXPECT_EQ(a.gets, b.gets) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.sets, b.sets) << what;
  EXPECT_EQ(a.tail_hits, b.tail_hits) << what;
  EXPECT_EQ(a.cliff_shadow_hits, b.cliff_shadow_hits) << what;
  EXPECT_EQ(a.hill_shadow_hits, b.hill_shadow_hits) << what;
}

TEST_F(NetE2eTest, SocketReplayIsBitIdenticalToLibraryReplay) {
  // Full Cliffhanger controllers on both sides: any distortion of the op
  // stream (a lost get, a misrouted size, a reordered fill) shifts the
  // hill climber or cliff scaler and shows up in the counters.
  ShardedServerConfig config;
  config.server = CliffhangerServerConfig();
  config.num_shards = 4;
  config.rebalance_interval_ops = 4096;
  constexpr uint32_t kApp = 1;
  // Far below the trace's ~1.9 MiB unique footprint, so the replay runs in
  // the eviction + shadow-traffic regime the controllers live on.
  constexpr uint64_t kReservation = 1 * kMiB;

  ZipfTraceSpec spec;
  spec.requests = 24000;
  spec.universe = 6000;
  spec.zipf_alpha = 0.9;
  spec.seed = 0xD37E12;
  spec.app_id = kApp;
  spec.get_fraction = 0.9;  // 10% explicit SETs ride along
  const Trace trace = MakeZipfMixTrace(spec);

  // Library pass.
  ShardedCacheServer library_server(config);
  library_server.AddApp(kApp, kReservation);
  LibraryReplay replay(&library_server, kApp);
  uint64_t library_hits = 0;
  for (const Request& r : trace) {
    const std::string key = net::ReplayKeyString(r.key);
    const uint64_t key_id = Fnv1a64(key);
    if (r.is_get()) {
      library_hits += replay.Get(key_id, r.key_size, r.value_size) ? 1 : 0;
    } else {
      replay.Set(key_id, r.key_size, r.value_size);
    }
  }

  // Socket pass: same config, one connection, demand-fill via the client.
  StartServer(config, {{kApp, kReservation}}, kApp);
  net::AsciiClient client = MakeClient();
  uint64_t socket_hits = 0;
  uint64_t value_mismatches = 0;
  for (const Request& r : trace) {
    const std::string key = net::ReplayKeyString(r.key);
    if (r.is_get()) {
      const auto value = client.Get(key);
      if (value.has_value()) {
        ++socket_hits;
        if (value->data != net::ReplayValueBytes(r.key, r.value_size)) {
          ++value_mismatches;
        }
      } else {
        ASSERT_EQ(client.Set(key, net::ReplayValueBytes(r.key, r.value_size)),
                  net::AsciiClient::StoreResult::kStored);
      }
    } else {
      ASSERT_EQ(client.Set(key, net::ReplayValueBytes(r.key, r.value_size)),
                net::AsciiClient::StoreResult::kStored);
    }
  }
  client.Quit();

  EXPECT_EQ(socket_hits, library_hits);
  EXPECT_EQ(value_mismatches, 0u);
  ExpectStatsEqual(server_->MergedStats(), library_server.MergedStats(),
                   "merged");
  ExpectStatsEqual(server_->AppStats(kApp), library_server.AppStats(kApp),
                   "app");
  for (size_t shard = 0; shard < config.num_shards; ++shard) {
    ExpectStatsEqual(server_->ShardStats(shard),
                     library_server.ShardStats(shard), "shard");
  }
  // The workload must actually have exercised eviction + shadow machinery,
  // or the equality above proves nothing.
  const ClassStats merged = server_->MergedStats();
  EXPECT_GT(merged.gets, 0u);
  EXPECT_LT(merged.hits, merged.gets);
  EXPECT_GT(merged.hill_shadow_hits + merged.cliff_shadow_hits, 0u);
}

}  // namespace
}  // namespace cliffhanger
