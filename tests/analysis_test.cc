// Tests for the analysis layer: exact stack distances, Mimir estimation,
// hit-rate curves, the Dynacache solver, LookAhead and the Talus oracle.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/dynacache_solver.h"
#include "analysis/hit_rate_curve.h"
#include "analysis/lookahead.h"
#include "analysis/mimir.h"
#include "analysis/stack_distance.h"
#include "analysis/talus.h"
#include "util/rng.h"
#include "workload/zipf.h"

namespace cliffhanger {
namespace {

// Brute-force reference for stack distances.
class NaiveStack {
 public:
  uint64_t Record(uint64_t key) {
    for (size_t i = 0; i < stack_.size(); ++i) {
      if (stack_[i] == key) {
        const uint64_t distance = i + 1;
        stack_.erase(stack_.begin() + static_cast<long>(i));
        stack_.insert(stack_.begin(), key);
        return distance;
      }
    }
    stack_.insert(stack_.begin(), key);
    return 0;
  }

 private:
  std::vector<uint64_t> stack_;
};

TEST(StackDistance, MatchesNaiveOnRandomTrace) {
  StackDistanceAnalyzer fast;
  NaiveStack naive;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t key = rng.NextBounded(300);
    EXPECT_EQ(fast.Record(key), naive.Record(key)) << "access " << i;
  }
}

TEST(StackDistance, SimplePattern) {
  StackDistanceAnalyzer a;
  EXPECT_EQ(a.Record(1), 0u);  // cold
  EXPECT_EQ(a.Record(1), 1u);  // top of stack
  EXPECT_EQ(a.Record(2), 0u);
  EXPECT_EQ(a.Record(1), 2u);  // one distinct key in between
  EXPECT_EQ(a.cold_misses(), 2u);
  EXPECT_EQ(a.unique_keys(), 2u);
}

TEST(StackDistance, SequentialScanDistancesEqualUniverse) {
  StackDistanceAnalyzer a;
  constexpr uint64_t kN = 100;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (uint64_t k = 0; k < kN; ++k) {
      const uint64_t d = a.Record(k);
      if (cycle > 0) {
        EXPECT_EQ(d, kN);
      }
    }
  }
}

TEST(StackDistance, HistogramAccumulates) {
  StackDistanceAnalyzer a;
  a.Record(1);
  a.Record(1);
  a.Record(1);
  ASSERT_GT(a.histogram().size(), 1u);
  EXPECT_EQ(a.histogram()[1], 2u);
}

TEST(Mimir, EstimatesWithinBucketError) {
  // With B buckets over U resident keys, error should be O(U/B).
  constexpr uint64_t kU = 2000;
  MimirEstimator mimir(100);
  StackDistanceAnalyzer exact;
  Rng rng(31);
  ZipfTable zipf(kU, 0.9);
  // Warm up.
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = zipf.Sample(rng);
    mimir.Record(k);
    exact.Record(k);
  }
  double total_err = 0.0;
  int measured = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = zipf.Sample(rng);
    const uint64_t est = mimir.Record(k);
    const uint64_t ref = exact.Record(k);
    if (ref > 0 && est > 0) {
      total_err += std::abs(static_cast<double>(est) -
                            static_cast<double>(ref));
      ++measured;
    }
  }
  ASSERT_GT(measured, 1000);
  // Mean absolute error well under a couple of bucket widths (U/B = 20).
  EXPECT_LT(total_err / measured, 3.0 * kU / 100);
}

TEST(Mimir, ColdMissesCounted) {
  MimirEstimator mimir(10);
  EXPECT_EQ(mimir.Record(1), 0u);
  EXPECT_GT(mimir.Record(1), 0u);
  EXPECT_EQ(mimir.cold_misses(), 1u);
}

TEST(HitRateCurve, CumulativeFromHistogram) {
  // 10 accesses at distance 5, 10 at distance 20, total 40 accesses
  // (20 with infinite distance).
  std::vector<uint64_t> hist(21, 0);
  hist[5] = 10;
  hist[20] = 10;
  const PiecewiseCurve curve = CurveFromHistogram(hist, 40, 1024);
  EXPECT_NEAR(curve.Eval(5), 0.25, 1e-9);
  EXPECT_NEAR(curve.Eval(19), 0.25, 1e-9);
  EXPECT_NEAR(curve.Eval(20), 0.5, 1e-9);
  EXPECT_NEAR(curve.Eval(1000), 0.5, 1e-9);
}

TEST(HitRateCurve, ScanMakesAStep) {
  StackDistanceAnalyzer a;
  constexpr uint64_t kN = 500;
  for (int cycle = 0; cycle < 10; ++cycle) {
    for (uint64_t k = 0; k < kN; ++k) a.Record(k);
  }
  const PiecewiseCurve curve =
      CurveFromHistogram(a.histogram(), a.total_accesses(), 1 << 20);
  EXPECT_LT(curve.Eval(kN - 2), 0.05);
  EXPECT_GT(curve.Eval(kN), 0.85);
  EXPECT_FALSE(curve.IsConcave(1e-6));
}

TEST(HitRateCurve, ZipfIsConcaveAfterDownsampling) {
  StackDistanceAnalyzer a;
  Rng rng(7);
  ZipfTable zipf(5000, 1.0);
  for (int i = 0; i < 200000; ++i) a.Record(zipf.Sample(rng));
  const PiecewiseCurve curve =
      CurveFromHistogram(a.histogram(), a.total_accesses(), 64);
  // Spot-check decreasing increments on a coarse grid.
  double prev_gain = 1e9;
  for (double x = 250; x <= 5000; x += 250) {
    const double gain = curve.Eval(x) - curve.Eval(x - 250);
    EXPECT_LE(gain, prev_gain + 0.02) << "x=" << x;
    prev_gain = gain;
  }
}

TEST(HitRateCurve, ScaleCurveX) {
  PiecewiseCurve c({10.0, 20.0}, {0.5, 1.0});
  const PiecewiseCurve scaled = ScaleCurveX(c, 64.0);
  EXPECT_DOUBLE_EQ(scaled.Eval(640), 0.5);
  EXPECT_DOUBLE_EQ(scaled.Eval(1280), 1.0);
}

SolverQueueInput MakeQueue(PiecewiseCurve curve, double share) {
  SolverQueueInput q;
  q.curve = std::move(curve);
  q.request_share = share;
  return q;
}

TEST(Solver, PrefersSteeperCurve) {
  // Queue A saturates at 100 bytes; queue B needs 1000 for the same rate.
  PiecewiseCurve steep({100.0}, {0.9});
  PiecewiseCurve shallow({1000.0}, {0.9});
  SolverConfig config;
  config.total_bytes = 600;
  config.step_bytes = 50;
  config.transform = CurveTransform::kRaw;
  const SolverResult result = SolveAllocation(
      {MakeQueue(steep, 0.5), MakeQueue(shallow, 0.5)}, config);
  EXPECT_GE(result.allocation_bytes[0], 100u);
  EXPECT_GT(result.allocation_bytes[1], result.allocation_bytes[0]);
}

TEST(Solver, WeightsByRequestShare) {
  // Identical curves; the hot queue should get at least as much memory.
  PiecewiseCurve c({100.0, 1000.0}, {0.5, 0.9});
  SolverConfig config;
  config.total_bytes = 1000;
  config.step_bytes = 50;
  config.transform = CurveTransform::kRaw;
  const SolverResult result =
      SolveAllocation({MakeQueue(c, 0.9), MakeQueue(c, 0.1)}, config);
  EXPECT_GT(result.allocation_bytes[0], result.allocation_bytes[1]);
}

TEST(Solver, RespectsBudgetAndFloors) {
  PiecewiseCurve c({1000.0}, {0.9});
  SolverQueueInput a = MakeQueue(c, 0.5);
  a.min_bytes = 128;
  SolverQueueInput b = MakeQueue(c, 0.5);
  b.min_bytes = 128;
  SolverConfig config;
  config.total_bytes = 1024;
  config.step_bytes = 64;
  const SolverResult result = SolveAllocation({a, b}, config);
  EXPECT_LE(result.allocation_bytes[0] + result.allocation_bytes[1], 1024u);
  EXPECT_GE(result.allocation_bytes[0], 128u);
  EXPECT_GE(result.allocation_bytes[1], 128u);
}

PiecewiseCurve StepCliff() {
  // Nothing until 900 bytes, then 0.9 — a pure performance cliff.
  std::vector<double> xs, ys;
  for (int i = 1; i <= 10; ++i) {
    xs.push_back(i * 100.0);
    ys.push_back(i < 9 ? 0.0 : 0.9);
  }
  return PiecewiseCurve(xs, ys);
}

TEST(Solver, ConcaveRegressionStopsMidCliffHullRecovers) {
  // The paper's application-19 failure mode, in miniature: a 20%-of-traffic
  // cliff queue against an 80% concave queue. The concave regression smears
  // the cliff into a ramp whose slope loses to the concave queue's head, so
  // the allocator parks the cliff queue mid-ramp — where the *real* curve
  // still yields zero.
  const PiecewiseCurve cliff = StepCliff();
  PiecewiseCurve concave({100.0, 500.0, 1000.0}, {0.4, 0.6, 0.65});
  SolverConfig config;
  config.total_bytes = 1200;
  config.step_bytes = 100;

  config.transform = CurveTransform::kConcaveRegression;
  const SolverResult dyna = SolveAllocation(
      {MakeQueue(cliff, 0.2), MakeQueue(concave, 0.8)}, config);
  EXPECT_LT(dyna.allocation_bytes[0], 900u);  // parked below the cliff top
  const double dyna_true = 0.2 * cliff.Eval(static_cast<double>(
                                     dyna.allocation_bytes[0])) +
                           0.8 * concave.Eval(static_cast<double>(
                                     dyna.allocation_bytes[1]));
  // The solver believed the ramp; reality delivers much less.
  EXPECT_GT(dyna.predicted_hit_rate, dyna_true + 0.05);

  // The hull allocation is the same, but the hull is *achievable* by Talus
  // partitioning — the very gap Cliffhanger's cliff scaler closes online.
  config.transform = CurveTransform::kConcaveHull;
  const SolverResult hull = SolveAllocation(
      {MakeQueue(cliff, 0.2), MakeQueue(concave, 0.8)}, config);
  EXPECT_GT(hull.predicted_hit_rate, dyna_true + 0.05);
}

TEST(LookAhead, ScalesTheCliffWhenBudgetAllows) {
  const PiecewiseCurve cliff = StepCliff();
  PiecewiseCurve concave({100.0, 500.0, 1000.0}, {0.4, 0.6, 0.65});
  SolverConfig config;
  config.total_bytes = 1600;
  config.step_bytes = 100;
  // One-step greedy on the raw curve never sees past the flat region...
  config.transform = CurveTransform::kRaw;
  const SolverResult raw = SolveAllocation(
      {MakeQueue(cliff, 0.2), MakeQueue(concave, 0.8)}, config);
  EXPECT_LT(raw.allocation_bytes[0], 900u);
  // ...while LookAhead prices the whole 900-byte window and jumps it.
  const SolverResult look = SolveLookAhead(
      {MakeQueue(cliff, 0.2), MakeQueue(concave, 0.8)}, config);
  EXPECT_GE(look.allocation_bytes[0], 900u);
  const double look_true =
      0.2 * cliff.Eval(static_cast<double>(look.allocation_bytes[0])) +
      0.8 * concave.Eval(static_cast<double>(look.allocation_bytes[1]));
  const double raw_true =
      0.2 * cliff.Eval(static_cast<double>(raw.allocation_bytes[0])) +
      0.8 * concave.Eval(static_cast<double>(raw.allocation_bytes[1]));
  EXPECT_GT(look_true, raw_true);
}

TEST(Talus, ReproducesPaperExample) {
  // Figure 4: operating point 8000 items, hull anchors 2000 and 13500 —
  // flat-ish between 2000 and 13500 with a jump at the cliff.
  std::vector<double> xs, ys;
  xs = {500.0, 2000.0, 5000.0, 9000.0, 13000.0, 13500.0, 16000.0};
  ys = {0.15, 0.35, 0.36, 0.37, 0.38, 0.90, 0.91};
  PiecewiseCurve cliff(xs, ys);
  const TalusSplit split = ComputeTalusSplit(cliff, 8000.0);
  ASSERT_TRUE(split.partitioned);
  EXPECT_NEAR(split.left_simulated, 2000.0, 1.0);
  EXPECT_NEAR(split.right_simulated, 13500.0, 1.0);
  EXPECT_NEAR(split.request_ratio_left, 0.478, 0.01);
  EXPECT_NEAR(split.left_physical, 957.0, 10.0);
  EXPECT_NEAR(split.right_physical, 7043.0, 10.0);
  EXPECT_NEAR(split.left_physical + split.right_physical, 8000.0, 1.0);
  // The hull value beats the raw curve at 8000.
  EXPECT_GT(split.expected_hit_rate, cliff.Eval(8000.0) + 0.1);
}

TEST(Talus, NoSplitOnConcaveCurve) {
  PiecewiseCurve concave({1000.0, 2000.0, 4000.0}, {0.4, 0.6, 0.7});
  const TalusSplit split = ComputeTalusSplit(concave, 1500.0);
  EXPECT_FALSE(split.partitioned);
  EXPECT_NEAR(split.expected_hit_rate, concave.Eval(1500.0), 0.02);
}

TEST(Talus, NoSplitBeyondCurve) {
  PiecewiseCurve c({1000.0}, {0.9});
  const TalusSplit split = ComputeTalusSplit(c, 5000.0);
  EXPECT_FALSE(split.partitioned);
  EXPECT_NEAR(split.expected_hit_rate, 0.9, 1e-9);
}

}  // namespace
}  // namespace cliffhanger
