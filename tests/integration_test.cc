// End-to-end integration tests: the paper's headline behaviours reproduced
// at reduced scale (suite scale 0.2-0.3, short traces) so they run in
// seconds under ctest. The full-scale numbers live in the bench drivers.
#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "workload/memcachier_suite.h"

namespace cliffhanger {
namespace {

constexpr double kScale = 0.25;

TEST(Integration, ChurnAppSolverAndCliffhangerBeatDefault) {
  // App 6 (Table 1): a one-hit churn class starves the hot class under
  // FCFS. Both the solver and Cliffhanger fix it.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(6);
  const Trace trace = suite.GenerateAppTrace(6, 400000, 42);

  const SimResult fcfs = RunApp(app, trace, DefaultServerConfig());
  const SimResult solver = RunAppWithSolver(app, trace);
  const SimResult cliffhanger = RunApp(app, trace, CliffhangerServerConfig());

  EXPECT_GT(solver.hit_rate(), fcfs.hit_rate() + 0.05);
  EXPECT_GT(cliffhanger.hit_rate(), fcfs.hit_rate() + 0.05);
  // Miss reduction is the paper's headline metric for this app (~90%).
  const double reduction =
      1.0 - static_cast<double>(cliffhanger.total.misses()) /
                static_cast<double>(fcfs.total.misses());
  EXPECT_GT(reduction, 0.2);
}

TEST(Integration, CliffhangerRecoversCliffApp) {
  // App 19 (Figure 9): both classes sit on performance cliffs. Hill
  // climbing alone gets stuck; the combined algorithm scales them.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(19);
  const Trace trace = suite.GenerateAppTrace(19, 500000, 7);

  const SimResult fcfs = RunApp(app, trace, DefaultServerConfig());
  const SimResult combined = RunApp(app, trace, CliffhangerServerConfig());
  EXPECT_GT(combined.hit_rate(), fcfs.hit_rate());
}

TEST(Integration, CombinedAtLeastAsGoodAsAblations) {
  // Table 4's shape: combined >= max(hill-only, cliff-only) within noise.
  // Full scale: the scaler's engagement thresholds are calibrated to
  // full-size queues.
  MemcachierSuite suite(1.0);
  const SuiteApp& app = suite.app(19);
  const Trace trace = suite.GenerateAppTrace(19, 1200000, 11);

  const double combined =
      RunApp(app, trace, CliffhangerServerConfig()).hit_rate();
  const double hill_only =
      RunApp(app, trace, HillClimbingOnlyConfig()).hit_rate();
  const double cliff_only =
      RunApp(app, trace, CliffScalingOnlyConfig()).hit_rate();
  EXPECT_GE(combined + 0.05, hill_only);
  EXPECT_GE(combined + 0.05, cliff_only);
}

TEST(Integration, DriftAppFavorsCliffhangerOverSolver) {
  // App 9 (§5.2): the weekly-aggregate profile misleads the one-shot
  // solver; the incremental algorithm tracks the drift.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(9);
  const Trace trace = suite.GenerateAppTrace(9, 400000, 13);

  const SimResult solver = RunAppWithSolver(app, trace);
  const SimResult cliffhanger = RunApp(app, trace, CliffhangerServerConfig());
  EXPECT_GT(cliffhanger.hit_rate(), solver.hit_rate() - 0.02);
}

TEST(Integration, WellProvisionedAppIsNotHurt) {
  // Cliffhanger must not regress applications with nothing to optimize.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(20);
  const Trace trace = suite.GenerateAppTrace(20, 200000, 17);

  const SimResult fcfs = RunApp(app, trace, DefaultServerConfig());
  const SimResult cliffhanger = RunApp(app, trace, CliffhangerServerConfig());
  EXPECT_GT(cliffhanger.hit_rate(), fcfs.hit_rate() - 0.02);
}

TEST(Integration, GlobalLogBeatsSlabsOnMixedSizes) {
  // Table 2: log-structured global LRU removes fragmentation and the
  // per-class static split, beating default slab allocation.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(3);
  const Trace trace = suite.GenerateAppTrace(3, 300000, 19);

  const SimResult slab = RunApp(app, trace, DefaultServerConfig());
  ServerConfig log_config = DefaultServerConfig();
  log_config.eviction = EvictionScheme::kGlobalLog;
  const SimResult log = RunApp(app, trace, log_config);
  EXPECT_GE(log.hit_rate(), slab.hit_rate() - 0.01);
}

TEST(Integration, MidpointInsertionDoesNotRegressLru) {
  // §5.5: the Facebook scheme performs at least comparably to plain LRU on
  // these workloads.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(3);
  const Trace trace = suite.GenerateAppTrace(3, 300000, 23);

  const SimResult lru = RunApp(app, trace, DefaultServerConfig());
  ServerConfig fb = DefaultServerConfig();
  fb.eviction = EvictionScheme::kMidpoint;
  const SimResult midpoint = RunApp(app, trace, fb);
  EXPECT_GT(midpoint.hit_rate(), lru.hit_rate() - 0.03);
}

TEST(Integration, CrossAppOptimizationHelpsUnderProvisionedTenant) {
  // Table 3: cross-application optimization takes memory from over-
  // provisioned tenants and gives it to app 2.
  MemcachierSuite suite(kScale);
  const std::vector<int> ids{1, 2, 3, 4, 5};
  const Trace trace = suite.GenerateMixedTrace(ids, 600000, 29);

  // Baseline: static per-app reservations.
  ServerConfig config = DefaultServerConfig();
  CacheServer baseline(config);
  for (const int id : ids) {
    baseline.AddApp(static_cast<uint32_t>(id), suite.app(id).reservation);
  }
  const SimResult before = Replay(baseline, trace);

  // Cross-app Cliffhanger.
  ServerConfig cross = CliffhangerServerConfig();
  cross.knobs.cross_app = true;
  CacheServer optimized(cross);
  for (const int id : ids) {
    optimized.AddApp(static_cast<uint32_t>(id), suite.app(id).reservation);
  }
  const SimResult after = Replay(optimized, trace);

  // App 2 (badly under-provisioned) must improve.
  EXPECT_GT(after.app_hit_rate(2), before.app_hit_rate(2) + 0.02);
}

TEST(Integration, MemorySavingsExistForOptimizableApps) {
  // Figure 7's right axis: Cliffhanger reaches the default hit rate with
  // less memory.
  MemcachierSuite suite(kScale);
  const SuiteApp& app = suite.app(6);
  const Trace trace = suite.GenerateAppTrace(6, 300000, 31);
  const double default_rate =
      RunApp(app, trace, DefaultServerConfig()).app_hit_rate(6);
  const double fraction = FindCapacityFractionForHitRate(
      app, trace, CliffhangerServerConfig(), default_rate,
      {0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
  EXPECT_LE(fraction, 0.8);
}

}  // namespace
}  // namespace cliffhanger
