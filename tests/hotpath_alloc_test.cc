// Counting-allocator proof of the in-arena design's headline property: at
// steady state, the GET/SET hot path performs ZERO heap allocations.
//
// The global operator new/delete are overridden in this translation unit
// (this test gets its own binary, so nothing else is affected) with a
// windowed counter. A ShardedCacheServer running real value storage is
// churned through eviction-heavy SET/GET traffic until every pool is at
// its high-water mark — queue node arenas, flat indexes, value-arena pages
// and free lists — and then the same traffic runs again with counting on.
// Any allocation inside the window is a regression: payload writes must be
// memcpy into recycled slots, index updates must be open-addressing
// relinks, and evictions must push slots onto free lists.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/sharded_server.h"
#include "sim/experiment.h"
#include "util/hashing.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return CountedAlloc(size); }
void* operator new[](size_t size) { return CountedAlloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace cliffhanger {
namespace {

constexpr uint32_t kApp = 1;

// Eviction-heavy single-class churn: the keyset's chunk footprint is ~2x
// the reservation, so every warm pass both fills recycled slots and evicts
// through the listener.
struct HotPathRig {
  explicit HotPathRig(const ServerConfig& server_config)
      : config(MakeConfig(server_config)), server(config) {
    server.AddApp(kApp, 256 * 1024);
    keys.reserve(kKeys);
    for (int i = 0; i < kKeys; ++i) {
      const std::string key = "hot" + std::to_string(i);
      keys.push_back(Fnv1a64(key));
    }
    value.assign(64, 'h');
  }

  static ShardedServerConfig MakeConfig(const ServerConfig& server_config) {
    ShardedServerConfig config;
    config.server = server_config;
    config.server.store_values = true;
    config.num_shards = 2;
    // The rebalancer allocates when it fires; it is cadence-driven, not
    // hot-path, so park it far beyond this test's op count.
    config.rebalance_interval_ops = 1ULL << 40;
    return config;
  }

  void Pass(uint32_t now_s) {
    for (int i = 0; i < kKeys; ++i) {
      ItemMeta item{keys[static_cast<size_t>(i)], 8,
                    static_cast<uint32_t>(value.size())};
      item.now_s = now_s;
      server.SetValue(kApp, item, value.data(), 0,
                      static_cast<uint64_t>(i) + 1);
      // GET a key stored a while ago: a mix of hits (recent survivors) and
      // misses (already evicted), both on the counted path.
      const uint64_t probe = keys[static_cast<size_t>((i * 7 + 3) % kKeys)];
      server.GetValue(kApp, probe, 8, now_s, /*flush_at_s=*/0);
    }
  }

  static constexpr int kKeys = 4096;
  ShardedServerConfig config;
  ShardedCacheServer server;
  std::vector<uint64_t> keys;
  std::string value;
};

class HotPathAllocTest : public ::testing::TestWithParam<bool> {};

TEST_P(HotPathAllocTest, SteadyStateGetSetAllocatesNothing) {
  const bool cliffhanger = GetParam();
  HotPathRig rig(cliffhanger ? CliffhangerServerConfig()
                             : DefaultServerConfig());

  // Warmup: reach every high-water mark (index tables, node pools, arena
  // pages, free lists). Three passes: the first grows, the rest prove the
  // pools stable before the measured window opens.
  for (uint32_t pass = 0; pass < 3; ++pass) rig.Pass(/*now_s=*/1 + pass);

  g_allocations.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  rig.Pass(/*now_s=*/10);
  g_counting.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), 0u)
      << "heap allocations leaked into the steady-state GET/SET hot path";

  // The window exercised real traffic, not a no-op: bytes are resident and
  // the keyset overflows the reservation (eviction ran inside the window).
  const ShardedCacheServer::ValueStats vs = rig.server.MergedValueStats();
  EXPECT_GT(vs.value_bytes, 0u);
  EXPECT_LT(vs.tracked_keys, static_cast<uint64_t>(HotPathRig::kKeys) +
                                 1);  // bounded by keyset
  const ClassStats stats = rig.server.MergedStats();
  EXPECT_GT(stats.gets, 0u);
  EXPECT_LT(stats.hits, stats.gets);
}

INSTANTIATE_TEST_SUITE_P(Configs, HotPathAllocTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Cliffhanger" : "DefaultLru";
                         });

}  // namespace
}  // namespace cliffhanger
